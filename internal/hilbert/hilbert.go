// Package hilbert implements a d-dimensional Hilbert space-filling curve.
//
// The paper's physical-mapping step stores each node's cost-space
// coordinate in a DHT "after transforming its multi-dimensional coordinate
// to a one-dimensional hash key with a Hilbert curve" (§3.2). The Hilbert
// curve is chosen over simpler interleavings because consecutive keys are
// always adjacent cells, so a DHT range around a key corresponds to a
// compact region of the cost space.
//
// The implementation follows John Skilling, "Programming the Hilbert
// curve", AIP Conf. Proc. 707 (2004): coordinates are converted to and
// from the "transpose" form of the Hilbert index, which is then packed by
// bit interleaving into a single uint64 key.
package hilbert

import "fmt"

// Curve describes a Hilbert curve over a Dims-dimensional grid with
// 2^Bits cells per dimension. Dims*Bits must be at most 64 so that keys
// fit in a uint64.
type Curve struct {
	dims uint
	bits uint
}

// New returns a curve over dims dimensions with bits bits of resolution
// per dimension.
func New(dims, bits uint) (Curve, error) {
	switch {
	case dims < 1:
		return Curve{}, fmt.Errorf("hilbert: dims = %d, need >= 1", dims)
	case bits < 1:
		return Curve{}, fmt.Errorf("hilbert: bits = %d, need >= 1", bits)
	case dims*bits > 64:
		return Curve{}, fmt.Errorf("hilbert: dims*bits = %d exceeds 64-bit keys", dims*bits)
	}
	return Curve{dims: dims, bits: bits}, nil
}

// MustNew is New but panics on invalid parameters.
func MustNew(dims, bits uint) Curve {
	c, err := New(dims, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality of the curve.
func (c Curve) Dims() uint { return c.dims }

// Bits returns the per-dimension resolution in bits.
func (c Curve) Bits() uint { return c.bits }

// KeyBits returns the total number of significant bits in a key.
func (c Curve) KeyBits() uint { return c.dims * c.bits }

// MaxCoord returns the largest valid coordinate value per dimension.
func (c Curve) MaxCoord() uint32 { return uint32(1)<<c.bits - 1 }

// Encode maps grid coordinates to the Hilbert index. It returns an error
// if the coordinate count or range is invalid.
func (c Curve) Encode(coords []uint32) (uint64, error) {
	if uint(len(coords)) != c.dims {
		return 0, fmt.Errorf("hilbert: got %d coords for %d-dim curve", len(coords), c.dims)
	}
	max := c.MaxCoord()
	x := make([]uint32, c.dims)
	for i, v := range coords {
		if v > max {
			return 0, fmt.Errorf("hilbert: coord %d = %d exceeds max %d", i, v, max)
		}
		x[i] = v
	}
	c.axesToTranspose(x)
	return c.packTranspose(x), nil
}

// MustEncode is Encode but panics on invalid input; intended for callers
// that have already validated coordinates (e.g. quantizers).
func (c Curve) MustEncode(coords []uint32) uint64 {
	k, err := c.Encode(coords)
	if err != nil {
		panic(err)
	}
	return k
}

// MustEncodeInPlace is MustEncode using coords itself as scratch — the
// transpose transform overwrites it — for hot paths that reuse a cell
// buffer and would otherwise pay Encode's defensive copy per call.
func (c Curve) MustEncodeInPlace(coords []uint32) uint64 {
	if uint(len(coords)) != c.dims {
		panic(fmt.Sprintf("hilbert: got %d coords for %d-dim curve", len(coords), c.dims))
	}
	max := c.MaxCoord()
	for i, v := range coords {
		if v > max {
			panic(fmt.Sprintf("hilbert: coord %d = %d exceeds max %d", i, v, max))
		}
	}
	c.axesToTranspose(coords)
	return c.packTranspose(coords)
}

// Decode maps a Hilbert index back to grid coordinates. Keys with bits
// set above KeyBits are rejected.
func (c Curve) Decode(key uint64) ([]uint32, error) {
	if kb := c.KeyBits(); kb < 64 && key>>kb != 0 {
		return nil, fmt.Errorf("hilbert: key %#x exceeds %d significant bits", key, kb)
	}
	x := c.unpackTranspose(key)
	c.transposeToAxes(x)
	return x, nil
}

// axesToTranspose converts coordinates in place to the transposed Hilbert
// index form (Skilling's AxestoTranspose).
func (c Curve) axesToTranspose(x []uint32) {
	n := int(c.dims)
	m := uint32(1) << (c.bits - 1)

	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}

	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed index form back to coordinates
// in place (Skilling's TransposetoAxes).
func (c Curve) transposeToAxes(x []uint32) {
	n := int(c.dims)
	m := uint32(2) << (c.bits - 1)

	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t

	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// packTranspose interleaves the transpose form into a single key. Bit b
// (counting from the most significant bit, b = bits-1 .. 0) of x[i]
// becomes bit (b*dims + (dims-1-i)) of the key.
func (c Curve) packTranspose(x []uint32) uint64 {
	var key uint64
	for b := int(c.bits) - 1; b >= 0; b-- {
		for i := 0; i < int(c.dims); i++ {
			bit := uint64(x[i]>>uint(b)) & 1
			key = key<<1 | bit
		}
	}
	return key
}

// unpackTranspose splits a key back into transpose form.
func (c Curve) unpackTranspose(key uint64) []uint32 {
	x := make([]uint32, c.dims)
	for b := 0; b < int(c.bits); b++ {
		for i := int(c.dims) - 1; i >= 0; i-- {
			x[i] |= uint32(key&1) << uint(b)
			key >>= 1
		}
	}
	return x
}
