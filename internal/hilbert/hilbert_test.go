package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("dims=0 accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := New(5, 13); err == nil {
		t.Fatal("dims*bits=65 accepted")
	}
	if _, err := New(4, 16); err != nil {
		t.Fatal("dims*bits=64 rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 0)
}

func TestAccessors(t *testing.T) {
	c := MustNew(3, 7)
	if c.Dims() != 3 || c.Bits() != 7 || c.KeyBits() != 21 {
		t.Fatalf("accessors wrong: %v %v %v", c.Dims(), c.Bits(), c.KeyBits())
	}
	if c.MaxCoord() != 127 {
		t.Fatalf("MaxCoord = %d, want 127", c.MaxCoord())
	}
}

func TestEncodeValidation(t *testing.T) {
	c := MustNew(2, 4)
	if _, err := c.Encode([]uint32{1}); err == nil {
		t.Fatal("wrong coord count accepted")
	}
	if _, err := c.Encode([]uint32{16, 0}); err == nil {
		t.Fatal("out-of-range coord accepted")
	}
}

func TestDecodeValidation(t *testing.T) {
	c := MustNew(2, 4)
	if _, err := c.Decode(1 << 8); err == nil {
		t.Fatal("oversized key accepted")
	}
	if _, err := c.Decode(255); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
}

func TestMustEncodePanicsOnBadInput(t *testing.T) {
	c := MustNew(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MustEncode([]uint32{99, 0})
}

// The Hilbert curve must visit every cell exactly once: encode must be a
// bijection onto [0, 2^(dims*bits)).
func TestEncodeBijectionSmall(t *testing.T) {
	cases := []struct{ dims, bits uint }{
		{1, 4}, {2, 1}, {2, 2}, {2, 3}, {3, 2}, {4, 2}, {3, 3},
	}
	for _, tc := range cases {
		c := MustNew(tc.dims, tc.bits)
		total := uint64(1) << c.KeyBits()
		seen := make(map[uint64]bool, total)
		coords := make([]uint32, tc.dims)
		var walk func(dim uint)
		walk = func(dim uint) {
			if dim == tc.dims {
				k := c.MustEncode(coords)
				if k >= total {
					t.Fatalf("dims=%d bits=%d: key %d out of range %d", tc.dims, tc.bits, k, total)
				}
				if seen[k] {
					t.Fatalf("dims=%d bits=%d: duplicate key %d", tc.dims, tc.bits, k)
				}
				seen[k] = true
				return
			}
			for v := uint32(0); v <= c.MaxCoord(); v++ {
				coords[dim] = v
				walk(dim + 1)
			}
		}
		walk(0)
		if uint64(len(seen)) != total {
			t.Fatalf("dims=%d bits=%d: visited %d cells, want %d", tc.dims, tc.bits, len(seen), total)
		}
	}
}

// The defining locality property: consecutive Hilbert indices map to grid
// cells that differ by exactly 1 in exactly one dimension.
func TestAdjacencyProperty(t *testing.T) {
	cases := []struct{ dims, bits uint }{
		{2, 4}, {3, 3}, {4, 2},
	}
	for _, tc := range cases {
		c := MustNew(tc.dims, tc.bits)
		total := uint64(1) << c.KeyBits()
		prev, err := c.Decode(0)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k < total; k++ {
			cur, err := c.Decode(k)
			if err != nil {
				t.Fatal(err)
			}
			diff := 0
			for i := range cur {
				d := int64(cur[i]) - int64(prev[i])
				if d != 0 {
					diff++
					if d != 1 && d != -1 {
						t.Fatalf("dims=%d bits=%d: step %d jumps by %d in dim %d", tc.dims, tc.bits, k, d, i)
					}
				}
			}
			if diff != 1 {
				t.Fatalf("dims=%d bits=%d: step %d changes %d dims, want 1", tc.dims, tc.bits, k, diff)
			}
			prev = cur
		}
	}
}

// Roundtrip property across random dims/bits/coords.
func TestRoundtripProperty(t *testing.T) {
	f := func(dimsRaw, bitsRaw uint8, seed int64) bool {
		dims := uint(dimsRaw%5) + 1 // 1..5
		bits := uint(bitsRaw%10) + 1
		if dims*bits > 64 {
			bits = 64 / dims
		}
		c, err := New(dims, bits)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		coords := make([]uint32, dims)
		for i := range coords {
			coords[i] = uint32(rng.Int63n(int64(c.MaxCoord()) + 1))
		}
		key, err := c.Encode(coords)
		if err != nil {
			return false
		}
		back, err := c.Decode(key)
		if err != nil {
			return false
		}
		for i := range coords {
			if coords[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOneDimensionIsIdentityOrder(t *testing.T) {
	// In 1-D the Hilbert curve is just the line: key ordering must follow
	// coordinate ordering.
	c := MustNew(1, 8)
	var prevKey uint64
	for v := uint32(0); v <= c.MaxCoord(); v++ {
		k := c.MustEncode([]uint32{v})
		if v > 0 && k != prevKey+1 {
			t.Fatalf("1-D keys not sequential: coord %d -> key %d (prev %d)", v, k, prevKey)
		}
		prevKey = k
	}
}

func TestKnownOrder2x2(t *testing.T) {
	// For dims=2, bits=1 the curve visits the four cells in an order where
	// each consecutive pair is adjacent; verify it starts at the origin
	// cell, as Skilling's construction guarantees.
	c := MustNew(2, 1)
	first, err := c.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != 0 || first[1] != 0 {
		t.Fatalf("curve should start at origin, got %v", first)
	}
}

// Locality in the useful direction: points close on the curve are close in
// space. Measured as mean Euclidean-squared distance of key neighbors,
// which must be far below that of random cell pairs.
func TestLocalityBeatsRandomPairs(t *testing.T) {
	c := MustNew(2, 8)
	rng := rand.New(rand.NewSource(1))
	total := uint64(1) << c.KeyBits()
	var adjSum, rndSum float64
	const samples = 4000
	for s := 0; s < samples; s++ {
		k := uint64(rng.Int63n(int64(total - 1)))
		a, _ := c.Decode(k)
		b, _ := c.Decode(k + 1)
		adjSum += distSq(a, b)
		p, _ := c.Decode(uint64(rng.Int63n(int64(total))))
		q, _ := c.Decode(uint64(rng.Int63n(int64(total))))
		rndSum += distSq(p, q)
	}
	if adjSum*100 > rndSum {
		t.Fatalf("curve locality too weak: adjacent mean %v vs random mean %v",
			adjSum/samples, rndSum/samples)
	}
}

func distSq(a, b []uint32) float64 {
	var s float64
	for i := range a {
		d := float64(int64(a[i]) - int64(b[i]))
		s += d * d
	}
	return s
}

func BenchmarkEncode3D16(b *testing.B) {
	c := MustNew(3, 16)
	coords := []uint32{12345, 54321, 33333}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := []uint32{coords[0], coords[1], coords[2]}
		c.axesToTranspose(buf)
		_ = c.packTranspose(buf)
	}
}

func BenchmarkDecode3D16(b *testing.B) {
	c := MustNew(3, 16)
	key := c.MustEncode([]uint32{12345, 54321, 33333})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(key); err != nil {
			b.Fatal(err)
		}
	}
}
