package placement

import (
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/costindex"
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// indexedFake wraps fakeSource with a cost index, making mappers take
// the indexed fast path.
type indexedFake struct {
	*fakeSource
	ix *costindex.Index
}

func (f *indexedFake) CostIndex() *costindex.Index { return f.ix }

func newIndexedFake(f *fakeSource) *indexedFake {
	pts := make([]costspace.Point, len(f.ids))
	for i, id := range f.ids {
		pts[i] = f.points[id]
	}
	return &indexedFake{fakeSource: f, ix: costindex.Build(f.space, pts, 0)}
}

// TestIndexedMappersMatchLinearScan is the mapping identity required by
// the acceptance criteria: for random sources, targets, and exclusion
// sets, the indexed OracleMapper and VectorOnlyMapper return exactly the
// node, Candidates count, and (bitwise) Error of the linear-scan path.
func TestIndexedMappersMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(120)
		src := newFakeSource(n, int64(trial))
		idx := newIndexedFake(src)

		var exclude map[topology.NodeID]bool
		if trial%3 == 1 {
			exclude = map[topology.NodeID]bool{}
			for _, id := range src.ids {
				if rng.Intn(4) == 0 {
					exclude[id] = true
				}
			}
		}

		for q := 0; q < 5; q++ {
			target := vivaldi.Coord{rng.Float64() * 220, rng.Float64() * 220}

			for _, pair := range []struct {
				name           string
				linear, folded Mapper
			}{
				{"oracle", OracleMapper{Source: src}, OracleMapper{Source: idx}},
				{"vector-only", VectorOnlyMapper{Source: src}, VectorOnlyMapper{Source: idx}},
			} {
				wantNode, wantStats, wantErr := pair.linear.MapCoord(0, target, exclude)
				gotNode, gotStats, gotErr := pair.folded.MapCoord(0, target, exclude)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s trial %d: err %v vs %v", pair.name, trial, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				if gotNode != wantNode {
					t.Fatalf("%s trial %d: node %d, want %d", pair.name, trial, gotNode, wantNode)
				}
				if gotStats != wantStats {
					t.Fatalf("%s trial %d: stats %+v, want %+v", pair.name, trial, gotStats, wantStats)
				}
			}
		}
	}
}

// TestIndexedMapperAllExcluded checks the error path through the index.
func TestIndexedMapperAllExcluded(t *testing.T) {
	src := newFakeSource(10, 5)
	idx := newIndexedFake(src)
	all := map[topology.NodeID]bool{}
	for _, id := range src.ids {
		all[id] = true
	}
	if _, _, err := (OracleMapper{Source: idx}).MapCoord(0, vivaldi.Coord{1, 2}, all); err == nil {
		t.Fatal("indexed oracle mapping with all nodes excluded succeeded")
	}
	if _, _, err := (VectorOnlyMapper{Source: idx}).MapCoord(0, vivaldi.Coord{1, 2}, all); err == nil {
		t.Fatal("indexed vector-only mapping with all nodes excluded succeeded")
	}
}
