package placement

import (
	"fmt"
	"sync"

	"github.com/hourglass/sbon/internal/costindex"
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/dht"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// NodeSource exposes the current cost-space coordinates of overlay nodes
// to physical mappers. The optimizer environment implements it.
type NodeSource interface {
	// Space returns the cost space the coordinates live in.
	Space() *costspace.Space
	// NodeIDs returns all candidate host nodes. The slice is shared:
	// callers must not mutate it.
	NodeIDs() []topology.NodeID
	// Point returns the node's current full cost-space coordinate.
	Point(topology.NodeID) costspace.Point
}

// IndexedSource is implemented by NodeSources that maintain an exact
// cost-space k-NN index over their nodes (optimizer.Snapshot). Mappers
// use the index instead of a linear scan when available; results are
// identical by the costindex exactness contract.
type IndexedSource interface {
	NodeSource
	// CostIndex returns the current index; node ids are index ids.
	CostIndex() *costindex.Index
}

// MapStats records the routing/search cost of one physical mapping.
type MapStats struct {
	LookupHops  int
	PeersWalked int
	Candidates  int
	// Error is the full-space distance from the ideal coordinate to the
	// chosen node's coordinate — the paper's mapping error.
	Error float64
}

// Mapper maps an ideal vector coordinate to a physical node. The target's
// scalar components are ideal (zero), so nodes with high scalar cost
// appear distant (the Figure 3 mechanism).
type Mapper interface {
	// MapCoord returns the node hosting a service whose virtual placement
	// chose the given vector coordinate. Nodes in exclude are skipped
	// (used when a circuit must not co-locate services, or a node is
	// being drained).
	MapCoord(start topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error)
	// Name identifies the mapper in experiment output.
	Name() string
}

// pointPool recycles scratch cost-space points for ideal-coordinate
// targets, so the mapping hot path does not allocate per call. Mappers
// are stateless by the package re-entrancy contract, hence a pool rather
// than per-mapper scratch.
var pointPool = sync.Pool{New: func() any {
	p := make(costspace.Point, 0, 8)
	return &p
}}

// idealTarget assembles the ideal point for vec in a pooled buffer,
// returning the point and its pool handle. Callers must putIdeal the
// handle when done and not use the point afterwards. (A plain handle
// rather than a release closure: a closure would heap-allocate per
// call, defeating the pool.)
func idealTarget(space *costspace.Space, vec vivaldi.Coord) (costspace.Point, *costspace.Point) {
	pb := pointPool.Get().(*costspace.Point)
	target := space.AppendIdealPoint(*pb, vec)
	*pb = target
	return target, pb
}

// putIdeal returns an idealTarget buffer to the pool.
func putIdeal(pb *costspace.Point) { pointPool.Put(pb) }

// excludeFunc adapts a node exclusion set to the index callback form.
// A nil/empty set maps to a nil callback (the index's fast path).
func excludeFunc(exclude map[topology.NodeID]bool) func(int32) bool {
	if len(exclude) == 0 {
		return nil
	}
	return func(id int32) bool { return exclude[topology.NodeID(id)] }
}

// admissible counts the non-excluded candidates among n nodes — the
// Candidates statistic a linear scan would report.
func admissible(n int, exclude map[topology.NodeID]bool) int {
	out := n
	for id, ex := range exclude {
		if ex && int(id) >= 0 && int(id) < n {
			out--
		}
	}
	return out
}

// OracleMapper returns the node whose coordinate is nearest in
// full-space distance — exact, centralised, and therefore the ground
// truth mapping-error baseline. Indexed sources answer through their
// k-NN index in O(log N); plain sources fall back to scanning every
// node. Both paths return identical results.
type OracleMapper struct {
	Source NodeSource
}

// Name implements Mapper.
func (OracleMapper) Name() string { return "oracle" }

// MapCoord implements Mapper.
func (m OracleMapper) MapCoord(_ topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error) {
	space := m.Source.Space()
	target, pb := idealTarget(space, vec)
	defer putIdeal(pb)

	if src, ok := m.Source.(IndexedSource); ok {
		ix := src.CostIndex()
		id, dist, found := ix.Nearest(target, excludeFunc(exclude))
		if !found {
			return 0, MapStats{}, fmt.Errorf("placement: no candidate nodes (all excluded)")
		}
		return topology.NodeID(id), MapStats{Candidates: admissible(ix.Len(), exclude), Error: dist}, nil
	}

	var best topology.NodeID
	bestDist := 0.0
	found := false
	n := 0
	for _, id := range m.Source.NodeIDs() {
		if exclude[id] {
			continue
		}
		n++
		d := space.Distance(target, m.Source.Point(id))
		if !found || d < bestDist {
			best, bestDist, found = id, d, true
		}
	}
	if !found {
		return 0, MapStats{}, fmt.Errorf("placement: no candidate nodes (all excluded)")
	}
	return best, MapStats{Candidates: n, Error: bestDist}, nil
}

// DHTMapper is the paper's decentralized mapping: look up the ideal
// coordinate's Hilbert key in the DHT and take the nearest published
// node coordinate (§3.2), considering Candidates nearby entries ranked by
// full-space distance.
type DHTMapper struct {
	Catalog *dht.Catalog
	// Candidates is how many nearby entries to rank (default 8).
	Candidates int
	// MaxScan bounds the ring walk (default 32 peers).
	MaxScan int
}

// Name implements Mapper.
func (DHTMapper) Name() string { return "hilbert-dht" }

// entryPool recycles candidate-entry buffers across MapCoord calls: the
// ranked entries never escape the mapper, so the backing array is
// reusable.
var entryPool = sync.Pool{New: func() any {
	s := make([]dht.Entry, 0, 32)
	return &s
}}

// MapCoord implements Mapper.
func (m DHTMapper) MapCoord(start topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error) {
	if m.Catalog == nil {
		return 0, MapStats{}, fmt.Errorf("placement: DHTMapper has no catalog")
	}
	cands := m.Candidates
	if cands <= 0 {
		cands = 8
	}
	scan := m.MaxScan
	if scan <= 0 {
		scan = 32
	}
	space := m.Catalog.Space()
	target, pb := idealTarget(space, vec)
	defer putIdeal(pb)
	// Ask for extra candidates to survive exclusions.
	want := cands + len(exclude)

	eb := entryPool.Get().(*[]dht.Entry)
	defer entryPool.Put(eb)
	res, err := m.Catalog.NearestNodesAppend(start, target, want, scan, (*eb)[:0])
	if err != nil {
		return 0, MapStats{}, err
	}
	if cap(res.Entries) > cap(*eb) {
		*eb = res.Entries[:0] // keep the grown backing array
	}
	stats := MapStats{
		LookupHops:  res.LookupHops,
		PeersWalked: res.PeersWalked,
		Candidates:  len(res.Entries),
	}
	for _, e := range res.Entries {
		if exclude[e.Node] {
			continue
		}
		stats.Error = space.Distance(target, e.Point)
		return e.Node, stats, nil
	}
	return 0, stats, fmt.Errorf("placement: DHT walk found no admissible node (got %d entries)", len(res.Entries))
}

// VectorOnlyMapper ranks candidates by vector-subspace distance only,
// ignoring scalar (load) dimensions. It exists to demonstrate the Figure
// 3 failure mode: it will happily pick the overloaded nearer node N1.
type VectorOnlyMapper struct {
	Source NodeSource
}

// Name implements Mapper.
func (VectorOnlyMapper) Name() string { return "vector-only" }

// MapCoord implements Mapper.
func (m VectorOnlyMapper) MapCoord(_ topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error) {
	space := m.Source.Space()
	target, pb := idealTarget(space, vec)
	defer putIdeal(pb)

	if src, ok := m.Source.(IndexedSource); ok {
		ix := src.CostIndex()
		id, _, found := ix.NearestVector(target, excludeFunc(exclude))
		if !found {
			return 0, MapStats{}, fmt.Errorf("placement: no candidate nodes (all excluded)")
		}
		return topology.NodeID(id), MapStats{
			Candidates: admissible(ix.Len(), exclude),
			Error:      ix.Distance(id, target),
		}, nil
	}

	var best topology.NodeID
	bestDist := 0.0
	found := false
	n := 0
	for _, id := range m.Source.NodeIDs() {
		if exclude[id] {
			continue
		}
		n++
		d := space.VectorDistance(target, m.Source.Point(id))
		if !found || d < bestDist {
			best, bestDist, found = id, d, true
		}
	}
	if !found {
		return 0, MapStats{}, fmt.Errorf("placement: no candidate nodes (all excluded)")
	}
	fullErr := space.Distance(target, m.Source.Point(best))
	return best, MapStats{Candidates: n, Error: fullErr}, nil
}
