package placement

import (
	"fmt"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/dht"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// NodeSource exposes the current cost-space coordinates of overlay nodes
// to physical mappers. The optimizer environment implements it.
type NodeSource interface {
	// Space returns the cost space the coordinates live in.
	Space() *costspace.Space
	// NodeIDs returns all candidate host nodes.
	NodeIDs() []topology.NodeID
	// Point returns the node's current full cost-space coordinate.
	Point(topology.NodeID) costspace.Point
}

// MapStats records the routing/search cost of one physical mapping.
type MapStats struct {
	LookupHops  int
	PeersWalked int
	Candidates  int
	// Error is the full-space distance from the ideal coordinate to the
	// chosen node's coordinate — the paper's mapping error.
	Error float64
}

// Mapper maps an ideal vector coordinate to a physical node. The target's
// scalar components are ideal (zero), so nodes with high scalar cost
// appear distant (the Figure 3 mechanism).
type Mapper interface {
	// MapCoord returns the node hosting a service whose virtual placement
	// chose the given vector coordinate. Nodes in exclude are skipped
	// (used when a circuit must not co-locate services, or a node is
	// being drained).
	MapCoord(start topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error)
	// Name identifies the mapper in experiment output.
	Name() string
}

// OracleMapper scans every node and returns the one whose coordinate is
// nearest in full-space distance — exact, centralised, and therefore the
// ground truth mapping-error baseline.
type OracleMapper struct {
	Source NodeSource
}

// Name implements Mapper.
func (OracleMapper) Name() string { return "oracle" }

// MapCoord implements Mapper.
func (m OracleMapper) MapCoord(_ topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error) {
	space := m.Source.Space()
	target := space.IdealPoint(vec)
	best := topology.NodeID(-1)
	bestDist := 0.0
	n := 0
	for _, id := range m.Source.NodeIDs() {
		if exclude[id] {
			continue
		}
		n++
		d := space.Distance(target, m.Source.Point(id))
		if best < 0 || d < bestDist {
			best, bestDist = id, d
		}
	}
	if best < 0 {
		return 0, MapStats{}, fmt.Errorf("placement: no candidate nodes (all excluded)")
	}
	return best, MapStats{Candidates: n, Error: bestDist}, nil
}

// DHTMapper is the paper's decentralized mapping: look up the ideal
// coordinate's Hilbert key in the DHT and take the nearest published
// node coordinate (§3.2), considering Candidates nearby entries ranked by
// full-space distance.
type DHTMapper struct {
	Catalog *dht.Catalog
	// Candidates is how many nearby entries to rank (default 8).
	Candidates int
	// MaxScan bounds the ring walk (default 32 peers).
	MaxScan int
}

// Name implements Mapper.
func (DHTMapper) Name() string { return "hilbert-dht" }

// MapCoord implements Mapper.
func (m DHTMapper) MapCoord(start topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error) {
	if m.Catalog == nil {
		return 0, MapStats{}, fmt.Errorf("placement: DHTMapper has no catalog")
	}
	cands := m.Candidates
	if cands <= 0 {
		cands = 8
	}
	scan := m.MaxScan
	if scan <= 0 {
		scan = 32
	}
	space := m.Catalog.Space()
	target := space.IdealPoint(vec)
	// Ask for extra candidates to survive exclusions.
	want := cands + len(exclude)
	res, err := m.Catalog.NearestNodes(start, target, want, scan)
	if err != nil {
		return 0, MapStats{}, err
	}
	stats := MapStats{
		LookupHops:  res.LookupHops,
		PeersWalked: res.PeersWalked,
		Candidates:  len(res.Entries),
	}
	for _, e := range res.Entries {
		if exclude[e.Node] {
			continue
		}
		stats.Error = space.Distance(target, e.Point)
		return e.Node, stats, nil
	}
	return 0, stats, fmt.Errorf("placement: DHT walk found no admissible node (got %d entries)", len(res.Entries))
}

// VectorOnlyMapper ranks candidates by vector-subspace distance only,
// ignoring scalar (load) dimensions. It exists to demonstrate the Figure
// 3 failure mode: it will happily pick the overloaded nearer node N1.
type VectorOnlyMapper struct {
	Source NodeSource
}

// Name implements Mapper.
func (VectorOnlyMapper) Name() string { return "vector-only" }

// MapCoord implements Mapper.
func (m VectorOnlyMapper) MapCoord(_ topology.NodeID, vec vivaldi.Coord, exclude map[topology.NodeID]bool) (topology.NodeID, MapStats, error) {
	space := m.Source.Space()
	target := space.IdealPoint(vec)
	best := topology.NodeID(-1)
	bestDist := 0.0
	n := 0
	for _, id := range m.Source.NodeIDs() {
		if exclude[id] {
			continue
		}
		n++
		d := space.VectorDistance(target, m.Source.Point(id))
		if best < 0 || d < bestDist {
			best, bestDist = id, d
		}
	}
	if best < 0 {
		return 0, MapStats{}, fmt.Errorf("placement: no candidate nodes (all excluded)")
	}
	fullErr := space.Distance(target, m.Source.Point(best))
	return best, MapStats{Candidates: n, Error: fullErr}, nil
}
