package placement

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/dht"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// starProblem builds a star: one unpinned service connected to pinned
// endpoints with given coordinates and rates.
func starProblem(coords []vivaldi.Coord, rates []float64) *Problem {
	p := &Problem{}
	p.Vertices = append(p.Vertices, Vertex{}) // unpinned center, index 0
	for i, c := range coords {
		p.Vertices = append(p.Vertices, Vertex{Pinned: true, Coord: c.Clone()})
		p.Links = append(p.Links, Link{A: 0, B: i + 1, Rate: rates[i]})
	}
	return p
}

func TestProblemValidate(t *testing.T) {
	good := starProblem([]vivaldi.Coord{{0, 0}, {10, 0}}, []float64{1, 2})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []*Problem{
		{},                                   // no vertices
		{Vertices: []Vertex{{}}},             // no pinned
		{Vertices: []Vertex{{Pinned: true}}}, // pinned without coord
		{Vertices: []Vertex{{Pinned: true, Coord: vivaldi.Coord{0, 0}}}, // bad link below
			Links: []Link{{A: 0, B: 5, Rate: 1}}},
		{Vertices: []Vertex{{Pinned: true, Coord: vivaldi.Coord{0, 0}}},
			Links: []Link{{A: 0, B: 0, Rate: 1}}},
		{Vertices: []Vertex{{Pinned: true, Coord: vivaldi.Coord{0, 0}}, {}},
			Links: []Link{{A: 0, B: 1, Rate: 0}}},
		{Vertices: []Vertex{
			{Pinned: true, Coord: vivaldi.Coord{0, 0}},
			{Pinned: true, Coord: vivaldi.Coord{1}}}}, // dim mismatch
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid problem accepted", i)
		}
	}
}

// On a star the quadratic optimum is the rate-weighted centroid in
// closed form; Relaxation must hit it in one sweep.
func TestRelaxationStarClosedForm(t *testing.T) {
	coords := []vivaldi.Coord{{0, 0}, {30, 0}, {0, 60}}
	rates := []float64{1, 2, 3}
	p := starProblem(coords, rates)
	if err := (Relaxation{}).PlaceVirtual(p); err != nil {
		t.Fatal(err)
	}
	var wantX, wantY, den float64
	for i := range coords {
		wantX += rates[i] * coords[i][0]
		wantY += rates[i] * coords[i][1]
		den += rates[i]
	}
	wantX /= den
	wantY /= den
	got := p.Vertices[0].Coord
	if math.Abs(got[0]-wantX) > 1e-6 || math.Abs(got[1]-wantY) > 1e-6 {
		t.Fatalf("relaxation star = %v, want (%v,%v)", got, wantX, wantY)
	}
}

func TestRelaxationLeavesPinnedUntouched(t *testing.T) {
	p := starProblem([]vivaldi.Coord{{1, 2}, {3, 4}}, []float64{1, 1})
	if err := (Relaxation{}).PlaceVirtual(p); err != nil {
		t.Fatal(err)
	}
	if p.Vertices[1].Coord[0] != 1 || p.Vertices[1].Coord[1] != 2 {
		t.Fatal("pinned vertex moved")
	}
}

// Chain circuit: P1 - S1 - S2 - P2. The optimum for equal rates puts the
// services evenly spaced on the segment.
func TestRelaxationChainEvenSpacing(t *testing.T) {
	p := &Problem{
		Vertices: []Vertex{
			{Pinned: true, Coord: vivaldi.Coord{0, 0}},
			{}, // S1
			{}, // S2
			{Pinned: true, Coord: vivaldi.Coord{30, 0}},
		},
		Links: []Link{
			{A: 0, B: 1, Rate: 1},
			{A: 1, B: 2, Rate: 1},
			{A: 2, B: 3, Rate: 1},
		},
	}
	if err := (Relaxation{MaxIter: 2000, Tolerance: 1e-7}).PlaceVirtual(p); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Vertices[1].Coord[0]-10) > 1e-3 || math.Abs(p.Vertices[2].Coord[0]-20) > 1e-3 {
		t.Fatalf("chain placement = %v, %v; want x=10 and x=20",
			p.Vertices[1].Coord, p.Vertices[2].Coord)
	}
}

// Relaxation must never increase the spring energy relative to the
// seeded start (Gauss–Seidel descends monotonically).
func TestRelaxationReducesEnergyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomTreeProblem(rng, 3+rng.Intn(4))
		// Seed manually so we can snapshot the initial energy.
		seedUnpinned(p)
		before := p.QuadraticEnergy()
		if err := (Relaxation{}).PlaceVirtual(p); err != nil {
			return false
		}
		return p.QuadraticEnergy() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomTreeProblem builds a random tree circuit with pinned leaves.
func randomTreeProblem(rng *rand.Rand, leaves int) *Problem {
	p := &Problem{}
	// Interior vertices: leaves-1 unpinned services in a chain/tree.
	for i := 0; i < leaves-1; i++ {
		p.Vertices = append(p.Vertices, Vertex{})
		if i > 0 {
			p.Links = append(p.Links, Link{A: i - 1, B: i, Rate: 1 + rng.Float64()*9})
		}
	}
	for i := 0; i < leaves; i++ {
		idx := len(p.Vertices)
		p.Vertices = append(p.Vertices, Vertex{
			Pinned: true,
			Coord:  vivaldi.Coord{rng.Float64() * 100, rng.Float64() * 100},
		})
		attach := rng.Intn(leaves - 1)
		p.Links = append(p.Links, Link{A: attach, B: idx, Rate: 1 + rng.Float64()*9})
	}
	return p
}

func TestWeiszfeldOptimizesLinearCost(t *testing.T) {
	// Weiszfeld targets Σ rate·d directly, so it should never be much
	// worse than Relaxation on that metric, and usually better.
	worse := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pr := randomTreeProblem(rng, 4)
		pw := &Problem{
			Vertices: append([]Vertex(nil), pr.Vertices...),
			Links:    append([]Link(nil), pr.Links...),
		}
		for i := range pw.Vertices {
			pw.Vertices[i].Coord = pr.Vertices[i].Coord.Clone()
		}
		if err := (Relaxation{MaxIter: 1000, Tolerance: 1e-7}).PlaceVirtual(pr); err != nil {
			t.Fatal(err)
		}
		if err := (Weiszfeld{MaxIter: 2000, Tolerance: 1e-7}).PlaceVirtual(pw); err != nil {
			t.Fatal(err)
		}
		if pw.LinearCost() > pr.LinearCost()*1.02+1e-9 {
			worse++
		}
	}
	if worse > trials/4 {
		t.Fatalf("Weiszfeld worse than Relaxation on linear cost in %d/%d trials", worse, trials)
	}
}

func TestCentroidMatchesRelaxationOnStar(t *testing.T) {
	coords := []vivaldi.Coord{{0, 0}, {40, 0}, {0, 40}, {40, 40}}
	rates := []float64{1, 2, 3, 4}
	pr := starProblem(coords, rates)
	pc := starProblem(coords, rates)
	if err := (Relaxation{}).PlaceVirtual(pr); err != nil {
		t.Fatal(err)
	}
	if err := (Centroid{}).PlaceVirtual(pc); err != nil {
		t.Fatal(err)
	}
	if pr.Vertices[0].Coord.Distance(pc.Vertices[0].Coord) > 1e-6 {
		t.Fatalf("centroid %v != relaxation %v on star", pc.Vertices[0].Coord, pr.Vertices[0].Coord)
	}
}

func TestGradientDescentApproachesRelaxation(t *testing.T) {
	coords := []vivaldi.Coord{{0, 0}, {30, 0}, {15, 45}}
	rates := []float64{2, 1, 1}
	pr := starProblem(coords, rates)
	pg := starProblem(coords, rates)
	if err := (Relaxation{}).PlaceVirtual(pr); err != nil {
		t.Fatal(err)
	}
	if err := (GradientDescent{MaxIter: 5000, Step: 0.1, Tolerance: 1e-8}).PlaceVirtual(pg); err != nil {
		t.Fatal(err)
	}
	if pr.Vertices[0].Coord.Distance(pg.Vertices[0].Coord) > 0.1 {
		t.Fatalf("gradient %v far from relaxation %v", pg.Vertices[0].Coord, pr.Vertices[0].Coord)
	}
}

func TestPlacerNamesNonEmpty(t *testing.T) {
	for _, pl := range []VirtualPlacer{Relaxation{}, Weiszfeld{}, Centroid{}, GradientDescent{}} {
		if pl.Name() == "" {
			t.Fatalf("%T has empty name", pl)
		}
	}
}

func TestPlacersRejectInvalidProblem(t *testing.T) {
	bad := &Problem{Vertices: []Vertex{{}}}
	for _, pl := range []VirtualPlacer{Relaxation{}, Weiszfeld{}, Centroid{}, GradientDescent{}} {
		if err := pl.PlaceVirtual(bad); err == nil {
			t.Fatalf("%s accepted invalid problem", pl.Name())
		}
	}
}

// --- mapping tests ---

type fakeSource struct {
	space  *costspace.Space
	ids    []topology.NodeID
	points map[topology.NodeID]costspace.Point
}

func (f *fakeSource) Space() *costspace.Space                 { return f.space }
func (f *fakeSource) NodeIDs() []topology.NodeID              { return f.ids }
func (f *fakeSource) Point(n topology.NodeID) costspace.Point { return f.points[n] }

func newFakeSource(n int, seed int64) *fakeSource {
	rng := rand.New(rand.NewSource(seed))
	f := &fakeSource{
		space:  costspace.NewLatencyLoadSpace(100),
		points: make(map[topology.NodeID]costspace.Point),
	}
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		f.ids = append(f.ids, id)
		f.points[id] = f.space.NewPoint(
			vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200},
			[]float64{rng.Float64() * 0.5},
		)
	}
	return f
}

func TestOracleMapperExact(t *testing.T) {
	src := newFakeSource(50, 1)
	target := vivaldi.Coord{100, 100}
	got, stats, err := (OracleMapper{Source: src}).MapCoord(0, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	tp := src.space.IdealPoint(target)
	for _, id := range src.ids {
		if src.space.Distance(tp, src.points[id]) < src.space.Distance(tp, src.points[got])-1e-12 {
			t.Fatalf("oracle missed nearer node %d", id)
		}
	}
	if stats.Candidates != 50 {
		t.Fatalf("candidates = %d, want 50", stats.Candidates)
	}
	if stats.Error != src.space.Distance(tp, src.points[got]) {
		t.Fatal("reported error does not match chosen node distance")
	}
}

func TestOracleMapperExclude(t *testing.T) {
	src := newFakeSource(10, 2)
	target := vivaldi.Coord{50, 50}
	first, _, err := (OracleMapper{Source: src}).MapCoord(0, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := (OracleMapper{Source: src}).MapCoord(0, target, map[topology.NodeID]bool{first: true})
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("excluded node chosen")
	}
	all := map[topology.NodeID]bool{}
	for _, id := range src.ids {
		all[id] = true
	}
	if _, _, err := (OracleMapper{Source: src}).MapCoord(0, target, all); err == nil {
		t.Fatal("mapping with all nodes excluded succeeded")
	}
}

// The Figure 3 scenario: N1 nearer in latency but overloaded; the full-
// space mappers must pick N2, the vector-only mapper must pick N1.
func TestFigure3MappingScenario(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	src := &fakeSource{
		space: space,
		ids:   []topology.NodeID{1, 2},
		points: map[topology.NodeID]costspace.Point{
			1: space.NewPoint(vivaldi.Coord{5, 0}, []float64{0.9}),   // N1: near, loaded
			2: space.NewPoint(vivaldi.Coord{20, 0}, []float64{0.05}), // N2: farther, idle
		},
	}
	target := vivaldi.Coord{0, 0}
	full, _, err := (OracleMapper{Source: src}).MapCoord(0, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full != 2 {
		t.Fatalf("full-space mapping chose N%d, want N2", full)
	}
	vec, _, err := (VectorOnlyMapper{Source: src}).MapCoord(0, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vec != 1 {
		t.Fatalf("vector-only mapping chose N%d, want N1", vec)
	}
}

// buildDHT publishes the fake source's points into a catalog.
func buildDHT(t *testing.T, src *fakeSource) *dht.Catalog {
	t.Helper()
	ring := dht.NewRing()
	var pts []costspace.Point
	for _, id := range src.ids {
		if _, err := ring.AddPeer(id); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, src.points[id])
	}
	bounds, err := costspace.ComputeBounds(pts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	curve := hilbert.MustNew(uint(src.space.Dims()), 16)
	cat, err := dht.NewCatalog(ring, src.space, curve, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range src.ids {
		if _, err := cat.Publish(id, src.points[id]); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestDHTMapperSmallRingMatchesOracle(t *testing.T) {
	src := newFakeSource(12, 3)
	cat := buildDHT(t, src)
	m := DHTMapper{Catalog: cat, Candidates: 4, MaxScan: 12}
	o := OracleMapper{Source: src}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		target := vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200}
		got, stats, err := m.MapCoord(0, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := o.MapCoord(0, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: DHT chose %d, oracle %d", trial, got, want)
		}
		if stats.PeersWalked < 1 || stats.Candidates < 1 {
			t.Fatalf("stats not populated: %+v", stats)
		}
	}
}

func TestDHTMapperMappingErrorNearOracle(t *testing.T) {
	src := newFakeSource(200, 5)
	cat := buildDHT(t, src)
	m := DHTMapper{Catalog: cat, Candidates: 8, MaxScan: 40}
	o := OracleMapper{Source: src}
	rng := rand.New(rand.NewSource(6))
	var dhtErr, oraErr float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		target := vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200}
		_, ds, err := m.MapCoord(topology.NodeID(rng.Intn(200)), target, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, os, err := o.MapCoord(0, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		dhtErr += ds.Error
		oraErr += os.Error
	}
	if dhtErr > oraErr*3 {
		t.Fatalf("DHT mapping error %v far above oracle %v", dhtErr/trials, oraErr/trials)
	}
}

func TestDHTMapperExclude(t *testing.T) {
	src := newFakeSource(12, 7)
	cat := buildDHT(t, src)
	m := DHTMapper{Catalog: cat, Candidates: 4, MaxScan: 12}
	target := vivaldi.Coord{100, 100}
	first, _, err := m.MapCoord(0, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := m.MapCoord(0, target, map[topology.NodeID]bool{first: true})
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("excluded node chosen")
	}
}

func TestDHTMapperNilCatalog(t *testing.T) {
	if _, _, err := (DHTMapper{}).MapCoord(0, vivaldi.Coord{0, 0}, nil); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestMapperNames(t *testing.T) {
	for _, m := range []Mapper{OracleMapper{}, DHTMapper{}, VectorOnlyMapper{}} {
		if m.Name() == "" {
			t.Fatalf("%T has empty name", m)
		}
	}
}

func BenchmarkRelaxation4WayStar(b *testing.B) {
	coords := []vivaldi.Coord{{0, 0}, {30, 0}, {0, 60}, {90, 90}}
	rates := []float64{1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		p := starProblem(coords, rates)
		if err := (Relaxation{}).PlaceVirtual(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Placers must be re-entrant: one placer value solving many Problems from
// concurrent goroutines (the batch optimizer's worker pool) must produce
// the same coordinates as solving them sequentially. Run with -race.
func TestPlacersReentrant(t *testing.T) {
	placers := []VirtualPlacer{Relaxation{}, Weiszfeld{}, Centroid{}, GradientDescent{}}
	rng := rand.New(rand.NewSource(42))
	problems := make([]*Problem, 16)
	for i := range problems {
		coords := make([]vivaldi.Coord, 3+i%3)
		rates := make([]float64, len(coords))
		for j := range coords {
			coords[j] = vivaldi.Coord{rng.Float64() * 100, rng.Float64() * 100}
			rates[j] = 1 + rng.Float64()*9
		}
		problems[i] = starProblem(coords, rates)
	}
	for _, placer := range placers {
		want := make([]vivaldi.Coord, len(problems))
		for i, p := range problems {
			cp := cloneProblem(p)
			if err := placer.PlaceVirtual(cp); err != nil {
				t.Fatalf("%s: %v", placer.Name(), err)
			}
			want[i] = cp.Vertices[0].Coord
		}
		got := make([]vivaldi.Coord, len(problems))
		var wg sync.WaitGroup
		for i, p := range problems {
			wg.Add(1)
			go func(i int, cp *Problem) {
				defer wg.Done()
				if err := placer.PlaceVirtual(cp); err != nil {
					t.Errorf("%s concurrent: %v", placer.Name(), err)
					return
				}
				got[i] = cp.Vertices[0].Coord
			}(i, cloneProblem(p))
		}
		wg.Wait()
		for i := range problems {
			if got[i].Distance(want[i]) != 0 {
				t.Fatalf("%s problem %d: concurrent solution %v != sequential %v",
					placer.Name(), i, got[i], want[i])
			}
		}
	}
}

func cloneProblem(p *Problem) *Problem {
	cp := &Problem{Links: append([]Link(nil), p.Links...)}
	for _, v := range p.Vertices {
		cp.Vertices = append(cp.Vertices, Vertex{Pinned: v.Pinned, Coord: v.Coord.Clone()})
	}
	return cp
}

// TestRelaxationDoesNotMutateCallerCoords pins the copy-on-entry
// contract of the in-place sweep: a caller-provided initial guess for
// an unpinned vertex must survive PlaceVirtual untouched.
func TestRelaxationDoesNotMutateCallerCoords(t *testing.T) {
	guess := vivaldi.Coord{42, 42}
	p := starProblem([]vivaldi.Coord{{0, 0}, {10, 0}, {0, 10}}, []float64{1, 1, 1})
	p.Vertices[0].Coord = guess
	if err := (Relaxation{}).PlaceVirtual(p); err != nil {
		t.Fatal(err)
	}
	if guess[0] != 42 || guess[1] != 42 {
		t.Fatalf("caller's guess slice mutated to %v", guess)
	}
	if p.Vertices[0].Coord.Distance(guess) == 0 {
		t.Fatal("placement did not move off the guess")
	}
}

// TestRelaxationAllocsDoNotScaleWithSweeps verifies the per-sweep
// scratch reuse: more iterations must not mean more allocations.
func TestRelaxationAllocsDoNotScaleWithSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := randomTreeProblem(rng, 12)
	clone := func() *Problem {
		q := &Problem{Links: base.Links}
		q.Vertices = append([]Vertex(nil), base.Vertices...)
		return q
	}
	measure := func(iters int) float64 {
		r := Relaxation{MaxIter: iters, Tolerance: 1e-300}
		return testing.AllocsPerRun(20, func() {
			if err := r.PlaceVirtual(clone()); err != nil {
				t.Fatal(err)
			}
		})
	}
	few, many := measure(2), measure(100)
	// Identical setup cost; the 98 extra sweeps must be free. (The
	// clone itself allocates, hence comparing rather than a fixed cap.)
	if many > few {
		t.Fatalf("allocations grew with sweep count: %v (2 iters) -> %v (100 iters)", few, many)
	}
}

func BenchmarkRelaxationPlace(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	base := randomTreeProblem(rng, 8)
	vertices := make([]Vertex, len(base.Vertices))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(vertices, base.Vertices)
		p := &Problem{Vertices: vertices, Links: base.Links}
		if err := (Relaxation{}).PlaceVirtual(p); err != nil {
			b.Fatal(err)
		}
	}
}
