// Package placement implements the two phases of the paper's cost-space
// service placement (§3.2):
//
//   - Virtual placement computes ideal coordinates for a circuit's
//     unpinned services in the vector subspace of the cost space. The
//     primary algorithm is spring Relaxation (from the companion SBON
//     work the paper builds on): circuit links are springs whose constant
//     is the link data rate and whose extension is the latency-space
//     distance, and unpinned services are massless bodies that settle at
//     the energy minimum. Weiszfeld, weighted-centroid, and
//     gradient-descent placers are provided as alternatives/ablations.
//
//   - Physical mapping finds a real node near the ideal coordinate. The
//     paper's mechanism is a Hilbert-keyed DHT lookup (DHTMapper); an
//     exhaustive OracleMapper provides ground truth for measuring mapping
//     error.
//
// All placers and mappers are re-entrant: they keep no state between
// calls and mutate only the Problem (or return values) they are given, so
// one placer value may solve many Problems from concurrent goroutines —
// the property the batch optimizer's shared-snapshot worker pool relies
// on. Implementations must preserve this.
package placement

import (
	"fmt"
	"math"

	"github.com/hourglass/sbon/internal/vivaldi"
)

// Vertex is one service of a circuit being placed. Pinned vertices
// (producers, consumers, reused services) have fixed coordinates;
// unpinned vertices are placed by the algorithm.
type Vertex struct {
	// Pinned marks vertices whose coordinates are fixed.
	Pinned bool
	// Coord is the vertex's position in the vector subspace. For pinned
	// vertices it is the input; for unpinned vertices it is the output
	// (and may hold an initial guess on input; zero-value coords are
	// seeded from the pinned centroid).
	Coord vivaldi.Coord
}

// Link is an undirected circuit edge carrying Rate KB/s between the
// vertices at indices A and B.
type Link struct {
	A, B int
	Rate float64
}

// Problem is a circuit placement instance.
type Problem struct {
	Vertices []Vertex
	Links    []Link
}

// Validate reports whether the problem is well formed: consistent
// dimensions, valid link endpoints, positive rates, and at least one
// pinned vertex (otherwise the optimum is degenerate — everything
// collapses to a point).
func (p *Problem) Validate() error {
	if len(p.Vertices) == 0 {
		return fmt.Errorf("placement: no vertices")
	}
	dims := -1
	pinned := 0
	for i, v := range p.Vertices {
		if v.Pinned {
			pinned++
			if len(v.Coord) == 0 {
				return fmt.Errorf("placement: pinned vertex %d has no coordinate", i)
			}
		}
		if len(v.Coord) > 0 {
			if dims == -1 {
				dims = len(v.Coord)
			} else if len(v.Coord) != dims {
				return fmt.Errorf("placement: vertex %d has %d dims, expected %d", i, len(v.Coord), dims)
			}
		}
	}
	if pinned == 0 {
		return fmt.Errorf("placement: no pinned vertices")
	}
	for i, l := range p.Links {
		if l.A < 0 || l.A >= len(p.Vertices) || l.B < 0 || l.B >= len(p.Vertices) {
			return fmt.Errorf("placement: link %d endpoints (%d,%d) out of range", i, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("placement: link %d is a self-loop", i)
		}
		if l.Rate <= 0 {
			return fmt.Errorf("placement: link %d rate %v, need > 0", i, l.Rate)
		}
	}
	return nil
}

// dims returns the coordinate dimensionality of the problem.
func (p *Problem) dims() int {
	for _, v := range p.Vertices {
		if len(v.Coord) > 0 {
			return len(v.Coord)
		}
	}
	return 0
}

// pinnedCentroid returns the unweighted centroid of pinned vertices,
// used to seed unpinned coordinates.
func (p *Problem) pinnedCentroid() vivaldi.Coord {
	d := p.dims()
	c := make(vivaldi.Coord, d)
	n := 0
	for _, v := range p.Vertices {
		if v.Pinned {
			for i := range c {
				c[i] += v.Coord[i]
			}
			n++
		}
	}
	if n > 0 {
		for i := range c {
			c[i] /= float64(n)
		}
	}
	return c
}

// QuadraticEnergy returns Σ rate·dist² over the links — the spring
// potential Relaxation minimizes.
func (p *Problem) QuadraticEnergy() float64 {
	var e float64
	for _, l := range p.Links {
		d := p.Vertices[l.A].Coord.Distance(p.Vertices[l.B].Coord)
		e += l.Rate * d * d
	}
	return e
}

// LinearCost returns Σ rate·dist over the links — the network-usage
// objective (data in transit) that the quadratic spring model surrogates.
func (p *Problem) LinearCost() float64 {
	var c float64
	for _, l := range p.Links {
		c += l.Rate * p.Vertices[l.A].Coord.Distance(p.Vertices[l.B].Coord)
	}
	return c
}

// VirtualPlacer computes coordinates for the unpinned vertices of a
// problem, mutating their Coord fields in place.
type VirtualPlacer interface {
	// PlaceVirtual solves the problem. Implementations must leave pinned
	// coordinates untouched.
	PlaceVirtual(p *Problem) error
	// Name identifies the placer in experiment output.
	Name() string
}

// Relaxation is the paper's spring-relaxation virtual placement: each
// unpinned vertex is iteratively moved to the rate-weighted centroid of
// its neighbors (the exact minimizer of the quadratic spring energy for
// that vertex with others fixed, i.e. Gauss–Seidel coordinate descent).
type Relaxation struct {
	// MaxIter bounds the sweeps over unpinned vertices (default 200).
	MaxIter int
	// Tolerance stops iteration when no vertex moves farther than this
	// (default 1e-3, in coordinate units ≈ milliseconds).
	Tolerance float64
}

// Name implements VirtualPlacer.
func (r Relaxation) Name() string { return "relaxation" }

// PlaceVirtual implements VirtualPlacer.
//
// The sweep loop is allocation-free: every unpinned vertex gets an
// owned coordinate slice carved from one arena up front (so caller-
// provided initial guesses are never mutated in place), and a single
// scratch accumulator is reused across vertices and sweeps. The
// arithmetic matches the textbook num.Scale(1/den) update bit for bit.
func (r Relaxation) PlaceVirtual(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	maxIter := r.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	tol := r.Tolerance
	if tol <= 0 {
		tol = 1e-3
	}
	seedUnpinned(p)
	adj := buildAdjacency(p)
	d := p.dims()

	// Give each active unpinned vertex an owned backing slice from one
	// arena, carrying over its current (seed or caller-guess) position.
	active := 0
	for vi := range p.Vertices {
		if !p.Vertices[vi].Pinned && len(adj[vi]) > 0 {
			active++
		}
	}
	arena := make([]float64, 0, d*active)
	for vi := range p.Vertices {
		v := &p.Vertices[vi]
		if v.Pinned || len(adj[vi]) == 0 {
			continue
		}
		arena = append(arena, v.Coord...)
		// Full slice expression: the result must not share spare
		// capacity with the next vertex's arena region, or a later
		// caller-side append could silently overwrite it.
		v.Coord = vivaldi.Coord(arena[len(arena)-d : len(arena) : len(arena)])
	}

	num := make(vivaldi.Coord, d)
	for iter := 0; iter < maxIter; iter++ {
		maxMove := 0.0
		for vi := range p.Vertices {
			v := &p.Vertices[vi]
			if v.Pinned || len(adj[vi]) == 0 {
				continue
			}
			for k := range num {
				num[k] = 0
			}
			var den float64
			for _, e := range adj[vi] {
				o := p.Vertices[e.other].Coord
				for k := range num {
					num[k] += e.rate * o[k]
				}
				den += e.rate
			}
			inv := 1 / den
			var ss float64
			for k := range num {
				num[k] *= inv
				delta := num[k] - v.Coord[k]
				ss += delta * delta
			}
			if move := math.Sqrt(ss); move > maxMove {
				maxMove = move
			}
			copy(v.Coord, num)
		}
		if maxMove < tol {
			return nil
		}
	}
	return nil
}

// Weiszfeld minimizes the linear network-usage objective Σ rate·dist
// directly (the multi-facility Weber problem), as an ablation against the
// quadratic spring surrogate (experiment X7). The iteration is IRLS with
// a smoothed objective Σ rate·√(dist²+ε²) — block-coordinate updates on
// the smoothed problem descend monotonically, avoiding the stalls of the
// raw Weiszfeld fixed point when services coincide. Coordinates are
// seeded from the quadratic Relaxation solution.
type Weiszfeld struct {
	MaxIter   int
	Tolerance float64
	// Epsilon is the smoothing length in coordinate units (default 1e-3,
	// i.e. a microsecond in latency space).
	Epsilon float64
}

// Name implements VirtualPlacer.
func (w Weiszfeld) Name() string { return "weiszfeld" }

// PlaceVirtual implements VirtualPlacer.
func (w Weiszfeld) PlaceVirtual(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	maxIter := w.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := w.Tolerance
	if tol <= 0 {
		tol = 1e-5
	}
	eps := w.Epsilon
	if eps <= 0 {
		eps = 1e-3
	}
	// Seed from the quadratic optimum: a good convex start.
	if err := (Relaxation{MaxIter: maxIter, Tolerance: tol}).PlaceVirtual(p); err != nil {
		return err
	}
	adj := buildAdjacency(p)
	d := p.dims()
	for iter := 0; iter < maxIter; iter++ {
		maxMove := 0.0
		for vi := range p.Vertices {
			v := &p.Vertices[vi]
			if v.Pinned || len(adj[vi]) == 0 {
				continue
			}
			num := make(vivaldi.Coord, d)
			var den float64
			for _, e := range adj[vi] {
				o := p.Vertices[e.other].Coord
				dist := v.Coord.Distance(o)
				wgt := e.rate / math.Sqrt(dist*dist+eps*eps)
				for k := range num {
					num[k] += wgt * o[k]
				}
				den += wgt
			}
			next := num.Scale(1 / den)
			if move := next.Distance(v.Coord); move > maxMove {
				maxMove = move
			}
			v.Coord = next
		}
		if maxMove < tol {
			return nil
		}
	}
	return nil
}

// Centroid is the one-shot baseline: each unpinned vertex is set to the
// rate-weighted centroid of its *pinned* neighbors only (no iteration).
// It matches Relaxation exactly on star circuits and degrades on deeper
// trees.
type Centroid struct{}

// Name implements VirtualPlacer.
func (Centroid) Name() string { return "centroid" }

// PlaceVirtual implements VirtualPlacer.
func (Centroid) PlaceVirtual(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	seedUnpinned(p)
	adj := buildAdjacency(p)
	d := p.dims()
	for vi := range p.Vertices {
		v := &p.Vertices[vi]
		if v.Pinned {
			continue
		}
		num := make(vivaldi.Coord, d)
		var den float64
		for _, e := range adj[vi] {
			o := p.Vertices[e.other]
			if !o.Pinned {
				continue
			}
			for k := range num {
				num[k] += e.rate * o.Coord[k]
			}
			den += e.rate
		}
		if den > 0 {
			v.Coord = num.Scale(1 / den)
		}
	}
	return nil
}

// GradientDescent minimizes the quadratic spring energy with plain
// gradient steps — slower than Relaxation but demonstrates the paper's
// remark that "other virtual placement algorithms could be based on ...
// a gradient descent within the cost space" [18].
type GradientDescent struct {
	MaxIter   int
	Step      float64 // relative step size (default 0.05)
	Tolerance float64
}

// Name implements VirtualPlacer.
func (GradientDescent) Name() string { return "gradient" }

// PlaceVirtual implements VirtualPlacer.
func (g GradientDescent) PlaceVirtual(p *Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	maxIter := g.MaxIter
	if maxIter <= 0 {
		maxIter = 2000
	}
	step := g.Step
	if step <= 0 {
		step = 0.05
	}
	tol := g.Tolerance
	if tol <= 0 {
		tol = 1e-4
	}
	seedUnpinned(p)
	adj := buildAdjacency(p)
	d := p.dims()
	for iter := 0; iter < maxIter; iter++ {
		maxMove := 0.0
		for vi := range p.Vertices {
			v := &p.Vertices[vi]
			if v.Pinned || len(adj[vi]) == 0 {
				continue
			}
			// ∇E_v = Σ 2·rate·(x_v - x_u); scale step by Σ rate so the
			// effective step is dimensionless.
			grad := make(vivaldi.Coord, d)
			var totalRate float64
			for _, e := range adj[vi] {
				o := p.Vertices[e.other].Coord
				for k := range grad {
					grad[k] += 2 * e.rate * (v.Coord[k] - o[k])
				}
				totalRate += e.rate
			}
			delta := grad.Scale(-step / (2 * totalRate))
			v.Coord = v.Coord.Add(delta)
			if m := delta.Norm(); m > maxMove {
				maxMove = m
			}
		}
		if maxMove < tol {
			return nil
		}
	}
	return nil
}

// adjEntry is one incident link from a vertex's perspective.
type adjEntry struct {
	other int
	rate  float64
}

func buildAdjacency(p *Problem) [][]adjEntry {
	adj := make([][]adjEntry, len(p.Vertices))
	for _, l := range p.Links {
		adj[l.A] = append(adj[l.A], adjEntry{other: l.B, rate: l.Rate})
		adj[l.B] = append(adj[l.B], adjEntry{other: l.A, rate: l.Rate})
	}
	return adj
}

// seedUnpinned gives zero-length unpinned coordinates an initial position
// at the pinned centroid.
func seedUnpinned(p *Problem) {
	d := p.dims()
	var seed vivaldi.Coord
	for vi := range p.Vertices {
		v := &p.Vertices[vi]
		if v.Pinned || len(v.Coord) == d {
			continue
		}
		if seed == nil {
			seed = p.pinnedCentroid()
		}
		v.Coord = seed.Clone()
	}
}
