package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testTopo(t *testing.T, seed int64) *Topology {
	t.Helper()
	top, err := Generate(DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return top
}

func TestDefaultConfigNodeCount(t *testing.T) {
	cfg := DefaultConfig()
	want := 4*4 + 4*4*3*12 // 16 transit + 576 stub = 592
	if got := cfg.TotalNodes(); got != want {
		t.Fatalf("TotalNodes() = %d, want %d", got, want)
	}
	top := testTopo(t, 1)
	if top.NumNodes() != want {
		t.Fatalf("NumNodes() = %d, want %d", top.NumNodes(), want)
	}
}

func TestGenerateConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		top := testTopo(t, seed)
		if !top.IsConnected() {
			t.Fatalf("seed %d: topology not connected", seed)
		}
	}
}

func TestNodeKindsAndDomains(t *testing.T) {
	top := testTopo(t, 2)
	transit, stub := 0, 0
	for _, n := range top.Nodes() {
		switch n.Kind {
		case Transit:
			transit++
			if n.StubDomain != -1 {
				t.Fatalf("transit node %d has StubDomain %d, want -1", n.ID, n.StubDomain)
			}
		case Stub:
			stub++
			if n.StubDomain < 0 {
				t.Fatalf("stub node %d has StubDomain %d, want >= 0", n.ID, n.StubDomain)
			}
		}
		if n.TransitDomain < 0 || n.TransitDomain >= 4 {
			t.Fatalf("node %d has TransitDomain %d out of range", n.ID, n.TransitDomain)
		}
	}
	if transit != 16 || stub != 576 {
		t.Fatalf("got %d transit, %d stub; want 16, 576", transit, stub)
	}
	if got := top.NumStubDomains(); got != 48 {
		t.Fatalf("NumStubDomains() = %d, want 48", got)
	}
}

func TestStubDomainMembership(t *testing.T) {
	top := testTopo(t, 3)
	for d := 0; d < top.NumStubDomains(); d++ {
		members := top.StubDomainMembers(d)
		if len(members) != 12 {
			t.Fatalf("stub domain %d has %d members, want 12", d, len(members))
		}
	}
}

func TestLatencySymmetricAndPositive(t *testing.T) {
	top := testTopo(t, 4)
	ids := []NodeID{0, 5, 17, 100, 333, 591}
	for _, a := range ids {
		for _, b := range ids {
			la, lb := top.Latency(a, b), top.Latency(b, a)
			if la != lb {
				t.Fatalf("Latency(%d,%d)=%v != Latency(%d,%d)=%v", a, b, la, b, a, lb)
			}
			if a == b && la != 0 {
				t.Fatalf("Latency(%d,%d) = %v, want 0", a, b, la)
			}
			if a != b && la <= 0 {
				t.Fatalf("Latency(%d,%d) = %v, want > 0", a, b, la)
			}
		}
	}
}

// Shortest-path latencies must satisfy the triangle inequality exactly
// (they are a true metric, unlike raw Internet RTTs).
func TestLatencyTriangleInequality(t *testing.T) {
	top := testTopo(t, 5)
	rng := rand.New(rand.NewSource(99))
	n := top.NumNodes()
	for trial := 0; trial < 500; trial++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		c := NodeID(rng.Intn(n))
		if top.Latency(a, c) > top.Latency(a, b)+top.Latency(b, c)+1e-9 {
			t.Fatalf("triangle violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
				a, c, top.Latency(a, c), a, b, b, c, top.Latency(a, b)+top.Latency(b, c))
		}
	}
}

func TestLatencyMatchesEdgeForAdjacent(t *testing.T) {
	top := testTopo(t, 6)
	for _, e := range top.Edges() {
		if top.Latency(e.A, e.B) > e.Latency+1e-9 {
			t.Fatalf("shortest path between adjacent %d-%d (%v) exceeds edge latency %v",
				e.A, e.B, top.Latency(e.A, e.B), e.Latency)
		}
	}
}

func TestIntraStubCheaperThanInterDomain(t *testing.T) {
	top := testTopo(t, 7)
	// Mean latency within one stub domain should be far below mean latency
	// between nodes in different transit domains.
	var intraSum, interSum float64
	var intraN, interN int
	m0 := top.StubDomainMembers(0)
	for i := 0; i < len(m0); i++ {
		for j := i + 1; j < len(m0); j++ {
			intraSum += top.Latency(m0[i], m0[j])
			intraN++
		}
	}
	var far NodeID = -1
	for _, n := range top.Nodes() {
		if n.Kind == Stub && n.TransitDomain != top.Node(m0[0]).TransitDomain {
			far = n.ID
			break
		}
	}
	if far < 0 {
		t.Fatal("no stub node in a different transit domain")
	}
	for _, a := range m0 {
		interSum += top.Latency(a, far)
		interN++
	}
	intra := intraSum / float64(intraN)
	inter := interSum / float64(interN)
	if intra*2 > inter {
		t.Fatalf("intra-stub mean %v not clearly below inter-domain mean %v", intra, inter)
	}
}

func TestNeighborsAndDegreeConsistent(t *testing.T) {
	top := testTopo(t, 8)
	for _, n := range top.Nodes() {
		nbrs := top.Neighbors(n.ID)
		if len(nbrs) != top.Degree(n.ID) {
			t.Fatalf("node %d: len(Neighbors)=%d != Degree=%d", n.ID, len(nbrs), top.Degree(n.ID))
		}
		if len(nbrs) == 0 {
			t.Fatalf("node %d has no neighbors", n.ID)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := testTopo(t, 42)
	b := testTopo(t, 42)
	if a.NumNodes() != b.NumNodes() || len(a.Edges()) != len(b.Edges()) {
		t.Fatal("same seed produced different shapes")
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatalf("edge %d differs: %v vs %v", i, e, b.Edges()[i])
		}
	}
}

func TestGenerateDiffersAcrossSeeds(t *testing.T) {
	a := testTopo(t, 1)
	b := testTopo(t, 2)
	same := true
	for i := range a.Edges() {
		if i >= len(b.Edges()) || a.Edges()[i] != b.Edges()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical edge sets")
	}
}

func TestPerturbLatenciesInvalidatesAndStaysConnected(t *testing.T) {
	top := testTopo(t, 9)
	before := top.Latency(0, 100)
	rng := rand.New(rand.NewSource(1))
	top.PerturbLatencies(rng, 0.5)
	if !top.IsConnected() {
		t.Fatal("perturbed topology lost connectivity")
	}
	after := top.Latency(0, 100)
	if before == after {
		t.Logf("warning: latency unchanged after perturbation (possible but unlikely)")
	}
	for _, e := range top.Edges() {
		if e.Latency < 0.1 {
			t.Fatalf("edge %v below floor", e)
		}
	}
}

func TestPerturbZeroAmountKeepsLatencies(t *testing.T) {
	top := testTopo(t, 10)
	edges := append([]Edge(nil), top.Edges()...)
	top.PerturbLatencies(rand.New(rand.NewSource(2)), 0)
	for i, e := range top.Edges() {
		if e.Latency != edges[i].Latency {
			t.Fatalf("edge %d latency changed with amount=0", i)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{TransitDomains: 1, TransitNodes: 0},
		{TransitDomains: 1, TransitNodes: 1, StubsPerTransit: -1},
		{TransitDomains: 1, TransitNodes: 1, StubsPerTransit: 1, StubNodes: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d: Validate() = nil, want error", i)
		}
	}
	cfg := DefaultConfig()
	cfg.IntraStubLatency = [2]float64{5, 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("descending latency range accepted")
	}
	cfg = DefaultConfig()
	cfg.ExtraStubEdgeProb = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("ExtraStubEdgeProb > 1 accepted")
	}
}

func TestSmallConfigs(t *testing.T) {
	cases := []Config{
		{TransitDomains: 1, TransitNodes: 1, StubsPerTransit: 0, StubNodes: 0,
			IntraTransitLatency: [2]float64{1, 2}},
		{TransitDomains: 1, TransitNodes: 2, StubsPerTransit: 1, StubNodes: 1,
			IntraStubLatency: [2]float64{1, 2}, StubUplinkLatency: [2]float64{1, 2},
			IntraTransitLatency: [2]float64{1, 2}},
		{TransitDomains: 2, TransitNodes: 1, StubsPerTransit: 1, StubNodes: 2,
			IntraStubLatency: [2]float64{1, 2}, StubUplinkLatency: [2]float64{1, 2},
			IntraTransitLatency: [2]float64{1, 2}, InterTransitLatency: [2]float64{5, 10}},
	}
	for i, cfg := range cases {
		top, err := Generate(cfg, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if top.NumNodes() != cfg.TotalNodes() {
			t.Fatalf("case %d: NumNodes=%d want %d", i, top.NumNodes(), cfg.TotalNodes())
		}
		if !top.IsConnected() {
			t.Fatalf("case %d: not connected", i)
		}
	}
}

// Property: for random small configs, generation succeeds, is connected,
// and node counts match the closed form.
func TestGeneratePropertyRandomConfigs(t *testing.T) {
	f := func(td, tn, spt, sn uint8, seed int64) bool {
		cfg := Config{
			TransitDomains:      1 + int(td%3),
			TransitNodes:        1 + int(tn%3),
			StubsPerTransit:     int(spt % 3),
			StubNodes:           1 + int(sn%4),
			IntraStubLatency:    [2]float64{1, 3},
			StubUplinkLatency:   [2]float64{1, 5},
			IntraTransitLatency: [2]float64{5, 10},
			InterTransitLatency: [2]float64{20, 40},
			ExtraStubEdgeProb:   0.2,
		}
		top, err := Generate(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return top.NumNodes() == cfg.TotalNodes() && top.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteNodesCSV(t *testing.T) {
	top := testTopo(t, 11)
	var buf bytes.Buffer
	if err := top.WriteNodesCSV(&buf); err != nil {
		t.Fatalf("WriteNodesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != top.NumNodes()+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), top.NumNodes()+1)
	}
	if !strings.HasPrefix(lines[0], "id,kind,") {
		t.Fatalf("unexpected header %q", lines[0])
	}
}

func TestWriteEdgesCSV(t *testing.T) {
	top := testTopo(t, 12)
	var buf bytes.Buffer
	if err := top.WriteEdgesCSV(&buf); err != nil {
		t.Fatalf("WriteEdgesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(top.Edges())+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), len(top.Edges())+1)
	}
}

func TestComputeStats(t *testing.T) {
	top := testTopo(t, 13)
	s := top.ComputeStats()
	if s.Nodes != 592 || s.TransitNodes != 16 || s.StubNodes != 576 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MinLatency <= 0 || s.MeanLatency <= s.MinLatency || s.MaxLatency < s.MeanLatency {
		t.Fatalf("latency stats not ordered: %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "nodes=592") {
		t.Fatalf("String() = %q", str)
	}
}

func TestKindString(t *testing.T) {
	if Transit.String() != "transit" || Stub.String() != "stub" {
		t.Fatal("Kind.String() wrong")
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Fatalf("Kind(9).String() = %q", got)
	}
}

func BenchmarkAPSP592(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		top := MustGenerate(cfg, rand.New(rand.NewSource(int64(i))))
		b.StartTimer()
		_ = top.LatencyMatrix()
	}
}
