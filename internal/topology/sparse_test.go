package topology

import (
	"math"
	"math/rand"
	"testing"
)

// TestSparseMatchesDense checks the factored transit-stub decomposition
// against the dense all-pairs matrix over every node pair. The two compute
// identical path sums in different float orders, so compare to 1e-9
// relative.
func TestSparseMatchesDense(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		top := MustGenerate(DefaultConfig(), rand.New(rand.NewSource(seed)))
		dense := top.LatencyMatrix()
		if err := top.EnableSparseLatency(); err != nil {
			t.Fatalf("seed %d: EnableSparseLatency: %v", seed, err)
		}
		n := top.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				got := top.Latency(NodeID(a), NodeID(b))
				want := dense[a][b]
				if diff := math.Abs(got - want); diff > 1e-9*(1+want) {
					t.Fatalf("seed %d: sparse Latency(%d,%d) = %v, dense = %v", seed, a, b, got, want)
				}
			}
		}
	}
}

// TestSparseSurvivesPerturbation: PerturbLatencies rebuilds the
// decomposition, and it must stay exact against a fresh dense solve.
func TestSparseSurvivesPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	top := MustGenerate(DefaultConfig(), rng)
	if err := top.EnableSparseLatency(); err != nil {
		t.Fatalf("EnableSparseLatency: %v", err)
	}
	top.PerturbLatencies(rng, 0.3)
	if !top.SparseEnabled() {
		t.Fatal("sparse mode lost after PerturbLatencies")
	}

	// Reference dense solve over an identical topology (same seeds).
	rng2 := rand.New(rand.NewSource(5))
	ref := MustGenerate(DefaultConfig(), rng2)
	ref.PerturbLatencies(rng2, 0.3)
	dense := ref.LatencyMatrix()

	n := top.NumNodes()
	for i := 0; i < 4000; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		got, want := top.Latency(a, b), dense[a][b]
		if diff := math.Abs(got - want); diff > 1e-9*(1+want) {
			t.Fatalf("after perturb: sparse Latency(%d,%d) = %v, dense = %v", a, b, got, want)
		}
	}
}

// TestSparseAvoidsDenseMatrix: enabling sparse mode and querying must not
// materialize the O(n²) matrix — that is the whole point.
func TestSparseAvoidsDenseMatrix(t *testing.T) {
	top := MustGenerate(DefaultConfig(), rand.New(rand.NewSource(9)))
	if err := top.EnableSparseLatency(); err != nil {
		t.Fatalf("EnableSparseLatency: %v", err)
	}
	_ = top.Latency(0, NodeID(top.NumNodes()-1))
	if top.latency != nil {
		t.Fatal("sparse Latency populated the dense matrix")
	}
}

// TestSparseLargeTopology exercises the X17-scale configuration (16k+
// nodes) where the dense matrix (~2 GB) is intentionally never built.
func TestSparseLargeTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TransitDomains = 4
	cfg.TransitNodes = 4
	cfg.StubsPerTransit = 64
	cfg.StubNodes = 16
	top := MustGenerate(cfg, rand.New(rand.NewSource(3)))
	if got := top.NumNodes(); got < 16000 {
		t.Fatalf("expected >= 16000 nodes, got %d", got)
	}
	if err := top.EnableSparseLatency(); err != nil {
		t.Fatalf("EnableSparseLatency: %v", err)
	}
	// Spot-check metric properties: symmetry, identity, triangle inequality.
	rng := rand.New(rand.NewSource(4))
	n := top.NumNodes()
	for i := 0; i < 2000; i++ {
		a, b, c := NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		ab, ba := top.Latency(a, b), top.Latency(b, a)
		if ab != ba {
			t.Fatalf("asymmetric: Latency(%d,%d)=%v, Latency(%d,%d)=%v", a, b, ab, b, a, ba)
		}
		if a == b && ab != 0 {
			t.Fatalf("Latency(%d,%d) = %v, want 0", a, b, ab)
		}
		if ac := top.Latency(a, c); ac > ab+top.Latency(b, c)+1e-9 {
			t.Fatalf("triangle violation: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)", a, c, ac, a, b, b, c)
		}
	}
}
