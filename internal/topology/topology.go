// Package topology generates and queries synthetic wide-area network
// topologies for SBON simulation.
//
// The generator produces GT-ITM–style transit-stub graphs: a small core of
// interconnected transit domains, with stub domains (edge networks) hanging
// off transit nodes. This is the topology class the paper uses for its
// Figure 2 ("a simulated transit-stub network topology with 600 nodes").
//
// Latencies are attached to edges by class (intra-stub < stub uplink <
// intra-transit < inter-transit) and end-to-end latency between any two
// nodes is the shortest-path sum, computed by Dijkstra and cached as an
// all-pairs matrix.
package topology

import (
	"fmt"
	"math/rand"
)

// NodeID identifies a node within one Topology. IDs are dense, starting
// at 0, so they can index slices directly.
type NodeID int

// Kind distinguishes transit (core) nodes from stub (edge) nodes.
type Kind uint8

// Node kinds.
const (
	Transit Kind = iota
	Stub
)

// String returns "transit" or "stub".
func (k Kind) String() string {
	switch k {
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node describes one vertex of the topology.
type Node struct {
	ID NodeID
	// Kind is Transit for core routers and Stub for edge hosts.
	Kind Kind
	// TransitDomain is the index of the transit domain this node belongs
	// to (for stub nodes: the domain of their uplink transit node).
	TransitDomain int
	// StubDomain is the index of the stub domain (unique across the whole
	// topology) or -1 for transit nodes.
	StubDomain int
}

// Edge is an undirected link with a latency in milliseconds.
type Edge struct {
	A, B    NodeID
	Latency float64
}

// Config parameterizes the transit-stub generator. The total node count is
// TransitDomains·TransitNodes (core) plus one stub domain of StubNodes per
// (transit node, stub) pair: TransitDomains·TransitNodes·StubsPerTransit·StubNodes.
type Config struct {
	// TransitDomains is the number of transit (core) domains.
	TransitDomains int
	// TransitNodes is the number of transit nodes per transit domain.
	TransitNodes int
	// StubsPerTransit is the number of stub domains attached to each
	// transit node.
	StubsPerTransit int
	// StubNodes is the number of nodes per stub domain.
	StubNodes int

	// Latency ranges [min,max) in milliseconds per edge class.
	IntraStubLatency    [2]float64 // edges inside a stub domain
	StubUplinkLatency   [2]float64 // stub node -> its transit node
	IntraTransitLatency [2]float64 // edges inside a transit domain
	InterTransitLatency [2]float64 // edges between transit domains

	// ExtraStubEdgeProb adds redundant intra-stub edges with this
	// probability per node pair (beyond the ring that guarantees
	// connectivity). Typical values are small (0.05–0.3).
	ExtraStubEdgeProb float64
}

// DefaultConfig returns the configuration used throughout the experiments:
// 4 transit domains × 4 transit nodes, 3 stub domains per transit node,
// 12 nodes per stub domain ⇒ 16 transit + 576 stub = 592 ≈ 600 nodes
// (the paper's Figure 2 scale).
func DefaultConfig() Config {
	return Config{
		TransitDomains:      4,
		TransitNodes:        4,
		StubsPerTransit:     3,
		StubNodes:           12,
		IntraStubLatency:    [2]float64{1, 6},
		StubUplinkLatency:   [2]float64{2, 12},
		IntraTransitLatency: [2]float64{8, 25},
		InterTransitLatency: [2]float64{35, 90},
		ExtraStubEdgeProb:   0.15,
	}
}

// Validate reports whether the configuration describes a buildable
// topology.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains = %d, need >= 1", c.TransitDomains)
	case c.TransitNodes < 1:
		return fmt.Errorf("topology: TransitNodes = %d, need >= 1", c.TransitNodes)
	case c.StubsPerTransit < 0:
		return fmt.Errorf("topology: StubsPerTransit = %d, need >= 0", c.StubsPerTransit)
	case c.StubNodes < 1 && c.StubsPerTransit > 0:
		return fmt.Errorf("topology: StubNodes = %d, need >= 1", c.StubNodes)
	}
	for _, r := range [][2]float64{c.IntraStubLatency, c.StubUplinkLatency, c.IntraTransitLatency, c.InterTransitLatency} {
		if r[0] < 0 || r[1] < r[0] {
			return fmt.Errorf("topology: invalid latency range %v", r)
		}
	}
	if c.ExtraStubEdgeProb < 0 || c.ExtraStubEdgeProb > 1 {
		return fmt.Errorf("topology: ExtraStubEdgeProb = %v, need in [0,1]", c.ExtraStubEdgeProb)
	}
	return nil
}

// TotalNodes returns the node count the configuration will produce.
func (c Config) TotalNodes() int {
	core := c.TransitDomains * c.TransitNodes
	return core + core*c.StubsPerTransit*c.StubNodes
}

// Topology is an undirected latency-weighted graph plus cached shortest
// paths. It is immutable after generation except through PerturbLatencies,
// which invalidates the cache.
type Topology struct {
	nodes []Node
	adj   [][]neighbor // adjacency lists
	edges []Edge

	latency [][]float64 // all-pairs shortest-path latency; nil until computed

	// sparse, when non-nil, answers Latency from the factored transit-stub
	// decomposition (see sparse.go) without materializing the dense matrix.
	sparse *sparseLatency
}

type neighbor struct {
	to  NodeID
	lat float64
}

// Generate builds a transit-stub topology from cfg using rng for all
// randomness. The result is connected by construction.
func Generate(cfg Config, rng *rand.Rand) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{}
	sample := func(r [2]float64) float64 {
		if r[1] == r[0] {
			return r[0]
		}
		return r[0] + rng.Float64()*(r[1]-r[0])
	}

	// Transit nodes first so that transit IDs are the low indices.
	transitIDs := make([][]NodeID, cfg.TransitDomains) // per domain
	for d := 0; d < cfg.TransitDomains; d++ {
		for i := 0; i < cfg.TransitNodes; i++ {
			id := NodeID(len(t.nodes))
			t.nodes = append(t.nodes, Node{ID: id, Kind: Transit, TransitDomain: d, StubDomain: -1})
			transitIDs[d] = append(transitIDs[d], id)
		}
	}
	t.adj = make([][]neighbor, len(t.nodes), cfg.TotalNodes())

	// Intra-transit-domain: ring plus one chord per domain (if >= 4 nodes)
	// for redundancy.
	for d := 0; d < cfg.TransitDomains; d++ {
		ids := transitIDs[d]
		n := len(ids)
		if n == 1 {
			continue
		}
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			if n == 2 && i == 1 {
				break // avoid duplicating the single edge
			}
			t.addEdge(ids[i], ids[j], sample(cfg.IntraTransitLatency))
		}
		if n >= 4 {
			t.addEdge(ids[0], ids[n/2], sample(cfg.IntraTransitLatency))
		}
	}

	// Inter-transit-domain: ring over domains plus a chord, connecting a
	// random node of each domain pair.
	if cfg.TransitDomains > 1 {
		for d := 0; d < cfg.TransitDomains; d++ {
			e := (d + 1) % cfg.TransitDomains
			if cfg.TransitDomains == 2 && d == 1 {
				break
			}
			a := transitIDs[d][rng.Intn(len(transitIDs[d]))]
			b := transitIDs[e][rng.Intn(len(transitIDs[e]))]
			t.addEdge(a, b, sample(cfg.InterTransitLatency))
		}
		if cfg.TransitDomains >= 4 {
			a := transitIDs[0][rng.Intn(len(transitIDs[0]))]
			b := transitIDs[cfg.TransitDomains/2][rng.Intn(len(transitIDs[cfg.TransitDomains/2]))]
			t.addEdge(a, b, sample(cfg.InterTransitLatency))
		}
	}

	// Stub domains: per (transit node, k) a connected cluster whose
	// gateway (first node) uplinks to the transit node.
	stubDomain := 0
	for d := 0; d < cfg.TransitDomains; d++ {
		for _, tid := range transitIDs[d] {
			for k := 0; k < cfg.StubsPerTransit; k++ {
				ids := make([]NodeID, 0, cfg.StubNodes)
				for i := 0; i < cfg.StubNodes; i++ {
					id := NodeID(len(t.nodes))
					t.nodes = append(t.nodes, Node{ID: id, Kind: Stub, TransitDomain: d, StubDomain: stubDomain})
					t.adj = append(t.adj, nil)
					ids = append(ids, id)
				}
				// Uplink from the gateway.
				t.addEdge(ids[0], tid, sample(cfg.StubUplinkLatency))
				// Ring inside the stub domain guarantees connectivity.
				n := len(ids)
				if n > 1 {
					for i := 0; i < n; i++ {
						j := (i + 1) % n
						if n == 2 && i == 1 {
							break
						}
						t.addEdge(ids[i], ids[j], sample(cfg.IntraStubLatency))
					}
				}
				// Random extra chords.
				for i := 0; i < n; i++ {
					for j := i + 2; j < n; j++ {
						if i == 0 && j == n-1 {
							continue // ring edge already present
						}
						if rng.Float64() < cfg.ExtraStubEdgeProb {
							t.addEdge(ids[i], ids[j], sample(cfg.IntraStubLatency))
						}
					}
				}
				stubDomain++
			}
		}
	}
	return t, nil
}

// MustGenerate is Generate but panics on configuration error; intended
// for tests and examples with known-good configs.
func MustGenerate(cfg Config, rng *rand.Rand) *Topology {
	t, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Topology) addEdge(a, b NodeID, lat float64) {
	t.adj[a] = append(t.adj[a], neighbor{to: b, lat: lat})
	t.adj[b] = append(t.adj[b], neighbor{to: a, lat: lat})
	t.edges = append(t.edges, Edge{A: a, B: b, Latency: lat})
	t.latency = nil
	t.sparse = nil
}

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Nodes returns all nodes in ID order. The caller must not modify the
// returned slice.
func (t *Topology) Nodes() []Node { return t.nodes }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Edges returns all edges. The caller must not modify the returned slice.
func (t *Topology) Edges() []Edge { return t.edges }

// Neighbors returns the IDs adjacent to id, in insertion order.
func (t *Topology) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, len(t.adj[id]))
	for i, nb := range t.adj[id] {
		out[i] = nb.to
	}
	return out
}

// Degree returns the number of edges incident to id.
func (t *Topology) Degree(id NodeID) int { return len(t.adj[id]) }

// MinEdgeLatency returns the smallest single-edge latency in the graph,
// in milliseconds (0 for an edgeless topology). Any path between two
// distinct nodes crosses at least one edge, so this bounds every
// pairwise latency from below — the conservative lookahead the sharded
// simulation data plane windows by.
func (t *Topology) MinEdgeLatency() float64 {
	min := 0.0
	for i, e := range t.edges {
		if i == 0 || e.Latency < min {
			min = e.Latency
		}
	}
	return min
}

// StubNodeIDs returns the IDs of all stub nodes in ascending order.
func (t *Topology) StubNodeIDs() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == Stub {
			out = append(out, n.ID)
		}
	}
	return out
}

// TransitNodeIDs returns the IDs of all transit nodes in ascending order.
func (t *Topology) TransitNodeIDs() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == Transit {
			out = append(out, n.ID)
		}
	}
	return out
}

// StubDomainMembers returns the node IDs in the given stub domain.
func (t *Topology) StubDomainMembers(stubDomain int) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.StubDomain == stubDomain {
			out = append(out, n.ID)
		}
	}
	return out
}

// NumStubDomains returns the count of distinct stub domains.
func (t *Topology) NumStubDomains() int {
	max := -1
	for _, n := range t.nodes {
		if n.StubDomain > max {
			max = n.StubDomain
		}
	}
	return max + 1
}

// Latency returns the shortest-path latency in milliseconds between a and
// b. In sparse mode (EnableSparseLatency) it answers from the factored
// decomposition in O(1) without a dense matrix; otherwise it computes and
// caches the all-pairs matrix on first use. The lazy dense computation is
// not goroutine-safe: callers that share a Topology across goroutines must
// either enable sparse mode or force the cache once via LatencyMatrix
// before concurrent reads.
func (t *Topology) Latency(a, b NodeID) float64 {
	if t.sparse != nil {
		return t.sparse.dist(a, b)
	}
	if t.latency == nil {
		t.computeAPSP()
	}
	return t.latency[a][b]
}

// LatencyMatrix returns the full all-pairs shortest-path latency matrix.
// The caller must not modify it.
func (t *Topology) LatencyMatrix() [][]float64 {
	if t.latency == nil {
		t.computeAPSP()
	}
	return t.latency
}

// computeAPSP fills the latency cache via one Dijkstra run per source.
// The matrix is symmetrized afterwards: the graph is undirected, but
// floating-point summation order can differ per source by an ulp.
func (t *Topology) computeAPSP() {
	n := len(t.nodes)
	t.latency = make([][]float64, n)
	for s := 0; s < n; s++ {
		t.latency[s] = t.dijkstra(NodeID(s))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.latency[j][i] = t.latency[i][j]
		}
	}
}

// dijkstra computes single-source shortest-path latencies from src.
func (t *Topology) dijkstra(src NodeID) []float64 {
	n := len(t.nodes)
	const inf = 1e18
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{node: src, dist: 0}}}
	for pq.Len() > 0 {
		it := pq.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, nb := range t.adj[it.node] {
			if d := it.dist + nb.lat; d < dist[nb.to] {
				dist[nb.to] = d
				pq.push(distItem{node: nb.to, dist: d})
			}
		}
	}
	return dist
}

// IsConnected reports whether every node is reachable from node 0.
func (t *Topology) IsConnected() bool {
	if len(t.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(t.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range t.adj[v] {
			if !seen[nb.to] {
				seen[nb.to] = true
				count++
				stack = append(stack, nb.to)
			}
		}
	}
	return count == len(t.nodes)
}

// PerturbLatencies multiplies every edge latency by a random factor in
// [1-amount, 1+amount], modelling network dynamics, and invalidates the
// cached shortest paths. Latencies are floored at 0.1 ms.
func (t *Topology) PerturbLatencies(rng *rand.Rand, amount float64) {
	if amount < 0 {
		amount = -amount
	}
	for i := range t.edges {
		f := 1 + (rng.Float64()*2-1)*amount
		lat := t.edges[i].Latency * f
		if lat < 0.1 {
			lat = 0.1
		}
		t.edges[i].Latency = lat
	}
	// Rebuild adjacency from edges to keep both views consistent.
	for i := range t.adj {
		t.adj[i] = t.adj[i][:0]
	}
	for _, e := range t.edges {
		t.adj[e.A] = append(t.adj[e.A], neighbor{to: e.B, lat: e.Latency})
		t.adj[e.B] = append(t.adj[e.B], neighbor{to: e.A, lat: e.Latency})
	}
	t.latency = nil
	if t.sparse != nil {
		// Perturbation changes edge weights, never the graph shape, so the
		// decomposition stays valid and rebuilds cheaply in place.
		s, err := t.buildSparse()
		if err != nil {
			panic(err) // unreachable: shape was validated at enable time
		}
		t.sparse = s
	}
}

// distHeap is a binary min-heap over tentative distances. A hand-rolled
// heap avoids the interface indirection of container/heap in the hot APSP
// loop.
type distHeap struct {
	items []distItem
}

type distItem struct {
	node NodeID
	dist float64
}

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].dist <= h.items[i].dist {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < last && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
