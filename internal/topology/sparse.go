package topology

// Sparse latency mode.
//
// The full all-pairs shortest-path matrix is O(n²) memory and O(n·E·log n)
// time: at 16k nodes that is ~2.1 GB and tens of seconds of Dijkstra — the
// single blocker for 100k-node overlays. Transit-stub topologies admit an
// exact factored form because every stub domain hangs off the transit core
// by exactly one uplink edge (a cut edge):
//
//   - a shortest path between two nodes of the same stub domain never
//     leaves the domain (leaving costs the uplink twice, and the local
//     shortest path is already minimal within the domain);
//   - a shortest path between transit nodes never enters a stub domain
//     (it would have to exit through the same uplink it entered by);
//   - every other path crosses the cut edges of the endpoint domains, so
//     dist(a,b) = local(a,gw_a) + up_a + transit(t_a,t_b) + up_b + local(gw_b,b).
//
// The decomposition therefore stores one APSP over the transit subgraph
// (16×16 at the default core), one local APSP per stub domain (16×16 per
// domain at X17 scale), and two O(n) per-node arrays — ~3 MB at 16k nodes
// versus 2.1 GB dense, with O(1) lookups.
type sparseLatency struct {
	anchor   []int32       // per node: index into transit of its anchor transit node
	toAnchor []float64     // per node: shortest latency to that anchor (0 for transit)
	domain   []int32       // per node: stub domain, or -1 for transit nodes
	domIdx   []int32       // per node: index within its domain's member list
	transit  [][]float64   // APSP over the transit subgraph
	local    [][][]float64 // per stub domain: local APSP over its members
}

func (s *sparseLatency) dist(a, b NodeID) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a // canonical summation order keeps dist symmetric to the ulp
	}
	if da := s.domain[a]; da >= 0 && da == s.domain[b] {
		return s.local[da][s.domIdx[a]][s.domIdx[b]]
	}
	return s.toAnchor[a] + s.transit[s.anchor[a]][s.anchor[b]] + s.toAnchor[b]
}

// SparseEnabled reports whether Latency answers from the factored
// transit-stub decomposition instead of the dense all-pairs matrix.
func (t *Topology) SparseEnabled() bool { return t.sparse != nil }

// EnableSparseLatency switches Latency to the exact factored form above
// without ever materializing the dense matrix. It fails if the graph is
// not single-uplink transit-stub (a stub domain with zero or multiple
// transit uplinks, or an edge between two different stub domains breaks
// the cut-edge argument). Lookups after a successful call are pure reads
// and safe for concurrent use. PerturbLatencies rebuilds the
// decomposition automatically.
func (t *Topology) EnableSparseLatency() error {
	s, err := t.buildSparse()
	if err != nil {
		return err
	}
	t.sparse = s
	return nil
}

func (t *Topology) buildSparse() (*sparseLatency, error) {
	n := len(t.nodes)
	s := &sparseLatency{
		anchor:   make([]int32, n),
		toAnchor: make([]float64, n),
		domain:   make([]int32, n),
		domIdx:   make([]int32, n),
	}

	// Index the transit core and the stub domains.
	tIdx := make(map[NodeID]int32)
	var transitIDs []NodeID
	numDoms := 0
	for _, nd := range t.nodes {
		if nd.Kind == Transit {
			tIdx[nd.ID] = int32(len(transitIDs))
			transitIDs = append(transitIDs, nd.ID)
			s.domain[nd.ID] = -1
		} else {
			s.domain[nd.ID] = int32(nd.StubDomain)
			if nd.StubDomain+1 > numDoms {
				numDoms = nd.StubDomain + 1
			}
		}
	}
	if len(transitIDs) == 0 {
		return nil, errSparse("no transit nodes")
	}
	members := make([][]NodeID, numDoms)
	for _, nd := range t.nodes { // nodes are in ID order
		if nd.Kind == Stub {
			s.domIdx[nd.ID] = int32(len(members[nd.StubDomain]))
			members[nd.StubDomain] = append(members[nd.StubDomain], nd.ID)
		}
	}

	// Classify edges and find each domain's single uplink.
	type uplink struct {
		gw      NodeID // stub-side endpoint
		transit NodeID
		lat     float64
		count   int
	}
	ups := make([]uplink, numDoms)
	for _, e := range t.edges {
		da, db := s.domain[e.A], s.domain[e.B]
		switch {
		case da == -1 && db == -1: // transit-transit: handled by transit APSP
		case da == db: // intra-domain
		case da == -1 || db == -1: // uplink
			stub, tr := e.A, e.B
			if da == -1 {
				stub, tr = e.B, e.A
			}
			d := s.domain[stub]
			ups[d] = uplink{gw: stub, transit: tr, lat: e.Latency, count: ups[d].count + 1}
		default:
			return nil, errSparse("edge between distinct stub domains")
		}
	}

	// APSP over the transit subgraph only. Symmetrized like the dense
	// matrix: per-source Dijkstra sums can differ by an ulp per direction.
	s.transit = make([][]float64, len(transitIDs))
	for i, src := range transitIDs {
		s.transit[i] = dijkstraWithin(t, src, func(id NodeID) (int32, bool) {
			x, ok := tIdx[id]
			return x, ok
		}, len(transitIDs))
	}
	symmetrize(s.transit)

	// Per-domain local APSP, then the per-node anchor arrays.
	s.local = make([][][]float64, numDoms)
	for d := 0; d < numDoms; d++ {
		up := ups[d]
		if up.count != 1 {
			return nil, errSparse("stub domain without exactly one transit uplink")
		}
		mem := members[d]
		memIdx := make(map[NodeID]int32, len(mem))
		for i, id := range mem {
			memIdx[id] = int32(i)
		}
		s.local[d] = make([][]float64, len(mem))
		for i, src := range mem {
			s.local[d][i] = dijkstraWithin(t, src, func(id NodeID) (int32, bool) {
				x, ok := memIdx[id]
				return x, ok
			}, len(mem))
		}
		symmetrize(s.local[d])
		gwIdx := memIdx[up.gw]
		anchor := tIdx[up.transit]
		for i, id := range mem {
			s.anchor[id] = anchor
			s.toAnchor[id] = s.local[d][i][gwIdx] + up.lat
		}
	}
	for id, x := range tIdx {
		s.anchor[id] = x
		s.toAnchor[id] = 0
	}
	return s, nil
}

// dijkstraWithin runs single-source shortest paths from src restricted to
// the subgraph induced by the nodes idx maps (idx also assigns the dense
// output index). src must be in the subgraph.
func dijkstraWithin(t *Topology, src NodeID, idx func(NodeID) (int32, bool), size int) []float64 {
	const inf = 1e18
	dist := make([]float64, size)
	for i := range dist {
		dist[i] = inf
	}
	si, _ := idx(src)
	dist[si] = 0
	pq := &distHeap{items: []distItem{{node: src, dist: 0}}}
	for pq.Len() > 0 {
		it := pq.pop()
		ii, _ := idx(it.node)
		if it.dist > dist[ii] {
			continue
		}
		for _, nb := range t.adj[it.node] {
			ni, ok := idx(nb.to)
			if !ok {
				continue
			}
			if d := it.dist + nb.lat; d < dist[ni] {
				dist[ni] = d
				pq.push(distItem{node: nb.to, dist: d})
			}
		}
	}
	return dist
}

func symmetrize(m [][]float64) {
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			m[j][i] = m[i][j]
		}
	}
}

type errSparse string

func (e errSparse) Error() string { return "topology: sparse latency: " + string(e) }
