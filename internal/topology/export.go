package topology

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteNodesCSV writes one row per node: id, kind, transit_domain,
// stub_domain, degree.
func (t *Topology) WriteNodesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "kind", "transit_domain", "stub_domain", "degree"}); err != nil {
		return fmt.Errorf("topology: write csv header: %w", err)
	}
	for _, n := range t.nodes {
		rec := []string{
			strconv.Itoa(int(n.ID)),
			n.Kind.String(),
			strconv.Itoa(n.TransitDomain),
			strconv.Itoa(n.StubDomain),
			strconv.Itoa(t.Degree(n.ID)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("topology: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEdgesCSV writes one row per edge: a, b, latency_ms.
func (t *Topology) WriteEdgesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"a", "b", "latency_ms"}); err != nil {
		return fmt.Errorf("topology: write csv header: %w", err)
	}
	for _, e := range t.edges {
		rec := []string{
			strconv.Itoa(int(e.A)),
			strconv.Itoa(int(e.B)),
			strconv.FormatFloat(e.Latency, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("topology: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Stats summarizes a topology for logs and experiment output.
type Stats struct {
	Nodes        int
	TransitNodes int
	StubNodes    int
	StubDomains  int
	Edges        int
	MinLatency   float64 // smallest pairwise shortest-path latency (excl. self)
	MaxLatency   float64 // graph diameter in latency terms
	MeanLatency  float64 // mean pairwise latency
}

// ComputeStats computes summary statistics, forcing the all-pairs matrix.
func (t *Topology) ComputeStats() Stats {
	s := Stats{
		Nodes:       t.NumNodes(),
		Edges:       len(t.edges),
		StubDomains: t.NumStubDomains(),
	}
	for _, n := range t.nodes {
		if n.Kind == Transit {
			s.TransitNodes++
		} else {
			s.StubNodes++
		}
	}
	m := t.LatencyMatrix()
	first := true
	var sum float64
	var count int
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			d := m[i][j]
			sum += d
			count++
			if first || d < s.MinLatency {
				s.MinLatency = d
			}
			if first || d > s.MaxLatency {
				s.MaxLatency = d
			}
			first = false
		}
	}
	if count > 0 {
		s.MeanLatency = sum / float64(count)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d (transit=%d stub=%d domains=%d) edges=%d latency ms min/mean/max = %.1f/%.1f/%.1f",
		s.Nodes, s.TransitNodes, s.StubNodes, s.StubDomains, s.Edges, s.MinLatency, s.MeanLatency, s.MaxLatency)
}
