package costspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hourglass/sbon/internal/vivaldi"
)

func figure2Space() *Space {
	return NewLatencyLoadSpace(100)
}

func TestSquaredWeight(t *testing.T) {
	w := SquaredWeight{Scale: 100}
	if got := w.Weight(0); got != 0 {
		t.Fatalf("Weight(0) = %v, want 0", got)
	}
	if got := w.Weight(0.5); got != 25 {
		t.Fatalf("Weight(0.5) = %v, want 25", got)
	}
	if got := w.Weight(1); got != 100 {
		t.Fatalf("Weight(1) = %v, want 100", got)
	}
	if got := w.Weight(-1); got != 0 {
		t.Fatalf("Weight(-1) = %v, want 0 (clamped)", got)
	}
}

func TestLinearWeight(t *testing.T) {
	w := LinearWeight{Scale: 10}
	if got := w.Weight(0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Weight(0.3) = %v, want 3", got)
	}
	if got := w.Weight(-0.3); got != 0 {
		t.Fatalf("Weight(-0.3) = %v, want 0", got)
	}
}

func TestExponentialWeight(t *testing.T) {
	w := ExponentialWeight{Scale: 1, Rate: 1}
	if got := w.Weight(0); got != 0 {
		t.Fatalf("Weight(0) = %v, want 0", got)
	}
	if got := w.Weight(1); math.Abs(got-(math.E-1)) > 1e-12 {
		t.Fatalf("Weight(1) = %v, want e-1", got)
	}
}

func TestHingeWeight(t *testing.T) {
	w := HingeWeight{Threshold: 0.5, Scale: 10}
	if got := w.Weight(0.4); got != 0 {
		t.Fatalf("Weight(0.4) = %v, want 0", got)
	}
	if got := w.Weight(0.7); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Weight(0.7) = %v, want 2", got)
	}
}

// All weighting functions must be non-negative with zero at the ideal
// value and monotone non-decreasing — the paper's §3.1 contract.
func TestWeightFuncContractProperty(t *testing.T) {
	funcs := []WeightFunc{
		SquaredWeight{Scale: 100},
		LinearWeight{Scale: 50},
		ExponentialWeight{Scale: 10, Rate: 2},
		HingeWeight{Threshold: 0.5, Scale: 20},
	}
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 10))
		b = math.Abs(math.Mod(b, 10))
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, w := range funcs {
			if w.Weight(0) != 0 {
				return false
			}
			wl, wh := w.Weight(lo), w.Weight(hi)
			if wl < 0 || wh < 0 || wl > wh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightFuncNames(t *testing.T) {
	for _, w := range []WeightFunc{
		SquaredWeight{Scale: 1}, LinearWeight{Scale: 1},
		ExponentialWeight{Scale: 1, Rate: 1}, HingeWeight{Threshold: 0, Scale: 1},
	} {
		if w.Name() == "" {
			t.Fatalf("%T has empty Name()", w)
		}
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := figure2Space().Validate(); err != nil {
		t.Fatalf("figure-2 space invalid: %v", err)
	}
	if _, err := NewLatencySpace(0); err == nil {
		t.Fatal("0-dim latency space accepted")
	}
	s := &Space{VectorDims: 2, Scalars: []ScalarDim{{Name: "x", Weight: nil}}}
	if err := s.Validate(); err == nil {
		t.Fatal("nil weight function accepted")
	}
}

func TestSpaceDims(t *testing.T) {
	s := figure2Space()
	if got := s.Dims(); got != 3 {
		t.Fatalf("Dims() = %d, want 3", got)
	}
	ls, err := NewLatencySpace(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Dims(); got != 4 {
		t.Fatalf("Dims() = %d, want 4", got)
	}
}

func TestNewPointAppliesWeighting(t *testing.T) {
	s := figure2Space()
	p := s.NewPoint(vivaldi.Coord{3, 4}, []float64{0.5})
	if p[0] != 3 || p[1] != 4 {
		t.Fatalf("vector part = %v", p[:2])
	}
	if p[2] != 25 { // 100 * 0.5^2
		t.Fatalf("scalar part = %v, want 25", p[2])
	}
}

func TestNewPointPanicsOnMismatch(t *testing.T) {
	s := figure2Space()
	assertPanics(t, func() { s.NewPoint(vivaldi.Coord{1}, []float64{0}) })
	assertPanics(t, func() { s.NewPoint(vivaldi.Coord{1, 2}, nil) })
}

func TestIdealPointZeroScalars(t *testing.T) {
	s := figure2Space()
	p := s.IdealPoint(vivaldi.Coord{7, 8})
	if p[0] != 7 || p[1] != 8 || p[2] != 0 {
		t.Fatalf("IdealPoint = %v", p)
	}
}

func TestVectorAndScalarAccessors(t *testing.T) {
	s := figure2Space()
	p := s.NewPoint(vivaldi.Coord{1, 2}, []float64{1})
	v := s.Vector(p)
	if len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Fatalf("Vector = %v", v)
	}
	sc := s.ScalarComponents(p)
	if len(sc) != 1 || sc[0] != 100 {
		t.Fatalf("ScalarComponents = %v", sc)
	}
}

// The Figure 3 situation: N1 is closer in latency but heavily loaded, so
// its full-space distance must exceed lightly loaded N2's.
func TestFigure3LoadMakesNearNodeFar(t *testing.T) {
	s := figure2Space()
	target := s.IdealPoint(vivaldi.Coord{0, 0})
	n1 := s.NewPoint(vivaldi.Coord{5, 0}, []float64{0.9})  // 5ms away, load 0.9 -> 81
	n2 := s.NewPoint(vivaldi.Coord{20, 0}, []float64{0.1}) // 20ms away, load 0.1 -> 1
	if s.VectorDistance(target, n1) >= s.VectorDistance(target, n2) {
		t.Fatal("test setup broken: N1 should be nearer in latency")
	}
	if s.Distance(target, n1) <= s.Distance(target, n2) {
		t.Fatalf("full-space distance should prefer N2: d(N1)=%v d(N2)=%v",
			s.Distance(target, n1), s.Distance(target, n2))
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	s := figure2Space()
	assertPanics(t, func() { s.Distance(Point{1, 2}, Point{1, 2, 3}) })
}

// Full-space distance must satisfy the metric axioms (it is Euclidean).
func TestDistanceMetricAxiomsProperty(t *testing.T) {
	s := figure2Space()
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a := Point{clamp(a1), clamp(a2), math.Abs(clamp(a3))}
		b := Point{clamp(b1), clamp(b2), math.Abs(clamp(b3))}
		c := Point{clamp(c1), clamp(c2), math.Abs(clamp(c3))}
		dab, dba := s.Distance(a, b), s.Distance(b, a)
		if dab != dba || dab < 0 {
			return false
		}
		if s.Distance(a, a) != 0 {
			return false
		}
		// Triangle inequality with FP slack.
		return s.Distance(a, c) <= s.Distance(a, b)+s.Distance(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorDistanceIgnoresScalars(t *testing.T) {
	s := figure2Space()
	a := s.NewPoint(vivaldi.Coord{0, 0}, []float64{0})
	b := s.NewPoint(vivaldi.Coord{3, 4}, []float64{1})
	if got := s.VectorDistance(a, b); got != 5 {
		t.Fatalf("VectorDistance = %v, want 5", got)
	}
	if got := s.Distance(a, b); got <= 5 {
		t.Fatalf("full Distance = %v, want > 5 (load dimension)", got)
	}
}

func TestComputeBounds(t *testing.T) {
	pts := []Point{{0, 0, 0}, {10, 20, 5}}
	b, err := ComputeBounds(pts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts[0] {
		if b.Min[i] >= 0 && i != 2 {
			// margin must push min strictly below 0 where span > 0
			t.Fatalf("dim %d: Min %v not below 0", i, b.Min[i])
		}
		if b.Max[i] <= pts[1][i] {
			t.Fatalf("dim %d: Max %v not above %v", i, b.Max[i], pts[1][i])
		}
	}
	if _, err := ComputeBounds(nil, 0.05); err == nil {
		t.Fatal("empty point set accepted")
	}
	if _, err := ComputeBounds([]Point{{1}, {1, 2}}, 0); err == nil {
		t.Fatal("mixed dimensionalities accepted")
	}
}

func TestComputeBoundsDegenerateDimension(t *testing.T) {
	pts := []Point{{5, 1}, {5, 2}}
	b, err := ComputeBounds(pts, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Max[0] <= b.Min[0] {
		t.Fatalf("degenerate dim not opened: [%v,%v]", b.Min[0], b.Max[0])
	}
}

func TestQuantizeDequantizeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 50}
	}
	b, err := ComputeBounds(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	const bits = 10
	cellSpan := 0.0
	for i := range b.Min {
		s := (b.Max[i] - b.Min[i]) / float64(uint64(1)<<bits)
		if s > cellSpan {
			cellSpan = s
		}
	}
	for _, p := range pts {
		cells := b.Quantize(p, bits)
		back := b.Dequantize(cells, bits)
		for i := range p {
			if math.Abs(back[i]-p[i]) > cellSpan {
				t.Fatalf("roundtrip error %v exceeds cell span %v (dim %d)", math.Abs(back[i]-p[i]), cellSpan, i)
			}
		}
	}
}

func TestQuantizeClampsOutOfRange(t *testing.T) {
	b := Bounds{Min: Point{0, 0}, Max: Point{10, 10}}
	const bits = 8
	lo := b.Quantize(Point{-5, -5}, bits)
	hi := b.Quantize(Point{50, 50}, bits)
	if lo[0] != 0 || lo[1] != 0 {
		t.Fatalf("low clamp = %v", lo)
	}
	maxCell := uint32(1)<<bits - 1
	if hi[0] != maxCell || hi[1] != maxCell {
		t.Fatalf("high clamp = %v, want %v", hi, maxCell)
	}
}

// Property: quantization cells are within range for arbitrary points.
func TestQuantizeRangeProperty(t *testing.T) {
	b := Bounds{Min: Point{-100, -100, 0}, Max: Point{100, 100, 100}}
	const bits = 12
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		cells := b.Quantize(Point{x, y, z}, bits)
		for _, c := range cells {
			if uint64(c) >= uint64(1)<<bits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("Clone not independent")
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
