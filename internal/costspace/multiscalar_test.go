package costspace

import (
	"testing"

	"github.com/hourglass/sbon/internal/vivaldi"
)

// The paper lists CPU load, memory consumption, and disk capacity as
// scalar cost examples (§3.1). These tests exercise spaces with several
// scalar dimensions and heterogeneous weighting functions.

func multiScalarSpace() *Space {
	return &Space{
		VectorDims: 2,
		Scalars: []ScalarDim{
			{Name: "cpu-load", Weight: SquaredWeight{Scale: 100}},
			{Name: "memory", Weight: LinearWeight{Scale: 50}},
			{Name: "disk", Weight: HingeWeight{Threshold: 0.8, Scale: 200}},
		},
	}
}

func TestMultiScalarSpaceDims(t *testing.T) {
	s := multiScalarSpace()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Dims(); got != 5 {
		t.Fatalf("Dims() = %d, want 5", got)
	}
}

func TestMultiScalarPointAssembly(t *testing.T) {
	s := multiScalarSpace()
	p := s.NewPoint(vivaldi.Coord{1, 2}, []float64{0.5, 0.4, 0.9})
	want := []float64{1, 2, 25, 20, 20} // 100·0.25, 50·0.4, 200·(0.9−0.8)
	for i, w := range want {
		if diff := p[i] - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("p[%d] = %v, want %v", i, p[i], w)
		}
	}
	sc := s.ScalarComponents(p)
	if len(sc) != 3 {
		t.Fatalf("ScalarComponents len = %d", len(sc))
	}
}

// A node terrible on any single scalar dimension must lose to a node
// mediocre on all of them, when the weighting makes that dimension
// dominant — the trade-off expression §3.1 promises.
func TestMultiScalarTradeoff(t *testing.T) {
	s := multiScalarSpace()
	target := s.IdealPoint(vivaldi.Coord{0, 0})
	diskFull := s.NewPoint(vivaldi.Coord{1, 0}, []float64{0.1, 0.1, 1.0}) // hinge: 200·0.2 = 40
	mediocre := s.NewPoint(vivaldi.Coord{5, 0}, []float64{0.3, 0.3, 0.5}) // 9 + 15 + 0
	if s.Distance(target, diskFull) <= s.Distance(target, mediocre) {
		t.Fatalf("disk-full node should rank worse: %v vs %v",
			s.Distance(target, diskFull), s.Distance(target, mediocre))
	}
}

func TestMultiScalarIdealPointAllZero(t *testing.T) {
	s := multiScalarSpace()
	p := s.IdealPoint(vivaldi.Coord{3, 4})
	for i, comp := range s.ScalarComponents(p) {
		if comp != 0 {
			t.Fatalf("ideal scalar %d = %v, want 0", i, comp)
		}
	}
}

func TestMultiScalarQuantizeRoundtrip(t *testing.T) {
	s := multiScalarSpace()
	pts := []Point{
		s.NewPoint(vivaldi.Coord{0, 0}, []float64{0, 0, 0}),
		s.NewPoint(vivaldi.Coord{100, 100}, []float64{1, 1, 1}),
		s.NewPoint(vivaldi.Coord{50, 25}, []float64{0.5, 0.2, 0.9}),
	}
	b, err := ComputeBounds(pts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const bits = 10
	for _, p := range pts {
		cells := b.Quantize(p, bits)
		if len(cells) != 5 {
			t.Fatalf("quantized to %d cells", len(cells))
		}
		back := b.Dequantize(cells, bits)
		if len(back) != 5 {
			t.Fatalf("dequantized to %d dims", len(back))
		}
	}
}
