// Package costspace implements the paper's central abstraction: a
// multi-dimensional metric space in which each physical node chooses a
// coordinate that expresses the cost of using it.
//
// A cost space has two kinds of dimensions (§3.1 of the paper):
//
//   - Vector dimensions capture pairwise costs such as communication
//     latency. They come from a network-coordinate system (package
//     vivaldi) and distances within them estimate the pairwise cost.
//   - Scalar dimensions capture single-node costs such as CPU load. Each
//     node computes its coordinate component by applying a deployer-
//     supplied weighting function to its raw value. Weighting functions
//     are non-negative with zero representing the ideal value, so the
//     "ideal" coordinate for any placement always has zeros in every
//     scalar dimension.
//
// Virtual placement operates only over the vector subspace (the ideal
// scalar components are all zero); physical mapping measures full-space
// distance, which is how an overloaded node that is nearby in latency
// ends up "far away" (the paper's Figure 3, node N1).
package costspace

import (
	"fmt"
	"math"

	"github.com/hourglass/sbon/internal/vivaldi"
)

// Point is a coordinate in a cost space: the first Space.VectorDims
// components are vector (latency) coordinates, the remainder are weighted
// scalar components, one per scalar dimension.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// WeightFunc maps a raw scalar node property (e.g. CPU load in [0,1]) to
// its cost-space component. Implementations must be non-negative and
// return 0 for the ideal raw value.
type WeightFunc interface {
	// Weight returns the cost-space component for raw value x.
	Weight(x float64) float64
	// Name identifies the function in logs and experiment output.
	Name() string
}

// SquaredWeight is the paper's example weighting function (Figure 2): the
// component is Scale·x², strongly discouraging the use of nodes with
// large raw values.
type SquaredWeight struct {
	// Scale converts the squared raw value into latency-comparable units
	// (milliseconds). The paper leaves units to the deployer; we default
	// to 100 so a fully loaded node (x=1) appears 100 ms "away".
	Scale float64
}

// Weight returns Scale·x² (0 for negative x, which is clamped).
func (w SquaredWeight) Weight(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return w.Scale * x * x
}

// Name implements WeightFunc.
func (w SquaredWeight) Name() string { return fmt.Sprintf("squared(scale=%g)", w.Scale) }

// LinearWeight scales the raw value linearly.
type LinearWeight struct {
	Scale float64
}

// Weight returns Scale·x (0 for negative x).
func (w LinearWeight) Weight(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return w.Scale * x
}

// Name implements WeightFunc.
func (w LinearWeight) Name() string { return fmt.Sprintf("linear(scale=%g)", w.Scale) }

// ExponentialWeight grows as Scale·(e^(Rate·x) - 1): near-flat for small
// raw values, prohibitive for large ones.
type ExponentialWeight struct {
	Scale float64
	Rate  float64
}

// Weight returns Scale·(e^(Rate·x)−1) (0 for negative x).
func (w ExponentialWeight) Weight(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return w.Scale * (math.Exp(w.Rate*x) - 1)
}

// Name implements WeightFunc.
func (w ExponentialWeight) Name() string {
	return fmt.Sprintf("exp(scale=%g,rate=%g)", w.Scale, w.Rate)
}

// HingeWeight is zero until Threshold and then grows linearly with slope
// Scale: "free until contended".
type HingeWeight struct {
	Threshold float64
	Scale     float64
}

// Weight returns 0 for x ≤ Threshold, else Scale·(x−Threshold).
func (w HingeWeight) Weight(x float64) float64 {
	if x <= w.Threshold {
		return 0
	}
	return w.Scale * (x - w.Threshold)
}

// Name implements WeightFunc.
func (w HingeWeight) Name() string {
	return fmt.Sprintf("hinge(thresh=%g,scale=%g)", w.Threshold, w.Scale)
}

// ScalarDim describes one scalar cost dimension.
type ScalarDim struct {
	// Name identifies the dimension (e.g. "cpu-load").
	Name string
	// Weight is the deployer-supplied weighting function.
	Weight WeightFunc
}

// Space defines the semantics of a cost space: its dimensionality and the
// weighting function of every scalar dimension. All SBON nodes that share
// a cost space must agree on this definition (§3.1: "the semantics ...
// must be known by all nodes").
type Space struct {
	// VectorDims is the number of vector (latency) dimensions.
	VectorDims int
	// Scalars lists the scalar dimensions in coordinate order.
	Scalars []ScalarDim
}

// NewLatencySpace returns a pure latency cost space with dims vector
// dimensions and no scalar dimensions.
func NewLatencySpace(dims int) (*Space, error) {
	s := &Space{VectorDims: dims}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewLatencyLoadSpace returns the cost space of the paper's Figure 2:
// two latency dimensions plus one squared CPU-load dimension.
func NewLatencyLoadSpace(loadScale float64) *Space {
	return &Space{
		VectorDims: 2,
		Scalars:    []ScalarDim{{Name: "cpu-load", Weight: SquaredWeight{Scale: loadScale}}},
	}
}

// Validate reports whether the space is well formed.
func (s *Space) Validate() error {
	if s.VectorDims < 1 {
		return fmt.Errorf("costspace: VectorDims = %d, need >= 1", s.VectorDims)
	}
	for i, d := range s.Scalars {
		if d.Weight == nil {
			return fmt.Errorf("costspace: scalar dim %d (%q) has nil weight function", i, d.Name)
		}
	}
	return nil
}

// Dims returns the total coordinate dimensionality.
func (s *Space) Dims() int { return s.VectorDims + len(s.Scalars) }

// NewPoint assembles a full-space point from a vector coordinate and raw
// scalar values (which are passed through the weighting functions). It
// panics if the slice lengths do not match the space definition, since
// that is always a programming error.
func (s *Space) NewPoint(vec vivaldi.Coord, rawScalars []float64) Point {
	if len(vec) != s.VectorDims {
		panic(fmt.Sprintf("costspace: vector has %d dims, space has %d", len(vec), s.VectorDims))
	}
	if len(rawScalars) != len(s.Scalars) {
		panic(fmt.Sprintf("costspace: %d raw scalars for %d scalar dims", len(rawScalars), len(s.Scalars)))
	}
	p := make(Point, 0, s.Dims())
	p = append(p, vec...)
	for i, raw := range rawScalars {
		w := s.Scalars[i].Weight.Weight(raw)
		if w < 0 {
			w = 0 // weighting functions are non-negative by contract
		}
		p = append(p, w)
	}
	return p
}

// IdealPoint returns the point at the given vector coordinate with all
// scalar components zero — the target of physical mapping.
func (s *Space) IdealPoint(vec vivaldi.Coord) Point {
	return s.AppendIdealPoint(nil, vec)
}

// AppendIdealPoint is IdealPoint writing into dst's backing array (dst's
// length is ignored) — the allocation-free variant for hot mapping
// paths that reuse a scratch point. The scalar components pass raw zero
// through the weighting functions, exactly like IdealPoint, so the two
// produce bitwise-identical points.
func (s *Space) AppendIdealPoint(dst Point, vec vivaldi.Coord) Point {
	if len(vec) != s.VectorDims {
		panic(fmt.Sprintf("costspace: vector has %d dims, space has %d", len(vec), s.VectorDims))
	}
	dst = append(dst[:0], vec...)
	for i := range s.Scalars {
		w := s.Scalars[i].Weight.Weight(0)
		if w < 0 {
			w = 0 // weighting functions are non-negative by contract
		}
		dst = append(dst, w)
	}
	return dst
}

// Vector returns the vector-subspace portion of p.
func (s *Space) Vector(p Point) vivaldi.Coord {
	return vivaldi.Coord(p[:s.VectorDims])
}

// ScalarComponents returns the weighted scalar portion of p.
func (s *Space) ScalarComponents(p Point) []float64 {
	return p[s.VectorDims:]
}

// Distance returns the full-space Euclidean distance between a and b,
// spanning vector and scalar dimensions. It panics on dimension mismatch.
func (s *Space) Distance(a, b Point) float64 {
	if len(a) != s.Dims() || len(b) != s.Dims() {
		panic(fmt.Sprintf("costspace: Distance on %d/%d-dim points in %d-dim space", len(a), len(b), s.Dims()))
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// VectorDistance returns the distance restricted to the vector subspace —
// the quantity virtual placement minimizes (§3.2: "the virtual placement
// algorithm operates only over the vector cost dimensions").
func (s *Space) VectorDistance(a, b Point) float64 {
	var ss float64
	for i := 0; i < s.VectorDims; i++ {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// Bounds is an axis-aligned bounding box over points, used to quantize
// coordinates onto the Hilbert grid.
type Bounds struct {
	Min, Max Point
}

// ComputeBounds returns the bounding box of pts with a small margin so
// boundary points quantize strictly inside the grid. It returns an error
// if pts is empty.
func ComputeBounds(pts []Point, margin float64) (Bounds, error) {
	if len(pts) == 0 {
		return Bounds{}, fmt.Errorf("costspace: ComputeBounds on empty point set")
	}
	dims := len(pts[0])
	b := Bounds{Min: make(Point, dims), Max: make(Point, dims)}
	copy(b.Min, pts[0])
	copy(b.Max, pts[0])
	for _, p := range pts[1:] {
		if len(p) != dims {
			return Bounds{}, fmt.Errorf("costspace: mixed dimensionalities %d and %d", dims, len(p))
		}
		for i, v := range p {
			if v < b.Min[i] {
				b.Min[i] = v
			}
			if v > b.Max[i] {
				b.Max[i] = v
			}
		}
	}
	for i := range b.Min {
		span := b.Max[i] - b.Min[i]
		if span == 0 {
			span = 1 // degenerate dimension: open up a unit interval
		}
		b.Min[i] -= span * margin
		b.Max[i] += span * margin
	}
	return b, nil
}

// Quantize maps p onto a grid with 2^bits cells per dimension inside the
// bounds, clamping out-of-range values to the grid edge.
func (b Bounds) Quantize(p Point, bits uint) []uint32 {
	return b.QuantizeInto(nil, p, bits)
}

// QuantizeInto is Quantize writing into dst's backing array (dst's
// length is ignored) — the allocation-free variant for hot lookup paths
// that reuse a scratch cell buffer.
func (b Bounds) QuantizeInto(dst []uint32, p Point, bits uint) []uint32 {
	cells := uint64(1) << bits
	out := dst[:0]
	for i, v := range p {
		span := b.Max[i] - b.Min[i]
		if span <= 0 {
			out = append(out, 0)
			continue
		}
		f := (v - b.Min[i]) / span
		if f < 0 {
			f = 0
		}
		if f >= 1 {
			f = math.Nextafter(1, 0)
		}
		out = append(out, uint32(f*float64(cells)))
	}
	return out
}

// Dequantize maps grid cell coordinates back to the cell-center point.
func (b Bounds) Dequantize(cells []uint32, bits uint) Point {
	n := float64(uint64(1) << bits)
	out := make(Point, len(cells))
	for i, c := range cells {
		span := b.Max[i] - b.Min[i]
		out[i] = b.Min[i] + (float64(c)+0.5)/n*span
	}
	return out
}
