// Crash repair: the unplanned-failure counterpart of live migration.
// A migration assumes a live source (three-phase handoff, zero loss);
// repair assumes the source is gone. The engine re-instantiates the
// operator fresh on a live node and flips the circuit's routes there —
// in-flight tuples and operator state on the dead host are lost and
// counted, never silently: crash recovery is bounded-loss by design,
// and the bound is what the experiments measure.
package stream

import (
	"fmt"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// RepairRecord describes one completed service repair.
type RepairRecord struct {
	Query   query.QueryID
	Service int
	From    topology.NodeID
	To      topology.NodeID
	At      time.Time
	// BufferedLost counts tuples that were queued in an in-flight
	// migration buffer this repair had to cancel — part of the crash's
	// measured loss.
	BufferedLost int
	// StateLostKB is the operator state that died with the old host.
	StateLostKB float64
}

// Repair re-instantiates a running circuit's operator service on a new
// host after its current host crashed. Unlike Migrate it does not
// require a live source: a fresh operator (empty state) registers on
// the target, the circuit's routes flip immediately, and any in-flight
// handoff of the service is cancelled with its buffered tuples counted
// lost (counter repair.buffered_lost). Safe to call for a service
// whose host is merely suspected — repair is idempotent in effect,
// though tuples in flight to the old host during the flip are lost
// either way (msgs.down_dropped when the host is down).
func (e *Engine) Repair(id query.QueryID, svc int, to topology.NodeID) (*RepairRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.running[id]
	if !ok {
		return nil, fmt.Errorf("stream: query %d: %w", id, ErrNotRunning)
	}
	if svc < 0 || svc >= len(r.svcs) {
		return nil, fmt.Errorf("stream: query %d has no service %d", id, svc)
	}
	if r.Circuit.Services[svc].Reused {
		return nil, fmt.Errorf("stream: query %d service %d reuses a shared instance; repair it through RepairShared", id, svc)
	}
	return e.repairLocked(r, svc, to)
}

// RepairShared re-instantiates the executing service of a shared
// instance — which may live in a trimmed zombie of a cancelled
// circuit — on a new host, flipping every subscriber's routes. This is
// the data-plane half of an Adopted control-plane move.
func (e *Engine) RepairShared(inst *optimizer.ServiceInstance, to topology.NodeID) (*RepairRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	se, err := e.resolveProviderLocked(inst)
	if err != nil {
		return nil, err
	}
	return e.repairLocked(se.run, se.svc, to)
}

func (e *Engine) repairLocked(r *Running, svc int, to topology.NodeID) (*RepairRecord, error) {
	rt := &r.svcs[svc]
	if rt.operator == nil {
		return nil, fmt.Errorf("stream: query %d service %d is not a repairable operator", r.Circuit.Query.ID, svc)
	}
	if int(to) < 0 || int(to) >= e.topo.NumNodes() {
		return nil, fmt.Errorf("stream: repair target %d out of range", to)
	}
	if e.net.NodeDown(to) {
		return nil, fmt.Errorf("stream: repair target %d is down", to)
	}
	from := topology.NodeID(r.host[svc].Load())
	if to == from {
		return nil, fmt.Errorf("stream: query %d service %d is already on node %d", r.Circuit.Query.ID, svc, to)
	}

	rec := &RepairRecord{
		Query:       r.Circuit.Query.ID,
		Service:     svc,
		From:        from,
		To:          to,
		At:          e.clock.Now(),
		StateLostKB: rt.operator.StateSizeKB(),
	}

	// Cancel any in-flight handoff of this service: its phases assume a
	// live source, and whatever the target buffered died with the
	// crash.
	if rt.migrating {
		for _, m := range r.migs {
			if m.Service != svc {
				continue
			}
			select {
			case <-m.done:
				continue
			default:
			}
			m.buf.mu.Lock()
			rec.BufferedLost += len(m.buf.msgs)
			m.buf.mu.Unlock()
			m.cancel()
		}
		if rec.BufferedLost > 0 {
			e.net.Metrics.Counter("repair.buffered_lost").Add(float64(rec.BufferedLost))
		}
	}

	// Retire the old registrations. On a crashed host they are inert
	// (deliveries drop at dispatch), but the node may rejoin later and
	// must not resurrect a stale operator.
	e.net.Node(from).Unregister(rt.port)
	if rr := topology.NodeID(r.route[svc].Load()); rr != from {
		e.net.Node(rr).Unregister(rt.port)
	}

	// Fresh operator: the crashed host's state is gone. Rebuild the
	// processing chain exactly as Deploy wired it.
	op, err := OperatorFor(r.Circuit.Services[svc].Plan, e.cfg.Keyspace)
	if err != nil {
		return nil, err
	}
	rt.operator = op
	emit := r.emitFor(svc)
	rt.process = func(side int, t Tuple) { op.Process(side, t, emit) }
	rt.handler = func(m overlay.Message) {
		dm := m.Payload.(dataMsg)
		rt.gate.Lock()
		rt.process(dm.Side, dm.T)
		rt.gate.Unlock()
	}
	e.net.Node(to).Register(rt.port, rt.handler)

	// Flip the circuit — and every subscriber of the service — to the
	// new host in one locked step, mirroring a migration cutover.
	r.route[svc].Store(int32(to))
	r.host[svc].Store(int32(to))
	for _, t := range rt.taps {
		t.consumer.route[t.svc].Store(int32(to))
		t.consumer.host[t.svc].Store(int32(to))
	}
	e.net.Metrics.Counter("repair.services").Inc()
	return rec, nil
}

// ZombieService identifies a kept operator service of a trimmed zombie
// circuit — a cancelled provider still executing for its subscribers.
type ZombieService struct {
	Query   query.QueryID
	Service int
	Node    topology.NodeID
}

// ZombieServicesOn lists the operator services trimmed zombies still
// execute on nodes the predicate marks down. These services appear in
// no deployed circuit — the control plane cannot plan their recovery —
// so a failure-repair sweep must ask the engine about them directly.
// Sorted by (query, service) for deterministic repair order.
func (e *Engine) ZombieServicesOn(down func(topology.NodeID) bool) []ZombieService {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []ZombieService
	for z := range e.zombies {
		for i := range z.svcs {
			if z.svcs[i].operator == nil || !z.kept[i] {
				continue
			}
			n := topology.NodeID(z.host[i].Load())
			if down(n) {
				out = append(out, ZombieService{Query: z.Circuit.Query.ID, Service: i, Node: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		return out[i].Service < out[j].Service
	})
	return out
}

// RepairZombieService re-instantiates a trimmed zombie's kept operator
// on a live node after its host crashed.
func (e *Engine) RepairZombieService(id query.QueryID, svc int, to topology.NodeID) (*RepairRecord, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for z := range e.zombies {
		if z.Circuit.Query.ID != id {
			continue
		}
		if svc < 0 || svc >= len(z.svcs) {
			break
		}
		return e.repairLocked(z, svc, to)
	}
	return nil, fmt.Errorf("stream: no zombie of query %d with service %d", id, svc)
}

// AbortForFailure cancels an in-flight migration whose source or
// target died (or whose ticket deadline expired) and restores a
// consistent data-plane state:
//
//   - Pre-cutover: the route flips back to the source, the target's
//     buffer and state ports retire, and buffered tuples are counted
//     lost (repair.buffered_lost — the target may have crashed with
//     them). The operator never moved; if the *source* is the dead
//     host, follow up with Repair to re-instantiate it elsewhere.
//   - Post-cutover: the operator already executes on the target, so
//     the handoff simply completes early — the forwarder on the old
//     host retires (it is inert if that host crashed) and the record
//     closes un-aborted. If the *target* is the dead host, follow up
//     with Repair.
//
// Returns whether the operator ended up on the target (true exactly
// when cutover had happened), so the control plane knows whether to
// commit or abort the matching ticket.
func (m *Migration) AbortForFailure() bool {
	e, r, rt := m.engine, m.running, m.rt
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-m.done:
		return !m.cutoverAt.IsZero()
	default:
	}
	if !m.cutoverAt.IsZero() {
		// Post-cutover: finish early instead of waiting out T2.
		if m.tearTimer != nil {
			m.tearTimer.Stop()
		}
		e.net.Node(m.From).Unregister(rt.port)
		m.Forwarded = int(m.fwd.Load())
		rt.migrating = false
		m.doneOnce.Do(func() { close(m.done) })
		return true
	}
	// Pre-cutover: the operator never left the source. Restore the
	// route and retire the target-side registrations.
	if m.cutTimer != nil {
		m.cutTimer.Stop()
	}
	m.buf.mu.Lock()
	lost := len(m.buf.msgs)
	m.buf.msgs = nil
	m.buf.closed = true
	m.buf.mu.Unlock()
	if lost > 0 {
		e.net.Metrics.Counter("repair.buffered_lost").Add(float64(lost))
	}
	m.Buffered = lost
	r.route[m.Service].Store(int32(m.From))
	e.net.Node(m.To).Unregister(rt.port)
	e.net.Node(m.To).Unregister(rt.port + statePortSuffix)
	m.Aborted = true
	rt.migrating = false
	m.doneOnce.Do(func() { close(m.done) })
	return false
}
