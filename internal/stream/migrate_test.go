package stream

import (
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// conservingCircuit hand-builds a circuit whose delivered tuple count
// must exactly equal the produced count: source → pinned pass-through
// filter → unpinned pass-through filter → consumer. The unpinned filter
// is the migration subject.
func conservingCircuit(t *testing.T, s *engineSetup, host topology.NodeID) (*optimizer.Circuit, int) {
	t.Helper()
	plan := query.NewFilter(query.NewFilter(query.NewSource(0), 1.0), 1.0)
	if err := plan.ComputeRates(s.env.Stats); err != nil {
		t.Fatal(err)
	}
	q := query.Query{ID: 7, Consumer: s.env.Topo.StubNodeIDs()[9], Streams: []query.StreamID{0}}
	b := &optimizer.Builder{Env: s.env}
	c, err := b.Skeleton(q, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	migratable := -1
	for i, svc := range c.Services {
		if !svc.Pinned && svc.Plan != nil {
			svc.Node = host
			migratable = i
		}
	}
	if migratable < 0 {
		t.Fatal("circuit has no unpinned service")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c, migratable
}

// TestMigrationZeroTupleLoss is the protocol's core invariant: migrate a
// service mid-stream, quiesce, and every produced tuple must have been
// delivered — none dropped, none unrouted, none stuck.
func TestMigrationZeroTupleLoss(t *testing.T) {
	s := newEngineSetup(t, 31)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(2 * time.Second) // traffic flowing

	target := stubs[6]
	m, err := s.engine.Migrate(c.Query.ID, svc, target)
	if err != nil {
		t.Fatal(err)
	}
	// Let the handoff complete and traffic continue across it.
	s.clk.Sleep(2 * time.Second)
	select {
	case <-m.Done():
	default:
		t.Fatal("migration not complete after 2 simulated seconds")
	}
	if m.Aborted {
		t.Fatal("migration aborted")
	}
	if got := run.Host(svc); got != target {
		t.Fatalf("service on node %d after migration, want %d", got, target)
	}

	// Quiesce: stop producing, drain in-flight tuples, compare counts.
	run.HaltProducers()
	s.clk.Sleep(time.Second)
	produced, delivered := run.TuplesProduced(), run.Measure().TuplesOut
	if produced == 0 {
		t.Fatal("no tuples produced")
	}
	if delivered != produced {
		t.Fatalf("tuple loss across migration: produced %d, delivered %d (buffered %d, forwarded %d)",
			produced, delivered, m.Buffered, m.Forwarded)
	}
	if v := s.net.Metrics.Counter("msgs.unrouted").Value(); v != 0 {
		t.Fatalf("msgs.unrouted = %v during migration", v)
	}
	if v := s.net.Metrics.Counter("msgs.down_dropped").Value(); v != 0 {
		t.Fatalf("msgs.down_dropped = %v during migration", v)
	}
}

// TestMigrationBuffersDuringHandoff pins the dual-phase behaviour: with
// an upstream rate high enough, tuples arrive at the target before
// cutover and must be buffered, then replayed — visible as a non-zero
// Buffered count and unbroken delivery.
func TestMigrationBuffersDuringHandoff(t *testing.T) {
	s := newEngineSetup(t, 32)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[1])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(time.Second)

	// Pick the farthest stub from the current host so the drain window
	// spans multiple tuple intervals (50 KB/s → one tuple per 20 sim-ms).
	from := run.Host(svc)
	target, far := from, 0.0
	for _, n := range stubs {
		if n == from {
			continue
		}
		if d := s.env.Topo.Latency(from, n); d > far {
			far, target = d, n
		}
	}
	m, err := s.engine.Migrate(c.Query.ID, svc, target)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(2 * time.Second)
	<-m.Done()
	run.HaltProducers()
	s.clk.Sleep(time.Second)
	if run.Measure().TuplesOut != run.TuplesProduced() {
		t.Fatalf("loss: produced %d delivered %d", run.TuplesProduced(), run.Measure().TuplesOut)
	}
	if m.StateKB < 0 {
		t.Fatalf("negative state size %v", m.StateKB)
	}
}

// TestMigrationDeterministicUnderVirtualClock runs the same migration
// scenario twice and requires identical timings, buffer counts, and
// delivered totals — the property X12/X13 rely on.
func TestMigrationDeterministicUnderVirtualClock(t *testing.T) {
	type outcome struct {
		produced, delivered, buffered int
		start, end                    time.Time
	}
	runOnce := func() outcome {
		s := newEngineSetup(t, 33)
		stubs := s.env.Topo.StubNodeIDs()
		c, svc := conservingCircuit(t, s, stubs[3])
		run, err := s.engine.Deploy(c)
		if err != nil {
			t.Fatal(err)
		}
		s.clk.Sleep(1500 * time.Millisecond)
		m, err := s.engine.Migrate(c.Query.ID, svc, stubs[7])
		if err != nil {
			t.Fatal(err)
		}
		s.clk.Sleep(2 * time.Second)
		run.HaltProducers()
		s.clk.Sleep(time.Second)
		return outcome{
			produced:  run.TuplesProduced(),
			delivered: run.Measure().TuplesOut,
			buffered:  m.Buffered,
			start:     m.StartedAt,
			end:       m.ScheduledEnd,
		}
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same-seed migration runs diverge:\n%+v\n%+v", a, b)
	}
	if a.produced != a.delivered {
		t.Fatalf("loss in deterministic run: %+v", a)
	}
}

// TestMigrateValidation covers the refusal paths.
func TestMigrateValidation(t *testing.T) {
	s := newEngineSetup(t, 34)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	id := c.Query.ID
	if _, err := s.engine.Migrate(id+1, svc, stubs[5]); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := s.engine.Migrate(id, len(c.Services)+3, stubs[5]); err == nil {
		t.Fatal("bad service index accepted")
	}
	if _, err := s.engine.Migrate(id, svc, run.Host(svc)); err == nil {
		t.Fatal("self-migration accepted")
	}
	// Consumer (pinned, nil plan) must be refused.
	for i, svcDef := range c.Services {
		if svcDef.Plan == nil {
			if _, err := s.engine.Migrate(id, i, stubs[5]); err == nil {
				t.Fatal("consumer migration accepted")
			}
		}
	}
	// Down target refused.
	s.net.SetNodeDown(stubs[5], true)
	if _, err := s.engine.Migrate(id, svc, stubs[5]); err == nil {
		t.Fatal("down target accepted")
	}
	s.net.SetNodeDown(stubs[5], false)
	// Double migration refused while in flight.
	if _, err := s.engine.Migrate(id, svc, stubs[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.Migrate(id, svc, stubs[6]); err == nil {
		t.Fatal("concurrent migration of one service accepted")
	}
	s.clk.Sleep(time.Second) // let it finish
	if _, err := s.engine.Migrate(id, svc, stubs[6]); err != nil {
		t.Fatalf("post-handoff migration refused: %v", err)
	}
}

// TestMigrationJoinStateTravels runs a 2-way join circuit through a
// migration and checks the operator keeps producing joined output
// afterwards (its windows moved with it), with zero unrouted messages.
func TestMigrationJoinStateTravels(t *testing.T) {
	s := newEngineSetup(t, 35)
	q := query.Query{ID: 9, Consumer: s.env.Topo.TransitNodeIDs()[0], Streams: []query.StreamID{0, 1}}
	c := s.optimize(t, q)
	joinIdx := -1
	for i, svc := range c.Services {
		if svc.Plan != nil && svc.Plan.Kind == query.KindJoin {
			joinIdx = i
		}
	}
	if joinIdx < 0 {
		t.Fatal("no join service")
	}
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(3 * time.Second)
	before := run.Measure().TuplesOut
	if before == 0 {
		t.Fatal("join produced nothing before migration")
	}
	// Move the join somewhere else.
	from := run.Host(joinIdx)
	var target topology.NodeID = -1
	for _, n := range s.env.Topo.StubNodeIDs() {
		if n != from {
			target = n
			break
		}
	}
	m, err := s.engine.Migrate(c.Query.ID, joinIdx, target)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateKB <= 0 {
		t.Fatalf("join migrated with no state (%v KB); windows were filled", m.StateKB)
	}
	s.clk.Sleep(3 * time.Second)
	after := run.Measure().TuplesOut
	if after <= before {
		t.Fatalf("join stopped producing after migration: %d → %d", before, after)
	}
	if v := s.net.Metrics.Counter("msgs.unrouted").Value(); v != 0 {
		t.Fatalf("msgs.unrouted = %v", v)
	}
}
