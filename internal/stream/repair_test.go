package stream

import (
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/topology"
)

// simStep returns one simulated millisecond as a clock duration.
func simStep(s *engineSetup) time.Duration {
	return time.Duration(float64(s.net.Config().TimeScale))
}

// TestRepairAfterCrashResumesDelivery: kill an operator's host with no
// warning, repair onto a live node, and every lost tuple must be
// accounted for by the overlay's drop counters — bounded loss, never
// silent loss.
func TestRepairAfterCrashResumesDelivery(t *testing.T) {
	s := newEngineSetup(t, 61)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(2 * time.Second)

	victim := run.Host(svc)
	s.net.SetNodeDown(victim, true)
	s.clk.Sleep(time.Second) // undetected outage: tuples drop at the dead host
	beforeRepair := run.Measure().TuplesOut

	rec, err := s.engine.Repair(c.Query.ID, svc, stubs[6])
	if err != nil {
		t.Fatal(err)
	}
	if rec.From != victim || rec.To != stubs[6] {
		t.Fatalf("repair record %+v, want %d→%d", rec, victim, stubs[6])
	}
	if got := run.Host(svc); got != stubs[6] {
		t.Fatalf("service on %d after repair, want %d", got, stubs[6])
	}
	s.clk.Sleep(2 * time.Second)
	run.HaltProducers()
	s.clk.Sleep(time.Second)

	produced, delivered := run.TuplesProduced(), run.Measure().TuplesOut
	if delivered <= beforeRepair {
		t.Fatalf("delivery did not resume after repair: %d → %d", beforeRepair, delivered)
	}
	lost := produced - delivered
	if lost <= 0 {
		t.Fatalf("a 1s outage lost no tuples (produced %d, delivered %d)", produced, delivered)
	}
	counted := int(s.net.Metrics.Counter("msgs.down_dropped").Value() +
		s.net.Metrics.Counter("msgs.unrouted").Value())
	if lost != counted {
		t.Fatalf("loss fixed point broken: %d tuples missing, %d counted dropped", lost, counted)
	}

	// The repaired host must keep working after the old node rejoins:
	// its stale registration was retired, so nothing resurrects there.
	s.net.SetNodeDown(victim, false)
	if got := run.Host(svc); got != stubs[6] {
		t.Fatalf("rejoin moved the service: host %d", got)
	}
}

// TestRepairValidation covers the refusal paths.
func TestRepairValidation(t *testing.T) {
	s := newEngineSetup(t, 62)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.Repair(c.Query.ID+1, svc, stubs[5]); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := s.engine.Repair(c.Query.ID, len(c.Services)+1, stubs[5]); err == nil {
		t.Fatal("bad service index accepted")
	}
	if _, err := s.engine.Repair(c.Query.ID, svc, run.Host(svc)); err == nil {
		t.Fatal("self-repair accepted")
	}
	s.net.SetNodeDown(stubs[5], true)
	if _, err := s.engine.Repair(c.Query.ID, svc, stubs[5]); err == nil {
		t.Fatal("down repair target accepted")
	}
	for i, svcDef := range c.Services {
		if svcDef.Plan == nil {
			if _, err := s.engine.Repair(c.Query.ID, i, stubs[6]); err == nil {
				t.Fatal("consumer repair accepted")
			}
		}
	}
}

// TestAbortForFailurePreCutover aborts a handoff before cutover with
// both hosts alive (the deadline-expiry case): the route must flip back
// to the source and the only tuples lost are the target's buffer plus
// deliveries in flight at the abort instant — an exact fixed point.
func TestAbortForFailurePreCutover(t *testing.T) {
	s := newEngineSetup(t, 63)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[1])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(time.Second)

	// Farthest target → drain window spans several tuple intervals, so
	// the buffer demonstrably fills before we abort.
	from := run.Host(svc)
	target, far := from, 0.0
	for _, n := range stubs {
		if d := s.env.Topo.Latency(from, n); n != from && d > far {
			far, target = d, n
		}
	}
	m, err := s.engine.Migrate(c.Query.ID, svc, target)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(15 * simStep(s)) // part-way into the drain window
	if !m.CutoverAt().IsZero() {
		t.Skip("cutover window too short on this seed")
	}
	if onTarget := m.AbortForFailure(); onTarget {
		t.Fatal("pre-cutover abort reported the operator on the target")
	}
	if !m.Aborted {
		t.Fatal("abort did not mark the record")
	}
	select {
	case <-m.Done():
	default:
		t.Fatal("aborted migration did not settle")
	}
	if got := run.Host(svc); got != from {
		t.Fatalf("service host %d after abort, want restored %d", got, from)
	}
	beforeResume := run.Measure().TuplesOut
	s.clk.Sleep(2 * time.Second)
	run.HaltProducers()
	s.clk.Sleep(time.Second)
	if got := run.Measure().TuplesOut; got <= beforeResume {
		t.Fatalf("delivery did not resume on the source: %d → %d", beforeResume, got)
	}

	produced, delivered := run.TuplesProduced(), run.Measure().TuplesOut
	inflight := int(s.net.Metrics.Counter("msgs.unrouted").Value())
	lost := produced - delivered
	// inflight may include the state shipment (a message, not a tuple).
	if lost < m.Buffered || lost > m.Buffered+inflight {
		t.Fatalf("loss fixed point broken: produced %d, delivered %d, buffered-lost %d, in-flight %d",
			produced, delivered, m.Buffered, inflight)
	}
	if m.Buffered > 0 {
		if got := s.net.Metrics.Counter("repair.buffered_lost").Value(); int(got) != m.Buffered {
			t.Fatalf("repair.buffered_lost = %v, want %d", got, m.Buffered)
		}
	}
	// The service migrates again cleanly after the abort.
	if _, err := s.engine.Migrate(c.Query.ID, svc, stubs[5]); err != nil {
		t.Fatalf("post-abort migration refused: %v", err)
	}
}

// TestAbortForFailureTargetCrashT0: the target dies right at T0. The
// abort restores the source route and no tuple is lost — only the
// state shipment died with the target.
func TestAbortForFailureTargetCrashT0(t *testing.T) {
	s := newEngineSetup(t, 64)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(time.Second)

	from := run.Host(svc)
	m, err := s.engine.Migrate(c.Query.ID, svc, stubs[6])
	if err != nil {
		t.Fatal(err)
	}
	s.net.SetNodeDown(stubs[6], true)
	if m.AbortForFailure() {
		t.Fatal("operator reported on a target that died at T0")
	}
	if got := run.Host(svc); got != from {
		t.Fatalf("host %d after abort, want %d", got, from)
	}
	s.clk.Sleep(2 * time.Second)
	run.HaltProducers()
	s.clk.Sleep(time.Second)
	produced, delivered := run.TuplesProduced(), run.Measure().TuplesOut
	if produced != delivered {
		t.Fatalf("tuple loss despite instant abort: produced %d, delivered %d", produced, delivered)
	}
	if v := s.net.Metrics.Counter("msgs.down_dropped").Value(); v > 1 {
		t.Fatalf("more than the state shipment died with the target: %v drops", v)
	}
}

// TestAbortForFailureSourceCrashT0: the source dies right after T0.
// The abort settles the record, Repair re-instantiates the operator on
// a live node, and delivery resumes with zero tuple loss (nothing was
// in flight to the dead host).
func TestAbortForFailureSourceCrashT0(t *testing.T) {
	s := newEngineSetup(t, 65)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(time.Second)

	from := run.Host(svc)
	m, err := s.engine.Migrate(c.Query.ID, svc, stubs[6])
	if err != nil {
		t.Fatal(err)
	}
	s.net.SetNodeDown(from, true)
	if m.AbortForFailure() {
		t.Fatal("operator reported on target before cutover")
	}
	rec, err := s.engine.Repair(c.Query.ID, svc, stubs[6])
	if err != nil {
		t.Fatalf("repair after source death: %v", err)
	}
	if rec.From != from {
		t.Fatalf("repair record from %d, want dead source %d", rec.From, from)
	}
	s.clk.Sleep(2 * time.Second)
	run.HaltProducers()
	s.clk.Sleep(time.Second)
	produced, delivered := run.TuplesProduced(), run.Measure().TuplesOut
	lost := produced - delivered
	counted := int(s.net.Metrics.Counter("msgs.down_dropped").Value() +
		s.net.Metrics.Counter("msgs.unrouted").Value())
	// The state shipment is a message, not a tuple: it may land in the
	// counters without a matching tuple loss.
	if lost < 0 || lost > counted {
		t.Fatalf("loss fixed point broken: %d tuples missing, %d messages counted", lost, counted)
	}
}

// TestAbortForFailurePostCutover: the source dies after the operator
// already moved. The abort must finish the handoff early (the dead
// forwarder retires) and the record settles un-aborted on the target.
func TestAbortForFailurePostCutover(t *testing.T) {
	s := newEngineSetup(t, 66)
	stubs := s.env.Topo.StubNodeIDs()
	c, svc := conservingCircuit(t, s, stubs[2])
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.clk.Sleep(time.Second)

	from := run.Host(svc)
	m, err := s.engine.Migrate(c.Query.ID, svc, stubs[6])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && m.CutoverAt().IsZero(); i++ {
		s.clk.Sleep(simStep(s))
	}
	if m.CutoverAt().IsZero() {
		t.Fatal("cutover never happened")
	}
	s.net.SetNodeDown(from, true)
	if !m.AbortForFailure() {
		t.Fatal("post-cutover abort denied the operator is on the target")
	}
	if m.Aborted {
		t.Fatal("post-cutover failure marked the migration aborted; the move completed")
	}
	select {
	case <-m.Done():
	default:
		t.Fatal("early-finished migration did not settle")
	}
	if got := run.Host(svc); got != stubs[6] {
		t.Fatalf("host %d, want target %d", got, stubs[6])
	}
	before := run.Measure().TuplesOut
	s.clk.Sleep(2 * time.Second)
	if got := run.Measure().TuplesOut; got <= before {
		t.Fatalf("delivery stalled after early finish: %d → %d", before, got)
	}
}

// TestRepairSharedAdoptedZombie: the owner circuit cancelled (trimmed
// zombie keeps executing the shared operator), then the operator's host
// crashes. RepairShared must re-instantiate it and flip the surviving
// subscriber — no Evacuate, no live source.
func TestRepairSharedAdoptedZombie(t *testing.T) {
	f := newSharedFixture(t, 67)
	owner, cons := f.deployBoth(t)
	stubs := f.s.env.Topo.StubNodeIDs()
	f.s.runSim(20)

	if err := f.s.engine.Stop(f.ownerC.Query.ID); err != nil {
		t.Fatal(err)
	}
	if st := f.s.engine.SharedStats(); st.Zombies != 1 {
		t.Fatalf("SharedStats after owner cancel = %+v, want 1 zombie", st)
	}

	victim := topology.NodeID(f.inst.Node)
	f.s.net.SetNodeDown(victim, true)
	f.s.runSim(10) // undetected outage
	target := stubs[7]
	rec, err := f.s.engine.RepairShared(f.inst, target)
	if err != nil {
		t.Fatalf("RepairShared on a zombie provider: %v", err)
	}
	if rec.From != victim || rec.To != target {
		t.Fatalf("repair record %+v, want %d→%d", rec, victim, target)
	}
	if got := cons.Host(f.consSvc); got != target {
		t.Fatalf("subscriber routed to %d after repair, want %d", got, target)
	}

	beforeResume := cons.Measure().TuplesOut
	f.s.runSim(20)
	owner.HaltProducers()
	f.s.runSim(2)
	produced := owner.TuplesProduced()
	delivered := cons.Measure().TuplesOut
	if delivered <= beforeResume {
		t.Fatalf("subscriber starved after repair: %d → %d", beforeResume, delivered)
	}
	lost := produced - delivered
	counted := int(f.s.net.Metrics.Counter("msgs.down_dropped").Value() +
		f.s.net.Metrics.Counter("msgs.unrouted").Value())
	if lost <= 0 || lost > counted {
		t.Fatalf("loss fixed point broken: %d tuples missing, %d messages counted", lost, counted)
	}
}

// TestRepairDeterministic: the same crash-and-repair scenario twice,
// bit-identical counts.
func TestRepairDeterministic(t *testing.T) {
	type outcome struct {
		produced, delivered, dropped int
		at                           time.Time
	}
	runOnce := func() outcome {
		s := newEngineSetup(t, 68)
		stubs := s.env.Topo.StubNodeIDs()
		c, svc := conservingCircuit(t, s, stubs[2])
		run, err := s.engine.Deploy(c)
		if err != nil {
			t.Fatal(err)
		}
		s.clk.Sleep(time.Second)
		s.net.SetNodeDown(run.Host(svc), true)
		s.clk.Sleep(500 * time.Millisecond)
		rec, err := s.engine.Repair(c.Query.ID, svc, stubs[6])
		if err != nil {
			t.Fatal(err)
		}
		s.clk.Sleep(time.Second)
		run.HaltProducers()
		s.clk.Sleep(time.Second)
		return outcome{
			produced:  run.TuplesProduced(),
			delivered: run.Measure().TuplesOut,
			dropped:   int(s.net.Metrics.Counter("msgs.down_dropped").Value()),
			at:        rec.At,
		}
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same-seed repair runs diverge:\n%+v\n%+v", a, b)
	}
	if a.produced == 0 || a.delivered == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}
