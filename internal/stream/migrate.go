// Live migration: the data-plane half of the SBON's continuous
// re-optimization story. The control plane (optimizer.Reoptimizer.Plan)
// decides that a running service should move; Engine.Migrate executes
// the move under traffic with zero tuple loss:
//
//	T0 (start)    — a buffering handler opens on the target's port, the
//	                circuit's routes flip so upstream tuples flow to the
//	                target (and queue there), and the operator's state
//	                is shipped old→new as a charged overlay message.
//	T1 (cutover)  — after every pre-flip in-flight tuple has drained to
//	                the old host, the operator re-registers on the
//	                target, the buffered tuples replay through it in
//	                arrival order, and the old host's port becomes a
//	                forwarder for stragglers.
//	T2 (teardown) — after a second drain window nothing can reach the
//	                old host; the forwarder unregisters and the
//	                migration completes.
//
// Every phase boundary is a clock event, so under simtime.VirtualClock
// an entire churn scenario — including its migrations — is
// deterministic and bit-reproducible for a fixed seed.
//
// Loss argument: a tuple sent before T0 reaches the old host no later
// than T0+maxUpstreamLatency ≤ T1 and is processed there; a tuple sent
// after T0 reaches the target and is either buffered (before T1) or
// processed live (after). A straggler that still lands on the old host
// after cutover (possible only under real-clock jitter) is forwarded.
// Message reordering across the cutover boundary is limited to
// buffered-vs-forwarded interleaving; no path drops a tuple.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// migrationMargin is the extra drain slack added to each phase, in
// simulated milliseconds, covering same-instant event ties (virtual
// clock) and timer jitter (real clock).
const migrationMargin = 1.0

// Migration is one in-flight (or completed) service handoff.
type Migration struct {
	Query   query.QueryID
	Service int
	From    topology.NodeID
	To      topology.NodeID
	// StateKB is the operator state shipped to the new host, charged to
	// the overlay like any other traffic.
	StateKB float64
	// StartedAt is the clock time routes flipped; ScheduledEnd is the
	// precomputed completion instant (exact under the virtual clock),
	// letting a coordinator sleep deterministically through a settle.
	StartedAt    time.Time
	ScheduledEnd time.Time

	// Buffered counts tuples queued at the target during handoff;
	// Forwarded counts stragglers redirected off the old host after
	// cutover. Valid once Done is closed.
	Buffered  int
	Forwarded int
	// Aborted marks a migration cancelled by circuit teardown before it
	// completed.
	Aborted bool

	engine    *Engine
	running   *Running
	rt        *svcRuntime
	buf       *migBuffer
	fwd       atomic.Int64
	cutoverAt time.Time
	cutTimer  simtime.Timer
	tearTimer simtime.Timer
	done      chan struct{}
	doneOnce  sync.Once
	sp        trace.Span
}

// Done is closed when the migration has fully completed (or been
// cancelled by teardown — check Aborted).
func (m *Migration) Done() <-chan struct{} { return m.done }

// CutoverAt returns the clock time the operator switched hosts (zero
// until cutover).
func (m *Migration) CutoverAt() time.Time { return m.cutoverAt }

// migBuffer queues tuples arriving at the target before cutover.
type migBuffer struct {
	mu     sync.Mutex
	msgs   []dataMsg
	closed bool
}

// statePortSuffix names the side-channel port operator state ships on.
const statePortSuffix = ".state"

// Migrate moves a running operator service to a new host while the
// circuit executes. It returns immediately; the handoff advances on
// clock events and finishes at ScheduledEnd (observe Done to block, or
// sleep the clock past ScheduledEnd for deterministic settles).
//
// Only operator services migrate: producers and the consumer are pinned,
// reused services move with their owning circuit (the migration of a
// shared instance re-routes every subscriber at cutover), and a service
// already mid-handoff is refused until its previous migration tears
// down. The source host must be alive; draining a node
// therefore has to happen before the node is marked down, which is
// exactly the order the adaptation layer enforces.
func (e *Engine) Migrate(id query.QueryID, svc int, to topology.NodeID) (*Migration, error) {
	return e.MigrateUnder(trace.Span{}, id, svc, to)
}

// MigrateUnder is Migrate with the handoff's trace span nested under
// parent (the adaptation layer passes its sweep span, so Perfetto
// renders each migration inside the round that planned it). An inert
// parent yields a root span, exactly as Migrate.
func (e *Engine) MigrateUnder(parent trace.Span, id query.QueryID, svc int, to topology.NodeID) (*Migration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.running[id]
	if !ok {
		return nil, fmt.Errorf("stream: query %d: %w", id, ErrNotRunning)
	}
	if svc < 0 || svc >= len(r.svcs) {
		return nil, fmt.Errorf("stream: query %d has no service %d", id, svc)
	}
	if r.Circuit.Services[svc].Reused {
		return nil, fmt.Errorf("stream: query %d service %d reuses a shared instance; migrate it through its owning circuit", id, svc)
	}
	rt := &r.svcs[svc]
	if rt.operator == nil {
		return nil, fmt.Errorf("stream: query %d service %d is not a migratable operator", id, svc)
	}
	if rt.migrating {
		return nil, fmt.Errorf("stream: query %d service %d is already migrating", id, svc)
	}
	from := topology.NodeID(r.host[svc].Load())
	if to == from {
		return nil, fmt.Errorf("stream: query %d service %d is already on node %d", id, svc, to)
	}
	if int(to) < 0 || int(to) >= e.topo.NumNodes() {
		return nil, fmt.Errorf("stream: migration target %d out of range", to)
	}
	if e.net.NodeDown(to) {
		return nil, fmt.Errorf("stream: migration target %d is down", to)
	}
	if e.net.NodeDown(from) {
		return nil, fmt.Errorf("stream: migration source %d is down (drain before kill)", from)
	}

	// Drain windows, in simulated milliseconds. Cutover must outlast
	// both the slowest in-flight upstream tuple and the state transfer.
	maxUp := 0.0
	for _, l := range r.Circuit.Links {
		if l.To != svc {
			continue
		}
		upHost := topology.NodeID(r.host[l.From].Load())
		if lat := e.topo.Latency(upHost, from); lat > maxUp {
			maxUp = lat
		}
	}
	stateLat := e.topo.Latency(from, to)
	cutMs := maxUp + migrationMargin
	if stateLat+migrationMargin > cutMs {
		cutMs = stateLat + migrationMargin
	}
	tearMs := maxUp + migrationMargin
	scale := float64(e.net.Config().TimeScale)
	cutDelay := time.Duration(cutMs * scale)
	tearDelay := time.Duration(tearMs * scale)

	now := e.clock.Now()
	m := &Migration{
		Query:        id,
		Service:      svc,
		From:         from,
		To:           to,
		StateKB:      rt.operator.StateSizeKB(),
		StartedAt:    now,
		ScheduledEnd: now.Add(cutDelay + tearDelay),
		engine:       e,
		running:      r,
		rt:           rt,
		buf:          &migBuffer{},
		done:         make(chan struct{}),
	}
	rt.migrating = true
	// The span opens at T0 and closes at T2 (or cancel), with the T1
	// cutover marked by an instant event inside it.
	if parent.Active() {
		m.sp = parent.Child("engine", "migration",
			trace.Int("q", int(id)), trace.Int("svc", svc),
			trace.Int("from", int(from)), trace.Int("to", int(to)),
			trace.Num("state_kb", m.StateKB))
	} else {
		m.sp = e.cfg.Tracer.Begin("engine", "migration",
			trace.Int("q", int(id)), trace.Int("svc", svc),
			trace.Int("from", int(from)), trace.Int("to", int(to)),
			trace.Num("state_kb", m.StateKB))
	}

	// T0: open the buffer on the target, flip the route, ship state.
	buf := m.buf
	e.net.Node(to).Register(rt.port, func(msg overlay.Message) {
		dm := msg.Payload.(dataMsg)
		buf.mu.Lock()
		if buf.closed {
			// Cutover already happened (real-clock interleave): process
			// live instead of queueing into a drained buffer.
			buf.mu.Unlock()
			rt.handler(msg)
			return
		}
		buf.msgs = append(buf.msgs, dm)
		buf.mu.Unlock()
	})
	r.route[svc].Store(int32(to))
	statePort := rt.port + statePortSuffix
	e.net.Node(to).Register(statePort, func(overlay.Message) {})
	_ = e.net.Node(from).Send(to, statePort, m.StateKB, nil)
	r.usageKBms.Add(m.StateKB * stateLat)

	m.cutTimer = e.clock.AfterFunc(cutDelay, m.cutover)
	r.migs = append(r.migs, m)
	return m, nil
}

// cutover is the T1 phase event: move the operator to the target, replay
// the buffer, and leave a straggler forwarder on the old host. The whole
// phase runs under the engine mutex: a concurrent Engine.Stop/Close
// (real clock) holds that mutex through teardownLocked, so cutover
// either completes before the circuit's ports disappear or observes the
// closed stop channel and does nothing — it can never re-register
// handlers behind a teardown.
func (m *Migration) cutover() {
	e, r, rt := m.engine, m.running, m.rt
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-r.stop:
		return // circuit tore down first; cancel() settles the record
	default:
	}

	// The old host's port becomes a forwarder: anything still arriving
	// there chases the service to its current route. Register replaces
	// the operator handler atomically, so no arrival can fall between
	// handlers.
	from, svc := m.From, m.Service
	e.net.Node(from).Register(rt.port, func(msg overlay.Message) {
		dst := topology.NodeID(r.route[svc].Load())
		m.fwd.Add(1)
		r.usageKBms.Add(msg.SizeKB * e.topo.Latency(from, dst))
		_ = e.net.Node(from).Send(dst, rt.port, msg.SizeKB, msg.Payload)
	})

	// Execution moves: emissions now originate from the target.
	r.host[svc].Store(int32(m.To))
	// A shared service flips for every subscriber at the same instant:
	// each consumer circuit's view of the reused service follows the
	// host, atomically under the engine mutex, so no subscriber ever
	// observes the instance on the old node after cutover.
	for _, t := range rt.taps {
		t.consumer.route[t.svc].Store(int32(m.To))
		t.consumer.host[t.svc].Store(int32(m.To))
	}

	// Install the live handler, then replay the queue while holding the
	// gate: tuples that arrive concurrently (real clock) serialize
	// behind the replay, preserving buffer order.
	rt.gate.Lock()
	e.net.Node(m.To).Register(rt.port, rt.handler)
	m.buf.mu.Lock()
	queued := m.buf.msgs
	m.buf.msgs = nil
	m.buf.closed = true
	m.buf.mu.Unlock()
	m.Buffered = len(queued)
	for _, dm := range queued {
		rt.process(dm.Side, dm.T)
	}
	rt.gate.Unlock()
	e.net.Node(m.To).Unregister(rt.port + statePortSuffix)
	m.cutoverAt = e.clock.Now()
	m.sp.Emit("cutover", trace.Int("buffered", m.Buffered))

	m.tearTimer = e.clock.AfterFunc(m.ScheduledEnd.Sub(m.cutoverAt), m.teardown)
}

// teardown is the T2 phase event: the forwarder retires and the
// migration completes. Like cutover it runs under the engine mutex to
// serialize against Stop/Close.
func (m *Migration) teardown() {
	e, r := m.engine, m.running
	e.mu.Lock()
	select {
	case <-r.stop:
		e.mu.Unlock()
		return
	default:
	}
	e.net.Node(m.From).Unregister(m.rt.port)
	m.Forwarded = int(m.fwd.Load())
	m.rt.migrating = false
	e.mu.Unlock()
	m.sp.End(trace.Str("outcome", "done"),
		trace.Int("buffered", m.Buffered), trace.Int("forwarded", m.Forwarded))
	m.doneOnce.Do(func() { close(m.done) })
}

// cancel aborts an in-flight migration during circuit teardown: phase
// timers stop, side registrations are released, and waiters unblock.
func (m *Migration) cancel() {
	if m.cutTimer != nil {
		m.cutTimer.Stop()
	}
	if m.tearTimer != nil {
		m.tearTimer.Stop()
	}
	select {
	case <-m.done:
		return // already complete
	default:
	}
	m.Aborted = true
	m.Forwarded = int(m.fwd.Load())
	e := m.engine
	e.net.Node(m.To).Unregister(m.rt.port + statePortSuffix)
	// Whichever of old/new host is not the current registration owner
	// still holds a buffer or forwarder handler; drop both — the whole
	// circuit is going away.
	e.net.Node(m.From).Unregister(m.rt.port)
	e.net.Node(m.To).Unregister(m.rt.port)
	m.rt.migrating = false
	m.sp.End(trace.Str("outcome", "cancelled"), trace.Int("forwarded", m.Forwarded))
	m.doneOnce.Do(func() { close(m.done) })
}
