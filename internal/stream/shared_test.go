package stream

import (
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// sharedFixture is an owner circuit (source → pinned filter → shared
// unpinned filter → sink) plus a consumer circuit that reuses the shared
// filter (reused leaf → own unpinned filter → sink). All selectivities
// are 1.0, so every produced tuple must reach both sinks — exact
// conservation across sharing, migration, and cancellation.
type sharedFixture struct {
	s        *engineSetup
	ownerC   *optimizer.Circuit
	consC    *optimizer.Circuit
	inst     *optimizer.ServiceInstance
	ownerSvc int // shared operator's index in the owner circuit
	consSvc  int // reused leaf's index in the consumer circuit
}

func newSharedFixture(t *testing.T, seed int64) *sharedFixture {
	t.Helper()
	s := newEngineSetup(t, seed)
	stubs := s.env.Topo.StubNodeIDs()
	b := &optimizer.Builder{Env: s.env}

	ownerPlan := query.NewFilter(query.NewFilter(query.NewSource(0), 1.0), 1.0)
	if err := ownerPlan.ComputeRates(s.env.Stats); err != nil {
		t.Fatal(err)
	}
	ownerQ := query.Query{ID: 1, Consumer: stubs[9], Streams: []query.StreamID{0}}
	ownerC, err := b.Skeleton(ownerQ, ownerPlan, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &sharedFixture{s: s, ownerC: ownerC, ownerSvc: -1}
	for i, svc := range ownerC.Services {
		if !svc.Pinned && svc.Plan != nil {
			svc.Node = stubs[2]
			f.ownerSvc = i
		}
	}
	if f.ownerSvc < 0 {
		t.Fatal("owner circuit has no unpinned service")
	}
	shared := ownerC.Services[f.ownerSvc]
	f.inst = &optimizer.ServiceInstance{
		Signature: shared.Signature,
		Node:      shared.Node,
		OutRate:   shared.OutRate,
		InRate:    shared.InRate,
		Owner:     ownerQ.ID,
		RefCount:  2,
	}

	consPlan := query.NewFilter(query.NewFilter(query.NewFilter(query.NewSource(0), 1.0), 1.0), 1.0)
	if err := consPlan.ComputeRates(s.env.Stats); err != nil {
		t.Fatal(err)
	}
	consQ := query.Query{ID: 2, Consumer: stubs[13], Streams: []query.StreamID{0}}
	consC, err := b.Skeleton(consQ, consPlan, func(n *query.PlanNode) *optimizer.ServiceInstance {
		if n.Signature() == f.inst.Signature {
			return f.inst
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f.consC = consC
	f.consSvc = -1
	for i, svc := range consC.Services {
		if svc.Reused {
			f.consSvc = i
		} else if !svc.Pinned && svc.Plan != nil {
			svc.Node = stubs[6]
		}
	}
	if f.consSvc < 0 {
		t.Fatal("consumer circuit did not reuse the instance")
	}
	return f
}

func (f *sharedFixture) deployBoth(t *testing.T) (owner, cons *Running) {
	t.Helper()
	owner, err := f.s.engine.Deploy(f.ownerC)
	if err != nil {
		t.Fatal(err)
	}
	cons, err = f.s.engine.Deploy(f.consC)
	if err != nil {
		t.Fatal(err)
	}
	return owner, cons
}

// assertNoLoss quiesces the dataflow and checks the overlay's loss
// counters.
func (f *sharedFixture) assertNoLoss(t *testing.T) {
	t.Helper()
	if v := f.s.net.Metrics.Counter("msgs.unrouted").Value(); v != 0 {
		t.Fatalf("msgs.unrouted = %v", v)
	}
	if v := f.s.net.Metrics.Counter("msgs.down_dropped").Value(); v != 0 {
		t.Fatalf("msgs.down_dropped = %v", v)
	}
}

// TestSharedExecutionSingleInstance is the tentpole's core claim: a
// circuit with a reused service deploys, the shared operator executes
// once, and its tuples reach every subscriber — the owner's sink AND
// the consumer's, with exact conservation.
func TestSharedExecutionSingleInstance(t *testing.T) {
	f := newSharedFixture(t, 41)
	owner, cons := f.deployBoth(t)

	st := f.s.engine.SharedStats()
	if st.Instances != 1 || st.Subscribers != 1 || st.Zombies != 0 {
		t.Fatalf("SharedStats = %+v, want 1 instance / 1 subscriber / 0 zombies", st)
	}

	f.s.runSim(60)
	owner.HaltProducers()
	f.s.runSim(2)

	produced := owner.TuplesProduced()
	if produced == 0 {
		t.Fatal("owner produced nothing")
	}
	if cons.TuplesProduced() != 0 {
		t.Fatalf("consumer has no producers but counted %d produced tuples", cons.TuplesProduced())
	}
	if got := owner.Measure().TuplesOut; got != produced {
		t.Fatalf("owner delivered %d of %d", got, produced)
	}
	if got := cons.Measure().TuplesOut; got != produced {
		t.Fatalf("consumer delivered %d of %d shared tuples", got, produced)
	}
	if got := cons.SharedIn(); got != produced {
		t.Fatalf("consumer SharedIn = %d, want %d", got, produced)
	}
	if cons.Measure().NetworkUsage <= 0 {
		t.Fatal("consumer circuit measured no network usage for its shared link")
	}
	f.assertNoLoss(t)
}

// sharedRunCounts executes the shared scenario for a fixed window and
// returns every measured number that must be reproducible.
func sharedRunCounts(t *testing.T, seed int64) [6]float64 {
	t.Helper()
	f := newSharedFixture(t, seed)
	owner, cons := f.deployBoth(t)
	f.s.runSim(45)
	owner.HaltProducers()
	f.s.runSim(2)
	om, cm := owner.Measure(), cons.Measure()
	return [6]float64{
		float64(owner.TuplesProduced()), float64(om.TuplesOut), om.NetworkUsage,
		float64(cm.TuplesOut), cm.NetworkUsage, cm.MeanLatencyMs,
	}
}

// TestSharedExecutionDeterministic pins bit-identical same-seed runs of
// the shared dataflow under the virtual clock.
func TestSharedExecutionDeterministic(t *testing.T) {
	a := sharedRunCounts(t, 42)
	b := sharedRunCounts(t, 42)
	if a != b {
		t.Fatalf("same-seed shared runs diverged:\n%v\n%v", a, b)
	}
}

// TestSharedInstanceMigrationFlipsSubscribers migrates the shared
// operator through the owning circuit mid-stream and requires the
// consumer's view of the instance to flip at cutover, with zero tuple
// loss on both circuits.
func TestSharedInstanceMigrationFlipsSubscribers(t *testing.T) {
	f := newSharedFixture(t, 43)
	owner, cons := f.deployBoth(t)
	stubs := f.s.env.Topo.StubNodeIDs()
	f.s.runSim(20)

	target := stubs[4]
	m, err := f.s.engine.Migrate(f.ownerC.Query.ID, f.ownerSvc, target)
	if err != nil {
		t.Fatal(err)
	}
	f.s.runSim(20)
	select {
	case <-m.Done():
	default:
		t.Fatal("migration incomplete after 20 simulated seconds")
	}
	if got := owner.Host(f.ownerSvc); got != target {
		t.Fatalf("owner hosts shared service on %d, want %d", got, target)
	}
	if got := cons.Host(f.consSvc); got != target {
		t.Fatalf("consumer still sees shared service on %d, want %d (stale subscriber routing)", got, target)
	}

	owner.HaltProducers()
	f.s.runSim(2)
	produced := owner.TuplesProduced()
	if got := owner.Measure().TuplesOut; got != produced {
		t.Fatalf("owner delivered %d of %d across shared migration", got, produced)
	}
	if got := cons.Measure().TuplesOut; got != produced {
		t.Fatalf("consumer delivered %d of %d across shared migration", got, produced)
	}
	f.assertNoLoss(t)
}

// TestMigrateReusedServiceRejected pins the data-plane guard: a
// consumer circuit cannot migrate a service it does not execute.
func TestMigrateReusedServiceRejected(t *testing.T) {
	f := newSharedFixture(t, 44)
	f.deployBoth(t)
	if _, err := f.s.engine.Migrate(f.consC.Query.ID, f.consSvc, f.s.env.Topo.StubNodeIDs()[5]); err == nil {
		t.Fatal("engine migrated a reused service from a non-owner circuit")
	}
}

// TestSharedOwnerCancelZombie cancels the owner first: the shared
// subtree must keep executing (trimmed zombie) for the consumer, the
// owner's own sink must stop, and the last consumer's cancel must
// finally tear everything down.
func TestSharedOwnerCancelZombie(t *testing.T) {
	f := newSharedFixture(t, 45)
	owner, cons := f.deployBoth(t)
	f.s.runSim(30)

	if err := f.s.engine.Stop(f.ownerC.Query.ID); err != nil {
		t.Fatal(err)
	}
	st := f.s.engine.SharedStats()
	if st.Zombies != 1 || st.Instances != 1 || st.Subscribers != 1 {
		t.Fatalf("SharedStats after owner cancel = %+v, want zombie provider with 1 subscriber", st)
	}

	ownerOut := owner.Measure().TuplesOut
	consOut := cons.Measure().TuplesOut
	f.s.runSim(30)
	if got := owner.Measure().TuplesOut; got != ownerOut {
		t.Fatalf("cancelled owner's sink still receiving: %d -> %d", ownerOut, got)
	}
	if got := cons.Measure().TuplesOut; got <= consOut {
		t.Fatalf("consumer starved after owner cancel: %d -> %d", consOut, got)
	}

	// Quiesce the zombie's producers through the retained handle, then
	// release the last subscriber: the zombie must collapse.
	owner.HaltProducers()
	f.s.runSim(2)
	produced := owner.TuplesProduced()
	if got := cons.Measure().TuplesOut; got != produced {
		t.Fatalf("consumer delivered %d of %d across owner cancel", got, produced)
	}
	if err := f.s.engine.Stop(f.consC.Query.ID); err != nil {
		t.Fatal(err)
	}
	if st := f.s.engine.SharedStats(); st != (SharedStats{}) {
		t.Fatalf("SharedStats after last consumer cancel = %+v, want all zero", st)
	}
	f.s.runSim(10)
	f.assertNoLoss(t)
}

// TestSharedLastConsumerCancel cancels the consumer while the owner
// keeps running: subscriptions must release without disturbing the
// owner's dataflow.
func TestSharedLastConsumerCancel(t *testing.T) {
	f := newSharedFixture(t, 46)
	owner, _ := f.deployBoth(t)
	f.s.runSim(30)
	owner.HaltProducers()
	f.s.runSim(2)

	if err := f.s.engine.Stop(f.consC.Query.ID); err != nil {
		t.Fatal(err)
	}
	if st := f.s.engine.SharedStats(); st != (SharedStats{}) {
		t.Fatalf("SharedStats after consumer cancel = %+v, want all zero", st)
	}
	produced := owner.TuplesProduced()
	if got := owner.Measure().TuplesOut; got != produced {
		t.Fatalf("owner delivered %d of %d after consumer cancel", got, produced)
	}
	f.assertNoLoss(t)
}

// TestSharedOwnerNodeKilled is the X12-style churn case: the shared
// operator's host is drained (live migration) and then killed; the
// subscriber must keep receiving from the new host with zero loss and
// no data ever sent to the dead node.
func TestSharedOwnerNodeKilled(t *testing.T) {
	f := newSharedFixture(t, 47)
	owner, cons := f.deployBoth(t)
	stubs := f.s.env.Topo.StubNodeIDs()
	victim := topology.NodeID(f.inst.Node)
	f.s.runSim(20)

	target := stubs[7]
	m, err := f.s.engine.Migrate(f.ownerC.Query.ID, f.ownerSvc, target)
	if err != nil {
		t.Fatal(err)
	}
	f.s.clk.Sleep(m.ScheduledEnd.Sub(f.s.clk.Now()) + time.Millisecond)
	select {
	case <-m.Done():
	default:
		t.Fatal("drain migration incomplete")
	}
	f.s.net.SetNodeDown(victim, true)
	f.s.runSim(20)

	if got := cons.Host(f.consSvc); got != target {
		t.Fatalf("consumer routed to %d after kill, want %d", got, target)
	}
	owner.HaltProducers()
	f.s.runSim(2)
	produced := owner.TuplesProduced()
	if got := cons.Measure().TuplesOut; got != produced {
		t.Fatalf("consumer delivered %d of %d across drain+kill", got, produced)
	}
	f.assertNoLoss(t)
}

// TestZombieTrimMidMigrationNoLoss cancels an owner while one of its
// *private* (non-shared) operators is mid-handoff: the zombie trim must
// cancel that migration and drain tuples already in flight toward the
// migration target — at the flipped route, not just the old host — so
// nothing counts as routing loss while the shared subtree keeps
// serving the consumer.
func TestZombieTrimMidMigrationNoLoss(t *testing.T) {
	s := newEngineSetup(t, 48)
	stubs := s.env.Topo.StubNodeIDs()
	b := &optimizer.Builder{Env: s.env}

	// Owner: source → pinned F1 → shared F2 → private F3 → sink.
	ownerPlan := query.NewFilter(query.NewFilter(query.NewFilter(query.NewSource(0), 1.0), 1.0), 1.0)
	if err := ownerPlan.ComputeRates(s.env.Stats); err != nil {
		t.Fatal(err)
	}
	ownerQ := query.Query{ID: 1, Consumer: stubs[9], Streams: []query.StreamID{0}}
	ownerC, err := b.Skeleton(ownerQ, ownerPlan, nil)
	if err != nil {
		t.Fatal(err)
	}
	var unpinned []int
	for i, svc := range ownerC.Services {
		if !svc.Pinned && svc.Plan != nil {
			unpinned = append(unpinned, i)
		}
	}
	if len(unpinned) != 2 {
		t.Fatalf("owner has %d unpinned services, want 2", len(unpinned))
	}
	sharedSvc, privSvc := unpinned[0], unpinned[1]
	ownerC.Services[sharedSvc].Node = stubs[2]
	ownerC.Services[privSvc].Node = stubs[3]
	inst := &optimizer.ServiceInstance{
		Signature: ownerC.Services[sharedSvc].Signature,
		Node:      stubs[2],
		Owner:     ownerQ.ID,
		RefCount:  2,
	}

	// Consumer: reused F2 → own filter → sink.
	consPlan := query.NewFilter(query.NewFilter(query.NewFilter(query.NewFilter(query.NewSource(0), 1.0), 1.0), 1.0), 1.0)
	if err := consPlan.ComputeRates(s.env.Stats); err != nil {
		t.Fatal(err)
	}
	consQ := query.Query{ID: 2, Consumer: stubs[13], Streams: []query.StreamID{0}}
	consC, err := b.Skeleton(consQ, consPlan, func(n *query.PlanNode) *optimizer.ServiceInstance {
		if n.Signature() == inst.Signature {
			return inst
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range consC.Services {
		if !svc.Pinned && svc.Plan != nil {
			svc.Node = stubs[6]
		}
	}

	owner, err := s.engine.Deploy(ownerC)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := s.engine.Deploy(consC)
	if err != nil {
		t.Fatal(err)
	}
	s.runSim(10)

	// Start migrating the private operator, then cancel the owner in
	// the same virtual instant — tuples are in flight to the flipped
	// route when the trim cancels the handoff.
	if _, err := s.engine.Migrate(ownerQ.ID, privSvc, stubs[8]); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.Stop(ownerQ.ID); err != nil {
		t.Fatal(err)
	}
	if st := s.engine.SharedStats(); st.Zombies != 1 {
		t.Fatalf("SharedStats = %+v, want 1 zombie", st)
	}
	s.runSim(10)

	owner.HaltProducers()
	s.runSim(2)
	produced := owner.TuplesProduced()
	if got := cons.Measure().TuplesOut; got != produced {
		t.Fatalf("consumer delivered %d of %d across zombie trim", got, produced)
	}
	if v := s.net.Metrics.Counter("msgs.unrouted").Value(); v != 0 {
		t.Fatalf("msgs.unrouted = %v (in-flight tuples to the cancelled migration target were dropped)", v)
	}
	if err := s.engine.Stop(consQ.ID); err != nil {
		t.Fatal(err)
	}
	s.runSim(5)
	if v := s.net.Metrics.Counter("msgs.unrouted").Value(); v != 0 {
		t.Fatalf("msgs.unrouted = %v after full teardown", v)
	}
}
