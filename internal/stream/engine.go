package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// EngineConfig tunes circuit execution.
type EngineConfig struct {
	// Keyspace is the producer key domain [0, Keyspace) (default 1000).
	// Join windows are sized as selectivity·Keyspace to make measured
	// join rates track the catalog model.
	Keyspace int64
	// TupleSizeKB is the producer tuple size (default 1.0).
	TupleSizeKB float64
	// Seed drives producer key/value generation.
	Seed int64
	// Tracer, when non-nil, records migration phase spans and — behind
	// the tracer's sampling gate — per-tuple hop events on the emission
	// path. A nil tracer costs one pointer check per emitted edge.
	Tracer *trace.Tracer
}

// DefaultEngineConfig returns engine defaults.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{Keyspace: 1000, TupleSizeKB: 1.0, Seed: 1}
}

// Engine deploys circuits onto the overlay runtime and measures the
// resulting dataflow. It inherits the network's clock: on a virtual
// clock, producers are events on the simulation heap instead of
// goroutines, and a fixed seed reproduces the measured dataflow bit
// for bit.
//
// Shared service instances (§3.4 multi-query optimization) are
// first-class: a circuit whose plan reuses an instance from another
// circuit deploys without duplicating the shared operator — the engine
// taps the providing circuit's operator output and routes it into the
// consumer's downstream services over the overlay, so the shared
// subtree's tuples are produced exactly once and delivered to every
// subscriber.
type Engine struct {
	net   *overlay.Network
	topo  *topology.Topology
	cfg   EngineConfig
	clock simtime.Clock

	mu      sync.Mutex
	running map[query.QueryID]*Running
	// shared maps a reusable instance to the circuit service executing
	// it; zombies are cancelled provider circuits kept (trimmed) alive
	// because other circuits still subscribe to their services.
	shared  map[*optimizer.ServiceInstance]*sharedExec
	zombies map[*Running]struct{}
}

// NewEngine builds an engine over a started overlay network.
func NewEngine(net *overlay.Network, topo *topology.Topology, cfg EngineConfig) *Engine {
	if cfg.Keyspace <= 0 {
		cfg.Keyspace = 1000
	}
	if cfg.TupleSizeKB <= 0 {
		cfg.TupleSizeKB = 1.0
	}
	return &Engine{
		net:     net,
		topo:    topo,
		cfg:     cfg,
		clock:   net.Clock(),
		running: make(map[query.QueryID]*Running),
		shared:  make(map[*optimizer.ServiceInstance]*sharedExec),
		zombies: make(map[*Running]struct{}),
	}
}

// Running is one deployed, executing circuit.
type Running struct {
	Circuit *optimizer.Circuit

	engine    *Engine
	stop      chan struct{}
	prodStop  chan struct{} // closes producers only (HaltProducers)
	haltOnce  sync.Once
	producers sync.WaitGroup   // goroutine producers (real clock)
	prods     []producerHandle // per-source halt handles (both clocks)
	started   time.Time

	// route[i] is the node tuples destined for service i are sent to;
	// host[i] is the node service i currently executes on. They diverge
	// only during a migration handoff: route flips to the target first
	// (arrivals buffer there) while host follows at cutover. Emitters
	// load both atomically per tuple, which is what lets the adaptation
	// layer re-route circuit links under live traffic. For a reused
	// service both mirror the providing circuit's placement and flip at
	// the provider's cutover.
	route []atomic.Int32
	host  []atomic.Int32
	// svcs carries each service's runtime state: the registered port,
	// the operator instance that migrates with it, the gate serializing
	// operator access across a handoff, and the cross-circuit
	// subscription edges of circuits reusing the service.
	svcs []svcRuntime

	// taps are the shared services this circuit consumes (under
	// engine.mu).
	taps []*tap
	// zombie marks a cancelled circuit kept alive because other
	// circuits still subscribe to its services; kept[i] reports whether
	// service i survived the zombie trim (under engine.mu).
	zombie bool
	kept   []bool

	migs []*Migration // under engine.mu

	tuplesIn  *metrics.Counter // tuples entering at producers
	sharedIn  *metrics.Counter // tuples delivered in from shared providers
	tuplesOut *metrics.Counter
	kbOut     *metrics.Counter
	latencyMs *metrics.Histogram
	usageKBms *metrics.Counter
}

// producerHandle lets the engine halt one source's tuple generation
// independently — the zombie trim stops producers that only feed a
// cancelled circuit's private services while shared subtrees keep
// flowing.
type producerHandle struct {
	svc  int
	halt func()
}

// svcRuntime is the per-service executable state the migration protocol
// hands between nodes.
type svcRuntime struct {
	port     string
	operator Operator
	// handler is the registered dispatch closure (gate-wrapped process).
	handler overlay.Handler
	// process runs the operator without taking the gate — the replay
	// path, called with the gate already held.
	process func(side int, t Tuple)
	// gate serializes operator access between the old host's stragglers
	// and the new host's replay under the real clock (a no-op
	// uncontended lock in virtual runs, where the scheduler serializes
	// everything).
	gate sync.Mutex
	// migrating marks an in-flight handoff (under engine.mu).
	migrating bool

	// outs are the service's own-circuit delivery edges; subs are the
	// cross-circuit edges of subscribers reusing this service. Both are
	// copy-on-write slices (written under engine.mu, loaded atomically
	// per emission) so deploys, cancels, and the zombie trim re-route
	// the dataflow under live traffic.
	outs atomic.Pointer[[]outEdge]
	subs atomic.Pointer[[]subEdge]
	// taps lists the subscriptions feeding subs, in deploy order
	// (under engine.mu).
	taps []*tap
}

// outEdge is a precomputed delivery target for a service's emissions;
// the destination node is resolved through Running.route at emit time.
type outEdge struct {
	svc  int // destination service index
	port string
	side int
}

// subEdge is a cross-circuit delivery target: a downstream service of a
// circuit that reuses this instance. The destination node is resolved
// through the subscriber's own route table at emit time, and the link
// is charged to the subscriber (the control plane's accounting: a
// consumer pays for the stream from the shared instance to its own
// services).
type subEdge struct {
	run  *Running // subscribing circuit
	svc  int      // destination service index in the subscriber
	port string
	side int
}

// sharedExec locates the circuit service executing a shareable
// instance.
type sharedExec struct {
	run *Running
	svc int
}

// tap is one circuit's subscription to a shared service: the consumer's
// reused-service index plus the delivery edges it contributed to the
// provider's subscriber list.
type tap struct {
	consumer *Running
	svc      int // reused service index in the consumer circuit
	se       *sharedExec
	edges    []subEdge
}

// dataMsg is the on-wire tuple payload.
type dataMsg struct {
	Side int
	T    Tuple
}

// ErrProviderNotRunning marks consumer circuits that cannot execute
// because the circuit owning one of their reused instances is not
// deployed on the engine; deploy providers before their consumers.
var ErrProviderNotRunning = errors.New("shared instance provider not running")

// ErrNotRunning marks operations against a query the engine is not
// executing; the adaptation layer matches it to fall back to
// control-plane-only migration for undeployed circuits.
var ErrNotRunning = errors.New("query not running")

// Deploy instantiates the circuit's operators on their hosts, starts
// producers, and begins measurement. Reused services are not
// instantiated: the engine subscribes the circuit's downstream services
// to the providing circuit's operator output instead, so a shared
// instance executes exactly once no matter how many circuits consume
// it. The providers must already be running (ErrProviderNotRunning).
func (e *Engine) Deploy(c *optimizer.Circuit) (*Running, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.running[c.Query.ID]; ok {
		return nil, fmt.Errorf("stream: query %d already running", c.Query.ID)
	}

	// Resolve every reused service's executing provider up front, so a
	// failed resolution aborts before anything is registered.
	type pendingTap struct {
		svc int
		se  *sharedExec
	}
	var pending []pendingTap
	for i, s := range c.Services {
		if !s.Reused {
			continue
		}
		if s.ReusedFrom == nil {
			return nil, fmt.Errorf("stream: circuit q%d service %d is reused but carries no instance", c.Query.ID, i)
		}
		se, err := e.resolveProviderLocked(s.ReusedFrom)
		if err != nil {
			return nil, fmt.Errorf("stream: circuit q%d: %w", c.Query.ID, err)
		}
		pending = append(pending, pendingTap{svc: i, se: se})
	}

	r := &Running{
		Circuit:   c,
		engine:    e,
		stop:      make(chan struct{}),
		prodStop:  make(chan struct{}),
		route:     make([]atomic.Int32, len(c.Services)),
		host:      make([]atomic.Int32, len(c.Services)),
		svcs:      make([]svcRuntime, len(c.Services)),
		tuplesIn:  &metrics.Counter{},
		sharedIn:  &metrics.Counter{},
		tuplesOut: &metrics.Counter{},
		kbOut:     &metrics.Counter{},
		latencyMs: &metrics.Histogram{},
		usageKBms: &metrics.Counter{},
	}
	for i, s := range c.Services {
		r.route[i].Store(int32(s.Node))
		r.host[i].Store(int32(s.Node))
	}

	port := func(i int) string { return fmt.Sprintf("q%d.s%d", c.Query.ID, i) }

	// Outgoing edges per service, with input side derived from link order
	// at the receiver (left child link is appended first by the builder).
	outs := make([][]outEdge, len(c.Services))
	inputsSeen := make(map[int]int, len(c.Services))
	for _, l := range c.Links {
		side := inputsSeen[l.To]
		inputsSeen[l.To]++
		outs[l.From] = append(outs[l.From], outEdge{
			svc:  l.To,
			port: port(l.To),
			side: side,
		})
	}
	for i := range c.Services {
		// A reused service never emits here (its provider does, through
		// the subscription edges built from outs below), so storing its
		// own-circuit edges would only create dead state.
		if len(outs[i]) > 0 && !c.Services[i].Reused {
			edges := outs[i]
			r.svcs[i].outs.Store(&edges)
		}
	}

	// Install operator handlers and the consumer sink.
	for i, s := range c.Services {
		switch {
		case s.Reused:
			// Executes inside its provider; wired below via a tap.
		case s.Plan == nil: // consumer sink
			nd := e.net.Node(s.Node)
			p := port(i)
			r.svcs[i].port = p
			nd.Register(p, func(m overlay.Message) {
				dm := m.Payload.(dataMsg)
				r.tuplesOut.Inc()
				r.kbOut.Add(dm.T.SizeKB)
				// NowAt, not clock.Since: under sharded execution the
				// handler runs at the delivery instant of the consumer's
				// shard, where the global clock is only barrier-fresh.
				r.latencyMs.Observe(e.net.SimMillis(e.net.NowAt(m.To).Sub(dm.T.Created)))
			})
		case s.Plan.Kind == query.KindSource:
			// Producers are started below.
		default:
			op, err := OperatorFor(s.Plan, e.cfg.Keyspace)
			if err != nil {
				e.teardownLocked(r)
				return nil, err
			}
			rt := &r.svcs[i]
			rt.port = port(i)
			rt.operator = op
			emit := r.emitFor(i)
			rt.process = func(side int, t Tuple) { op.Process(side, t, emit) }
			rt.handler = func(m overlay.Message) {
				dm := m.Payload.(dataMsg)
				rt.gate.Lock()
				rt.process(dm.Side, dm.T)
				rt.gate.Unlock()
			}
			e.net.Node(s.Node).Register(rt.port, rt.handler)
		}
	}

	// Wire the subscriptions: every reused service becomes a set of
	// cross-circuit edges on its provider, and the consumer's view of
	// the service mirrors the provider's current placement.
	for _, pt := range pending {
		t := &tap{consumer: r, svc: pt.svc, se: pt.se}
		for _, eg := range outs[pt.svc] {
			t.edges = append(t.edges, subEdge{run: r, svc: eg.svc, port: eg.port, side: eg.side})
		}
		prov := pt.se.run
		prov.svcs[pt.se.svc].taps = append(prov.svcs[pt.se.svc].taps, t)
		e.rebuildSubsLocked(prov, pt.se.svc)
		r.taps = append(r.taps, t)
		h := prov.host[pt.se.svc].Load()
		r.route[pt.svc].Store(h)
		r.host[pt.svc].Store(h)
	}

	// Start producers: goroutines paced by a wall-clock ticker on the
	// real clock, recurring events on the virtual clock.
	r.started = e.clock.Now()
	for i, s := range c.Services {
		if s.Reused || s.Plan == nil || s.Plan.Kind != query.KindSource {
			continue
		}
		rate := s.Plan.OutRate // KB/s simulated
		emit := r.emitFor(i)
		counted := func(t Tuple) {
			r.tuplesIn.Inc()
			emit(t)
		}
		stream := s.Plan.Stream
		seed := e.cfg.Seed + int64(stream)*7919 + int64(c.Query.ID)*104729
		if e.net.Virtual() {
			p := e.startVirtualProducer(r, s.Node, stream, rate, seed, counted)
			r.prods = append(r.prods, producerHandle{svc: i, halt: p.halt})
			continue
		}
		stop := make(chan struct{})
		var once sync.Once
		r.prods = append(r.prods, producerHandle{svc: i, halt: func() { once.Do(func() { close(stop) }) }})
		r.producers.Add(1)
		go e.produce(r, stop, stream, rate, seed, counted)
	}

	e.running[c.Query.ID] = r
	return r, nil
}

// resolveProviderLocked locates the circuit service executing a
// shareable instance: the owning circuit's non-reused service with the
// instance's signature, or — when ownership was handed to a consumer
// after the original owner cancelled — the service that consumer's own
// tap points at.
func (e *Engine) resolveProviderLocked(inst *optimizer.ServiceInstance) (*sharedExec, error) {
	if se, ok := e.shared[inst]; ok {
		if se.run.zombie && !se.run.kept[se.svc] {
			return nil, fmt.Errorf("stream: instance %q provider was trimmed from cancelled query %d: %w",
				inst.Signature, se.run.Circuit.Query.ID, ErrProviderNotRunning)
		}
		return se, nil
	}
	run, ok := e.running[inst.Owner]
	if !ok {
		return nil, fmt.Errorf("stream: instance %q owner query %d: %w", inst.Signature, inst.Owner, ErrProviderNotRunning)
	}
	for i, s := range run.Circuit.Services {
		if s.Plan == nil || s.Plan.Kind == query.KindSource || s.Signature != inst.Signature {
			continue
		}
		if s.Reused {
			// Adopted owner: it consumes the instance itself; follow its
			// tap to the executing provider.
			for _, t := range run.taps {
				if t.svc == i {
					se := &sharedExec{run: t.se.run, svc: t.se.svc}
					e.shared[inst] = se
					return se, nil
				}
			}
			continue
		}
		se := &sharedExec{run: run, svc: i}
		e.shared[inst] = se
		return se, nil
	}
	return nil, fmt.Errorf("stream: instance %q has no executing service in owner query %d: %w",
		inst.Signature, inst.Owner, ErrProviderNotRunning)
}

// rebuildSubsLocked reassembles a provider service's subscriber edge
// list from its taps, in deploy order — the copy-on-write publish point
// emitters load per tuple.
func (e *Engine) rebuildSubsLocked(r *Running, svc int) {
	rt := &r.svcs[svc]
	if len(rt.taps) == 0 {
		rt.subs.Store(nil)
		return
	}
	var edges []subEdge
	for _, t := range rt.taps {
		edges = append(edges, t.edges...)
	}
	rt.subs.Store(&edges)
}

// emitFor builds the emission closure for service idx: each output tuple
// is sent from the service's current host to every downstream target's
// current route — own-circuit edges first, then cross-circuit
// subscriber edges — all resolved per tuple so live migrations and
// subscription changes re-route the dataflow without re-deploying.
func (r *Running) emitFor(idx int) Emit {
	e := r.engine
	rt := &r.svcs[idx]
	tr := e.cfg.Tracer // nil when tracing is off: Sample() is then one nil check
	q := int(r.Circuit.Query.ID)
	return func(t Tuple) {
		from := topology.NodeID(r.host[idx].Load())
		node := e.net.Node(from)
		// Hop tracing samples against the emitting node's private counter
		// and defers the emission through the clock's observation barrier:
		// both the sampling decision and the recorded event order become
		// pure functions of the node's own emission history, identical
		// under single-queue and sharded execution.
		if outs := rt.outs.Load(); outs != nil {
			for _, tgt := range *outs {
				to := topology.NodeID(r.route[tgt.svc].Load())
				r.usageKBms.Add(t.SizeKB * e.topo.Latency(from, to))
				if tr.SampleAt(e.net.TraceSampleCtr(from)) {
					hopTo, sizeKB := to, t.SizeKB
					e.net.ObserveAt(from, func(at time.Time) {
						tr.EmitAtTime(at, "engine", "hop", trace.Int("q", q), trace.Int("svc", idx),
							trace.Int("from", int(from)), trace.Int("to", int(hopTo)),
							trace.Num("size_kb", sizeKB))
					})
				}
				// Send never blocks; post-shutdown sends are dropped.
				_ = node.Send(to, tgt.port, t.SizeKB, dataMsg{Side: tgt.side, T: t})
			}
		}
		if subs := rt.subs.Load(); subs != nil {
			for _, sb := range *subs {
				to := topology.NodeID(sb.run.route[sb.svc].Load())
				sb.run.sharedIn.Inc()
				sb.run.usageKBms.Add(t.SizeKB * e.topo.Latency(from, to))
				if tr.SampleAt(e.net.TraceSampleCtr(from)) {
					hopTo, sizeKB, subQ := to, t.SizeKB, int(sb.run.Circuit.Query.ID)
					e.net.ObserveAt(from, func(at time.Time) {
						tr.EmitAtTime(at, "engine", "hop_shared", trace.Int("q", q), trace.Int("svc", idx),
							trace.Int("sub_q", subQ),
							trace.Int("from", int(from)), trace.Int("to", int(hopTo)),
							trace.Num("size_kb", sizeKB))
					})
				}
				_ = node.Send(to, sb.port, t.SizeKB, dataMsg{Side: sb.side, T: t})
			}
		}
	}
}

// produceInterval returns the clock duration between tuples for a
// simulated rate: one tuple every TupleSizeKB/rate simulated seconds,
// scaled by the runtime's time scale.
func (e *Engine) produceInterval(rateKBs float64) time.Duration {
	simSec := e.cfg.TupleSizeKB / rateKBs
	interval := time.Duration(simSec * 1000 * float64(e.net.Config().TimeScale))
	if interval <= 0 {
		interval = time.Microsecond
	}
	return interval
}

// produce generates tuples at the stream's simulated rate until stopped
// (real clock). Emission is paced by elapsed wall time rather than
// one-per-tick: Go tickers coalesce missed ticks, which would silently
// under-produce at sub-millisecond intervals.
func (e *Engine) produce(r *Running, stop <-chan struct{}, stream query.StreamID, rateKBs float64, seed int64, emit Emit) {
	defer r.producers.Done()
	rng := rand.New(rand.NewSource(seed))
	interval := e.produceInterval(rateKBs)
	tick := interval
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	const maxBurst = 1000 // bound catch-up after a scheduling stall
	start := time.Now()
	emitted := int64(0)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.prodStop:
			return
		case <-stop:
			return
		case <-ticker.C:
			due := int64(time.Since(start) / interval)
			if due-emitted > maxBurst {
				emitted = due - maxBurst // slip instead of flooding
			}
			for ; emitted < due; emitted++ {
				emit(Tuple{
					Stream:  stream,
					Key:     rng.Int63n(e.cfg.Keyspace),
					Value:   rng.NormFloat64(),
					SizeKB:  e.cfg.TupleSizeKB,
					Created: time.Now(),
				})
			}
		}
	}
}

// vProducer is a virtual-clock producer: a self-rescheduling event on
// the simulation heap. The mutex covers the stop/reschedule handshake;
// under the registered-actor discipline the scheduler is parked while
// the driver tears down, so contention is nil.
type vProducer struct {
	mu      sync.Mutex
	timer   simtime.Timer
	stopped bool
}

func (p *vProducer) halt() {
	p.mu.Lock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
}

// startVirtualProducer schedules tuple emission as recurring clock
// events in the host node's domain: exactly one tuple per interval, no
// catch-up needed because virtual time never stalls. Producers are
// pinned (only operators migrate), so the host's shard executes every
// step — shard-locally, with no barrier crossings. Event keys are
// (instant, host, per-host sequence) in both execution modes: at one
// instant, producers fire in host-id order, ties within a host in
// deploy order, which is what makes same-seed runs bit-identical.
func (e *Engine) startVirtualProducer(r *Running, host topology.NodeID, stream query.StreamID, rateKBs float64, seed int64, emit Emit) *vProducer {
	rng := rand.New(rand.NewSource(seed))
	interval := e.produceInterval(rateKBs)
	dc := e.net.DomainClock()
	dom := simtime.Domain(host)
	p := &vProducer{}
	var step func()
	step = func() {
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		emit(Tuple{
			Stream:  stream,
			Key:     rng.Int63n(e.cfg.Keyspace),
			Value:   rng.NormFloat64(),
			SizeKB:  e.cfg.TupleSizeKB,
			Created: dc.DomainNow(dom),
		})
		p.mu.Lock()
		if !p.stopped {
			p.timer = dc.ScheduleDomain(dom, dom, interval, step)
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.timer = dc.ScheduleDomain(dom, dom, interval, step)
	p.mu.Unlock()
	return p
}

// Stop cancels a running circuit. Its own execution ends — producers
// halt, handlers are removed, its subscriptions on other circuits
// release — but services that other circuits reuse keep executing: the
// circuit lingers as a trimmed "zombie" (only the shared subtrees and
// the producers feeding them stay live) until the last subscriber
// releases it.
func (e *Engine) Stop(id query.QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.running[id]
	if !ok {
		return fmt.Errorf("stream: query %d not running", id)
	}
	delete(e.running, id)
	e.retireLocked(r)
	return nil
}

// retireLocked ends a circuit's execution: full teardown when nothing
// subscribes to its services, a zombie trim otherwise.
func (e *Engine) retireLocked(r *Running) {
	if e.liveTapsLocked(r) > 0 {
		e.zombifyLocked(r)
		return
	}
	e.teardownLocked(r)
	e.dropProviderRecordsLocked(r)
	taps := r.taps
	r.taps = nil
	for _, t := range taps {
		e.releaseTapLocked(t)
	}
}

// liveTapsLocked counts subscriptions other circuits hold on r's
// services.
func (e *Engine) liveTapsLocked(r *Running) int {
	n := 0
	for i := range r.svcs {
		n += len(r.svcs[i].taps)
	}
	return n
}

// releaseTapLocked detaches one subscription from its provider and
// collapses the provider if it was a zombie waiting only on this tap.
func (e *Engine) releaseTapLocked(t *tap) {
	prov := t.se.run
	rt := &prov.svcs[t.se.svc]
	for i, pt := range rt.taps {
		if pt == t {
			rt.taps = append(rt.taps[:i], rt.taps[i+1:]...)
			break
		}
	}
	e.rebuildSubsLocked(prov, t.se.svc)
	if prov.zombie && e.liveTapsLocked(prov) == 0 {
		e.collapseZombieLocked(prov)
	}
}

// collapseZombieLocked fully tears down a zombie whose last subscriber
// released, cascading through providers it was itself subscribed to.
func (e *Engine) collapseZombieLocked(z *Running) {
	delete(e.zombies, z)
	e.teardownLocked(z)
	e.dropProviderRecordsLocked(z)
	taps := z.taps
	z.taps = nil
	for _, t := range taps {
		e.releaseTapLocked(t)
	}
}

// zombifyLocked trims a cancelled circuit down to the services other
// circuits subscribe to: the shared subtrees (and the producers and
// upstream operators feeding them) keep executing; everything else —
// the consumer sink, private branches, their producers — stops. Ports
// of trimmed services stay registered as drains so tuples already in
// flight are absorbed rather than counted as routing loss.
func (e *Engine) zombifyLocked(r *Running) {
	r.zombie = true
	e.zombies[r] = struct{}{}

	keep := make([]bool, len(r.svcs))
	var mark func(i int)
	mark = func(i int) {
		if keep[i] {
			return
		}
		keep[i] = true
		for _, l := range r.Circuit.Links {
			if l.To == i {
				mark(l.From)
			}
		}
	}
	for i := range r.svcs {
		if len(r.svcs[i].taps) > 0 {
			mark(i)
		}
	}
	r.kept = keep

	// Release this circuit's own subscriptions that only feed trimmed
	// services; keep the ones feeding a surviving shared subtree.
	var retained []*tap
	taps := r.taps
	r.taps = nil
	for _, t := range taps {
		if keep[t.svc] {
			retained = append(retained, t)
			continue
		}
		e.releaseTapLocked(t)
	}
	r.taps = retained

	for _, p := range r.prods {
		if !keep[p.svc] {
			p.halt()
		}
	}
	// In-flight migrations of trimmed services are cancelled; kept
	// services' handoffs proceed (their phase events check r.stop,
	// which a zombie leaves open).
	for _, m := range r.migs {
		if keep[m.Service] {
			continue
		}
		select {
		case <-m.done: // already complete; nothing in flight
		default:
			m.cancel()
			// The T0 state-transfer message may still be in flight to
			// the target whose side port cancel just unregistered;
			// absorb it rather than counting it as routing loss.
			e.net.Node(m.To).Register(m.rt.port+statePortSuffix, func(overlay.Message) {})
		}
	}
	for i := range r.svcs {
		rt := &r.svcs[i]
		if keep[i] {
			if outsp := rt.outs.Load(); outsp != nil {
				kept := make([]outEdge, 0, len(*outsp))
				for _, eg := range *outsp {
					if keep[eg.svc] {
						kept = append(kept, eg)
					}
				}
				rt.outs.Store(&kept)
			}
			continue
		}
		rt.outs.Store(nil)
		if rt.port != "" {
			drain := func(overlay.Message) {}
			e.net.Node(topology.NodeID(r.host[i].Load())).Register(rt.port, drain)
			// A service whose migration was just cancelled mid-handoff
			// has route pointing at the target (whose buffer m.cancel
			// unregistered); tuples already in flight there must drain
			// too, not count as routing loss.
			if to := r.route[i].Load(); to != r.host[i].Load() {
				e.net.Node(topology.NodeID(to)).Register(rt.port, drain)
			}
		}
	}
}

// dropProviderRecordsLocked forgets the instance→service records of a
// fully torn down circuit.
func (e *Engine) dropProviderRecordsLocked(r *Running) {
	for inst, se := range e.shared {
		if se.run == r {
			delete(e.shared, inst)
		}
	}
}

func (e *Engine) teardownLocked(r *Running) {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	for _, p := range r.prods {
		p.halt()
	}
	r.producers.Wait()
	// Cancel in-flight migrations: pending phase timers are stopped and
	// waiters released before ports disappear. The explicit state-port
	// unregister also retires any drain the zombie trim left for an
	// in-flight state transfer (cancel no-ops on completed records).
	for _, m := range r.migs {
		m.cancel()
		e.net.Node(m.To).Unregister(m.rt.port + statePortSuffix)
	}
	// Unregister each service's port at its *current* host; a service
	// mid-handoff may also hold a forwarder or buffer registration on
	// its old host, which m.cancel released above. A trimmed zombie
	// service may additionally hold a drain on its route target
	// (cancelled-mid-handoff case) — drop that too.
	for i := range r.svcs {
		rt := &r.svcs[i]
		if rt.port == "" {
			continue
		}
		e.net.Node(topology.NodeID(r.host[i].Load())).Unregister(rt.port)
		if to := r.route[i].Load(); to != r.host[i].Load() {
			e.net.Node(topology.NodeID(to)).Unregister(rt.port)
		}
	}
}

// HaltProducers stops tuple generation for the circuit while leaving
// operators, routes, and measurement running — the quiesce step the
// loss-accounting tests use to let in-flight tuples drain before
// comparing produced and delivered counts.
func (r *Running) HaltProducers() {
	r.haltOnce.Do(func() {
		close(r.prodStop)
		for _, p := range r.prods {
			p.halt()
		}
		r.producers.Wait()
	})
}

// TuplesProduced returns the number of tuples producers have injected.
func (r *Running) TuplesProduced() int { return int(r.tuplesIn.Value()) }

// SharedIn returns the number of tuple deliveries the circuit received
// from shared instances executing in other circuits (one per
// subscription edge per emitted tuple).
func (r *Running) SharedIn() int { return int(r.sharedIn.Value()) }

// Host returns the node a service currently executes on.
func (r *Running) Host(svc int) topology.NodeID {
	return topology.NodeID(r.host[svc].Load())
}

// Migrations returns the circuit's migration records, oldest first.
func (r *Running) Migrations() []*Migration {
	r.engine.mu.Lock()
	defer r.engine.mu.Unlock()
	return append([]*Migration(nil), r.migs...)
}

// SharedStats is a snapshot of the engine's shared-execution state.
type SharedStats struct {
	// Instances counts services currently executing with at least one
	// cross-circuit subscriber.
	Instances int
	// Subscribers counts subscriptions (consumer-circuit taps) across
	// those instances.
	Subscribers int
	// Zombies counts cancelled provider circuits kept alive, trimmed to
	// their shared subtrees, until their last subscriber releases.
	Zombies int
}

// SharedStats reports the engine's current shared-execution state.
func (e *Engine) SharedStats() SharedStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := SharedStats{Zombies: len(e.zombies)}
	count := func(r *Running) {
		for i := range r.svcs {
			if n := len(r.svcs[i].taps); n > 0 {
				st.Instances++
				st.Subscribers += n
			}
		}
	}
	for _, r := range e.running {
		count(r)
	}
	for z := range e.zombies {
		count(z)
	}
	return st
}

// Close stops every running circuit, including zombies (the overlay
// network itself is owned by the caller).
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, r := range e.running {
		e.teardownLocked(r)
		delete(e.running, id)
	}
	for z := range e.zombies {
		e.teardownLocked(z)
		delete(e.zombies, z)
	}
	e.shared = make(map[*optimizer.ServiceInstance]*sharedExec)
}

// Measurement is a snapshot of a running circuit's delivered output and
// measured network usage, in simulated units.
type Measurement struct {
	Wall       time.Duration
	SimSeconds float64
	TuplesOut  int
	// OutRateKBs is the delivered data rate at the consumer (simulated
	// KB/s).
	OutRateKBs float64
	// MeanLatencyMs and P95LatencyMs are producer→consumer tuple
	// latencies in simulated milliseconds.
	MeanLatencyMs float64
	P95LatencyMs  float64
	// NetworkUsage is measured Σ rate·latency (KB·ms/s): the usage
	// integral divided by elapsed simulated time. Links from shared
	// instances into this circuit are charged here (to the subscriber),
	// mirroring the control plane's accounting.
	NetworkUsage float64
}

// Measure snapshots the circuit's counters since deployment. Wall is
// elapsed clock time — virtual elapsed under a virtual clock.
func (r *Running) Measure() Measurement {
	wall := r.engine.clock.Since(r.started)
	simMs := r.engine.net.SimMillis(wall)
	simSec := simMs / 1000
	m := Measurement{
		Wall:          wall,
		SimSeconds:    simSec,
		TuplesOut:     int(r.tuplesOut.Value()),
		MeanLatencyMs: r.latencyMs.Mean(),
		P95LatencyMs:  r.latencyMs.Quantile(0.95),
	}
	if simSec > 0 {
		m.OutRateKBs = r.kbOut.Value() / simSec
		m.NetworkUsage = r.usageKBms.Value() / simSec
	}
	return m
}
