package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

// EngineConfig tunes circuit execution.
type EngineConfig struct {
	// Keyspace is the producer key domain [0, Keyspace) (default 1000).
	// Join windows are sized as selectivity·Keyspace to make measured
	// join rates track the catalog model.
	Keyspace int64
	// TupleSizeKB is the producer tuple size (default 1.0).
	TupleSizeKB float64
	// Seed drives producer key/value generation.
	Seed int64
}

// DefaultEngineConfig returns engine defaults.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{Keyspace: 1000, TupleSizeKB: 1.0, Seed: 1}
}

// Engine deploys circuits onto the overlay runtime and measures the
// resulting dataflow. It inherits the network's clock: on a virtual
// clock, producers are events on the simulation heap instead of
// goroutines, and a fixed seed reproduces the measured dataflow bit
// for bit.
type Engine struct {
	net   *overlay.Network
	topo  *topology.Topology
	cfg   EngineConfig
	clock simtime.Clock

	mu      sync.Mutex
	running map[query.QueryID]*Running
}

// NewEngine builds an engine over a started overlay network.
func NewEngine(net *overlay.Network, topo *topology.Topology, cfg EngineConfig) *Engine {
	if cfg.Keyspace <= 0 {
		cfg.Keyspace = 1000
	}
	if cfg.TupleSizeKB <= 0 {
		cfg.TupleSizeKB = 1.0
	}
	return &Engine{
		net:     net,
		topo:    topo,
		cfg:     cfg,
		clock:   net.Clock(),
		running: make(map[query.QueryID]*Running),
	}
}

// Running is one deployed, executing circuit.
type Running struct {
	Circuit *optimizer.Circuit

	engine    *Engine
	stop      chan struct{}
	prodStop  chan struct{} // closes producers only (HaltProducers)
	haltOnce  sync.Once
	producers sync.WaitGroup // goroutine producers (real clock)
	vprods    []*vProducer   // event producers (virtual clock)
	started   time.Time

	// route[i] is the node tuples destined for service i are sent to;
	// host[i] is the node service i currently executes on. They diverge
	// only during a migration handoff: route flips to the target first
	// (arrivals buffer there) while host follows at cutover. Emitters
	// load both atomically per tuple, which is what lets the adaptation
	// layer re-route circuit links under live traffic.
	route []atomic.Int32
	host  []atomic.Int32
	// svcs carries each service's runtime state: the registered port,
	// the operator instance that migrates with it, and the gate
	// serializing operator access across a handoff.
	svcs []svcRuntime

	migs []*Migration // under engine.mu

	tuplesIn  *metrics.Counter // tuples entering at producers
	tuplesOut *metrics.Counter
	kbOut     *metrics.Counter
	latencyMs *metrics.Histogram
	usageKBms *metrics.Counter
}

// svcRuntime is the per-service executable state the migration protocol
// hands between nodes.
type svcRuntime struct {
	port     string
	operator Operator
	// handler is the registered dispatch closure (gate-wrapped process).
	handler overlay.Handler
	// process runs the operator without taking the gate — the replay
	// path, called with the gate already held.
	process func(side int, t Tuple)
	// gate serializes operator access between the old host's stragglers
	// and the new host's replay under the real clock (a no-op
	// uncontended lock in virtual runs, where the scheduler serializes
	// everything).
	gate sync.Mutex
	// migrating marks an in-flight handoff (under engine.mu).
	migrating bool
}

// outEdge is a precomputed delivery target for a service's emissions;
// the destination node is resolved through Running.route at emit time.
type outEdge struct {
	svc  int // destination service index
	port string
	side int
}

// dataMsg is the on-wire tuple payload.
type dataMsg struct {
	Side int
	T    Tuple
}

// ErrReusedServices marks circuits that cannot execute standalone
// because some of their services run inside another circuit; callers
// match it with errors.Is to distinguish this expected rejection from
// genuine deployment failures.
var ErrReusedServices = errors.New("circuit contains reused services")

// ErrNotRunning marks operations against a query the engine is not
// executing; the adaptation layer matches it to fall back to
// control-plane-only migration for undeployed circuits.
var ErrNotRunning = errors.New("query not running")

// Deploy instantiates the circuit's operators on their hosts, starts
// producers, and begins measurement. Circuits with reused services cannot
// be executed standalone (their upstream lives in another circuit) and
// are rejected with ErrReusedServices.
func (e *Engine) Deploy(c *optimizer.Circuit) (*Running, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	for _, s := range c.Services {
		if s.Reused {
			return nil, fmt.Errorf("stream: circuit q%d: %w; deploy the owning circuit instead", c.Query.ID, ErrReusedServices)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.running[c.Query.ID]; ok {
		return nil, fmt.Errorf("stream: query %d already running", c.Query.ID)
	}

	r := &Running{
		Circuit:   c,
		engine:    e,
		stop:      make(chan struct{}),
		prodStop:  make(chan struct{}),
		route:     make([]atomic.Int32, len(c.Services)),
		host:      make([]atomic.Int32, len(c.Services)),
		svcs:      make([]svcRuntime, len(c.Services)),
		tuplesIn:  &metrics.Counter{},
		tuplesOut: &metrics.Counter{},
		kbOut:     &metrics.Counter{},
		latencyMs: &metrics.Histogram{},
		usageKBms: &metrics.Counter{},
	}
	for i, s := range c.Services {
		r.route[i].Store(int32(s.Node))
		r.host[i].Store(int32(s.Node))
	}

	port := func(i int) string { return fmt.Sprintf("q%d.s%d", c.Query.ID, i) }

	// Outgoing edges per service, with input side derived from link order
	// at the receiver (left child link is appended first by the builder).
	outs := make([][]outEdge, len(c.Services))
	inputsSeen := make(map[int]int, len(c.Services))
	for _, l := range c.Links {
		side := inputsSeen[l.To]
		inputsSeen[l.To]++
		outs[l.From] = append(outs[l.From], outEdge{
			svc:  l.To,
			port: port(l.To),
			side: side,
		})
	}

	// Install operator handlers and the consumer sink.
	for i, s := range c.Services {
		switch {
		case s.Plan == nil: // consumer sink
			nd := e.net.Node(s.Node)
			p := port(i)
			r.svcs[i].port = p
			nd.Register(p, func(m overlay.Message) {
				dm := m.Payload.(dataMsg)
				r.tuplesOut.Inc()
				r.kbOut.Add(dm.T.SizeKB)
				r.latencyMs.Observe(e.net.SimMillis(e.clock.Since(dm.T.Created)))
			})
		case s.Plan.Kind == query.KindSource:
			// Producers are started below.
		default:
			op, err := OperatorFor(s.Plan, e.cfg.Keyspace)
			if err != nil {
				e.teardownLocked(r)
				return nil, err
			}
			rt := &r.svcs[i]
			rt.port = port(i)
			rt.operator = op
			emit := r.emitFor(i, outs[i])
			rt.process = func(side int, t Tuple) { op.Process(side, t, emit) }
			rt.handler = func(m overlay.Message) {
				dm := m.Payload.(dataMsg)
				rt.gate.Lock()
				rt.process(dm.Side, dm.T)
				rt.gate.Unlock()
			}
			e.net.Node(s.Node).Register(rt.port, rt.handler)
		}
	}

	// Start producers: goroutines paced by a wall-clock ticker on the
	// real clock, recurring events on the virtual clock.
	r.started = e.clock.Now()
	for i, s := range c.Services {
		if s.Plan == nil || s.Plan.Kind != query.KindSource {
			continue
		}
		rate := s.Plan.OutRate // KB/s simulated
		emit := r.emitFor(i, outs[i])
		counted := func(t Tuple) {
			r.tuplesIn.Inc()
			emit(t)
		}
		stream := s.Plan.Stream
		seed := e.cfg.Seed + int64(stream)*7919 + int64(c.Query.ID)*104729
		if e.net.Virtual() {
			r.vprods = append(r.vprods, e.startVirtualProducer(r, stream, rate, seed, counted))
			continue
		}
		r.producers.Add(1)
		go e.produce(r, stream, rate, seed, counted)
	}

	e.running[c.Query.ID] = r
	return r, nil
}

// emitFor builds the emission closure for service idx: each output tuple
// is sent from the service's current host to every downstream target's
// current route, both resolved per tuple so live migrations re-route the
// dataflow without re-deploying.
func (r *Running) emitFor(idx int, targets []outEdge) Emit {
	e := r.engine
	return func(t Tuple) {
		from := topology.NodeID(r.host[idx].Load())
		node := e.net.Node(from)
		for _, tgt := range targets {
			to := topology.NodeID(r.route[tgt.svc].Load())
			r.usageKBms.Add(t.SizeKB * e.topo.Latency(from, to))
			// Send never blocks; post-shutdown sends are dropped.
			_ = node.Send(to, tgt.port, t.SizeKB, dataMsg{Side: tgt.side, T: t})
		}
	}
}

// produceInterval returns the clock duration between tuples for a
// simulated rate: one tuple every TupleSizeKB/rate simulated seconds,
// scaled by the runtime's time scale.
func (e *Engine) produceInterval(rateKBs float64) time.Duration {
	simSec := e.cfg.TupleSizeKB / rateKBs
	interval := time.Duration(simSec * 1000 * float64(e.net.Config().TimeScale))
	if interval <= 0 {
		interval = time.Microsecond
	}
	return interval
}

// produce generates tuples at the stream's simulated rate until stopped
// (real clock). Emission is paced by elapsed wall time rather than
// one-per-tick: Go tickers coalesce missed ticks, which would silently
// under-produce at sub-millisecond intervals.
func (e *Engine) produce(r *Running, stream query.StreamID, rateKBs float64, seed int64, emit Emit) {
	defer r.producers.Done()
	rng := rand.New(rand.NewSource(seed))
	interval := e.produceInterval(rateKBs)
	tick := interval
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	const maxBurst = 1000 // bound catch-up after a scheduling stall
	start := time.Now()
	emitted := int64(0)
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.prodStop:
			return
		case <-ticker.C:
			due := int64(time.Since(start) / interval)
			if due-emitted > maxBurst {
				emitted = due - maxBurst // slip instead of flooding
			}
			for ; emitted < due; emitted++ {
				emit(Tuple{
					Stream:  stream,
					Key:     rng.Int63n(e.cfg.Keyspace),
					Value:   rng.NormFloat64(),
					SizeKB:  e.cfg.TupleSizeKB,
					Created: time.Now(),
				})
			}
		}
	}
}

// vProducer is a virtual-clock producer: a self-rescheduling event on
// the simulation heap. The mutex covers the stop/reschedule handshake;
// under the registered-actor discipline the scheduler is parked while
// the driver tears down, so contention is nil.
type vProducer struct {
	mu      sync.Mutex
	timer   simtime.Timer
	stopped bool
}

func (p *vProducer) halt() {
	p.mu.Lock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
}

// startVirtualProducer schedules tuple emission as recurring clock
// events: exactly one tuple per interval, no catch-up needed because
// virtual time never stalls. Emission order across producers at one
// instant follows deploy order (FIFO event tie-breaking), which is what
// makes same-seed runs bit-identical.
func (e *Engine) startVirtualProducer(r *Running, stream query.StreamID, rateKBs float64, seed int64, emit Emit) *vProducer {
	rng := rand.New(rand.NewSource(seed))
	interval := e.produceInterval(rateKBs)
	p := &vProducer{}
	var step func()
	step = func() {
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		emit(Tuple{
			Stream:  stream,
			Key:     rng.Int63n(e.cfg.Keyspace),
			Value:   rng.NormFloat64(),
			SizeKB:  e.cfg.TupleSizeKB,
			Created: e.clock.Now(),
		})
		p.mu.Lock()
		if !p.stopped {
			p.timer = e.clock.AfterFunc(interval, step)
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.timer = e.clock.AfterFunc(interval, step)
	p.mu.Unlock()
	return p
}

// Stop cancels a running circuit: producers halt and handlers are
// removed.
func (e *Engine) Stop(id query.QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.running[id]
	if !ok {
		return fmt.Errorf("stream: query %d not running", id)
	}
	e.teardownLocked(r)
	delete(e.running, id)
	return nil
}

func (e *Engine) teardownLocked(r *Running) {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	for _, p := range r.vprods {
		p.halt()
	}
	r.producers.Wait()
	// Cancel in-flight migrations: pending phase timers are stopped and
	// waiters released before ports disappear.
	for _, m := range r.migs {
		m.cancel()
	}
	// Unregister each service's port at its *current* host; a service
	// mid-handoff may also hold a forwarder or buffer registration on
	// its old host, which m.cancel released above.
	for i := range r.svcs {
		rt := &r.svcs[i]
		if rt.port == "" {
			continue
		}
		e.net.Node(topology.NodeID(r.host[i].Load())).Unregister(rt.port)
	}
}

// HaltProducers stops tuple generation for the circuit while leaving
// operators, routes, and measurement running — the quiesce step the
// loss-accounting tests use to let in-flight tuples drain before
// comparing produced and delivered counts.
func (r *Running) HaltProducers() {
	r.haltOnce.Do(func() {
		close(r.prodStop)
		for _, p := range r.vprods {
			p.halt()
		}
		r.producers.Wait()
	})
}

// TuplesProduced returns the number of tuples producers have injected.
func (r *Running) TuplesProduced() int { return int(r.tuplesIn.Value()) }

// Host returns the node a service currently executes on.
func (r *Running) Host(svc int) topology.NodeID {
	return topology.NodeID(r.host[svc].Load())
}

// Migrations returns the circuit's migration records, oldest first.
func (r *Running) Migrations() []*Migration {
	r.engine.mu.Lock()
	defer r.engine.mu.Unlock()
	return append([]*Migration(nil), r.migs...)
}

// Close stops every running circuit (the overlay network itself is owned
// by the caller).
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, r := range e.running {
		e.teardownLocked(r)
		delete(e.running, id)
	}
}

// Measurement is a snapshot of a running circuit's delivered output and
// measured network usage, in simulated units.
type Measurement struct {
	Wall       time.Duration
	SimSeconds float64
	TuplesOut  int
	// OutRateKBs is the delivered data rate at the consumer (simulated
	// KB/s).
	OutRateKBs float64
	// MeanLatencyMs and P95LatencyMs are producer→consumer tuple
	// latencies in simulated milliseconds.
	MeanLatencyMs float64
	P95LatencyMs  float64
	// NetworkUsage is measured Σ rate·latency (KB·ms/s): the usage
	// integral divided by elapsed simulated time.
	NetworkUsage float64
}

// Measure snapshots the circuit's counters since deployment. Wall is
// elapsed clock time — virtual elapsed under a virtual clock.
func (r *Running) Measure() Measurement {
	wall := r.engine.clock.Since(r.started)
	simMs := r.engine.net.SimMillis(wall)
	simSec := simMs / 1000
	m := Measurement{
		Wall:          wall,
		SimSeconds:    simSec,
		TuplesOut:     int(r.tuplesOut.Value()),
		MeanLatencyMs: r.latencyMs.Mean(),
		P95LatencyMs:  r.latencyMs.Quantile(0.95),
	}
	if simSec > 0 {
		m.OutRateKBs = r.kbOut.Value() / simSec
		m.NetworkUsage = r.usageKBms.Value() / simSec
	}
	return m
}
