// Package stream is the SBON data plane: executable operators with real
// windowed semantics, producers that generate tuples at configured rates,
// and an engine that deploys optimizer circuits onto the overlay runtime
// and measures what actually flows.
//
// Rate semantics mirror the catalog's model (DESIGN.md §4): a filter with
// selectivity s passes ≈ s of its input; a windowed equi-join over keys
// drawn uniformly from [0,K) with W tuples of window per side matches each
// probe with probability ≈ W/K, so its output rate is ≈ (W/K)·(rA+rB) —
// i.e. catalog selectivity sel corresponds to window/keyspace = sel; an
// aggregate over count-N windows emitting Frac·(window bytes) has output
// rate Frac·input.
package stream

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/hourglass/sbon/internal/query"
)

// Tuple is one stream data item.
type Tuple struct {
	Stream query.StreamID
	Key    int64
	Value  float64
	SizeKB float64
	// Created is the wall-clock time the tuple entered the system at its
	// producer; consumer latency is measured against it.
	Created time.Time
}

// Emit forwards an operator output downstream.
type Emit func(Tuple)

// Operator is an executable service. Process is called on the hosting
// node's goroutine (serialized), with side identifying which input feeds
// the tuple (0 = left/only, 1 = right).
type Operator interface {
	Process(side int, t Tuple, emit Emit)
	Kind() query.ServiceKind
	// StateSizeKB estimates the operator's current mutable state in KB —
	// what a migration must ship to the new host. Stateless operators
	// report 0.
	StateSizeKB() float64
}

// keyFraction hashes a key to a uniform fraction in [0,1) for
// deterministic, rate-faithful selectivity decisions.
func keyFraction(key int64, salt uint64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(key)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(salt >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Filter passes tuples whose key hashes below Sel — a deterministic
// predicate with measured selectivity ≈ Sel over uniform keys.
type Filter struct {
	Sel  float64
	Salt uint64
}

// Kind implements Operator.
func (Filter) Kind() query.ServiceKind { return query.KindFilter }

// Process implements Operator.
func (f Filter) Process(_ int, t Tuple, emit Emit) {
	if keyFraction(t.Key, f.Salt) < f.Sel {
		emit(t)
	}
}

// StateSizeKB implements Operator: filters are stateless.
func (Filter) StateSizeKB() float64 { return 0 }

// Join is a symmetric windowed hash equi-join: each side keeps the last
// Window tuples hashed by key; an arriving tuple probes the opposite
// window and emits one combined tuple per match.
type Join struct {
	Window int // tuples retained per side (default 64)

	left  *joinWindow
	right *joinWindow
}

// NewJoin returns a join with the given per-side window size.
func NewJoin(window int) *Join {
	if window <= 0 {
		window = 64
	}
	return &Join{
		Window: window,
		left:   newJoinWindow(window),
		right:  newJoinWindow(window),
	}
}

// Kind implements Operator.
func (*Join) Kind() query.ServiceKind { return query.KindJoin }

// Process implements Operator.
func (j *Join) Process(side int, t Tuple, emit Emit) {
	mine, other := j.left, j.right
	if side == 1 {
		mine, other = j.right, j.left
	}
	mine.add(t)
	for _, m := range other.match(t.Key) {
		out := Tuple{
			Stream: t.Stream,
			Key:    t.Key,
			Value:  t.Value + m.Value,
			SizeKB: t.SizeKB + m.SizeKB,
			// Latency is measured from the triggering (probe) tuple: the
			// matched tuple's window residency is state age, not
			// delivery delay.
			Created: t.Created,
		}
		emit(out)
	}
}

// StateSizeKB implements Operator: both windows' retained tuple bytes.
func (j *Join) StateSizeKB() float64 {
	return j.left.sizeKB() + j.right.sizeKB()
}

// joinWindow is a fixed-capacity FIFO with a key index.
type joinWindow struct {
	cap   int
	fifo  []Tuple
	next  int
	count int
	byKey map[int64][]int // key -> slot indices
}

func newJoinWindow(capacity int) *joinWindow {
	return &joinWindow{
		cap:   capacity,
		fifo:  make([]Tuple, capacity),
		byKey: make(map[int64][]int),
	}
}

func (w *joinWindow) add(t Tuple) {
	slot := w.next
	if w.count == w.cap {
		old := w.fifo[slot]
		w.dropIndex(old.Key, slot)
	} else {
		w.count++
	}
	w.fifo[slot] = t
	w.byKey[t.Key] = append(w.byKey[t.Key], slot)
	w.next = (w.next + 1) % w.cap
}

func (w *joinWindow) dropIndex(key int64, slot int) {
	idx := w.byKey[key]
	for i, s := range idx {
		if s == slot {
			w.byKey[key] = append(idx[:i], idx[i+1:]...)
			break
		}
	}
	if len(w.byKey[key]) == 0 {
		delete(w.byKey, key)
	}
}

func (w *joinWindow) sizeKB() float64 {
	var sum float64
	for i := 0; i < w.count; i++ {
		sum += w.fifo[i].SizeKB
	}
	return sum
}

func (w *joinWindow) match(key int64) []Tuple {
	idx := w.byKey[key]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Tuple, len(idx))
	for i, s := range idx {
		out[i] = w.fifo[s]
	}
	return out
}

// Aggregate reduces count-N tumbling windows: after every N inputs it
// emits one tuple whose value is the window mean and whose size is Frac
// of the window's bytes, giving output rate Frac·input rate. The output
// carries the closing (triggering) tuple's timestamp.
type Aggregate struct {
	N    int
	Frac float64

	count  int
	sum    float64
	sizeKB float64
}

// NewAggregate returns an aggregate with window N and output fraction
// frac.
func NewAggregate(n int, frac float64) *Aggregate {
	if n <= 0 {
		n = 10
	}
	return &Aggregate{N: n, Frac: frac}
}

// Kind implements Operator.
func (*Aggregate) Kind() query.ServiceKind { return query.KindAggregate }

// Process implements Operator.
func (a *Aggregate) Process(_ int, t Tuple, emit Emit) {
	a.count++
	a.sum += t.Value
	a.sizeKB += t.SizeKB
	if a.count < a.N {
		return
	}
	out := Tuple{
		Stream:  t.Stream,
		Key:     t.Key,
		Value:   a.sum / float64(a.count),
		SizeKB:  a.sizeKB * a.Frac,
		Created: t.Created,
	}
	a.count, a.sum, a.sizeKB = 0, 0, 0
	emit(out)
}

// StateSizeKB implements Operator: the open window's accumulated bytes.
func (a *Aggregate) StateSizeKB() float64 { return a.sizeKB }

// Union forwards both inputs unchanged.
type Union struct{}

// Kind implements Operator.
func (Union) Kind() query.ServiceKind { return query.KindUnion }

// Process implements Operator.
func (Union) Process(_ int, t Tuple, emit Emit) { emit(t) }

// StateSizeKB implements Operator: unions are stateless.
func (Union) StateSizeKB() float64 { return 0 }

// OperatorFor instantiates the executable operator for a plan node. The
// join window is sized to sel·keyspace/2: each probe then matches
// sel/2 of the time, and since a joined tuple carries both inputs (≈2×
// the bytes), the output *data rate* lands on the catalog model's
// sel·(rateL+rateR) KB/s.
func OperatorFor(n *query.PlanNode, keyspace int64) (Operator, error) {
	switch n.Kind {
	case query.KindFilter:
		return Filter{Sel: n.Sel}, nil
	case query.KindJoin:
		w := int(n.Sel * float64(keyspace) / 2)
		if w < 1 {
			w = 1
		}
		return NewJoin(w), nil
	case query.KindAggregate:
		return NewAggregate(10, n.Sel), nil
	case query.KindUnion:
		return Union{}, nil
	default:
		return nil, fmt.Errorf("stream: no operator for plan kind %v", n.Kind)
	}
}
