package stream

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/query"
)

func collect() (Emit, *[]Tuple) {
	out := &[]Tuple{}
	return func(t Tuple) { *out = append(*out, t) }, out
}

func TestKeyFractionRangeAndDeterminism(t *testing.T) {
	for k := int64(0); k < 1000; k++ {
		f := keyFraction(k, 0)
		if f < 0 || f >= 1 {
			t.Fatalf("keyFraction(%d) = %v out of [0,1)", k, f)
		}
		if f != keyFraction(k, 0) {
			t.Fatalf("keyFraction(%d) not deterministic", k)
		}
	}
	if keyFraction(42, 1) == keyFraction(42, 2) {
		t.Fatal("salt has no effect")
	}
}

func TestFilterSelectivity(t *testing.T) {
	f := Filter{Sel: 0.3}
	emit, out := collect()
	const n = 10000
	for k := int64(0); k < n; k++ {
		f.Process(0, Tuple{Key: k, SizeKB: 1}, emit)
	}
	got := float64(len(*out)) / n
	if math.Abs(got-0.3) > 0.03 {
		t.Fatalf("measured selectivity %v, want ≈0.3", got)
	}
}

func TestFilterDeterministicPerKey(t *testing.T) {
	f := Filter{Sel: 0.5}
	emit1, out1 := collect()
	emit2, out2 := collect()
	for k := int64(0); k < 100; k++ {
		f.Process(0, Tuple{Key: k}, emit1)
		f.Process(0, Tuple{Key: k}, emit2)
	}
	if len(*out1) != len(*out2) {
		t.Fatal("filter not deterministic")
	}
}

func TestJoinMatchesEqualKeys(t *testing.T) {
	j := NewJoin(8)
	emit, out := collect()
	j.Process(0, Tuple{Key: 7, Value: 1, SizeKB: 1}, emit)
	if len(*out) != 0 {
		t.Fatal("join emitted before any match")
	}
	j.Process(1, Tuple{Key: 7, Value: 2, SizeKB: 2}, emit)
	if len(*out) != 1 {
		t.Fatalf("join emitted %d tuples, want 1", len(*out))
	}
	got := (*out)[0]
	if got.Value != 3 || got.SizeKB != 3 {
		t.Fatalf("joined tuple = %+v", got)
	}
}

func TestJoinNoMatchAcrossDifferentKeys(t *testing.T) {
	j := NewJoin(8)
	emit, out := collect()
	j.Process(0, Tuple{Key: 1}, emit)
	j.Process(1, Tuple{Key: 2}, emit)
	if len(*out) != 0 {
		t.Fatal("join matched different keys")
	}
}

func TestJoinMultipleMatches(t *testing.T) {
	j := NewJoin(8)
	emit, out := collect()
	j.Process(0, Tuple{Key: 5, Value: 1}, emit)
	j.Process(0, Tuple{Key: 5, Value: 2}, emit)
	j.Process(1, Tuple{Key: 5, Value: 10}, emit)
	if len(*out) != 2 {
		t.Fatalf("emitted %d, want 2 (one per left match)", len(*out))
	}
}

func TestJoinWindowEviction(t *testing.T) {
	j := NewJoin(2)
	emit, out := collect()
	j.Process(0, Tuple{Key: 1}, emit)
	j.Process(0, Tuple{Key: 2}, emit)
	j.Process(0, Tuple{Key: 3}, emit) // evicts key 1
	j.Process(1, Tuple{Key: 1}, emit)
	if len(*out) != 0 {
		t.Fatal("evicted tuple still matched")
	}
	j.Process(1, Tuple{Key: 3}, emit)
	if len(*out) != 1 {
		t.Fatalf("in-window tuple not matched: %d", len(*out))
	}
}

func TestJoinSymmetricSides(t *testing.T) {
	j := NewJoin(8)
	emit, out := collect()
	j.Process(1, Tuple{Key: 9, Value: 4}, emit)
	j.Process(0, Tuple{Key: 9, Value: 5}, emit)
	if len(*out) != 1 || (*out)[0].Value != 9 {
		t.Fatalf("symmetric join failed: %+v", *out)
	}
}

func TestJoinCreatedUsesTriggeringInput(t *testing.T) {
	j := NewJoin(8)
	emit, out := collect()
	early := time.Now().Add(-time.Second)
	late := time.Now()
	j.Process(0, Tuple{Key: 1, Created: early}, emit)
	j.Process(1, Tuple{Key: 1, Created: late}, emit)
	// Delivery latency is measured from the probe tuple; the matched
	// tuple's window residency is state age, not delay.
	if (*out)[0].Created != late {
		t.Fatal("joined tuple should carry the triggering tuple's timestamp")
	}
}

// Measured join output rate over uniform keys must track window/keyspace,
// the engine's rate-faithfulness contract.
func TestJoinRateFaithfulness(t *testing.T) {
	const keyspace = 500
	const window = 50 // sel = 0.1
	j := NewJoin(window)
	emit, out := collect()
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	for i := int64(0); i < n; i++ {
		j.Process(int(i%2), Tuple{Key: rng.Int63n(keyspace), SizeKB: 1}, emit)
	}
	// Expected: each probe matches ≈ window/keyspace entries.
	gotPerProbe := float64(len(*out)) / n
	want := float64(window) / keyspace
	if math.Abs(gotPerProbe-want) > want*0.3 {
		t.Fatalf("matches per probe %v, want ≈%v", gotPerProbe, want)
	}
}

func TestAggregateWindows(t *testing.T) {
	a := NewAggregate(4, 0.5)
	emit, out := collect()
	for i := 1; i <= 8; i++ {
		a.Process(0, Tuple{Value: float64(i), SizeKB: 1}, emit)
	}
	if len(*out) != 2 {
		t.Fatalf("emitted %d windows, want 2", len(*out))
	}
	if (*out)[0].Value != 2.5 { // mean of 1..4
		t.Fatalf("first window mean = %v, want 2.5", (*out)[0].Value)
	}
	if (*out)[0].SizeKB != 2 { // 4 KB * 0.5
		t.Fatalf("first window size = %v, want 2", (*out)[0].SizeKB)
	}
}

func TestAggregateCarriesClosingTimestamp(t *testing.T) {
	a := NewAggregate(2, 1)
	emit, out := collect()
	early := time.Now().Add(-time.Minute)
	closing := time.Now()
	a.Process(0, Tuple{Created: early}, emit)
	a.Process(0, Tuple{Created: closing}, emit)
	if (*out)[0].Created != closing {
		t.Fatal("aggregate must carry the window-closing timestamp")
	}
}

func TestUnionPassthrough(t *testing.T) {
	emit, out := collect()
	(Union{}).Process(0, Tuple{Key: 1}, emit)
	(Union{}).Process(1, Tuple{Key: 2}, emit)
	if len(*out) != 2 {
		t.Fatalf("union emitted %d, want 2", len(*out))
	}
}

func TestOperatorForMapping(t *testing.T) {
	cases := []struct {
		node *query.PlanNode
		kind query.ServiceKind
	}{
		{query.NewFilter(query.NewSource(0), 0.5), query.KindFilter},
		{&query.PlanNode{Kind: query.KindJoin, Sel: 0.1}, query.KindJoin},
		{query.NewAggregate(query.NewSource(0), 0.2), query.KindAggregate},
		{&query.PlanNode{Kind: query.KindUnion}, query.KindUnion},
	}
	for _, tc := range cases {
		op, err := OperatorFor(tc.node, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if op.Kind() != tc.kind {
			t.Fatalf("OperatorFor(%v) kind = %v", tc.node.Kind, op.Kind())
		}
	}
	if _, err := OperatorFor(query.NewSource(0), 1000); err == nil {
		t.Fatal("OperatorFor(source) accepted")
	}
}

func TestOperatorForJoinWindowFloor(t *testing.T) {
	op, err := OperatorFor(&query.PlanNode{Kind: query.KindJoin, Sel: 0.00001}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if op.(*Join).Window < 1 {
		t.Fatal("join window below 1")
	}
}
