package stream

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// engineSetup builds a small env + overlay + engine and optimizes q.
type engineSetup struct {
	env    *optimizer.Env
	net    *overlay.Network
	engine *Engine
}

func newEngineSetup(t *testing.T, seed int64) *engineSetup {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           4,
		IntraStubLatency:    [2]float64{1, 4},
		StubUplinkLatency:   [2]float64{2, 8},
		IntraTransitLatency: [2]float64{5, 15},
		InterTransitLatency: [2]float64{20, 50},
		ExtraStubEdgeProb:   0.2,
	}
	topo := topology.MustGenerate(cfg, rand.New(rand.NewSource(seed)))
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	stubs := topo.StubNodeIDs()
	for i := 0; i < 3; i++ {
		if err := stats.AddStream(query.StreamID(i), stubs[i*4], 50); err != nil {
			t.Fatal(err)
		}
	}
	ecfg := optimizer.DefaultEnvConfig(seed)
	ecfg.UseDHT = false
	ecfg.VivaldiRounds = 20
	env, err := optimizer.NewEnv(topo, stats, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: 10 * time.Microsecond, InboxSize: 8192})
	net.Start()
	eng := NewEngine(net, topo, DefaultEngineConfig())
	t.Cleanup(func() {
		eng.Close()
		net.Stop()
	})
	return &engineSetup{env: env, net: net, engine: eng}
}

func (s *engineSetup) optimize(t *testing.T, q query.Query) *optimizer.Circuit {
	t.Helper()
	res, err := optimizer.NewIntegrated(s.env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Circuit
}

func TestEngineDeliversFilteredStream(t *testing.T) {
	s := newEngineSetup(t, 1)
	q := query.Query{
		ID:       1,
		Consumer: s.env.Topo.StubNodeIDs()[11],
		Streams:  []query.StreamID{0},
		FilterSel: map[query.StreamID]float64{
			0: 0.5,
		},
	}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	m := run.Measure()
	if m.TuplesOut == 0 {
		t.Fatal("no tuples delivered")
	}
	// Plan: 50 KB/s source × 0.5 filter = 25 KB/s at the consumer.
	want := c.Plan.OutRate
	if m.OutRateKBs < want*0.5 || m.OutRateKBs > want*1.6 {
		t.Fatalf("delivered rate %v KB/s, want ≈%v", m.OutRateKBs, want)
	}
	if m.MeanLatencyMs <= 0 {
		t.Fatalf("mean latency %v", m.MeanLatencyMs)
	}
	if m.P95LatencyMs < m.MeanLatencyMs {
		t.Fatal("p95 below mean")
	}
}

func TestEngineMeasuredUsageTracksAnalytic(t *testing.T) {
	s := newEngineSetup(t, 2)
	q := query.Query{
		ID:       2,
		Consumer: s.env.Topo.StubNodeIDs()[9],
		Streams:  []query.StreamID{0},
	}
	c := s.optimize(t, q)
	analytic := c.NetworkUsage(optimizer.TrueLatency{Topo: s.env.Topo})
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	m := run.Measure()
	if m.NetworkUsage <= 0 {
		t.Fatal("no usage measured")
	}
	ratio := m.NetworkUsage / analytic
	if ratio < 0.5 || ratio > 1.7 {
		t.Fatalf("measured usage %v vs analytic %v (ratio %v)", m.NetworkUsage, analytic, ratio)
	}
}

func TestEngineJoinCircuitFlows(t *testing.T) {
	s := newEngineSetup(t, 3)
	q := query.Query{
		ID:       3,
		Consumer: s.env.Topo.TransitNodeIDs()[0],
		Streams:  []query.StreamID{0, 1},
	}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second)
	m := run.Measure()
	if m.TuplesOut == 0 {
		t.Fatal("join circuit delivered nothing")
	}
	// Join rates are noisy (window fill, hash collisions): demand only
	// the right order of magnitude versus the plan estimate.
	want := c.Plan.OutRate
	if m.OutRateKBs < want*0.2 || m.OutRateKBs > want*4 {
		t.Fatalf("join delivered rate %v, plan %v", m.OutRateKBs, want)
	}
}

func TestEngineDeployErrors(t *testing.T) {
	s := newEngineSetup(t, 4)
	q := query.Query{ID: 5, Consumer: s.env.Topo.StubNodeIDs()[0], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	if _, err := s.engine.Deploy(c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.Deploy(c); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
	bad := &optimizer.Circuit{}
	if _, err := s.engine.Deploy(bad); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

func TestEngineRejectsReusedServices(t *testing.T) {
	s := newEngineSetup(t, 5)
	q := query.Query{ID: 6, Consumer: s.env.Topo.StubNodeIDs()[1], Streams: []query.StreamID{0, 1}}
	c := s.optimize(t, q)
	// Mark a service reused artificially.
	for _, svc := range c.UnpinnedServices() {
		svc.Reused = true
		break
	}
	if _, err := s.engine.Deploy(c); err == nil {
		t.Fatal("circuit with reused services accepted")
	}
}

func TestEngineStop(t *testing.T) {
	s := newEngineSetup(t, 6)
	q := query.Query{ID: 7, Consumer: s.env.Topo.StubNodeIDs()[2], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := s.engine.Stop(q.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.Stop(q.ID); err == nil {
		t.Fatal("double stop accepted")
	}
	// After stop, output must cease.
	base := run.Measure().TuplesOut
	time.Sleep(300 * time.Millisecond)
	// Allow a few in-flight stragglers.
	if after := run.Measure().TuplesOut; after > base+20 {
		t.Fatalf("tuples still flowing after stop: %d -> %d", base, after)
	}
	// Redeploy under the same ID must work after Stop.
	if _, err := s.engine.Deploy(c); err != nil {
		t.Fatalf("redeploy after stop: %v", err)
	}
}

func TestEngineConcurrentCircuits(t *testing.T) {
	s := newEngineSetup(t, 7)
	stubs := s.env.Topo.StubNodeIDs()
	runs := make([]*Running, 0, 3)
	for i := 0; i < 3; i++ {
		q := query.Query{
			ID:       query.QueryID(10 + i),
			Consumer: stubs[13+i],
			Streams:  []query.StreamID{query.StreamID(i % 3)},
		}
		c := s.optimize(t, q)
		run, err := s.engine.Deploy(c)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	time.Sleep(1200 * time.Millisecond)
	for i, run := range runs {
		if m := run.Measure(); m.TuplesOut == 0 {
			t.Fatalf("circuit %d delivered nothing", i)
		}
	}
}

func TestMeasurementSimSecondsPositive(t *testing.T) {
	s := newEngineSetup(t, 8)
	q := query.Query{ID: 20, Consumer: s.env.Topo.StubNodeIDs()[3], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	m := run.Measure()
	if m.SimSeconds <= 0 || m.Wall <= 0 {
		t.Fatalf("measurement timing invalid: %+v", m)
	}
	if math.IsNaN(m.NetworkUsage) {
		t.Fatal("NaN usage")
	}
}
