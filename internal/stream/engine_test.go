package stream

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/optimizer"
	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

// engineSetup builds a small env + overlay + engine on a virtual clock:
// measurement windows are simulated seconds that elapse instantly and
// deterministically.
type engineSetup struct {
	env    *optimizer.Env
	net    *overlay.Network
	engine *Engine
	clk    *simtime.VirtualClock
}

func newEngineSetup(t *testing.T, seed int64) *engineSetup {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           4,
		IntraStubLatency:    [2]float64{1, 4},
		StubUplinkLatency:   [2]float64{2, 8},
		IntraTransitLatency: [2]float64{5, 15},
		InterTransitLatency: [2]float64{20, 50},
		ExtraStubEdgeProb:   0.2,
	}
	topo := topology.MustGenerate(cfg, rand.New(rand.NewSource(seed)))
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	stubs := topo.StubNodeIDs()
	for i := 0; i < 3; i++ {
		if err := stats.AddStream(query.StreamID(i), stubs[i*4], 50); err != nil {
			t.Fatal(err)
		}
	}
	ecfg := optimizer.DefaultEnvConfig(seed)
	ecfg.UseDHT = false
	ecfg.VivaldiRounds = 20
	env, err := optimizer.NewEnv(topo, stats, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	ncfg := overlay.VirtualConfig()
	clk := ncfg.Clock.(*simtime.VirtualClock)
	clk.Register()
	net := overlay.NewNetwork(topo, ncfg)
	net.Start()
	eng := NewEngine(net, topo, DefaultEngineConfig())
	t.Cleanup(func() {
		eng.Close()
		net.Stop()
		clk.Unregister()
		clk.Stop()
	})
	return &engineSetup{env: env, net: net, engine: eng, clk: clk}
}

func (s *engineSetup) optimize(t *testing.T, q query.Query) *optimizer.Circuit {
	t.Helper()
	res, err := optimizer.NewIntegrated(s.env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Circuit
}

// runSim advances the simulation by the given number of simulated
// seconds (instant under the virtual clock).
func (s *engineSetup) runSim(simSeconds float64) {
	s.clk.Sleep(time.Duration(simSeconds * 1000 * float64(s.net.Config().TimeScale)))
}

func TestEngineDeliversFilteredStream(t *testing.T) {
	s := newEngineSetup(t, 1)
	q := query.Query{
		ID:       1,
		Consumer: s.env.Topo.StubNodeIDs()[11],
		Streams:  []query.StreamID{0},
		FilterSel: map[query.StreamID]float64{
			0: 0.5,
		},
	}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.runSim(60)
	m := run.Measure()
	if m.TuplesOut == 0 {
		t.Fatal("no tuples delivered")
	}
	// Plan: 50 KB/s source × 0.5 filter = 25 KB/s at the consumer.
	want := c.Plan.OutRate
	if m.OutRateKBs < want*0.5 || m.OutRateKBs > want*1.6 {
		t.Fatalf("delivered rate %v KB/s, want ≈%v", m.OutRateKBs, want)
	}
	if m.MeanLatencyMs <= 0 {
		t.Fatalf("mean latency %v", m.MeanLatencyMs)
	}
	if m.P95LatencyMs < m.MeanLatencyMs {
		t.Fatal("p95 below mean")
	}
}

func TestEngineMeasuredUsageTracksAnalytic(t *testing.T) {
	s := newEngineSetup(t, 2)
	q := query.Query{
		ID:       2,
		Consumer: s.env.Topo.StubNodeIDs()[9],
		Streams:  []query.StreamID{0},
	}
	c := s.optimize(t, q)
	analytic := c.NetworkUsage(optimizer.TrueLatency{Topo: s.env.Topo})
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.runSim(60)
	m := run.Measure()
	if m.NetworkUsage <= 0 {
		t.Fatal("no usage measured")
	}
	ratio := m.NetworkUsage / analytic
	if ratio < 0.5 || ratio > 1.7 {
		t.Fatalf("measured usage %v vs analytic %v (ratio %v)", m.NetworkUsage, analytic, ratio)
	}
}

func TestEngineJoinCircuitFlows(t *testing.T) {
	s := newEngineSetup(t, 3)
	q := query.Query{
		ID:       3,
		Consumer: s.env.Topo.TransitNodeIDs()[0],
		Streams:  []query.StreamID{0, 1},
	}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.runSim(120)
	m := run.Measure()
	if m.TuplesOut == 0 {
		t.Fatal("join circuit delivered nothing")
	}
	// Join rates are noisy (window fill, hash collisions): demand only
	// the right order of magnitude versus the plan estimate.
	want := c.Plan.OutRate
	if m.OutRateKBs < want*0.2 || m.OutRateKBs > want*4 {
		t.Fatalf("join delivered rate %v, plan %v", m.OutRateKBs, want)
	}
}

func TestEngineDeployErrors(t *testing.T) {
	s := newEngineSetup(t, 4)
	q := query.Query{ID: 5, Consumer: s.env.Topo.StubNodeIDs()[0], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	if _, err := s.engine.Deploy(c); err != nil {
		t.Fatal(err)
	}
	if _, err := s.engine.Deploy(c); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
	bad := &optimizer.Circuit{}
	if _, err := s.engine.Deploy(bad); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

func TestEngineRejectsUnresolvableReuse(t *testing.T) {
	s := newEngineSetup(t, 5)
	q := query.Query{ID: 6, Consumer: s.env.Topo.StubNodeIDs()[1], Streams: []query.StreamID{0, 1}}
	c := s.optimize(t, q)
	// A reused service without an instance is a malformed circuit.
	var marked *optimizer.PlacedService
	for _, svc := range c.UnpinnedServices() {
		svc.Reused = true
		marked = svc
		break
	}
	if _, err := s.engine.Deploy(c); err == nil {
		t.Fatal("Deploy accepted a reused service without an instance")
	}
	// A reused service whose owning circuit is not executing cannot be
	// wired; the engine names the missing provider.
	marked.ReusedFrom = &optimizer.ServiceInstance{
		Signature: marked.Signature,
		Node:      marked.Node,
		Owner:     999,
		RefCount:  2,
	}
	if _, err := s.engine.Deploy(c); !errors.Is(err, ErrProviderNotRunning) {
		t.Fatalf("Deploy = %v, want ErrProviderNotRunning", err)
	}
}

func TestEngineStop(t *testing.T) {
	s := newEngineSetup(t, 6)
	q := query.Query{ID: 7, Consumer: s.env.Topo.StubNodeIDs()[2], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.runSim(30)
	if err := s.engine.Stop(q.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.engine.Stop(q.ID); err == nil {
		t.Fatal("double stop accepted")
	}
	// After stop, output must cease (in-flight deliveries hit
	// unregistered ports and are dropped as unrouted).
	base := run.Measure().TuplesOut
	s.runSim(30)
	if after := run.Measure().TuplesOut; after != base {
		t.Fatalf("tuples still flowing after stop: %d -> %d", base, after)
	}
	// Redeploy under the same ID must work after Stop.
	if _, err := s.engine.Deploy(c); err != nil {
		t.Fatalf("redeploy after stop: %v", err)
	}
}

func TestEngineConcurrentCircuits(t *testing.T) {
	s := newEngineSetup(t, 7)
	stubs := s.env.Topo.StubNodeIDs()
	runs := make([]*Running, 0, 3)
	for i := 0; i < 3; i++ {
		q := query.Query{
			ID:       query.QueryID(10 + i),
			Consumer: stubs[13+i],
			Streams:  []query.StreamID{query.StreamID(i % 3)},
		}
		c := s.optimize(t, q)
		run, err := s.engine.Deploy(c)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	s.runSim(30)
	for i, run := range runs {
		if m := run.Measure(); m.TuplesOut == 0 {
			t.Fatalf("circuit %d delivered nothing", i)
		}
	}
}

func TestMeasurementSimSecondsPositive(t *testing.T) {
	s := newEngineSetup(t, 8)
	q := query.Query{ID: 20, Consumer: s.env.Topo.StubNodeIDs()[3], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	s.runSim(5)
	m := run.Measure()
	if m.SimSeconds <= 0 || m.Wall <= 0 {
		t.Fatalf("measurement timing invalid: %+v", m)
	}
	if math.IsNaN(m.NetworkUsage) {
		t.Fatal("NaN usage")
	}
}

// TestEngineVirtualRateIsExact pins down the virtual producer's pacing:
// one tuple per interval means a relay circuit delivers the source rate
// with no jitter at all.
func TestEngineVirtualRateIsExact(t *testing.T) {
	s := newEngineSetup(t, 9)
	q := query.Query{ID: 30, Consumer: s.env.Topo.StubNodeIDs()[5], Streams: []query.StreamID{0}}
	c := s.optimize(t, q)
	run, err := s.engine.Deploy(c)
	if err != nil {
		t.Fatal(err)
	}
	const window = 40.0 // simulated seconds
	s.runSim(window)
	m1 := run.Measure()
	// 50 KB/s source, 1 KB tuples: one tuple per 20 simulated ms. By
	// t=40s exactly 2000 are emitted; delivery lags only by the (fixed)
	// path latency, well under a simulated second.
	want := int(c.Plan.OutRate * window)
	if m1.TuplesOut > want || m1.TuplesOut < want-60 {
		t.Fatalf("delivered %d tuples at t=%vs, want (%d - latency tail, %d]", m1.TuplesOut, window, want, want)
	}
	// In steady state the delivered count over any further whole second
	// is *exactly* the rate: virtual pacing has zero jitter.
	for i := 0; i < 3; i++ {
		s.runSim(1)
		m2 := run.Measure()
		if got := m2.TuplesOut - m1.TuplesOut; got != int(c.Plan.OutRate) {
			t.Fatalf("second %d delivered %d tuples, want exactly %v", i, got, c.Plan.OutRate)
		}
		m1 = m2
	}
}

// TestEngineDeterministicSameSeed runs an identical two-circuit
// scenario twice from scratch and demands bit-identical measurements —
// the reproducibility contract of the virtual-time engine.
func TestEngineDeterministicSameSeed(t *testing.T) {
	scenario := func() []Measurement {
		s := newEngineSetup(t, 11)
		qs := []query.Query{
			{ID: 1, Consumer: s.env.Topo.StubNodeIDs()[11], Streams: []query.StreamID{0},
				FilterSel: map[query.StreamID]float64{0: 0.5}},
			{ID: 2, Consumer: s.env.Topo.TransitNodeIDs()[0], Streams: []query.StreamID{0, 1}},
		}
		var runs []*Running
		for _, q := range qs {
			run, err := s.engine.Deploy(s.optimize(t, q))
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, run)
		}
		s.runSim(30)
		var out []Measurement
		for _, r := range runs {
			out = append(out, r.Measure())
		}
		return out
	}
	a, b := scenario(), scenario()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged on circuit %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestEngineRealClockSmoke keeps the goroutine-producer path exercised:
// a short wall-clock run on the default ticker pacing must deliver.
func TestEngineRealClockSmoke(t *testing.T) {
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           4,
		IntraStubLatency:    [2]float64{1, 4},
		StubUplinkLatency:   [2]float64{2, 8},
		IntraTransitLatency: [2]float64{5, 15},
		InterTransitLatency: [2]float64{20, 50},
		ExtraStubEdgeProb:   0.2,
	}
	topo := topology.MustGenerate(cfg, rand.New(rand.NewSource(1)))
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	stubs := topo.StubNodeIDs()
	if err := stats.AddStream(0, stubs[0], 50); err != nil {
		t.Fatal(err)
	}
	ecfg := optimizer.DefaultEnvConfig(1)
	ecfg.UseDHT = false
	ecfg.VivaldiRounds = 20
	env, err := optimizer.NewEnv(topo, stats, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	net := overlay.NewNetwork(topo, overlay.Config{TimeScale: 10 * time.Microsecond, InboxSize: 8192})
	net.Start()
	eng := NewEngine(net, topo, DefaultEngineConfig())
	t.Cleanup(func() {
		eng.Close()
		net.Stop()
	})
	res, err := optimizer.NewIntegrated(env).Optimize(
		query.Query{ID: 1, Consumer: stubs[11], Streams: []query.StreamID{0}})
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Deploy(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	m := run.Measure()
	if m.TuplesOut == 0 {
		t.Fatal("real-clock engine delivered nothing")
	}
	if err := eng.Stop(1); err != nil {
		t.Fatal(err)
	}
}
