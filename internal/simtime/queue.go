package simtime

import (
	"container/heap"
	"time"
)

// event is one scheduled callback on the virtual timeline.
type event struct {
	at time.Duration // virtual offset from the epoch
	// seq is the packed event key: (origin domain + 1) in the high
	// bits, the origin's schedule counter in the low domainSeqBits.
	// It breaks ties at equal timestamps — control events first, then
	// node domains in id order, FIFO within a domain — identically in
	// single-queue and sharded execution.
	seq uint64
	fn  func()

	// lane is the shard queue the event lives in, or -1 for the
	// control queue (and for every event in single-queue mode).
	lane int32

	// idx is the event's position inside its current container (the
	// reference heap, the wheel's ready heap, or a wheel bucket slice);
	// -1 once fired or stopped. The queue implementations keep it
	// current so removal is O(log n) / O(1) instead of a scan.
	idx int

	// level/slot locate a wheel-resident event: level == readyLevel
	// means the event sits in the wheel's exact ready heap, otherwise
	// buckets[level][slot]. The reference heapQueue ignores both.
	level int8
	slot  uint8
}

// eventQueue is the scheduler's priority-queue contract: push pending
// events, pop the exact global (at, seq) minimum, remove a pending
// event by handle. Two implementations exist — heapQueue, the original
// binary heap kept as the semantics reference, and wheelQueue, the
// hierarchical timer wheel used by default. The VirtualClock holds its
// mutex around every call, so implementations need no locking of their
// own.
type eventQueue interface {
	// push enqueues a pending event (at and seq already assigned).
	push(ev *event)
	// popMin removes and returns the event with the smallest (at, seq).
	// Callers guarantee len() > 0.
	popMin() *event
	// peekMin returns the event popMin would return without removing
	// it. Callers guarantee len() > 0.
	peekMin() *event
	// remove cancels a pending event, reporting whether it was still
	// queued (false if already fired or removed).
	remove(ev *event) bool
	// len returns the number of pending events.
	len() int
}

// eventHeap orders events by (at, seq): earliest first, FIFO within one
// virtual instant. It backs both the reference queue and the wheel's
// ready set.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// heapQueue is the original binary-heap scheduler queue. It survives as
// the reference implementation: the wheel's differential test replays
// identical schedules against both and demands identical fire orders,
// and NewVirtualReference exposes it for benchmarks.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(ev *event) { heap.Push(&q.h, ev) }

func (q *heapQueue) popMin() *event { return heap.Pop(&q.h).(*event) }

func (q *heapQueue) peekMin() *event { return q.h[0] }

func (q *heapQueue) remove(ev *event) bool {
	if ev.idx < 0 {
		return false
	}
	heap.Remove(&q.h, ev.idx)
	ev.idx = -1
	return true
}

func (q *heapQueue) len() int { return len(q.h) }

// Thin container/heap wrappers used by the wheel's ready set.
func readyPush(h *eventHeap, ev *event) { heap.Push(h, ev) }
func readyPop(h *eventHeap) *event      { return heap.Pop(h).(*event) }
func readyRemove(h *eventHeap, i int)   { heap.Remove(h, i) }
