// Package simtime is the discrete-event simulation kernel behind the
// overlay runtime: a Clock abstraction with two implementations — the
// real (wall) clock, and a deterministic virtual clock backed by an
// event-heap scheduler.
//
// Under the virtual clock, time is a number, not a resource. Timers and
// delayed callbacks become events on a heap ordered by (timestamp,
// schedule sequence); the scheduler pops and runs them one at a time,
// jumping the clock forward instantly. Events scheduled for the same
// virtual instant fire in FIFO schedule order, so a fixed seed yields a
// bit-identical event sequence on every run — the reproducibility the
// large-scale SBON evaluation scenarios rely on. A ten-second simulated
// measurement window completes in however long its events take to
// process, typically milliseconds.
//
// # Quiescence and registered goroutines
//
// The virtual scheduler must never advance time while application code
// is still running at the current instant, or the run would depend on
// OS scheduling. It therefore tracks a set of registered goroutines
// ("actors") and only fires events when every actor is blocked in a
// clock wait (Sleep, SleepOrDone). The contract:
//
//   - Every goroutine that drives a virtual clock (a test body, an
//     experiment harness) must call Register before its first blocking
//     call and Unregister when done, or be spawned via Go.
//   - Registered goroutines must block only in clock primitives. Waiting
//     on channels or WaitGroups filled by events deadlocks the scheduler,
//     because it cannot see that wait. Code that must select on a
//     cancellation channel uses SleepOrDone, the tracked form of that
//     select.
//   - Event callbacks (AfterFunc functions) run sequentially on the
//     scheduler goroutine and must not block; they may schedule further
//     events and wake sleepers.
//
// While any registered actor is runnable the scheduler is parked, so
// actor code may freely mutate simulation state (deploy circuits,
// register handlers, read metrics) without racing event callbacks.
// With no registered actors the scheduler is also parked: virtual time
// only moves while someone is sleeping through it.
package simtime

import "time"

// Clock abstracts the passage of time for the simulation runtime. The
// real clock delegates to package time; the virtual clock advances a
// simulated timeline deterministically.
type Clock interface {
	// Now returns the current (wall or virtual) time.
	Now() time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
	// Sleep pauses the caller for d. On a virtual clock the caller must
	// be a registered actor; the simulated timeline jumps forward
	// without consuming wall time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock time after d.
	// On a virtual clock, receiving from the channel is NOT a tracked
	// wait: only unregistered goroutines may block on it, and only
	// while registered actors elsewhere keep time moving.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules fn to run after d and returns a handle that
	// can cancel it. On a virtual clock fn runs on the scheduler
	// goroutine and must not block.
	AfterFunc(d time.Duration, fn func()) Timer
	// SleepOrDone pauses the caller for d, returning early — reporting
	// true — when done fires (receives or closes) first. On a virtual
	// clock this is a tracked wait: the caller must be a registered
	// actor, and quiescence detection sees the sleeper exactly as it
	// sees Sleep. Wakes caused by done are fully deterministic when done
	// is fired through VirtualClock.Signal; a plain close still wakes
	// the sleeper correctly but the virtual instant it resumes at may
	// trail the close by already-queued events.
	SleepOrDone(d time.Duration, done <-chan struct{}) bool
}

// Timer is a cancellable pending callback or expiry.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// realClock implements Clock on package time.
type realClock struct{}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{t: time.AfterFunc(d, fn)}
}

func (realClock) SleepOrDone(d time.Duration, done <-chan struct{}) bool {
	if done != nil {
		select {
		case <-done:
			return true
		default:
		}
	}
	if d <= 0 {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return false
	case <-done:
		return true
	}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// IsVirtual reports whether c is a virtual clock.
func IsVirtual(c Clock) bool {
	_, ok := c.(*VirtualClock)
	return ok
}
