package simtime

import (
	"fmt"
	"sort"
	"time"
)

// Sharded data-plane execution.
//
// NewVirtualSharded splits the node domains across K lanes, each backed
// by its own timer wheel and executed by its own worker goroutine. The
// scheduler alternates between two phases:
//
//   - Barrier: control-domain events fire one at a time on the
//     scheduler goroutine, exactly as in single-queue mode, whenever
//     the earliest pending control event is no later than the earliest
//     pending lane event. Harness actors also only ever run here.
//   - Window: otherwise the clock opens the conservative lookahead
//     window [tLane, min(tCtl, tLane+L)) — L is the minimum cross-lane
//     message latency — and every lane with work below the window end
//     drains it in parallel, each lane strictly in event-key order.
//
// Cross-lane events created inside a window cannot land before the
// window end (their delay is at least L by construction of L), so they
// are staged in per-lane outboxes and merged into the destination
// queues at the barrier; a violation panics rather than silently
// breaking causality. Because event keys — (timestamp, origin,
// per-origin sequence) — are minted per domain and each domain executes
// serially in key order in both modes, the key set and all
// key-ordered artifacts are identical to a single-queue run regardless
// of how goroutines interleave: that is the bit-identity contract the
// differential tests pin down.
type clockLane struct {
	c   *VirtualClock
	idx int32
	q   eventQueue

	// now/curKey describe the event the lane worker is currently
	// executing; read by ScheduleDomain/DomainNow/Observe from that
	// same worker, so no synchronization is needed.
	now    time.Duration
	curKey uint64
	curEnd time.Duration // current window end, for the causality check

	outbox []*event   // cross-lane events staged until the barrier
	obs    []obsEntry // deferred observations staged until the barrier
	obsIdx uint64

	work chan time.Duration // window-end signals from the coordinator
}

// obsEntry is one deferred observation, ordered at the barrier by
// (event time, event key, emission index within the event).
type obsEntry struct {
	at  time.Duration
	key uint64
	idx uint64
	fn  func(at time.Time)
}

// NewVirtualSharded creates a virtual clock whose node domains execute
// on `shards` parallel lanes. laneOf maps each node domain (index =
// Domain) to its lane; lookahead is the conservative bound — no event
// executed in one lane may cause an event in another lane fewer than
// `lookahead` later (in the overlay this is the minimum cross-node
// message latency). With shards <= 1 or a non-positive lookahead the
// clock degenerates to the single-queue scheduler, which fires the
// identical event sequence.
func NewVirtualSharded(laneOf []int32, shards int, lookahead time.Duration) *VirtualClock {
	c := NewVirtual()
	c.ShardLanes(laneOf, shards, lookahead)
	return c
}

// ShardLanes converts a single-queue clock to sharded execution. It
// exists for harnesses whose lane map is only known after the clock has
// started (the overlay's shard regions derive from an optimizer
// environment that is itself built under the clock): create the clock,
// run the setup phase, then install the lanes. It must be called before
// any node-domain event is scheduled — pending control events are
// unaffected, but a node event already sitting in the control queue
// would escape its lane's ordering. Shards <= 1 or a non-positive
// lookahead leave the clock in single-queue mode.
func (c *VirtualClock) ShardLanes(laneOf []int32, shards int, lookahead time.Duration) {
	if shards <= 1 || lookahead <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.lanes) > 0 {
		panic("simtime: ShardLanes on an already-sharded clock")
	}
	c.laneOf = make([]int32, len(laneOf))
	for i, l := range laneOf {
		if l < 0 || int(l) >= shards {
			panic(fmt.Sprintf("simtime: laneOf[%d] = %d out of range [0,%d)", i, l, shards))
		}
		c.laneOf[i] = l
	}
	// The window path indexes domSeq lock-free, so it must span every
	// node domain up front; counters already minted stay intact.
	for len(c.domSeq) < len(laneOf)+1 {
		c.domSeq = append(c.domSeq, 0)
	}
	c.lookahead = lookahead
	c.laneDone = make(chan struct{}, shards)
	for i := 0; i < shards; i++ {
		ln := &clockLane{c: c, idx: int32(i), q: newWheelQueue(), work: make(chan time.Duration)}
		c.lanes = append(c.lanes, ln)
		go ln.loop()
	}
}

// Shards reports the number of parallel lanes (1 in single-queue mode).
func (c *VirtualClock) Shards() int {
	if len(c.lanes) == 0 {
		return 1
	}
	return len(c.lanes)
}

// Lookahead reports the conservative window bound (0 in single-queue
// mode).
func (c *VirtualClock) Lookahead() time.Duration { return c.lookahead }

// stepShardedLocked advances the sharded clock by one step: either one
// control event (barrier semantics identical to single-queue mode) or
// one parallel window. Called from run with mu held; returns with mu
// held.
func (c *VirtualClock) stepShardedLocked() {
	const inf = time.Duration(1<<63 - 1)
	tCtl, tLane := inf, inf
	if c.q.len() > 0 {
		tCtl = c.q.peekMin().at
	}
	for _, ln := range c.lanes {
		if ln.q.len() > 0 {
			if a := ln.q.peekMin().at; a < tLane {
				tLane = a
			}
		}
	}
	if tCtl <= tLane {
		ev := c.q.popMin()
		if ev.at > c.now {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.fn()
		c.mu.Lock()
		return
	}

	end := tLane + c.lookahead
	if tCtl < end {
		end = tCtl
	}
	c.winLanes = c.winLanes[:0]
	for _, ln := range c.lanes {
		if ln.q.len() > 0 && ln.q.peekMin().at < end {
			ln.curEnd = end
			c.winLanes = append(c.winLanes, ln)
		}
	}
	c.inWindow.Store(true)
	c.mu.Unlock()
	for _, ln := range c.winLanes {
		ln.work <- end
	}
	for range c.winLanes {
		<-c.laneDone
	}
	c.mu.Lock()
	c.inWindow.Store(false)

	// Barrier: commit the window. Advance the clock to the latest
	// executed instant, deliver staged cross-lane events, then run the
	// deferred observations in deterministic key order (with mu
	// released — observation callbacks may use the clock).
	maxAt := c.now
	c.obsBuf = c.obsBuf[:0]
	for _, ln := range c.winLanes {
		if ln.now > maxAt {
			maxAt = ln.now
		}
		for _, ev := range ln.outbox {
			c.pushLocked(ev)
		}
		ln.outbox = ln.outbox[:0]
		c.obsBuf = append(c.obsBuf, ln.obs...)
		ln.obs = ln.obs[:0]
	}
	c.now = maxAt
	if len(c.obsBuf) > 0 {
		obs := c.obsBuf
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].at != obs[j].at {
				return obs[i].at < obs[j].at
			}
			if obs[i].key != obs[j].key {
				return obs[i].key < obs[j].key
			}
			return obs[i].idx < obs[j].idx
		})
		c.mu.Unlock()
		for _, o := range obs {
			o.fn(virtualEpoch.Add(o.at))
		}
		c.mu.Lock()
	}
}

// loop is a lane worker: drain one window per coordinator signal.
func (ln *clockLane) loop() {
	for end := range ln.work {
		ln.runWindow(end)
		ln.c.laneDone <- struct{}{}
	}
}

// runWindow executes every lane event strictly before end, in exact key
// order. Events scheduled into the same lane during the window join it
// (the loop re-peeks each iteration), so a lane never leaves work
// behind that the single-queue scheduler would have run.
func (ln *clockLane) runWindow(end time.Duration) {
	for ln.q.len() > 0 {
		ev := ln.q.peekMin()
		if ev.at >= end {
			break
		}
		ln.q.popMin()
		ln.now = ev.at
		ln.curKey = ev.seq
		ev.fn()
	}
}

// ScheduleDomain schedules fn at now+d, keyed as origin's next event
// and executed in exec's shard. Inside a parallel window the caller
// must be origin's lane worker (every converted call site acts as the
// origin node), and the insert is lock-free: same-lane events go
// straight into the lane's queue, cross-lane events are staged in the
// outbox for barrier delivery. Outside windows (single-queue mode,
// control callbacks, harness actors) the insert takes the clock mutex.
func (c *VirtualClock) ScheduleDomain(origin, exec Domain, d time.Duration, fn func()) Timer {
	if c.inWindow.Load() {
		if origin < 0 || int(origin) >= len(c.laneOf) {
			panic(fmt.Sprintf("simtime: ScheduleDomain(origin=%d) inside a window: origin must be an owned node domain", origin))
		}
		ln := c.lanes[c.laneOf[origin]]
		if d < 0 {
			d = 0
		}
		i := int(origin) + 1
		key := uint64(i)<<domainSeqBits | c.domSeq[i]
		c.domSeq[i]++
		ev := &event{at: ln.now + d, seq: key, fn: fn, lane: -1}
		if exec >= 0 {
			ev.lane = c.laneOf[exec]
		}
		if ev.lane == ln.idx {
			ln.q.push(ev)
		} else {
			if ev.at < ln.curEnd {
				panic(fmt.Sprintf("simtime: cross-shard event at %v violates the lookahead window ending %v", ev.at, ln.curEnd))
			}
			ln.outbox = append(ln.outbox, ev)
		}
		return &virtualTimer{c: c, ev: ev}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &virtualTimer{c: c, ev: c.scheduleDomainLocked(origin, exec, d, fn)}
}

// DomainNow returns the current time as seen from origin's execution
// context: the lane-local event time inside a window, the global clock
// otherwise.
func (c *VirtualClock) DomainNow(origin Domain) time.Time {
	if c.inWindow.Load() && origin >= 0 && int(origin) < len(c.laneOf) {
		return virtualEpoch.Add(c.lanes[c.laneOf[origin]].now)
	}
	return c.Now()
}

// Observe defers fn to the end of the current window, where all
// observations run serially sorted by (event time, event key, emission
// index) — the exact order a single-queue run would have produced them
// in. Outside a window fn runs inline at the current clock time.
func (c *VirtualClock) Observe(origin Domain, fn func(at time.Time)) {
	if c.inWindow.Load() && origin >= 0 && int(origin) < len(c.laneOf) {
		ln := c.lanes[c.laneOf[origin]]
		ln.obs = append(ln.obs, obsEntry{at: ln.now, key: ln.curKey, idx: ln.obsIdx, fn: fn})
		ln.obsIdx++
		return
	}
	fn(c.Now())
}
