package simtime

import (
	"fmt"
	"math/bits"
	"time"
)

// wheelQueue is a hierarchical timer wheel: the default eventQueue
// behind VirtualClock. Scheduling and firing are O(1) amortized (each
// event is bucketed once per level at most, and levels are constant),
// against the O(log n) of the reference binary heap — the difference
// that makes 100k+ pending events (16k-node heartbeat scenarios) cheap.
//
// Geometry: ticks of one microsecond, 9 levels of 64 slots. Level l
// slots span 64^l ticks, so the wheel covers 64^9 = 2^54 ticks — about
// 571 years of virtual time, comfortably past the 2^43-tick maximum a
// time.Duration offset can express. Slot indexing is absolute: the slot
// of tick t at level l is bits [6l, 6l+6) of t, and an event is placed
// at the lowest level whose slot index still differs from the wheel
// position's (the highest differing bit picks the level). One uint64
// occupancy bitmap per level makes "earliest occupied slot" a
// TrailingZeros scan instead of a walk.
//
// Exactness — the property the whole simulation kernel rests on — is
// preserved by a two-tier split. `horizon` partitions pending events by
// tick: everything strictly below it lives in `ready`, an exact
// (at, seq) min-heap; everything at or above it lives in the buckets.
// popMin therefore only ever pops the ready heap, whose minimum is
// globally minimal by the partition invariant, so fire order — down to
// sub-tick timestamp differences and FIFO sequence ties — is
// bit-identical to the reference heap's. When ready drains, advance()
// moves horizon forward: the earliest occupied slot at the lowest
// occupied level either feeds ready directly (level 0, one tick per
// slot) or redistributes into lower levels (cascade), strictly
// decreasing each event's level so the loop terminates.
type wheelQueue struct {
	// horizon partitions pending events: tick < horizon → ready heap,
	// tick >= horizon → buckets. Monotonically non-decreasing.
	horizon int64

	// ready holds the imminent events in exact (at, seq) order.
	ready eventHeap

	buckets [wheelLevels][wheelSlots][]*event
	occ     [wheelLevels]uint64 // occ[l] bit s set iff buckets[l][s] is non-empty

	n int // total pending events (ready + buckets)

	// tick is the level-0 bucketing granularity. It starts at
	// wheelTick and adapts upward (never down) from the observed
	// minimum inter-event gap: workloads whose events are
	// milliseconds apart (heartbeat horizons) would otherwise cascade
	// the cursor through thousands of empty microsecond slots per
	// advance. Because exactness comes from the ready-heap partition,
	// not the tick, retuning never changes fire order.
	tick    time.Duration
	lastPop time.Duration
	minGap  time.Duration
	pops    int
}

const (
	// adaptEvery is how many pops elapse between tick reviews.
	adaptEvery = 4096
	// adaptSlack keeps the tick at most 1/4 of the observed minimum
	// gap, so events that were distinct ticks apart stay distinct.
	adaptSlack = 4
	// adaptMaxTick caps growth; one second of virtual time per level-0
	// slot is already far beyond any scheduling density here.
	adaptMaxTick = time.Second
	noGap        = time.Duration(1<<63 - 1)
)

const (
	wheelSlotBits = 6
	wheelSlots    = 1 << wheelSlotBits // 64
	wheelSlotMask = wheelSlots - 1
	wheelLevels   = 9
	// wheelTick is the bucketing granularity. Events within one tick
	// are still fired in exact (at, seq) order — the ready heap sorts
	// by full-resolution timestamps — so the tick only bounds how much
	// time one level-0 slot spans, not scheduling precision.
	wheelTick = time.Microsecond

	// readyLevel marks an event as resident in the ready heap rather
	// than a bucket.
	readyLevel int8 = -1
)

func newWheelQueue() *wheelQueue { return &wheelQueue{tick: wheelTick, minGap: noGap} }

func (q *wheelQueue) tickOf(at time.Duration) int64 { return int64(at / q.tick) }

// wheelLevelFor returns the bucket level for an event at tick `t` given
// the current wheel position `pos`: the level of the highest bit in
// which they differ (level 0 when they differ only within the low 6
// bits or not at all). Deltas beyond the top level's span — unreachable
// for time.Duration offsets, see the geometry note above — clamp to the
// top level.
func wheelLevelFor(pos, t int64) int {
	masked := uint64(pos^t) | wheelSlotMask
	significant := 63 - bits.LeadingZeros64(masked)
	l := significant / wheelSlotBits
	if l >= wheelLevels {
		l = wheelLevels - 1
	}
	return l
}

func (q *wheelQueue) push(ev *event) {
	q.n++
	t := q.tickOf(ev.at)
	if t < q.horizon {
		// Already inside the ready window (a zero-delay schedule, or a
		// schedule from an actor whose `now` trails the horizon): the
		// exact heap absorbs it and ordering stays global.
		ev.level = readyLevel
		readyPush(&q.ready, ev)
		return
	}
	q.place(ev, t)
}

// place buckets a pending event with tick t >= q.horizon.
func (q *wheelQueue) place(ev *event, t int64) {
	l := wheelLevelFor(q.horizon, t)
	s := int((t >> (wheelSlotBits * l)) & wheelSlotMask)
	ev.level = int8(l)
	ev.slot = uint8(s)
	ev.idx = len(q.buckets[l][s])
	q.buckets[l][s] = append(q.buckets[l][s], ev)
	q.occ[l] |= 1 << s
}

func (q *wheelQueue) popMin() *event {
	for len(q.ready) == 0 {
		q.advance()
	}
	ev := readyPop(&q.ready)
	q.n--
	q.observePop(ev.at)
	return ev
}

func (q *wheelQueue) peekMin() *event {
	for len(q.ready) == 0 {
		q.advance()
	}
	return q.ready[0]
}

// observePop feeds the adaptive-tick statistics and retunes the wheel
// when the workload's minimum inter-event gap shows the current tick is
// needlessly fine.
func (q *wheelQueue) observePop(at time.Duration) {
	if gap := at - q.lastPop; gap > 0 && gap < q.minGap {
		q.minGap = gap
	}
	q.lastPop = at
	if q.pops++; q.pops < adaptEvery {
		return
	}
	q.pops = 0
	g := q.minGap
	q.minGap = noGap
	if g == noGap {
		return
	}
	newTick := q.tick
	for newTick < adaptMaxTick && newTick<<wheelSlotBits <= g/adaptSlack {
		newTick <<= wheelSlotBits
	}
	if newTick != q.tick {
		q.retick(newTick)
	}
}

// retick re-buckets every pending event under a coarser tick. The
// horizon moves to the same point in time expressed in new ticks
// (rounded down, so no bucketed event crosses below it), and the ready
// heap — the exactness tier — is untouched, so fire order is exactly
// preserved.
func (q *wheelQueue) retick(newTick time.Duration) {
	var pend []*event
	for l := 0; l < wheelLevels; l++ {
		for q.occ[l] != 0 {
			s := bits.TrailingZeros64(q.occ[l])
			pend = append(pend, q.buckets[l][s]...)
			q.buckets[l][s] = nil
			q.occ[l] &^= 1 << s
		}
	}
	horizonTime := time.Duration(q.horizon) * q.tick
	q.tick = newTick
	q.horizon = int64(horizonTime / newTick)
	for _, ev := range pend {
		t := q.tickOf(ev.at)
		if t < q.horizon {
			ev.level = readyLevel
			readyPush(&q.ready, ev)
			continue
		}
		q.place(ev, t)
	}
}

// advance moves the horizon to the next occupied slot. The scan runs
// lowest level first: slots at level l with index >= the horizon's own
// level-l index all start at or after the horizon and strictly before
// any candidate at level l+1 (whose slots span the whole level-l
// window), so the first hit is the global earliest. A level-0 hit moves
// the slot — a single tick's worth of events — into the ready heap; a
// higher-level hit re-places its events relative to the new horizon,
// pushing every one of them at least one level down (their top
// differing bit is now inside the slot's span), which bounds total
// re-placement work at wheelLevels per event over its lifetime.
func (q *wheelQueue) advance() {
	// Settle the horizon's own slot at every level above 0 first, top
	// down. When a level-0 drain sets horizon = slotStart+1 and the +1
	// carries across a slot boundary, the horizon enters a new slot at
	// one or more higher levels without redistributing it; that slot
	// spans the whole window the lower levels cover, so its events may
	// precede anything a bottom-up scan would find. Draining top-down
	// re-places each such event strictly below its old level (its top
	// bit differing from the horizon is now inside the slot's span),
	// after which the bottom-up scan below is sound. New insertions
	// never land on a cursor slot above level 0 — a tick matching the
	// horizon's slot index there has its highest differing bit lower —
	// so only rollover can populate one.
	for l := wheelLevels - 1; l >= 1; l-- {
		c := uint((q.horizon >> (wheelSlotBits * l)) & wheelSlotMask)
		if q.occ[l]&(1<<c) == 0 {
			continue
		}
		evs := q.buckets[l][c]
		q.buckets[l][c] = nil
		q.occ[l] &^= 1 << c
		for _, ev := range evs {
			q.place(ev, q.tickOf(ev.at))
		}
	}
	for l := 0; l < wheelLevels; l++ {
		c := uint((q.horizon >> (wheelSlotBits * l)) & wheelSlotMask)
		w := q.occ[l] &^ (1<<c - 1) // occupied slots at index >= c
		if w == 0 {
			continue
		}
		s := bits.TrailingZeros64(w)
		span := int64(1) << (wheelSlotBits * (l + 1))
		slotStart := q.horizon&^(span-1) | int64(s)<<(wheelSlotBits*l)
		evs := q.buckets[l][s]
		q.buckets[l][s] = nil
		q.occ[l] &^= 1 << s
		if l == 0 {
			// A level-0 slot is one tick: everything in it is due next.
			q.horizon = slotStart + 1
			for _, ev := range evs {
				ev.level = readyLevel
				readyPush(&q.ready, ev)
			}
			return
		}
		// Cascade: enter the slot and redistribute.
		q.horizon = slotStart
		for _, ev := range evs {
			q.place(ev, q.tickOf(ev.at))
		}
		return
	}
	panic(fmt.Sprintf("simtime: wheel advance found no occupied slot with %d events pending", q.n))
}

func (q *wheelQueue) remove(ev *event) bool {
	if ev.idx < 0 {
		return false
	}
	if ev.level == readyLevel {
		readyRemove(&q.ready, ev.idx)
		ev.idx = -1
		q.n--
		return true
	}
	b := q.buckets[ev.level][ev.slot]
	last := len(b) - 1
	if ev.idx != last {
		b[ev.idx] = b[last]
		b[ev.idx].idx = ev.idx
	}
	b[last] = nil
	q.buckets[ev.level][ev.slot] = b[:last]
	if last == 0 {
		q.occ[ev.level] &^= 1 << ev.slot
	}
	ev.idx = -1
	q.n--
	return true
}

func (q *wheelQueue) len() int { return q.n }
