package simtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// virtualEpoch is the fixed origin of every virtual timeline: runs are
// reproducible because Now() depends only on the event history, never
// on when the process started.
var virtualEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// VirtualClock is the deterministic discrete-event implementation of
// Clock. See the package documentation for the actor contract.
//
// Events are keyed by (timestamp, origin domain, per-domain sequence):
// the key is a pure function of the event history of the scheduling
// domain, not of global scheduling order, so the same key set — and
// therefore the same fire order — emerges whether the clock executes
// events one at a time (single queue) or in parallel shard windows
// (NewVirtualSharded). Control-domain events order before node-domain
// events at the same instant, matching the sharded clock's barriers.
type VirtualClock struct {
	mu   sync.Mutex
	cond *sync.Cond // wakes the scheduler on any state change

	now time.Duration // virtual offset from virtualEpoch

	// domSeq holds the per-domain schedule counters, indexed by
	// origin+1 (index 0 is the Control domain). During a parallel
	// window each shard touches only the counters of the domains it
	// owns; at barriers and in single-queue mode access is under mu.
	domSeq []uint64

	// q holds the pending control-domain events (and, in single-queue
	// mode, every event). The default is the hierarchical timer wheel
	// (wheelQueue); NewVirtualReference selects the original binary
	// heap, kept as the differential-test and benchmark reference.
	q eventQueue

	// Sharded-mode state (empty lanes == single-queue mode); see
	// sharded.go.
	lanes     []*clockLane
	laneOf    []int32 // node domain -> lane index
	lookahead time.Duration
	inWindow  atomic.Bool
	laneDone  chan struct{}
	winLanes  []*clockLane // scratch: lanes active in the current window
	obsBuf    []obsEntry   // scratch: merged deferred observations

	actors   int // registered goroutines
	runnable int // registered goroutines not blocked in a clock wait
	stopped  bool

	// waiters tracks SleepOrDone sleepers by their done channel so
	// Signal can wake them synchronously with the close — the
	// deterministic cancellation path.
	waiters map[<-chan struct{}][]*sodWaiter
}

// NewVirtual creates a virtual clock at the epoch and starts its
// scheduler goroutine. Call Stop when done with the clock to release
// the scheduler. The event queue is the hierarchical timer wheel
// (wheel.go): O(1) amortized schedule/fire, exact key order.
func NewVirtual() *VirtualClock {
	return newVirtualClock(newWheelQueue())
}

// NewVirtualReference creates a virtual clock backed by the original
// binary-heap event queue. Fire order is defined to be identical to
// NewVirtual's — the wheel is validated against this implementation by
// a differential test — so it exists only as that reference and as the
// baseline for scheduling benchmarks.
func NewVirtualReference() *VirtualClock {
	return newVirtualClock(&heapQueue{})
}

func newVirtualClock(q eventQueue) *VirtualClock {
	c := &VirtualClock{q: q}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// run is the scheduler loop: whenever at least one actor is registered,
// all actors are blocked, and an event is pending, advance. In
// single-queue mode that means popping the earliest event, jumping the
// clock to its timestamp, and firing it; in sharded mode control events
// still fire one at a time but node-domain events execute in parallel
// lookahead windows (runWindowLocked, sharded.go).
func (c *VirtualClock) run() {
	c.mu.Lock()
	for {
		for !c.stopped && !(c.actors > 0 && c.runnable == 0 && c.pendingLocked() > 0) {
			c.cond.Wait()
		}
		if c.stopped {
			c.mu.Unlock()
			return
		}
		if len(c.lanes) == 0 {
			ev := c.q.popMin()
			if ev.at > c.now {
				c.now = ev.at
			}
			c.mu.Unlock()
			ev.fn()
			c.mu.Lock()
			continue
		}
		c.stepShardedLocked()
	}
}

// pendingLocked counts scheduled, unfired events across every queue.
func (c *VirtualClock) pendingLocked() int {
	n := c.q.len()
	for _, ln := range c.lanes {
		n += ln.q.len()
	}
	return n
}

// Stop shuts the scheduler down. Pending events never fire and blocked
// sleepers are never woken, so stop only once every registered actor
// has unregistered (tests typically defer Stop alongside Unregister).
func (c *VirtualClock) Stop() {
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		for _, ln := range c.lanes {
			close(ln.work)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Register adds the calling goroutine to the actor set. Time cannot
// advance while any registered actor is runnable.
func (c *VirtualClock) Register() {
	c.mu.Lock()
	c.actors++
	c.runnable++
	c.mu.Unlock()
}

// Unregister removes the calling goroutine from the actor set.
func (c *VirtualClock) Unregister() {
	c.mu.Lock()
	c.actors--
	c.runnable--
	if c.actors < 0 {
		c.mu.Unlock()
		panic("simtime: Unregister without matching Register")
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Drive registers the calling goroutine as a driving actor and returns
// the release function that unregisters it and stops the clock — the
// one-liner for scenario harnesses that own the clock:
//
//	clk := simtime.NewVirtual()
//	defer clk.Drive()()
//
// The ordering matters (unregister before stop) and is encapsulated
// here so call sites cannot get it wrong.
func (c *VirtualClock) Drive() (release func()) {
	c.Register()
	return func() {
		c.Unregister()
		c.Stop()
	}
}

// Go runs fn on a new registered goroutine, unregistering when it
// returns. The actor is counted before Go returns, so time cannot slip
// past the spawn.
func (c *VirtualClock) Go(fn func()) {
	c.Register()
	go func() {
		defer c.Unregister()
		fn()
	}()
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return virtualEpoch.Add(c.now)
}

// Since returns the virtual time elapsed since t.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// nextKeyLocked mints the next event key for origin: origin+1 in the
// high bits, the domain's schedule counter in the low domainSeqBits.
// Callers hold mu (the shard window path mints keys lock-free in
// ScheduleDomain, where counter ownership is per-lane).
func (c *VirtualClock) nextKeyLocked(origin Domain) uint64 {
	i := int(origin) + 1
	for i >= len(c.domSeq) {
		c.domSeq = append(c.domSeq, 0)
	}
	k := uint64(i)<<domainSeqBits | c.domSeq[i]
	c.domSeq[i]++
	return k
}

// scheduleLocked enqueues fn at now+d as a control-domain event.
// Callers must hold mu.
func (c *VirtualClock) scheduleLocked(d time.Duration, fn func()) *event {
	return c.scheduleDomainLocked(Control, Control, d, fn)
}

// scheduleDomainLocked enqueues fn at now+d keyed as origin's next
// event, routed to exec's queue. Callers must hold mu and must not be
// inside a parallel window (window-context scheduling goes through the
// lock-free path in ScheduleDomain).
func (c *VirtualClock) scheduleDomainLocked(origin, exec Domain, d time.Duration, fn func()) *event {
	if d < 0 {
		d = 0
	}
	ev := &event{at: c.now + d, seq: c.nextKeyLocked(origin), fn: fn, lane: -1}
	if exec >= 0 && len(c.lanes) > 0 {
		ev.lane = c.laneOf[exec]
	}
	c.pushLocked(ev)
	return ev
}

// pushLocked routes ev to its queue and wakes the scheduler.
func (c *VirtualClock) pushLocked(ev *event) {
	if ev.lane >= 0 {
		c.lanes[ev.lane].q.push(ev)
	} else {
		c.q.push(ev)
	}
	c.cond.Broadcast()
}

// removeLocked cancels ev wherever it lives.
func (c *VirtualClock) removeLocked(ev *event) bool {
	if ev.lane >= 0 {
		return c.lanes[ev.lane].q.remove(ev)
	}
	return c.q.remove(ev)
}

// Sleep blocks the calling actor for d of virtual time. The wake-up is
// an ordinary control event: sleeps expiring at the same instant as
// other work interleave in deterministic key order.
//
// The caller must be a registered actor. The panic below is a
// best-effort guard: it fires only when every registered actor is
// already blocked, because the clock tracks counts, not goroutine
// identities — a Sleep from an unregistered goroutine while some actor
// is still runnable is undetectable here and corrupts quiescence
// accounting. Keep the registration discipline.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	c.mu.Lock()
	if c.runnable < 1 {
		c.mu.Unlock()
		panic(fmt.Sprintf("simtime: Sleep(%v) on virtual clock from unregistered goroutine", d))
	}
	// The wake-up increments runnable before the sleeper can resume, so
	// the scheduler never advances past a wake it just delivered.
	c.scheduleLocked(d, func() {
		c.mu.Lock()
		c.runnable++
		c.mu.Unlock()
		close(ch)
	})
	c.runnable--
	c.cond.Broadcast()
	c.mu.Unlock()
	<-ch
}

// sodWaiter is one SleepOrDone sleeper: a pending timer event plus a
// private wake channel. Exactly one waker — the timer event, Signal, or
// the sleeper's own done-receive — flips woken under the clock mutex and
// closes wake.
type sodWaiter struct {
	ev    *event
	wake  chan struct{}
	woken bool
	fired bool // the timer path woke it (done did not fire first)
}

// SleepOrDone blocks the calling actor until d of virtual time passes or
// done fires, whichever comes first, reporting whether done won. Like
// Sleep it is a tracked wait: the scheduler sees the sleeper as blocked,
// so quiescence detection keeps working while migration handoffs (or any
// cancellable waits) are parked here.
//
// Two wake paths exist for done. Signal(done) wakes the sleeper under
// the clock mutex in the same instant as the close — fully deterministic.
// A direct close(done) also wakes it (via an ordinary select), but the
// scheduler may fire already-queued events before the sleeper resumes,
// so the virtual instant it observes on wake-up can trail the close.
// Prefer Signal when determinism matters.
func (c *VirtualClock) SleepOrDone(d time.Duration, done <-chan struct{}) bool {
	if done != nil {
		select {
		case <-done:
			return true
		default:
		}
	}
	if d <= 0 {
		return false
	}
	w := &sodWaiter{wake: make(chan struct{})}
	c.mu.Lock()
	if c.runnable < 1 {
		c.mu.Unlock()
		panic(fmt.Sprintf("simtime: SleepOrDone(%v) on virtual clock from unregistered goroutine", d))
	}
	w.ev = c.scheduleLocked(d, func() {
		c.mu.Lock()
		if w.woken {
			c.mu.Unlock()
			return
		}
		w.woken = true
		w.fired = true
		c.dropWaiterLocked(done, w)
		c.runnable++
		c.mu.Unlock()
		close(w.wake)
	})
	if done != nil {
		if c.waiters == nil {
			c.waiters = make(map[<-chan struct{}][]*sodWaiter)
		}
		c.waiters[done] = append(c.waiters[done], w)
	}
	c.runnable--
	c.cond.Broadcast()
	c.mu.Unlock()

	select {
	case <-w.wake:
		return !w.fired
	case <-done:
		// Direct close (not via Signal): claim the wake ourselves unless
		// the timer or Signal already did.
		c.mu.Lock()
		if w.woken {
			c.mu.Unlock()
			<-w.wake
			return !w.fired
		}
		w.woken = true
		c.removeLocked(w.ev)
		c.dropWaiterLocked(done, w)
		c.runnable++
		c.cond.Broadcast()
		c.mu.Unlock()
		close(w.wake)
		return true
	}
}

// dropWaiterLocked removes w from the done channel's waiter list. Callers
// hold mu.
func (c *VirtualClock) dropWaiterLocked(done <-chan struct{}, w *sodWaiter) {
	if done == nil {
		return
	}
	ws := c.waiters[done]
	for i, o := range ws {
		if o == w {
			c.waiters[done] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(c.waiters[done]) == 0 {
		delete(c.waiters, done)
	}
}

// Signal closes ch after synchronously waking every SleepOrDone sleeper
// parked on it: cancelled timers are removed and the sleepers become
// runnable under the clock mutex, so the scheduler cannot advance virtual
// time between the signal and the wake-ups. This is the deterministic way
// to cancel a tracked wait; ch must not be closed by anyone else.
func (c *VirtualClock) Signal(ch chan struct{}) {
	var recv <-chan struct{} = ch
	c.mu.Lock()
	ws := c.waiters[recv]
	delete(c.waiters, recv)
	claimed := ws[:0]
	for _, w := range ws {
		if w.woken {
			continue
		}
		w.woken = true
		c.removeLocked(w.ev)
		c.runnable++
		claimed = append(claimed, w)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	close(ch)
	for _, w := range claimed {
		close(w.wake)
	}
}

// After returns a channel receiving the virtual timestamp once d has
// passed. See the Clock interface note: the receive is untracked.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.AfterFunc(d, func() { ch <- c.Now() })
	return ch
}

// AfterFunc schedules fn to run on the scheduler goroutine after d of
// virtual time, keyed to the Control domain. Shard-context code (event
// handlers acting as a node) must use ScheduleDomain instead; calling
// AfterFunc from inside a parallel window panics, because the control
// queue is coordinator-owned during windows.
func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) Timer {
	if c.inWindow.Load() {
		panic("simtime: AfterFunc inside a parallel window; use ScheduleDomain with the acting node's domain")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &virtualTimer{c: c, ev: c.scheduleLocked(d, fn)}
}

type virtualTimer struct {
	c  *VirtualClock
	ev *event
}

// Stop cancels the pending event, reporting whether it had not yet
// fired. Stop is a control-context operation: calling it from inside a
// parallel window panics (shard workers own their queues then).
func (t *virtualTimer) Stop() bool {
	if t.c.inWindow.Load() {
		panic("simtime: Timer.Stop inside a parallel window")
	}
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.c.removeLocked(t.ev)
}

// PendingEvents returns the number of scheduled, unfired events —
// diagnostic surface for tests and scenario reports.
func (c *VirtualClock) PendingEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pendingLocked()
}
