package simtime

import (
	"fmt"
	"sync"
	"time"
)

// virtualEpoch is the fixed origin of every virtual timeline: runs are
// reproducible because Now() depends only on the event history, never
// on when the process started.
var virtualEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// VirtualClock is the deterministic discrete-event implementation of
// Clock. See the package documentation for the actor contract.
type VirtualClock struct {
	mu   sync.Mutex
	cond *sync.Cond // wakes the scheduler on any state change

	now time.Duration // virtual offset from virtualEpoch
	seq uint64

	// q holds the pending events. The default is the hierarchical
	// timer wheel (wheelQueue); NewVirtualReference selects the
	// original binary heap, kept as the differential-test and
	// benchmark reference.
	q eventQueue

	actors   int // registered goroutines
	runnable int // registered goroutines not blocked in a clock wait
	stopped  bool

	// waiters tracks SleepOrDone sleepers by their done channel so
	// Signal can wake them synchronously with the close — the
	// deterministic cancellation path.
	waiters map[<-chan struct{}][]*sodWaiter
}

// NewVirtual creates a virtual clock at the epoch and starts its
// scheduler goroutine. Call Stop when done with the clock to release
// the scheduler. The event queue is the hierarchical timer wheel
// (wheel.go): O(1) amortized schedule/fire, exact (at, seq) order.
func NewVirtual() *VirtualClock {
	return newVirtualClock(newWheelQueue())
}

// NewVirtualReference creates a virtual clock backed by the original
// binary-heap event queue. Fire order is defined to be identical to
// NewVirtual's — the wheel is validated against this implementation by
// a differential test — so it exists only as that reference and as the
// baseline for scheduling benchmarks.
func NewVirtualReference() *VirtualClock {
	return newVirtualClock(&heapQueue{})
}

func newVirtualClock(q eventQueue) *VirtualClock {
	c := &VirtualClock{q: q}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// run is the scheduler loop: whenever at least one actor is registered,
// all actors are blocked, and an event is pending, pop the earliest
// event, jump the clock to its timestamp, and fire it.
func (c *VirtualClock) run() {
	c.mu.Lock()
	for {
		for !c.stopped && !(c.actors > 0 && c.runnable == 0 && c.q.len() > 0) {
			c.cond.Wait()
		}
		if c.stopped {
			c.mu.Unlock()
			return
		}
		ev := c.q.popMin()
		if ev.at > c.now {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.fn()
		c.mu.Lock()
	}
}

// Stop shuts the scheduler down. Pending events never fire and blocked
// sleepers are never woken, so stop only once every registered actor
// has unregistered (tests typically defer Stop alongside Unregister).
func (c *VirtualClock) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Register adds the calling goroutine to the actor set. Time cannot
// advance while any registered actor is runnable.
func (c *VirtualClock) Register() {
	c.mu.Lock()
	c.actors++
	c.runnable++
	c.mu.Unlock()
}

// Unregister removes the calling goroutine from the actor set.
func (c *VirtualClock) Unregister() {
	c.mu.Lock()
	c.actors--
	c.runnable--
	if c.actors < 0 {
		c.mu.Unlock()
		panic("simtime: Unregister without matching Register")
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Drive registers the calling goroutine as a driving actor and returns
// the release function that unregisters it and stops the clock — the
// one-liner for scenario harnesses that own the clock:
//
//	clk := simtime.NewVirtual()
//	defer clk.Drive()()
//
// The ordering matters (unregister before stop) and is encapsulated
// here so call sites cannot get it wrong.
func (c *VirtualClock) Drive() (release func()) {
	c.Register()
	return func() {
		c.Unregister()
		c.Stop()
	}
}

// Go runs fn on a new registered goroutine, unregistering when it
// returns. The actor is counted before Go returns, so time cannot slip
// past the spawn.
func (c *VirtualClock) Go(fn func()) {
	c.Register()
	go func() {
		defer c.Unregister()
		fn()
	}()
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return virtualEpoch.Add(c.now)
}

// Since returns the virtual time elapsed since t.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// scheduleLocked enqueues fn at now+d. Callers must hold mu.
func (c *VirtualClock) scheduleLocked(d time.Duration, fn func()) *event {
	if d < 0 {
		d = 0
	}
	ev := &event{at: c.now + d, seq: c.seq, fn: fn}
	c.seq++
	c.q.push(ev)
	c.cond.Broadcast()
	return ev
}

// Sleep blocks the calling actor for d of virtual time. The wake-up is
// an ordinary event: sleeps expiring at the same instant as other work
// interleave in FIFO schedule order.
//
// The caller must be a registered actor. The panic below is a
// best-effort guard: it fires only when every registered actor is
// already blocked, because the clock tracks counts, not goroutine
// identities — a Sleep from an unregistered goroutine while some actor
// is still runnable is undetectable here and corrupts quiescence
// accounting. Keep the registration discipline.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	c.mu.Lock()
	if c.runnable < 1 {
		c.mu.Unlock()
		panic(fmt.Sprintf("simtime: Sleep(%v) on virtual clock from unregistered goroutine", d))
	}
	// The wake-up increments runnable before the sleeper can resume, so
	// the scheduler never advances past a wake it just delivered.
	c.scheduleLocked(d, func() {
		c.mu.Lock()
		c.runnable++
		c.mu.Unlock()
		close(ch)
	})
	c.runnable--
	c.cond.Broadcast()
	c.mu.Unlock()
	<-ch
}

// sodWaiter is one SleepOrDone sleeper: a pending timer event plus a
// private wake channel. Exactly one waker — the timer event, Signal, or
// the sleeper's own done-receive — flips woken under the clock mutex and
// closes wake.
type sodWaiter struct {
	ev    *event
	wake  chan struct{}
	woken bool
	fired bool // the timer path woke it (done did not fire first)
}

// SleepOrDone blocks the calling actor until d of virtual time passes or
// done fires, whichever comes first, reporting whether done won. Like
// Sleep it is a tracked wait: the scheduler sees the sleeper as blocked,
// so quiescence detection keeps working while migration handoffs (or any
// cancellable waits) are parked here.
//
// Two wake paths exist for done. Signal(done) wakes the sleeper under
// the clock mutex in the same instant as the close — fully deterministic.
// A direct close(done) also wakes it (via an ordinary select), but the
// scheduler may fire already-queued events before the sleeper resumes,
// so the virtual instant it observes on wake-up can trail the close.
// Prefer Signal when determinism matters.
func (c *VirtualClock) SleepOrDone(d time.Duration, done <-chan struct{}) bool {
	if done != nil {
		select {
		case <-done:
			return true
		default:
		}
	}
	if d <= 0 {
		return false
	}
	w := &sodWaiter{wake: make(chan struct{})}
	c.mu.Lock()
	if c.runnable < 1 {
		c.mu.Unlock()
		panic(fmt.Sprintf("simtime: SleepOrDone(%v) on virtual clock from unregistered goroutine", d))
	}
	w.ev = c.scheduleLocked(d, func() {
		c.mu.Lock()
		if w.woken {
			c.mu.Unlock()
			return
		}
		w.woken = true
		w.fired = true
		c.dropWaiterLocked(done, w)
		c.runnable++
		c.mu.Unlock()
		close(w.wake)
	})
	if done != nil {
		if c.waiters == nil {
			c.waiters = make(map[<-chan struct{}][]*sodWaiter)
		}
		c.waiters[done] = append(c.waiters[done], w)
	}
	c.runnable--
	c.cond.Broadcast()
	c.mu.Unlock()

	select {
	case <-w.wake:
		return !w.fired
	case <-done:
		// Direct close (not via Signal): claim the wake ourselves unless
		// the timer or Signal already did.
		c.mu.Lock()
		if w.woken {
			c.mu.Unlock()
			<-w.wake
			return !w.fired
		}
		w.woken = true
		c.q.remove(w.ev)
		c.dropWaiterLocked(done, w)
		c.runnable++
		c.cond.Broadcast()
		c.mu.Unlock()
		close(w.wake)
		return true
	}
}

// dropWaiterLocked removes w from the done channel's waiter list. Callers
// hold mu.
func (c *VirtualClock) dropWaiterLocked(done <-chan struct{}, w *sodWaiter) {
	if done == nil {
		return
	}
	ws := c.waiters[done]
	for i, o := range ws {
		if o == w {
			c.waiters[done] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(c.waiters[done]) == 0 {
		delete(c.waiters, done)
	}
}

// Signal closes ch after synchronously waking every SleepOrDone sleeper
// parked on it: cancelled timers are removed and the sleepers become
// runnable under the clock mutex, so the scheduler cannot advance virtual
// time between the signal and the wake-ups. This is the deterministic way
// to cancel a tracked wait; ch must not be closed by anyone else.
func (c *VirtualClock) Signal(ch chan struct{}) {
	var recv <-chan struct{} = ch
	c.mu.Lock()
	ws := c.waiters[recv]
	delete(c.waiters, recv)
	claimed := ws[:0]
	for _, w := range ws {
		if w.woken {
			continue
		}
		w.woken = true
		c.q.remove(w.ev)
		c.runnable++
		claimed = append(claimed, w)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	close(ch)
	for _, w := range claimed {
		close(w.wake)
	}
}

// After returns a channel receiving the virtual timestamp once d has
// passed. See the Clock interface note: the receive is untracked.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.AfterFunc(d, func() { ch <- c.Now() })
	return ch
}

// AfterFunc schedules fn to run on the scheduler goroutine after d of
// virtual time.
func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &virtualTimer{c: c, ev: c.scheduleLocked(d, fn)}
}

type virtualTimer struct {
	c  *VirtualClock
	ev *event
}

// Stop cancels the pending event, reporting whether it had not yet
// fired.
func (t *virtualTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	return t.c.q.remove(t.ev)
}

// PendingEvents returns the number of scheduled, unfired events —
// diagnostic surface for tests and scenario reports.
func (c *VirtualClock) PendingEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q.len()
}
