package simtime

import "time"

// Domain identifies a deterministic event source. The sharded data
// plane partitions the simulation into per-node domains (Domain(nodeID))
// plus one Control domain for everything driven by harness goroutines
// and scheduler-context callbacks (sweeps, detectors, migration phases,
// fault plans). Each domain's event stream is executed serially, so a
// per-domain schedule counter is enough to make the global event order
// a pure function of the event history — independent of how many shards
// execute it and of goroutine scheduling.
type Domain int32

// Control is the domain of harness- and scheduler-context work. Control
// events at an instant order before any node-domain event at the same
// instant, which matches the barrier semantics of the sharded clock:
// control work runs between parallel windows, never inside them.
const Control Domain = -1

// domainSeqBits splits the packed event key: the high bits carry
// origin+1 (Control packs to 0, so control events sort first within an
// instant), the low 44 bits carry the per-domain schedule counter. The
// split supports ~1M domains and 2^44 events per domain — far past any
// scenario here — while keeping the key a single uint64 so the event
// queues compare exactly as before.
const domainSeqBits = 44

// DomainClock is the optional Clock extension the sharded data plane
// requires: scheduling stamped with an explicit origin domain, reading
// the origin's local time, and deterministic deferred observation.
// Both the virtual clock and the real clock implement it.
type DomainClock interface {
	Clock

	// ScheduleDomain schedules fn to run after d, keyed as the next
	// event of origin and executed in exec's shard. During a parallel
	// window the caller must be running in origin's shard (every
	// converted call site acts as the origin node); outside windows any
	// context may call it. Control exec means the scheduler/coordinator
	// context.
	ScheduleDomain(origin, exec Domain, d time.Duration, fn func()) Timer

	// DomainNow returns the current time as seen from origin's
	// execution context: inside a parallel window, the shard-local
	// event time; otherwise the global clock time.
	DomainNow(origin Domain) time.Time

	// Observe defers fn to the next synchronization point, where all
	// deferred observations run serially in deterministic
	// (time, event-key, emission-index) order; fn receives the virtual
	// time of the observing event. Outside a parallel window fn runs
	// inline. This is how shard-context code feeds order-sensitive
	// shared state (the tracer, detector timestamps) without races and
	// without perturbing the bit-identical contract.
	Observe(origin Domain, fn func(at time.Time))
}

// realClock's DomainClock implementation: wall time has no shards, so
// everything degenerates to the plain calls.

func (realClock) ScheduleDomain(origin, exec Domain, d time.Duration, fn func()) Timer {
	return realClock{}.AfterFunc(d, fn)
}

func (realClock) DomainNow(Domain) time.Time { return time.Now() }

func (realClock) Observe(_ Domain, fn func(at time.Time)) { fn(time.Now()) }

// AsDomainClock returns c as a DomainClock. Every Clock in this package
// implements the extension; external Clock implementations fall back to
// a wrapper that ignores domains (origin-blind, always inline).
func AsDomainClock(c Clock) DomainClock {
	if dc, ok := c.(DomainClock); ok {
		return dc
	}
	return blindDomainClock{c}
}

type blindDomainClock struct{ Clock }

func (b blindDomainClock) ScheduleDomain(_, _ Domain, d time.Duration, fn func()) Timer {
	return b.AfterFunc(d, fn)
}

func (b blindDomainClock) DomainNow(Domain) time.Time { return b.Now() }

func (b blindDomainClock) Observe(_ Domain, fn func(at time.Time)) { fn(b.Now()) }
