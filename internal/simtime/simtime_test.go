package simtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClock returns a virtual clock with the test goroutine
// registered as the driving actor.
func newTestClock(t *testing.T) *VirtualClock {
	t.Helper()
	c := NewVirtual()
	c.Register()
	t.Cleanup(func() {
		c.Unregister()
		c.Stop()
	})
	return c
}

func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	c := newTestClock(t)
	start := c.Now()
	wall := time.Now()
	c.Sleep(10 * time.Second)
	if elapsed := time.Since(wall); elapsed > 2*time.Second {
		t.Fatalf("virtual 10s sleep took %v of wall time", elapsed)
	}
	if got := c.Since(start); got != 10*time.Second {
		t.Fatalf("virtual elapsed = %v, want exactly 10s", got)
	}
}

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	if !c.Now().Equal(virtualEpoch) {
		t.Fatalf("fresh clock at %v, want %v", c.Now(), virtualEpoch)
	}
}

func TestAfterFuncFiresAtScheduledTime(t *testing.T) {
	c := newTestClock(t)
	var fired time.Time
	c.AfterFunc(250*time.Millisecond, func() { fired = c.Now() })
	c.Sleep(time.Second)
	want := virtualEpoch.Add(250 * time.Millisecond)
	if !fired.Equal(want) {
		t.Fatalf("event fired at %v, want %v", fired, want)
	}
}

func TestFIFOTieBreakAtEqualTimestamps(t *testing.T) {
	c := newTestClock(t)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Sleep(2 * time.Second)
	if len(order) != 10 {
		t.Fatalf("fired %d/10 events", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at one instant fired out of schedule order: %v", order)
		}
	}
}

func TestTimerStopCancels(t *testing.T) {
	c := newTestClock(t)
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported not pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending")
	}
	c.Sleep(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if c.PendingEvents() != 0 {
		t.Fatalf("%d events pending after cancel and drain", c.PendingEvents())
	}
}

func TestEventCascadeRunsBeforeTimeAdvances(t *testing.T) {
	c := newTestClock(t)
	var at []time.Duration
	// An event at t=1s chains two zero-delay events; all three must run
	// at t=1s, before the sleeper wakes at 5s.
	c.AfterFunc(time.Second, func() {
		at = append(at, c.Since(virtualEpoch.Add(0)))
		c.AfterFunc(0, func() {
			at = append(at, c.Since(virtualEpoch.Add(0)))
			c.AfterFunc(0, func() { at = append(at, c.Since(virtualEpoch.Add(0))) })
		})
	})
	c.Sleep(5 * time.Second)
	if len(at) != 3 {
		t.Fatalf("ran %d/3 cascade events", len(at))
	}
	for i, d := range at {
		if d != time.Second {
			t.Fatalf("cascade event %d ran at %v, want 1s", i, d)
		}
	}
}

func TestAfterDeliversTimestamp(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	ch := c.After(3 * time.Second)
	// The receive is untracked, so drive time from a registered actor.
	done := make(chan time.Time)
	go func() { done <- <-ch }()
	c.Register()
	c.Sleep(4 * time.Second)
	c.Unregister()
	got := <-done
	if want := virtualEpoch.Add(3 * time.Second); !got.Equal(want) {
		t.Fatalf("After delivered %v, want %v", got, want)
	}
}

func TestTwoActorsWakeInTimestampOrder(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	wg.Add(2)
	c.Go(func() {
		defer wg.Done()
		c.Sleep(2 * time.Second)
		mu.Lock()
		order = append(order, "late")
		mu.Unlock()
	})
	c.Go(func() {
		defer wg.Done()
		c.Sleep(1 * time.Second)
		mu.Lock()
		order = append(order, "early")
		mu.Unlock()
	})
	wg.Wait()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("wake order = %v, want [early late]", order)
	}
	if got := c.Since(virtualEpoch); got != 2*time.Second {
		t.Fatalf("clock at +%v, want +2s", got)
	}
}

// TestDeterministicEventOrder schedules a pseudo-random workload twice
// and demands bit-identical firing order — the property the simulation
// scenarios rely on for same-seed reproducibility.
func TestDeterministicEventOrder(t *testing.T) {
	run := func() []int {
		c := NewVirtual()
		defer c.Stop()
		c.Register()
		defer c.Unregister()
		rng := rand.New(rand.NewSource(42))
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			// Coarse delays force many timestamp collisions.
			d := time.Duration(rng.Intn(5)) * time.Second
			c.AfterFunc(d, func() {
				order = append(order, i)
				if i%3 == 0 {
					j := 1000 + i
					c.AfterFunc(time.Duration(rng.Intn(2))*time.Second, func() {
						order = append(order, j)
					})
				}
			})
		}
		c.Sleep(20 * time.Second)
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestManyActorsUnderRace exercises concurrent registration, sleeping,
// and event scheduling; run with -race it validates the scheduler's
// synchronization.
func TestManyActorsUnderRace(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	var total sync.Map
	var wg sync.WaitGroup
	for a := 0; a < 8; a++ {
		a := a
		wg.Add(1)
		c.Go(func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.Sleep(time.Duration(1+a) * time.Millisecond)
			}
			total.Store(a, c.Now())
		})
	}
	wg.Wait()
	// The clock must sit at the latest actor's finish line: 8*50ms.
	if got := c.Since(virtualEpoch); got != 400*time.Millisecond {
		t.Fatalf("clock at +%v, want +400ms", got)
	}
}

func TestSleepZeroOrNegativeReturns(t *testing.T) {
	c := newTestClock(t)
	c.Sleep(0)
	c.Sleep(-time.Second)
	if got := c.Since(virtualEpoch); got != 0 {
		t.Fatalf("clock moved to +%v on non-positive sleeps", got)
	}
}

func TestSleepUnregisteredPanics(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("Sleep from unregistered goroutine did not panic")
		}
	}()
	c.Sleep(time.Second)
}

func TestSleepOrDoneTimerPath(t *testing.T) {
	c := newTestClock(t)
	done := make(chan struct{})
	if c.SleepOrDone(3*time.Second, done) {
		t.Fatal("SleepOrDone reported done fired; nothing fired it")
	}
	if got := c.Since(virtualEpoch); got != 3*time.Second {
		t.Fatalf("clock at +%v after full SleepOrDone, want +3s", got)
	}
	if c.PendingEvents() != 0 {
		t.Fatalf("%d events pending after timer wake", c.PendingEvents())
	}
}

func TestSleepOrDoneSignalWakesDeterministically(t *testing.T) {
	c := newTestClock(t)
	done := make(chan struct{})
	// An event at t=1s signals the waiter; decoy events at the same and a
	// later instant must not run before the sleeper observes the wake
	// time (Signal makes the waiter runnable under the clock mutex, so
	// the scheduler parks before firing anything later).
	var lateFired bool
	c.AfterFunc(time.Second, func() { c.Signal(done) })
	c.AfterFunc(2*time.Second, func() { lateFired = true })
	if !c.SleepOrDone(10*time.Second, done) {
		t.Fatal("SleepOrDone missed the signal")
	}
	if got := c.Since(virtualEpoch); got != time.Second {
		t.Fatalf("woke at +%v, want exactly +1s (the Signal instant)", got)
	}
	if lateFired {
		t.Fatal("event after the signal instant fired before the sleeper resumed")
	}
	if c.PendingEvents() != 1 {
		t.Fatalf("%d events pending, want 1 (the 2s decoy)", c.PendingEvents())
	}
	c.Sleep(2 * time.Second) // drain the decoy
}

func TestSleepOrDoneAlreadyFired(t *testing.T) {
	c := newTestClock(t)
	done := make(chan struct{})
	close(done)
	if !c.SleepOrDone(time.Second, done) {
		t.Fatal("SleepOrDone ignored an already-fired done channel")
	}
	if got := c.Since(virtualEpoch); got != 0 {
		t.Fatalf("clock moved to +%v on a pre-fired done", got)
	}
}

func TestSleepOrDoneNilChannelBehavesLikeSleep(t *testing.T) {
	c := newTestClock(t)
	if c.SleepOrDone(time.Second, nil) {
		t.Fatal("nil done reported fired")
	}
	if got := c.Since(virtualEpoch); got != time.Second {
		t.Fatalf("clock at +%v, want +1s", got)
	}
}

func TestSleepOrDoneDirectCloseWakes(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	done := make(chan struct{})
	var woke bool
	var claimed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	c.Go(func() {
		defer wg.Done()
		woke = c.SleepOrDone(time.Hour, done)
		claimed.Store(true)
	})
	// A second actor closes done directly mid-sleep; the waiter must
	// resume (possibly a few queued events later) without the hour
	// passing. The closer keeps driving small sleeps until the waiter
	// has resumed so the fallback timer stays far out of reach.
	c.Go(func() {
		c.Sleep(time.Second)
		close(done)
		for !claimed.Load() {
			c.Sleep(time.Millisecond)
		}
	})
	wg.Wait()
	if !woke {
		t.Fatal("direct close did not report done")
	}
	if got := c.Since(virtualEpoch); got >= time.Hour {
		t.Fatalf("clock ran to +%v; cancellation did not cut the sleep", got)
	}
}

// TestSleepOrDoneQuiescenceWithBlockedWaiter is the contract test for
// the ROADMAP item: a registered actor parked in SleepOrDone must count
// as blocked, so other actors' time keeps moving (no scheduler
// deadlock), and the waiter's timer keeps quiescence exact.
func TestSleepOrDoneQuiescenceWithBlockedWaiter(t *testing.T) {
	c := NewVirtual()
	defer c.Stop()
	done := make(chan struct{})
	var waiterWoke time.Duration
	var wg sync.WaitGroup
	wg.Add(2)
	c.Go(func() {
		defer wg.Done()
		c.SleepOrDone(30*time.Second, done)
		waiterWoke = c.Since(virtualEpoch)
	})
	c.Go(func() {
		defer wg.Done()
		// Time must advance through many small sleeps while the other
		// actor is parked in SleepOrDone — quiescence detection sees it
		// as blocked, not runnable.
		for i := 0; i < 10; i++ {
			c.Sleep(time.Second)
		}
		c.Signal(done)
	})
	wg.Wait()
	if waiterWoke != 10*time.Second {
		t.Fatalf("waiter woke at +%v, want +10s (the Signal instant)", waiterWoke)
	}
}

func TestSleepOrDoneTimerBeatsLaterSignal(t *testing.T) {
	c := newTestClock(t)
	done := make(chan struct{})
	if c.SleepOrDone(time.Second, done) {
		t.Fatal("done reported fired before anything signalled")
	}
	// Signalling after the timer won must not panic or wake anyone.
	c.Signal(done)
	if got := c.Since(virtualEpoch); got != time.Second {
		t.Fatalf("clock at +%v, want +1s", got)
	}
}

func TestRealClockSleepOrDone(t *testing.T) {
	c := Real()
	done := make(chan struct{})
	close(done)
	if !c.SleepOrDone(time.Minute, done) {
		t.Fatal("real SleepOrDone ignored fired done")
	}
	if c.SleepOrDone(time.Millisecond, make(chan struct{})) {
		t.Fatal("real SleepOrDone reported done on timer expiry")
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	if IsVirtual(c) {
		t.Fatal("real clock reported virtual")
	}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not advance")
	}
	fired := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported pending")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("real After never fired")
	}
}
