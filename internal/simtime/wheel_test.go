package simtime

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestWheelQueueDifferential replays an identical random op sequence —
// pushes with clustered and dispersed timestamps, removals of random
// pending events, pops — against the wheel and the reference heap and
// demands the exact same (at, seq) pop order. This is the core
// exactness property: the wheel is not an approximation of the heap, it
// IS the heap's order at lower cost.
func TestWheelQueueDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			heapQ := &heapQueue{}
			wheelQ := newWheelQueue()

			type pair struct{ h, w *event }
			var pending []pair
			var now time.Duration
			var seq uint64

			push := func(at time.Duration) {
				h := &event{at: at, seq: seq}
				w := &event{at: at, seq: seq}
				seq++
				heapQ.push(h)
				wheelQ.push(w)
				pending = append(pending, pair{h, w})
			}
			pop := func() {
				if heapQ.len() == 0 {
					return
				}
				h := heapQ.popMin()
				w := wheelQ.popMin()
				if h.at != w.at || h.seq != w.seq {
					t.Fatalf("pop mismatch: heap (%v, %d) vs wheel (%v, %d)", h.at, h.seq, w.at, w.seq)
				}
				if h.at > now {
					now = h.at
				}
				for i, p := range pending {
					if p.h == h {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
			}

			for i := 0; i < 20000; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // push, mixed scales to exercise every level
					var d time.Duration
					switch rng.Intn(4) {
					case 0:
						d = time.Duration(rng.Intn(3)) * 500 * time.Nanosecond // sub-tick clustering
					case 1:
						d = time.Duration(rng.Intn(1000)) * time.Microsecond
					case 2:
						d = time.Duration(rng.Intn(1000)) * time.Millisecond
					default:
						d = time.Duration(rng.Intn(3600)) * time.Second
					}
					push(now + d)
				case op < 8:
					pop()
				default: // remove a random pending event from both
					if len(pending) == 0 {
						continue
					}
					i := rng.Intn(len(pending))
					p := pending[i]
					if !heapQ.remove(p.h) || !wheelQ.remove(p.w) {
						t.Fatal("remove of pending event reported not queued")
					}
					if heapQ.remove(p.h) || wheelQ.remove(p.w) {
						t.Fatal("second remove reported still queued")
					}
					pending = append(pending[:i], pending[i+1:]...)
				}
				if heapQ.len() != wheelQ.len() {
					t.Fatalf("len mismatch: heap %d wheel %d", heapQ.len(), wheelQ.len())
				}
			}
			for heapQ.len() > 0 {
				pop()
			}
			if wheelQ.len() != 0 {
				t.Fatalf("wheel retains %d events after drain", wheelQ.len())
			}
		})
	}
}

// clockScript drives one VirtualClock through a deterministic
// pseudo-random workload covering the full scheduling surface —
// AfterFunc fires, timer Stop (both successful and too-late), Sleep,
// SleepOrDone won by the timer, and SleepOrDone cancelled via Signal —
// and returns the observed event log. Every log line embeds the virtual
// timestamp, so two clocks agree only if their fire orders are
// identical down to (timestamp, seq) ties.
func clockScript(clk *VirtualClock, seed int64) []string {
	var mu sync.Mutex
	var log []string
	logf := func(format string, args ...any) {
		mu.Lock()
		log = append(log, fmt.Sprintf("%d "+format, append([]any{clk.Now().UnixNano()}, args...)...))
		mu.Unlock()
	}

	rng := rand.New(rand.NewSource(seed))
	release := clk.Drive()
	defer release()

	var timers []Timer
	for i := 0; i < 400; i++ {
		id := i
		switch rng.Intn(6) {
		case 0, 1: // schedule a fire
			d := time.Duration(rng.Intn(5000)) * time.Microsecond
			timers = append(timers, clk.AfterFunc(d, func() { logf("fire %d", id) }))
		case 2: // stop a random earlier timer
			if len(timers) > 0 {
				j := rng.Intn(len(timers))
				logf("stop %d = %v", j, timers[j].Stop())
			}
		case 3: // plain sleep
			clk.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
			logf("slept %d", id)
		case 4: // SleepOrDone won by the timer (signal arrives later)
			ch := make(chan struct{})
			clk.AfterFunc(time.Duration(1500+rng.Intn(500))*time.Microsecond, func() { clk.Signal(ch) })
			got := clk.SleepOrDone(time.Duration(rng.Intn(1000))*time.Microsecond, ch)
			logf("sod-timer %d = %v", id, got)
		default: // SleepOrDone cancelled by Signal
			ch := make(chan struct{})
			clk.AfterFunc(time.Duration(rng.Intn(500))*time.Microsecond, func() { clk.Signal(ch) })
			got := clk.SleepOrDone(time.Duration(1000+rng.Intn(1000))*time.Microsecond, ch)
			logf("sod-signal %d = %v", id, got)
		}
	}
	// Drain whatever is still pending so late fires are compared too.
	clk.Sleep(10 * time.Second)
	logf("done pending=%d", clk.PendingEvents())
	return log
}

// TestWheelClockDifferential runs the same seeded scheduling script on
// a wheel-backed clock and on the reference heap-backed clock and
// requires byte-identical event logs — the end-to-end determinism
// guarantee the bit-identity experiment tests (X8/X11/X16) build on.
func TestWheelClockDifferential(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		wheelClk := NewVirtual()
		wheelLog := clockScript(wheelClk, seed)
		wheelClk.Stop()

		heapClk := NewVirtualReference()
		heapLog := clockScript(heapClk, seed)
		heapClk.Stop()

		if len(wheelLog) != len(heapLog) {
			t.Fatalf("seed %d: log length wheel=%d heap=%d", seed, len(wheelLog), len(heapLog))
		}
		for i := range wheelLog {
			if wheelLog[i] != heapLog[i] {
				t.Fatalf("seed %d: log[%d] differs:\n  wheel: %s\n  heap:  %s", seed, i, wheelLog[i], heapLog[i])
			}
		}
	}
}

// TestWheelFarFuture exercises the top wheel levels: events hours and
// days of virtual time out must still fire in exact order after
// cascading down through every level.
func TestWheelFarFuture(t *testing.T) {
	q := newWheelQueue()
	ref := &heapQueue{}
	delays := []time.Duration{
		0, time.Nanosecond, time.Microsecond, 65 * time.Microsecond,
		5 * time.Millisecond, 4097 * time.Millisecond, time.Second,
		17 * time.Minute, 3 * time.Hour, 40 * 24 * time.Hour,
	}
	var seq uint64
	for _, rep := range []time.Duration{1, 3} {
		for _, d := range delays {
			at := d * rep
			q.push(&event{at: at, seq: seq})
			ref.push(&event{at: at, seq: seq})
			seq++
		}
	}
	for ref.len() > 0 {
		h, w := ref.popMin(), q.popMin()
		if h.at != w.at || h.seq != w.seq {
			t.Fatalf("far-future order mismatch: heap (%v,%d) wheel (%v,%d)", h.at, h.seq, w.at, w.seq)
		}
	}
}

// benchQueue measures raw schedule+fire throughput with `pending`
// events resident, the regime the 16k-node heartbeat scenario puts the
// kernel in. Each iteration pushes one event and pops the minimum, so
// the queue stays at the target size while both code paths are
// exercised.
func benchQueue(b *testing.B, q eventQueue, pending int) {
	rng := rand.New(rand.NewSource(1))
	var now time.Duration
	var seq uint64
	push := func() {
		q.push(&event{at: now + time.Duration(rng.Intn(10_000_000))*time.Microsecond, seq: seq})
		seq++
	}
	for i := 0; i < pending; i++ {
		push()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push()
		ev := q.popMin()
		if ev.at > now {
			now = ev.at
		}
	}
}

func BenchmarkWheelQueue100kPending(b *testing.B) { benchQueue(b, newWheelQueue(), 100_000) }
func BenchmarkHeapQueue100kPending(b *testing.B)  { benchQueue(b, &heapQueue{}, 100_000) }
func BenchmarkWheelQueue1kPending(b *testing.B)   { benchQueue(b, newWheelQueue(), 1_000) }
func BenchmarkHeapQueue1kPending(b *testing.B)    { benchQueue(b, &heapQueue{}, 1_000) }
