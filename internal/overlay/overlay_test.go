package overlay

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

func lineTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           3,
		IntraStubLatency:    [2]float64{1, 2},
		StubUplinkLatency:   [2]float64{2, 4},
		IntraTransitLatency: [2]float64{5, 10},
	}
	return topology.MustGenerate(cfg, rand.New(rand.NewSource(1)))
}

// virtualNet builds a started virtual-clock network with the test
// goroutine registered as the driving actor: sleeping on the returned
// clock advances simulated time instantly and deterministically.
func virtualNet(t *testing.T) (*Network, *simtime.VirtualClock) {
	t.Helper()
	cfg := VirtualConfig()
	clk := cfg.Clock.(*simtime.VirtualClock)
	clk.Register()
	net := NewNetwork(lineTopo(t), cfg)
	net.Start()
	t.Cleanup(func() {
		net.Stop()
		clk.Unregister()
		clk.Stop()
	})
	return net, clk
}

// settle sleeps past every latency in the (small) test topology so all
// in-flight deliveries have dispatched.
func settle(clk *simtime.VirtualClock) { clk.Sleep(time.Second) }

func TestSendDeliversToHandler(t *testing.T) {
	net, clk := virtualNet(t)

	var got []Message
	net.Node(1).Register("test", func(m Message) { got = append(got, m) })
	if err := net.Node(0).Send(1, "test", 2.5, "hello"); err != nil {
		t.Fatal(err)
	}
	settle(clk)
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	m := got[0]
	if m.From != 0 || m.To != 1 || m.Payload.(string) != "hello" || m.SizeKB != 2.5 {
		t.Fatalf("message = %+v", m)
	}
}

func TestVirtualDeliveryAtExactLatency(t *testing.T) {
	net, clk := virtualNet(t)
	topo := net.topo

	// Farthest pair gives the largest delay to verify.
	var a, b topology.NodeID
	worst := 0.0
	for i := 0; i < topo.NumNodes(); i++ {
		for j := 0; j < topo.NumNodes(); j++ {
			if l := topo.Latency(topology.NodeID(i), topology.NodeID(j)); l > worst {
				worst, a, b = l, topology.NodeID(i), topology.NodeID(j)
			}
		}
	}
	var arrived time.Time
	var sent time.Time
	net.Node(b).Register("lat", func(m Message) {
		arrived = clk.Now()
		sent = m.SentAt
	})
	if err := net.Node(a).Send(b, "lat", 1, nil); err != nil {
		t.Fatal(err)
	}
	settle(clk)
	if arrived.IsZero() {
		t.Fatal("message not delivered")
	}
	want := time.Duration(worst * float64(net.Config().TimeScale))
	if got := arrived.Sub(sent); got != want {
		t.Fatalf("virtual delivery took %v, want exactly %v (latency %.1f ms)", got, want, worst)
	}
}

func TestSendToSelf(t *testing.T) {
	net, clk := virtualNet(t)
	delivered := 0
	net.Node(3).Register("self", func(Message) { delivered++ })
	if err := net.Node(3).Send(3, "self", 1, nil); err != nil {
		t.Fatal(err)
	}
	settle(clk)
	if delivered != 1 {
		t.Fatalf("self message delivered %d times", delivered)
	}
}

func TestSendInvalidDestination(t *testing.T) {
	net, _ := virtualNet(t)
	if err := net.Node(0).Send(99, "x", 1, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestUnroutedMessageCounted(t *testing.T) {
	net, clk := virtualNet(t)
	if err := net.Node(0).Send(1, "nobody-home", 1, nil); err != nil {
		t.Fatal(err)
	}
	settle(clk)
	if got := net.Metrics.Counter("msgs.unrouted").Value(); got != 1 {
		t.Fatalf("msgs.unrouted = %v, want 1", got)
	}
}

func TestMetricsAccounting(t *testing.T) {
	net, clk := virtualNet(t)
	topo := net.topo
	delivered := 0
	net.Node(2).Register("m", func(Message) { delivered++ })
	const sends = 5
	for i := 0; i < sends; i++ {
		if err := net.Node(0).Send(2, "m", 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	settle(clk)
	if delivered != sends {
		t.Fatalf("delivered %d, want %d", delivered, sends)
	}
	if got := net.Metrics.Counter("msgs.sent").Value(); got != sends {
		t.Fatalf("msgs.sent = %v, want %v", got, sends)
	}
	if got := net.Metrics.Counter("kb.sent").Value(); got != 2*sends {
		t.Fatalf("kb.sent = %v, want %v", got, 2*sends)
	}
	wantUsage := 2.0 * sends * topo.Latency(0, 2)
	if got := net.Metrics.Counter("usage.kbms").Value(); got != wantUsage {
		t.Fatalf("usage.kbms = %v, want %v", got, wantUsage)
	}
}

func TestVirtualSendOrderIsFIFO(t *testing.T) {
	net, clk := virtualNet(t)
	var order []int
	net.Node(1).Register("fifo", func(m Message) { order = append(order, m.Payload.(int)) })
	// Same source, same destination, same latency: arrival order must be
	// send order.
	for i := 0; i < 20; i++ {
		if err := net.Node(0).Send(1, "fifo", 1, i); err != nil {
			t.Fatal(err)
		}
	}
	settle(clk)
	if len(order) != 20 {
		t.Fatalf("delivered %d/20", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v not FIFO", order)
		}
	}
}

func TestVirtualStopDropsPending(t *testing.T) {
	net, clk := virtualNet(t)
	delivered := 0
	net.Node(1).Register("x", func(Message) { delivered++ })
	for i := 0; i < 10; i++ {
		if err := net.Node(0).Send(1, "x", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	net.Stop() // before any latency elapses
	net.Stop() // idempotent
	settle(clk)
	if delivered != 0 {
		t.Fatalf("%d messages delivered after Stop", delivered)
	}
	if got := net.Metrics.Counter("msgs.dropped").Value(); got != 10 {
		t.Fatalf("msgs.dropped = %v, want 10", got)
	}
}

func TestRegisterUnregister(t *testing.T) {
	net, clk := virtualNet(t)
	delivered := 0
	net.Node(1).Register("p", func(Message) { delivered++ })
	_ = net.Node(0).Send(1, "p", 1, nil)
	settle(clk)
	if delivered != 1 {
		t.Fatal("first message lost")
	}
	net.Node(1).Unregister("p")
	_ = net.Node(0).Send(1, "p", 1, nil)
	settle(clk)
	if delivered != 1 {
		t.Fatal("message delivered after Unregister")
	}
	if got := net.Metrics.Counter("msgs.unrouted").Value(); got != 1 {
		t.Fatalf("msgs.unrouted = %v, want 1", got)
	}
}

func TestHeartbeats(t *testing.T) {
	net, clk := virtualNet(t)
	hb := net.StartHeartbeats(100*time.Millisecond, 0.01)
	clk.Sleep(1050 * time.Millisecond) // 10 full intervals
	hb.Stop()
	sent := net.Metrics.Counter("hb.sent").Value()
	nodes := float64(net.topo.NumNodes())
	if want := 10 * nodes; sent != want {
		t.Fatalf("hb.sent = %v, want %v (10 rounds × %v nodes)", sent, want, nodes)
	}
	// All beats eventually arrive (latency ≤ settle window).
	settle(clk)
	if recv := net.Metrics.Counter("hb.recv").Value(); recv != sent {
		t.Fatalf("hb.recv = %v, want %v", recv, sent)
	}
	// No further beats after Stop.
	clk.Sleep(time.Second)
	if got := net.Metrics.Counter("hb.sent").Value(); got != sent {
		t.Fatalf("heartbeats continued after Stop: %v -> %v", sent, got)
	}
}

func TestSimMillis(t *testing.T) {
	net := NewNetwork(lineTopo(t), Config{TimeScale: 100 * time.Microsecond})
	if got := net.SimMillis(time.Millisecond); got != 10 {
		t.Fatalf("SimMillis(1ms) = %v, want 10", got)
	}
}

// --- real-clock coverage: the goroutine-per-node path stays exercised ---

func TestRealClockDeliveryLatencyScales(t *testing.T) {
	topo := lineTopo(t)
	cfg := Config{TimeScale: 200 * time.Microsecond, InboxSize: 64}
	net := NewNetwork(topo, cfg)
	net.Start()
	defer net.Stop()

	// Pick the farthest pair for a measurable delay.
	var a, b topology.NodeID
	worst := 0.0
	for i := 0; i < topo.NumNodes(); i++ {
		for j := 0; j < topo.NumNodes(); j++ {
			if l := topo.Latency(topology.NodeID(i), topology.NodeID(j)); l > worst {
				worst, a, b = l, topology.NodeID(i), topology.NodeID(j)
			}
		}
	}
	got := make(chan time.Duration, 1)
	net.Node(b).Register("lat", func(m Message) { got <- time.Since(m.SentAt) })
	if err := net.Node(a).Send(b, "lat", 1, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		want := time.Duration(worst * float64(cfg.TimeScale))
		if d < want/2 {
			t.Fatalf("delivery took %v, want >= ~%v", d, want)
		}
		if d > want*5+50*time.Millisecond {
			t.Fatalf("delivery took %v, want <= ~%v", d, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestRealClockStopIsIdempotentAndWaits(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	var handled atomic.Int64
	net.Node(1).Register("x", func(Message) { handled.Add(1) })
	for i := 0; i < 100; i++ {
		if err := net.Node(0).Send(1, "x", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	net.Stop()
	net.Stop() // must not panic or deadlock
	delivered := handled.Load()
	dropped := net.Metrics.Counter("msgs.dropped").Value()
	if delivered+int64(dropped) > 100 {
		t.Fatalf("delivered %d + dropped %v exceeds sends", delivered, dropped)
	}
}

func TestRealClockHandlersSerializedPerNode(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	defer net.Stop()

	var inHandler atomic.Int32
	var overlap atomic.Bool
	var count atomic.Int32
	net.Node(4).Register("serial", func(Message) {
		if inHandler.Add(1) > 1 {
			overlap.Store(true)
		}
		time.Sleep(100 * time.Microsecond)
		inHandler.Add(-1)
		count.Add(1)
	})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = net.Node(topology.NodeID(src)).Send(4, "serial", 1, nil)
			}
		}(s)
	}
	wg.Wait()
	deadline := time.After(10 * time.Second)
	for count.Load() < 100 {
		select {
		case <-deadline:
			t.Fatalf("only %d/100 handled", count.Load())
		case <-time.After(time.Millisecond):
		}
	}
	if overlap.Load() {
		t.Fatal("handlers overlapped on one node")
	}
}

func TestRealClockHeartbeatsStop(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	defer net.Stop()
	hb := net.StartHeartbeats(2*time.Millisecond, 0.01)
	deadline := time.After(5 * time.Second)
	for net.Metrics.Counter("hb.recv").Value() < 5 {
		select {
		case <-deadline:
			t.Fatal("no heartbeats received")
		case <-time.After(time.Millisecond):
		}
	}
	hb.Stop()
}

// TestRealClockHeartbeatsAggressiveStop hammers the start/stop window
// with a period so short that beats fire during setup and teardown —
// under -race this pins down the timer-slice synchronization and the
// guarantee that no beat Sends after Stop returns (which would race
// Network.Stop's WaitGroup).
func TestRealClockHeartbeatsAggressiveStop(t *testing.T) {
	for i := 0; i < 20; i++ {
		net := NewNetwork(lineTopo(t), DefaultConfig())
		net.Start()
		hb := net.StartHeartbeats(50*time.Microsecond, 0.01)
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
		hb.Stop()
		hb.Stop() // idempotent
		net.Stop()
	}
}

func TestDownNodeDropsDeliveriesAndRefusesSends(t *testing.T) {
	net, clk := virtualNet(t)
	var got int
	net.Node(1).Register("x", func(Message) { got++ })

	net.SetNodeDown(1, true)
	if !net.NodeDown(1) {
		t.Fatal("NodeDown did not report down")
	}
	if err := net.Node(0).Send(1, "x", 1, nil); err != nil {
		t.Fatalf("send to a down node must still be accepted by the sender: %v", err)
	}
	settle(clk)
	if got != 0 {
		t.Fatal("down node dispatched a delivery")
	}
	if d := net.Metrics.Counter("msgs.down_dropped").Value(); d != 1 {
		t.Fatalf("msgs.down_dropped = %v, want 1", d)
	}

	if err := net.Node(1).Send(0, "x", 1, nil); err == nil {
		t.Fatal("send from a down node succeeded")
	}
	if r := net.Metrics.Counter("msgs.down_refused").Value(); r != 1 {
		t.Fatalf("msgs.down_refused = %v, want 1", r)
	}

	// Re-join: deliveries flow again and no further drops accrue.
	net.SetNodeDown(1, false)
	if err := net.Node(0).Send(1, "x", 1, nil); err != nil {
		t.Fatal(err)
	}
	settle(clk)
	if got != 1 {
		t.Fatalf("re-joined node received %d messages, want 1", got)
	}
	if d := net.Metrics.Counter("msgs.down_dropped").Value(); d != 1 {
		t.Fatalf("msgs.down_dropped moved to %v after rejoin", d)
	}
}

func TestDownNodeHeartbeatAccounting(t *testing.T) {
	net, clk := virtualNet(t)
	net.SetNodeDown(2, true)
	hb := net.StartHeartbeats(100*time.Millisecond, 0.05)
	clk.Sleep(time.Second)
	hb.Stop()
	if d := net.Metrics.Counter("hb.down_dropped").Value(); d == 0 {
		t.Fatal("pings to the down node were not counted as hb.down_dropped")
	}
	if d := net.Metrics.Counter("msgs.down_dropped").Value(); d != 0 {
		t.Fatalf("heartbeat drops leaked into msgs.down_dropped (%v)", d)
	}
	// The down node's own pings are refused, not sent.
	if r := net.Metrics.Counter("msgs.down_refused").Value(); r == 0 {
		t.Fatal("down node's outgoing pings were not refused")
	}
}
