package overlay

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/topology"
)

func lineTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           3,
		IntraStubLatency:    [2]float64{1, 2},
		StubUplinkLatency:   [2]float64{2, 4},
		IntraTransitLatency: [2]float64{5, 10},
	}
	return topology.MustGenerate(cfg, rand.New(rand.NewSource(1)))
}

func TestSendDeliversToHandler(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	defer net.Stop()

	got := make(chan Message, 1)
	net.Node(1).Register("test", func(m Message) { got <- m })
	if err := net.Node(0).Send(1, "test", 2.5, "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.From != 0 || m.To != 1 || m.Payload.(string) != "hello" || m.SizeKB != 2.5 {
			t.Fatalf("message = %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestSendToSelf(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	defer net.Stop()

	got := make(chan struct{}, 1)
	net.Node(3).Register("self", func(Message) { got <- struct{}{} })
	if err := net.Node(3).Send(3, "self", 1, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("self message not delivered")
	}
}

func TestSendInvalidDestination(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	defer net.Stop()
	if err := net.Node(0).Send(99, "x", 1, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestUnroutedMessageCounted(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	if err := net.Node(0).Send(1, "nobody-home", 1, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for net.Metrics.Counter("msgs.unrouted").Value() < 1 {
		select {
		case <-deadline:
			t.Fatal("unrouted counter never incremented")
		case <-time.After(time.Millisecond):
		}
	}
	net.Stop()
}

func TestDeliveryLatencyScales(t *testing.T) {
	topo := lineTopo(t)
	cfg := Config{TimeScale: 200 * time.Microsecond, InboxSize: 64}
	net := NewNetwork(topo, cfg)
	net.Start()
	defer net.Stop()

	// Pick the farthest pair for a measurable delay.
	var a, b topology.NodeID
	worst := 0.0
	for i := 0; i < topo.NumNodes(); i++ {
		for j := 0; j < topo.NumNodes(); j++ {
			if l := topo.Latency(topology.NodeID(i), topology.NodeID(j)); l > worst {
				worst, a, b = l, topology.NodeID(i), topology.NodeID(j)
			}
		}
	}
	got := make(chan time.Duration, 1)
	net.Node(b).Register("lat", func(m Message) { got <- time.Since(m.SentAt) })
	if err := net.Node(a).Send(b, "lat", 1, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		want := time.Duration(worst * float64(cfg.TimeScale))
		if d < want/2 {
			t.Fatalf("delivery took %v, want >= ~%v", d, want)
		}
		if d > want*5+50*time.Millisecond {
			t.Fatalf("delivery took %v, want <= ~%v", d, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestMetricsAccounting(t *testing.T) {
	topo := lineTopo(t)
	net := NewNetwork(topo, DefaultConfig())
	net.Start()
	done := make(chan struct{}, 10)
	net.Node(2).Register("m", func(Message) { done <- struct{}{} })
	const sends = 5
	for i := 0; i < sends; i++ {
		if err := net.Node(0).Send(2, "m", 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("messages lost")
		}
	}
	if got := net.Metrics.Counter("msgs.sent").Value(); got != sends {
		t.Fatalf("msgs.sent = %v, want %v", got, sends)
	}
	if got := net.Metrics.Counter("kb.sent").Value(); got != 2*sends {
		t.Fatalf("kb.sent = %v, want %v", got, 2*sends)
	}
	wantUsage := 2.0 * sends * topo.Latency(0, 2)
	if got := net.Metrics.Counter("usage.kbms").Value(); got != wantUsage {
		t.Fatalf("usage.kbms = %v, want %v", got, wantUsage)
	}
	net.Stop()
}

func TestStopIsIdempotentAndWaits(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	var handled atomic.Int64
	net.Node(1).Register("x", func(Message) { handled.Add(1) })
	for i := 0; i < 100; i++ {
		if err := net.Node(0).Send(1, "x", 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	net.Stop()
	net.Stop() // must not panic or deadlock
	delivered := handled.Load()
	dropped := net.Metrics.Counter("msgs.dropped").Value()
	if delivered+int64(dropped) > 100 {
		t.Fatalf("delivered %d + dropped %v exceeds sends", delivered, dropped)
	}
}

func TestHandlersSerializedPerNode(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	defer net.Stop()

	var inHandler atomic.Int32
	var overlap atomic.Bool
	var count atomic.Int32
	net.Node(4).Register("serial", func(Message) {
		if inHandler.Add(1) > 1 {
			overlap.Store(true)
		}
		time.Sleep(100 * time.Microsecond)
		inHandler.Add(-1)
		count.Add(1)
	})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = net.Node(topology.NodeID(src)).Send(4, "serial", 1, nil)
			}
		}(s)
	}
	wg.Wait()
	deadline := time.After(10 * time.Second)
	for count.Load() < 100 {
		select {
		case <-deadline:
			t.Fatalf("only %d/100 handled", count.Load())
		case <-time.After(time.Millisecond):
		}
	}
	if overlap.Load() {
		t.Fatal("handlers overlapped on one node")
	}
}

func TestRegisterUnregister(t *testing.T) {
	net := NewNetwork(lineTopo(t), DefaultConfig())
	net.Start()
	got := make(chan struct{}, 2)
	net.Node(1).Register("p", func(Message) { got <- struct{}{} })
	_ = net.Node(0).Send(1, "p", 1, nil)
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("first message lost")
	}
	net.Node(1).Unregister("p")
	_ = net.Node(0).Send(1, "p", 1, nil)
	deadline := time.After(2 * time.Second)
	for net.Metrics.Counter("msgs.unrouted").Value() < 1 {
		select {
		case <-deadline:
			t.Fatal("message after Unregister was not counted unrouted")
		case <-time.After(time.Millisecond):
		}
	}
	net.Stop()
}

func TestSimMillis(t *testing.T) {
	net := NewNetwork(lineTopo(t), Config{TimeScale: 100 * time.Microsecond})
	if got := net.SimMillis(time.Millisecond); got != 10 {
		t.Fatalf("SimMillis(1ms) = %v, want 10", got)
	}
}
