package overlay

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

// Randomized differential test for the sharded data plane: seeded
// random topologies, random application traffic (random targets, ports,
// sizes, reply chains), ambient drops and staggered crashes, run once
// on the single event queue and once per shard count on randomized lane
// maps. Every node's received-message log — who, what port, how big,
// sent when, delivered when — must match the single-queue run exactly,
// and the per-shard traffic counters must sum to the registry totals.
// Run it under -race: the parallel windows are exactly where an unsafe
// handler or counter would trip the detector.

// loggedMsg is one delivery as a comparable value.
type loggedMsg struct {
	from    topology.NodeID
	port    string
	sizeKB  float64
	sentAt  time.Time
	gotAt   time.Time
	payload int
}

type diffRun struct {
	logs   [][]loggedMsg
	shards []ShardCounters
	sent   float64
	hbSent float64
	hbRecv float64
	lost   float64
}

// runRandomTraffic executes one seeded scenario on shards randomized
// lanes (1: single queue) and returns the per-node logs plus counters.
func runRandomTraffic(t *testing.T, seed int64, shards int) diffRun {
	t.Helper()
	topoCfg := topology.DefaultConfig()
	topoCfg.StubsPerTransit = 2
	topoCfg.StubNodes = 7 // 16 transit + 4·2·7 stub = 72 nodes
	topo, err := topology.Generate(topoCfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NumNodes()

	clk := simtime.NewVirtual()
	cfg := Config{TimeScale: time.Millisecond, Clock: clk}
	if shards > 1 {
		// Adversarial lane map: uniformly random, no cost-space locality
		// at all — most traffic crosses shards.
		laneRng := rand.New(rand.NewSource(seed * int64(shards)))
		laneOf := make([]int32, n)
		for i := range laneOf {
			laneOf[i] = int32(laneRng.Intn(shards))
		}
		lookahead := time.Duration(topo.MinEdgeLatency() * float64(cfg.TimeScale))
		if lookahead <= 0 {
			t.Fatal("topology has no positive edge latency")
		}
		clk.ShardLanes(laneOf, shards, lookahead)
		cfg.DataShards = shards
		cfg.ShardOf = laneOf
	}
	defer clk.Drive()()
	net := NewNetwork(topo, cfg)
	net.Start()
	defer net.Stop()

	// Every node logs every delivery; a node's handlers execute
	// serially in its own shard, so the per-node slices need no locks —
	// that is itself part of the contract under test (-race enforces it).
	logs := make([][]loggedMsg, n)
	for i := 0; i < n; i++ {
		i := i
		nd := net.Node(topology.NodeID(i))
		log := func(m Message) {
			logs[i] = append(logs[i], loggedMsg{
				from: m.From, port: m.Port, sizeKB: m.SizeKB, sentAt: m.SentAt,
				gotAt: net.NowAt(m.To), payload: m.Payload.(int),
			})
		}
		nd.Register("data", log)
		// "echo" additionally replies — a send from inside a window, as
		// the recipient, to a random-ish target derived from the payload.
		nd.Register("echo", func(m Message) {
			log(m)
			to := topology.NodeID(m.Payload.(int) % n)
			if to != m.To {
				nd.Send(to, "data", 0.5, m.Payload.(int)+1)
			}
		})
	}

	// Staggered crashes plus ambient loss: a third of the run's chaos.
	var crashes []NodeCrash
	crashRng := rand.New(rand.NewSource(seed * 7))
	for i := 0; i < 3; i++ {
		crashes = append(crashes, NodeCrash{
			Node: topology.NodeID(crashRng.Intn(n)),
			At:   time.Duration(200+crashRng.Intn(800)) * time.Millisecond,
		})
	}
	fi := net.InstallFaults(FaultPlan{Seed: seed, DropProb: 0.05, JitterMs: 1.5, Crashes: crashes})
	defer fi.Stop()
	hb := net.StartHeartbeats(150*time.Millisecond, 0.05)
	defer hb.Stop()

	// Per-node producers: each node streams messages to seeded-random
	// targets on seeded-random schedules, exactly the way the engine's
	// virtual producers do — node-domain events on the node's own shard.
	dc := net.DomainClock()
	for i := 0; i < n; i++ {
		i := i
		dom := simtime.Domain(i)
		prng := rand.New(rand.NewSource(seed*131 + int64(i)))
		var step func()
		msgs := 0
		step = func() {
			if msgs >= 40 {
				return
			}
			msgs++
			to := topology.NodeID(prng.Intn(n))
			port := "data"
			if prng.Intn(3) == 0 {
				port = "echo"
			}
			if to != topology.NodeID(i) {
				net.Node(topology.NodeID(i)).Send(to, port, 0.1+prng.Float64(), prng.Intn(1<<20))
			}
			dc.ScheduleDomain(dom, dom, time.Duration(1+prng.Intn(40))*time.Millisecond, step)
		}
		dc.ScheduleDomain(dom, dom, time.Duration(1+prng.Intn(20))*time.Millisecond, step)
	}

	clk.Sleep(3 * time.Second)
	hb.Stop()
	fi.Stop()

	return diffRun{
		logs:   logs,
		shards: net.ShardCounters(),
		sent:   net.Metrics.Counter("msgs.sent").Value(),
		hbSent: net.Metrics.Counter("hb.sent").Value(),
		hbRecv: net.Metrics.Counter("hb.recv").Value(),
		// The per-shard drop counter aggregates data and heartbeat drops;
		// the registry splits them.
		lost: net.Metrics.Counter("faults.dropped").Value() +
			net.Metrics.Counter("faults.hb_dropped").Value(),
	}
}

func TestShardedNetworkMatchesSingleQueueRandomized(t *testing.T) {
	for _, seed := range []int64{1, 42, 9001} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := runRandomTraffic(t, seed, 1)
			total := 0
			for _, l := range base.logs {
				total += len(l)
			}
			if total == 0 {
				t.Fatal("single-queue run delivered nothing — the scenario is vacuous")
			}
			if base.lost == 0 {
				t.Fatal("no injected drops — faults are not engaged")
			}
			for _, shards := range []int{2, 4, 8} {
				got := runRandomTraffic(t, seed, shards)
				compareRuns(t, shards, base, got)
			}
		})
	}
}

func compareRuns(t *testing.T, shards int, base, got diffRun) {
	t.Helper()
	for i := range base.logs {
		a, b := base.logs[i], got.logs[i]
		if len(a) != len(b) {
			t.Errorf("%d shards: node %d logged %d deliveries vs %d single-queue", shards, i, len(b), len(a))
			continue
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("%d shards: node %d delivery %d diverges:\n  single-queue: %+v\n  sharded:      %+v",
					shards, i, j, a[j], b[j])
				break
			}
		}
	}
	if got.sent != base.sent || got.hbSent != base.hbSent || got.hbRecv != base.hbRecv || got.lost != base.lost {
		t.Errorf("%d shards: totals diverge: sent %v/%v hbSent %v/%v hbRecv %v/%v lost %v/%v",
			shards, got.sent, base.sent, got.hbSent, base.hbSent, got.hbRecv, base.hbRecv, got.lost, base.lost)
	}
	// The per-shard counters must decompose the registry totals.
	var sum ShardCounters
	for _, sc := range got.shards {
		sum.MsgsSent += sc.MsgsSent
		sum.HBSent += sc.HBSent
		sum.HBRecv += sc.HBRecv
		sum.FaultsDropped += sc.FaultsDropped
	}
	if float64(sum.MsgsSent) != got.sent {
		t.Errorf("%d shards: per-shard msgsSent sums to %d, registry says %v", shards, sum.MsgsSent, got.sent)
	}
	if float64(sum.HBSent) != got.hbSent {
		t.Errorf("%d shards: per-shard hbSent sums to %d, registry says %v", shards, sum.HBSent, got.hbSent)
	}
	if float64(sum.HBRecv) != got.hbRecv {
		t.Errorf("%d shards: per-shard hbRecv sums to %d, registry says %v", shards, sum.HBRecv, got.hbRecv)
	}
	if float64(sum.FaultsDropped) != got.lost {
		t.Errorf("%d shards: per-shard faultsDropped sums to %d, registry says %v", shards, sum.FaultsDropped, got.lost)
	}
}
