package overlay

import (
	"math/rand"
	"sync"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// FaultPlan scripts unplanned failures: per-message drop probability,
// latency jitter, link cuts, partitions, and scheduled node crashes.
// Everything is derived from Seed and the clock, so the same plan on
// the same virtual-clock scenario replays bit-identically — faults are
// part of the simulation, not noise on top of it.
//
// The plan is declarative; Network.InstallFaults arms it. Relative
// times (LinkFault.At, NodeCrash.At, ...) are measured from the
// install instant.
type FaultPlan struct {
	// Seed drives every probabilistic decision the injector makes.
	Seed int64
	// DropProb is the global per-message drop probability applied to
	// every send (heartbeats included — the detector must ride through
	// ambient loss, that is the point).
	DropProb float64
	// JitterMs adds uniform extra latency in [0, JitterMs) simulated
	// milliseconds to every delivered message.
	JitterMs float64
	// Links are targeted per-link faults (cuts when DropProb == 1).
	Links []LinkFault
	// Partitions cut traffic crossing a group boundary during a window.
	Partitions []PartitionFault
	// Crashes schedules node deaths (and optional recoveries).
	Crashes []NodeCrash
}

// LinkFault degrades one directed link (or both directions) during a
// window. DropProb 1 is a clean cut.
type LinkFault struct {
	From, To      topology.NodeID
	Bidirectional bool
	DropProb      float64
	// At..Until bound the active window relative to install time;
	// Until == 0 means "until the end of the run".
	At, Until time.Duration
}

// PartitionFault cuts every message crossing between Group and the
// rest of the overlay during the window (Until == 0: forever).
type PartitionFault struct {
	Group     []topology.NodeID
	At, Until time.Duration
}

// NodeCrash kills a node at At (SetNodeDown true) and, when RecoverAt
// is positive, revives it at RecoverAt. Crashes are abrupt: no drain,
// no goodbye — in-flight data messages still arrive (they left the
// wire while the node lived), but post-mortem heartbeats are
// suppressed at dispatch so the failure detector is never fooled by a
// beat that outlived its sender.
type NodeCrash struct {
	Node      topology.NodeID
	At        time.Duration
	RecoverAt time.Duration
}

type linkKey struct{ from, to topology.NodeID }

type linkWindow struct {
	prob     float64
	from, to time.Time // zero `to` = open-ended
}

type partitionWindow struct {
	members  map[topology.NodeID]bool
	from, to time.Time
}

// FaultInjector is an armed FaultPlan. It is consulted on the send
// path and exposes the crash schedule (for detection-latency
// measurement) and a side-channel RPC drop oracle for the in-process
// DHT, which has no overlay messages of its own.
type FaultInjector struct {
	net  *Network
	plan FaultPlan

	mu     sync.Mutex
	rng    *rand.Rand // send-path draws (drops, jitter)
	rpcRng *rand.Rand // DHT oracle draws — a separate stream so DHT
	// lookups during planning don't perturb the data-plane sequence
	links      map[linkKey][]linkWindow
	partitions []partitionWindow
	installed  time.Time
	timers     []simtime.Timer
	stopped    bool
	crashAt    map[topology.NodeID]time.Time
	recoverAt  map[topology.NodeID]time.Time
}

// InstallFaults arms the plan on the runtime. Only one injector is
// active at a time; installing replaces (and stops) any previous one.
// New counters: faults.dropped / faults.hb_dropped for injected
// message loss, faults.crashes / faults.recoveries for the node
// schedule.
func (n *Network) InstallFaults(plan FaultPlan) *FaultInjector {
	fi := &FaultInjector{
		net:       n,
		plan:      plan,
		rng:       rand.New(rand.NewSource(plan.Seed)),
		rpcRng:    rand.New(rand.NewSource(plan.Seed*7919 + 1)),
		links:     make(map[linkKey][]linkWindow),
		crashAt:   make(map[topology.NodeID]time.Time),
		recoverAt: make(map[topology.NodeID]time.Time),
		installed: n.clock.Now(),
	}
	abs := func(d time.Duration, open bool) time.Time {
		if open && d == 0 {
			return time.Time{}
		}
		return fi.installed.Add(d)
	}
	for _, lf := range plan.Links {
		w := linkWindow{prob: lf.DropProb, from: abs(lf.At, false), to: abs(lf.Until, true)}
		fi.links[linkKey{lf.From, lf.To}] = append(fi.links[linkKey{lf.From, lf.To}], w)
		if lf.Bidirectional {
			fi.links[linkKey{lf.To, lf.From}] = append(fi.links[linkKey{lf.To, lf.From}], w)
		}
	}
	for _, pf := range plan.Partitions {
		members := make(map[topology.NodeID]bool, len(pf.Group))
		for _, id := range pf.Group {
			members[id] = true
		}
		fi.partitions = append(fi.partitions, partitionWindow{
			members: members, from: abs(pf.At, false), to: abs(pf.Until, true),
		})
	}
	crashes := n.Metrics.Counter("faults.crashes")
	recoveries := n.Metrics.Counter("faults.recoveries")
	for _, c := range plan.Crashes {
		c := c
		fi.timers = append(fi.timers, n.clock.AfterFunc(c.At, func() {
			fi.mu.Lock()
			dead := fi.stopped
			if !dead {
				fi.crashAt[c.Node] = n.clock.Now()
			}
			fi.mu.Unlock()
			if dead {
				return
			}
			n.SetNodeDown(c.Node, true)
			crashes.Inc()
			n.tracer.Load().Emit("overlay", "fault_crash", trace.Int("node", int(c.Node)))
		}))
		if c.RecoverAt > 0 {
			fi.timers = append(fi.timers, n.clock.AfterFunc(c.RecoverAt, func() {
				fi.mu.Lock()
				dead := fi.stopped
				if !dead {
					fi.recoverAt[c.Node] = n.clock.Now()
				}
				fi.mu.Unlock()
				if dead {
					return
				}
				n.SetNodeDown(c.Node, false)
				recoveries.Inc()
				n.tracer.Load().Emit("overlay", "fault_recover", trace.Int("node", int(c.Node)))
			}))
		}
	}
	if prev := n.faults.Swap(fi); prev != nil {
		prev.Stop()
	}
	return fi
}

// ClearFaults disarms the active injector, if any.
func (n *Network) ClearFaults() {
	if prev := n.faults.Swap(nil); prev != nil {
		prev.Stop()
	}
}

// Stop cancels the injector's pending crash/recovery timers. Already
// applied faults stay applied.
func (fi *FaultInjector) Stop() {
	fi.mu.Lock()
	fi.stopped = true
	timers := fi.timers
	fi.timers = nil
	fi.mu.Unlock()
	for _, t := range timers {
		if t != nil {
			t.Stop()
		}
	}
}

// CrashTime returns the clock instant the node was crashed by the
// plan, and whether it has crashed yet.
func (fi *FaultInjector) CrashTime(id topology.NodeID) (time.Time, bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	t, ok := fi.crashAt[id]
	return t, ok
}

// CrashedNodes returns every node the plan has crashed so far, in the
// order the crashes fired.
func (fi *FaultInjector) CrashedNodes() []topology.NodeID {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	ids := make([]topology.NodeID, 0, len(fi.crashAt))
	for id := range fi.crashAt {
		ids = append(ids, id)
	}
	// Map order is random; sort by crash instant, ties by id.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			ta, tb := fi.crashAt[a], fi.crashAt[b]
			if tb.Before(ta) || (tb.Equal(ta) && b < a) {
				ids[j-1], ids[j] = b, a
			} else {
				break
			}
		}
	}
	return ids
}

// RPCOracle returns a deterministic drop oracle for in-process RPC
// layers (the DHT ring): each call draws from a dedicated seeded
// stream and reports whether a message from->to would have been lost,
// honoring the plan's global drop probability and any active
// link/partition cuts.
func (fi *FaultInjector) RPCOracle() func(from, to topology.NodeID) bool {
	return func(from, to topology.NodeID) bool {
		fi.mu.Lock()
		defer fi.mu.Unlock()
		p := fi.effectiveDropLocked(from, to)
		if p <= 0 {
			return false
		}
		if p >= 1 {
			return true
		}
		return fi.rpcRng.Float64() < p
	}
}

// onSend decides the fate of one message: drop (true) or deliver with
// extraMs of injected latency. Called on the send path; under a
// virtual clock sends are serialized on the scheduler/actor
// goroutines, so the draw sequence — and therefore the run — is
// deterministic for a fixed seed.
func (fi *FaultInjector) onSend(from, to topology.NodeID) (drop bool, extraMs float64) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	p := fi.effectiveDropLocked(from, to)
	if p >= 1 {
		return true, 0
	}
	if p > 0 && fi.rng.Float64() < p {
		return true, 0
	}
	if fi.plan.JitterMs > 0 {
		extraMs = fi.rng.Float64() * fi.plan.JitterMs
	}
	return false, extraMs
}

func (fi *FaultInjector) effectiveDropLocked(from, to topology.NodeID) float64 {
	p := fi.plan.DropProb
	now := fi.net.clock.Now()
	active := func(lo, hi time.Time) bool {
		return !now.Before(lo) && (hi.IsZero() || now.Before(hi))
	}
	if ws, ok := fi.links[linkKey{from, to}]; ok {
		for _, w := range ws {
			if active(w.from, w.to) && w.prob > p {
				p = w.prob
			}
		}
	}
	for _, pw := range fi.partitions {
		if active(pw.from, pw.to) && pw.members[from] != pw.members[to] {
			return 1
		}
	}
	return p
}
