package overlay

import (
	"math/rand"
	"sync"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// FaultPlan scripts unplanned failures: per-message drop probability,
// latency jitter, link cuts, partitions, and scheduled node crashes.
// Everything is derived from Seed and the clock, so the same plan on
// the same virtual-clock scenario replays bit-identically — faults are
// part of the simulation, not noise on top of it.
//
// The plan is declarative; Network.InstallFaults arms it. Relative
// times (LinkFault.At, NodeCrash.At, ...) are measured from the
// install instant.
type FaultPlan struct {
	// Seed drives every probabilistic decision the injector makes.
	Seed int64
	// DropProb is the global per-message drop probability applied to
	// every send (heartbeats included — the detector must ride through
	// ambient loss, that is the point).
	DropProb float64
	// JitterMs adds uniform extra latency in [0, JitterMs) simulated
	// milliseconds to every delivered message.
	JitterMs float64
	// Links are targeted per-link faults (cuts when DropProb == 1).
	Links []LinkFault
	// Partitions cut traffic crossing a group boundary during a window.
	Partitions []PartitionFault
	// Crashes schedules node deaths (and optional recoveries).
	Crashes []NodeCrash
}

// LinkFault degrades one directed link (or both directions) during a
// window. DropProb 1 is a clean cut.
type LinkFault struct {
	From, To      topology.NodeID
	Bidirectional bool
	DropProb      float64
	// At..Until bound the active window relative to install time;
	// Until == 0 means "until the end of the run".
	At, Until time.Duration
}

// PartitionFault cuts every message crossing between Group and the
// rest of the overlay during the window (Until == 0: forever).
type PartitionFault struct {
	Group     []topology.NodeID
	At, Until time.Duration
}

// NodeCrash kills a node at At (SetNodeDown true) and, when RecoverAt
// is positive, revives it at RecoverAt. Crashes are abrupt: no drain,
// no goodbye — in-flight data messages still arrive (they left the
// wire while the node lived), but post-mortem heartbeats are
// suppressed at dispatch so the failure detector is never fooled by a
// beat that outlived its sender.
type NodeCrash struct {
	Node      topology.NodeID
	At        time.Duration
	RecoverAt time.Duration
}

type linkKey struct{ from, to topology.NodeID }

type linkWindow struct {
	prob     float64
	from, to time.Time // zero `to` = open-ended
}

type partitionWindow struct {
	members  map[topology.NodeID]bool
	from, to time.Time
}

// FaultInjector is an armed FaultPlan. It is consulted on the send
// path and exposes the crash schedule (for detection-latency
// measurement) and a side-channel RPC drop oracle for the in-process
// DHT, which has no overlay messages of its own.
//
// The send path is lock-free: the link/partition tables are built at
// install time and only read afterwards (published by the atomic
// injector swap), and the probabilistic draws come from sendRng — one
// splitmix64 stream per *source node*, advanced only from that node's
// serial execution context. Per-source streams are what keep fault
// decisions identical between single-queue and sharded execution:
// each node's draw sequence depends only on its own send history, not
// on how sends from different nodes interleave globally.
type FaultInjector struct {
	net  *Network
	plan FaultPlan

	// sendRng[id+1] is node id's private draw state (index 0 is
	// reserved, mirroring Network.sampleCtr's origin indexing).
	sendRng []uint64

	links      map[linkKey][]linkWindow
	partitions []partitionWindow
	installed  time.Time

	mu     sync.Mutex
	rpcRng *rand.Rand // DHT oracle draws — a separate stream so DHT
	// lookups during planning don't perturb the data-plane sequence
	timers    []simtime.Timer
	stopped   bool
	crashAt   map[topology.NodeID]time.Time
	recoverAt map[topology.NodeID]time.Time
}

// splitmix64 advances *s and returns the next value of the stream —
// the standard SplitMix64 finalizer, chosen because one multiply-xor
// chain per draw is cheap enough for the per-message hot path.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// splitmixFloat draws a uniform float64 in [0, 1).
func splitmixFloat(s *uint64) float64 {
	return float64(splitmix64(s)>>11) / (1 << 53)
}

// InstallFaults arms the plan on the runtime. Only one injector is
// active at a time; installing replaces (and stops) any previous one.
// New counters: faults.dropped / faults.hb_dropped for injected
// message loss, faults.crashes / faults.recoveries for the node
// schedule.
func (n *Network) InstallFaults(plan FaultPlan) *FaultInjector {
	fi := &FaultInjector{
		net:       n,
		plan:      plan,
		rpcRng:    rand.New(rand.NewSource(plan.Seed*7919 + 1)),
		links:     make(map[linkKey][]linkWindow),
		crashAt:   make(map[topology.NodeID]time.Time),
		recoverAt: make(map[topology.NodeID]time.Time),
		installed: n.clock.Now(),
	}
	fi.sendRng = make([]uint64, n.NumNodes()+1)
	for i := range fi.sendRng {
		// Decorrelate the per-source streams: hash (seed, source) once
		// so stream i and stream i+1 share no prefix.
		s := uint64(plan.Seed)*0x9e3779b97f4a7c15 ^ (uint64(i)+1)*0xbf58476d1ce4e5b9
		fi.sendRng[i] = splitmix64(&s)
	}
	abs := func(d time.Duration, open bool) time.Time {
		if open && d == 0 {
			return time.Time{}
		}
		return fi.installed.Add(d)
	}
	for _, lf := range plan.Links {
		w := linkWindow{prob: lf.DropProb, from: abs(lf.At, false), to: abs(lf.Until, true)}
		fi.links[linkKey{lf.From, lf.To}] = append(fi.links[linkKey{lf.From, lf.To}], w)
		if lf.Bidirectional {
			fi.links[linkKey{lf.To, lf.From}] = append(fi.links[linkKey{lf.To, lf.From}], w)
		}
	}
	for _, pf := range plan.Partitions {
		members := make(map[topology.NodeID]bool, len(pf.Group))
		for _, id := range pf.Group {
			members[id] = true
		}
		fi.partitions = append(fi.partitions, partitionWindow{
			members: members, from: abs(pf.At, false), to: abs(pf.Until, true),
		})
	}
	crashes := n.Metrics.Counter("faults.crashes")
	recoveries := n.Metrics.Counter("faults.recoveries")
	for _, c := range plan.Crashes {
		c := c
		fi.timers = append(fi.timers, n.clock.AfterFunc(c.At, func() {
			fi.mu.Lock()
			dead := fi.stopped
			if !dead {
				fi.crashAt[c.Node] = n.clock.Now()
			}
			fi.mu.Unlock()
			if dead {
				return
			}
			n.SetNodeDown(c.Node, true)
			crashes.Inc()
			n.tracer.Load().Emit("overlay", "fault_crash", trace.Int("node", int(c.Node)))
		}))
		if c.RecoverAt > 0 {
			fi.timers = append(fi.timers, n.clock.AfterFunc(c.RecoverAt, func() {
				fi.mu.Lock()
				dead := fi.stopped
				if !dead {
					fi.recoverAt[c.Node] = n.clock.Now()
				}
				fi.mu.Unlock()
				if dead {
					return
				}
				n.SetNodeDown(c.Node, false)
				recoveries.Inc()
				n.tracer.Load().Emit("overlay", "fault_recover", trace.Int("node", int(c.Node)))
			}))
		}
	}
	if prev := n.faults.Swap(fi); prev != nil {
		prev.Stop()
	}
	return fi
}

// ClearFaults disarms the active injector, if any.
func (n *Network) ClearFaults() {
	if prev := n.faults.Swap(nil); prev != nil {
		prev.Stop()
	}
}

// Stop cancels the injector's pending crash/recovery timers. Already
// applied faults stay applied.
func (fi *FaultInjector) Stop() {
	fi.mu.Lock()
	fi.stopped = true
	timers := fi.timers
	fi.timers = nil
	fi.mu.Unlock()
	for _, t := range timers {
		if t != nil {
			t.Stop()
		}
	}
}

// CrashTime returns the clock instant the node was crashed by the
// plan, and whether it has crashed yet.
func (fi *FaultInjector) CrashTime(id topology.NodeID) (time.Time, bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	t, ok := fi.crashAt[id]
	return t, ok
}

// CrashedNodes returns every node the plan has crashed so far, in the
// order the crashes fired.
func (fi *FaultInjector) CrashedNodes() []topology.NodeID {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	ids := make([]topology.NodeID, 0, len(fi.crashAt))
	for id := range fi.crashAt {
		ids = append(ids, id)
	}
	// Map order is random; sort by crash instant, ties by id.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			ta, tb := fi.crashAt[a], fi.crashAt[b]
			if tb.Before(ta) || (tb.Equal(ta) && b < a) {
				ids[j-1], ids[j] = b, a
			} else {
				break
			}
		}
	}
	return ids
}

// RPCOracle returns a deterministic drop oracle for in-process RPC
// layers (the DHT ring): each call draws from a dedicated seeded
// stream and reports whether a message from->to would have been lost,
// honoring the plan's global drop probability and any active
// link/partition cuts.
func (fi *FaultInjector) RPCOracle() func(from, to topology.NodeID) bool {
	return func(from, to topology.NodeID) bool {
		fi.mu.Lock()
		defer fi.mu.Unlock()
		p := fi.effectiveDrop(from, to, fi.net.clock.Now())
		if p <= 0 {
			return false
		}
		if p >= 1 {
			return true
		}
		return fi.rpcRng.Float64() < p
	}
}

// onSend decides the fate of one message sent at `now`: drop (true) or
// deliver with extraMs of injected latency. Called on the send path in
// the sender's execution context (its shard lane, under sharded
// execution) — lock-free, drawing only from the sender's private
// stream, so the decision sequence is a pure function of each node's
// own send history and replays identically however lanes interleave.
func (fi *FaultInjector) onSend(from, to topology.NodeID, now time.Time) (drop bool, extraMs float64) {
	rng := &fi.sendRng[int(from)+1]
	p := fi.effectiveDrop(from, to, now)
	if p >= 1 {
		return true, 0
	}
	if p > 0 && splitmixFloat(rng) < p {
		return true, 0
	}
	if fi.plan.JitterMs > 0 {
		extraMs = splitmixFloat(rng) * fi.plan.JitterMs
	}
	return false, extraMs
}

// effectiveDrop reads only install-time tables; safe from any context.
func (fi *FaultInjector) effectiveDrop(from, to topology.NodeID, now time.Time) float64 {
	p := fi.plan.DropProb
	active := func(lo, hi time.Time) bool {
		return !now.Before(lo) && (hi.IsZero() || now.Before(hi))
	}
	if ws, ok := fi.links[linkKey{from, to}]; ok {
		for _, w := range ws {
			if active(w.from, w.to) && w.prob > p {
				p = w.prob
			}
		}
	}
	for _, pw := range fi.partitions {
		if active(pw.from, pw.to) && pw.members[from] != pw.members[to] {
			return 1
		}
	}
	return p
}
