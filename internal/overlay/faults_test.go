package overlay

import (
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/topology"
)

func TestFaultDropProbabilityIsDeterministic(t *testing.T) {
	run := func() (delivered, dropped float64) {
		net, clk := virtualNet(t)
		net.InstallFaults(FaultPlan{Seed: 7, DropProb: 0.3})
		var got int
		net.Node(1).Register("d", func(Message) { got++ })
		for i := 0; i < 500; i++ {
			if err := net.Node(0).Send(1, "d", 1, i); err != nil {
				t.Fatal(err)
			}
		}
		settle(clk)
		return float64(got), net.Metrics.Counter("faults.dropped").Value()
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Fatalf("same seed diverged: delivered %v vs %v, dropped %v vs %v", d1, d2, x1, x2)
	}
	if x1 == 0 || d1 == 0 {
		t.Fatalf("expected partial loss: delivered %v, dropped %v", d1, x1)
	}
	if d1+x1 != 500 {
		t.Fatalf("delivered %v + dropped %v != 500", d1, x1)
	}
	// 30% of 500 with a fixed seed should land well inside [100, 200].
	if x1 < 100 || x1 > 200 {
		t.Fatalf("dropped %v, want ≈150", x1)
	}
}

func TestLinkCutDropsOnlyThatLink(t *testing.T) {
	net, clk := virtualNet(t)
	net.InstallFaults(FaultPlan{Seed: 1, Links: []LinkFault{{From: 0, To: 1, DropProb: 1}}})
	var on1, on2 int
	net.Node(1).Register("d", func(Message) { on1++ })
	net.Node(2).Register("d", func(Message) { on2++ })
	for i := 0; i < 5; i++ {
		net.Node(0).Send(1, "d", 1, nil)
		net.Node(0).Send(2, "d", 1, nil)
		net.Node(1).Send(2, "d", 1, nil)
	}
	settle(clk)
	if on1 != 0 {
		t.Fatalf("cut link 0->1 delivered %d messages", on1)
	}
	if on2 != 10 {
		t.Fatalf("unaffected routes delivered %d messages, want 10", on2)
	}
	if got := net.Metrics.Counter("faults.dropped").Value(); got != 5 {
		t.Fatalf("faults.dropped = %v, want 5", got)
	}
}

func TestLinkCutWindowExpires(t *testing.T) {
	net, clk := virtualNet(t)
	net.InstallFaults(FaultPlan{Seed: 1, Links: []LinkFault{
		{From: 0, To: 1, DropProb: 1, At: 0, Until: 500 * time.Millisecond},
	}})
	var got int
	net.Node(1).Register("d", func(Message) { got++ })
	net.Node(0).Send(1, "d", 1, nil) // inside the window: dropped
	clk.Sleep(time.Second)           // window over
	net.Node(0).Send(1, "d", 1, nil) // delivered
	settle(clk)
	if got != 1 {
		t.Fatalf("delivered %d, want 1 (cut window should have expired)", got)
	}
}

func TestPartitionCutsCrossTraffic(t *testing.T) {
	net, clk := virtualNet(t)
	net.InstallFaults(FaultPlan{Seed: 1, Partitions: []PartitionFault{
		{Group: []topology.NodeID{0, 1}},
	}})
	var intra, cross int
	net.Node(1).Register("d", func(Message) { intra++ })
	net.Node(2).Register("d", func(Message) { cross++ })
	net.Node(0).Send(1, "d", 1, nil) // same side: delivered
	net.Node(0).Send(2, "d", 1, nil) // crosses: cut
	net.Node(3).Send(2, "d", 1, nil) // both outside: delivered
	settle(clk)
	if intra != 1 || cross != 1 {
		t.Fatalf("intra=%d cross=%d, want 1/1", intra, cross)
	}
}

func TestJitterDelaysButDelivers(t *testing.T) {
	net, clk := virtualNet(t)
	base := time.Duration(net.topo.Latency(0, 1) * float64(net.Config().TimeScale))
	net.InstallFaults(FaultPlan{Seed: 3, JitterMs: 40})
	var arrived time.Time
	var sent time.Time
	net.Node(1).Register("d", func(m Message) { arrived, sent = clk.Now(), m.SentAt })
	net.Node(0).Send(1, "d", 1, nil)
	settle(clk)
	if arrived.IsZero() {
		t.Fatal("jittered message not delivered")
	}
	lat := arrived.Sub(sent)
	if lat < base || lat > base+40*time.Millisecond {
		t.Fatalf("jittered latency %v outside [%v, %v]", lat, base, base+40*time.Millisecond)
	}
	if lat == base {
		t.Fatalf("jitter added nothing (latency exactly %v)", base)
	}
}

func TestScheduledCrashAndRecovery(t *testing.T) {
	net, clk := virtualNet(t)
	start := clk.Now()
	fi := net.InstallFaults(FaultPlan{Seed: 1, Crashes: []NodeCrash{
		{Node: 2, At: 100 * time.Millisecond, RecoverAt: 400 * time.Millisecond},
	}})
	if net.NodeDown(2) {
		t.Fatal("node 2 down before the scheduled crash")
	}
	clk.Sleep(200 * time.Millisecond)
	if !net.NodeDown(2) {
		t.Fatal("node 2 alive after the scheduled crash")
	}
	if at, ok := fi.CrashTime(2); !ok || at.Sub(start) != 100*time.Millisecond {
		t.Fatalf("CrashTime = %v ok=%v, want +100ms", at, ok)
	}
	if got := fi.CrashedNodes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CrashedNodes = %v", got)
	}
	clk.Sleep(300 * time.Millisecond)
	if net.NodeDown(2) {
		t.Fatal("node 2 still down after scheduled recovery")
	}
	if got := net.Metrics.Counter("faults.crashes").Value(); got != 1 {
		t.Fatalf("faults.crashes = %v", got)
	}
	if got := net.Metrics.Counter("faults.recoveries").Value(); got != 1 {
		t.Fatalf("faults.recoveries = %v", got)
	}
}

func TestHeartbeatObserverSeesBeats(t *testing.T) {
	net, clk := virtualNet(t)
	var seen []topology.NodeID
	net.ObserveHeartbeats(func(m Message, _ time.Time) { seen = append(seen, m.From) })
	hb := net.StartHeartbeats(100*time.Millisecond, 0.1)
	defer hb.Stop()
	clk.Sleep(150 * time.Millisecond) // one full round
	if len(seen) != net.topo.NumNodes() {
		t.Fatalf("observer saw %d beats, want %d", len(seen), net.topo.NumNodes())
	}
	net.ObserveHeartbeats(nil)
	clk.Sleep(100 * time.Millisecond)
	if len(seen) != net.topo.NumNodes() {
		t.Fatalf("observer still called after removal: %d beats", len(seen))
	}
}

// TestNoPostMortemHeartbeat is the regression test for the
// Heartbeats.Stop / SetNodeDown interleaving: a node killed while its
// heartbeat is in flight must not deliver that beat post-mortem. Node
// 0's beat to node 1 takes a nonzero latency; we kill node 0 inside
// that window and assert node 1's observer never hears from it.
func TestNoPostMortemHeartbeat(t *testing.T) {
	net, clk := virtualNet(t)
	var fromDead int
	net.ObserveHeartbeats(func(m Message, _ time.Time) {
		if m.From == 0 {
			fromDead++
		}
	})
	hb := net.StartHeartbeats(100*time.Millisecond, 0.1)
	defer hb.Stop()

	lat := time.Duration(net.topo.Latency(0, 1) * float64(net.Config().TimeScale))
	if lat <= 0 {
		t.Fatal("test topology needs nonzero 0->1 latency")
	}
	// Beats fire at t=100ms; at that instant node 0's beat to node 1 is
	// in flight. Kill node 0 halfway through the flight.
	clk.Sleep(100*time.Millisecond + lat/2)
	net.SetNodeDown(0, true)
	clk.Sleep(time.Second)
	if fromDead != 0 {
		t.Fatalf("dead node 0 delivered %d post-mortem heartbeats", fromDead)
	}
	if got := net.Metrics.Counter("hb.postmortem_dropped").Value(); got != 1 {
		t.Fatalf("hb.postmortem_dropped = %v, want 1", got)
	}
}

func TestFaultPlanSameSeedBitIdentical(t *testing.T) {
	run := func() (string, float64, float64) {
		net, clk := virtualNet(t)
		net.InstallFaults(FaultPlan{
			Seed:     99,
			DropProb: 0.1,
			JitterMs: 5,
			Crashes:  []NodeCrash{{Node: 4, At: 300 * time.Millisecond}},
		})
		hb := net.StartHeartbeats(50*time.Millisecond, 0.1)
		defer hb.Stop()
		var log string
		net.Node(2).Register("d", func(m Message) {
			log += m.Payload.(string)
		})
		for i := 0; i < 20; i++ {
			net.Node(0).Send(2, "d", 1, string(rune('a'+i)))
			clk.Sleep(37 * time.Millisecond)
		}
		settle(clk)
		return log,
			net.Metrics.Counter("faults.dropped").Value() + net.Metrics.Counter("faults.hb_dropped").Value(),
			net.Metrics.Counter("usage.kbms").Value()
	}
	l1, d1, u1 := run()
	l2, d2, u2 := run()
	if l1 != l2 || d1 != d2 || u1 != u2 {
		t.Fatalf("same-seed fault runs diverged: %q/%v/%v vs %q/%v/%v", l1, d1, u1, l2, d2, u2)
	}
}
