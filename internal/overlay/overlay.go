// Package overlay is the SBON runtime: every overlay node is a goroutine
// with an inbox channel, and message delivery between nodes is delayed by
// the topology's shortest-path latency scaled to wall-clock time. The
// stream engine (package stream) deploys circuits onto it; examples and
// integration tests run real dataflows through it.
//
// Concurrency model: each node processes its inbox serially on its own
// goroutine, so handlers on one node never race with each other (share
// memory by communicating). Senders never block: delivery is scheduled on
// timer goroutines that either enqueue into the destination inbox or drop
// when the network is shut down.
package overlay

import (
	"fmt"
	"sync"
	"time"

	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/topology"
)

// Message is one unit of overlay traffic.
type Message struct {
	From, To topology.NodeID
	// Port selects the handler on the destination node.
	Port string
	// SizeKB is the payload size used for network accounting.
	SizeKB float64
	// Payload is the application data (e.g. a stream tuple).
	Payload any
	// SentAt is the wall-clock send time.
	SentAt time.Time
}

// Handler processes messages delivered to a port. Handlers run on the
// owning node's goroutine.
type Handler func(Message)

// Config tunes the runtime.
type Config struct {
	// TimeScale is the wall duration representing one simulated
	// millisecond of network latency (default 50µs: simulation runs 20×
	// faster than real time).
	TimeScale time.Duration
	// InboxSize is the per-node inbox buffer (default 4096).
	InboxSize int
}

// DefaultConfig returns the runtime defaults.
func DefaultConfig() Config {
	return Config{TimeScale: 50 * time.Microsecond, InboxSize: 4096}
}

// Network hosts one goroutine per overlay node and routes messages
// between them with latency.
type Network struct {
	topo *topology.Topology
	cfg  Config

	nodes []*Node
	quit  chan struct{}
	wg    sync.WaitGroup // node loops + in-flight deliveries

	stopOnce sync.Once

	// Metrics is the runtime's registry: counters msgs.sent, msgs.dropped,
	// kb.sent, and usage.kbms (Σ sizeKB × latencyMs, the integral of
	// data-in-transit).
	Metrics *metrics.Registry
}

// NewNetwork builds (but does not start) a runtime over the topology.
func NewNetwork(topo *topology.Topology, cfg Config) *Network {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 50 * time.Microsecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	// Force the all-pairs latency cache now: Topology computes it lazily
	// and concurrent Sends must only read it.
	topo.LatencyMatrix()
	n := &Network{
		topo:    topo,
		cfg:     cfg,
		quit:    make(chan struct{}),
		Metrics: metrics.NewRegistry(),
	}
	n.nodes = make([]*Node, topo.NumNodes())
	for i := range n.nodes {
		n.nodes[i] = &Node{
			id:       topology.NodeID(i),
			net:      n,
			inbox:    make(chan Message, cfg.InboxSize),
			handlers: make(map[string]Handler),
		}
	}
	return n
}

// Start launches every node goroutine. It must be called once before any
// Send.
func (n *Network) Start() {
	for _, nd := range n.nodes {
		n.wg.Add(1)
		go nd.loop()
	}
}

// Stop shuts the runtime down: future sends are dropped, node loops
// exit, and Stop blocks until all goroutines (including in-flight
// deliveries) finish. Safe to call more than once.
func (n *Network) Stop() {
	n.stopOnce.Do(func() { close(n.quit) })
	n.wg.Wait()
}

// Node returns the runtime node for the overlay node id.
func (n *Network) Node(id topology.NodeID) *Node { return n.nodes[id] }

// Config returns the runtime configuration.
func (n *Network) Config() Config { return n.cfg }

// SimMillis converts an elapsed wall duration into simulated
// milliseconds under the runtime's time scale.
func (n *Network) SimMillis(wall time.Duration) float64 {
	return float64(wall) / float64(n.cfg.TimeScale)
}

// Node is one overlay participant: an inbox, a handler table, and
// counters.
type Node struct {
	id    topology.NodeID
	net   *Network
	inbox chan Message

	mu       sync.RWMutex
	handlers map[string]Handler
}

// ID returns the overlay node id.
func (nd *Node) ID() topology.NodeID { return nd.id }

// Register installs the handler for a port, replacing any previous one.
func (nd *Node) Register(port string, h Handler) {
	nd.mu.Lock()
	nd.handlers[port] = h
	nd.mu.Unlock()
}

// Unregister removes the handler for a port.
func (nd *Node) Unregister(port string) {
	nd.mu.Lock()
	delete(nd.handlers, port)
	nd.mu.Unlock()
}

// Send schedules delivery of a message to the port on the destination
// node, after the topology latency (scaled). It never blocks; messages
// sent after Stop are dropped.
func (nd *Node) Send(to topology.NodeID, port string, sizeKB float64, payload any) error {
	if int(to) < 0 || int(to) >= len(nd.net.nodes) {
		return fmt.Errorf("overlay: destination %d out of range", to)
	}
	msg := Message{
		From:    nd.id,
		To:      to,
		Port:    port,
		SizeKB:  sizeKB,
		Payload: payload,
		SentAt:  time.Now(),
	}
	latMs := nd.net.topo.Latency(nd.id, to)
	delay := time.Duration(latMs * float64(nd.net.cfg.TimeScale))

	n := nd.net
	n.Metrics.Counter("msgs.sent").Inc()
	n.Metrics.Counter("kb.sent").Add(sizeKB)
	n.Metrics.Counter("usage.kbms").Add(sizeKB * latMs)

	n.wg.Add(1)
	if delay <= 0 {
		go n.deliver(msg)
		return nil
	}
	time.AfterFunc(delay, func() { n.deliver(msg) })
	return nil
}

// deliver enqueues the message unless the runtime is stopping.
func (n *Network) deliver(msg Message) {
	defer n.wg.Done()
	dst := n.nodes[msg.To]
	select {
	case <-n.quit:
		n.Metrics.Counter("msgs.dropped").Inc()
	case dst.inbox <- msg:
	}
}

// loop is the node goroutine: dispatch until shutdown.
func (nd *Node) loop() {
	defer nd.net.wg.Done()
	for {
		select {
		case <-nd.net.quit:
			return
		case msg := <-nd.inbox:
			nd.dispatch(msg)
		}
	}
}

func (nd *Node) dispatch(msg Message) {
	nd.mu.RLock()
	h := nd.handlers[msg.Port]
	nd.mu.RUnlock()
	if h == nil {
		nd.net.Metrics.Counter("msgs.unrouted").Inc()
		return
	}
	h(msg)
}
