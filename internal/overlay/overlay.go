// Package overlay is the SBON runtime. Under the real clock every
// overlay node is a goroutine with an inbox channel, and message
// delivery between nodes is delayed by the topology's shortest-path
// latency scaled to wall-clock time. Under a virtual clock (package
// simtime) the runtime switches to discrete-event dispatch: deliveries
// are events on the clock's heap, handlers run serially on the
// scheduler goroutine at exact simulated timestamps, and a fixed seed
// reproduces the run bit for bit. The stream engine (package stream)
// deploys circuits onto it; examples and integration tests run real
// dataflows through it.
//
// Concurrency model (real clock): each node processes its inbox
// serially on its own goroutine, so handlers on one node never race
// with each other (share memory by communicating). Senders never block:
// delivery is scheduled on timer goroutines that either enqueue into
// the destination inbox or drop when the network is shut down.
//
// Concurrency model (virtual clock): all handlers run on the clock's
// single scheduler goroutine — a global serialization that subsumes the
// per-node guarantee. Messages between the same pair of instants are
// delivered in send order (FIFO event tie-breaking).
package overlay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// Message is one unit of overlay traffic.
type Message struct {
	From, To topology.NodeID
	// Port selects the handler on the destination node.
	Port string
	// SizeKB is the payload size used for network accounting.
	SizeKB float64
	// Payload is the application data (e.g. a stream tuple).
	Payload any
	// SentAt is the clock's send time (wall or virtual).
	SentAt time.Time
}

// Handler processes messages delivered to a port. Handlers run on the
// owning node's goroutine (real clock) or the scheduler goroutine
// (virtual clock).
type Handler func(Message)

// Config tunes the runtime.
type Config struct {
	// TimeScale is the wall duration representing one simulated
	// millisecond of network latency (default 50µs: simulation runs 20×
	// faster than real time). Under a virtual clock the conventional
	// choice is time.Millisecond — one virtual millisecond per simulated
	// millisecond — since virtual time is free.
	TimeScale time.Duration
	// InboxSize is the per-node inbox buffer (default 4096). Unused
	// under a virtual clock.
	InboxSize int
	// Clock drives message delivery and timestamps. Nil means the real
	// (wall) clock. Passing a *simtime.VirtualClock switches the
	// runtime to deterministic discrete-event dispatch; one built with
	// simtime.NewVirtualSharded executes the data plane on parallel
	// per-shard event queues (see DataShards/ShardOf).
	Clock simtime.Clock

	// DataShards is the number of parallel data-plane shards the
	// runtime is keyed for (<= 1 means the single event queue). It must
	// match the shard count of the sharded clock when one is installed;
	// it also sizes the per-shard traffic counters.
	DataShards int
	// ShardOf maps each node to its data-plane shard, nil meaning all
	// shard 0. Callers derive it from the same Hilbert-prefix regions
	// the sharded optimizer uses (optimizer.NodeRegions), so
	// intra-region traffic — the bulk, by the cost-space locality the
	// paper's placement optimizes for — stays shard-local.
	ShardOf []int32
}

// DefaultConfig returns the runtime defaults (real clock).
func DefaultConfig() Config {
	return Config{TimeScale: 50 * time.Microsecond, InboxSize: 4096}
}

// VirtualConfig returns a runtime configuration on a fresh virtual
// clock at the 1 virtual ms = 1 simulated ms scale.
func VirtualConfig() Config {
	return Config{TimeScale: time.Millisecond, InboxSize: 4096, Clock: simtime.NewVirtual()}
}

// Network hosts the overlay nodes and routes messages between them with
// latency.
type Network struct {
	topo    *topology.Topology
	cfg     Config
	clock   simtime.Clock
	dclock  simtime.DomainClock // clock's domain extension (never nil)
	virtual bool

	nodes []*Node
	quit  chan struct{}
	wg    sync.WaitGroup // node loops + in-flight deliveries (real clock)

	stopOnce sync.Once

	// shardOf maps nodes to data-plane shards (all zero without
	// sharding); shardStats are the per-shard traffic counters that
	// aggregate to the registry totals.
	shardOf    []int32
	shardStats []ShardStats

	// sampleCtr holds one trace-sampling counter per origin domain
	// (index origin+1), so sampling decisions on the data path are a
	// pure function of each node's own history — identical under
	// single-queue and sharded execution. Counters are unsynchronized:
	// a domain's events execute serially.
	sampleCtr []uint64

	// Cached registry counters for the send/dispatch hot path (a
	// registry lookup per message is measurable at 100k nodes).
	cMsgsSent, cKBSent, cUsageKBms      *metrics.Counter
	cMsgsDropped, cMsgsDownRefused      *metrics.Counter
	cMsgsDownDropped, cHBDownDropped    *metrics.Counter
	cHBPostmortemDropped, cMsgsUnrouted *metrics.Counter
	cFaultsDropped, cFaultsHBDropped    *metrics.Counter

	// faults is the armed fault injector, nil when no FaultPlan is
	// installed (see faults.go).
	faults atomic.Pointer[FaultInjector]
	// tracer, when set, receives sampled fault-drop events and the
	// injected crash/recovery instants. Install before Start; nil (the
	// default) costs one atomic load on the fault path only.
	tracer atomic.Pointer[trace.Tracer]
	// hbObserver, when set, sees every delivered heartbeat — the hook
	// failure detectors consume liveness traffic through. Calls are
	// deferred through the clock's observation barrier, so under sharded
	// execution the observer runs serialized in deterministic order.
	hbObserver atomic.Pointer[func(Message, time.Time)]

	// Metrics is the runtime's registry: counters msgs.sent, msgs.dropped,
	// kb.sent, usage.kbms (Σ sizeKB × latencyMs, the integral of
	// data-in-transit), hb.sent/hb.recv once heartbeats start, the
	// churn counters msgs.down_dropped / hb.down_dropped /
	// msgs.down_refused once nodes are marked down, and the injected
	// fault counters faults.dropped / faults.hb_dropped /
	// hb.postmortem_dropped / faults.crashes / faults.recoveries once a
	// FaultPlan is installed.
	Metrics *metrics.Registry
}

// NewNetwork builds (but does not start) a runtime over the topology.
func NewNetwork(topo *topology.Topology, cfg Config) *Network {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 50 * time.Microsecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Real()
	}
	// Force the all-pairs latency cache now: Topology computes it lazily
	// and concurrent Sends must only read it. In sparse mode lookups are
	// already O(1) pure reads and the dense matrix would be O(n²) memory.
	if !topo.SparseEnabled() {
		topo.LatencyMatrix()
	}
	if cfg.DataShards <= 0 {
		cfg.DataShards = 1
	}
	n := &Network{
		topo:    topo,
		cfg:     cfg,
		clock:   cfg.Clock,
		dclock:  simtime.AsDomainClock(cfg.Clock),
		virtual: simtime.IsVirtual(cfg.Clock),
		quit:    make(chan struct{}),
		Metrics: metrics.NewRegistry(),
	}
	n.shardOf = make([]int32, topo.NumNodes())
	if cfg.ShardOf != nil {
		if len(cfg.ShardOf) != topo.NumNodes() {
			panic(fmt.Sprintf("overlay: ShardOf has %d entries for %d nodes", len(cfg.ShardOf), topo.NumNodes()))
		}
		copy(n.shardOf, cfg.ShardOf)
	}
	n.shardStats = make([]ShardStats, cfg.DataShards)
	n.sampleCtr = make([]uint64, topo.NumNodes()+1)
	n.cMsgsSent = n.Metrics.Counter("msgs.sent")
	n.cKBSent = n.Metrics.Counter("kb.sent")
	n.cUsageKBms = n.Metrics.Counter("usage.kbms")
	n.cMsgsDropped = n.Metrics.Counter("msgs.dropped")
	n.cMsgsDownRefused = n.Metrics.Counter("msgs.down_refused")
	n.cMsgsDownDropped = n.Metrics.Counter("msgs.down_dropped")
	n.cHBDownDropped = n.Metrics.Counter("hb.down_dropped")
	n.cHBPostmortemDropped = n.Metrics.Counter("hb.postmortem_dropped")
	n.cMsgsUnrouted = n.Metrics.Counter("msgs.unrouted")
	n.cFaultsDropped = n.Metrics.Counter("faults.dropped")
	n.cFaultsHBDropped = n.Metrics.Counter("faults.hb_dropped")
	n.nodes = make([]*Node, topo.NumNodes())
	for i := range n.nodes {
		n.nodes[i] = &Node{
			id:       topology.NodeID(i),
			net:      n,
			handlers: make(map[string]Handler),
		}
		if !n.virtual {
			n.nodes[i].inbox = make(chan Message, cfg.InboxSize)
		}
	}
	return n
}

// Start launches the node goroutines (real clock). Under a virtual
// clock there are no node goroutines — dispatch rides the event
// scheduler — so Start only marks the runtime live. It must be called
// once before any Send.
func (n *Network) Start() {
	if n.virtual {
		return
	}
	for _, nd := range n.nodes {
		n.wg.Add(1)
		go nd.loop()
	}
}

// Stop shuts the runtime down: future sends are dropped and, under the
// real clock, Stop blocks until node loops and in-flight deliveries
// finish. Under a virtual clock pending delivery events are abandoned
// (they count msgs.dropped if the clock ever fires them). Safe to call
// more than once.
func (n *Network) Stop() {
	n.stopOnce.Do(func() { close(n.quit) })
	n.wg.Wait()
}

// Node returns the runtime node for the overlay node id.
func (n *Network) Node(id topology.NodeID) *Node { return n.nodes[id] }

// NumNodes returns the overlay size.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Config returns the runtime configuration.
func (n *Network) Config() Config { return n.cfg }

// Clock returns the clock driving the runtime.
func (n *Network) Clock() simtime.Clock { return n.clock }

// Virtual reports whether the runtime dispatches on a virtual clock.
func (n *Network) Virtual() bool { return n.virtual }

// DomainClock returns the clock's domain extension (never nil) — the
// interface shard-context code schedules and observes through.
func (n *Network) DomainClock() simtime.DomainClock { return n.dclock }

// NowAt returns the current time as seen from the node's execution
// context: inside a parallel window, the node's shard-local event time;
// otherwise the global clock time. Node-context code must use this (or
// Message.SentAt) instead of Clock().Now(), which is only coherent at
// barriers.
func (n *Network) NowAt(id topology.NodeID) time.Time {
	return n.dclock.DomainNow(simtime.Domain(id))
}

// ObserveAt defers fn to the clock's next synchronization point, where
// deferred observations run serially in deterministic order; fn
// receives the virtual time of the observing event. Outside a parallel
// window fn runs inline.
func (n *Network) ObserveAt(id topology.NodeID, fn func(at time.Time)) {
	n.dclock.Observe(simtime.Domain(id), fn)
}

// TraceSampleCtr returns the node's private trace-sampling counter, for
// trace.Tracer.SampleAt on node-context hot paths: the decision becomes
// a pure function of the node's own emission history, identical under
// single-queue and sharded execution.
func (n *Network) TraceSampleCtr(id topology.NodeID) *uint64 {
	return &n.sampleCtr[int(id)+1]
}

// DataShards returns the configured shard count (1 when unsharded).
func (n *Network) DataShards() int { return len(n.shardStats) }

// ShardOf returns the data-plane shard of a node.
func (n *Network) ShardOf(id topology.NodeID) int { return int(n.shardOf[id]) }

// ShardStats holds one data-plane shard's traffic counters. Fields are
// atomics because sends from different lanes (and control context) may
// account concurrently; increments are commutative so totals are
// deterministic even though interleavings are not.
type ShardStats struct {
	msgsSent, hbSent, hbRecv, faultsDropped atomic.Int64
}

// ShardCounters is a point-in-time snapshot of one shard's counters.
type ShardCounters struct {
	MsgsSent, HBSent, HBRecv, FaultsDropped int64
}

// ShardCounters snapshots the per-shard traffic counters. Summed over
// shards, MsgsSent equals the registry's msgs.sent, HBSent hb.sent,
// HBRecv hb.recv, and FaultsDropped faults.dropped + faults.hb_dropped.
func (n *Network) ShardCounters() []ShardCounters {
	out := make([]ShardCounters, len(n.shardStats))
	for i := range n.shardStats {
		s := &n.shardStats[i]
		out[i] = ShardCounters{
			MsgsSent:      s.msgsSent.Load(),
			HBSent:        s.hbSent.Load(),
			HBRecv:        s.hbRecv.Load(),
			FaultsDropped: s.faultsDropped.Load(),
		}
	}
	return out
}

// SimMillis converts an elapsed clock duration into simulated
// milliseconds under the runtime's time scale.
func (n *Network) SimMillis(wall time.Duration) float64 {
	return float64(wall) / float64(n.cfg.TimeScale)
}

// Node is one overlay participant: a handler table, counters, and —
// under the real clock — an inbox goroutine.
type Node struct {
	id    topology.NodeID
	net   *Network
	inbox chan Message

	// down marks a departed/failed node: its deliveries are dropped and
	// counted, and it originates no traffic. The flag is what node-churn
	// scenarios flip to kill and re-join overlay participants mid-run.
	down atomic.Bool

	mu       sync.RWMutex
	handlers map[string]Handler
}

// ID returns the overlay node id.
func (nd *Node) ID() topology.NodeID { return nd.id }

// Register installs the handler for a port, replacing any previous one.
func (nd *Node) Register(port string, h Handler) {
	nd.mu.Lock()
	nd.handlers[port] = h
	nd.mu.Unlock()
}

// Unregister removes the handler for a port.
func (nd *Node) Unregister(port string) {
	nd.mu.Lock()
	delete(nd.handlers, port)
	nd.mu.Unlock()
}

// SetNodeDown marks the node dead (down=true) or rejoined (down=false).
// A dead node's incoming deliveries are dropped and counted in
// msgs.down_dropped (hb.down_dropped for heartbeat pings, so liveness
// noise never pollutes data-loss accounting), and its outgoing Sends are
// refused. Live re-optimization drains a node's services before the
// control plane marks it down; a zero down-drop count is therefore the
// data plane's proof of lossless migration.
func (n *Network) SetNodeDown(id topology.NodeID, down bool) {
	n.nodes[id].down.Store(down)
}

// NodeDown reports whether the node is currently marked down.
func (n *Network) NodeDown(id topology.NodeID) bool { return n.nodes[id].down.Load() }

// SetTracer installs (or, with nil, removes) the trace sink for fault
// events. Safe to call at any time; the fault path reloads it per
// message.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// Tracer returns the installed trace sink (nil when tracing is off) —
// nil-receiver safe to use directly.
func (n *Network) Tracer() *trace.Tracer { return n.tracer.Load() }

// Send schedules delivery of a message to the port on the destination
// node, after the topology latency (scaled). It never blocks; messages
// sent after Stop — or from a node marked down — are dropped.
//
// Sharded execution: Send always acts as the *sender's* domain — the
// delivery event is keyed (arrival time, sender, sender's sequence) and
// executed in the destination's shard. Within a shard it is a plain
// queue insert; across shards it rides the clock's outbox/barrier
// mailbox. Either way the key — and so the global delivery order — is
// independent of which shard executes what when.
func (nd *Node) Send(to topology.NodeID, port string, sizeKB float64, payload any) error {
	if int(to) < 0 || int(to) >= len(nd.net.nodes) {
		return fmt.Errorf("overlay: destination %d out of range", to)
	}
	n := nd.net
	origin := simtime.Domain(nd.id)
	if nd.down.Load() {
		n.cMsgsDownRefused.Inc()
		return fmt.Errorf("overlay: node %d is down", nd.id)
	}
	msg := Message{
		From:    nd.id,
		To:      to,
		Port:    port,
		SizeKB:  sizeKB,
		Payload: payload,
		SentAt:  n.dclock.DomainNow(origin),
	}
	latMs := n.topo.Latency(nd.id, to)

	n.cMsgsSent.Inc()
	n.cKBSent.Add(sizeKB)
	n.cUsageKBms.Add(sizeKB * latMs)
	n.shardStats[n.shardOf[nd.id]].msgsSent.Add(1)

	if fi := n.faults.Load(); fi != nil {
		drop, extraMs := fi.onSend(nd.id, to, msg.SentAt)
		if drop {
			if port == HeartbeatPort {
				n.cFaultsHBDropped.Inc()
			} else {
				n.cFaultsDropped.Inc()
			}
			n.shardStats[n.shardOf[nd.id]].faultsDropped.Add(1)
			if tr := n.tracer.Load(); tr.Enabled() && tr.SampleAt(&n.sampleCtr[int(nd.id)+1]) {
				n.dclock.Observe(origin, func(at time.Time) {
					tr.EmitAtTime(at, "overlay", "fault_drop",
						trace.Int("from", int(nd.id)), trace.Int("to", int(to)),
						trace.Str("port", port))
				})
			}
			return nil // silent loss: the sender never learns
		}
		latMs += extraMs
	}
	delay := time.Duration(latMs * float64(n.cfg.TimeScale))

	if n.virtual {
		// Discrete-event path: the delivery is a clock event that
		// dispatches the handler directly at the arrival instant, in
		// the destination's shard.
		n.dclock.ScheduleDomain(origin, simtime.Domain(to), delay, func() {
			select {
			case <-n.quit:
				n.cMsgsDropped.Inc()
			default:
				n.nodes[msg.To].dispatch(msg)
			}
		})
		return nil
	}

	n.wg.Add(1)
	if delay <= 0 {
		go n.deliver(msg)
		return nil
	}
	time.AfterFunc(delay, func() { n.deliver(msg) })
	return nil
}

// deliver enqueues the message unless the runtime is stopping (real
// clock only).
func (n *Network) deliver(msg Message) {
	defer n.wg.Done()
	dst := n.nodes[msg.To]
	select {
	case <-n.quit:
		n.cMsgsDropped.Inc()
	case dst.inbox <- msg:
	}
}

// loop is the node goroutine: dispatch until shutdown (real clock
// only).
func (nd *Node) loop() {
	defer nd.net.wg.Done()
	for {
		select {
		case <-nd.net.quit:
			return
		case msg := <-nd.inbox:
			nd.dispatch(msg)
		}
	}
}

func (nd *Node) dispatch(msg Message) {
	if nd.down.Load() {
		if msg.Port == HeartbeatPort {
			nd.net.cHBDownDropped.Inc()
		} else {
			nd.net.cMsgsDownDropped.Inc()
		}
		return
	}
	// A heartbeat is a liveness claim; one that outlives its sender (the
	// node was killed while the beat was in flight) must never reach the
	// failure detector, or a freshly dead node looks alive for an extra
	// interval. Data messages from a dead source still deliver — they
	// left the wire while the node lived.
	if msg.Port == HeartbeatPort && nd.net.nodes[msg.From].down.Load() {
		nd.net.cHBPostmortemDropped.Inc()
		return
	}
	nd.mu.RLock()
	h := nd.handlers[msg.Port]
	nd.mu.RUnlock()
	if h == nil {
		nd.net.cMsgsUnrouted.Inc()
		return
	}
	h(msg)
}

// HeartbeatPort is the reserved port heartbeat pings arrive on.
const HeartbeatPort = "overlay.hb"

// ObserveHeartbeats installs fn as the heartbeat observer: it is
// called for every delivered heartbeat with the virtual time of the
// delivery. Calls are routed through the clock's observation barrier —
// under sharded execution they run serialized at window ends in
// deterministic order, under single-queue execution inline on the
// scheduler — so the observer may touch shared state freely. Pass nil
// to remove. Failure detectors (package failure) consume liveness
// traffic through this hook.
func (n *Network) ObserveHeartbeats(fn func(Message, time.Time)) {
	if fn == nil {
		n.hbObserver.Store(nil)
		return
	}
	n.hbObserver.Store(&fn)
}

// Heartbeats is a running liveness-ping schedule; Stop cancels it.
type Heartbeats struct {
	net *Network

	mu      sync.Mutex
	stopped bool
	timers  []simtime.Timer
	// inflight counts beat callbacks past their stopped-check; Add only
	// happens under mu with stopped == false, so Stop's Wait can never
	// race an Add (the WaitGroup misuse Send-vs-Network.Stop would
	// otherwise hit).
	inflight sync.WaitGroup
}

// HeartbeatOpts tunes StartHeartbeatsOpts.
type HeartbeatOpts struct {
	// SkipDownTargets re-targets each beat to the next *live* successor
	// in id order, the ring-stabilization analogue: a crashed receiver
	// must not black-hole its predecessor's liveness signal, or a
	// failure detector would condemn the (live) predecessor too. Off,
	// beats keep their static successor and pings to a down node count
	// hb.down_dropped.
	SkipDownTargets bool
}

// StartHeartbeats begins periodic liveness traffic: every `every` of
// clock time, each node sends a sizeKB ping to the node after it in id
// order (wrapping), clock-driven so heartbeats are free under virtual
// time. Beats are counted in the hb.sent and hb.recv counters and
// charged to the usual traffic metrics. The first round fires after one
// full interval.
func (n *Network) StartHeartbeats(every time.Duration, sizeKB float64) *Heartbeats {
	return n.StartHeartbeatsOpts(every, sizeKB, HeartbeatOpts{})
}

// StartHeartbeatsOpts is StartHeartbeats with explicit options.
func (n *Network) StartHeartbeatsOpts(every time.Duration, sizeKB float64, opts HeartbeatOpts) *Heartbeats {
	hb := &Heartbeats{net: n}
	recv := n.Metrics.Counter("hb.recv")
	sent := n.Metrics.Counter("hb.sent")
	for _, nd := range n.nodes {
		nd.Register(HeartbeatPort, func(m Message) {
			recv.Inc()
			n.shardStats[n.shardOf[m.To]].hbRecv.Add(1)
			if ob := n.hbObserver.Load(); ob != nil {
				n.dclock.Observe(simtime.Domain(m.To), func(at time.Time) { (*ob)(m, at) })
			}
		})
	}
	hb.timers = make([]simtime.Timer, len(n.nodes))
	hb.mu.Lock()
	defer hb.mu.Unlock() // early real-clock fires block until setup completes
	for i, nd := range n.nodes {
		i, nd := i, nd
		var beat func()
		beat = func() {
			hb.mu.Lock()
			if hb.stopped {
				hb.mu.Unlock()
				return
			}
			select {
			case <-n.quit:
				hb.mu.Unlock()
				return
			default:
			}
			hb.inflight.Add(1)
			hb.mu.Unlock()
			to := topology.NodeID((i + 1) % len(n.nodes))
			if opts.SkipDownTargets {
				for k := 1; k < len(n.nodes); k++ {
					cand := topology.NodeID((i + k) % len(n.nodes))
					if !n.nodes[cand].down.Load() {
						to = cand
						break
					}
				}
			}
			// Down nodes fall silent but keep their schedule, so a
			// re-joined node resumes beating on the next round.
			if nd.Send(to, HeartbeatPort, sizeKB, nil) == nil {
				sent.Inc()
				n.shardStats[n.shardOf[i]].hbSent.Add(1)
			}
			hb.inflight.Done()
			hb.mu.Lock()
			if !hb.stopped {
				// Each node's schedule is its own domain, so beats execute
				// shard-locally and reschedule without a barrier crossing.
				hb.timers[i] = n.dclock.ScheduleDomain(simtime.Domain(i), simtime.Domain(i), every, beat)
			}
			hb.mu.Unlock()
		}
		hb.timers[i] = n.dclock.ScheduleDomain(simtime.Domain(i), simtime.Domain(i), every, beat)
	}
	return hb
}

// Stop halts the heartbeat schedule and waits out any beat already past
// its stopped-check, so `hb.Stop(); net.Stop()` is always safe — no
// beat can call Send (and bump the network's delivery WaitGroup) after
// Stop returns.
func (hb *Heartbeats) Stop() {
	hb.mu.Lock()
	if hb.stopped {
		hb.mu.Unlock()
		return
	}
	hb.stopped = true
	for _, t := range hb.timers {
		if t != nil {
			t.Stop()
		}
	}
	hb.mu.Unlock()
	hb.inflight.Wait()
}
