// Package overlay is the SBON runtime. Under the real clock every
// overlay node is a goroutine with an inbox channel, and message
// delivery between nodes is delayed by the topology's shortest-path
// latency scaled to wall-clock time. Under a virtual clock (package
// simtime) the runtime switches to discrete-event dispatch: deliveries
// are events on the clock's heap, handlers run serially on the
// scheduler goroutine at exact simulated timestamps, and a fixed seed
// reproduces the run bit for bit. The stream engine (package stream)
// deploys circuits onto it; examples and integration tests run real
// dataflows through it.
//
// Concurrency model (real clock): each node processes its inbox
// serially on its own goroutine, so handlers on one node never race
// with each other (share memory by communicating). Senders never block:
// delivery is scheduled on timer goroutines that either enqueue into
// the destination inbox or drop when the network is shut down.
//
// Concurrency model (virtual clock): all handlers run on the clock's
// single scheduler goroutine — a global serialization that subsumes the
// per-node guarantee. Messages between the same pair of instants are
// delivered in send order (FIFO event tie-breaking).
package overlay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hourglass/sbon/internal/metrics"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// Message is one unit of overlay traffic.
type Message struct {
	From, To topology.NodeID
	// Port selects the handler on the destination node.
	Port string
	// SizeKB is the payload size used for network accounting.
	SizeKB float64
	// Payload is the application data (e.g. a stream tuple).
	Payload any
	// SentAt is the clock's send time (wall or virtual).
	SentAt time.Time
}

// Handler processes messages delivered to a port. Handlers run on the
// owning node's goroutine (real clock) or the scheduler goroutine
// (virtual clock).
type Handler func(Message)

// Config tunes the runtime.
type Config struct {
	// TimeScale is the wall duration representing one simulated
	// millisecond of network latency (default 50µs: simulation runs 20×
	// faster than real time). Under a virtual clock the conventional
	// choice is time.Millisecond — one virtual millisecond per simulated
	// millisecond — since virtual time is free.
	TimeScale time.Duration
	// InboxSize is the per-node inbox buffer (default 4096). Unused
	// under a virtual clock.
	InboxSize int
	// Clock drives message delivery and timestamps. Nil means the real
	// (wall) clock. Passing a *simtime.VirtualClock switches the
	// runtime to deterministic discrete-event dispatch.
	Clock simtime.Clock
}

// DefaultConfig returns the runtime defaults (real clock).
func DefaultConfig() Config {
	return Config{TimeScale: 50 * time.Microsecond, InboxSize: 4096}
}

// VirtualConfig returns a runtime configuration on a fresh virtual
// clock at the 1 virtual ms = 1 simulated ms scale.
func VirtualConfig() Config {
	return Config{TimeScale: time.Millisecond, InboxSize: 4096, Clock: simtime.NewVirtual()}
}

// Network hosts the overlay nodes and routes messages between them with
// latency.
type Network struct {
	topo    *topology.Topology
	cfg     Config
	clock   simtime.Clock
	virtual bool

	nodes []*Node
	quit  chan struct{}
	wg    sync.WaitGroup // node loops + in-flight deliveries (real clock)

	stopOnce sync.Once

	// faults is the armed fault injector, nil when no FaultPlan is
	// installed (see faults.go).
	faults atomic.Pointer[FaultInjector]
	// tracer, when set, receives sampled fault-drop events and the
	// injected crash/recovery instants. Install before Start; nil (the
	// default) costs one atomic load on the fault path only.
	tracer atomic.Pointer[trace.Tracer]
	// hbObserver, when set, sees every delivered heartbeat — the hook
	// failure detectors consume liveness traffic through.
	hbObserver atomic.Pointer[func(Message)]

	// Metrics is the runtime's registry: counters msgs.sent, msgs.dropped,
	// kb.sent, usage.kbms (Σ sizeKB × latencyMs, the integral of
	// data-in-transit), hb.sent/hb.recv once heartbeats start, the
	// churn counters msgs.down_dropped / hb.down_dropped /
	// msgs.down_refused once nodes are marked down, and the injected
	// fault counters faults.dropped / faults.hb_dropped /
	// hb.postmortem_dropped / faults.crashes / faults.recoveries once a
	// FaultPlan is installed.
	Metrics *metrics.Registry
}

// NewNetwork builds (but does not start) a runtime over the topology.
func NewNetwork(topo *topology.Topology, cfg Config) *Network {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 50 * time.Microsecond
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Real()
	}
	// Force the all-pairs latency cache now: Topology computes it lazily
	// and concurrent Sends must only read it. In sparse mode lookups are
	// already O(1) pure reads and the dense matrix would be O(n²) memory.
	if !topo.SparseEnabled() {
		topo.LatencyMatrix()
	}
	n := &Network{
		topo:    topo,
		cfg:     cfg,
		clock:   cfg.Clock,
		virtual: simtime.IsVirtual(cfg.Clock),
		quit:    make(chan struct{}),
		Metrics: metrics.NewRegistry(),
	}
	n.nodes = make([]*Node, topo.NumNodes())
	for i := range n.nodes {
		n.nodes[i] = &Node{
			id:       topology.NodeID(i),
			net:      n,
			handlers: make(map[string]Handler),
		}
		if !n.virtual {
			n.nodes[i].inbox = make(chan Message, cfg.InboxSize)
		}
	}
	return n
}

// Start launches the node goroutines (real clock). Under a virtual
// clock there are no node goroutines — dispatch rides the event
// scheduler — so Start only marks the runtime live. It must be called
// once before any Send.
func (n *Network) Start() {
	if n.virtual {
		return
	}
	for _, nd := range n.nodes {
		n.wg.Add(1)
		go nd.loop()
	}
}

// Stop shuts the runtime down: future sends are dropped and, under the
// real clock, Stop blocks until node loops and in-flight deliveries
// finish. Under a virtual clock pending delivery events are abandoned
// (they count msgs.dropped if the clock ever fires them). Safe to call
// more than once.
func (n *Network) Stop() {
	n.stopOnce.Do(func() { close(n.quit) })
	n.wg.Wait()
}

// Node returns the runtime node for the overlay node id.
func (n *Network) Node(id topology.NodeID) *Node { return n.nodes[id] }

// NumNodes returns the overlay size.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Config returns the runtime configuration.
func (n *Network) Config() Config { return n.cfg }

// Clock returns the clock driving the runtime.
func (n *Network) Clock() simtime.Clock { return n.clock }

// Virtual reports whether the runtime dispatches on a virtual clock.
func (n *Network) Virtual() bool { return n.virtual }

// SimMillis converts an elapsed clock duration into simulated
// milliseconds under the runtime's time scale.
func (n *Network) SimMillis(wall time.Duration) float64 {
	return float64(wall) / float64(n.cfg.TimeScale)
}

// Node is one overlay participant: a handler table, counters, and —
// under the real clock — an inbox goroutine.
type Node struct {
	id    topology.NodeID
	net   *Network
	inbox chan Message

	// down marks a departed/failed node: its deliveries are dropped and
	// counted, and it originates no traffic. The flag is what node-churn
	// scenarios flip to kill and re-join overlay participants mid-run.
	down atomic.Bool

	mu       sync.RWMutex
	handlers map[string]Handler
}

// ID returns the overlay node id.
func (nd *Node) ID() topology.NodeID { return nd.id }

// Register installs the handler for a port, replacing any previous one.
func (nd *Node) Register(port string, h Handler) {
	nd.mu.Lock()
	nd.handlers[port] = h
	nd.mu.Unlock()
}

// Unregister removes the handler for a port.
func (nd *Node) Unregister(port string) {
	nd.mu.Lock()
	delete(nd.handlers, port)
	nd.mu.Unlock()
}

// SetNodeDown marks the node dead (down=true) or rejoined (down=false).
// A dead node's incoming deliveries are dropped and counted in
// msgs.down_dropped (hb.down_dropped for heartbeat pings, so liveness
// noise never pollutes data-loss accounting), and its outgoing Sends are
// refused. Live re-optimization drains a node's services before the
// control plane marks it down; a zero down-drop count is therefore the
// data plane's proof of lossless migration.
func (n *Network) SetNodeDown(id topology.NodeID, down bool) {
	n.nodes[id].down.Store(down)
}

// NodeDown reports whether the node is currently marked down.
func (n *Network) NodeDown(id topology.NodeID) bool { return n.nodes[id].down.Load() }

// SetTracer installs (or, with nil, removes) the trace sink for fault
// events. Safe to call at any time; the fault path reloads it per
// message.
func (n *Network) SetTracer(t *trace.Tracer) { n.tracer.Store(t) }

// Tracer returns the installed trace sink (nil when tracing is off) —
// nil-receiver safe to use directly.
func (n *Network) Tracer() *trace.Tracer { return n.tracer.Load() }

// Send schedules delivery of a message to the port on the destination
// node, after the topology latency (scaled). It never blocks; messages
// sent after Stop — or from a node marked down — are dropped.
func (nd *Node) Send(to topology.NodeID, port string, sizeKB float64, payload any) error {
	if int(to) < 0 || int(to) >= len(nd.net.nodes) {
		return fmt.Errorf("overlay: destination %d out of range", to)
	}
	n := nd.net
	if nd.down.Load() {
		n.Metrics.Counter("msgs.down_refused").Inc()
		return fmt.Errorf("overlay: node %d is down", nd.id)
	}
	msg := Message{
		From:    nd.id,
		To:      to,
		Port:    port,
		SizeKB:  sizeKB,
		Payload: payload,
		SentAt:  n.clock.Now(),
	}
	latMs := n.topo.Latency(nd.id, to)

	n.Metrics.Counter("msgs.sent").Inc()
	n.Metrics.Counter("kb.sent").Add(sizeKB)
	n.Metrics.Counter("usage.kbms").Add(sizeKB * latMs)

	if fi := n.faults.Load(); fi != nil {
		drop, extraMs := fi.onSend(nd.id, to)
		if drop {
			if port == HeartbeatPort {
				n.Metrics.Counter("faults.hb_dropped").Inc()
			} else {
				n.Metrics.Counter("faults.dropped").Inc()
			}
			if tr := n.tracer.Load(); tr.Enabled() && tr.Sample() {
				tr.Emit("overlay", "fault_drop",
					trace.Int("from", int(nd.id)), trace.Int("to", int(to)),
					trace.Str("port", port))
			}
			return nil // silent loss: the sender never learns
		}
		latMs += extraMs
	}
	delay := time.Duration(latMs * float64(n.cfg.TimeScale))

	if n.virtual {
		// Discrete-event path: the delivery is a clock event that
		// dispatches the handler directly at the arrival instant.
		n.clock.AfterFunc(delay, func() {
			select {
			case <-n.quit:
				n.Metrics.Counter("msgs.dropped").Inc()
			default:
				n.nodes[msg.To].dispatch(msg)
			}
		})
		return nil
	}

	n.wg.Add(1)
	if delay <= 0 {
		go n.deliver(msg)
		return nil
	}
	time.AfterFunc(delay, func() { n.deliver(msg) })
	return nil
}

// deliver enqueues the message unless the runtime is stopping (real
// clock only).
func (n *Network) deliver(msg Message) {
	defer n.wg.Done()
	dst := n.nodes[msg.To]
	select {
	case <-n.quit:
		n.Metrics.Counter("msgs.dropped").Inc()
	case dst.inbox <- msg:
	}
}

// loop is the node goroutine: dispatch until shutdown (real clock
// only).
func (nd *Node) loop() {
	defer nd.net.wg.Done()
	for {
		select {
		case <-nd.net.quit:
			return
		case msg := <-nd.inbox:
			nd.dispatch(msg)
		}
	}
}

func (nd *Node) dispatch(msg Message) {
	if nd.down.Load() {
		if msg.Port == HeartbeatPort {
			nd.net.Metrics.Counter("hb.down_dropped").Inc()
		} else {
			nd.net.Metrics.Counter("msgs.down_dropped").Inc()
		}
		return
	}
	// A heartbeat is a liveness claim; one that outlives its sender (the
	// node was killed while the beat was in flight) must never reach the
	// failure detector, or a freshly dead node looks alive for an extra
	// interval. Data messages from a dead source still deliver — they
	// left the wire while the node lived.
	if msg.Port == HeartbeatPort && nd.net.nodes[msg.From].down.Load() {
		nd.net.Metrics.Counter("hb.postmortem_dropped").Inc()
		return
	}
	nd.mu.RLock()
	h := nd.handlers[msg.Port]
	nd.mu.RUnlock()
	if h == nil {
		nd.net.Metrics.Counter("msgs.unrouted").Inc()
		return
	}
	h(msg)
}

// HeartbeatPort is the reserved port heartbeat pings arrive on.
const HeartbeatPort = "overlay.hb"

// ObserveHeartbeats installs fn as the heartbeat observer: it is
// called for every heartbeat delivered to any node (on the delivering
// goroutine — the scheduler under a virtual clock). Pass nil to
// remove. Failure detectors (package failure) consume liveness
// traffic through this hook.
func (n *Network) ObserveHeartbeats(fn func(Message)) {
	if fn == nil {
		n.hbObserver.Store(nil)
		return
	}
	n.hbObserver.Store(&fn)
}

// Heartbeats is a running liveness-ping schedule; Stop cancels it.
type Heartbeats struct {
	net *Network

	mu      sync.Mutex
	stopped bool
	timers  []simtime.Timer
	// inflight counts beat callbacks past their stopped-check; Add only
	// happens under mu with stopped == false, so Stop's Wait can never
	// race an Add (the WaitGroup misuse Send-vs-Network.Stop would
	// otherwise hit).
	inflight sync.WaitGroup
}

// HeartbeatOpts tunes StartHeartbeatsOpts.
type HeartbeatOpts struct {
	// SkipDownTargets re-targets each beat to the next *live* successor
	// in id order, the ring-stabilization analogue: a crashed receiver
	// must not black-hole its predecessor's liveness signal, or a
	// failure detector would condemn the (live) predecessor too. Off,
	// beats keep their static successor and pings to a down node count
	// hb.down_dropped.
	SkipDownTargets bool
}

// StartHeartbeats begins periodic liveness traffic: every `every` of
// clock time, each node sends a sizeKB ping to the node after it in id
// order (wrapping), clock-driven so heartbeats are free under virtual
// time. Beats are counted in the hb.sent and hb.recv counters and
// charged to the usual traffic metrics. The first round fires after one
// full interval.
func (n *Network) StartHeartbeats(every time.Duration, sizeKB float64) *Heartbeats {
	return n.StartHeartbeatsOpts(every, sizeKB, HeartbeatOpts{})
}

// StartHeartbeatsOpts is StartHeartbeats with explicit options.
func (n *Network) StartHeartbeatsOpts(every time.Duration, sizeKB float64, opts HeartbeatOpts) *Heartbeats {
	hb := &Heartbeats{net: n}
	recv := n.Metrics.Counter("hb.recv")
	sent := n.Metrics.Counter("hb.sent")
	for _, nd := range n.nodes {
		nd.Register(HeartbeatPort, func(m Message) {
			recv.Inc()
			if ob := n.hbObserver.Load(); ob != nil {
				(*ob)(m)
			}
		})
	}
	hb.timers = make([]simtime.Timer, len(n.nodes))
	hb.mu.Lock()
	defer hb.mu.Unlock() // early real-clock fires block until setup completes
	for i, nd := range n.nodes {
		i, nd := i, nd
		var beat func()
		beat = func() {
			hb.mu.Lock()
			if hb.stopped {
				hb.mu.Unlock()
				return
			}
			select {
			case <-n.quit:
				hb.mu.Unlock()
				return
			default:
			}
			hb.inflight.Add(1)
			hb.mu.Unlock()
			to := topology.NodeID((i + 1) % len(n.nodes))
			if opts.SkipDownTargets {
				for k := 1; k < len(n.nodes); k++ {
					cand := topology.NodeID((i + k) % len(n.nodes))
					if !n.nodes[cand].down.Load() {
						to = cand
						break
					}
				}
			}
			// Down nodes fall silent but keep their schedule, so a
			// re-joined node resumes beating on the next round.
			if nd.Send(to, HeartbeatPort, sizeKB, nil) == nil {
				sent.Inc()
			}
			hb.inflight.Done()
			hb.mu.Lock()
			if !hb.stopped {
				hb.timers[i] = n.clock.AfterFunc(every, beat)
			}
			hb.mu.Unlock()
		}
		hb.timers[i] = n.clock.AfterFunc(every, beat)
	}
	return hb
}

// Stop halts the heartbeat schedule and waits out any beat already past
// its stopped-check, so `hb.Stop(); net.Stop()` is always safe — no
// beat can call Send (and bump the network's delivery WaitGroup) after
// Stop returns.
func (hb *Heartbeats) Stop() {
	hb.mu.Lock()
	if hb.stopped {
		hb.mu.Unlock()
		return
	}
	hb.stopped = true
	for _, t := range hb.timers {
		if t != nil {
			t.Stop()
		}
	}
	hb.mu.Unlock()
	hb.inflight.Wait()
}
