// Package trace is the deterministic structured-event subsystem: every
// layer of the system (optimizer sweeps, the stream engine's tuple
// path, migrations, the adaptation loop, DHT lookups, fault injection,
// the failure detector) emits events and spans into one Tracer, stamped
// by the layer's clock. Under a virtual clock (package simtime) the
// whole run is serialized on the scheduler goroutine, so same-seed runs
// produce bit-identical trace output — the exporters (export.go) are
// careful to keep serialization deterministic too (ordered args, fixed
// float formatting, no map iteration).
//
// The disabled path is a nil receiver: a nil *Tracer is a valid,
// always-off tracer whose methods return immediately, so hot paths hold
// a possibly-nil pointer and call it unconditionally. The only cost on
// the tuple path is one nil check (sub-nanosecond, benchmarked in the
// root BenchmarkTraceEmitDisabled).
package trace

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
)

// Phase classifies an event: an instant, or one end of a span.
type Phase uint8

const (
	// Instant is a point event.
	Instant Phase = iota
	// Begin opens a span; End closes it. The two share a span id.
	Begin
	// End closes the span opened by the Begin with the same id.
	End
)

// String returns the Chrome trace-event phase letter ("i", "B", "E").
func (p Phase) String() string {
	switch p {
	case Begin:
		return "B"
	case End:
		return "E"
	default:
		return "i"
	}
}

// Arg is one key/value pair on an event. Exactly one of Str or Num is
// meaningful, selected by IsNum. Args are an ordered slice, not a map,
// so serialization order is the emission order — deterministic.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Str builds a string-valued argument.
func Str(key, val string) Arg { return Arg{Key: key, Str: val} }

// Num builds a float-valued argument.
func Num(key string, val float64) Arg { return Arg{Key: key, Num: val, IsNum: true} }

// Int builds an integer-valued argument (stored as a float; integral
// values up to 2^53 round-trip exactly).
func Int(key string, val int) Arg { return Arg{Key: key, Num: float64(val), IsNum: true} }

// Dur builds a duration argument in simulated milliseconds (the
// convention is 1 virtual ms per simulated ms, see overlay.VirtualConfig).
func Dur(key string, d time.Duration) Arg {
	return Arg{Key: key, Num: float64(d) / float64(time.Millisecond), IsNum: true}
}

// Event is one recorded trace event.
type Event struct {
	// Seq is the global emission order (1-based).
	Seq uint64
	// T is the clock time elapsed since the tracer started.
	T time.Duration
	// Cat is the emitting layer ("optimizer", "engine", "adapt",
	// "dht", "overlay", "failure", ...).
	Cat string
	// Name identifies the event within its category.
	Name string
	// Ph is the event phase (instant / span begin / span end).
	Ph Phase
	// Span links Begin/End pairs; 0 on instants outside any span.
	Span uint64
	// Parent is the enclosing span's id for nested spans (migration
	// spans under an adaptation sweep, repair rounds under a failure
	// sweep); 0 for root spans and plain instants.
	Parent uint64
	// Args are the event's ordered payload fields.
	Args []Arg
}

// Tracer collects events. The zero value is not usable — construct with
// New. A nil *Tracer is the disabled tracer: every method on it is a
// no-op (Sample reports false), so callers never need to branch.
type Tracer struct {
	clock simtime.Clock
	start time.Time

	// sampleEvery gates high-frequency event classes (tuple hops, fault
	// drops): Sample() reports true once per this many calls.
	sampleEvery uint64
	sampleCtr   atomic.Uint64

	// limit bounds the event buffer; emissions past it are counted in
	// dropped rather than stored, so a runaway run degrades instead of
	// exhausting memory.
	limit   int
	dropped atomic.Uint64

	mu     sync.Mutex
	seq    uint64
	spanID uint64
	events []Event

	// sink, when set, receives each event as a JSONL line at emission
	// time instead of the event being retained in events — constant
	// memory regardless of run length (see StreamJSONL).
	sink    *bufio.Writer
	sinkBuf []byte
	sinkErr error
}

// DefaultSampleEvery is the default tuple-hop sampling period.
const DefaultSampleEvery = 64

// DefaultLimit is the default event-buffer cap.
const DefaultLimit = 1 << 20

// New builds a tracer stamping events with the given clock (nil means
// the real clock). Pass the same clock that drives the runtime being
// traced: under a virtual clock, timestamps are exact simulated time
// and same-seed runs trace bit-identically.
func New(clock simtime.Clock) *Tracer {
	if clock == nil {
		clock = simtime.Real()
	}
	return &Tracer{
		clock:       clock,
		start:       clock.Now(),
		sampleEvery: DefaultSampleEvery,
		limit:       DefaultLimit,
	}
}

// SetSampleEvery sets the sampling period for Sample-gated event
// classes (n <= 1 means every call samples). Call before tracing
// starts; the period is read without synchronization on the hot path.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.sampleEvery = uint64(n)
}

// SetLimit caps the event buffer (n <= 0 restores the default).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultLimit
	}
	t.limit = n
}

// Enabled reports whether the tracer records events. It is the
// idiomatic guard around expensive argument construction:
//
//	if tr.Enabled() { tr.Emit(...) }
func (t *Tracer) Enabled() bool { return t != nil }

// Sample reports whether a high-frequency event (a tuple hop, a fault
// drop) should be emitted this time: true once per SampleEvery calls.
// Always false on a nil tracer. The counter is shared across all
// sampled event classes and advances deterministically under a virtual
// clock — but only in control context. Shard-context code (the sharded
// data plane's per-node event handlers) must use SampleAt with a
// per-origin counter instead, or the sampling decision would depend on
// cross-shard interleaving.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.sampleCtr.Add(1)%t.sampleEvery == 1 || t.sampleEvery == 1
}

// SampleAt is Sample against a caller-owned counter: the caller keeps
// one counter per deterministic execution domain (per node), so the
// decision sequence is a pure function of that domain's history and is
// identical under single-queue and sharded execution. The counter is
// not synchronized — each domain's events execute serially.
func (t *Tracer) SampleAt(ctr *uint64) bool {
	if t == nil {
		return false
	}
	*ctr++
	return *ctr%t.sampleEvery == 1 || t.sampleEvery == 1
}

// EmitAtTime records an instant event stamped with the given clock
// time instead of the tracer clock's current reading. The sharded data
// plane uses it to flush shard-buffered emissions at barriers with
// their original event timestamps, so the exported bytes match a
// single-queue run's. No-op on a nil tracer.
func (t *Tracer) EmitAtTime(at time.Time, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recordLockedAt(Event{Cat: cat, Name: name, Ph: Instant, Args: args}, at.Sub(t.start))
	t.mu.Unlock()
}

// Emit records an instant event. No-op on a nil tracer.
func (t *Tracer) Emit(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(Event{Cat: cat, Name: name, Ph: Instant, Args: args})
}

// Begin opens a span and returns its handle; close it with End. The
// zero Span (and any span from a nil tracer) is valid and inert.
func (t *Tracer) Begin(cat, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	t.spanID++
	id := t.spanID
	t.recordLocked(Event{Cat: cat, Name: name, Ph: Begin, Span: id, Args: args})
	t.mu.Unlock()
	return Span{t: t, id: id, cat: cat, name: name}
}

// Span is a handle to an open span.
type Span struct {
	t         *Tracer
	id        uint64
	parent    uint64
	cat, name string
}

// Active reports whether the span records anything (false for spans
// from a nil tracer and for the zero Span).
func (s Span) Active() bool { return s.t != nil }

// ID returns the span id (0 for inert spans).
func (s Span) ID() uint64 { return s.id }

// ParentID returns the enclosing span's id, 0 for root spans.
func (s Span) ParentID() uint64 { return s.parent }

// Child opens a span nested under s: the child's events carry s's id
// as Parent, and the Chrome exporter places the child on its root
// ancestor's track so Perfetto renders the nesting. A child of an
// inert span is inert.
func (s Span) Child(cat, name string, args ...Arg) Span {
	if s.t == nil {
		return Span{}
	}
	t := s.t
	t.mu.Lock()
	t.spanID++
	id := t.spanID
	t.recordLocked(Event{Cat: cat, Name: name, Ph: Begin, Span: id, Parent: s.id, Args: args})
	t.mu.Unlock()
	return Span{t: t, id: id, parent: s.id, cat: cat, name: name}
}

// End closes the span, attaching any final args to the end event.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.record(Event{Cat: s.cat, Name: s.name, Ph: End, Span: s.id, Parent: s.parent, Args: args})
}

// Emit records an instant event inside the span (same category, linked
// by the span id).
func (s Span) Emit(name string, args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.record(Event{Cat: s.cat, Name: name, Ph: Instant, Span: s.id, Parent: s.parent, Args: args})
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	t.recordLocked(ev)
	t.mu.Unlock()
}

func (t *Tracer) recordLocked(ev Event) {
	t.recordLockedAt(ev, t.clock.Since(t.start))
}

func (t *Tracer) recordLockedAt(ev Event, at time.Duration) {
	if t.sink != nil {
		// Streaming mode: serialize and write immediately, retain
		// nothing. The buffer cap does not apply — bounded memory is
		// exactly what the sink provides, so no event is ever dropped.
		t.seq++
		ev.Seq = t.seq
		ev.T = at
		t.sinkBuf = appendJSONLEvent(t.sinkBuf[:0], ev)
		t.sinkBuf = append(t.sinkBuf, '\n')
		if _, err := t.sink.Write(t.sinkBuf); err != nil && t.sinkErr == nil {
			t.sinkErr = err
		}
		return
	}
	if len(t.events) >= t.limit && ev.Ph != End {
		// Span ends still record past the limit so open spans close in
		// the export; everything else is counted and dropped.
		t.dropped.Add(1)
		return
	}
	t.seq++
	ev.Seq = t.seq
	ev.T = at
	t.events = append(t.events, ev)
}

// StreamJSONL switches the tracer into streaming mode: from this call
// on, every recorded event is serialized as one JSONL line (the exact
// bytes WriteJSONL would produce for it) and written to w at emission
// time, and is NOT retained in the in-memory buffer — memory use stays
// constant no matter how long the run is, which is what 100k-node
// scenarios need. Writes are buffered; call Flush (or Reset) to push
// the tail through. The event-buffer limit does not apply to streamed
// events: nothing is ever dropped.
//
// Call before tracing starts. Events already buffered when the sink is
// installed stay in the buffer (drain them with WriteJSONL first if a
// single contiguous file is wanted); seq numbering continues across the
// switch. No-op on a nil tracer.
func (t *Tracer) StreamJSONL(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = bufio.NewWriter(w)
	t.sinkErr = nil
}

// Flush pushes any buffered streamed bytes to the underlying writer and
// returns the first error the sink has seen (write or flush). No-op
// (nil) when not streaming or on a nil tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return nil
	}
	if err := t.sink.Flush(); err != nil && t.sinkErr == nil {
		t.sinkErr = err
	}
	return t.sinkErr
}

// Streaming reports whether a StreamJSONL sink is installed.
func (t *Tracer) Streaming() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink != nil
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many emissions the buffer cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Events returns a snapshot copy of the recorded events in emission
// order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Rebase re-points the tracer at a new clock and zeroes the time
// origin at that clock's current reading. Experiment drivers that
// build their own virtual clock call this on caller-provided tracers
// so events stamp simulated time instead of a clock that never
// advances. Call before any events are recorded.
func (t *Tracer) Rebase(clock simtime.Clock) {
	if t == nil || clock == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
	t.start = clock.Now()
}

// Reset discards all recorded events and re-bases the time origin at
// the clock's current reading.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.seq = 0
	t.spanID = 0
	t.start = t.clock.Now()
	t.sampleCtr.Store(0)
	t.dropped.Store(0)
	if t.sink != nil {
		// Streaming continues across a reset; push what's pending so
		// the pre-reset lines are on disk before the numbering restarts.
		if err := t.sink.Flush(); err != nil && t.sinkErr == nil {
			t.sinkErr = err
		}
	}
}
