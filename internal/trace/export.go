// Exporters. Both formats are hand-serialized: args keep emission
// order, floats use strconv's shortest round-trip form, and category →
// track assignment follows first appearance — so a deterministic event
// stream exports to deterministic bytes, which is what the same-seed
// bit-identical contract tests compare.
package trace

import (
	"bufio"
	"io"
	"strconv"
)

// appendJSONString appends s as a JSON string literal.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendFloat appends v in the shortest form that round-trips — the
// fixed float convention both exporters share.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendArgs appends the args as a JSON object body (no braces).
func appendArgs(b []byte, args []Arg) []byte {
	for i, a := range args {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		if a.IsNum {
			b = appendFloat(b, a.Num)
		} else {
			b = appendJSONString(b, a.Str)
		}
	}
	return b
}

// appendJSONLEvent appends one event in the JSONL object form shared by
// WriteJSONL and the streaming sink (no trailing newline), so the two
// paths produce byte-identical lines.
func appendJSONLEvent(b []byte, ev Event) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"t_us":`...)
	b = appendFloat(b, float64(ev.T.Nanoseconds())/1e3)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, ev.Cat)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, ev.Name)
	b = append(b, `,"ph":`...)
	b = appendJSONString(b, ev.Ph.String())
	if ev.Span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendUint(b, ev.Span, 10)
	}
	if ev.Parent != 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendUint(b, ev.Parent, 10)
	}
	if len(ev.Args) > 0 {
		b = append(b, `,"args":{`...)
		b = appendArgs(b, ev.Args)
		b = append(b, '}')
	}
	return append(b, '}')
}

// WriteJSONL writes one JSON object per event, one per line:
//
//	{"seq":3,"t_us":1500,"cat":"adapt","name":"sweep","ph":"B","span":1,"args":{...}}
//
// t_us is microseconds of clock time since the tracer started (under
// the 1 virtual ms = 1 simulated ms convention, 1000 t_us = 1 sim-ms).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var b []byte
	for _, ev := range t.Events() {
		b = appendJSONLEvent(b[:0], ev)
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace writes the run in the Chrome trace-event format
// (JSON object form), loadable directly in Perfetto (ui.perfetto.dev)
// or chrome://tracing. Each category becomes its own named track
// (pid 0, tid = category index in first-appearance order); span
// begin/end map to "B"/"E" duration events and instants to "i" with
// global scope, all timestamped in microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	events := t.Events()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	// Category → tid in first-appearance order (deterministic). Nested
	// spans are re-homed onto their root ancestor's track — B/E events
	// on one tid nest by time containment in Perfetto, which is what
	// renders migration/repair sub-spans inside their sweep span — so
	// the category scan resolves each span event to its root category
	// first.
	spanParent := map[uint64]uint64{}
	spanCat := map[uint64]string{}
	for _, ev := range events {
		if ev.Ph == Begin {
			spanParent[ev.Span] = ev.Parent
			spanCat[ev.Span] = ev.Cat
		}
	}
	rootCat := func(ev Event) string {
		if ev.Span == 0 {
			return ev.Cat
		}
		id := ev.Span
		for depth := 0; depth < 64; depth++ { // cycle guard
			p, ok := spanParent[id]
			if !ok || p == 0 {
				break
			}
			id = p
		}
		if cat, ok := spanCat[id]; ok {
			return cat
		}
		return ev.Cat
	}
	tids := map[string]int{}
	order := []string{}
	for _, ev := range events {
		if cat := rootCat(ev); true {
			if _, ok := tids[cat]; !ok {
				tids[cat] = len(order)
				order = append(order, cat)
			}
		}
	}
	var b []byte
	first := true
	comma := func() {
		if !first {
			b = append(b, ',')
		}
		first = false
	}
	// Track-name metadata events come first so viewers label the rows.
	for i, cat := range order {
		b = b[:0]
		comma()
		b = append(b, `{"ph":"M","pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, `,"name":"thread_name","args":{"name":`...)
		b = appendJSONString(b, cat)
		b = append(b, `}}`...)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	for _, ev := range events {
		b = b[:0]
		comma()
		b = append(b, `{"ph":`...)
		b = appendJSONString(b, ev.Ph.String())
		b = append(b, `,"pid":0,"tid":`...)
		b = strconv.AppendInt(b, int64(tids[rootCat(ev)]), 10)
		b = append(b, `,"ts":`...)
		b = appendFloat(b, float64(ev.T.Nanoseconds())/1e3)
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, ev.Name)
		if ev.Ph == Instant {
			b = append(b, `,"s":"g"`...)
		}
		b = append(b, `,"args":{`...)
		if ev.Span != 0 {
			b = append(b, `"span":`...)
			b = strconv.AppendUint(b, ev.Span, 10)
			if ev.Parent != 0 {
				b = append(b, `,"parent":`...)
				b = strconv.AppendUint(b, ev.Parent, 10)
			}
			if len(ev.Args) > 0 {
				b = append(b, ',')
			}
		}
		b = appendArgs(b, ev.Args)
		b = append(b, `}}`...)
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(`]}`); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEventsJSON writes the events as one JSON array (the JSONL lines
// joined) — the trace section a metrics.Report embeds.
func (t *Tracer) WriteEventsJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	bw := bufio.NewWriter(w)
	if err := bw.WriteByte('['); err != nil {
		return err
	}
	var b []byte
	for i, ev := range t.Events() {
		b = b[:0]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
		b = append(b, `,"t_us":`...)
		b = appendFloat(b, float64(ev.T.Nanoseconds())/1e3)
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, ev.Cat)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, ev.Name)
		b = append(b, `,"ph":`...)
		b = appendJSONString(b, ev.Ph.String())
		if ev.Span != 0 {
			b = append(b, `,"span":`...)
			b = strconv.AppendUint(b, ev.Span, 10)
		}
		if ev.Parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendUint(b, ev.Parent, 10)
		}
		if len(ev.Args) > 0 {
			b = append(b, `,"args":{`...)
			b = appendArgs(b, ev.Args)
			b = append(b, '}')
		}
		b = append(b, '}')
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(']'); err != nil {
		return err
	}
	return bw.Flush()
}
