package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
)

// A nil tracer must be a safe, near-free no-op at every call site —
// that is the contract every instrumented layer relies on.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.Sample() {
		t.Fatal("nil tracer reports Sample true")
	}
	tr.Emit("cat", "ev", Int("x", 1))
	sp := tr.Begin("cat", "span")
	if sp.Active() {
		t.Fatal("span from nil tracer is Active")
	}
	sp.Emit("inner", Num("v", 2))
	sp.End(Str("outcome", "done"))
	tr.SetSampleEvery(8)
	tr.SetLimit(10)
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer accumulated state")
	}
	var zero Span
	zero.Emit("x")
	zero.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracer JSONL wrote %q", buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `{"traceEvents":[]}` {
		t.Fatalf("nil tracer Chrome trace = %q", buf.String())
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := New(simtime.NewVirtual())
	sp := tr.Begin("opt", "plan", Int("circuits", 3))
	sp.Emit("accept", Num("gain", 1.5))
	sp.End(Int("moves", 1))
	tr.Emit("opt", "note")

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Ph != Begin || evs[1].Ph != Instant || evs[2].Ph != End {
		t.Fatalf("phases = %v %v %v", evs[0].Ph, evs[1].Ph, evs[2].Ph)
	}
	if evs[0].Span == 0 || evs[0].Span != evs[1].Span || evs[1].Span != evs[2].Span {
		t.Fatalf("span ids not linked: %d %d %d", evs[0].Span, evs[1].Span, evs[2].Span)
	}
	if evs[3].Span != 0 {
		t.Fatalf("plain Emit got span id %d", evs[3].Span)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	sp2 := tr.Begin("opt", "plan")
	if id := tr.Events()[4].Span; id == evs[0].Span {
		t.Fatalf("span ids reused: %d", id)
	}
	sp2.End()
}

func TestSampleEvery(t *testing.T) {
	tr := New(simtime.NewVirtual())
	tr.SetSampleEvery(4)
	hits := 0
	for i := 0; i < 16; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("sampled %d of 16 at rate 1/4", hits)
	}
	tr.SetSampleEvery(1)
	for i := 0; i < 3; i++ {
		if !tr.Sample() {
			t.Fatal("rate 1/1 must always sample")
		}
	}
}

// The buffer limit drops new Begin/Instant events but never End events,
// so every opened span still closes in the export.
func TestLimitKeepsSpanEnds(t *testing.T) {
	tr := New(simtime.NewVirtual())
	tr.SetLimit(2)
	sp := tr.Begin("c", "outer")
	tr.Emit("c", "fill")
	tr.Emit("c", "over") // dropped
	sp.End()             // recorded despite the full buffer
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	evs := tr.Events()
	if evs[len(evs)-1].Ph != End {
		t.Fatal("final event is not the span End")
	}
}

func TestWriteJSONLShape(t *testing.T) {
	tr := New(simtime.NewVirtual())
	sp := tr.Begin("dht", "lookup", Str("key", "0xbeef"), Int("start", 7))
	sp.Emit("hop", Int("from", 7), Int("to", 12))
	sp.End(Str("outcome", "owner"), Int("hops", 1))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		for _, k := range []string{"seq", "t_us", "cat", "name", "ph"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("line %d missing %q: %s", i, k, ln)
			}
		}
	}
	var hop map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &hop); err != nil {
		t.Fatal(err)
	}
	args := hop["args"].(map[string]any)
	if args["from"].(float64) != 7 || args["to"].(float64) != 12 {
		t.Fatalf("hop args = %v", args)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := New(simtime.NewVirtual())
	sp := tr.Begin("engine", "migration", Int("q", 1))
	sp.Emit("cutover", Int("buffered", 2))
	sp.End(Str("outcome", "done"))
	tr.Emit("overlay", "fault_crash", Int("node", 9))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not JSON: %v", err)
	}
	// Two categories -> two thread_name metadata events, then the four
	// real events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6", len(doc.TraceEvents))
	}
	meta := 0
	tids := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			meta++
			args := ev["args"].(map[string]any)
			tids[args["name"].(string)] = ev["tid"].(float64)
			continue
		}
		if ev["cat"] == "engine" && ev["tid"].(float64) != tids["engine"] {
			t.Fatalf("engine event on tid %v, want %v", ev["tid"], tids["engine"])
		}
	}
	if meta != 2 {
		t.Fatalf("got %d metadata events, want 2", meta)
	}
}

// Concurrent emission must be race-free and lose nothing (under -race
// this is the synchronization proof for real-clock scenarios).
func TestConcurrentEmit(t *testing.T) {
	tr := New(nil)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if g%2 == 0 {
					sp := tr.Begin("load", "work", Int("g", g))
					sp.End(Int("i", i))
				} else {
					tr.Emit("load", "tick", Int("g", g))
					tr.Sample()
				}
			}
		}(g)
	}
	wg.Wait()
	want := goroutines / 2 * per * 2 // Begin+End pairs
	want += goroutines / 2 * per     // instants
	if tr.Len() != want {
		t.Fatalf("len = %d, want %d", tr.Len(), want)
	}
	seen := map[uint64]bool{}
	for _, ev := range tr.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestResetClearsBuffer(t *testing.T) {
	tr := New(simtime.NewVirtual())
	tr.SetLimit(1)
	tr.Emit("c", "a")
	tr.Emit("c", "b") // dropped
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.Emit("c", "c")
	if tr.Events()[0].Seq != 1 {
		t.Fatal("seq did not restart after Reset")
	}
}

// emitFixture drives an identical deterministic event sequence into tr:
// the streaming-vs-buffered byte-equality test runs it twice.
func emitFixture(tr *Tracer, clk *simtime.VirtualClock) {
	stop := clk.Drive()
	defer stop()
	for i := 0; i < 200; i++ {
		tr.Emit("engine", "tuple", Int("hop", i), Str("q", "π-\"quoted\"\n"))
		sp := tr.Begin("adapt", "sweep", Num("thr", 1.05))
		clk.Sleep(time.Millisecond)
		sp.Emit("accept", Num("gain", float64(i)*0.125))
		sp.End(Int("moves", i%3))
	}
}

// A streamed trace must be byte-identical to a buffered WriteJSONL
// export of the same run — that is the contract that lets callers flip
// to constant-memory streaming without losing the same-seed
// bit-identity guarantees.
func TestStreamJSONLMatchesBuffered(t *testing.T) {
	var streamed bytes.Buffer
	{
		clk := simtime.NewVirtual()
		tr := New(clk)
		tr.StreamJSONL(&streamed)
		if !tr.Streaming() {
			t.Fatal("Streaming() false after StreamJSONL")
		}
		emitFixture(tr, clk)
		if tr.Len() != 0 {
			t.Fatalf("streaming tracer retained %d events in memory", tr.Len())
		}
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var buffered bytes.Buffer
	{
		clk := simtime.NewVirtual()
		tr := New(clk)
		emitFixture(tr, clk)
		if err := tr.WriteJSONL(&buffered); err != nil {
			t.Fatal(err)
		}
	}
	if buffered.Len() == 0 {
		t.Fatal("fixture produced no events")
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		sl := strings.Split(streamed.String(), "\n")
		bl := strings.Split(buffered.String(), "\n")
		for i := 0; i < len(sl) && i < len(bl); i++ {
			if sl[i] != bl[i] {
				t.Fatalf("streamed and buffered JSONL diverge at line %d:\n stream: %s\n buffer: %s", i+1, sl[i], bl[i])
			}
		}
		t.Fatalf("streamed and buffered JSONL differ in length: %d vs %d lines", len(sl), len(bl))
	}
}

// Streaming must never drop events: the buffer cap exists to bound
// memory, and a sink bounds memory by construction.
func TestStreamJSONLIgnoresLimit(t *testing.T) {
	var out bytes.Buffer
	tr := New(simtime.NewVirtual())
	tr.SetLimit(4)
	tr.StreamJSONL(&out)
	for i := 0; i < 100; i++ {
		tr.Emit("cat", "ev", Int("i", i))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("streaming tracer dropped %d events", tr.Dropped())
	}
	if n := bytes.Count(out.Bytes(), []byte{'\n'}); n != 100 {
		t.Fatalf("streamed %d lines, want 100", n)
	}
	// Every line must be valid JSON with monotonically increasing seq.
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	last := uint64(0)
	for dec.More() {
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != last+1 {
			t.Fatalf("seq %d follows %d", ev.Seq, last)
		}
		last = ev.Seq
	}
}

// errWriter fails after n bytes to exercise sink error capture.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSinkFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errSinkFull
	}
	w.n -= len(p)
	return len(p), nil
}

var errSinkFull = &sinkFullError{}

type sinkFullError struct{}

func (*sinkFullError) Error() string { return "sink full" }

func TestStreamJSONLSurfacesWriteError(t *testing.T) {
	tr := New(simtime.NewVirtual())
	tr.StreamJSONL(&errWriter{n: 64})
	for i := 0; i < 5000; i++ {
		tr.Emit("cat", "ev", Int("i", i))
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush returned nil after sink write failure")
	}
}
