package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterAdd(t *testing.T) {
	var c Counter
	c.Add(1.5)
	c.Add(2.5)
	if got := c.Value(); got != 4.0 {
		t.Fatalf("Value() = %v, want 4.0", got)
	}
}

func TestCounterIgnoresNegativeAndNaN(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-1)
	c.Add(math.NaN())
	if got := c.Value(); got != 3 {
		t.Fatalf("Value() = %v, want 3 (negative/NaN must be ignored)", got)
	}
}

func TestCounterInc(t *testing.T) {
	var c Counter
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if got := c.Value(); got != 10 {
		t.Fatalf("Value() = %v, want 10", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value() = %v, want %v", got, workers*per)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value() = %v, want 7", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("Value() = %v, want 0", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{4, 1, 3, 2, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got != 15 {
		t.Fatalf("Sum() = %v, want 15", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("Mean() = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("Min() = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("Max() = %v, want 5", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("Quantile(0.5) = %v, want 3", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(10)
	if got := h.Quantile(0.25); got != 2.5 {
		t.Fatalf("Quantile(0.25) = %v, want 2.5", got)
	}
	if got := h.Quantile(0.75); got != 7.5 {
		t.Fatalf("Quantile(0.75) = %v, want 7.5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	h.Observe(1)
	if got := h.Count(); got != 1 {
		t.Fatalf("Count() = %d, want 1 (NaN ignored)", got)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Stddev() = %v, want 2.0", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if got := h.Count(); got != 0 {
		t.Fatalf("Count() after Reset = %d, want 0", got)
	}
}

func TestHistogramSnapshotSorted(t *testing.T) {
	var h Histogram
	for _, v := range []float64{3, 1, 2} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := []float64{1, 2, 3}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("Snapshot()[%d] = %v, want %v", i, snap[i], want[i])
		}
	}
}

// Quantiles must be monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		var h Histogram
		ok := false
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Observe(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		vlo, vhi := h.Quantile(lo), h.Quantile(hi)
		return vlo <= vhi && vlo >= h.Min() && vhi <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				h.Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("Count() = %d, want 2000", got)
	}
}

func TestTimeSeriesRecordAndLast(t *testing.T) {
	var ts TimeSeries
	if _, ok := ts.Last(); ok {
		t.Fatal("Last() on empty series should report !ok")
	}
	ts.Record(1, 10)
	ts.Record(2, 20)
	pts := ts.Points()
	if len(pts) != 2 || pts[0] != (Point{1, 10}) || pts[1] != (Point{2, 20}) {
		t.Fatalf("Points() = %v", pts)
	}
	last, ok := ts.Last()
	if !ok || last != (Point{2, 20}) {
		t.Fatalf("Last() = %v, %v", last, ok)
	}
	if ts.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", ts.Len())
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Add(5)
	c2 := r.Counter("x")
	if c2.Value() != 5 {
		t.Fatal("Registry.Counter must return the same instance per name")
	}
	g1 := r.Gauge("y")
	g1.Set(3)
	if r.Gauge("y").Value() != 3 {
		t.Fatal("Registry.Gauge must return the same instance per name")
	}
	h1 := r.Histogram("z")
	h1.Observe(1)
	if r.Histogram("z").Count() != 1 {
		t.Fatal("Registry.Histogram must return the same instance per name")
	}
	s1 := r.Series("w")
	s1.Record(0, 0)
	if r.Series("w").Len() != 1 {
		t.Fatal("Registry.Series must return the same instance per name")
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("a")
	r.Gauge("b")
	r.Histogram("c")
	r.Series("d")
	names := r.Names()
	want := []string{"counter/a", "gauge/b", "histogram/c", "series/d"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRegistrySummaryContainsMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(7)
	r.Gauge("load").Set(0.5)
	r.Histogram("lat").Observe(12)
	s := r.Summary()
	if s == "" {
		t.Fatal("Summary() should not be empty")
	}
	for _, substr := range []string{"msgs", "load", "lat"} {
		if !containsStr(s, substr) {
			t.Fatalf("Summary() missing %q:\n%s", substr, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
