// Package metrics provides lightweight, concurrency-safe measurement
// primitives used by the SBON simulator and stream engine: counters,
// gauges, sample histograms with quantile estimation, time series, and a
// named registry.
//
// The package is deliberately dependency-free (stdlib only) and designed
// for deterministic tests: histograms store raw samples, so quantiles are
// exact, and time series are plain (time, value) slices.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 counter safe for
// concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v. Negative v is ignored so that the
// counter remains monotone.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		cur := math.Float64frombits(old)
		nxt := math.Float64bits(cur + v)
		if c.bits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current counter value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable float64 value safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		nxt := math.Float64bits(cur + delta)
		if g.bits.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram collects float64 samples and computes order statistics
// over them. It is safe for concurrent use.
//
// In the default (exact) mode every sample is retained and quantiles
// are exact — the regime deterministic tests rely on. SetReservoir
// switches to a bounded reservoir (Vitter's algorithm R with a seeded
// generator): memory stays capped on long continuous-adaptation runs,
// quantiles become estimates over the reservoir, while Count, Sum,
// Mean, Min, Max, and Stddev stay exact via running aggregates.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool

	// maxSamples > 0 caps the sample buffer (reservoir mode); 0 keeps
	// every sample (exact mode, the default).
	maxSamples int
	rng        *rand.Rand

	// Running aggregates, exact in both modes.
	n          uint64
	sum, sumsq float64
	min, max   float64
}

// SetReservoir bounds the sample buffer to cap samples using seeded
// reservoir sampling; quantile queries become estimates over the
// reservoir while counts and moments remain exact. Call it before
// observing (samples already held beyond cap are truncated). cap <= 0
// restores exact mode.
func (h *Histogram) SetReservoir(cap int, seed int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if cap <= 0 {
		h.maxSamples = 0
		h.rng = nil
		return
	}
	h.maxSamples = cap
	h.rng = rand.New(rand.NewSource(seed))
	if len(h.samples) > cap {
		h.samples = h.samples[:cap]
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.sumsq += v * v
	if h.maxSamples > 0 && len(h.samples) >= h.maxSamples {
		// Reservoir replacement: keep each of the n samples seen so far
		// with equal probability cap/n.
		if j := h.rng.Int63n(int64(h.n)); int(j) < h.maxSamples {
			h.samples[j] = v
			h.sorted = false
		}
	} else {
		h.samples = append(h.samples, v)
		h.sorted = false
	}
	h.mu.Unlock()
}

// Count returns the number of observed samples (all of them, not just
// the retained reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.n)
}

// Retained returns how many samples the buffer currently holds (equal
// to Count in exact mode, at most the reservoir cap otherwise).
func (h *Histogram) Retained() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// ensureSortedLocked sorts the sample buffer if needed. Callers must hold mu.
func (h *Histogram) ensureSortedLocked() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank
// interpolation. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.ensureSortedLocked()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Min returns the smallest observed sample, or 0 if empty. Exact in
// both modes (tracked as a running aggregate).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample, or 0 if empty. Exact in
// both modes.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Stddev returns the population standard deviation over all observed
// samples: two-pass over the buffer in exact mode, from the running
// moments in reservoir mode.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if h.maxSamples > 0 {
		mean := h.sum / float64(h.n)
		ss := h.sumsq/float64(h.n) - mean*mean
		if ss < 0 {
			ss = 0
		}
		return math.Sqrt(ss)
	}
	n := len(h.samples)
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Snapshot returns a copy of all samples in insertion-independent
// (sorted) order.
func (h *Histogram) Snapshot() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ensureSortedLocked()
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Reset discards all samples and running aggregates (the reservoir
// configuration is kept).
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = true
	h.n = 0
	h.sum = 0
	h.sumsq = 0
	h.min = 0
	h.max = 0
	h.mu.Unlock()
}

// Point is one (time, value) observation in a TimeSeries. Time is in
// simulated seconds (or any monotone unit the caller chooses).
type Point struct {
	T float64
	V float64
}

// TimeSeries is an append-only sequence of timestamped values, safe for
// concurrent use.
type TimeSeries struct {
	mu  sync.Mutex
	pts []Point
}

// Record appends one observation.
func (ts *TimeSeries) Record(t, v float64) {
	ts.mu.Lock()
	ts.pts = append(ts.pts, Point{T: t, V: v})
	ts.mu.Unlock()
}

// Points returns a copy of all observations in insertion order.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Point, len(ts.pts))
	copy(out, ts.pts)
	return out
}

// Len returns the number of observations.
func (ts *TimeSeries) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.pts)
}

// Last returns the most recent observation and whether one exists.
func (ts *TimeSeries) Last() (Point, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.pts) == 0 {
		return Point{}, false
	}
	return ts.pts[len(ts.pts)-1], true
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	histograms  map[string]*Histogram
	series      map[string]*TimeSeries
	counterFams map[string]*CounterFamily
	gaugeFams   map[string]*GaugeFamily
	seriesFams  map[string]*SeriesFamily
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		histograms:  make(map[string]*Histogram),
		series:      make(map[string]*TimeSeries),
		counterFams: make(map[string]*CounterFamily),
		gaugeFams:   make(map[string]*GaugeFamily),
		seriesFams:  make(map[string]*SeriesFamily),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Series returns the time series with the given name, creating it if
// needed.
func (r *Registry) Series(name string) *TimeSeries {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &TimeSeries{}
		r.series[name] = s
	}
	return s
}

// Names returns the sorted names of all registered metrics, prefixed by
// kind ("counter/", "gauge/", "histogram/", "series/").
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for n := range r.counters {
		out = append(out, "counter/"+n)
	}
	for n := range r.gauges {
		out = append(out, "gauge/"+n)
	}
	for n := range r.histograms {
		out = append(out, "histogram/"+n)
	}
	for n := range r.series {
		out = append(out, "series/"+n)
	}
	for n := range r.counterFams {
		out = append(out, "counterfamily/"+n)
	}
	for n := range r.gaugeFams {
		out = append(out, "gaugefamily/"+n)
	}
	for n := range r.seriesFams {
		out = append(out, "seriesfamily/"+n)
	}
	sort.Strings(out)
	return out
}

// Summary renders a human-readable one-line-per-metric summary, sorted by
// name, suitable for experiment logs. Every registered kind appears:
// counters and gauges as `name = value`, histograms with their order
// statistics, time series as `name: n=<points> last=<value>`, and
// labeled families with one line per child, label sets sorted.
func (r *Registry) Summary() string {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	series := make(map[string]*TimeSeries, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	counterFams := make(map[string]*CounterFamily, len(r.counterFams))
	for k, v := range r.counterFams {
		counterFams[k] = v
	}
	gaugeFams := make(map[string]*GaugeFamily, len(r.gaugeFams))
	for k, v := range r.gaugeFams {
		gaugeFams[k] = v
	}
	seriesFams := make(map[string]*SeriesFamily, len(r.seriesFams))
	for k, v := range r.seriesFams {
		seriesFams[k] = v
	}
	r.mu.Unlock()

	var names []string
	for n := range counters {
		names = append(names, "c:"+n)
	}
	for n := range gauges {
		names = append(names, "g:"+n)
	}
	for n := range hists {
		names = append(names, "h:"+n)
	}
	for n := range series {
		names = append(names, "s:"+n)
	}
	for n := range counterFams {
		names = append(names, "C:"+n)
	}
	for n := range gaugeFams {
		names = append(names, "G:"+n)
	}
	for n := range seriesFams {
		names = append(names, "S:"+n)
	}
	sort.Strings(names)
	out := ""
	for _, tagged := range names {
		kind, name := tagged[:1], tagged[2:]
		switch kind {
		case "c":
			out += fmt.Sprintf("%s = %.6g\n", name, counters[name].Value())
		case "g":
			out += fmt.Sprintf("%s = %.6g\n", name, gauges[name].Value())
		case "h":
			h := hists[name]
			out += fmt.Sprintf("%s: n=%d mean=%.6g p50=%.6g p95=%.6g max=%.6g\n",
				name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
		case "s":
			ts := series[name]
			last, _ := ts.Last()
			out += fmt.Sprintf("%s: n=%d last=%.6g\n", name, ts.Len(), last.V)
		case "C":
			for _, kid := range counterFams[name].Children() {
				out += fmt.Sprintf("%s%s = %.6g\n", name, kid.Labels, kid.Metric.Value())
			}
		case "G":
			for _, kid := range gaugeFams[name].Children() {
				out += fmt.Sprintf("%s%s = %.6g\n", name, kid.Labels, kid.Metric.Value())
			}
		case "S":
			for _, kid := range seriesFams[name].Children() {
				last, _ := kid.Metric.Last()
				out += fmt.Sprintf("%s%s: n=%d last=%.6g\n", name, kid.Labels, kid.Metric.Len(), last.V)
			}
		}
	}
	return out
}
