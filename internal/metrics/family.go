// Labeled metric families: a family is one metric name fanned out over
// label values — migrations_total{reason="repair"}, per-node or
// per-circuit series — resolved to ordinary Counter/Gauge/Series
// children on first use. Children render in sorted label order, so
// summaries and exports are deterministic regardless of creation
// order.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// renderLabels formats label names/values as {k="v",k2="v2"}.
func renderLabels(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// family is the shared label-resolution core.
type family[T any] struct {
	name   string
	labels []string
	mu     sync.RWMutex
	kids   map[string]*T
}

func newFamily[T any](name string, labels []string) *family[T] {
	return &family[T]{name: name, labels: labels, kids: make(map[string]*T)}
}

// with resolves the child for the label values, creating it if needed.
// The number of values must match the family's label names.
func (f *family[T]) with(values []string) *T {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %s has %d labels, got %d values",
			f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.RLock()
	c, ok := f.kids[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.kids[key]; ok {
		return c
	}
	c = new(T)
	f.kids[key] = c
	return c
}

// snapshot returns the children keyed by rendered label string, sorted.
func (f *family[T]) snapshot() []Labeled[*T] {
	f.mu.RLock()
	out := make([]Labeled[*T], 0, len(f.kids))
	for k, v := range f.kids {
		out = append(out, Labeled[*T]{Labels: k, Metric: v})
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}

// Labeled pairs one family child with its rendered label set.
type Labeled[T any] struct {
	// Labels is the rendered label set, e.g. `{reason="repair"}`.
	Labels string
	Metric T
}

// CounterFamily is a set of counters sharing a name, split by labels.
type CounterFamily struct{ f *family[Counter] }

// With returns the counter for the label values (in the family's label
// order), creating it on first use.
func (cf *CounterFamily) With(values ...string) *Counter { return cf.f.with(values) }

// Name returns the family's metric name.
func (cf *CounterFamily) Name() string { return cf.f.name }

// Children returns the counters created so far, sorted by label set.
func (cf *CounterFamily) Children() []Labeled[*Counter] { return cf.f.snapshot() }

// GaugeFamily is a set of gauges sharing a name, split by labels.
type GaugeFamily struct{ f *family[Gauge] }

// With returns the gauge for the label values, creating it on first use.
func (gf *GaugeFamily) With(values ...string) *Gauge { return gf.f.with(values) }

// Name returns the family's metric name.
func (gf *GaugeFamily) Name() string { return gf.f.name }

// Children returns the gauges created so far, sorted by label set.
func (gf *GaugeFamily) Children() []Labeled[*Gauge] { return gf.f.snapshot() }

// SeriesFamily is a set of time series sharing a name, split by labels
// (per-node or per-circuit series).
type SeriesFamily struct{ f *family[TimeSeries] }

// With returns the series for the label values, creating it on first use.
func (sf *SeriesFamily) With(values ...string) *TimeSeries { return sf.f.with(values) }

// Name returns the family's metric name.
func (sf *SeriesFamily) Name() string { return sf.f.name }

// Children returns the series created so far, sorted by label set.
func (sf *SeriesFamily) Children() []Labeled[*TimeSeries] { return sf.f.snapshot() }

// CounterFamily returns the labeled counter family with the given name
// and label names, creating it if needed. The label names of repeated
// registrations must match.
func (r *Registry) CounterFamily(name string, labels ...string) *CounterFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	cf, ok := r.counterFams[name]
	if !ok {
		cf = &CounterFamily{f: newFamily[Counter](name, labels)}
		r.counterFams[name] = cf
	}
	return cf
}

// GaugeFamily returns the labeled gauge family with the given name and
// label names, creating it if needed.
func (r *Registry) GaugeFamily(name string, labels ...string) *GaugeFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	gf, ok := r.gaugeFams[name]
	if !ok {
		gf = &GaugeFamily{f: newFamily[Gauge](name, labels)}
		r.gaugeFams[name] = gf
	}
	return gf
}

// SeriesFamily returns the labeled time-series family with the given
// name and label names, creating it if needed.
func (r *Registry) SeriesFamily(name string, labels ...string) *SeriesFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	sf, ok := r.seriesFams[name]
	if !ok {
		sf = &SeriesFamily{f: newFamily[TimeSeries](name, labels)}
		r.seriesFams[name] = sf
	}
	return sf
}
