package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFamilyWithReturnsSameChild(t *testing.T) {
	r := NewRegistry()
	fam := r.CounterFamily("migrations_total", "reason")
	a := fam.With("repair")
	b := fam.With("repair")
	if a != b {
		t.Fatal("same labels returned distinct children")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("value = %v, want 2", a.Value())
	}
	if fam.With("sweep") == a {
		t.Fatal("distinct labels share a child")
	}
	if got := r.CounterFamily("migrations_total", "reason"); got != fam {
		t.Fatal("registry returned a different family for the same name")
	}
}

func TestFamilyArityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	fam := r.GaugeFamily("depth", "layer", "node")
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	fam.With("only-one")
}

func TestFamilyChildrenSorted(t *testing.T) {
	r := NewRegistry()
	fam := r.CounterFamily("ops", "kind")
	fam.With("zeta").Inc()
	fam.With("alpha").Add(2)
	fam.With("mid").Add(3)
	kids := fam.Children()
	if len(kids) != 3 {
		t.Fatalf("got %d children", len(kids))
	}
	for i := 1; i < len(kids); i++ {
		if kids[i-1].Labels >= kids[i].Labels {
			t.Fatalf("children not sorted: %q before %q", kids[i-1].Labels, kids[i].Labels)
		}
	}
	if kids[0].Labels != `{kind="alpha"}` {
		t.Fatalf("label rendering = %q", kids[0].Labels)
	}
}

// Labeled-family access must be safe under concurrent With/observe from
// many goroutines (the -race proof for real-clock runs).
func TestFamilyConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	cf := r.CounterFamily("hits", "shard")
	sf := r.SeriesFamily("lat", "shard")
	shards := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := shards[(g+i)%len(shards)]
				cf.With(s).Inc()
				sf.With(s).Record(float64(i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	total := 0.0
	for _, kid := range cf.Children() {
		total += kid.Metric.Value()
	}
	if total != 8*500 {
		t.Fatalf("counter family lost increments: %v", total)
	}
}

func TestSummaryIncludesSeriesAndFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain").Inc()
	ts := r.Series("usage")
	ts.Record(1, 1.5)
	ts.Record(2, 2.5)
	r.CounterFamily("migrations_total", "reason").With("repair").Add(4)
	s := r.Summary()
	if !strings.Contains(s, "usage: n=2 last=2.5") {
		t.Fatalf("summary omits registered series:\n%s", s)
	}
	if !strings.Contains(s, `migrations_total{reason="repair"} = 4`) {
		t.Fatalf("summary omits labeled family:\n%s", s)
	}
}

func TestHistogramReservoirBoundsMemory(t *testing.T) {
	h := &Histogram{}
	h.SetReservoir(100, 1)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i))
	}
	if h.Retained() != 100 {
		t.Fatalf("retained %d samples, want 100", h.Retained())
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d, want the full 10000", h.Count())
	}
	// Running aggregates stay exact regardless of sampling.
	if h.Min() != 0 || h.Max() != 9999 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 4999.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	wantSD := math.Sqrt((1e8 - 1) / 12)
	if got := h.Stddev(); math.Abs(got-wantSD)/wantSD > 1e-9 {
		t.Fatalf("stddev = %v, want %v", got, wantSD)
	}
	// The reservoir is a uniform sample; its median is a loose estimate
	// of the true one.
	if q := h.Quantile(0.5); q < 2000 || q > 8000 {
		t.Fatalf("reservoir p50 = %v, implausibly far from 5000", q)
	}
}

func TestHistogramReservoirDeterministicForSeed(t *testing.T) {
	obs := func() []float64 {
		h := &Histogram{}
		h.SetReservoir(10, 42)
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i * 7 % 997))
		}
		return h.Snapshot()
	}
	a, b := obs(), obs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed reservoirs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHistogramExactModeUnchanged(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 5; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 5 || h.Retained() != 5 {
		t.Fatalf("count/retained = %d/%d", h.Count(), h.Retained())
	}
	if h.Quantile(0.5) != 3 {
		t.Fatalf("p50 = %v", h.Quantile(0.5))
	}
}

func TestReportWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs.sent").Add(10)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").Observe(1)
	r.Series("usage").Record(1, 7)
	r.CounterFamily("migrations_total", "reason").With("repair").Add(2)

	var buf bytes.Buffer
	rep := Report{Label: "test-run", Registry: r}
	rep.Trace = func(w io.Writer) error {
		_, err := w.Write([]byte(`[{"seq":1}]`))
		return err
	}
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc["label"] != "test-run" {
		t.Fatalf("label = %v", doc["label"])
	}
	m := doc["metrics"].(map[string]any)
	fams := m["families"].([]any)
	if len(fams) != 1 {
		t.Fatalf("families = %v", fams)
	}
	// Series entries carry their full point data, not just a summary.
	series := m["series"].([]any)
	if len(series) != 1 {
		t.Fatalf("series = %v", series)
	}
	data := series[0].(map[string]any)["data"].([]any)
	if len(data) != 1 {
		t.Fatalf("series data = %v", data)
	}
	if pt := data[0].([]any); pt[0].(float64) != 1 || pt[1].(float64) != 7 {
		t.Fatalf("series point = %v", pt)
	}
	tr := doc["trace"].([]any)
	if len(tr) != 1 {
		t.Fatalf("trace = %v", tr)
	}
}
