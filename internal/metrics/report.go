// Run reports: one JSON document merging a registry snapshot with the
// run's trace. The registry side is serialized here with sorted names
// (deterministic bytes for a deterministic run); the trace side is an
// opaque JSON value written by the caller-supplied function — typically
// (*trace.Tracer).WriteEventsJSON — so this package stays stdlib-only.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Report is a run-scoped export: a label, the registry's full state,
// and optionally the run's trace merged into the same document.
type Report struct {
	// Label names the run (a scenario name, a seed, a timestamp — the
	// caller's choice; keep it seed-derived for deterministic output).
	Label string
	// Registry is the metric registry to snapshot. Required.
	Registry *Registry
	// Trace, when non-nil, writes the "trace" section as one JSON value
	// (e.g. trace.Tracer.WriteEventsJSON). Nil omits the section.
	Trace func(io.Writer) error
}

func appendQuoted(b []byte, s string) []byte { return strconv.AppendQuote(b, s) }

func appendNum(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WriteJSON writes the report as one JSON object:
//
//	{"label":...,
//	 "metrics":{"counters":[{"name":...,"value":...},...],
//	            "gauges":[...],
//	            "histograms":[{"name":...,"count":...,"mean":...,"p50":...,"p95":...,"max":...},...],
//	            "series":[{"name":...,"points":...,"last":...,"data":[[t,v],...]},...],
//	            "families":[{"name":...,"labels":...,"value":...},...]},
//	 "trace":[...]}
func (r Report) WriteJSON(w io.Writer) error {
	if r.Registry == nil {
		return fmt.Errorf("metrics: report needs a registry")
	}
	bw := bufio.NewWriter(w)
	var b []byte
	b = append(b, `{"label":`...)
	b = appendQuoted(b, r.Label)
	b = append(b, `,"metrics":{`...)

	reg := r.Registry
	reg.mu.Lock()
	counters := sortedKeys(reg.counters)
	gauges := sortedKeys(reg.gauges)
	hists := sortedKeys(reg.histograms)
	series := sortedKeys(reg.series)
	counterFams := sortedKeys(reg.counterFams)
	gaugeFams := sortedKeys(reg.gaugeFams)
	seriesFams := sortedKeys(reg.seriesFams)
	reg.mu.Unlock()

	b = append(b, `"counters":[`...)
	for i, n := range counters {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = appendQuoted(b, n)
		b = append(b, `,"value":`...)
		b = appendNum(b, reg.Counter(n).Value())
		b = append(b, '}')
	}
	b = append(b, `],"gauges":[`...)
	for i, n := range gauges {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = appendQuoted(b, n)
		b = append(b, `,"value":`...)
		b = appendNum(b, reg.Gauge(n).Value())
		b = append(b, '}')
	}
	b = append(b, `],"histograms":[`...)
	for i, n := range hists {
		if i > 0 {
			b = append(b, ',')
		}
		h := reg.Histogram(n)
		b = append(b, `{"name":`...)
		b = appendQuoted(b, n)
		b = append(b, `,"count":`...)
		b = strconv.AppendInt(b, int64(h.Count()), 10)
		b = append(b, `,"mean":`...)
		b = appendNum(b, h.Mean())
		b = append(b, `,"p50":`...)
		b = appendNum(b, h.Quantile(0.5))
		b = append(b, `,"p95":`...)
		b = appendNum(b, h.Quantile(0.95))
		b = append(b, `,"max":`...)
		b = appendNum(b, h.Max())
		b = append(b, '}')
	}
	b = append(b, `],"series":[`...)
	for i, n := range series {
		if i > 0 {
			b = append(b, ',')
		}
		ts := reg.Series(n)
		last, _ := ts.Last()
		b = append(b, `{"name":`...)
		b = appendQuoted(b, n)
		b = append(b, `,"points":`...)
		b = strconv.AppendInt(b, int64(ts.Len()), 10)
		b = append(b, `,"last":`...)
		b = appendNum(b, last.V)
		b = append(b, `,"data":[`...)
		for j, p := range ts.Points() {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, '[')
			b = appendNum(b, p.T)
			b = append(b, ',')
			b = appendNum(b, p.V)
			b = append(b, ']')
		}
		b = append(b, `]}`...)
	}
	b = append(b, `],"families":[`...)
	first := true
	writeFam := func(name, labels string, value float64) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, `{"name":`...)
		b = appendQuoted(b, name)
		b = append(b, `,"labels":`...)
		b = appendQuoted(b, labels)
		b = append(b, `,"value":`...)
		b = appendNum(b, value)
		b = append(b, '}')
	}
	for _, n := range counterFams {
		for _, kid := range reg.CounterFamily(n).Children() {
			writeFam(n, kid.Labels, kid.Metric.Value())
		}
	}
	for _, n := range gaugeFams {
		for _, kid := range reg.GaugeFamily(n).Children() {
			writeFam(n, kid.Labels, kid.Metric.Value())
		}
	}
	for _, n := range seriesFams {
		for _, kid := range reg.SeriesFamily(n).Children() {
			last, _ := kid.Metric.Last()
			writeFam(n, kid.Labels, last.V)
		}
	}
	b = append(b, `]}`...)
	if _, err := bw.Write(b); err != nil {
		return err
	}
	if r.Trace != nil {
		if _, err := bw.WriteString(`,"trace":`); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := r.Trace(w); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("}"); err != nil {
		return err
	}
	return bw.Flush()
}

func sortedKeys[T any](m map[string]*T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
