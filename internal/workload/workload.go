// Package workload generates synthetic stream catalogs, query
// populations, and dynamics scripts for the experiments: producer
// placements (uniform or stub-clustered), rate and selectivity
// distributions, Zipf-skewed query templates that create sub-plan sharing
// opportunities for multi-query optimization, and load/latency churn.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// Placement selects how producers are spread over the topology.
type Placement int

// Placement modes.
const (
	// Uniform scatters producers over random stub nodes.
	Uniform Placement = iota
	// Clustered groups consecutive streams into shared stub domains
	// (sensor-network style: co-located sources).
	Clustered
)

// StreamConfig parameterizes catalog generation.
type StreamConfig struct {
	NumStreams int
	// RateRange bounds stream rates in KB/s.
	RateRange [2]float64
	// DefaultSel is the catalog default pairwise join selectivity.
	DefaultSel float64
	// SelRange bounds explicit pairwise selectivities; when both are 0 no
	// explicit entries are generated (DefaultSel applies everywhere).
	SelRange [2]float64
	// Placement chooses producer spreading.
	Placement Placement
	// StreamsPerCluster groups this many consecutive streams per stub
	// domain under Clustered placement (default 2).
	StreamsPerCluster int
}

// DefaultStreamConfig returns a moderate workload: 12 streams at 50–300
// KB/s with mildly reducing joins.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		NumStreams:        12,
		RateRange:         [2]float64{50, 300},
		DefaultSel:        0.8,
		SelRange:          [2]float64{0.5, 1.1},
		Placement:         Uniform,
		StreamsPerCluster: 2,
	}
}

// GenerateStats builds a statistics catalog with producers placed on the
// topology's stub nodes.
func GenerateStats(topo *topology.Topology, cfg StreamConfig, rng *rand.Rand) (*query.Catalog, error) {
	if cfg.NumStreams < 1 {
		return nil, fmt.Errorf("workload: NumStreams = %d", cfg.NumStreams)
	}
	if cfg.RateRange[0] <= 0 || cfg.RateRange[1] < cfg.RateRange[0] {
		return nil, fmt.Errorf("workload: invalid rate range %v", cfg.RateRange)
	}
	stubs := topo.StubNodeIDs()
	if len(stubs) == 0 {
		return nil, fmt.Errorf("workload: topology has no stub nodes")
	}
	cat, err := query.NewCatalog(cfg.DefaultSel)
	if err != nil {
		return nil, err
	}
	perCluster := cfg.StreamsPerCluster
	if perCluster < 1 {
		perCluster = 2
	}
	nDomains := topo.NumStubDomains()
	for i := 0; i < cfg.NumStreams; i++ {
		var producer topology.NodeID
		switch cfg.Placement {
		case Clustered:
			domain := (i / perCluster) % nDomains
			members := topo.StubDomainMembers(domain)
			producer = members[rng.Intn(len(members))]
		default:
			producer = stubs[rng.Intn(len(stubs))]
		}
		rate := cfg.RateRange[0] + rng.Float64()*(cfg.RateRange[1]-cfg.RateRange[0])
		if err := cat.AddStream(query.StreamID(i), producer, rate); err != nil {
			return nil, err
		}
	}
	if cfg.SelRange[0] > 0 || cfg.SelRange[1] > 0 {
		if cfg.SelRange[0] <= 0 || cfg.SelRange[1] < cfg.SelRange[0] {
			return nil, fmt.Errorf("workload: invalid selectivity range %v", cfg.SelRange)
		}
		for i := 0; i < cfg.NumStreams; i++ {
			for j := i + 1; j < cfg.NumStreams; j++ {
				sel := cfg.SelRange[0] + rng.Float64()*(cfg.SelRange[1]-cfg.SelRange[0])
				if err := cat.SetPairSelectivity(query.StreamID(i), query.StreamID(j), sel); err != nil {
					return nil, err
				}
			}
		}
	}
	return cat, nil
}

// QueryConfig parameterizes query-population generation.
type QueryConfig struct {
	NumQueries int
	// StreamsPerQuery bounds the join width [min, max].
	StreamsPerQuery [2]int
	// FilterProb is the chance each source gets a pushed-down filter.
	FilterProb float64
	// FilterSelRange bounds filter selectivities.
	FilterSelRange [2]float64
	// AggregateProb is the chance a query aggregates at the top.
	AggregateProb float64
	// AggregateFracRange bounds aggregate output fractions.
	AggregateFracRange [2]float64
	// Templates > 0 draws each query's stream set from a fixed pool of
	// this many templates (Zipf-skewed), creating identical sub-plans
	// across queries — the sharing opportunity §3.4 exploits. Zero means
	// every query gets an independent random stream set.
	Templates int
	// TemplateSkew is the Zipf exponent (default 1.1; larger = more
	// sharing on the hottest template).
	TemplateSkew float64
}

// DefaultQueryConfig returns 20 queries of 2–4 way joins with moderate
// template sharing.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{
		NumQueries:         20,
		StreamsPerQuery:    [2]int{2, 4},
		FilterProb:         0.3,
		FilterSelRange:     [2]float64{0.2, 0.9},
		AggregateProb:      0.2,
		AggregateFracRange: [2]float64{0.05, 0.3},
		Templates:          6,
		TemplateSkew:       1.1,
	}
}

// GenerateQueries builds a query population against the catalog, with
// consumers on random stub nodes. Query IDs start at baseID.
func GenerateQueries(topo *topology.Topology, cat *query.Catalog, cfg QueryConfig, rng *rand.Rand, baseID int) ([]query.Query, error) {
	if cfg.NumQueries < 1 {
		return nil, fmt.Errorf("workload: NumQueries = %d", cfg.NumQueries)
	}
	streams := cat.Streams()
	minW, maxW := cfg.StreamsPerQuery[0], cfg.StreamsPerQuery[1]
	if minW < 1 || maxW < minW || maxW > len(streams) {
		return nil, fmt.Errorf("workload: invalid StreamsPerQuery %v for %d streams", cfg.StreamsPerQuery, len(streams))
	}
	stubs := topo.StubNodeIDs()
	if len(stubs) == 0 {
		return nil, fmt.Errorf("workload: topology has no stub nodes")
	}

	pickSet := func() []query.StreamID {
		w := minW + rng.Intn(maxW-minW+1)
		perm := rng.Perm(len(streams))
		set := make([]query.StreamID, w)
		for i := 0; i < w; i++ {
			set[i] = streams[perm[i]]
		}
		return set
	}

	var templates [][]query.StreamID
	var zipf *rand.Zipf
	if cfg.Templates > 0 {
		templates = make([][]query.StreamID, cfg.Templates)
		for i := range templates {
			templates[i] = pickSet()
		}
		skew := cfg.TemplateSkew
		if skew <= 1 {
			skew = 1.1
		}
		zipf = rand.NewZipf(rng, skew, 1, uint64(cfg.Templates-1))
	}

	out := make([]query.Query, 0, cfg.NumQueries)
	for i := 0; i < cfg.NumQueries; i++ {
		var set []query.StreamID
		if templates != nil {
			set = templates[int(zipf.Uint64())]
		} else {
			set = pickSet()
		}
		q := query.Query{
			ID:       query.QueryID(baseID + i),
			Consumer: stubs[rng.Intn(len(stubs))],
			Streams:  append([]query.StreamID(nil), set...),
		}
		if cfg.FilterProb > 0 {
			for _, s := range q.Streams {
				if rng.Float64() < cfg.FilterProb {
					if q.FilterSel == nil {
						q.FilterSel = make(map[query.StreamID]float64)
					}
					q.FilterSel[s] = cfg.FilterSelRange[0] + rng.Float64()*(cfg.FilterSelRange[1]-cfg.FilterSelRange[0])
				}
			}
		}
		if rng.Float64() < cfg.AggregateProb {
			q.AggregateFraction = cfg.AggregateFracRange[0] + rng.Float64()*(cfg.AggregateFracRange[1]-cfg.AggregateFracRange[0])
		}
		if err := q.Validate(); err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// Churn describes one step of environment dynamics.
type Churn struct {
	// LoadFraction of nodes get a fresh background load each step.
	LoadFraction float64
	// LoadMax bounds the new background loads.
	LoadMax float64
	// LatencyAmount, if > 0, perturbs every edge latency by ±this
	// fraction (invalidating the latency matrix).
	LatencyAmount float64
}

// LoadSetter is the environment surface churn needs (satisfied by
// *optimizer.Env).
type LoadSetter interface {
	SetBackgroundLoad(n topology.NodeID, load float64)
}

// ApplyChurn mutates node loads (and optionally topology latencies) for
// one dynamics step.
func ApplyChurn(topo *topology.Topology, env LoadSetter, c Churn, rng *rand.Rand) {
	if c.LoadFraction > 0 {
		n := topo.NumNodes()
		count := int(math.Ceil(c.LoadFraction * float64(n)))
		for i := 0; i < count; i++ {
			node := topology.NodeID(rng.Intn(n))
			env.SetBackgroundLoad(node, rng.Float64()*c.LoadMax)
		}
	}
	if c.LatencyAmount > 0 {
		topo.PerturbLatencies(rng, c.LatencyAmount)
	}
}
