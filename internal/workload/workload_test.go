package workload

import (
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultConfig()
	cfg.StubNodes = 4
	return topology.MustGenerate(cfg, rand.New(rand.NewSource(1)))
}

func TestGenerateStatsCounts(t *testing.T) {
	topo := testTopo(t)
	cfg := DefaultStreamConfig()
	cat, err := GenerateStats(topo, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cat.Streams()); got != cfg.NumStreams {
		t.Fatalf("streams = %d, want %d", got, cfg.NumStreams)
	}
	for _, s := range cat.Streams() {
		r := cat.Rate(s)
		if r < cfg.RateRange[0] || r > cfg.RateRange[1] {
			t.Fatalf("stream %d rate %v out of range", s, r)
		}
		prod, ok := cat.Producer(s)
		if !ok {
			t.Fatalf("stream %d missing producer", s)
		}
		if topo.Node(prod).Kind != topology.Stub {
			t.Fatalf("producer %d not a stub node", prod)
		}
	}
}

func TestGenerateStatsSelectivityRange(t *testing.T) {
	topo := testTopo(t)
	cfg := DefaultStreamConfig()
	cat, err := GenerateStats(topo, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NumStreams; i++ {
		for j := i + 1; j < cfg.NumStreams; j++ {
			sel := cat.PairSelectivity(query.StreamID(i), query.StreamID(j))
			if sel < cfg.SelRange[0] || sel > cfg.SelRange[1] {
				t.Fatalf("sel(%d,%d) = %v out of %v", i, j, sel, cfg.SelRange)
			}
		}
	}
}

func TestGenerateStatsClustered(t *testing.T) {
	topo := testTopo(t)
	cfg := DefaultStreamConfig()
	cfg.Placement = Clustered
	cfg.StreamsPerCluster = 2
	cat, err := GenerateStats(topo, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Streams 0 and 1 must share a stub domain; 0 and 2 must not.
	p0, _ := cat.Producer(0)
	p1, _ := cat.Producer(1)
	p2, _ := cat.Producer(2)
	if topo.Node(p0).StubDomain != topo.Node(p1).StubDomain {
		t.Fatal("clustered streams 0,1 in different domains")
	}
	if topo.Node(p0).StubDomain == topo.Node(p2).StubDomain {
		t.Fatal("streams 0,2 should be in different domains")
	}
}

func TestGenerateStatsValidation(t *testing.T) {
	topo := testTopo(t)
	rng := rand.New(rand.NewSource(5))
	bad := DefaultStreamConfig()
	bad.NumStreams = 0
	if _, err := GenerateStats(topo, bad, rng); err == nil {
		t.Fatal("NumStreams=0 accepted")
	}
	bad = DefaultStreamConfig()
	bad.RateRange = [2]float64{100, 50}
	if _, err := GenerateStats(topo, bad, rng); err == nil {
		t.Fatal("descending rate range accepted")
	}
	bad = DefaultStreamConfig()
	bad.SelRange = [2]float64{-1, 2}
	if _, err := GenerateStats(topo, bad, rng); err == nil {
		t.Fatal("bad selectivity range accepted")
	}
}

func TestGenerateQueriesValid(t *testing.T) {
	topo := testTopo(t)
	rng := rand.New(rand.NewSource(6))
	cat, err := GenerateStats(topo, DefaultStreamConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultQueryConfig()
	qs, err := GenerateQueries(topo, cat, cfg, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != cfg.NumQueries {
		t.Fatalf("queries = %d, want %d", len(qs), cfg.NumQueries)
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if int(q.ID) != 100+i {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if len(q.Streams) < cfg.StreamsPerQuery[0] || len(q.Streams) > cfg.StreamsPerQuery[1] {
			t.Fatalf("query %d width %d out of range", i, len(q.Streams))
		}
		if topo.Node(q.Consumer).Kind != topology.Stub {
			t.Fatalf("query %d consumer not a stub", i)
		}
	}
}

func TestGenerateQueriesTemplateSharing(t *testing.T) {
	topo := testTopo(t)
	rng := rand.New(rand.NewSource(7))
	cat, err := GenerateStats(topo, DefaultStreamConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultQueryConfig()
	cfg.NumQueries = 40
	cfg.Templates = 4
	cfg.TemplateSkew = 1.5
	qs, err := GenerateQueries(topo, cat, cfg, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	sets := map[string]int{}
	for _, q := range qs {
		key := ""
		for _, s := range q.Streams {
			key += string(rune('a' + int(s)))
		}
		sets[key]++
	}
	if len(sets) > cfg.Templates {
		t.Fatalf("found %d distinct stream sets, want <= %d templates", len(sets), cfg.Templates)
	}
	max := 0
	for _, c := range sets {
		if c > max {
			max = c
		}
	}
	if max < 2 {
		t.Fatal("no sharing generated")
	}
}

func TestGenerateQueriesNoTemplates(t *testing.T) {
	topo := testTopo(t)
	rng := rand.New(rand.NewSource(8))
	cat, err := GenerateStats(topo, DefaultStreamConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultQueryConfig()
	cfg.Templates = 0
	cfg.NumQueries = 10
	qs, err := GenerateQueries(topo, cat, cfg, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatalf("queries = %d", len(qs))
	}
}

func TestGenerateQueriesValidation(t *testing.T) {
	topo := testTopo(t)
	rng := rand.New(rand.NewSource(9))
	cat, err := GenerateStats(topo, DefaultStreamConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultQueryConfig()
	bad.NumQueries = 0
	if _, err := GenerateQueries(topo, cat, bad, rng, 0); err == nil {
		t.Fatal("NumQueries=0 accepted")
	}
	bad = DefaultQueryConfig()
	bad.StreamsPerQuery = [2]int{5, 2}
	if _, err := GenerateQueries(topo, cat, bad, rng, 0); err == nil {
		t.Fatal("descending width range accepted")
	}
	bad = DefaultQueryConfig()
	bad.StreamsPerQuery = [2]int{1, 1000}
	if _, err := GenerateQueries(topo, cat, bad, rng, 0); err == nil {
		t.Fatal("width above stream count accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	topo := testTopo(t)
	gen := func(seed int64) []query.Query {
		rng := rand.New(rand.NewSource(seed))
		cat, err := GenerateStats(topo, DefaultStreamConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := GenerateQueries(topo, cat, DefaultQueryConfig(), rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}
	a, b := gen(42), gen(42)
	for i := range a {
		if a[i].Consumer != b[i].Consumer || len(a[i].Streams) != len(b[i].Streams) {
			t.Fatalf("query %d differs between identical seeds", i)
		}
	}
}

type fakeLoadSetter struct {
	calls map[topology.NodeID]float64
}

func (f *fakeLoadSetter) SetBackgroundLoad(n topology.NodeID, l float64) {
	f.calls[n] = l
}

func TestApplyChurn(t *testing.T) {
	topo := testTopo(t)
	setter := &fakeLoadSetter{calls: map[topology.NodeID]float64{}}
	rng := rand.New(rand.NewSource(10))
	before := topo.Latency(0, 50)
	ApplyChurn(topo, setter, Churn{LoadFraction: 0.2, LoadMax: 0.8, LatencyAmount: 0.3}, rng)
	if len(setter.calls) == 0 {
		t.Fatal("no loads changed")
	}
	for n, l := range setter.calls {
		if l < 0 || l > 0.8 {
			t.Fatalf("node %d load %v out of range", n, l)
		}
	}
	after := topo.Latency(0, 50)
	if before == after {
		t.Log("warning: latency unchanged after perturbation (unlikely)")
	}
}

func TestApplyChurnZeroIsNoop(t *testing.T) {
	topo := testTopo(t)
	setter := &fakeLoadSetter{calls: map[topology.NodeID]float64{}}
	edges := append([]topology.Edge(nil), topo.Edges()...)
	ApplyChurn(topo, setter, Churn{}, rand.New(rand.NewSource(11)))
	if len(setter.calls) != 0 {
		t.Fatal("loads changed with zero churn")
	}
	for i, e := range topo.Edges() {
		if e != edges[i] {
			t.Fatal("latencies changed with zero churn")
		}
	}
}
