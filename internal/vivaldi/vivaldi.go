// Package vivaldi implements the Vivaldi decentralized network-coordinate
// algorithm (Dabek et al., SIGCOMM 2004), which the paper cites as the
// substrate for the vector (latency) dimensions of a cost space.
//
// Each node maintains a d-dimensional Euclidean coordinate and a local
// error estimate. On observing an RTT sample to a peer, the node nudges its
// coordinate along the error gradient with an adaptive timestep weighted by
// the relative confidence of the two nodes. Over many samples the pairwise
// coordinate distances approximate pairwise latencies.
//
// The Embed driver runs the algorithm over a simulated latency matrix,
// standing in for live measurements (see DESIGN.md, substitutions table).
package vivaldi

import (
	"fmt"
	"math"
	"math/rand"
)

// Coord is a point in the d-dimensional Euclidean coordinate space.
type Coord []float64

// Clone returns an independent copy of c.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

// Distance returns the Euclidean distance between c and o. It panics if
// the dimensionalities differ.
func (c Coord) Distance(o Coord) float64 {
	if len(c) != len(o) {
		panic(fmt.Sprintf("vivaldi: dimension mismatch %d vs %d", len(c), len(o)))
	}
	var ss float64
	for i := range c {
		d := c[i] - o[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// Sub returns c - o as a new Coord.
func (c Coord) Sub(o Coord) Coord {
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] - o[i]
	}
	return out
}

// Add returns c + o as a new Coord.
func (c Coord) Add(o Coord) Coord {
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] + o[i]
	}
	return out
}

// Scale returns c * f as a new Coord.
func (c Coord) Scale(f float64) Coord {
	out := make(Coord, len(c))
	for i := range c {
		out[i] = c[i] * f
	}
	return out
}

// Norm returns the Euclidean norm of c.
func (c Coord) Norm() float64 {
	var ss float64
	for _, v := range c {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Config holds the Vivaldi tuning constants.
type Config struct {
	// Dims is the coordinate dimensionality (the paper's latency cost
	// spaces use 2).
	Dims int
	// CE is the error-estimate smoothing constant (paper value 0.25).
	CE float64
	// CC is the coordinate timestep constant (paper value 0.25).
	CC float64
	// InitialError is the starting local error estimate (1.0 = no
	// confidence).
	InitialError float64
	// MinError floors the local error estimate so updates never stall
	// completely.
	MinError float64
}

// DefaultConfig returns the constants from the Vivaldi paper with 2
// dimensions.
func DefaultConfig() Config {
	return Config{Dims: 2, CE: 0.25, CC: 0.25, InitialError: 1.0, MinError: 0.01}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Dims < 1:
		return fmt.Errorf("vivaldi: Dims = %d, need >= 1", c.Dims)
	case c.CE <= 0 || c.CE > 1:
		return fmt.Errorf("vivaldi: CE = %v, need in (0,1]", c.CE)
	case c.CC <= 0 || c.CC > 1:
		return fmt.Errorf("vivaldi: CC = %v, need in (0,1]", c.CC)
	case c.InitialError <= 0:
		return fmt.Errorf("vivaldi: InitialError = %v, need > 0", c.InitialError)
	case c.MinError <= 0 || c.MinError > c.InitialError:
		return fmt.Errorf("vivaldi: MinError = %v, need in (0, InitialError]", c.MinError)
	}
	return nil
}

// Node is one participant's Vivaldi state.
type Node struct {
	cfg   Config
	coord Coord
	err   float64
	rng   *rand.Rand
}

// NewNode creates a node at the origin with the initial error estimate.
// rng is used to break ties when two nodes sit at identical coordinates.
func NewNode(cfg Config, rng *rand.Rand) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Node{
		cfg:   cfg,
		coord: make(Coord, cfg.Dims),
		err:   cfg.InitialError,
		rng:   rng,
	}, nil
}

// Coord returns a copy of the node's current coordinate.
func (n *Node) Coord() Coord { return n.coord.Clone() }

// Error returns the node's current local error estimate.
func (n *Node) Error() float64 { return n.err }

// Update folds one RTT observation (milliseconds) against a peer with the
// given coordinate and error estimate into this node's state, following
// the Vivaldi update rule.
func (n *Node) Update(peer Coord, peerErr, rtt float64) {
	if rtt <= 0 {
		return // measurement noise; a zero RTT carries no usable signal
	}
	dist := n.coord.Distance(peer)

	// Confidence weight: how much of the blame for the error is ours.
	w := n.err / (n.err + math.Max(peerErr, n.cfg.MinError))

	// Relative error of this sample.
	es := math.Abs(dist-rtt) / rtt

	// Exponentially smoothed local error.
	alpha := n.cfg.CE * w
	n.err = es*alpha + n.err*(1-alpha)
	if n.err < n.cfg.MinError {
		n.err = n.cfg.MinError
	}

	// Move along the unit vector away from (or toward) the peer.
	delta := n.cfg.CC * w
	dir := n.unitVectorFrom(peer, dist)
	n.coord = n.coord.Add(dir.Scale(delta * (rtt - dist)))
}

// unitVectorFrom returns the unit vector pointing from peer toward this
// node, choosing a random direction when the two coincide.
func (n *Node) unitVectorFrom(peer Coord, dist float64) Coord {
	if dist > 1e-9 {
		return n.coord.Sub(peer).Scale(1 / dist)
	}
	dir := make(Coord, n.cfg.Dims)
	var norm float64
	for norm < 1e-9 {
		for i := range dir {
			dir[i] = n.rng.NormFloat64()
		}
		norm = dir.Norm()
	}
	return dir.Scale(1 / norm)
}

// LatencyFunc supplies the true RTT in milliseconds between two node
// indices; Embed uses it as the measurement oracle.
type LatencyFunc func(i, j int) float64

// Embedding is the result of running Vivaldi over a set of nodes.
type Embedding struct {
	Coords []Coord
	Errors []float64
}

// Embed runs rounds of Vivaldi over n nodes whose pairwise latencies come
// from lat. In each round every node samples `samplesPerRound` random
// peers (the gossip pattern of a deployed system). The rng drives both
// peer selection and tie-breaking.
func Embed(n int, lat LatencyFunc, cfg Config, rounds, samplesPerRound int, rng *rand.Rand) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("vivaldi: need at least 2 nodes, got %d", n)
	}
	if rounds < 1 || samplesPerRound < 1 {
		return nil, fmt.Errorf("vivaldi: rounds and samplesPerRound must be >= 1")
	}
	nodes, err := newNodes(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rounds; r++ {
		runRound(nodes, lat, samplesPerRound, rng)
	}
	return snapshot(nodes), nil
}

// newNodes builds n Vivaldi nodes sharing one rng.
func newNodes(n int, cfg Config, rng *rand.Rand) ([]*Node, error) {
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := NewNode(cfg, rng)
		if err != nil {
			return nil, err
		}
		nodes[i] = nd
	}
	return nodes, nil
}

// runRound performs one gossip round: every node samples
// samplesPerRound random peers and folds in the observed RTTs.
func runRound(nodes []*Node, lat LatencyFunc, samplesPerRound int, rng *rand.Rand) {
	n := len(nodes)
	for i := 0; i < n; i++ {
		for s := 0; s < samplesPerRound; s++ {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			nodes[i].Update(nodes[j].coord, nodes[j].err, lat(i, j))
		}
	}
}

// snapshot copies the nodes' current coordinates and errors.
func snapshot(nodes []*Node) *Embedding {
	emb := &Embedding{
		Coords: make([]Coord, len(nodes)),
		Errors: make([]float64, len(nodes)),
	}
	for i, nd := range nodes {
		emb.Coords[i] = nd.Coord()
		emb.Errors[i] = nd.Error()
	}
	return emb
}

// EmbedMatrix is Embed with latencies supplied as a dense matrix.
func EmbedMatrix(m [][]float64, cfg Config, rounds, samplesPerRound int, rng *rand.Rand) (*Embedding, error) {
	return Embed(len(m), func(i, j int) float64 { return m[i][j] }, cfg, rounds, samplesPerRound, rng)
}

// Quality summarizes how faithfully an embedding reproduces a latency
// oracle over sampled pairs.
type Quality struct {
	MedianRelErr float64 // median |est-true|/true
	P90RelErr    float64 // 90th-percentile relative error
	MeanRelErr   float64
	Pairs        int
}

// Evaluate samples `pairs` random node pairs and compares embedded
// distance against the true latency.
func (e *Embedding) Evaluate(lat LatencyFunc, pairs int, rng *rand.Rand) Quality {
	n := len(e.Coords)
	if n < 2 || pairs < 1 {
		return Quality{}
	}
	errs := make([]float64, 0, pairs)
	var sum float64
	for k := 0; k < pairs; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		truth := lat(i, j)
		if truth <= 0 {
			continue
		}
		est := e.Coords[i].Distance(e.Coords[j])
		re := math.Abs(est-truth) / truth
		errs = append(errs, re)
		sum += re
	}
	if len(errs) == 0 {
		return Quality{}
	}
	sortFloat64s(errs)
	q := Quality{
		MedianRelErr: percentile(errs, 0.5),
		P90RelErr:    percentile(errs, 0.9),
		MeanRelErr:   sum / float64(len(errs)),
		Pairs:        len(errs),
	}
	return q
}

// String renders the quality on one line.
func (q Quality) String() string {
	return fmt.Sprintf("rel err median=%.3f p90=%.3f mean=%.3f over %d pairs",
		q.MedianRelErr, q.P90RelErr, q.MeanRelErr, q.Pairs)
}

// sortFloat64s is an insertion-free wrapper to avoid importing sort in
// multiple spots; it delegates to the stdlib.
func sortFloat64s(v []float64) {
	// Simple shell sort: n is small (sampled pairs), keeps this file
	// self-contained and allocation-free.
	for gap := len(v) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(v); i++ {
			for j := i; j >= gap && v[j] < v[j-gap]; j -= gap {
				v[j], v[j-gap] = v[j-gap], v[j]
			}
		}
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
