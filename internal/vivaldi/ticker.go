package vivaldi

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
)

// Ticker maintains a Vivaldi embedding as a background process on a
// clock: every interval it runs one gossip round (each node samples
// random peers), the way a deployed overlay continuously refreshes its
// coordinates rather than batch-embedding them. On a virtual clock
// (package simtime) rounds are events on the simulation heap — a
// thousand simulated update rounds cost only their compute time, and a
// fixed seed reproduces the coordinate trajectory exactly.
type Ticker struct {
	mu      sync.Mutex
	nodes   []*Node
	lat     LatencyFunc
	samples int
	rng     *rand.Rand

	clock    simtime.Clock
	interval time.Duration
	timer    simtime.Timer
	running  bool
	rounds   int
}

// NewTicker builds a stopped ticker over n nodes whose pairwise
// latencies come from lat. Call Start to begin rounds on the clock.
func NewTicker(n int, lat LatencyFunc, cfg Config, samplesPerRound int, interval time.Duration, clock simtime.Clock, rng *rand.Rand) (*Ticker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("vivaldi: need at least 2 nodes, got %d", n)
	}
	if samplesPerRound < 1 {
		return nil, fmt.Errorf("vivaldi: samplesPerRound must be >= 1")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("vivaldi: interval %v, need > 0", interval)
	}
	if clock == nil {
		clock = simtime.Real()
	}
	nodes, err := newNodes(n, cfg, rng)
	if err != nil {
		return nil, err
	}
	return &Ticker{
		nodes:    nodes,
		lat:      lat,
		samples:  samplesPerRound,
		rng:      rng,
		clock:    clock,
		interval: interval,
	}, nil
}

// Start schedules the first round one interval from now. Restarting a
// stopped ticker resumes from the current coordinates.
func (t *Ticker) Start() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return
	}
	t.running = true
	t.timer = t.clock.AfterFunc(t.interval, t.tick)
}

// tick runs one round and reschedules itself.
func (t *Ticker) tick() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.running {
		return
	}
	runRound(t.nodes, t.lat, t.samples, t.rng)
	t.rounds++
	t.timer = t.clock.AfterFunc(t.interval, t.tick)
}

// Stop cancels future rounds. The embedding remains readable.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.running {
		return
	}
	t.running = false
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Rounds returns the number of completed gossip rounds.
func (t *Ticker) Rounds() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rounds
}

// Embedding snapshots the current coordinates and error estimates.
func (t *Ticker) Embedding() *Embedding {
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshot(t.nodes)
}
