package vivaldi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

func TestCoordArithmetic(t *testing.T) {
	a := Coord{1, 2}
	b := Coord{4, 6}
	if got := a.Distance(b); got != 5 {
		t.Fatalf("Distance = %v, want 5", got)
	}
	if got := b.Sub(a); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Add(b); got[0] != 5 || got[1] != 8 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Scale(2); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Coord{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestCoordCloneIndependent(t *testing.T) {
	a := Coord{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone not independent")
	}
}

func TestCoordDistanceDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	_ = Coord{1}.Distance(Coord{1, 2})
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		{Dims: 0, CE: 0.25, CC: 0.25, InitialError: 1, MinError: 0.01},
		{Dims: 2, CE: 0, CC: 0.25, InitialError: 1, MinError: 0.01},
		{Dims: 2, CE: 0.25, CC: 2, InitialError: 1, MinError: 0.01},
		{Dims: 2, CE: 0.25, CC: 0.25, InitialError: 0, MinError: 0.01},
		{Dims: 2, CE: 0.25, CC: 0.25, InitialError: 1, MinError: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestUpdateIgnoresNonPositiveRTT(t *testing.T) {
	n, err := NewNode(DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	before := n.Coord()
	n.Update(Coord{10, 10}, 1, 0)
	n.Update(Coord{10, 10}, 1, -5)
	after := n.Coord()
	if before.Distance(after) != 0 {
		t.Fatal("Update with rtt <= 0 must be a no-op")
	}
}

func TestUpdateMovesTowardDistantPeer(t *testing.T) {
	// A node at origin observing a peer 10ms away at coordinate distance
	// 20 should move toward the peer (estimated > actual).
	rng := rand.New(rand.NewSource(1))
	n, _ := NewNode(DefaultConfig(), rng)
	n.coord = Coord{0, 0}
	peer := Coord{20, 0}
	n.Update(peer, 0.5, 10)
	if n.coord[0] <= 0 {
		t.Fatalf("node should have moved toward peer; coord = %v", n.coord)
	}
}

func TestUpdateMovesAwayWhenTooClose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, _ := NewNode(DefaultConfig(), rng)
	n.coord = Coord{1, 0}
	peer := Coord{0, 0}
	n.Update(peer, 0.5, 50) // true RTT far larger than current distance
	if n.coord[0] <= 1 {
		t.Fatalf("node should have moved away from peer; coord = %v", n.coord)
	}
}

func TestUpdateBreaksTieAtIdenticalCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, _ := NewNode(DefaultConfig(), rng)
	peer := Coord{0, 0} // same as the node's origin position
	n.Update(peer, 1, 10)
	if n.coord.Norm() == 0 {
		t.Fatal("node should have moved off the origin in a random direction")
	}
}

func TestErrorEstimateDecreasesWithGoodSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, _ := NewNode(DefaultConfig(), rng)
	n.coord = Coord{0, 0}
	// Feed perfectly consistent measurements: peer at distance 10, rtt 10.
	for i := 0; i < 50; i++ {
		n.coord = Coord{0, 0}
		n.Update(Coord{10, 0}, 0.1, 10)
	}
	if n.Error() >= 1.0 {
		t.Fatalf("error estimate should fall below initial 1.0, got %v", n.Error())
	}
}

func TestErrorFloored(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	n, _ := NewNode(cfg, rng)
	for i := 0; i < 500; i++ {
		n.coord = Coord{0, 0}
		n.Update(Coord{10, 0}, cfg.MinError, 10)
	}
	if n.Error() < cfg.MinError {
		t.Fatalf("error %v dropped below floor %v", n.Error(), cfg.MinError)
	}
}

// Embedding a set of points that already live in a 2-D Euclidean space
// must converge to low relative error: the space is perfectly embeddable.
func TestEmbedEuclideanGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 40
	pts := make([]Coord, n)
	for i := range pts {
		pts[i] = Coord{rng.Float64() * 100, rng.Float64() * 100}
	}
	lat := func(i, j int) float64 { return pts[i].Distance(pts[j]) }
	emb, err := Embed(n, lat, DefaultConfig(), 60, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := emb.Evaluate(lat, 2000, rng)
	if q.MedianRelErr > 0.08 {
		t.Fatalf("median relative error %v too high for perfectly embeddable input (%v)", q.MedianRelErr, q)
	}
}

// Embedding a transit-stub latency matrix should achieve the error range
// reported in the coordinates literature (median well under 30% in 2-D).
func TestEmbedTransitStub(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := topology.DefaultConfig()
	cfg.StubNodes = 4 // keep the test fast: 16 + 192 = 208 nodes
	top := topology.MustGenerate(cfg, rng)
	m := top.LatencyMatrix()
	emb, err := EmbedMatrix(m, DefaultConfig(), 40, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 3000, rng)
	if q.MedianRelErr > 0.30 {
		t.Fatalf("median relative error %v too high for transit-stub input (%v)", q.MedianRelErr, q)
	}
}

func TestEmbedErrorsShrinkWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 30
	pts := make([]Coord, n)
	for i := range pts {
		pts[i] = Coord{rng.Float64() * 100, rng.Float64() * 100}
	}
	lat := func(i, j int) float64 { return pts[i].Distance(pts[j]) }

	short, err := Embed(n, lat, DefaultConfig(), 2, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	long, err := Embed(n, lat, DefaultConfig(), 80, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	qs := short.Evaluate(lat, 1000, rand.New(rand.NewSource(9)))
	ql := long.Evaluate(lat, 1000, rand.New(rand.NewSource(9)))
	if ql.MedianRelErr >= qs.MedianRelErr {
		t.Fatalf("more rounds should reduce error: short=%v long=%v", qs, ql)
	}
}

func TestEmbedInputValidation(t *testing.T) {
	lat := func(i, j int) float64 { return 1 }
	rng := rand.New(rand.NewSource(1))
	if _, err := Embed(1, lat, DefaultConfig(), 1, 1, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Embed(5, lat, DefaultConfig(), 0, 1, rng); err == nil {
		t.Fatal("rounds=0 accepted")
	}
	if _, err := Embed(5, lat, DefaultConfig(), 1, 0, rng); err == nil {
		t.Fatal("samples=0 accepted")
	}
	bad := DefaultConfig()
	bad.Dims = 0
	if _, err := Embed(5, lat, bad, 1, 1, rng); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewNode(bad, rng); err == nil {
		t.Fatal("NewNode with bad config accepted")
	}
}

func TestEmbedDeterministicPerSeed(t *testing.T) {
	lat := func(i, j int) float64 { return float64(i+j) + 1 }
	a, err := Embed(10, lat, DefaultConfig(), 10, 2, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(10, lat, DefaultConfig(), 10, 2, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coords {
		if a.Coords[i].Distance(b.Coords[i]) != 0 {
			t.Fatalf("node %d coordinates differ across identical runs", i)
		}
	}
}

// Property: coordinate distance is symmetric and non-negative for
// arbitrary finite coordinates.
func TestDistanceMetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := Coord{ax, ay}
		b := Coord{bx, by}
		d1, d2 := a.Distance(b), b.Distance(a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQualityString(t *testing.T) {
	q := Quality{MedianRelErr: 0.1, P90RelErr: 0.2, MeanRelErr: 0.15, Pairs: 100}
	if s := q.String(); s == "" {
		t.Fatal("empty Quality string")
	}
}

func TestEvaluateEmptyCases(t *testing.T) {
	var e Embedding
	q := e.Evaluate(func(i, j int) float64 { return 1 }, 10, rand.New(rand.NewSource(1)))
	if q.Pairs != 0 {
		t.Fatalf("empty embedding evaluated to %v", q)
	}
}

func BenchmarkEmbed200Nodes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := topology.DefaultConfig()
	cfg.StubNodes = 4
	top := topology.MustGenerate(cfg, rng)
	m := top.LatencyMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := EmbedMatrix(m, DefaultConfig(), 20, 4, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestTickerMatchesEmbedRoundForRound(t *testing.T) {
	const n, rounds, samples = 24, 10, 4
	m := make([][]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l := 5 + 95*rng.Float64()
			m[i][j], m[j][i] = l, l
		}
	}
	lat := func(i, j int) float64 { return m[i][j] }

	want, err := Embed(n, lat, DefaultConfig(), rounds, samples, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}

	clk := simtime.NewVirtual()
	defer clk.Stop()
	clk.Register()
	defer clk.Unregister()
	tk, err := NewTicker(n, lat, DefaultConfig(), samples, time.Second, clk, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tk.Start()
	clk.Sleep(time.Duration(rounds)*time.Second + 500*time.Millisecond)
	tk.Stop()
	if got := tk.Rounds(); got != rounds {
		t.Fatalf("ticker ran %d rounds in %ds of virtual time, want %d", got, rounds, rounds)
	}
	got := tk.Embedding()
	for i := range want.Coords {
		for k := range want.Coords[i] {
			if got.Coords[i][k] != want.Coords[i][k] {
				t.Fatalf("node %d dim %d: ticker %v != embed %v", i, k, got.Coords[i][k], want.Coords[i][k])
			}
		}
		if got.Errors[i] != want.Errors[i] {
			t.Fatalf("node %d error: ticker %v != embed %v", i, got.Errors[i], want.Errors[i])
		}
	}
	// No further rounds after Stop.
	clk.Sleep(5 * time.Second)
	if got := tk.Rounds(); got != rounds {
		t.Fatalf("ticker kept running after Stop: %d rounds", got)
	}
}

func TestTickerValidation(t *testing.T) {
	lat := func(i, j int) float64 { return 1 }
	rng := rand.New(rand.NewSource(1))
	if _, err := NewTicker(1, lat, DefaultConfig(), 4, time.Second, nil, rng); err == nil {
		t.Fatal("1-node ticker accepted")
	}
	if _, err := NewTicker(4, lat, DefaultConfig(), 0, time.Second, nil, rng); err == nil {
		t.Fatal("0 samples accepted")
	}
	if _, err := NewTicker(4, lat, DefaultConfig(), 4, 0, nil, rng); err == nil {
		t.Fatal("0 interval accepted")
	}
	if _, err := NewTicker(4, lat, Config{}, 4, time.Second, nil, rng); err == nil {
		t.Fatal("invalid config accepted")
	}
}
