package failure

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubsPerTransit:     2,
		StubNodes:           3,
		IntraStubLatency:    [2]float64{1, 2},
		StubUplinkLatency:   [2]float64{2, 4},
		IntraTransitLatency: [2]float64{5, 10},
	}
	return topology.MustGenerate(cfg, rand.New(rand.NewSource(1)))
}

func virtualNet(t *testing.T) (*overlay.Network, *simtime.VirtualClock) {
	t.Helper()
	cfg := overlay.VirtualConfig()
	clk := cfg.Clock.(*simtime.VirtualClock)
	clk.Register()
	net := overlay.NewNetwork(testTopo(t), cfg)
	net.Start()
	t.Cleanup(func() {
		net.Stop()
		clk.Unregister()
		clk.Stop()
	})
	return net, clk
}

const beat = 100 * time.Millisecond

func startDetector(t *testing.T, net *overlay.Network) *Detector {
	t.Helper()
	hb := net.StartHeartbeatsOpts(beat, 0.05, overlay.HeartbeatOpts{SkipDownTargets: true})
	d := New(net, DefaultConfig(beat))
	t.Cleanup(func() { d.Stop(); hb.Stop() })
	return d
}

func TestAllAliveNoEvents(t *testing.T) {
	net, clk := virtualNet(t)
	d := startDetector(t, net)
	clk.Sleep(2 * time.Second)
	if ev := d.TakeEvents(); len(ev) != 0 {
		t.Fatalf("healthy overlay emitted events: %+v", ev)
	}
	for i := 0; i < net.NumNodes(); i++ {
		if s := d.State(topology.NodeID(i)); s != Alive {
			t.Fatalf("node %d state %v, want alive", i, s)
		}
	}
}

func TestCrashDetectedSuspectThenDead(t *testing.T) {
	net, clk := virtualNet(t)
	d := startDetector(t, net)
	clk.Sleep(time.Second) // settle into a steady beat
	d.TakeEvents()

	crashAt := clk.Now()
	net.SetNodeDown(3, true)
	clk.Sleep(time.Second)

	ev := d.TakeEvents()
	var kinds []Kind
	for _, e := range ev {
		if e.Node != 3 {
			t.Fatalf("event for unexpected node: %+v", e)
		}
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != Suspected || kinds[1] != Died {
		t.Fatalf("event kinds = %v, want [suspect dead]", kinds)
	}
	if d.State(3) != Dead {
		t.Fatalf("state = %v, want dead", d.State(3))
	}
	if got := d.DeadNodes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("DeadNodes = %v", got)
	}
	// Detection latency is bounded by (DeadMissed+1) intervals + one
	// check period.
	latency := ev[1].At.Sub(crashAt)
	bound := time.Duration(DefaultConfig(beat).DeadMissed+2) * beat
	if latency <= 0 || latency > bound {
		t.Fatalf("detection latency %v outside (0, %v]", latency, bound)
	}
}

func TestRecoveryEmitsRecovered(t *testing.T) {
	net, clk := virtualNet(t)
	d := startDetector(t, net)
	clk.Sleep(time.Second)
	net.SetNodeDown(2, true)
	clk.Sleep(time.Second)
	if d.State(2) != Dead {
		t.Fatalf("state = %v, want dead before rejoin", d.State(2))
	}
	d.TakeEvents()
	net.SetNodeDown(2, false)
	clk.Sleep(time.Second)
	ev := d.TakeEvents()
	if len(ev) != 1 || ev[0].Node != 2 || ev[0].Kind != Recovered {
		t.Fatalf("events after rejoin = %+v, want one recovered(2)", ev)
	}
	if d.State(2) != Alive {
		t.Fatalf("state = %v, want alive", d.State(2))
	}
	st := d.Snapshot()
	if st.Deaths != 1 || st.Recoveries != 1 || st.Suspects != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdjacentCrashNoFalsePositive: node 3's beats target node 4; with
// SkipDownTargets the beats re-route when 4 dies, so 3 must stay
// Alive.
func TestAdjacentCrashNoFalsePositive(t *testing.T) {
	net, clk := virtualNet(t)
	d := startDetector(t, net)
	clk.Sleep(time.Second)
	net.SetNodeDown(4, true)
	clk.Sleep(2 * time.Second)
	if d.State(4) != Dead {
		t.Fatalf("crashed node state = %v, want dead", d.State(4))
	}
	if d.State(3) != Alive {
		t.Fatalf("predecessor of the crashed node condemned: state = %v", d.State(3))
	}
	for _, e := range d.TakeEvents() {
		if e.Node != 4 {
			t.Fatalf("event for a live node: %+v", e)
		}
	}
}

// TestDetectorRidesThroughLoss: 5% ambient heartbeat loss must not
// produce false Dead verdicts at the default thresholds.
func TestDetectorRidesThroughLoss(t *testing.T) {
	net, clk := virtualNet(t)
	net.InstallFaults(overlay.FaultPlan{Seed: 5, DropProb: 0.05})
	d := startDetector(t, net)
	clk.Sleep(20 * time.Second) // ~200 rounds × 10 nodes
	for _, e := range d.TakeEvents() {
		if e.Kind == Died {
			t.Fatalf("ambient 5%% loss produced a false death: %+v", e)
		}
	}
}

func TestEventStreamDeterministic(t *testing.T) {
	run := func() string {
		net, clk := virtualNet(t)
		net.InstallFaults(overlay.FaultPlan{
			Seed:     11,
			DropProb: 0.02,
			Crashes: []overlay.NodeCrash{
				{Node: 1, At: 700 * time.Millisecond},
				{Node: 5, At: 900 * time.Millisecond, RecoverAt: 3 * time.Second},
			},
		})
		hb := net.StartHeartbeatsOpts(beat, 0.05, overlay.HeartbeatOpts{SkipDownTargets: true})
		defer hb.Stop()
		d := New(net, DefaultConfig(beat))
		defer d.Stop()
		clk.Sleep(6 * time.Second)
		var s string
		for _, e := range d.TakeEvents() {
			s += fmt.Sprintf("%d:%v:%v;", e.Node, e.Kind, e.At.UnixNano())
		}
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed detector runs diverged:\n%s\nvs\n%s", a, b)
	}
	if a == "" {
		t.Fatal("scenario produced no events")
	}
}
