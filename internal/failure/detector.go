// Package failure turns the overlay's heartbeat traffic into
// liveness verdicts. The Detector consumes every delivered heartbeat
// through Network.ObserveHeartbeats (closing the "heartbeats are
// consumed by no one" gap), keeps per-node last-heard state, and runs
// a clock-paced check that walks the overlay in node-id order emitting
// Suspect, Dead, and Recovered events. Under a virtual clock both the
// beats and the checks are scheduler events, so for a fixed seed and
// FaultPlan the event stream — node, kind, and timestamp — replays
// bit-identically.
//
// The detector is a timeout/φ-threshold hybrid in its simplest form:
// a node that misses SuspectMissed consecutive intervals becomes
// Suspect, DeadMissed intervals Dead, and any heartbeat from a
// Suspect/Dead node flips it back to Alive with a Recovered event at
// the next check. Tuning is a loss-vs-latency trade: under p
// per-message heartbeat loss the false-positive rate of a k-missed
// threshold is p^k per node per interval, while detection latency is
// bounded by (DeadMissed+1) intervals plus one check period.
//
// This is a centralized observer — the simulation's stand-in for the
// gossip/ring-monitor dissemination a production overlay would run.
// Scenarios pair it with StartHeartbeatsOpts(SkipDownTargets: true) so
// a crashed receiver cannot black-hole its predecessor's beats and
// cascade false positives along the ring.
package failure

import (
	"sync"
	"time"

	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// State is a node's liveness verdict.
type State int8

const (
	Alive State = iota
	Suspect
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Kind labels a detector event.
type Kind int8

const (
	Suspected Kind = iota
	Died
	Recovered
)

func (k Kind) String() string {
	switch k {
	case Suspected:
		return "suspect"
	case Died:
		return "dead"
	default:
		return "recovered"
	}
}

// Event is one liveness transition, stamped with the clock instant of
// the check that produced it.
type Event struct {
	Node topology.NodeID
	Kind Kind
	At   time.Time
}

// Config tunes the detector.
type Config struct {
	// Interval is the heartbeat period the overlay was started with —
	// the unit "missed intervals" is measured in.
	Interval time.Duration
	// SuspectMissed consecutive silent intervals turn a node Suspect
	// (default 2), DeadMissed turn it Dead (default 4).
	SuspectMissed int
	DeadMissed    int
	// CheckEvery is the verdict-sweep period (default Interval).
	CheckEvery time.Duration
	// Tracer, when set, receives one instant event per liveness
	// transition (suspect/dead/recovered). Nil disables tracing.
	Tracer *trace.Tracer
}

// DefaultConfig returns the standard tuning for a heartbeat interval.
func DefaultConfig(interval time.Duration) Config {
	return Config{Interval: interval, SuspectMissed: 2, DeadMissed: 4, CheckEvery: interval}
}

// Stats counts detector activity.
type Stats struct {
	Suspects   int
	Deaths     int
	Recoveries int
	Checks     int
}

// Detector watches heartbeat arrivals and emits liveness events.
type Detector struct {
	net *overlay.Network
	cfg Config

	mu        sync.Mutex
	lastHeard []time.Time
	state     []State
	events    []Event
	stats     Stats
	timer     simtime.Timer
	stopped   bool
}

// New installs a detector on the runtime (claiming the network's
// heartbeat-observer hook) and starts its check schedule. Every node
// starts Alive with a full grace period from now.
func New(net *overlay.Network, cfg Config) *Detector {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.SuspectMissed <= 0 {
		cfg.SuspectMissed = 2
	}
	if cfg.DeadMissed <= cfg.SuspectMissed {
		cfg.DeadMissed = cfg.SuspectMissed + 2
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = cfg.Interval
	}
	clk := net.Clock()
	numNodes := net.NumNodes()
	d := &Detector{
		net:       net,
		cfg:       cfg,
		lastHeard: make([]time.Time, numNodes),
		state:     make([]State, numNodes),
	}
	now := clk.Now()
	for i := range d.lastHeard {
		d.lastHeard[i] = now
	}
	// The observer receives the delivery's virtual time from the
	// network (under sharded execution it runs at window barriers, in
	// deterministic order) — never read the global clock here, which
	// would be stale relative to the delivering shard.
	net.ObserveHeartbeats(func(m overlay.Message, at time.Time) {
		d.mu.Lock()
		if int(m.From) < len(d.lastHeard) {
			d.lastHeard[m.From] = at
		}
		d.mu.Unlock()
	})
	var check func()
	check = func() {
		d.mu.Lock()
		if d.stopped {
			d.mu.Unlock()
			return
		}
		d.checkLocked(clk.Now())
		d.timer = clk.AfterFunc(cfg.CheckEvery, check)
		d.mu.Unlock()
	}
	d.mu.Lock()
	d.timer = clk.AfterFunc(cfg.CheckEvery, check)
	d.mu.Unlock()
	return d
}

// checkLocked sweeps every node in id order and applies transitions —
// the id order is what makes the event stream deterministic when
// several nodes cross a threshold in the same check.
func (d *Detector) checkLocked(now time.Time) {
	d.stats.Checks++
	suspectAfter := time.Duration(d.cfg.SuspectMissed) * d.cfg.Interval
	deadAfter := time.Duration(d.cfg.DeadMissed) * d.cfg.Interval
	for i := range d.state {
		silent := now.Sub(d.lastHeard[i])
		id := topology.NodeID(i)
		switch {
		case silent < suspectAfter:
			if d.state[i] != Alive {
				d.state[i] = Alive
				d.stats.Recoveries++
				d.events = append(d.events, Event{Node: id, Kind: Recovered, At: now})
				d.emitTransition(id, Recovered, silent)
			}
		case silent >= deadAfter:
			if d.state[i] != Dead {
				d.state[i] = Dead
				d.stats.Deaths++
				d.events = append(d.events, Event{Node: id, Kind: Died, At: now})
				d.emitTransition(id, Died, silent)
			}
		default:
			if d.state[i] == Alive {
				d.state[i] = Suspect
				d.stats.Suspects++
				d.events = append(d.events, Event{Node: id, Kind: Suspected, At: now})
				d.emitTransition(id, Suspected, silent)
			}
		}
	}
}

// emitTransition mirrors a liveness transition into the trace (no-op
// without a configured tracer).
func (d *Detector) emitTransition(id topology.NodeID, k Kind, silent time.Duration) {
	if !d.cfg.Tracer.Enabled() {
		return
	}
	d.cfg.Tracer.Emit("failure", k.String(),
		trace.Int("node", int(id)), trace.Dur("silent_ms", silent))
}

// Stop halts the check schedule and releases the observer hook.
func (d *Detector) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	t := d.timer
	d.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	d.net.ObserveHeartbeats(nil)
}

// TakeEvents drains and returns the pending event queue in emission
// order. Clock event callbacks must not block, so consumers (the
// repair loop) poll this from a driving actor instead of receiving on
// a channel.
func (d *Detector) TakeEvents() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	ev := d.events
	d.events = nil
	return ev
}

// State returns the current verdict for a node.
func (d *Detector) State(id topology.NodeID) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state[id]
}

// DeadNodes returns every currently-Dead node in id order.
func (d *Detector) DeadNodes() []topology.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var dead []topology.NodeID
	for i, s := range d.state {
		if s == Dead {
			dead = append(dead, topology.NodeID(i))
		}
	}
	return dead
}

// Stats returns a snapshot of the activity counters.
func (d *Detector) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
