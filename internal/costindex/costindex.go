// Package costindex provides an exact k-nearest-neighbor index over the
// cost-space points of overlay nodes — the data structure behind the
// physical-mapping hot path (project an ideal virtual coordinate onto
// the nearest physical node in full cost-space distance) that every
// optimization performs once per unpinned service.
//
// # Structure choice: k-d tree, not a Hilbert-cell grid
//
// Two candidate structures fit the workload: a k-d tree over the points,
// or buckets keyed by Hilbert cell (reusing the DHT's space-filling
// curve) with an expanding-ring search. The k-d tree wins here:
//
//   - Cost spaces are low-dimensional (2 latency dims + a handful of
//     scalar dims), the regime where k-d pruning is most effective.
//   - The tree is exact by construction with no tuning knob. A Hilbert
//     grid needs a cell resolution; exactness then requires visiting
//     every cell intersecting the current search ball, and the walk
//     degenerates when points cluster — which they do, since stub
//     domains share transit latencies and idle nodes share the zero
//     scalar plane.
//   - Mapping needs a correct `exclude` set (drained nodes, anti-
//     co-location) and lowest-node-id tie-breaking; both drop out of
//     tree search trivially but complicate a bucketed grid.
//
// # Exactness contract
//
// Queries return results identical to the brute-force linear scans they
// replace (placement.OracleMapper, dht.Catalog.ExactNearest): distances
// are accumulated over coordinates in the same order with the same
// float64 operations as costspace.Space.Distance/VectorDistance, ties
// are broken by lowest id, and subtree pruning is strict (a plane is
// pruned only when it is strictly farther than the current worst
// candidate), so equal-distance candidates on the far side of a split
// are still found and tie-broken.
//
// # Immutability, versioning, and point churn
//
// An Index is immutable and therefore freely shared by concurrent
// readers with no locking — the optimizer hangs one off each frozen
// environment snapshot. It carries the mutation version (the optimizer's
// environment epoch) it was built under; owners compare Version against
// their current epoch to decide whether the index is still valid, the
// same invalidation discipline as the optimizer's PlanCache.
//
// Point churn (a load change moves one node's coordinate) does not force
// an immediate rebuild: WithPoint derives a new Index sharing the same
// tree with a small patch overlay of moved points. Patched ids are
// masked out of tree candidacy — the stored split planes still partition
// the unmoved points correctly — and compared linearly, preserving
// exactness. When the overlay outgrows its budget, WithPoint refuses and
// the owner rebuilds, bounding per-query patch overhead.
package costindex

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/hourglass/sbon/internal/costspace"
)

// Neighbor is one k-NN result: item id and its distance to the target.
type Neighbor struct {
	ID   int32
	Dist float64
}

// Index answers exact nearest-neighbor queries over a fixed set of
// cost-space points, identified by dense ids 0..Len()-1 (the optimizer
// uses node ids; the DHT catalog uses positions in its node-sorted
// published set). The zero value is not usable; call Build.
//
// An Index is immutable: all methods are safe for unsynchronized
// concurrent use, and WithPoint/WithVersion return derived copies.
type Index struct {
	version uint64
	dims    int // total coordinate dimensionality
	vdims   int // vector-subspace dimensionality
	n       int
	flat    []float64 // n*dims point coordinates, id-major
	order   []int32   // tree arrangement: median of order[lo:hi) at (lo+hi)/2
	// patched maps ids whose point moved after the tree was built to
	// their current coordinates. Nil when the index is patch-free.
	patched map[int32]costspace.Point
}

// Build constructs an index over pts (id i holds pts[i]) in the given
// cost space, stamped with the owner's mutation version. The points are
// copied; later mutation of pts does not affect the index. It panics if
// any point's dimensionality does not match the space, since that is
// always a programming error.
func Build(space *costspace.Space, pts []costspace.Point, version uint64) *Index {
	dims := space.Dims()
	x := &Index{
		version: version,
		dims:    dims,
		vdims:   space.VectorDims,
		n:       len(pts),
		flat:    make([]float64, len(pts)*dims),
		order:   make([]int32, len(pts)),
	}
	for i, p := range pts {
		if len(p) != dims {
			panic(fmt.Sprintf("costindex: point %d has %d dims, space has %d", i, len(p), dims))
		}
		copy(x.flat[i*dims:], p)
		x.order[i] = int32(i)
	}
	x.build(0, x.n, 0)
	return x
}

// Version returns the owner mutation version the index was built (or
// last re-stamped) under.
func (x *Index) Version() uint64 { return x.version }

// Len returns the number of indexed points.
func (x *Index) Len() int { return x.n }

// NumPatched returns the number of points overridden since the tree was
// built.
func (x *Index) NumPatched() int { return len(x.patched) }

// patchBudget bounds the overlay size: beyond this, per-query linear
// patch scans erode the tree's advantage and a rebuild is cheaper.
//
// The budget comes from the crossover measurements in
// crossover_bench_test.go (Xeon 2.10GHz, go1.24, 4-dim latency+load
// space, k=4 queries):
//
//	clean KNearest   1.47µs (n=1k)   2.05µs (n=10k)   2.87µs (n=100k)
//	per-patch cost   ~18–20ns/query, independent of n
//	Build            127µs  (n=1k)   2.39ms (n=10k)   34.8ms (n=100k)
//
// Overlay scans cost the same per patch at every scale while the tree
// query grows like log n, so the break-even overlay size — where patch
// scanning doubles the query — is cleanQuery/18ns ≈ 80 at 1k, ~115 at
// 10k, ~160 at 100k: logarithmic in n, not linear. The previous fixed
// 8+n/8 budget admitted 12.5k patches at n=100k, a measured ~78x
// per-query slowdown; 32+8·log2(n) tracks the measured doubling point
// (112 at 1k, 138 at 10k, 165 at 100k) and keeps patched queries
// within ~2x of a clean tree at every scale.
func (x *Index) patchBudget() int {
	return 32 + 8*bits.Len(uint(x.n))
}

// WithPoint derives an index in which id's point is p (p is copied),
// stamped with the new version. It reports ok=false — leaving the
// receiver unchanged and returning nil — when the patch overlay would
// exceed its budget; the caller should Build a fresh index instead. If
// p equals the id's tree coordinate bitwise, the patch is dropped (the
// point moved back), shrinking the overlay.
func (x *Index) WithPoint(id int32, p costspace.Point, version uint64) (*Index, bool) {
	if int(id) < 0 || int(id) >= x.n {
		panic(fmt.Sprintf("costindex: WithPoint id %d out of range [0,%d)", id, x.n))
	}
	if len(p) != x.dims {
		panic(fmt.Sprintf("costindex: WithPoint %d-dim point in %d-dim index", len(p), x.dims))
	}
	nx := *x
	nx.version = version
	back := true // p equals the original tree coordinate
	for j := 0; j < x.dims; j++ {
		if p[j] != x.flat[int(id)*x.dims+j] {
			back = false
			break
		}
	}
	_, already := x.patched[id]
	if back && !already {
		return &nx, true // nothing to patch
	}
	nx.patched = make(map[int32]costspace.Point, len(x.patched)+1)
	for k, v := range x.patched {
		nx.patched[k] = v
	}
	if back {
		delete(nx.patched, id)
	} else {
		if !already && len(x.patched) >= x.patchBudget() {
			return nil, false
		}
		nx.patched[id] = p.Clone()
	}
	if len(nx.patched) == 0 {
		nx.patched = nil
	}
	return &nx, true
}

// WithVersion re-stamps the index for a mutation that did not move any
// point (e.g. a statistics-catalog change that advances the environment
// epoch), avoiding a needless rebuild.
func (x *Index) WithVersion(version uint64) *Index {
	nx := *x
	nx.version = version
	return &nx
}

// Nearest returns the non-excluded id nearest to target in full-space
// distance, with ties broken by lowest id — the indexed equivalent of a
// linear scan in id order keeping the strictly closest point. found is
// false when every point is excluded (or the index is empty).
func (x *Index) Nearest(target costspace.Point, exclude func(int32) bool) (id int32, dist float64, found bool) {
	return x.nearest(target, x.dims, exclude)
}

// NearestVector is Nearest with distance restricted to the vector
// (latency) subspace, the metric of costspace.Space.VectorDistance.
func (x *Index) NearestVector(target costspace.Point, exclude func(int32) bool) (id int32, dist float64, found bool) {
	return x.nearest(target, x.vdims, exclude)
}

// KNearest appends to dst the k non-excluded ids nearest to target in
// full-space distance, ordered by (distance, id) — identical to sorting
// a linear scan by that key and keeping the first k. Passing a slice
// with spare capacity avoids allocation; dst's length is ignored.
func (x *Index) KNearest(target costspace.Point, k int, exclude func(int32) bool, dst []Neighbor) []Neighbor {
	x.checkTarget(target)
	if k <= 0 {
		return dst[:0]
	}
	q := knnQuery{x: x, target: target, ed: x.dims, k: k, exclude: exclude, heap: dst[:0]}
	if x.n > 0 {
		q.visit(0, x.n, 0)
	}
	for id, p := range x.patched {
		if exclude == nil || !exclude(id) {
			q.offer(id, distPoint(target, p, x.dims))
		}
	}
	out := q.heap
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// WithinRadius appends to dst every non-excluded id within full-space
// distance r of target (inclusive), ordered by (distance, id).
func (x *Index) WithinRadius(target costspace.Point, r float64, exclude func(int32) bool, dst []Neighbor) []Neighbor {
	x.checkTarget(target)
	q := radiusQuery{x: x, target: target, ed: x.dims, r: r, exclude: exclude, out: dst[:0]}
	if x.n > 0 {
		q.visit(0, x.n, 0)
	}
	for id, p := range x.patched {
		if exclude == nil || !exclude(id) {
			if d := distPoint(target, p, x.dims); d <= r {
				q.out = append(q.out, Neighbor{ID: id, Dist: d})
			}
		}
	}
	out := q.out
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// Distance returns the full-space distance from target to the id's
// current point (honoring patches), computed identically to
// costspace.Space.Distance.
func (x *Index) Distance(id int32, target costspace.Point) float64 {
	x.checkTarget(target)
	if p, ok := x.patched[id]; ok {
		return distPoint(target, p, x.dims)
	}
	return x.dist(id, target, x.dims)
}

func (x *Index) checkTarget(target costspace.Point) {
	if len(target) != x.dims {
		panic(fmt.Sprintf("costindex: %d-dim target in %d-dim index", len(target), x.dims))
	}
}

// coord returns the tree (unpatched) coordinate of id on axis.
func (x *Index) coord(id int32, axis int) float64 {
	return x.flat[int(id)*x.dims+axis]
}

// dist returns the distance from target to id's tree point over the
// first ed dimensions, with the exact accumulation order of
// costspace.Space.Distance (ed == dims) / VectorDistance (ed == vdims).
func (x *Index) dist(id int32, target costspace.Point, ed int) float64 {
	base := int(id) * x.dims
	var ss float64
	for j := 0; j < ed; j++ {
		d := target[j] - x.flat[base+j]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// distPoint is dist for an explicit (patched) point.
func distPoint(target costspace.Point, p costspace.Point, ed int) float64 {
	var ss float64
	for j := 0; j < ed; j++ {
		d := target[j] - p[j]
		ss += d * d
	}
	return math.Sqrt(ss)
}

func lexLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// ---- tree construction ----

// build arranges order[lo:hi) into k-d tree form: the median by
// (coordinate on the depth's axis, id) sits at (lo+hi)/2, smaller
// elements in [lo,mid), larger in (mid,hi); subtrees recurse with the
// next axis. Iterating on the larger half bounds the stack at O(log n).
func (x *Index) build(lo, hi, depth int) {
	for hi-lo > 1 {
		axis := depth % x.dims
		mid := (lo + hi) / 2
		x.selectKth(lo, hi, mid, axis)
		x.build(lo, mid, depth+1)
		lo = mid + 1
		depth++
	}
}

// less orders ids by (coordinate on axis, id) — a strict total order, so
// tree shape is deterministic for a given point set.
func (x *Index) less(a, b int32, axis int) bool {
	ca, cb := x.coord(a, axis), x.coord(b, axis)
	if ca != cb {
		return ca < cb
	}
	return a < b
}

// selectKth partially sorts order[lo:hi) so position k holds the element
// of rank k under less (quickselect, median-of-three pivot).
func (x *Index) selectKth(lo, hi, k, axis int) {
	o := x.order
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if x.less(o[mid], o[lo], axis) {
			o[lo], o[mid] = o[mid], o[lo]
		}
		if x.less(o[hi-1], o[lo], axis) {
			o[lo], o[hi-1] = o[hi-1], o[lo]
		}
		if x.less(o[hi-1], o[mid], axis) {
			o[mid], o[hi-1] = o[hi-1], o[mid]
		}
		// o[hi-1] now holds the median-of-three; partition against it.
		pv := o[hi-1]
		i := lo
		for j := lo; j < hi-1; j++ {
			if x.less(o[j], pv, axis) {
				o[i], o[j] = o[j], o[i]
				i++
			}
		}
		o[i], o[hi-1] = o[hi-1], o[i]
		switch {
		case k == i:
			return
		case k < i:
			hi = i
		default:
			lo = i + 1
		}
	}
}

// ---- single-nearest search ----

type nnQuery struct {
	x       *Index
	target  costspace.Point
	ed      int
	exclude func(int32) bool
	bestID  int32
	bestD   float64
	found   bool
}

func (x *Index) nearest(target costspace.Point, ed int, exclude func(int32) bool) (int32, float64, bool) {
	x.checkTarget(target)
	q := nnQuery{x: x, target: target, ed: ed, exclude: exclude}
	if x.n > 0 {
		q.visit(0, x.n, 0)
	}
	for id, p := range x.patched {
		if exclude != nil && exclude(id) {
			continue
		}
		d := distPoint(target, p, ed)
		if !q.found || d < q.bestD || (d == q.bestD && id < q.bestID) {
			q.bestID, q.bestD, q.found = id, d, true
		}
	}
	return q.bestID, q.bestD, q.found
}

func (q *nnQuery) visit(lo, hi, depth int) {
	x := q.x
	mid := (lo + hi) / 2
	id := x.order[mid]
	if _, moved := x.patched[id]; !moved && (q.exclude == nil || !q.exclude(id)) {
		d := x.dist(id, q.target, q.ed)
		if !q.found || d < q.bestD || (d == q.bestD && id < q.bestID) {
			q.bestID, q.bestD, q.found = id, d, true
		}
	}
	if hi-lo == 1 {
		return
	}
	axis := depth % x.dims
	var diff float64
	if axis < q.ed {
		// Masked (out-of-subspace) axes contribute zero distance, so both
		// subtrees are always in range.
		diff = q.target[axis] - x.coord(id, axis)
	}
	if diff < 0 {
		q.visit(lo, mid, depth+1)
		// The far plane prunes only when strictly farther than the best:
		// an equal-distance candidate beyond it could still win its tie
		// on a lower id.
		if (!q.found || -diff <= q.bestD) && mid+1 < hi {
			q.visit(mid+1, hi, depth+1)
		}
	} else {
		if mid+1 < hi {
			q.visit(mid+1, hi, depth+1)
		}
		if !q.found || diff <= q.bestD {
			q.visit(lo, mid, depth+1)
		}
	}
}

// ---- k-nearest search ----

// knnQuery maintains a bounded max-heap of the k best (distance, id)
// pairs seen, worst at the root, ordered lexicographically so the final
// contents equal "sort all candidates by (distance, id), keep first k".
type knnQuery struct {
	x       *Index
	target  costspace.Point
	ed      int
	k       int
	exclude func(int32) bool
	heap    []Neighbor
}

func (q *knnQuery) offer(id int32, d float64) {
	nb := Neighbor{ID: id, Dist: d}
	if len(q.heap) < q.k {
		q.heap = append(q.heap, nb)
		// Sift up.
		i := len(q.heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !lexLess(q.heap[parent], q.heap[i]) {
				break
			}
			q.heap[parent], q.heap[i] = q.heap[i], q.heap[parent]
			i = parent
		}
		return
	}
	if !lexLess(nb, q.heap[0]) {
		return
	}
	q.heap[0] = nb
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(q.heap) && lexLess(q.heap[big], q.heap[l]) {
			big = l
		}
		if r < len(q.heap) && lexLess(q.heap[big], q.heap[r]) {
			big = r
		}
		if big == i {
			return
		}
		q.heap[i], q.heap[big] = q.heap[big], q.heap[i]
		i = big
	}
}

func (q *knnQuery) visit(lo, hi, depth int) {
	x := q.x
	mid := (lo + hi) / 2
	id := x.order[mid]
	if _, moved := x.patched[id]; !moved && (q.exclude == nil || !q.exclude(id)) {
		q.offer(id, x.dist(id, q.target, q.ed))
	}
	if hi-lo == 1 {
		return
	}
	axis := depth % x.dims
	var diff float64
	if axis < q.ed {
		diff = q.target[axis] - x.coord(id, axis)
	}
	inRange := func(d float64) bool {
		return len(q.heap) < q.k || d <= q.heap[0].Dist
	}
	if diff < 0 {
		q.visit(lo, mid, depth+1)
		if inRange(-diff) && mid+1 < hi {
			q.visit(mid+1, hi, depth+1)
		}
	} else {
		if mid+1 < hi {
			q.visit(mid+1, hi, depth+1)
		}
		if inRange(diff) {
			q.visit(lo, mid, depth+1)
		}
	}
}

// ---- radius search ----

type radiusQuery struct {
	x       *Index
	target  costspace.Point
	ed      int
	r       float64
	exclude func(int32) bool
	out     []Neighbor
}

func (q *radiusQuery) visit(lo, hi, depth int) {
	x := q.x
	mid := (lo + hi) / 2
	id := x.order[mid]
	if _, moved := x.patched[id]; !moved && (q.exclude == nil || !q.exclude(id)) {
		if d := x.dist(id, q.target, q.ed); d <= q.r {
			q.out = append(q.out, Neighbor{ID: id, Dist: d})
		}
	}
	if hi-lo == 1 {
		return
	}
	axis := depth % x.dims
	var diff float64
	if axis < q.ed {
		diff = q.target[axis] - x.coord(id, axis)
	}
	if diff < 0 {
		q.visit(lo, mid, depth+1)
		if -diff <= q.r && mid+1 < hi {
			q.visit(mid+1, hi, depth+1)
		}
	} else {
		if mid+1 < hi {
			q.visit(mid+1, hi, depth+1)
		}
		if diff <= q.r {
			q.visit(lo, mid, depth+1)
		}
	}
}
