package costindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// randSpace builds a space with 1-3 vector dims and 0-2 scalar dims with
// varied weighting functions.
func randSpace(rng *rand.Rand) *costspace.Space {
	s := &costspace.Space{VectorDims: 1 + rng.Intn(3)}
	weights := []costspace.WeightFunc{
		costspace.SquaredWeight{Scale: 1 + rng.Float64()*200},
		costspace.LinearWeight{Scale: 1 + rng.Float64()*50},
		costspace.HingeWeight{Threshold: rng.Float64() * 0.5, Scale: 1 + rng.Float64()*100},
		costspace.ExponentialWeight{Scale: 1 + rng.Float64()*10, Rate: 1 + rng.Float64()*3},
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Scalars = append(s.Scalars, costspace.ScalarDim{
			Name:   "s",
			Weight: weights[rng.Intn(len(weights))],
		})
	}
	return s
}

// randPoints draws n points. Grid mode quantizes coordinates onto small
// integers so exact distance ties (3-4-5 style and duplicated points)
// actually occur and exercise the tie-breaking paths.
func randPoints(rng *rand.Rand, space *costspace.Space, n int, grid bool) []costspace.Point {
	pts := make([]costspace.Point, n)
	for i := range pts {
		vec := make(vivaldi.Coord, space.VectorDims)
		for j := range vec {
			if grid {
				vec[j] = float64(rng.Intn(7))
			} else {
				vec[j] = rng.NormFloat64() * 40
			}
		}
		raw := make([]float64, len(space.Scalars))
		for j := range raw {
			if grid {
				raw[j] = float64(rng.Intn(3)) / 2
			} else {
				raw[j] = rng.Float64()
			}
		}
		pts[i] = space.NewPoint(vec, raw)
	}
	return pts
}

func randTarget(rng *rand.Rand, space *costspace.Space, grid bool) costspace.Point {
	vec := make(vivaldi.Coord, space.VectorDims)
	for j := range vec {
		if grid {
			vec[j] = float64(rng.Intn(7))
		} else {
			vec[j] = rng.NormFloat64() * 40
		}
	}
	return space.IdealPoint(vec)
}

// brute is the reference: a linear scan over current points (patches
// applied) in id order, exactly like the scans the index replaces.
type brute struct {
	space *costspace.Space
	pts   []costspace.Point
}

func (b brute) nearest(target costspace.Point, ed int, exclude func(int32) bool) (int32, float64, bool) {
	bestID, bestD, found := int32(0), 0.0, false
	for i, p := range b.pts {
		if exclude != nil && exclude(int32(i)) {
			continue
		}
		var d float64
		if ed == b.space.Dims() {
			d = b.space.Distance(target, p)
		} else {
			d = b.space.VectorDistance(target, p)
		}
		if !found || d < bestD {
			bestID, bestD, found = int32(i), d, true
		}
	}
	return bestID, bestD, found
}

func (b brute) knearest(target costspace.Point, k int, exclude func(int32) bool) []Neighbor {
	var all []Neighbor
	for i, p := range b.pts {
		if exclude != nil && exclude(int32(i)) {
			continue
		}
		all = append(all, Neighbor{ID: int32(i), Dist: b.space.Distance(target, p)})
	}
	sort.Slice(all, func(i, j int) bool { return lexLess(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func (b brute) within(target costspace.Point, r float64, exclude func(int32) bool) []Neighbor {
	var all []Neighbor
	for i, p := range b.pts {
		if exclude != nil && exclude(int32(i)) {
			continue
		}
		if d := b.space.Distance(target, p); d <= r {
			all = append(all, Neighbor{ID: int32(i), Dist: d})
		}
	}
	sort.Slice(all, func(i, j int) bool { return lexLess(all[i], all[j]) })
	return all
}

func neighborsEqual(t *testing.T, what string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d (got %v want %v)", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: result %d = {%d, %v}, want {%d, %v}",
				what, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
	}
}

// TestIndexMatchesLinearScanProperty is the identity property at the
// heart of the acceptance criteria: across random spaces (varying vector
// dims, scalar weighting functions), point distributions (including
// integer grids that force exact distance ties and duplicate points),
// exclusion sets, patch overlays, and ks, every index query returns
// bitwise-identical results to the brute-force linear scan.
func TestIndexMatchesLinearScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		space := randSpace(rng)
		grid := trial%3 == 0
		n := []int{0, 1, 2, 3, 7, 25, 120}[rng.Intn(7)]
		pts := randPoints(rng, space, n, grid)
		x := Build(space, pts, uint64(trial))

		// Apply a random patch sequence (moves, move-backs) — the brute
		// reference tracks the current points.
		cur := make([]costspace.Point, n)
		for i := range pts {
			cur[i] = pts[i].Clone()
		}
		if n > 0 {
			for m, nm := 0, rng.Intn(5); m < nm; m++ {
				id := int32(rng.Intn(n))
				var p costspace.Point
				if rng.Intn(4) == 0 {
					p = pts[id].Clone() // exact move-back: patch must drop
				} else {
					p = randPoints(rng, space, 1, grid)[0]
				}
				cur[id] = p
				if nx, ok := x.WithPoint(id, p, x.Version()+1); ok {
					x = nx
				} else {
					// Budget exhausted: rebuild over current points, the
					// same move the index's owners make.
					x = Build(space, cur, x.Version()+1)
				}
			}
		}
		ref := brute{space: space, pts: cur}

		var exclude func(int32) bool
		excluded := map[int32]bool{}
		switch rng.Intn(4) {
		case 1: // random subset
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					excluded[int32(i)] = true
				}
			}
			exclude = func(id int32) bool { return excluded[id] }
		case 2: // everything
			exclude = func(int32) bool { return true }
		}

		for qn := 0; qn < 4; qn++ {
			target := randTarget(rng, space, grid && rng.Intn(2) == 0)

			gid, gd, gok := x.Nearest(target, exclude)
			wid, wd, wok := ref.nearest(target, space.Dims(), exclude)
			if gok != wok || (gok && (gid != wid || gd != wd)) {
				t.Fatalf("trial %d: Nearest = (%d,%v,%v), want (%d,%v,%v)",
					trial, gid, gd, gok, wid, wd, wok)
			}

			gid, gd, gok = x.NearestVector(target, exclude)
			wid, wd, wok = ref.nearest(target, space.VectorDims, exclude)
			if gok != wok || (gok && (gid != wid || gd != wd)) {
				t.Fatalf("trial %d: NearestVector = (%d,%v,%v), want (%d,%v,%v)",
					trial, gid, gd, gok, wid, wd, wok)
			}

			k := []int{1, 2, 3, 8, n, n + 5}[rng.Intn(6)]
			neighborsEqual(t, "KNearest",
				x.KNearest(target, k, exclude, nil), ref.knearest(target, k, exclude))

			r := rng.Float64() * 80
			neighborsEqual(t, "WithinRadius",
				x.WithinRadius(target, r, exclude, nil), ref.within(target, r, exclude))
		}
	}
}

func TestIndexEmptyAndAllExcluded(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	x := Build(space, nil, 0)
	if _, _, ok := x.Nearest(space.IdealPoint(vivaldi.Coord{0, 0}), nil); ok {
		t.Fatal("Nearest on empty index reported found")
	}
	pts := []costspace.Point{
		space.NewPoint(vivaldi.Coord{1, 2}, []float64{0.5}),
		space.NewPoint(vivaldi.Coord{3, 4}, []float64{0.1}),
	}
	x = Build(space, pts, 1)
	all := func(int32) bool { return true }
	if _, _, ok := x.Nearest(space.IdealPoint(vivaldi.Coord{0, 0}), all); ok {
		t.Fatal("Nearest with everything excluded reported found")
	}
	if got := x.KNearest(space.IdealPoint(vivaldi.Coord{0, 0}), 5, all, nil); len(got) != 0 {
		t.Fatalf("KNearest with everything excluded returned %v", got)
	}
}

func TestIndexVersioningAndPatchBudget(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, space, 200, false)
	x := Build(space, pts, 3)
	if x.Version() != 3 {
		t.Fatalf("Version = %d, want 3", x.Version())
	}
	if x2 := x.WithVersion(9); x2.Version() != 9 || x.Version() != 3 {
		t.Fatalf("WithVersion: got %d / receiver %d", x2.WithVersion(9).Version(), x.Version())
	}

	// Patch until the budget refuses; the receiver must stay valid.
	cur := x
	budget := x.patchBudget()
	if budget >= 200 {
		t.Fatalf("fixture too small for budget %d", budget)
	}
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("patch budget never refused")
		}
		p := randPoints(rng, space, 1, false)[0]
		nx, ok := cur.WithPoint(int32(i%200), p, uint64(4+i))
		if !ok {
			if cur.NumPatched() != budget {
				t.Fatalf("refused at %d patches, want %d", cur.NumPatched(), budget)
			}
			break
		}
		cur = nx
	}

	// Exact move-back drops the patch.
	y, ok := x.WithPoint(5, pts[5].Clone(), 4)
	if !ok || y.NumPatched() != 0 {
		t.Fatalf("move-back: ok=%v patched=%d, want true/0", ok, y.NumPatched())
	}
	moved, _ := x.WithPoint(5, randPoints(rng, space, 1, false)[0], 4)
	back, ok := moved.WithPoint(5, pts[5].Clone(), 5)
	if !ok || back.NumPatched() != 0 {
		t.Fatalf("patch then move-back: ok=%v patched=%d, want true/0", ok, back.NumPatched())
	}
}

func TestIndexDistanceMatchesSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	space := costspace.NewLatencyLoadSpace(100)
	pts := randPoints(rng, space, 25, false)
	x := Build(space, pts, 0)
	target := randTarget(rng, space, false)
	for i, p := range pts {
		if got, want := x.Distance(int32(i), target), space.Distance(target, p); got != want {
			t.Fatalf("Distance(%d) = %v, want %v", i, got, want)
		}
	}
	np := randPoints(rng, space, 1, false)[0]
	x2, _ := x.WithPoint(3, np, 1)
	if got, want := x2.Distance(3, target), space.Distance(target, np); got != want {
		t.Fatalf("patched Distance = %v, want %v", got, want)
	}
}

// TestIndexReusesDst verifies the allocation contract: results are
// appended into dst's backing array when capacity allows.
func TestIndexReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	space := costspace.NewLatencyLoadSpace(100)
	pts := randPoints(rng, space, 30, false)
	x := Build(space, pts, 0)
	target := randTarget(rng, space, false)
	buf := make([]Neighbor, 0, 64)
	out := x.KNearest(target, 5, nil, buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("KNearest did not reuse dst's backing array")
	}
	out2 := x.WithinRadius(target, math.Inf(1), nil, buf)
	if len(out2) != 30 || &out2[0] != &buf[:1][0] {
		t.Fatal("WithinRadius did not reuse dst's backing array")
	}
}
