package costindex

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/costspace"
)

// The crossover suite behind the patchBudget numbers: rebuild cost at
// each scale, and per-query cost as the patch overlay grows. Run with
//
//	go test ./internal/costindex/ -run '^$' -bench 'Crossover' -benchtime 2s
//
// and see the patchBudget comment for the measured results.

func crossoverFixture(n int, rng *rand.Rand) (*costspace.Space, []costspace.Point) {
	space := costspace.NewLatencyLoadSpace(1.0)
	pts := make([]costspace.Point, n)
	for i := range pts {
		p := make(costspace.Point, space.Dims())
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return space, pts
}

func BenchmarkCrossoverRebuild(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			space, pts := crossoverFixture(n, rand.New(rand.NewSource(1)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Build(space, pts, uint64(i))
			}
		})
	}
}

func BenchmarkCrossoverQuery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, patches := range []int{0, 16, 64, 256, 1024} {
			if patches >= n {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/patched=%d", n, patches), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				space, pts := crossoverFixture(n, rng)
				x := Build(space, pts, 0)
				// Grow the overlay past the default budget by hand:
				// benchmarks size it directly to chart the curve.
				x.patched = make(map[int32]costspace.Point, patches)
				for len(x.patched) < patches {
					id := int32(rng.Intn(n))
					p := pts[id].Clone()
					p[0] += rng.Float64() * 10
					x.patched[id] = p
				}
				q := make(costspace.Point, space.Dims())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range q {
						q[j] = rng.Float64() * 100
					}
					x.KNearest(q, 4, nil, nil)
				}
			})
		}
	}
}
