// Package dht implements a Chord-style distributed hash table used as the
// decentralized catalog of the paper's physical-mapping step (§3.2): every
// SBON node publishes its cost-space coordinate under a Hilbert-curve key,
// and a lookup of any coordinate returns nodes whose published coordinates
// are closest to it.
//
// The ring is simulated in-process but preserves the structural properties
// the paper relies on: 64-bit identifier circle, successor ownership of
// keys, finger tables giving O(log N) lookup hops, and key locality — the
// Hilbert keys of nearby cost-space points land on nearby ring arcs, so a
// short ring walk around a lookup target enumerates a compact cost-space
// region (used for both nearest-node mapping and radius-pruned multi-query
// optimization).
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// ID is a position on the 64-bit identifier circle.
type ID uint64

// Peer is one DHT participant. Peers correspond 1:1 to overlay nodes.
type Peer struct {
	id   ID
	node topology.NodeID
	// idx is the peer's position in the ring's id-sorted peer slice,
	// maintained on join/leave so ring-walk neighbor steps are O(1)
	// instead of a binary search per step.
	idx int
	// fingers[i] points at the peer owning id + 2^i (fully stabilized
	// Chord finger table).
	fingers []*Peer
	// store holds the catalog entries this peer owns, keyed by scaled
	// Hilbert key.
	store map[ID][]Entry
	// flat mirrors store as one slice, kept in sync by the store*
	// mutators: ring walks enumerate a peer's entries far more often
	// than publishes change them, and appending a slice beats iterating
	// a map on that hot path.
	flat []Entry
}

// storeAdd records e in the peer's store and flat mirror.
func (p *Peer) storeAdd(e Entry) {
	p.store[e.Key] = append(p.store[e.Key], e)
	p.flat = append(p.flat, e)
}

// storeAddAll records a batch of entries under one key (migration).
func (p *Peer) storeAddAll(k ID, entries []Entry) {
	p.store[k] = append(p.store[k], entries...)
	p.flat = append(p.flat, entries...)
}

// storeHas reports whether the peer stores the entry for (key, node).
func (p *Peer) storeHas(key ID, node topology.NodeID) bool {
	for _, se := range p.store[key] {
		if se.Node == node {
			return true
		}
	}
	return false
}

// storeRemove deletes the entry for (key, node), reporting whether it
// was present.
func (p *Peer) storeRemove(key ID, node topology.NodeID) bool {
	entries, ok := p.store[key]
	if !ok {
		return false
	}
	for i, se := range entries {
		if se.Node == node {
			p.store[key] = append(entries[:i], entries[i+1:]...)
			if len(p.store[key]) == 0 {
				delete(p.store, key)
			}
			for j := range p.flat {
				if p.flat[j].Node == node && p.flat[j].Key == key {
					p.flat = append(p.flat[:j], p.flat[j+1:]...)
					break
				}
			}
			return true
		}
	}
	return false
}

// rebuildFlat reconstitutes the flat mirror from the store.
func (p *Peer) rebuildFlat() {
	p.flat = p.flat[:0]
	for _, entries := range p.store {
		p.flat = append(p.flat, entries...)
	}
}

// Entries returns the peer's stored entries as one slice. The caller
// must not modify it.
func (p *Peer) Entries() []Entry { return p.flat }

// ID returns the peer's ring identifier.
func (p *Peer) ID() ID { return p.id }

// Node returns the overlay node this peer runs on.
func (p *Peer) Node() topology.NodeID { return p.node }

// PeerID derives the ring identifier for an overlay node, by hashing its
// ID (FNV-64a over a fixed-width encoding).
func PeerID(n topology.NodeID) ID {
	h := fnv.New64a()
	var buf [8]byte
	v := uint64(n)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte("sbon-peer"))
	return ID(h.Sum64())
}

// Ring is the set of DHT peers plus routing state. It is not safe for
// concurrent mutation; the simulator drives it from one goroutine.
type Ring struct {
	peers  []*Peer // sorted by id
	byNode map[topology.NodeID]*Peer

	// faults is the installed RPC fault configuration (zero value: no
	// injection); fstats accumulates RPC outcomes under it.
	faults RingFaults
	fstats RingFaultStats

	// tracer, when set, records lookup spans with their hop chains and
	// RPC retry/failure events. Nil (the default) costs one pointer
	// check per lookup.
	tracer *trace.Tracer
}

// SetTracer installs (or, with nil, removes) the trace sink for lookup
// spans and RPC fault events.
func (r *Ring) SetTracer(t *trace.Tracer) { r.tracer = t }

// NewRing returns an empty ring.
func NewRing() *Ring {
	return &Ring{byNode: make(map[topology.NodeID]*Peer)}
}

// AddPeer joins the overlay node to the ring and updates routing state.
// Finger tables are maintained incrementally — only fingers the new
// peer takes over are rewritten, O(log N) arcs instead of a full
// O(N·log N) rebuild per join — and land in the same fully stabilized
// state rebuildFingers computes. It returns an error if the node is
// already present or its hashed ID collides with an existing peer.
func (r *Ring) AddPeer(n topology.NodeID) (*Peer, error) {
	if _, ok := r.byNode[n]; ok {
		return nil, fmt.Errorf("dht: node %d already joined", n)
	}
	id := PeerID(n)
	if i := r.search(id); i < len(r.peers) && r.peers[i].id == id {
		return nil, fmt.Errorf("dht: identifier collision for node %d", n)
	}
	p := &Peer{id: id, node: n, store: make(map[ID][]Entry)}
	i := r.search(id)
	r.peers = append(r.peers, nil)
	copy(r.peers[i+1:], r.peers[i:])
	r.peers[i] = p
	r.byNode[n] = p
	r.reindexFrom(i)
	r.migrateOnJoin(p)
	r.updateFingersOnJoin(p)
	return p, nil
}

// RemovePeer removes the overlay node from the ring, transferring its
// stored entries to the new owner, and updates routing state (fingers
// that pointed at the departed peer move to its successor).
func (r *Ring) RemovePeer(n topology.NodeID) error {
	p, ok := r.byNode[n]
	if !ok {
		return fmt.Errorf("dht: node %d not in ring", n)
	}
	var pred *Peer
	if len(r.peers) > 1 {
		pred = r.predecessorOf(p)
	}
	i := p.idx
	r.peers = append(r.peers[:i], r.peers[i+1:]...)
	delete(r.byNode, n)
	r.reindexFrom(i)
	if len(r.peers) > 0 {
		// The departing peer's keys now belong to its successor.
		succ := r.successor(p.id)
		for k, entries := range p.store {
			succ.storeAddAll(k, entries)
		}
		r.updateFingersOnLeave(p, pred, succ)
	}
	// Clear the departed peer's store so stale references to it (the
	// catalog's storing-peer cache) cannot find the dead copies.
	p.store = make(map[ID][]Entry)
	p.flat = nil
	return nil
}

// reindexFrom refreshes the cached slice positions of peers[i:].
func (r *Ring) reindexFrom(i int) {
	for ; i < len(r.peers); i++ {
		r.peers[i].idx = i
	}
}

// migrateOnJoin moves entries the new peer now owns from its successor.
func (r *Ring) migrateOnJoin(p *Peer) {
	if len(r.peers) <= 1 {
		return
	}
	next := r.successorAfter(p)
	moved := false
	for k, entries := range next.store {
		if r.successor(k) == p {
			p.storeAddAll(k, entries)
			delete(next.store, k)
			moved = true
		}
	}
	if moved {
		next.rebuildFlat()
	}
}

// updateFingersOnJoin gives the new peer its finger table and redirects
// the fingers it now terminates. A finger q.fingers[i] must point at p
// exactly when q.id + 2^i lies in (pred.id, p.id] — i.e. q lies in that
// interval shifted back by 2^i — so for each level only one short arc
// of peers is rewritten.
func (r *Ring) updateFingersOnJoin(p *Peer) {
	p.fingers = make([]*Peer, 64)
	if len(r.peers) == 1 {
		for i := range p.fingers {
			p.fingers[i] = p
		}
		return
	}
	for i := 0; i < 64; i++ {
		p.fingers[i] = r.successor(p.id + 1<<uint(i))
	}
	pred := r.predecessorOf(p)
	for i := 0; i < 64; i++ {
		step := ID(1) << uint(i)
		r.forEachInArc(pred.id-step, p.id-step, func(q *Peer) {
			q.fingers[i] = p
		})
	}
}

// updateFingersOnLeave redirects fingers that pointed at the departed
// peer p to its successor. Exactly the peers whose finger targets lay
// in (pred.id, p.id] pointed at p; the == p check guards the arc
// endpoints.
func (r *Ring) updateFingersOnLeave(p, pred, succ *Peer) {
	if pred == nil || pred == p {
		return
	}
	for i := 0; i < 64; i++ {
		step := ID(1) << uint(i)
		r.forEachInArc(pred.id-step, p.id-step, func(q *Peer) {
			if q.fingers[i] == p {
				q.fingers[i] = succ
			}
		})
	}
}

// forEachInArc calls fn for every peer whose id lies in the half-open
// circle interval (a, b].
func (r *Ring) forEachInArc(a, b ID, fn func(*Peer)) {
	if len(r.peers) == 0 {
		return
	}
	if a == b {
		for _, p := range r.peers {
			fn(p)
		}
		return
	}
	i := r.search(a + 1) // first peer with id > a (a+1 wraps to 0 at the origin)
	if i == len(r.peers) {
		i = 0
	}
	for cnt := 0; cnt < len(r.peers); cnt++ {
		p := r.peers[i]
		if !inHalfOpenInterval(a, b, p.id) {
			return
		}
		fn(p)
		i++
		if i == len(r.peers) {
			i = 0
		}
	}
}

// NumPeers returns the ring size.
func (r *Ring) NumPeers() int { return len(r.peers) }

// Peers returns all peers in identifier order. The caller must not
// modify the slice.
func (r *Ring) Peers() []*Peer { return r.peers }

// PeerFor returns the peer running on the given overlay node.
func (r *Ring) PeerFor(n topology.NodeID) (*Peer, bool) {
	p, ok := r.byNode[n]
	return p, ok
}

// search returns the index of the first peer with id >= target.
func (r *Ring) search(target ID) int {
	return sort.Search(len(r.peers), func(i int) bool { return r.peers[i].id >= target })
}

// successor returns the peer that owns key k: the first peer at or after
// k on the circle (wrapping). Panics on an empty ring.
func (r *Ring) successor(k ID) *Peer {
	if len(r.peers) == 0 {
		panic("dht: successor on empty ring")
	}
	i := r.search(k)
	if i == len(r.peers) {
		i = 0
	}
	return r.peers[i]
}

// successorAfter returns the peer immediately following p on the circle
// in O(1) via the maintained slice position.
func (r *Ring) successorAfter(p *Peer) *Peer {
	i := p.idx + 1
	if i >= len(r.peers) {
		i = 0
	}
	return r.peers[i]
}

// predecessorOf returns the peer immediately preceding p on the circle
// in O(1) via the maintained slice position.
func (r *Ring) predecessorOf(p *Peer) *Peer {
	i := p.idx - 1
	if i < 0 {
		i = len(r.peers) - 1
	}
	return r.peers[i]
}

// rebuildFingers recomputes every peer's finger table against the
// current membership (the fully stabilized state Chord converges to).
// Joins and leaves maintain fingers incrementally; this full rebuild is
// the reference the incremental path is tested against.
func (r *Ring) rebuildFingers() {
	for _, p := range r.peers {
		if p.fingers == nil {
			p.fingers = make([]*Peer, 64)
		}
		for i := 0; i < 64; i++ {
			p.fingers[i] = r.successor(p.id + 1<<uint(i))
		}
	}
}

// inOpenInterval reports whether x lies in the open circle interval
// (a, b), handling wrap-around; the interval excludes both endpoints.
// If a == b the interval is the whole circle minus the endpoint.
func inOpenInterval(a, b, x ID) bool {
	if a == b {
		return x != a
	}
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// inHalfOpenInterval reports whether x lies in (a, b] on the circle.
func inHalfOpenInterval(a, b, x ID) bool {
	if a == b {
		return true // single-peer circle owns everything
	}
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// Lookup routes from the given start node to the owner of key k, counting
// forwarding hops (Chord's iterative find_successor). It returns the
// owning peer and the hop count. Under an installed fault oracle every
// hop is an RPC retried with capped backoff; a hop whose retry budget
// is exhausted degrades to the next-best finger, and the lookup fails
// only when no candidate answers at all.
func (r *Ring) Lookup(start topology.NodeID, k ID) (*Peer, int, error) {
	var sp trace.Span
	if r.tracer.Enabled() {
		sp = r.tracer.Begin("dht", "lookup",
			trace.Str("key", fmt.Sprintf("%#x", uint64(k))), trace.Int("start", int(start)))
	}
	cur, ok := r.byNode[start]
	if !ok {
		sp.End(trace.Str("outcome", "bad_start"))
		return nil, 0, fmt.Errorf("dht: lookup start node %d not in ring", start)
	}
	if len(r.peers) == 1 {
		sp.End(trace.Str("outcome", "owner"), trace.Int("hops", 0))
		return cur, 0, nil
	}
	hops := 0
	for limit := 2 * len(r.peers); limit > 0; limit-- {
		succ := r.successorAfter(cur)
		if inHalfOpenInterval(cur.id, succ.id, k) {
			if !r.rpc(cur, succ) {
				sp.End(trace.Str("outcome", "owner_unreachable"), trace.Int("hops", hops))
				return nil, hops, fmt.Errorf("dht: lookup for %#x: owner unreachable from node %d", uint64(k), cur.node)
			}
			if sp.Active() {
				sp.Emit("hop", trace.Int("from", int(cur.node)), trace.Int("to", int(succ.node)))
				sp.End(trace.Str("outcome", "owner"), trace.Int("hops", hops+1))
			}
			return succ, hops + 1, nil
		}
		next := r.nextHop(cur, k, succ)
		if next == nil {
			sp.End(trace.Str("outcome", "no_route"), trace.Int("hops", hops))
			return nil, hops, fmt.Errorf("dht: lookup for %#x: no reachable hop from node %d", uint64(k), cur.node)
		}
		if sp.Active() {
			sp.Emit("hop", trace.Int("from", int(cur.node)), trace.Int("to", int(next.node)))
		}
		cur = next
		hops++
	}
	sp.End(trace.Str("outcome", "diverged"), trace.Int("hops", hops))
	return nil, hops, fmt.Errorf("dht: lookup for %#x did not converge", uint64(k))
}

// Owner returns the peer owning key k without routing (oracle access for
// tests and local operations).
func (r *Ring) Owner(k ID) *Peer {
	return r.successor(k)
}
