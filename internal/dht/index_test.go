package dht

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// checkFingerInvariant asserts every peer's finger table equals the
// fully stabilized state: fingers[i] owns id + 2^i.
func checkFingerInvariant(t *testing.T, r *Ring, when string) {
	t.Helper()
	for _, p := range r.peers {
		for i := 0; i < 64; i++ {
			want := r.successor(p.id + 1<<uint(i))
			if p.fingers[i] != want {
				t.Fatalf("%s: peer %d finger[%d] = peer %d, want %d",
					when, p.node, i, p.fingers[i].node, want.node)
			}
		}
	}
}

// checkIdxInvariant asserts the cached slice positions match reality.
func checkIdxInvariant(t *testing.T, r *Ring, when string) {
	t.Helper()
	for i, p := range r.peers {
		if p.idx != i {
			t.Fatalf("%s: peer %d cached idx %d, want %d", when, p.node, p.idx, i)
		}
	}
}

// TestIncrementalFingersMatchFullStabilization drives a random join/
// leave sequence and checks after every membership change that the
// incrementally maintained finger tables and slice positions equal what
// a full rebuild would produce.
func TestIncrementalFingersMatchFullStabilization(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := NewRing()
	present := map[topology.NodeID]bool{}
	next := topology.NodeID(0)
	for step := 0; step < 200; step++ {
		if len(present) == 0 || rng.Intn(3) != 0 {
			if _, err := r.AddPeer(next); err != nil {
				t.Fatalf("step %d AddPeer(%d): %v", step, next, err)
			}
			present[next] = true
			next++
		} else {
			var ids []topology.NodeID
			for id := range present {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			victim := ids[rng.Intn(len(ids))]
			if err := r.RemovePeer(victim); err != nil {
				t.Fatalf("step %d RemovePeer(%d): %v", step, victim, err)
			}
			delete(present, victim)
		}
		checkIdxInvariant(t, r, "after change")
		if len(r.peers) > 0 {
			checkFingerInvariant(t, r, "after change")
		}
	}
}

// flatMatchesStore asserts a peer's flat mirror holds exactly the
// entries of its keyed store.
func flatMatchesStore(t *testing.T, p *Peer, when string) {
	t.Helper()
	var fromStore, fromFlat []Entry
	for _, entries := range p.store {
		fromStore = append(fromStore, entries...)
	}
	fromFlat = append(fromFlat, p.flat...)
	key := func(e Entry) uint64 { return uint64(e.Key) ^ uint64(e.Node)<<1 }
	sort.Slice(fromStore, func(i, j int) bool { return key(fromStore[i]) < key(fromStore[j]) })
	sort.Slice(fromFlat, func(i, j int) bool { return key(fromFlat[i]) < key(fromFlat[j]) })
	if len(fromStore) != len(fromFlat) {
		t.Fatalf("%s: peer %d flat has %d entries, store has %d", when, p.node, len(fromFlat), len(fromStore))
	}
	for i := range fromStore {
		if fromStore[i].Key != fromFlat[i].Key || fromStore[i].Node != fromFlat[i].Node {
			t.Fatalf("%s: peer %d flat/store mismatch at %d", when, p.node, i)
		}
	}
}

// TestFlatStoreMirrorUnderChurn interleaves publishes, republish moves,
// unpublishes, and peer joins/leaves, checking the flat mirrors stay
// consistent with the keyed stores throughout.
func TestFlatStoreMirrorUnderChurn(t *testing.T) {
	env := newTestEnv(t, 24, 5)
	rng := rand.New(rand.NewSource(6))
	nextPeer := topology.NodeID(24)
	for step := 0; step < 150; step++ {
		switch rng.Intn(5) {
		case 0: // republish: move a node's coordinate
			id := topology.NodeID(rng.Intn(24))
			p := env.space.NewPoint(
				vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200},
				[]float64{rng.Float64()},
			)
			if _, err := env.catalog.Publish(id, p); err != nil {
				t.Fatal(err)
			}
		case 1: // unpublish, then republish at the old point
			id := topology.NodeID(rng.Intn(24))
			if e, ok := env.catalog.PublishedEntry(id); ok {
				env.catalog.Unpublish(id)
				if _, err := env.catalog.Publish(id, e.Point); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // join a fresh peer (entries migrate)
			if _, err := env.ring.AddPeer(nextPeer); err != nil {
				t.Fatal(err)
			}
			nextPeer++
		case 3: // leave, if we have spares (entries transfer)
			if env.ring.NumPeers() > 24 {
				victim := env.ring.peers[rng.Intn(env.ring.NumPeers())].node
				if err := env.ring.RemovePeer(victim); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, p := range env.ring.peers {
			flatMatchesStore(t, p, "after churn step")
		}
	}
	// Every published entry must still be reachable by a walk.
	total := 0
	for _, p := range env.ring.peers {
		total += len(p.flat)
	}
	if total != env.catalog.NumPublished() {
		t.Fatalf("stores hold %d entries, %d published", total, env.catalog.NumPublished())
	}
}

// bruteExactNearest is the scan ExactNearest replaced, kept as the
// reference for the identity check.
func bruteExactNearest(c *Catalog, target costspace.Point, n int) []Entry {
	all := make([]Entry, 0, len(c.published))
	for _, e := range c.published {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		di := c.space.Distance(target, all[i].Point)
		dj := c.space.Distance(target, all[j].Point)
		if di != dj {
			return di < dj
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

func bruteExactWithin(c *Catalog, target costspace.Point, r float64) []Entry {
	var out []Entry
	for _, e := range c.published {
		if c.space.Distance(target, e.Point) <= r {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := c.space.Distance(target, out[i].Point)
		dj := c.space.Distance(target, out[j].Point)
		if di != dj {
			return di < dj
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func entriesEqual(t *testing.T, what string, got, want []Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].Node != want[i].Node || got[i].Key != want[i].Key {
			t.Fatalf("%s: entry %d = node %d key %#x, want node %d key %#x",
				what, i, got[i].Node, uint64(got[i].Key), want[i].Node, uint64(want[i].Key))
		}
	}
}

// TestExactQueriesMatchBruteForceUnderChurn checks that the catalog's
// index-backed exact queries stay identical to full scans across
// version churn: republish moves (which patch the index), unpublishes
// and fresh publishes (which invalidate it).
func TestExactQueriesMatchBruteForceUnderChurn(t *testing.T) {
	env := newTestEnv(t, 32, 8)
	rng := rand.New(rand.NewSource(9))
	c := env.catalog
	for step := 0; step < 120; step++ {
		switch rng.Intn(4) {
		case 0, 1: // republish move — the patch path
			id := topology.NodeID(rng.Intn(32))
			p := env.space.NewPoint(
				vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200},
				[]float64{rng.Float64()},
			)
			if _, err := c.Publish(id, p); err != nil {
				t.Fatal(err)
			}
		case 2: // unpublish — node-set change, full invalidation
			c.Unpublish(topology.NodeID(rng.Intn(32)))
		case 3: // publish back anything missing
			for i := 0; i < 32; i++ {
				id := topology.NodeID(i)
				if _, ok := c.PublishedEntry(id); !ok {
					if _, err := c.Publish(id, env.points[id]); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
		target := env.space.IdealPoint(vivaldi.Coord{rng.Float64() * 220, rng.Float64() * 220})
		n := 1 + rng.Intn(6)
		entriesEqual(t, "ExactNearest", c.ExactNearest(target, n), bruteExactNearest(c, target, n))
		r := rng.Float64() * 120
		entriesEqual(t, "ExactWithinRadius", c.ExactWithinRadius(target, r), bruteExactWithin(c, target, r))
	}
}

// TestNearestNodesMatchesCollectAndSort checks the bounded-selection
// ranking against the algorithm it replaced: collect the full
// oversample, sort every entry by (distance, node), truncate to n. Walk
// statistics must match too, since both paths stop at the same
// oversample threshold.
func TestNearestNodesMatchesCollectAndSort(t *testing.T) {
	env := newTestEnv(t, 48, 12)
	rng := rand.New(rand.NewSource(13))
	c := env.catalog
	buf := make([]Entry, 0, 16)
	for trial := 0; trial < 40; trial++ {
		target := env.space.IdealPoint(vivaldi.Coord{rng.Float64() * 220, rng.Float64() * 220})
		start := topology.NodeID(rng.Intn(48))
		n := 1 + rng.Intn(10)
		scan := 1 + rng.Intn(20)

		want := n * 4
		if want < 16 {
			want = 16
		}
		ref, err := c.collect(start, target, scan, nil, func(collected []Entry) bool {
			return len(collected) >= want
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(ref.Entries, func(i, j int) bool {
			di := c.space.Distance(target, ref.Entries[i].Point)
			dj := c.space.Distance(target, ref.Entries[j].Point)
			if di != dj {
				return di < dj
			}
			return ref.Entries[i].Node < ref.Entries[j].Node
		})
		if len(ref.Entries) > n {
			ref.Entries = ref.Entries[:n]
		}

		got, err := c.NearestNodesAppend(start, target, n, scan, buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.LookupHops != ref.LookupHops || got.PeersWalked != ref.PeersWalked {
			t.Fatalf("trial %d: walk stats (%d,%d), want (%d,%d)", trial,
				got.LookupHops, got.PeersWalked, ref.LookupHops, ref.PeersWalked)
		}
		entriesEqual(t, "NearestNodesAppend", got.Entries, ref.Entries)
		buf = got.Entries[:0]
	}
}

// TestConcurrentCatalogQueries exercises the catalog's documented
// concurrency contract under the race detector: many goroutines run
// NearestNodesAppend, WithinRadius, and the exact-index queries (racing
// its first lazy build) against a static catalog, and every result must
// equal the sequential answer. Publishes must not run concurrently with
// queries — that side of the contract is unchanged.
func TestConcurrentCatalogQueries(t *testing.T) {
	env := newTestEnv(t, 40, 15)
	c := env.catalog
	rng := rand.New(rand.NewSource(16))
	type q struct {
		target costspace.Point
		start  topology.NodeID
		n      int
		radius float64
	}
	qs := make([]q, 32)
	for i := range qs {
		qs[i] = q{
			target: env.space.IdealPoint(vivaldi.Coord{rng.Float64() * 220, rng.Float64() * 220}),
			start:  topology.NodeID(rng.Intn(40)),
			n:      1 + rng.Intn(8),
			radius: rng.Float64() * 120,
		}
	}
	wantNear := make([][]Entry, len(qs))
	wantExact := make([][]Entry, len(qs))
	for i, qq := range qs {
		res, err := c.NearestNodes(qq.start, qq.target, qq.n, 16)
		if err != nil {
			t.Fatal(err)
		}
		wantNear[i] = res.Entries
		wantExact[i] = bruteExactNearest(c, qq.target, qq.n)
	}
	// Drop the exact index so goroutines race its lazy rebuild.
	c.InvalidateExactIndex()

	const goroutines = 12
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			var buf []Entry
			for i, qq := range qs {
				res, err := c.NearestNodesAppend(qq.start, qq.target, qq.n, 16, buf[:0])
				if err != nil {
					t.Error(err)
					return
				}
				for j := range res.Entries {
					if res.Entries[j].Node != wantNear[i][j].Node {
						t.Errorf("query %d: concurrent NearestNodes diverged", i)
						return
					}
				}
				buf = res.Entries
				exact := c.ExactNearest(qq.target, qq.n)
				for j := range exact {
					if exact[j].Node != wantExact[i][j].Node {
						t.Errorf("query %d: concurrent ExactNearest diverged", i)
						return
					}
				}
				if _, err := c.WithinRadius(qq.start, qq.target, qq.radius, 16); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
