// DHT fault tolerance: the ring's behavior when the overlay injects
// loss and nodes crash without goodbye. Lookups treat every hop as an
// RPC that a drop oracle may fail and retry it with capped exponential
// backoff; a crashed peer leaves the ring without migrating its stored
// entries (they died with the host — unlike a graceful RemovePeer) and
// the fingers that routed through it repair to its successor, the
// state Chord stabilization converges to once the failure is detected.
// Catalog.RepairAfterCrash restores catalog integrity afterwards:
// dead publishers retire, surviving publishers whose entries were
// stored at a crashed peer republish onto the new owners.
package dht

import (
	"fmt"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// RingFaults configures fault-injected RPC behavior for ring lookups.
// Drop is the per-attempt oracle — typically wired from the overlay
// fault injector's RPCOracle so DHT loss shares the scripted fault
// plan (its own seeded stream keeps the draw sequences independent).
type RingFaults struct {
	// Drop reports whether one RPC attempt from -> to is lost. Nil
	// disables fault injection entirely.
	Drop func(from, to topology.NodeID) bool
	// MaxRetries bounds attempts beyond the first per RPC (default 3).
	MaxRetries int
	// BackoffBase is the simulated wait before the first retry
	// (default 50ms); it doubles per retry up to BackoffCap (default
	// 400ms). The ring is synchronous under the virtual clock, so the
	// backoff is accounted in FaultStats rather than slept — it is the
	// latency a real deployment would pay, and what experiments report.
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

// RingFaultStats counts RPC outcomes since the last reset. Only
// populated while a drop oracle is installed.
type RingFaultStats struct {
	// RPCs counts hop RPCs issued; Retries re-attempts after a drop;
	// Failed RPCs that exhausted their retry budget (the lookup then
	// degrades to another finger or fails).
	RPCs    int
	Retries int
	Failed  int
	// Backoff is the simulated wait accumulated across all retries.
	Backoff time.Duration
}

// InstallFaults arms fault-injected RPC behavior on the ring,
// replacing any previous configuration and resetting the stats.
// Defaults fill in for unset retry/backoff fields.
func (r *Ring) InstallFaults(f RingFaults) {
	if f.MaxRetries <= 0 {
		f.MaxRetries = 3
	}
	if f.BackoffBase <= 0 {
		f.BackoffBase = 50 * time.Millisecond
	}
	if f.BackoffCap <= 0 {
		f.BackoffCap = 400 * time.Millisecond
	}
	r.faults = f
	r.fstats = RingFaultStats{}
}

// FaultStats returns the accumulated RPC fault counters.
func (r *Ring) FaultStats() RingFaultStats { return r.fstats }

// ResetFaultStats zeroes the RPC fault counters.
func (r *Ring) ResetFaultStats() { r.fstats = RingFaultStats{} }

// rpc performs one hop RPC from -> to under the installed drop oracle,
// retrying with capped exponential backoff. Reports whether the RPC
// eventually got through. Without an oracle every RPC succeeds.
func (r *Ring) rpc(from, to *Peer) bool {
	if r.faults.Drop == nil || from == to {
		return true
	}
	r.fstats.RPCs++
	backoff := r.faults.BackoffBase
	var waited time.Duration
	for attempt := 0; ; attempt++ {
		if !r.faults.Drop(from.node, to.node) {
			if attempt > 0 && r.tracer.Enabled() {
				r.tracer.Emit("dht", "rpc_retried",
					trace.Int("from", int(from.node)), trace.Int("to", int(to.node)),
					trace.Int("retries", attempt), trace.Dur("backoff_ms", waited))
			}
			return true
		}
		if attempt >= r.faults.MaxRetries {
			r.fstats.Failed++
			if r.tracer.Enabled() {
				r.tracer.Emit("dht", "rpc_failed",
					trace.Int("from", int(from.node)), trace.Int("to", int(to.node)),
					trace.Int("attempts", attempt+1), trace.Dur("backoff_ms", waited))
			}
			return false
		}
		r.fstats.Retries++
		r.fstats.Backoff += backoff
		waited += backoff
		backoff *= 2
		if backoff > r.faults.BackoffCap {
			backoff = r.faults.BackoffCap
		}
	}
}

// nextHop picks the best reachable forwarding target from cur toward
// k: preceding fingers highest-first (Chord's closest-preceding-finger
// order), degrading to lower fingers when an RPC exhausts its retry
// budget, and finally the immediate successor. Adjacent fingers often
// share a target, so a peer that just failed is not re-dialed back to
// back. Returns nil when nothing answers. Without a drop oracle the
// first qualifying finger always wins — the classic fault-free route.
func (r *Ring) nextHop(cur *Peer, k ID, succ *Peer) *Peer {
	var lastFailed *Peer
	for i := len(cur.fingers) - 1; i >= 0; i-- {
		f := cur.fingers[i]
		if f == nil || f == cur || f == lastFailed || !inOpenInterval(cur.id, k, f.id) {
			continue
		}
		if r.rpc(cur, f) {
			return f
		}
		lastFailed = f
	}
	if r.rpc(cur, succ) {
		return succ
	}
	return nil
}

// CrashPeer removes an overlay node from the ring as an unannounced
// crash. Unlike the graceful RemovePeer, the peer's stored catalog
// entries are NOT migrated — they died with the host and stay lost
// until their publishers republish (Catalog.RepairAfterCrash does this
// for surviving publishers). Fingers that pointed at the crashed peer
// repair to its successor. Returns how many stored entries were lost.
func (r *Ring) CrashPeer(n topology.NodeID) (int, error) {
	p, ok := r.byNode[n]
	if !ok {
		return 0, fmt.Errorf("dht: node %d not in ring", n)
	}
	var pred *Peer
	if len(r.peers) > 1 {
		pred = r.predecessorOf(p)
	}
	i := p.idx
	r.peers = append(r.peers[:i], r.peers[i+1:]...)
	delete(r.byNode, n)
	r.reindexFrom(i)
	lost := len(p.flat)
	if len(r.peers) > 0 {
		r.updateFingersOnLeave(p, pred, r.successor(p.id))
	}
	// Clear the dead store so stale references (the catalog's
	// storing-peer cache) cannot find the lost copies.
	p.store = make(map[ID][]Entry)
	p.flat = nil
	return lost, nil
}

// CrashRepairReport summarizes one Catalog.RepairAfterCrash round.
type CrashRepairReport struct {
	// CrashedPeers counts ring members removed; EntriesLost the stored
	// entries that died with them (surviving publishers' copies — dead
	// publishers retire first and are counted in Unpublished instead).
	CrashedPeers int
	EntriesLost  int
	// Unpublished counts dead nodes' own coordinates retired from the
	// catalog; Republished surviving publishers re-stored on the new
	// owners of their keys.
	Unpublished int
	Republished int
}

// RepairAfterCrash restores catalog integrity after unannounced node
// crashes: the dead nodes' published coordinates retire (mapping
// queries must stop returning them as placement targets), their ring
// peers crash out without entry migration, fingers through them
// repair, and every surviving publisher whose entry was stored at a
// crashed peer republishes onto the key's new owner. Deterministic:
// dead nodes and republishes process in node-id order. Nodes already
// absent from the ring are skipped, so repeated repair of the same
// dead set is idempotent.
func (c *Catalog) RepairAfterCrash(dead []topology.NodeID) CrashRepairReport {
	var rep CrashRepairReport
	seen := make(map[topology.NodeID]bool, len(dead))
	ds := make([]topology.NodeID, 0, len(dead))
	for _, n := range dead {
		if !seen[n] {
			seen[n] = true
			ds = append(ds, n)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })

	// Retire dead publishers first, while the ring is still intact
	// enough for the O(1) storing-peer removal to route.
	for _, n := range ds {
		if _, ok := c.published[n]; ok {
			c.Unpublish(n)
			rep.Unpublished++
		}
	}
	crashed := make(map[*Peer]bool, len(ds))
	for _, n := range ds {
		p, ok := c.ring.PeerFor(n)
		if !ok {
			continue
		}
		lost, err := c.ring.CrashPeer(n)
		if err != nil {
			continue
		}
		crashed[p] = true
		rep.CrashedPeers++
		rep.EntriesLost += lost
	}
	if len(crashed) == 0 || c.ring.NumPeers() == 0 {
		return rep
	}

	// Surviving publishers whose stored copy died republish onto the
	// new owner. Join/leave migrations keep every stored entry at its
	// key's current owner, so presence there is the ground truth — the
	// storing-peer cache can go stale across churn and is refreshed
	// here rather than trusted. The published set does not change, so
	// the exact-query index stays valid and the version does not move.
	nodes := make([]topology.NodeID, 0, len(c.published))
	for n := range c.published {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		e := c.published[n]
		owner := c.ring.Owner(e.Key)
		if !owner.storeHas(e.Key, e.Node) {
			// Defensive: churn may have stranded a live copy off-owner;
			// remove it before re-storing.
			c.removeStored(e)
			owner.storeAdd(e)
			rep.Republished++
		}
		c.storedAt[n] = owner
	}
	return rep
}

// Rejoin re-adds a recovered node to the ring and publishes its
// coordinate — the inverse of RepairAfterCrash for a node that came
// back. No-op if the node is already a ring member.
func (c *Catalog) Rejoin(node topology.NodeID, p costspace.Point) error {
	if _, ok := c.ring.PeerFor(node); ok {
		return nil
	}
	if _, err := c.ring.AddPeer(node); err != nil {
		return err
	}
	_, err := c.Publish(node, p)
	return err
}
