package dht

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// testEnv builds a ring of n peers with random published coordinates in a
// 2-vector + 1-scalar cost space.
type testEnv struct {
	ring    *Ring
	catalog *Catalog
	space   *costspace.Space
	points  map[topology.NodeID]costspace.Point
}

func newTestEnv(t *testing.T, n int, seed int64) *testEnv {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := costspace.NewLatencyLoadSpace(100)
	ring := NewRing()
	points := make(map[topology.NodeID]costspace.Point, n)
	var pts []costspace.Point
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if _, err := ring.AddPeer(id); err != nil {
			t.Fatalf("AddPeer(%d): %v", i, err)
		}
		p := space.NewPoint(
			vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200},
			[]float64{rng.Float64()},
		)
		points[id] = p
		pts = append(pts, p)
	}
	bounds, err := costspace.ComputeBounds(pts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	curve := hilbert.MustNew(uint(space.Dims()), 16)
	cat, err := NewCatalog(ring, space, curve, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range points {
		if _, err := cat.Publish(id, p); err != nil {
			t.Fatalf("Publish(%d): %v", id, err)
		}
	}
	return &testEnv{ring: ring, catalog: cat, space: space, points: points}
}

func TestPeerIDDeterministicAndSpread(t *testing.T) {
	if PeerID(5) != PeerID(5) {
		t.Fatal("PeerID not deterministic")
	}
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := PeerID(topology.NodeID(i))
		if seen[id] {
			t.Fatalf("PeerID collision at node %d", i)
		}
		seen[id] = true
	}
}

func TestAddPeerSortedAndDuplicate(t *testing.T) {
	r := NewRing()
	for i := 0; i < 50; i++ {
		if _, err := r.AddPeer(topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < r.NumPeers(); i++ {
		if r.peers[i-1].id >= r.peers[i].id {
			t.Fatal("peers not sorted by ID")
		}
	}
	if _, err := r.AddPeer(7); err == nil {
		t.Fatal("duplicate AddPeer accepted")
	}
}

func TestOwnerMatchesNaiveSuccessor(t *testing.T) {
	r := NewRing()
	for i := 0; i < 64; i++ {
		if _, err := r.AddPeer(topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	var ids []ID
	for _, p := range r.peers {
		ids = append(ids, p.id)
	}
	naive := func(k ID) ID {
		best := ids[0]
		found := false
		for _, id := range ids {
			if id >= k && (!found || id < best) {
				best = id
				found = true
			}
		}
		if !found {
			// wrap: smallest id
			best = ids[0]
			for _, id := range ids {
				if id < best {
					best = id
				}
			}
		}
		return best
	}
	f := func(k uint64) bool {
		return r.Owner(ID(k)).id == naive(ID(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupFindsOwnerFromAnyStart(t *testing.T) {
	r := NewRing()
	const n = 128
	for i := 0; i < n; i++ {
		if _, err := r.AddPeer(topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	maxHops := 0
	for trial := 0; trial < 400; trial++ {
		k := ID(rng.Uint64())
		start := topology.NodeID(rng.Intn(n))
		got, hops, err := r.Lookup(start, k)
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		if want := r.Owner(k); got != want {
			t.Fatalf("Lookup(%#x) = peer %d, want %d", uint64(k), got.node, want.node)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// Fully stabilized Chord: hops bounded by ~log2(n) + slack.
	bound := int(2*math.Log2(n)) + 4
	if maxHops > bound {
		t.Fatalf("max hops %d exceeds bound %d for n=%d", maxHops, bound, n)
	}
}

func TestLookupSinglePeer(t *testing.T) {
	r := NewRing()
	if _, err := r.AddPeer(0); err != nil {
		t.Fatal(err)
	}
	p, hops, err := r.Lookup(0, 12345)
	if err != nil || p.node != 0 || hops != 0 {
		t.Fatalf("single-peer lookup = %v, %d, %v", p, hops, err)
	}
}

func TestLookupUnknownStart(t *testing.T) {
	r := NewRing()
	if _, err := r.AddPeer(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Lookup(99, 1); err == nil {
		t.Fatal("lookup from unknown node accepted")
	}
}

func TestLookupHopsGrowLogarithmically(t *testing.T) {
	meanHops := func(n int) float64 {
		r := NewRing()
		for i := 0; i < n; i++ {
			if _, err := r.AddPeer(topology.NodeID(i)); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(n)))
		total := 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			_, hops, err := r.Lookup(topology.NodeID(rng.Intn(n)), ID(rng.Uint64()))
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		return float64(total) / trials
	}
	small := meanHops(32)
	large := meanHops(512)
	// 16x more peers should cost roughly +4 hops, certainly not 16x.
	if large > small*3+4 {
		t.Fatalf("hops not logarithmic: n=32 mean %v, n=512 mean %v", small, large)
	}
}

func TestRemovePeerMaintainsLookups(t *testing.T) {
	r := NewRing()
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := r.AddPeer(topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 32; i++ {
		victim := topology.NodeID(rng.Intn(n))
		if _, ok := r.PeerFor(victim); !ok {
			continue
		}
		if err := r.RemovePeer(victim); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		k := ID(rng.Uint64())
		var start topology.NodeID = -1
		for i := 0; i < n; i++ {
			if _, ok := r.PeerFor(topology.NodeID(i)); ok {
				start = topology.NodeID(i)
				break
			}
		}
		got, _, err := r.Lookup(start, k)
		if err != nil {
			t.Fatal(err)
		}
		if want := r.Owner(k); got != want {
			t.Fatalf("post-churn Lookup(%#x) = %d, want %d", uint64(k), got.node, want.node)
		}
	}
	if err := r.RemovePeer(9999); err == nil {
		t.Fatal("removing unknown peer accepted")
	}
}

func TestPublishUnpublish(t *testing.T) {
	env := newTestEnv(t, 32, 1)
	if got := env.catalog.NumPublished(); got != 32 {
		t.Fatalf("NumPublished = %d, want 32", got)
	}
	e, ok := env.catalog.PublishedEntry(5)
	if !ok {
		t.Fatal("entry for node 5 missing")
	}
	if env.space.Distance(e.Point, env.points[5]) != 0 {
		t.Fatal("published point differs")
	}
	env.catalog.Unpublish(5)
	if _, ok := env.catalog.PublishedEntry(5); ok {
		t.Fatal("entry survived Unpublish")
	}
	if got := env.catalog.NumPublished(); got != 31 {
		t.Fatalf("NumPublished = %d, want 31", got)
	}
	// Unpublish of a missing node is a no-op.
	env.catalog.Unpublish(5)
}

func TestRepublishReplacesEntry(t *testing.T) {
	env := newTestEnv(t, 16, 2)
	newPt := env.space.NewPoint(vivaldi.Coord{1, 1}, []float64{0})
	if _, err := env.catalog.Publish(3, newPt); err != nil {
		t.Fatal(err)
	}
	if got := env.catalog.NumPublished(); got != 16 {
		t.Fatalf("NumPublished = %d, want 16 after republish", got)
	}
	res := env.catalog.ExactNearest(newPt, 1)
	if len(res) != 1 || res[0].Node != 3 {
		t.Fatalf("ExactNearest after republish = %v", res)
	}
	// Exactly one stored copy must exist across all peers.
	count := 0
	for _, p := range env.ring.peers {
		for _, entries := range p.store {
			for _, e := range entries {
				if e.Node == 3 {
					count++
				}
			}
		}
	}
	if count != 1 {
		t.Fatalf("found %d stored copies for node 3, want 1", count)
	}
}

func TestWithinRadiusFullScanMatchesOracle(t *testing.T) {
	env := newTestEnv(t, 80, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		target := env.space.NewPoint(
			vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200}, []float64{0})
		r := 20 + rng.Float64()*60
		res, err := env.catalog.WithinRadius(0, target, r, env.ring.NumPeers())
		if err != nil {
			t.Fatal(err)
		}
		oracle := env.catalog.ExactWithinRadius(target, r)
		if len(res.Entries) != len(oracle) {
			t.Fatalf("WithinRadius found %d entries, oracle %d (r=%v)", len(res.Entries), len(oracle), r)
		}
		gotSet := map[topology.NodeID]bool{}
		for _, e := range res.Entries {
			gotSet[e.Node] = true
		}
		for _, e := range oracle {
			if !gotSet[e.Node] {
				t.Fatalf("oracle entry %d missing from WithinRadius", e.Node)
			}
		}
	}
}

func TestWithinRadiusSortedByDistance(t *testing.T) {
	env := newTestEnv(t, 60, 5)
	target := env.space.IdealPoint(vivaldi.Coord{100, 100})
	res, err := env.catalog.WithinRadius(0, target, 150, env.ring.NumPeers())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Entries); i++ {
		if env.space.Distance(target, res.Entries[i-1].Point) > env.space.Distance(target, res.Entries[i].Point) {
			t.Fatal("WithinRadius results not sorted by distance")
		}
	}
}

func TestWithinRadiusSmallScanIsSubset(t *testing.T) {
	env := newTestEnv(t, 100, 6)
	target := env.space.IdealPoint(vivaldi.Coord{50, 50})
	full, err := env.catalog.WithinRadius(0, target, 100, env.ring.NumPeers())
	if err != nil {
		t.Fatal(err)
	}
	small, err := env.catalog.WithinRadius(0, target, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if small.PeersWalked > 5 {
		t.Fatalf("walked %d peers with maxScan=5", small.PeersWalked)
	}
	if len(small.Entries) > len(full.Entries) {
		t.Fatal("pruned scan returned more than full scan")
	}
	fullSet := map[topology.NodeID]bool{}
	for _, e := range full.Entries {
		fullSet[e.Node] = true
	}
	for _, e := range small.Entries {
		if !fullSet[e.Node] {
			t.Fatalf("pruned result %d not in full result", e.Node)
		}
	}
}

func TestNearestNodesSmallRingExact(t *testing.T) {
	// With a small ring, the oversampling walk covers every entry, so the
	// DHT answer must equal the oracle exactly.
	env := newTestEnv(t, 12, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		target := env.space.IdealPoint(vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200})
		res, err := env.catalog.NearestNodes(0, target, 3, env.ring.NumPeers())
		if err != nil {
			t.Fatal(err)
		}
		oracle := env.catalog.ExactNearest(target, 3)
		if len(res.Entries) != len(oracle) {
			t.Fatalf("got %d entries, oracle %d", len(res.Entries), len(oracle))
		}
		for i := range oracle {
			if res.Entries[i].Node != oracle[i].Node {
				t.Fatalf("trial %d: entry %d = node %d, oracle %d", trial, i, res.Entries[i].Node, oracle[i].Node)
			}
		}
	}
}

func TestNearestNodesMappingErrorSmall(t *testing.T) {
	// On a larger ring the walk may stop early; the chosen node's distance
	// must still be close to the oracle's on average (Figure 3's "error
	// remains small" claim, quantified in experiment X3).
	env := newTestEnv(t, 300, 9)
	rng := rand.New(rand.NewSource(10))
	var ratioSum float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		target := env.space.IdealPoint(vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200})
		res, err := env.catalog.NearestNodes(topology.NodeID(rng.Intn(300)), target, 1, 40)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Entries) == 0 {
			t.Fatal("no entries returned")
		}
		oracle := env.catalog.ExactNearest(target, 1)
		do := env.space.Distance(target, oracle[0].Point)
		dg := env.space.Distance(target, res.Entries[0].Point)
		if do == 0 {
			ratioSum += 1
		} else {
			ratioSum += dg / do
		}
	}
	if mean := ratioSum / trials; mean > 2.5 {
		t.Fatalf("mean mapping distance ratio %v too large", mean)
	}
}

func TestNearestNodesValidation(t *testing.T) {
	env := newTestEnv(t, 8, 11)
	target := env.space.IdealPoint(vivaldi.Coord{0, 0})
	if _, err := env.catalog.NearestNodes(0, target, 0, 10); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := env.catalog.NearestNodes(0, costspace.Point{1}, 1, 10); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := env.catalog.WithinRadius(0, target, -1, 10); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestCatalogValidation(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	ring := NewRing()
	curve2 := hilbert.MustNew(2, 8) // wrong dims for 3-dim space
	bounds := costspace.Bounds{Min: costspace.Point{0, 0, 0}, Max: costspace.Point{1, 1, 1}}
	if _, err := NewCatalog(ring, space, curve2, bounds); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	curve3 := hilbert.MustNew(3, 8)
	badBounds := costspace.Bounds{Min: costspace.Point{0}, Max: costspace.Point{1}}
	if _, err := NewCatalog(ring, space, curve3, badBounds); err == nil {
		t.Fatal("bounds mismatch accepted")
	}
	cat, err := NewCatalog(ring, space, curve3, bounds)
	if err != nil {
		t.Fatal(err)
	}
	p := space.IdealPoint(vivaldi.Coord{0.5, 0.5})
	if _, err := cat.Publish(1, p); err == nil {
		t.Fatal("publish on empty ring accepted")
	}
	if _, err := cat.Publish(1, costspace.Point{1}); err == nil {
		t.Fatal("publish of wrong-dim point accepted")
	}
}

func TestKeyOfPreservesHilbertOrder(t *testing.T) {
	env := newTestEnv(t, 4, 12)
	// Keys for increasing scalar-only differences along the curve must be
	// valid ring IDs; spot-check ordering is preserved under the shift.
	a := env.catalog.KeyOf(env.space.IdealPoint(vivaldi.Coord{10, 10}))
	b := env.catalog.KeyOf(env.space.IdealPoint(vivaldi.Coord{10, 10}))
	if a != b {
		t.Fatal("KeyOf not deterministic")
	}
}

func TestCellCenterRoundtrip(t *testing.T) {
	env := newTestEnv(t, 4, 13)
	p := env.space.IdealPoint(vivaldi.Coord{42, 77})
	k := env.catalog.KeyOf(p)
	center, err := env.catalog.CellCenter(k)
	if err != nil {
		t.Fatal(err)
	}
	// The cell center must quantize back to the same key.
	if got := env.catalog.KeyOf(center); got != k {
		t.Fatalf("CellCenter does not roundtrip: %#x vs %#x", uint64(got), uint64(k))
	}
}

func TestChurnKeepsEntriesReachable(t *testing.T) {
	env := newTestEnv(t, 40, 14)
	rng := rand.New(rand.NewSource(15))
	// Remove 10 ring peers (their catalog entries survive on new owners).
	removed := map[topology.NodeID]bool{}
	for len(removed) < 10 {
		v := topology.NodeID(rng.Intn(40))
		if removed[v] {
			continue
		}
		if err := env.ring.RemovePeer(v); err != nil {
			t.Fatal(err)
		}
		removed[v] = true
	}
	var start topology.NodeID = -1
	for i := 0; i < 40; i++ {
		if _, ok := env.ring.PeerFor(topology.NodeID(i)); ok {
			start = topology.NodeID(i)
			break
		}
	}
	target := env.space.IdealPoint(vivaldi.Coord{100, 100})
	res, err := env.catalog.WithinRadius(start, target, 1e9, env.ring.NumPeers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 40 {
		t.Fatalf("found %d entries after churn, want all 40", len(res.Entries))
	}
}

func TestIntervalHelpers(t *testing.T) {
	cases := []struct {
		a, b, x  ID
		open, ho bool
	}{
		{10, 20, 15, true, true},
		{10, 20, 10, false, false},
		{10, 20, 20, false, true},
		{20, 10, 25, true, true}, // wrapped
		{20, 10, 5, true, true},  // wrapped
		{20, 10, 15, false, false},
		{7, 7, 7, false, true}, // degenerate: whole circle
		{7, 7, 9, true, true},
	}
	for i, tc := range cases {
		if got := inOpenInterval(tc.a, tc.b, tc.x); got != tc.open {
			t.Fatalf("case %d: inOpenInterval(%d,%d,%d) = %v, want %v", i, tc.a, tc.b, tc.x, got, tc.open)
		}
		if got := inHalfOpenInterval(tc.a, tc.b, tc.x); got != tc.ho {
			t.Fatalf("case %d: inHalfOpenInterval(%d,%d,%d) = %v, want %v", i, tc.a, tc.b, tc.x, got, tc.ho)
		}
	}
}

func TestExactNearestOrdering(t *testing.T) {
	env := newTestEnv(t, 30, 16)
	target := env.space.IdealPoint(vivaldi.Coord{0, 0})
	res := env.catalog.ExactNearest(target, 30)
	if !sort.SliceIsSorted(res, func(i, j int) bool {
		return env.space.Distance(target, res[i].Point) <= env.space.Distance(target, res[j].Point)
	}) {
		t.Fatal("ExactNearest not sorted by distance")
	}
}

func BenchmarkLookup512(b *testing.B) {
	r := NewRing()
	for i := 0; i < 512; i++ {
		if _, err := r.AddPeer(topology.NodeID(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Lookup(topology.NodeID(rng.Intn(512)), ID(rng.Uint64())); err != nil {
			b.Fatal(err)
		}
	}
}

// storedCopies counts live stored entries for a node across all peers.
func storedCopies(r *Ring, node topology.NodeID) int {
	count := 0
	for _, p := range r.peers {
		for _, entries := range p.store {
			for _, e := range entries {
				if e.Node == node {
					count++
				}
			}
		}
	}
	return count
}

// TestRepublishAfterChurnLeavesOneCopy drives the O(1)-republish
// bookkeeping through ring churn: joins and leaves migrate entries
// behind the catalog's back, and republishes must still remove exactly
// the stale copy.
func TestRepublishAfterChurnLeavesOneCopy(t *testing.T) {
	env := newTestEnv(t, 32, 21)
	rng := rand.New(rand.NewSource(22))
	next := topology.NodeID(100)
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0: // join (migrates entries off the successor)
			if _, err := env.ring.AddPeer(next); err != nil {
				t.Fatal(err)
			}
			next++
		case 1: // leave (migrates entries to the successor)
			peers := env.ring.Peers()
			if len(peers) > 8 {
				victim := peers[rng.Intn(len(peers))].Node()
				if err := env.ring.RemovePeer(victim); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // republish a random published node at a new coordinate
			n := topology.NodeID(rng.Intn(32))
			p := env.space.NewPoint(
				vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200},
				[]float64{rng.Float64()},
			)
			if _, err := env.catalog.Publish(n, p); err != nil {
				t.Fatal(err)
			}
		}
		// Invariant: exactly one stored copy per published node.
		for i := 0; i < 32; i++ {
			if got := storedCopies(env.ring, topology.NodeID(i)); got != 1 {
				t.Fatalf("round %d: node %d has %d stored copies, want 1", round, i, got)
			}
		}
	}
}

// TestRepublishUsesStoredPeerDirectly verifies the O(1) fast path: with
// no churn, the removal must succeed on the recorded storing peer (the
// catalog cache must stay in sync across repeated republishes).
func TestRepublishUsesStoredPeerDirectly(t *testing.T) {
	env := newTestEnv(t, 16, 23)
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 50; i++ {
		n := topology.NodeID(rng.Intn(16))
		p := env.space.NewPoint(
			vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200},
			[]float64{rng.Float64()},
		)
		if _, err := env.catalog.Publish(n, p); err != nil {
			t.Fatal(err)
		}
		e, _ := env.catalog.PublishedEntry(n)
		sp, ok := env.catalog.storedAt[n]
		if !ok {
			t.Fatalf("no storing peer recorded for node %d", n)
		}
		if sp != env.ring.Owner(e.Key) {
			t.Fatalf("storing peer %v is not the key owner", sp.Node())
		}
		if got := storedCopies(env.ring, n); got != 1 {
			t.Fatalf("node %d has %d stored copies, want 1", n, got)
		}
	}
}

// TestUnpublishAfterPeerLeaveRemovesCopy covers the stale-pointer path:
// the storing peer departs (entries migrate to its successor), then the
// node unpublishes.
func TestUnpublishAfterPeerLeaveRemovesCopy(t *testing.T) {
	env := newTestEnv(t, 16, 25)
	e, _ := env.catalog.PublishedEntry(7)
	holder := env.ring.Owner(e.Key)
	if err := env.ring.RemovePeer(holder.Node()); err != nil {
		t.Fatal(err)
	}
	env.catalog.Unpublish(7)
	if got := storedCopies(env.ring, 7); got != 0 {
		t.Fatalf("node 7 still has %d stored copies after Unpublish", got)
	}
	// The rest are intact and reachable.
	for i := 0; i < 16; i++ {
		if i == 7 || topology.NodeID(i) == holder.Node() {
			continue
		}
		if got := storedCopies(env.ring, topology.NodeID(i)); got != 1 {
			t.Fatalf("node %d has %d copies", i, got)
		}
	}
}
