package dht

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hourglass/sbon/internal/costindex"
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/topology"
)

// Entry is one published cost-space coordinate: overlay node `Node`
// currently sits at `Point`, stored under scaled Hilbert key `Key`.
type Entry struct {
	Key   ID
	Node  topology.NodeID
	Point costspace.Point
}

// Catalog maps cost-space coordinates to overlay nodes through the ring.
// Nodes publish their coordinate; queries find the nodes nearest to a
// target coordinate, or all nodes within a cost-space radius, by walking
// the ring arcs around the target's Hilbert key.
//
// Query methods are safe for concurrent use with each other (they are
// pure reads); publishes and ring membership changes must not run
// concurrently with queries.
type Catalog struct {
	ring   *Ring
	space  *costspace.Space
	curve  hilbert.Curve
	bounds costspace.Bounds

	published map[topology.NodeID]Entry
	// storedAt remembers which peer holds each node's entry, making the
	// republish removal O(1) instead of a scan over all peers. Ring
	// churn can migrate entries without the catalog seeing it, so
	// removal falls back to the key's current owner (where migrations
	// deposit entries) and finally a full scan.
	storedAt map[topology.NodeID]*Peer

	// version counts published-set mutations; the exact-query k-NN
	// index is stamped with it and lazily rebuilt (or patched, for
	// coordinate moves of an unchanged node set) when it falls behind —
	// the same invalidation discipline as the optimizer snapshot index.
	version uint64
	exact   atomic.Pointer[exactIndex]
}

// exactIndex is the lazily built spatial index behind ExactNearest /
// ExactWithinRadius: an exact k-NN tree over the published points plus
// the id→node mapping (ids are positions in the node-sorted published
// set, so (distance, id) ordering equals (distance, node) ordering).
type exactIndex struct {
	ix    *costindex.Index
	nodes []topology.NodeID
}

// NewCatalog builds a catalog over the ring for the given cost space.
// curve must span space.Dims() dimensions; bounds defines the coordinate
// region quantized onto the Hilbert grid.
func NewCatalog(ring *Ring, space *costspace.Space, curve hilbert.Curve, bounds costspace.Bounds) (*Catalog, error) {
	if int(curve.Dims()) != space.Dims() {
		return nil, fmt.Errorf("dht: curve spans %d dims, space has %d", curve.Dims(), space.Dims())
	}
	if len(bounds.Min) != space.Dims() || len(bounds.Max) != space.Dims() {
		return nil, fmt.Errorf("dht: bounds dimensionality %d/%d does not match space %d",
			len(bounds.Min), len(bounds.Max), space.Dims())
	}
	return &Catalog{
		ring:      ring,
		space:     space,
		curve:     curve,
		bounds:    bounds,
		published: make(map[topology.NodeID]Entry),
		storedAt:  make(map[topology.NodeID]*Peer),
	}, nil
}

// Ring returns the underlying ring.
func (c *Catalog) Ring() *Ring { return c.ring }

// Space returns the cost space the catalog indexes.
func (c *Catalog) Space() *costspace.Space { return c.space }

// cellsPool recycles quantization buffers: KeyOf runs per publish, per
// query, and per plan-cache key derivation, and must not allocate.
var cellsPool = sync.Pool{New: func() any {
	s := make([]uint32, 0, 8)
	return &s
}}

// KeyOf returns the scaled Hilbert key for a cost-space point. Hilbert
// keys occupy the top curve.KeyBits() bits of the 64-bit identifier
// circle so that Hilbert ordering is preserved under ring ordering.
func (c *Catalog) KeyOf(p costspace.Point) ID {
	cb := cellsPool.Get().(*[]uint32)
	cells := c.bounds.QuantizeInto(*cb, p, c.curve.Bits())
	k := c.curve.MustEncodeInPlace(cells)
	*cb = cells
	cellsPool.Put(cb)
	return ID(k << (64 - c.curve.KeyBits()))
}

// CellCenter returns the cost-space point at the center of the Hilbert
// cell for the given scaled key.
func (c *Catalog) CellCenter(k ID) (costspace.Point, error) {
	raw := uint64(k) >> (64 - c.curve.KeyBits())
	cells, err := c.curve.Decode(raw)
	if err != nil {
		return nil, err
	}
	return c.bounds.Dequantize(cells, c.curve.Bits()), nil
}

// Publish records the coordinate of node in the DHT, replacing any prior
// entry for the same node. It returns the entry's key.
func (c *Catalog) Publish(node topology.NodeID, p costspace.Point) (ID, error) {
	if len(p) != c.space.Dims() {
		return 0, fmt.Errorf("dht: publish %d-dim point in %d-dim space", len(p), c.space.Dims())
	}
	if c.ring.NumPeers() == 0 {
		return 0, fmt.Errorf("dht: publish on empty ring")
	}
	_, republish := c.published[node]
	if republish {
		c.removeStored(c.published[node])
	}
	e := Entry{Key: c.KeyOf(p), Node: node, Point: p.Clone()}
	owner := c.ring.Owner(e.Key)
	owner.storeAdd(e)
	c.published[node] = e
	c.storedAt[node] = owner
	c.version++
	c.patchExact(node, e.Point, republish)
	return e.Key, nil
}

// patchExact keeps an already-built exact index valid across a
// republish that moved one node's coordinate; any other mutation drops
// it for a lazy rebuild.
func (c *Catalog) patchExact(node topology.NodeID, p costspace.Point, republish bool) {
	ex := c.exact.Load()
	if ex == nil {
		return
	}
	if !republish || ex.ix.Version() != c.version-1 {
		c.exact.Store(nil)
		return
	}
	i := sort.Search(len(ex.nodes), func(j int) bool { return ex.nodes[j] >= node })
	if i >= len(ex.nodes) || ex.nodes[i] != node {
		c.exact.Store(nil)
		return
	}
	if nx, ok := ex.ix.WithPoint(int32(i), p, c.version); ok {
		c.exact.Store(&exactIndex{ix: nx, nodes: ex.nodes})
	} else {
		c.exact.Store(nil)
	}
}

// InvalidateExactIndex drops the exact-query index so the next exact
// query rebuilds it from scratch. Callers about to republish many (or
// all) coordinates should invalidate first: it spares the per-publish
// patch bookkeeping for an index that is doomed anyway.
func (c *Catalog) InvalidateExactIndex() {
	c.exact.Store(nil)
}

// Unpublish removes the node's catalog entry if present.
func (c *Catalog) Unpublish(node topology.NodeID) {
	if old, ok := c.published[node]; ok {
		c.removeStored(old)
		delete(c.published, node)
		delete(c.storedAt, node)
		c.version++
		c.exact.Store(nil)
	}
}

// removeStored deletes the stored copy of e from the peer holding it:
// the recorded storing peer in O(1), or — when ring churn migrated the
// entry behind the catalog's back — the key's current owner (join/leave
// migrations always deposit entries on the new owner). The full scan
// remains as a defensive last resort.
func (c *Catalog) removeStored(e Entry) {
	if p, ok := c.storedAt[e.Node]; ok && p.storeRemove(e.Key, e.Node) {
		return
	}
	if c.ring.NumPeers() > 0 && c.ring.Owner(e.Key).storeRemove(e.Key, e.Node) {
		return
	}
	for _, p := range c.ring.peers {
		if p.storeRemove(e.Key, e.Node) {
			return
		}
	}
}

// NumPublished returns the number of nodes with a published coordinate.
func (c *Catalog) NumPublished() int { return len(c.published) }

// Mutations returns how many times the catalog's published set changed
// (Publish or Unpublish) since construction. Queries never move it —
// the counter instruments guards asserting that pure read paths (e.g.
// re-optimization planning) perform zero republishes.
func (c *Catalog) Mutations() uint64 { return c.version }

// PublishedEntry returns the current entry for a node.
func (c *Catalog) PublishedEntry(node topology.NodeID) (Entry, bool) {
	e, ok := c.published[node]
	return e, ok
}

// QueryResult carries the outcome of a catalog query along with its DHT
// routing cost.
type QueryResult struct {
	Entries     []Entry
	LookupHops  int // hops for the initial key lookup
	PeersWalked int // ring peers visited while collecting entries
}

// rankedEntry pairs an entry with its precomputed distance to the query
// target, so ranking sorts on a key instead of re-deriving distances
// inside the comparator.
type rankedEntry struct {
	dist float64
	e    Entry
}

// nearCand is one candidate in the bounded nearest-n selection: the
// precomputed sort key plus a pointer to the stored entry, so selection
// shifts 24-byte keys instead of copying entries.
type nearCand struct {
	dist float64
	node topology.NodeID
	e    *Entry
}

// queryScratch holds the reusable buffers of one catalog query.
type queryScratch struct {
	entries []Entry
	ranked  []rankedEntry
	cands   []nearCand
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// rankByDistance sorts entries by (distance to target, node id),
// computing each distance once.
func (c *Catalog) rankByDistance(sc *queryScratch, target costspace.Point, entries []Entry) []rankedEntry {
	ranked := sc.ranked[:0]
	for _, e := range entries {
		ranked = append(ranked, rankedEntry{dist: c.space.Distance(target, e.Point), e: e})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].dist != ranked[j].dist {
			return ranked[i].dist < ranked[j].dist
		}
		return ranked[i].e.Node < ranked[j].e.Node
	})
	sc.ranked = ranked
	return ranked
}

// NearestNodes returns up to n published entries nearest to target in
// full cost-space distance. The search starts with a DHT lookup of the
// target's Hilbert key from startNode and then walks ring arcs outward in
// both directions, visiting at most maxScan peers, oversampling before
// ranking by true distance. This mirrors the paper's "look up the closest
// n nodes" primitive.
func (c *Catalog) NearestNodes(startNode topology.NodeID, target costspace.Point, n, maxScan int) (QueryResult, error) {
	return c.NearestNodesAppend(startNode, target, n, maxScan, nil)
}

// NearestNodesAppend is NearestNodes writing the result entries into
// dst's backing array (dst's length is ignored) — the allocation-free
// variant for mapping hot paths that reuse a candidate buffer.
//
// Ranking is a bounded insertion over precomputed (distance, node) keys
// — the n best of the oversample maintained in order as the walk visits
// entries — which selects exactly the prefix a full sort would, without
// materializing or sorting the oversample.
func (c *Catalog) NearestNodesAppend(startNode topology.NodeID, target costspace.Point, n, maxScan int, dst []Entry) (QueryResult, error) {
	if n < 1 {
		return QueryResult{}, fmt.Errorf("dht: NearestNodes n = %d, need >= 1", n)
	}
	want := n * 4
	if want < 16 {
		want = 16
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	top := sc.cands[:0]
	seen := 0
	hops, walked, err := c.walkArcs(startNode, target, maxScan, func(p *Peer) bool {
		for i := range p.flat {
			e := &p.flat[i]
			d := c.space.Distance(target, e.Point)
			if len(top) == n {
				worst := top[len(top)-1]
				if d > worst.dist || (d == worst.dist && e.Node >= worst.node) {
					continue
				}
			}
			j := len(top)
			if len(top) < n {
				top = append(top, nearCand{})
			} else {
				j--
			}
			for j > 0 && (top[j-1].dist > d || (top[j-1].dist == d && top[j-1].node > e.Node)) {
				top[j] = top[j-1]
				j--
			}
			top[j] = nearCand{dist: d, node: e.Node, e: e}
		}
		seen += len(p.flat)
		return seen >= want
	})
	sc.cands = top[:0]
	if err != nil {
		return QueryResult{}, err
	}
	out := dst[:0]
	for _, cand := range top {
		out = append(out, *cand.e)
	}
	return QueryResult{Entries: out, LookupHops: hops, PeersWalked: walked}, nil
}

// WithinRadius returns all published entries within cost-space distance r
// of target that the ring walk encounters, visiting at most maxScan
// peers. With maxScan >= ring size the result is exact; smaller values
// trade recall for lookup cost, which is precisely the pruning knob of
// the paper's §3.4.
func (c *Catalog) WithinRadius(startNode topology.NodeID, target costspace.Point, r float64, maxScan int) (QueryResult, error) {
	if r < 0 {
		return QueryResult{}, fmt.Errorf("dht: WithinRadius r = %v, need >= 0", r)
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	res, err := c.collect(startNode, target, maxScan, sc.entries[:0], func([]Entry) bool { return false })
	if err != nil {
		return QueryResult{}, err
	}
	sc.entries = res.Entries[:0]
	ranked := c.rankByDistance(sc, target, res.Entries)
	var within []Entry
	for _, re := range ranked {
		if re.dist > r {
			break // ranked ascending: nothing farther qualifies
		}
		within = append(within, re.e)
	}
	res.Entries = within
	return res, nil
}

// collect performs the key lookup and bidirectional ring walk, gathering
// entries into buf until `enough` reports true or maxScan peers were
// visited.
func (c *Catalog) collect(startNode topology.NodeID, target costspace.Point, maxScan int, buf []Entry, enough func([]Entry) bool) (QueryResult, error) {
	out := buf[:0]
	hops, walked, err := c.walkArcs(startNode, target, maxScan, func(p *Peer) bool {
		out = append(out, p.flat...)
		return enough(out)
	})
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Entries: out, LookupHops: hops, PeersWalked: walked}, nil
}

// walkArcs performs the key lookup and bidirectional ring walk around
// the target's Hilbert key, calling visit for each peer until visit
// reports it has enough or maxScan peers were visited. It returns the
// lookup hop count and the number of peers visited.
func (c *Catalog) walkArcs(startNode topology.NodeID, target costspace.Point, maxScan int, visit func(*Peer) bool) (lookupHops, walked int, err error) {
	if len(target) != c.space.Dims() {
		return 0, 0, fmt.Errorf("dht: query %d-dim point in %d-dim space", len(target), c.space.Dims())
	}
	if c.ring.NumPeers() == 0 {
		return 0, 0, fmt.Errorf("dht: query on empty ring")
	}
	if maxScan < 1 {
		maxScan = 1
	}
	key := c.KeyOf(target)
	owner, hops, err := c.ring.Lookup(startNode, key)
	if err != nil {
		return 0, 0, err
	}
	done := visit(owner)
	walked = 1
	fwd, back := owner, owner
	for walked < maxScan && walked < c.ring.NumPeers() && !done {
		fwd = c.ring.successorAfter(fwd)
		if fwd == back {
			break
		}
		done = visit(fwd)
		walked++
		if walked >= maxScan || walked >= c.ring.NumPeers() || done {
			break
		}
		back = c.ring.predecessorOf(back)
		if back == fwd {
			break
		}
		done = visit(back)
		walked++
	}
	return hops, walked, nil
}

// exactIdx returns the version-current exact index, rebuilding lazily
// after mutations.
func (c *Catalog) exactIdx() *exactIndex {
	ex := c.exact.Load()
	if ex != nil && ex.ix.Version() == c.version {
		return ex
	}
	nodes := make([]topology.NodeID, 0, len(c.published))
	for n := range c.published {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	pts := make([]costspace.Point, len(nodes))
	for i, n := range nodes {
		pts[i] = c.published[n].Point
	}
	ex = &exactIndex{ix: costindex.Build(c.space, pts, c.version), nodes: nodes}
	c.exact.Store(ex)
	return ex
}

// ExactNearest returns the n published entries nearest to target — the
// oracle against which the DHT walk's mapping error is measured (Figure
// 3 / experiment X3). It answers from the catalog's exact k-NN index
// rather than scanning every entry; results are identical to ranking a
// full scan by (distance, node).
func (c *Catalog) ExactNearest(target costspace.Point, n int) []Entry {
	ex := c.exactIdx()
	nbs := ex.ix.KNearest(target, n, nil, nil)
	out := make([]Entry, len(nbs))
	for i, nb := range nbs {
		out[i] = c.published[ex.nodes[nb.ID]]
	}
	return out
}

// ExactWithinRadius returns all published entries within r of target,
// nearest first, from the exact k-NN index.
func (c *Catalog) ExactWithinRadius(target costspace.Point, r float64) []Entry {
	ex := c.exactIdx()
	nbs := ex.ix.WithinRadius(target, r, nil, nil)
	if len(nbs) == 0 {
		return nil
	}
	out := make([]Entry, len(nbs))
	for i, nb := range nbs {
		out[i] = c.published[ex.nodes[nb.ID]]
	}
	return out
}
