package dht

import (
	"fmt"
	"sort"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/topology"
)

// Entry is one published cost-space coordinate: overlay node `Node`
// currently sits at `Point`, stored under scaled Hilbert key `Key`.
type Entry struct {
	Key   ID
	Node  topology.NodeID
	Point costspace.Point
}

// Catalog maps cost-space coordinates to overlay nodes through the ring.
// Nodes publish their coordinate; queries find the nodes nearest to a
// target coordinate, or all nodes within a cost-space radius, by walking
// the ring arcs around the target's Hilbert key.
type Catalog struct {
	ring   *Ring
	space  *costspace.Space
	curve  hilbert.Curve
	bounds costspace.Bounds

	published map[topology.NodeID]Entry
}

// NewCatalog builds a catalog over the ring for the given cost space.
// curve must span space.Dims() dimensions; bounds defines the coordinate
// region quantized onto the Hilbert grid.
func NewCatalog(ring *Ring, space *costspace.Space, curve hilbert.Curve, bounds costspace.Bounds) (*Catalog, error) {
	if int(curve.Dims()) != space.Dims() {
		return nil, fmt.Errorf("dht: curve spans %d dims, space has %d", curve.Dims(), space.Dims())
	}
	if len(bounds.Min) != space.Dims() || len(bounds.Max) != space.Dims() {
		return nil, fmt.Errorf("dht: bounds dimensionality %d/%d does not match space %d",
			len(bounds.Min), len(bounds.Max), space.Dims())
	}
	return &Catalog{
		ring:      ring,
		space:     space,
		curve:     curve,
		bounds:    bounds,
		published: make(map[topology.NodeID]Entry),
	}, nil
}

// Ring returns the underlying ring.
func (c *Catalog) Ring() *Ring { return c.ring }

// Space returns the cost space the catalog indexes.
func (c *Catalog) Space() *costspace.Space { return c.space }

// KeyOf returns the scaled Hilbert key for a cost-space point. Hilbert
// keys occupy the top curve.KeyBits() bits of the 64-bit identifier
// circle so that Hilbert ordering is preserved under ring ordering.
func (c *Catalog) KeyOf(p costspace.Point) ID {
	cells := c.bounds.Quantize(p, c.curve.Bits())
	k := c.curve.MustEncode(cells)
	return ID(k << (64 - c.curve.KeyBits()))
}

// CellCenter returns the cost-space point at the center of the Hilbert
// cell for the given scaled key.
func (c *Catalog) CellCenter(k ID) (costspace.Point, error) {
	raw := uint64(k) >> (64 - c.curve.KeyBits())
	cells, err := c.curve.Decode(raw)
	if err != nil {
		return nil, err
	}
	return c.bounds.Dequantize(cells, c.curve.Bits()), nil
}

// Publish records the coordinate of node in the DHT, replacing any prior
// entry for the same node. It returns the entry's key.
func (c *Catalog) Publish(node topology.NodeID, p costspace.Point) (ID, error) {
	if len(p) != c.space.Dims() {
		return 0, fmt.Errorf("dht: publish %d-dim point in %d-dim space", len(p), c.space.Dims())
	}
	if c.ring.NumPeers() == 0 {
		return 0, fmt.Errorf("dht: publish on empty ring")
	}
	if old, ok := c.published[node]; ok {
		c.removeStored(old)
	}
	e := Entry{Key: c.KeyOf(p), Node: node, Point: p.Clone()}
	owner := c.ring.Owner(e.Key)
	owner.store[e.Key] = append(owner.store[e.Key], e)
	c.published[node] = e
	return e.Key, nil
}

// Unpublish removes the node's catalog entry if present.
func (c *Catalog) Unpublish(node topology.NodeID) {
	if old, ok := c.published[node]; ok {
		c.removeStored(old)
		delete(c.published, node)
	}
}

// removeStored deletes the stored copy of e from whichever peer holds it.
// Entries may have moved between peers due to churn, so all peers' stores
// for the key are checked (the key pins the search to at most a couple of
// peers in practice).
func (c *Catalog) removeStored(e Entry) {
	for _, p := range c.ring.peers {
		entries, ok := p.store[e.Key]
		if !ok {
			continue
		}
		for i, se := range entries {
			if se.Node == e.Node {
				p.store[e.Key] = append(entries[:i], entries[i+1:]...)
				if len(p.store[e.Key]) == 0 {
					delete(p.store, e.Key)
				}
				return
			}
		}
	}
}

// NumPublished returns the number of nodes with a published coordinate.
func (c *Catalog) NumPublished() int { return len(c.published) }

// PublishedEntry returns the current entry for a node.
func (c *Catalog) PublishedEntry(node topology.NodeID) (Entry, bool) {
	e, ok := c.published[node]
	return e, ok
}

// QueryResult carries the outcome of a catalog query along with its DHT
// routing cost.
type QueryResult struct {
	Entries     []Entry
	LookupHops  int // hops for the initial key lookup
	PeersWalked int // ring peers visited while collecting entries
}

// NearestNodes returns up to n published entries nearest to target in
// full cost-space distance. The search starts with a DHT lookup of the
// target's Hilbert key from startNode and then walks ring arcs outward in
// both directions, visiting at most maxScan peers, oversampling before
// ranking by true distance. This mirrors the paper's "look up the closest
// n nodes" primitive.
func (c *Catalog) NearestNodes(startNode topology.NodeID, target costspace.Point, n, maxScan int) (QueryResult, error) {
	if n < 1 {
		return QueryResult{}, fmt.Errorf("dht: NearestNodes n = %d, need >= 1", n)
	}
	want := n * 4
	if want < 16 {
		want = 16
	}
	res, err := c.collect(startNode, target, maxScan, func(collected []Entry) bool {
		return len(collected) >= want
	})
	if err != nil {
		return QueryResult{}, err
	}
	sort.Slice(res.Entries, func(i, j int) bool {
		di := c.space.Distance(target, res.Entries[i].Point)
		dj := c.space.Distance(target, res.Entries[j].Point)
		if di != dj {
			return di < dj
		}
		return res.Entries[i].Node < res.Entries[j].Node
	})
	if len(res.Entries) > n {
		res.Entries = res.Entries[:n]
	}
	return res, nil
}

// WithinRadius returns all published entries within cost-space distance r
// of target that the ring walk encounters, visiting at most maxScan
// peers. With maxScan >= ring size the result is exact; smaller values
// trade recall for lookup cost, which is precisely the pruning knob of
// the paper's §3.4.
func (c *Catalog) WithinRadius(startNode topology.NodeID, target costspace.Point, r float64, maxScan int) (QueryResult, error) {
	if r < 0 {
		return QueryResult{}, fmt.Errorf("dht: WithinRadius r = %v, need >= 0", r)
	}
	res, err := c.collect(startNode, target, maxScan, func([]Entry) bool { return false })
	if err != nil {
		return QueryResult{}, err
	}
	var within []Entry
	for _, e := range res.Entries {
		if c.space.Distance(target, e.Point) <= r {
			within = append(within, e)
		}
	}
	sort.Slice(within, func(i, j int) bool {
		di := c.space.Distance(target, within[i].Point)
		dj := c.space.Distance(target, within[j].Point)
		if di != dj {
			return di < dj
		}
		return within[i].Node < within[j].Node
	})
	res.Entries = within
	return res, nil
}

// collect performs the key lookup and bidirectional ring walk, gathering
// entries until `enough` reports true or maxScan peers were visited.
func (c *Catalog) collect(startNode topology.NodeID, target costspace.Point, maxScan int, enough func([]Entry) bool) (QueryResult, error) {
	if len(target) != c.space.Dims() {
		return QueryResult{}, fmt.Errorf("dht: query %d-dim point in %d-dim space", len(target), c.space.Dims())
	}
	if c.ring.NumPeers() == 0 {
		return QueryResult{}, fmt.Errorf("dht: query on empty ring")
	}
	if maxScan < 1 {
		maxScan = 1
	}
	key := c.KeyOf(target)
	owner, hops, err := c.ring.Lookup(startNode, key)
	if err != nil {
		return QueryResult{}, err
	}
	var out []Entry
	appendStore := func(p *Peer) {
		for _, entries := range p.store {
			out = append(out, entries...)
		}
	}
	appendStore(owner)
	walked := 1
	fwd, back := owner, owner
	for walked < maxScan && walked < c.ring.NumPeers() && !enough(out) {
		fwd = c.ring.successorAfter(fwd)
		if fwd == back {
			break
		}
		appendStore(fwd)
		walked++
		if walked >= maxScan || walked >= c.ring.NumPeers() || enough(out) {
			break
		}
		back = c.ring.predecessorOf(back)
		if back == fwd {
			break
		}
		appendStore(back)
		walked++
	}
	return QueryResult{Entries: out, LookupHops: hops, PeersWalked: walked}, nil
}

// ExactNearest scans every published entry and returns the n nearest to
// target — the oracle against which the DHT walk's mapping error is
// measured (Figure 3 / experiment X3).
func (c *Catalog) ExactNearest(target costspace.Point, n int) []Entry {
	all := make([]Entry, 0, len(c.published))
	for _, e := range c.published {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		di := c.space.Distance(target, all[i].Point)
		dj := c.space.Distance(target, all[j].Point)
		if di != dj {
			return di < dj
		}
		return all[i].Node < all[j].Node
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// ExactWithinRadius scans every published entry and returns all within r
// of target, nearest first.
func (c *Catalog) ExactWithinRadius(target costspace.Point, r float64) []Entry {
	var out []Entry
	for _, e := range c.published {
		if c.space.Distance(target, e.Point) <= r {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := c.space.Distance(target, out[i].Point)
		dj := c.space.Distance(target, out[j].Point)
		if di != dj {
			return di < dj
		}
		return out[i].Node < out[j].Node
	})
	return out
}
