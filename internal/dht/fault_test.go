package dht

import (
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/overlay"
	"github.com/hourglass/sbon/internal/simtime"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// dropOracle returns a seeded 1-in-1/p drop oracle independent of the
// overlay (unit-level stand-in for FaultInjector.RPCOracle).
func dropOracle(seed int64, p float64) func(from, to topology.NodeID) bool {
	rng := rand.New(rand.NewSource(seed))
	return func(from, to topology.NodeID) bool { return rng.Float64() < p }
}

// requireStabilizedFingers asserts every finger table matches the fully
// stabilized reference (successor of id + 2^i).
func requireStabilizedFingers(t *testing.T, r *Ring) {
	t.Helper()
	for _, p := range r.peers {
		for i := 0; i < 64; i++ {
			want := r.successor(p.id + 1<<uint(i))
			if p.fingers[i] != want {
				t.Fatalf("peer %d finger %d: got node %d, want node %d",
					p.node, i, p.fingers[i].node, want.node)
			}
		}
	}
}

func TestLookupRetriesUnderLoss(t *testing.T) {
	run := func() RingFaultStats {
		env := newTestEnv(t, 64, 21)
		env.ring.InstallFaults(RingFaults{Drop: dropOracle(99, 0.05)})
		rng := rand.New(rand.NewSource(22))
		for i := 0; i < 64; i++ {
			for j := 0; j < 5; j++ {
				k := ID(rng.Uint64())
				p, hops, err := env.ring.Lookup(topology.NodeID(i), k)
				if err != nil {
					t.Fatalf("lookup under 5%% loss failed: %v", err)
				}
				if p != env.ring.Owner(k) {
					t.Fatalf("lookup under loss returned node %d, owner is %d", p.Node(), env.ring.Owner(k).Node())
				}
				if hops < 0 || hops > 2*env.ring.NumPeers() {
					t.Fatalf("absurd hop count %d", hops)
				}
			}
		}
		return env.ring.FaultStats()
	}
	st := run()
	if st.RPCs == 0 || st.Retries == 0 {
		t.Fatalf("5%% loss over 320 lookups produced no retries: %+v", st)
	}
	if st.Backoff <= 0 {
		t.Fatalf("retries accumulated no backoff: %+v", st)
	}
	// Same seeds, fresh ring: the retry trace must replay bit-identically.
	if st2 := run(); st2 != st {
		t.Fatalf("fault stats not deterministic: %+v vs %+v", st, st2)
	}
}

func TestLookupFaultFreeKeepsZeroStats(t *testing.T) {
	env := newTestEnv(t, 32, 23)
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 50; i++ {
		k := ID(rng.Uint64())
		if _, _, err := env.ring.Lookup(topology.NodeID(rng.Intn(32)), k); err != nil {
			t.Fatal(err)
		}
	}
	if st := env.ring.FaultStats(); st != (RingFaultStats{}) {
		t.Fatalf("fault-free ring accumulated stats: %+v", st)
	}
}

func TestLookupAllRPCsDroppedFails(t *testing.T) {
	env := newTestEnv(t, 16, 25)
	env.ring.InstallFaults(RingFaults{
		Drop:       func(from, to topology.NodeID) bool { return true },
		MaxRetries: 2,
	})
	k := env.ring.Peers()[8].ID() // force at least one hop from peer 0's node
	start := env.ring.Peers()[0].Node()
	if _, _, err := env.ring.Lookup(start, k); err == nil {
		t.Fatal("lookup with every RPC dropped should fail")
	}
	if st := env.ring.FaultStats(); st.Failed == 0 {
		t.Fatalf("total loss recorded no failed RPCs: %+v", st)
	}
}

// TestLookupRetryWiredFromFaultInjector drives ring loss from the
// overlay fault injector's RPC oracle — the integration the simulator
// uses, sharing one scripted FaultPlan across data and control planes.
func TestLookupRetryWiredFromFaultInjector(t *testing.T) {
	tcfg := topology.Config{
		TransitDomains:      1,
		TransitNodes:        2,
		StubsPerTransit:     2,
		StubNodes:           3,
		IntraStubLatency:    [2]float64{1, 2},
		StubUplinkLatency:   [2]float64{2, 4},
		IntraTransitLatency: [2]float64{5, 10},
	}
	topo := topology.MustGenerate(tcfg, rand.New(rand.NewSource(1)))
	cfg := overlay.VirtualConfig()
	clk := cfg.Clock.(*simtime.VirtualClock)
	clk.Register()
	net := overlay.NewNetwork(topo, cfg)
	net.Start()
	defer func() {
		net.Stop()
		clk.Unregister()
		clk.Stop()
	}()
	fi := net.InstallFaults(overlay.FaultPlan{Seed: 7, DropProb: 0.1})
	defer fi.Stop()

	ring := NewRing()
	for i := 0; i < topo.NumNodes(); i++ {
		if _, err := ring.AddPeer(topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	ring.InstallFaults(RingFaults{Drop: fi.RPCOracle()})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		k := ID(rng.Uint64())
		p, _, err := ring.Lookup(topology.NodeID(rng.Intn(topo.NumNodes())), k)
		if err != nil {
			t.Fatalf("lookup %d failed under injected loss: %v", i, err)
		}
		if p != ring.Owner(k) {
			t.Fatalf("lookup %d found wrong owner", i)
		}
	}
	if st := ring.FaultStats(); st.Retries == 0 {
		t.Fatalf("10%% injected loss produced no retries: %+v", st)
	}
}

func TestCrashPeerRepairsFingersNoMigration(t *testing.T) {
	env := newTestEnv(t, 40, 26)
	rng := rand.New(rand.NewSource(27))
	totalBefore := 0
	for _, p := range env.ring.Peers() {
		totalBefore += len(p.Entries())
	}
	crashed := map[topology.NodeID]bool{}
	totalLost := 0
	for len(crashed) < 8 {
		v := topology.NodeID(rng.Intn(40))
		if crashed[v] {
			continue
		}
		lost, err := env.ring.CrashPeer(v)
		if err != nil {
			t.Fatal(err)
		}
		crashed[v] = true
		totalLost += lost
		requireStabilizedFingers(t, env.ring)
	}
	if env.ring.NumPeers() != 32 {
		t.Fatalf("ring size %d after 8 crashes, want 32", env.ring.NumPeers())
	}
	// Crashes migrate nothing: the survivors hold exactly what they
	// held before, minus nothing, and the lost entries are gone.
	totalAfter := 0
	for _, p := range env.ring.Peers() {
		totalAfter += len(p.Entries())
	}
	if totalAfter != totalBefore-totalLost {
		t.Fatalf("entries after crashes: %d, want %d - %d", totalAfter, totalBefore, totalLost)
	}
	// Routing still converges from every survivor.
	for i := 0; i < 40; i++ {
		if _, ok := env.ring.PeerFor(topology.NodeID(i)); !ok {
			continue
		}
		k := ID(rng.Uint64())
		p, _, err := env.ring.Lookup(topology.NodeID(i), k)
		if err != nil {
			t.Fatal(err)
		}
		if p != env.ring.Owner(k) {
			t.Fatal("post-crash lookup found wrong owner")
		}
	}
}

func TestCatalogRepairAfterCrash(t *testing.T) {
	env := newTestEnv(t, 48, 28)
	rng := rand.New(rand.NewSource(29))
	var dead []topology.NodeID
	seen := map[topology.NodeID]bool{}
	for len(dead) < 6 {
		v := topology.NodeID(rng.Intn(48))
		if !seen[v] {
			seen[v] = true
			dead = append(dead, v)
		}
	}
	rep := env.catalog.RepairAfterCrash(dead)
	if rep.CrashedPeers != 6 || rep.Unpublished != 6 {
		t.Fatalf("report %+v: want 6 crashed peers, 6 unpublished", rep)
	}
	if rep.Republished != rep.EntriesLost {
		t.Fatalf("report %+v: every lost survivor entry must republish", rep)
	}
	if got := env.catalog.NumPublished(); got != 42 {
		t.Fatalf("published %d after repair, want 42", got)
	}
	total := 0
	for _, p := range env.ring.Peers() {
		total += len(p.Entries())
	}
	if total != 42 {
		t.Fatalf("stored entries %d after repair, want 42", total)
	}
	requireStabilizedFingers(t, env.ring)

	// Every query path sees exactly the survivors.
	var start topology.NodeID = -1
	for i := 0; i < 48; i++ {
		if _, ok := env.ring.PeerFor(topology.NodeID(i)); ok {
			start = topology.NodeID(i)
			break
		}
	}
	target := env.space.IdealPoint(vivaldi.Coord{100, 100})
	res, err := env.catalog.WithinRadius(start, target, 1e9, env.ring.NumPeers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 42 {
		t.Fatalf("full scan found %d entries, want 42", len(res.Entries))
	}
	for _, e := range res.Entries {
		if seen[e.Node] {
			t.Fatalf("dead node %d still answers catalog queries", e.Node)
		}
	}
	for _, e := range env.catalog.ExactNearest(target, 48) {
		if seen[e.Node] {
			t.Fatalf("dead node %d still in exact index", e.Node)
		}
	}

	// Idempotent: the same dead set again is a no-op.
	if rep2 := env.catalog.RepairAfterCrash(dead); rep2 != (CrashRepairReport{}) {
		t.Fatalf("second repair of same dead set did work: %+v", rep2)
	}
}

// TestChurnUnderLoss runs crash/rejoin churn with 5% RPC loss: lookups
// must keep converging to the true owner, repairs must keep the
// catalog consistent, and fingers must end fully stabilized.
func TestChurnUnderLoss(t *testing.T) {
	env := newTestEnv(t, 64, 30)
	env.ring.InstallFaults(RingFaults{Drop: dropOracle(31, 0.05)})
	rng := rand.New(rand.NewSource(32))
	alive := make([]topology.NodeID, 0, 64)
	for i := 0; i < 64; i++ {
		alive = append(alive, topology.NodeID(i))
	}
	var down []topology.NodeID
	for round := 0; round < 20; round++ {
		// Crash one live node and repair.
		vi := rng.Intn(len(alive))
		victim := alive[vi]
		alive = append(alive[:vi], alive[vi+1:]...)
		down = append(down, victim)
		env.catalog.RepairAfterCrash([]topology.NodeID{victim})
		// Every other round a previously crashed node recovers.
		if round%2 == 1 {
			back := down[0]
			down = down[1:]
			if err := env.catalog.Rejoin(back, env.points[back]); err != nil {
				t.Fatalf("round %d: rejoin %d: %v", round, back, err)
			}
			alive = append(alive, back)
		}
		if env.catalog.NumPublished() != len(alive) {
			t.Fatalf("round %d: published %d, alive %d", round, env.catalog.NumPublished(), len(alive))
		}
		for i := 0; i < 8; i++ {
			k := ID(rng.Uint64())
			start := alive[rng.Intn(len(alive))]
			p, _, err := env.ring.Lookup(start, k)
			if err != nil {
				t.Fatalf("round %d: lookup under churn+loss: %v", round, err)
			}
			if p != env.ring.Owner(k) {
				t.Fatalf("round %d: lookup found wrong owner", round)
			}
		}
	}
	requireStabilizedFingers(t, env.ring)
	total := 0
	for _, p := range env.ring.Peers() {
		total += len(p.Entries())
	}
	if total != len(alive) {
		t.Fatalf("stored entries %d after churn, want %d", total, len(alive))
	}
	if st := env.ring.FaultStats(); st.Retries == 0 || st.Backoff == 0 {
		t.Fatalf("churn under 5%% loss produced no retries: %+v", st)
	}
}
