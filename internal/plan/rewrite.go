package plan

import (
	"github.com/hourglass/sbon/internal/query"
)

// Rotations returns the one-step join reorderings of a plan tree — the
// "limited plan re-writing ... reordering of services" a re-optimizing
// node can perform (§3.3 of the paper). For every edge between a join
// and a join child, the associativity rotations are generated:
//
//	(A ⋈ B) ⋈ C   →   (A ⋈ C) ⋈ B   and   (B ⋈ C) ⋈ A
//
// where A, B, C are maximal non-join subtrees (sources, filtered
// sources, aggregates). Non-join operators above the rotation point are
// preserved. Results are deduplicated by canonical signature and exclude
// the original tree; rates are NOT computed — callers must invoke
// ComputeRates before costing.
func Rotations(root *query.PlanNode) []*query.PlanNode {
	if root == nil {
		return nil
	}
	variants := rotateNode(root)
	seen := map[string]bool{root.Signature(): true}
	out := make([]*query.PlanNode, 0, len(variants))
	for _, v := range variants {
		sig := v.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, v)
	}
	return out
}

// rotateNode returns full copies of the subtree rooted at n with exactly
// one rotation applied somewhere inside it.
func rotateNode(n *query.PlanNode) []*query.PlanNode {
	if n == nil || n.Kind == query.KindSource {
		return nil
	}
	var out []*query.PlanNode

	// A variant inside the left child, with the rest of this node intact.
	for _, lv := range rotateNode(n.Left) {
		c := n.ShallowClone()
		c.Left = lv
		c.Right = n.Right.Clone()
		out = append(out, c)
	}
	// A variant inside the right child.
	for _, rv := range rotateNode(n.Right) {
		c := n.ShallowClone()
		c.Left = n.Left.Clone()
		c.Right = rv
		out = append(out, c)
	}

	// Local rotations at this node.
	if n.Kind == query.KindJoin {
		if n.Left != nil && n.Left.Kind == query.KindJoin {
			a, b, c := n.Left.Left, n.Left.Right, n.Right
			out = append(out,
				query.NewJoin(query.NewJoin(a.Clone(), c.Clone()), b.Clone()),
				query.NewJoin(query.NewJoin(b.Clone(), c.Clone()), a.Clone()),
			)
		}
		if n.Right != nil && n.Right.Kind == query.KindJoin {
			a, b, c := n.Left, n.Right.Left, n.Right.Right
			out = append(out,
				query.NewJoin(query.NewJoin(a.Clone(), b.Clone()), c.Clone()),
				query.NewJoin(query.NewJoin(a.Clone(), c.Clone()), b.Clone()),
			)
		}
	}
	return out
}
