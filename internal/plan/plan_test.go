package plan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

func testCatalog(t *testing.T, nStreams int, seed int64) *query.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c, err := query.NewCatalog(0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nStreams; i++ {
		if err := c.AddStream(query.StreamID(i), topology.NodeID(i), 50+rng.Float64()*400); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nStreams; i++ {
		for j := i + 1; j < nStreams; j++ {
			if err := c.SetPairSelectivity(query.StreamID(i), query.StreamID(j), 0.3+rng.Float64()*0.9); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func streams(n int) []query.StreamID {
	out := make([]query.StreamID, n)
	for i := range out {
		out[i] = query.StreamID(i)
	}
	return out
}

func TestCountTrees(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 3, 4: 15, 5: 105, 6: 945}
	for k, n := range want {
		if got := CountTrees(k); got != n {
			t.Fatalf("CountTrees(%d) = %d, want %d", k, got, n)
		}
	}
}

func TestEnumerateCountsMatchClosedForm(t *testing.T) {
	for k := 2; k <= 5; k++ {
		c := testCatalog(t, k, int64(k))
		e := NewEnumerator(c)
		plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(k)})
		if err != nil {
			t.Fatal(err)
		}
		// Signature dedup can only reduce the count if two trees coincide,
		// which cannot happen for distinct shapes over distinct leaves.
		if len(plans) != CountTrees(k) {
			t.Fatalf("k=%d: %d plans, want %d", k, len(plans), CountTrees(k))
		}
	}
}

func TestEnumerateSortedByIntermediateRate(t *testing.T) {
	c := testCatalog(t, 5, 7)
	e := NewEnumerator(c)
	plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(5)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i-1].IntermediateRate() > plans[i].IntermediateRate() {
			t.Fatal("plans not sorted by intermediate rate")
		}
	}
}

func TestEnumerateAllPlansCoverAllStreams(t *testing.T) {
	c := testCatalog(t, 4, 3)
	e := NewEnumerator(c)
	plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(4)})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		leaves := p.Leaves()
		if len(leaves) != 4 {
			t.Fatalf("plan %s has %d leaves", p, len(leaves))
		}
		seen := map[query.StreamID]bool{}
		for _, s := range leaves {
			seen[s] = true
		}
		if len(seen) != 4 {
			t.Fatalf("plan %s repeats leaves", p)
		}
	}
}

func TestEnumerateAppliesFiltersAndAggregate(t *testing.T) {
	c := testCatalog(t, 3, 4)
	q := query.Query{
		ID: 1, Streams: streams(3),
		FilterSel:         map[query.StreamID]float64{0: 0.5},
		AggregateFraction: 0.2,
	}
	e := NewEnumerator(c)
	plans, err := e.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Kind != query.KindAggregate {
			t.Fatalf("plan root is %v, want aggregate", p.Kind)
		}
		foundFilter := false
		for _, s := range p.Services() {
			if s.Kind == query.KindFilter {
				foundFilter = true
			}
		}
		if !foundFilter {
			t.Fatalf("plan %s lost the pushed-down filter", p)
		}
	}
}

func TestEnumerateTopK(t *testing.T) {
	c := testCatalog(t, 4, 5)
	e := NewEnumerator(c)
	e.TopK = 3
	plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("TopK=3 returned %d plans", len(plans))
	}
}

func TestEnumerateSingleStream(t *testing.T) {
	c := testCatalog(t, 1, 6)
	e := NewEnumerator(c)
	plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || plans[0].Kind != query.KindSource {
		t.Fatalf("single-stream plans = %v", plans)
	}
}

func TestEnumerateErrors(t *testing.T) {
	c := testCatalog(t, 2, 8)
	e := NewEnumerator(c)
	if _, err := e.Enumerate(query.Query{ID: 1}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := e.Enumerate(query.Query{ID: 1, Streams: []query.StreamID{5}}); err == nil {
		t.Fatal("unknown stream accepted")
	}
	e.Catalog = nil
	if _, err := e.Enumerate(query.Query{ID: 1, Streams: streams(2)}); err == nil {
		t.Fatal("nil catalog accepted")
	}
}

func TestBestReturnsCheapest(t *testing.T) {
	c := testCatalog(t, 4, 9)
	e := NewEnumerator(c)
	q := query.Query{ID: 1, Streams: streams(4)}
	best, err := e.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	if best.Signature() != all[0].Signature() {
		t.Fatalf("Best() = %s, cheapest enumerated = %s", best, all[0])
	}
	if e.TopK != 0 {
		t.Fatal("Best() must restore TopK")
	}
}

// The beam DP with a generous beam must find the same optimum as
// exhaustive enumeration.
func TestBeamDPMatchesExhaustiveOptimum(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := testCatalog(t, 5, seed)
		q := query.Query{ID: 1, Streams: streams(5)}

		ex := NewEnumerator(c)
		exPlans, err := ex.Enumerate(q)
		if err != nil {
			t.Fatal(err)
		}

		dp := NewEnumerator(c)
		dp.MaxExhaustive = 1 // force the DP path
		dp.BeamWidth = 12
		dpPlans, err := dp.Enumerate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(dpPlans) == 0 {
			t.Fatal("DP returned no plans")
		}
		exBest := exPlans[0].IntermediateRate()
		dpBest := dpPlans[0].IntermediateRate()
		if math.Abs(exBest-dpBest) > 1e-6*exBest {
			t.Fatalf("seed %d: DP best %v != exhaustive best %v", seed, dpBest, exBest)
		}
	}
}

func TestBeamDPHandlesLargerQueries(t *testing.T) {
	c := testCatalog(t, 9, 11)
	e := NewEnumerator(c)
	plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans for 9-way join")
	}
	if got := len(plans[0].Leaves()); got != 9 {
		t.Fatalf("plan covers %d leaves, want 9", got)
	}
}

func TestBeamDPRejectsHugeQueries(t *testing.T) {
	c := testCatalog(t, 2, 12)
	e := NewEnumerator(c)
	e.MaxExhaustive = 1
	big := make([]query.StreamID, 21)
	for i := range big {
		big[i] = query.StreamID(i)
		if i >= 2 {
			if err := c.AddStream(query.StreamID(i), topology.NodeID(i), 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Enumerate(query.Query{ID: 1, Streams: big}); err == nil {
		t.Fatal("21-stream DP accepted")
	}
}

func TestLeftDeepChainShape(t *testing.T) {
	c := testCatalog(t, 4, 13)
	q := query.Query{ID: 1, Streams: streams(4)}
	root, err := LeftDeepChain(q, c)
	if err != nil {
		t.Fatal(err)
	}
	// Left-deep: every right child is a leaf (or filtered leaf).
	n := root
	depth := 0
	for n.Kind == query.KindJoin {
		r := n.Right
		for r.Kind == query.KindFilter {
			r = r.Left
		}
		if r.Kind != query.KindSource {
			t.Fatalf("right child at depth %d is %v, want source", depth, r.Kind)
		}
		n = n.Left
		depth++
	}
	if depth != 3 {
		t.Fatalf("chain depth = %d, want 3", depth)
	}
}

func TestLeftDeepChainOrdersByRate(t *testing.T) {
	c, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[query.StreamID]float64{0: 300, 1: 100, 2: 200}
	for s, r := range rates {
		if err := c.AddStream(s, topology.NodeID(s), r); err != nil {
			t.Fatal(err)
		}
	}
	root, err := LeftDeepChain(query.Query{ID: 1, Streams: []query.StreamID{0, 1, 2}}, c)
	if err != nil {
		t.Fatal(err)
	}
	leaves := root.Leaves()
	// Ascending rate: 1 (100), 2 (200), 0 (300).
	want := []query.StreamID{1, 2, 0}
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("Leaves() = %v, want %v", leaves, want)
		}
	}
}

func TestLeftDeepChainValidates(t *testing.T) {
	c := testCatalog(t, 2, 14)
	if _, err := LeftDeepChain(query.Query{ID: 1}, c); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// Property: for random small catalogs, the exhaustive minimum is no worse
// than the left-deep heuristic.
func TestExhaustiveBeatsLeftDeepProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := testCatalog(t, 4, seed)
		q := query.Query{ID: 1, Streams: streams(4)}
		e := NewEnumerator(c)
		best, err := e.Best(q)
		if err != nil {
			return false
		}
		ld, err := LeftDeepChain(q, c)
		if err != nil {
			return false
		}
		return best.IntermediateRate() <= ld.IntermediateRate()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every enumerated plan's rates are internally consistent with
// a fresh recomputation.
func TestEnumerateRatesConsistentProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := testCatalog(t, 4, seed)
		e := NewEnumerator(c)
		plans, err := e.Enumerate(query.Query{ID: 1, Streams: streams(4)})
		if err != nil {
			return false
		}
		for _, p := range plans {
			cp := p.Clone()
			if err := cp.ComputeRates(c); err != nil {
				return false
			}
			if math.Abs(cp.OutRate-p.OutRate) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEnumerate5Way(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, _ := query.NewCatalog(0.9)
	for i := 0; i < 5; i++ {
		_ = c.AddStream(query.StreamID(i), topology.NodeID(i), 50+rng.Float64()*400)
	}
	e := NewEnumerator(c)
	q := query.Query{ID: 1, Streams: streams(5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Enumerate(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeamDP10Way(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, _ := query.NewCatalog(0.9)
	ids := make([]query.StreamID, 10)
	for i := range ids {
		ids[i] = query.StreamID(i)
		_ = c.AddStream(ids[i], topology.NodeID(i), 50+rng.Float64()*400)
	}
	e := NewEnumerator(c)
	q := query.Query{ID: 1, Streams: ids}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Enumerate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// referenceEnumerate is the pre-arena, pre-interning enumeration kept as
// the oracle for bit-identical plan selection: plain Clone calls, no
// arena, no signature sharing.
func referenceEnumerate(e *Enumerator, q query.Query) ([]*query.PlanNode, error) {
	leaves := make([]*query.PlanNode, len(q.Streams))
	for i, s := range q.Streams {
		leaf := query.NewSource(s)
		if sel, ok := q.FilterSel[s]; ok {
			leaf = query.NewFilter(leaf, sel)
		}
		leaves[i] = leaf
	}
	idx := make([]int, len(leaves))
	for i := range idx {
		idx[i] = i
	}
	var build func(set []int) []*query.PlanNode
	build = func(set []int) []*query.PlanNode {
		if len(set) == 1 {
			return []*query.PlanNode{leaves[set[0]].Clone()}
		}
		var out []*query.PlanNode
		first, rest := set[0], set[1:]
		n := len(rest)
		for mask := 0; mask < 1<<n; mask++ {
			left := []int{first}
			var right []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					left = append(left, rest[i])
				} else {
					right = append(right, rest[i])
				}
			}
			if len(right) == 0 {
				continue
			}
			for _, lt := range build(left) {
				for _, rt := range build(right) {
					out = append(out, query.NewJoin(lt.Clone(), rt.Clone()))
				}
			}
		}
		return out
	}
	trees := build(idx)
	seen := make(map[string]bool, len(trees))
	plans := make([]*query.PlanNode, 0, len(trees))
	for _, tr := range trees {
		root := tr
		if q.AggregateFraction > 0 {
			root = query.NewAggregate(root, q.AggregateFraction)
		}
		if err := root.ComputeRates(e.Catalog); err != nil {
			return nil, err
		}
		sig := root.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		plans = append(plans, root)
	}
	sortPlansByRate(plans)
	if e.TopK > 0 && len(plans) > e.TopK {
		plans = plans[:e.TopK]
	}
	return plans, nil
}

func sortPlansByRate(plans []*query.PlanNode) {
	// Mirror Enumerate's stable sort exactly.
	for i := 1; i < len(plans); i++ {
		for j := i; j > 0 && plans[j].IntermediateRate() < plans[j-1].IntermediateRate(); j-- {
			plans[j], plans[j-1] = plans[j-1], plans[j]
		}
	}
}

// TestEnumerateBitIdenticalToReference pins the satellite requirement:
// arena cloning and signature interning must not change plan selection —
// same plans, same order, same signatures and rates.
func TestEnumerateBitIdenticalToReference(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		cat := testCatalog(t, k, int64(100+k))
		q := query.Query{ID: 1, Consumer: 0, Streams: streams(k),
			FilterSel:         map[query.StreamID]float64{0: 0.5},
			AggregateFraction: 0.25}
		e := NewEnumerator(cat)
		got, err := e.Enumerate(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceEnumerate(NewEnumerator(cat), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d plans, reference %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Signature() != want[i].Signature() {
				t.Fatalf("k=%d plan %d: signature %q, reference %q", k, i, got[i].Signature(), want[i].Signature())
			}
			if got[i].OutRate != want[i].OutRate || got[i].IntermediateRate() != want[i].IntermediateRate() {
				t.Fatalf("k=%d plan %d: rates diverge from reference", k, i)
			}
		}
	}
}

// TestBeamDPBitIdenticalUnderArena pins that the beam DP path (k >
// MaxExhaustive) selects the same winning plan with arenas and interning
// as plain per-node cloning would: the winner's signature equals the
// exhaustive path's winner for a size both can handle.
func TestBeamDPBitIdenticalUnderArena(t *testing.T) {
	cat := testCatalog(t, 6, 42)
	q := query.Query{ID: 1, Consumer: 0, Streams: streams(6)}
	ex := NewEnumerator(cat)
	exPlans, err := ex.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	dp := NewEnumerator(cat)
	dp.MaxExhaustive = 3 // force the DP path
	dp.BeamWidth = 64    // wide beam: exact
	dpPlans, err := dp.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	if exPlans[0].Signature() != dpPlans[0].Signature() {
		t.Fatalf("DP winner %q != exhaustive winner %q", dpPlans[0].Signature(), exPlans[0].Signature())
	}
}

// TestEnumerateAllocScaling guards the satellite's allocation win: with
// arena slabs and interned signatures, enumerating the 105-tree 5-way
// forest (≈1000 nodes per call) must cost well under one allocation per
// node.
func TestEnumerateAllocScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cat, err := query.NewCatalog(0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cat.AddStream(query.StreamID(i), topology.NodeID(i), 50+rng.Float64()*400); err != nil {
			t.Fatal(err)
		}
	}
	q := query.Query{ID: 1, Consumer: 0, Streams: streams(5)}
	e := NewEnumerator(cat)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Enumerate(q); err != nil {
			t.Fatal(err)
		}
	})
	// Per-node cloning and per-call signature building cost ≈13.9k
	// allocs for this query; arena slabs + interning land at ≈9.1k (the
	// remainder is ComputeRates/Leaves and subset bookkeeping). Guard
	// against regressing back toward per-node costs, with headroom for
	// toolchain drift.
	if allocs > 11000 {
		t.Fatalf("Enumerate(5-way) = %.0f allocs/op, want <= 11000 (arena/interning regression)", allocs)
	}
}
