// Package plan implements plan generation for SBON queries: enumerating
// candidate logical plans (join trees) over a query's source streams and
// costing them with the network-oblivious rate model from the statistics
// catalog.
//
// Two enumeration strategies are provided:
//
//   - Exhaustive enumeration of all unordered binary join trees, feasible
//     for small stream counts ((2k-3)!! trees over k streams: 15 for a
//     4-way join). The integrated optimizer virtually places each of these
//     (§3.3: "a set of candidate plans is created ... each plan is
//     virtually placed and physically mapped").
//   - Subset dynamic programming with a beam (top-B plans kept per stream
//     subset), for larger queries where exhaustive enumeration explodes.
//
// Plans returned are deduplicated by canonical signature and sorted by the
// traditional cost metric, total intermediate data rate.
package plan

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/hourglass/sbon/internal/query"
)

// Enumerator generates candidate logical plans for queries.
type Enumerator struct {
	// Catalog supplies rates and selectivities.
	Catalog *query.Catalog
	// MaxExhaustive is the largest stream count for which all join trees
	// are enumerated; above it the beam DP is used. Default 6.
	MaxExhaustive int
	// TopK bounds the number of plans returned (0 = all generated).
	TopK int
	// BeamWidth is the number of plans kept per stream subset in the DP
	// (default 3).
	BeamWidth int
}

// NewEnumerator returns an enumerator with default limits.
func NewEnumerator(c *query.Catalog) *Enumerator {
	return &Enumerator{Catalog: c, MaxExhaustive: 6, BeamWidth: 3}
}

// Enumerate returns candidate plans for q, cheapest (by intermediate
// rate) first. Every plan has rates computed and ends with the query's
// aggregate, if any.
func (e *Enumerator) Enumerate(q query.Query) ([]*query.PlanNode, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if e.Catalog == nil {
		return nil, fmt.Errorf("plan: enumerator has no catalog")
	}
	for _, s := range q.Streams {
		if e.Catalog.Rate(s) <= 0 {
			return nil, fmt.Errorf("plan: stream %d not in catalog", s)
		}
	}

	si := &query.SigInterner{}
	leaves := make([]*query.PlanNode, len(q.Streams))
	for i, s := range q.Streams {
		leaf := query.NewSource(s)
		if sel, ok := q.FilterSel[s]; ok {
			leaf = query.NewFilter(leaf, sel)
		}
		// Pre-interned leaf signatures propagate into every clone the
		// enumeration makes.
		si.Intern(leaf)
		leaves[i] = leaf
	}

	var trees []*query.PlanNode
	maxEx := e.MaxExhaustive
	if maxEx <= 0 {
		maxEx = 6
	}
	if len(leaves) <= maxEx {
		trees = enumerateAllTrees(leaves, si)
	} else {
		var err error
		trees, err = e.beamDP(leaves, si)
		if err != nil {
			return nil, err
		}
	}

	seen := make(map[string]bool, len(trees))
	plans := make([]*query.PlanNode, 0, len(trees))
	for _, tr := range trees {
		root := tr
		if q.AggregateFraction > 0 {
			root = query.NewAggregate(root, q.AggregateFraction)
		}
		if err := root.ComputeRates(e.Catalog); err != nil {
			return nil, err
		}
		sig := si.Intern(root)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		plans = append(plans, root)
	}
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].IntermediateRate() < plans[j].IntermediateRate()
	})
	if e.TopK > 0 && len(plans) > e.TopK {
		plans = plans[:e.TopK]
	}
	return plans, nil
}

// Best returns only the cheapest plan by intermediate rate — what a
// traditional two-step optimizer would hand to the placement phase.
func (e *Enumerator) Best(q query.Query) (*query.PlanNode, error) {
	saved := e.TopK
	e.TopK = 1
	plans, err := e.Enumerate(q)
	e.TopK = saved
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("plan: no plans for query %d", q.ID)
	}
	return plans[0], nil
}

// CountTrees returns the number of unordered binary join trees over k
// leaves: (2k-3)!! for k >= 2, 1 for k <= 1.
func CountTrees(k int) int {
	if k <= 1 {
		return 1
	}
	n := 1
	for f := 2*k - 3; f > 1; f -= 2 {
		n *= f
	}
	return n
}

// nodeArena batch-allocates PlanNodes for enumeration: candidate trees
// are built from slab-carved nodes instead of one heap object per Clone,
// cutting the allocator traffic of (2k-3)!!-tree enumeration to the slab
// count. Winning plans escape to callers, so slabs are never recycled —
// the arena amortizes allocation, it does not pool it.
type nodeArena struct {
	slab []query.PlanNode
}

const arenaSlabNodes = 256

func (a *nodeArena) alloc() *query.PlanNode {
	if len(a.slab) == 0 {
		a.slab = make([]query.PlanNode, arenaSlabNodes)
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	return n
}

// clone deep-copies the tree from arena nodes. Cached signature strings
// are shared with the original (see query.PlanNode.Clone).
func (a *nodeArena) clone(n *query.PlanNode) *query.PlanNode {
	if n == nil {
		return nil
	}
	out := a.alloc()
	*out = *n
	out.Left = a.clone(n.Left)
	out.Right = a.clone(n.Right)
	return out
}

// join builds a join node from the arena, mirroring query.NewJoin.
func (a *nodeArena) join(left, right *query.PlanNode) *query.PlanNode {
	out := a.alloc()
	*out = query.PlanNode{Kind: query.KindJoin, Left: left, Right: right}
	return out
}

// enumerateAllTrees generates every unordered binary join tree over the
// leaves. Mirror duplicates are avoided by keeping the leaf with the
// lowest index on the left side of every split. All nodes come from one
// arena, and every constructed subtree's signature is interned eagerly,
// so clones carry shared signature strings instead of recomputing them.
func enumerateAllTrees(leaves []*query.PlanNode, si *query.SigInterner) []*query.PlanNode {
	idx := make([]int, len(leaves))
	for i := range idx {
		idx[i] = i
	}
	var arena nodeArena
	var build func(set []int) []*query.PlanNode
	build = func(set []int) []*query.PlanNode {
		if len(set) == 1 {
			// Fresh clone per use: plans must not share mutable nodes.
			return []*query.PlanNode{arena.clone(leaves[set[0]])}
		}
		var out []*query.PlanNode
		first, rest := set[0], set[1:]
		// Choose which of the remaining leaves accompany `first` on the
		// left side: any proper subset (possibly empty).
		n := len(rest)
		for mask := 0; mask < 1<<n; mask++ {
			left := []int{first}
			var right []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					left = append(left, rest[i])
				} else {
					right = append(right, rest[i])
				}
			}
			if len(right) == 0 {
				continue
			}
			for _, lt := range build(left) {
				for _, rt := range build(right) {
					j := arena.join(arena.clone(lt), arena.clone(rt))
					si.Intern(j)
					out = append(out, j)
				}
			}
		}
		return out
	}
	return build(idx)
}

// ratedPlan pairs a subtree with its cumulative intermediate rate, used
// by the beam DP.
type ratedPlan struct {
	node *query.PlanNode
	cost float64
}

// beamDP runs subset dynamic programming keeping the BeamWidth cheapest
// plans per stream subset. Cost is cumulative intermediate rate, which is
// additive over subtrees, so the beam is a high-quality heuristic (exact
// when BeamWidth covers all distinct subtree rates).
func (e *Enumerator) beamDP(leaves []*query.PlanNode, si *query.SigInterner) ([]*query.PlanNode, error) {
	k := len(leaves)
	if k > 20 {
		return nil, fmt.Errorf("plan: %d streams exceeds DP limit of 20", k)
	}
	beam := e.BeamWidth
	if beam < 1 {
		beam = 3
	}
	var arena nodeArena
	dp := make([][]ratedPlan, 1<<k)
	for i, leaf := range leaves {
		l := arena.clone(leaf)
		if err := l.ComputeRates(e.Catalog); err != nil {
			return nil, err
		}
		cost := 0.0
		if l.Kind != query.KindSource {
			cost = l.OutRate // a pushed-down filter is a service too
		}
		dp[1<<i] = []ratedPlan{{node: l, cost: cost}}
	}
	for mask := 1; mask < 1<<k; mask++ {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		lowest := mask & -mask
		var cands []ratedPlan
		// Enumerate splits; keep the lowest bit on the left to halve work.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&lowest == 0 {
				continue
			}
			other := mask ^ sub
			if other == 0 {
				continue
			}
			for _, lp := range dp[sub] {
				for _, rp := range dp[other] {
					jn := arena.join(arena.clone(lp.node), arena.clone(rp.node))
					if err := jn.ComputeRates(e.Catalog); err != nil {
						return nil, err
					}
					si.Intern(jn)
					cands = append(cands, ratedPlan{
						node: jn,
						cost: lp.cost + rp.cost + jn.OutRate,
					})
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
		if len(cands) > beam {
			cands = cands[:beam]
		}
		dp[mask] = cands
	}
	full := dp[1<<k-1]
	out := make([]*query.PlanNode, len(full))
	for i, rp := range full {
		out[i] = rp.node
	}
	return out, nil
}

// LeftDeepChain builds the left-deep join tree over the query's streams
// ordered by ascending source rate — the classic greedy heuristic, used
// as a baseline plan shape in the Figure 1 experiment.
func LeftDeepChain(q query.Query, c *query.Catalog) (*query.PlanNode, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	streams := append([]query.StreamID(nil), q.Streams...)
	sort.Slice(streams, func(i, j int) bool {
		ri, rj := c.Rate(streams[i]), c.Rate(streams[j])
		if ri != rj {
			return ri < rj
		}
		return streams[i] < streams[j]
	})
	mk := func(s query.StreamID) *query.PlanNode {
		leaf := query.NewSource(s)
		if sel, ok := q.FilterSel[s]; ok {
			leaf = query.NewFilter(leaf, sel)
		}
		return leaf
	}
	root := mk(streams[0])
	for _, s := range streams[1:] {
		root = query.NewJoin(root, mk(s))
	}
	if q.AggregateFraction > 0 {
		root = query.NewAggregate(root, q.AggregateFraction)
	}
	if err := root.ComputeRates(c); err != nil {
		return nil, err
	}
	return root, nil
}
