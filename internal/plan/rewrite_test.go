package plan

import (
	"testing"

	"github.com/hourglass/sbon/internal/query"
)

func join(l, r *query.PlanNode) *query.PlanNode { return query.NewJoin(l, r) }
func src(s query.StreamID) *query.PlanNode      { return query.NewSource(s) }

func TestRotationsThreeLeaves(t *testing.T) {
	// ((0⋈1)⋈2) has exactly the two alternative shapes over three leaves.
	root := join(join(src(0), src(1)), src(2))
	rots := Rotations(root)
	if len(rots) != 2 {
		t.Fatalf("rotations = %d, want 2", len(rots))
	}
	want := map[string]bool{
		join(join(src(0), src(2)), src(1)).Signature(): true,
		join(join(src(1), src(2)), src(0)).Signature(): true,
	}
	for _, r := range rots {
		if !want[r.Signature()] {
			t.Fatalf("unexpected rotation %s", r)
		}
	}
}

func TestRotationsExcludeOriginal(t *testing.T) {
	root := join(join(src(0), src(1)), src(2))
	for _, r := range Rotations(root) {
		if r.Signature() == root.Signature() {
			t.Fatal("original tree returned as rotation")
		}
	}
}

func TestRotationsRightChild(t *testing.T) {
	// 0 ⋈ (1⋈2): rotations must cover the same 3-leaf shape family.
	root := join(src(0), join(src(1), src(2)))
	rots := Rotations(root)
	if len(rots) != 2 {
		t.Fatalf("rotations = %d, want 2", len(rots))
	}
}

func TestRotationsLeavesNonJoinUnitsAtomic(t *testing.T) {
	// Filters above sources travel with their source.
	f0 := query.NewFilter(src(0), 0.5)
	root := join(join(f0, src(1)), src(2))
	for _, r := range Rotations(root) {
		filters := 0
		for _, s := range r.Services() {
			if s.Kind == query.KindFilter {
				filters++
				under := s.Left
				if under.Kind != query.KindSource || under.Stream != 0 {
					t.Fatalf("filter detached from its source in %s", r)
				}
			}
		}
		if filters != 1 {
			t.Fatalf("rotation %s has %d filters, want 1", r, filters)
		}
	}
}

func TestRotationsPreserveAggregateRoot(t *testing.T) {
	root := query.NewAggregate(join(join(src(0), src(1)), src(2)), 0.1)
	rots := Rotations(root)
	if len(rots) == 0 {
		t.Fatal("no rotations under aggregate")
	}
	for _, r := range rots {
		if r.Kind != query.KindAggregate {
			t.Fatalf("rotation lost the aggregate root: %s", r)
		}
	}
}

func TestRotationsPreserveLeafSet(t *testing.T) {
	root := join(join(src(0), src(1)), join(src(2), src(3)))
	for _, r := range Rotations(root) {
		leaves := r.Leaves()
		if len(leaves) != 4 {
			t.Fatalf("rotation %s has %d leaves", r, len(leaves))
		}
		seen := map[query.StreamID]bool{}
		for _, l := range leaves {
			seen[l] = true
		}
		for s := query.StreamID(0); s < 4; s++ {
			if !seen[s] {
				t.Fatalf("rotation %s lost stream %d", r, s)
			}
		}
	}
}

func TestRotationsFourLeafChainCount(t *testing.T) {
	// ((0⋈1)⋈2)⋈3: top edge gives 2, inner edge gives 2 (each lifted to a
	// distinct full tree) — all four distinct.
	root := join(join(join(src(0), src(1)), src(2)), src(3))
	rots := Rotations(root)
	if len(rots) != 4 {
		t.Fatalf("rotations = %d, want 4", len(rots))
	}
}

func TestRotationsRatesComputable(t *testing.T) {
	c := testCatalog(t, 4, 99)
	root := join(join(src(0), src(1)), join(src(2), src(3)))
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	for _, r := range Rotations(root) {
		if err := r.ComputeRates(c); err != nil {
			t.Fatalf("rotation %s rates: %v", r, err)
		}
		if r.OutRate <= 0 {
			t.Fatalf("rotation %s has rate %v", r, r.OutRate)
		}
	}
}

func TestRotationsNilAndLeaf(t *testing.T) {
	if got := Rotations(nil); got != nil {
		t.Fatal("nil root should yield nil")
	}
	if got := Rotations(src(0)); len(got) != 0 {
		t.Fatal("leaf should yield no rotations")
	}
	if got := Rotations(join(src(0), src(1))); len(got) != 0 {
		t.Fatal("single join should yield no rotations")
	}
}

// Repeated rotation exploration must be able to reach the rate-optimal
// tree from a bad start (hill-climbing completeness on small instances).
func TestRotationHillClimbReachesOptimum(t *testing.T) {
	c := testCatalog(t, 4, 123)
	q := query.Query{ID: 1, Streams: streams(4)}
	e := NewEnumerator(c)
	best, err := e.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	// Start from the worst enumerated plan.
	all, err := e.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	cur := all[len(all)-1].Clone()
	for iter := 0; iter < 20; iter++ {
		improved := false
		for _, r := range Rotations(cur) {
			if err := r.ComputeRates(c); err != nil {
				t.Fatal(err)
			}
			if r.IntermediateRate() < cur.IntermediateRate()-1e-9 {
				cur = r
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	// Hill climbing may stop at a local optimum, but on random 4-stream
	// catalogs it should land within 25% of the global optimum.
	if cur.IntermediateRate() > best.IntermediateRate()*1.25 {
		t.Fatalf("hill climb stuck at %v, optimum %v", cur.IntermediateRate(), best.IntermediateRate())
	}
}
