package query

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/hourglass/sbon/internal/topology"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range []float64{100, 200, 50, 400} {
		if err := c.AddStream(StreamID(i), topology.NodeID(10+i), rate); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetPairSelectivity(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServiceKindString(t *testing.T) {
	want := map[ServiceKind]string{
		KindSource: "source", KindFilter: "filter", KindJoin: "join",
		KindAggregate: "aggregate", KindUnion: "union",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%v.String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
	if got := ServiceKind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{ID: 1, Consumer: 5, Streams: []StreamID{0, 1},
		FilterSel: map[StreamID]float64{0: 0.5}, AggregateFraction: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []Query{
		{ID: 2, Streams: nil},
		{ID: 3, Streams: []StreamID{1, 1}},
		{ID: 4, Streams: []StreamID{1}, FilterSel: map[StreamID]float64{2: 0.5}},
		{ID: 5, Streams: []StreamID{1}, FilterSel: map[StreamID]float64{1: 0}},
		{ID: 6, Streams: []StreamID{1}, FilterSel: map[StreamID]float64{1: 1.5}},
		{ID: 7, Streams: []StreamID{1}, AggregateFraction: -0.1},
		{ID: 8, Streams: []StreamID{1}, AggregateFraction: 1.1},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Fatalf("query %d accepted, want error", q.ID)
		}
	}
}

func TestCatalogBasics(t *testing.T) {
	c := testCatalog(t)
	if got := c.Rate(1); got != 200 {
		t.Fatalf("Rate(1) = %v, want 200", got)
	}
	if got := c.Rate(99); got != 0 {
		t.Fatalf("Rate(99) = %v, want 0", got)
	}
	p, ok := c.Producer(2)
	if !ok || p != 12 {
		t.Fatalf("Producer(2) = %v, %v", p, ok)
	}
	streams := c.Streams()
	if len(streams) != 4 || streams[0] != 0 || streams[3] != 3 {
		t.Fatalf("Streams() = %v", streams)
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(0); err == nil {
		t.Fatal("zero default selectivity accepted")
	}
	c := testCatalog(t)
	if err := c.AddStream(0, 1, 100); err == nil {
		t.Fatal("duplicate stream accepted")
	}
	if err := c.AddStream(9, 1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := c.SetPairSelectivity(0, 1, 0); err == nil {
		t.Fatal("zero selectivity accepted")
	}
}

func TestPairSelectivitySymmetricWithDefault(t *testing.T) {
	c := testCatalog(t)
	if got := c.PairSelectivity(0, 1); got != 0.5 {
		t.Fatalf("PairSelectivity(0,1) = %v, want 0.5", got)
	}
	if got := c.PairSelectivity(1, 0); got != 0.5 {
		t.Fatalf("PairSelectivity(1,0) = %v, want 0.5 (symmetric)", got)
	}
	if got := c.PairSelectivity(2, 3); got != 0.8 {
		t.Fatalf("PairSelectivity(2,3) = %v, want default 0.8", got)
	}
}

func TestJoinSelectivityCrossProduct(t *testing.T) {
	c := testCatalog(t)
	// sel({0},{1,2}) = sel(0,1)*sel(0,2) = 0.5*0.8
	got := c.JoinSelectivity([]StreamID{0}, []StreamID{1, 2})
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("JoinSelectivity = %v, want 0.4", got)
	}
}

func TestComputeRatesJoinTree(t *testing.T) {
	c := testCatalog(t)
	// (S0 ⋈ S1): sel 0.5, rate = 0.5*(100+200) = 150
	// ((S0 ⋈ S1) ⋈ S2): sel = sel(0,2)*sel(1,2) = 0.64, rate = 0.64*(150+50) = 128
	root := NewJoin(NewJoin(NewSource(0), NewSource(1)), NewSource(2))
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	if math.Abs(root.Left.OutRate-150) > 1e-9 {
		t.Fatalf("inner join rate = %v, want 150", root.Left.OutRate)
	}
	if math.Abs(root.OutRate-128) > 1e-9 {
		t.Fatalf("outer join rate = %v, want 128", root.OutRate)
	}
}

func TestComputeRatesFilterAggregate(t *testing.T) {
	c := testCatalog(t)
	root := NewAggregate(NewFilter(NewSource(3), 0.25), 0.1)
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	if math.Abs(root.Left.OutRate-100) > 1e-9 { // 0.25*400
		t.Fatalf("filter rate = %v, want 100", root.Left.OutRate)
	}
	if math.Abs(root.OutRate-10) > 1e-9 {
		t.Fatalf("aggregate rate = %v, want 10", root.OutRate)
	}
}

func TestComputeRatesUnion(t *testing.T) {
	c := testCatalog(t)
	root := NewUnion(NewSource(0), NewSource(2))
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	if root.OutRate != 150 {
		t.Fatalf("union rate = %v, want 150", root.OutRate)
	}
}

func TestComputeRatesErrors(t *testing.T) {
	c := testCatalog(t)
	cases := []*PlanNode{
		NewSource(99),                        // unknown stream
		{Kind: KindFilter},                   // filter without child
		{Kind: KindJoin, Left: NewSource(0)}, // join missing right
		NewFilter(NewSource(0), 0),           // bad selectivity
		NewFilter(NewSource(0), 1.5),         // bad selectivity
		{Kind: ServiceKind(42)},              // unknown kind
		{Kind: KindUnion, Left: NewSource(0)},
	}
	for i, n := range cases {
		if err := n.ComputeRates(c); err == nil {
			t.Fatalf("case %d: ComputeRates accepted invalid plan", i)
		}
	}
}

func TestLeavesOrder(t *testing.T) {
	root := NewJoin(NewJoin(NewSource(2), NewSource(0)), NewSource(1))
	got := root.Leaves()
	want := []StreamID{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Leaves() = %v, want %v", got, want)
		}
	}
}

func TestServicesPostOrder(t *testing.T) {
	inner := NewJoin(NewSource(0), NewSource(1))
	root := NewJoin(inner, NewSource(2))
	svcs := root.Services()
	if len(svcs) != 2 || svcs[0] != inner || svcs[1] != root {
		t.Fatalf("Services() = %v", svcs)
	}
}

func TestSignatureCanonicalUnderMirror(t *testing.T) {
	a := NewJoin(NewSource(0), NewSource(1))
	b := NewJoin(NewSource(1), NewSource(0))
	if a.Signature() != b.Signature() {
		t.Fatalf("mirrored joins have different signatures: %q vs %q", a.Signature(), b.Signature())
	}
}

func TestSignatureDistinguishesShapes(t *testing.T) {
	// ((0⋈1)⋈2) vs (0⋈(1⋈2)) are different services.
	a := NewJoin(NewJoin(NewSource(0), NewSource(1)), NewSource(2))
	b := NewJoin(NewSource(0), NewJoin(NewSource(1), NewSource(2)))
	if a.Signature() == b.Signature() {
		t.Fatal("different join shapes share a signature")
	}
}

func TestSignatureDistinguishesSelectivities(t *testing.T) {
	a := NewFilter(NewSource(0), 0.5)
	b := NewFilter(NewSource(0), 0.25)
	if a.Signature() == b.Signature() {
		t.Fatal("filters with different selectivities share a signature")
	}
}

func TestStringRendersOperators(t *testing.T) {
	c := testCatalog(t)
	root := NewAggregate(NewJoin(NewFilter(NewSource(0), 0.5), NewSource(1)), 0.1)
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	s := root.String()
	for _, sub := range []string{"S0", "S1", "⋈", "σ", "γ"} {
		if !strings.Contains(s, sub) {
			t.Fatalf("String() = %q missing %q", s, sub)
		}
	}
	u := NewUnion(NewSource(0), NewSource(1))
	if !strings.Contains(u.String(), "∪") {
		t.Fatalf("union String() = %q", u.String())
	}
}

func TestCloneDeep(t *testing.T) {
	c := testCatalog(t)
	root := NewJoin(NewSource(0), NewSource(1))
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	cp := root.Clone()
	cp.Left.Stream = 3
	if root.Left.Stream != 0 {
		t.Fatal("Clone shares child nodes")
	}
	if cp.OutRate != root.OutRate {
		t.Fatal("Clone lost computed rates")
	}
}

func TestIntermediateRateExcludesSources(t *testing.T) {
	c := testCatalog(t)
	root := NewJoin(NewSource(0), NewSource(1)) // single service
	if err := root.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	if got := root.IntermediateRate(); got != root.OutRate {
		t.Fatalf("IntermediateRate = %v, want %v", got, root.OutRate)
	}
	leaf := NewSource(0)
	if err := leaf.ComputeRates(c); err != nil {
		t.Fatal(err)
	}
	if got := leaf.IntermediateRate(); got != 0 {
		t.Fatalf("leaf IntermediateRate = %v, want 0", got)
	}
}

// signatureSlow is the pre-caching reference implementation: pure
// fmt-based recursion, no interning. The cached fast path must match it
// byte for byte.
func signatureSlow(n *PlanNode) string {
	switch n.Kind {
	case KindSource:
		return fmt.Sprintf("s%d", n.Stream)
	case KindFilter:
		return fmt.Sprintf("filter[%.4g](%s)", n.Sel, signatureSlow(n.Left))
	case KindAggregate:
		return fmt.Sprintf("agg[%.4g](%s)", n.Sel, signatureSlow(n.Left))
	case KindJoin, KindUnion:
		a, b := signatureSlow(n.Left), signatureSlow(n.Right)
		if a > b {
			a, b = b, a
		}
		op := "join"
		if n.Kind == KindUnion {
			op = "union"
		}
		return fmt.Sprintf("%s(%s,%s)", op, a, b)
	default:
		return fmt.Sprintf("?%d", n.Kind)
	}
}

// randomTree builds a random plan tree over distinct streams, exercising
// every node kind and awkward selectivity formattings.
func randomTree(rng *rand.Rand, next *int, depth int) *PlanNode {
	if depth <= 0 || rng.Intn(3) == 0 {
		s := StreamID(*next)
		*next++
		leaf := NewSource(s)
		if rng.Intn(2) == 0 {
			return NewFilter(leaf, selFor(rng))
		}
		return leaf
	}
	switch rng.Intn(4) {
	case 0:
		return NewFilter(randomTree(rng, next, depth-1), selFor(rng))
	case 1:
		return NewAggregate(randomTree(rng, next, depth-1), selFor(rng))
	case 2:
		return NewUnion(randomTree(rng, next, depth-1), randomTree(rng, next, depth-1))
	default:
		return NewJoin(randomTree(rng, next, depth-1), randomTree(rng, next, depth-1))
	}
}

func selFor(rng *rand.Rand) float64 {
	// Mix round values with awkward precision to exercise %.4g edge cases.
	switch rng.Intn(4) {
	case 0:
		return 0.5
	case 1:
		return 1
	case 2:
		return rng.Float64()
	default:
		return rng.Float64() / 1e5 // exponent formatting
	}
}

func TestSignatureMatchesSlowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		next := 0
		n := randomTree(rng, &next, 4)
		want := signatureSlow(n)
		if got := n.Signature(); got != want {
			t.Fatalf("Signature = %q, want %q", got, want)
		}
		// Cached second call and clone must agree.
		if got := n.Signature(); got != want {
			t.Fatalf("cached Signature = %q, want %q", got, want)
		}
		if got := n.Clone().Signature(); got != want {
			t.Fatalf("clone Signature = %q, want %q", got, want)
		}
	}
}

func TestSigInternerSharesAllocations(t *testing.T) {
	a := NewJoin(NewSource(0), NewSource(1))
	b := NewJoin(NewSource(1), NewSource(0)) // mirrored: same canonical sig
	var si SigInterner
	sa, sb := si.Intern(a), si.Intern(b)
	if sa != sb {
		t.Fatalf("interner returned different contents: %q vs %q", sa, sb)
	}
	if signatureSlow(a) != sa {
		t.Fatalf("interned signature %q diverges from reference %q", sa, signatureSlow(a))
	}
}

func TestShallowCloneDropsSignatureCache(t *testing.T) {
	orig := NewJoin(NewSource(0), NewSource(1))
	_ = orig.Signature() // warm the cache
	c := orig.ShallowClone()
	c.Left, c.Right = NewSource(2), NewSource(3)
	want := signatureSlow(c)
	if got := c.Signature(); got != want {
		t.Fatalf("re-parented ShallowClone signature %q, want %q (stale cache?)", got, want)
	}
	if orig.Signature() == c.Signature() {
		t.Fatal("original shares the re-parented clone's signature")
	}
}
