// Package query defines the SBON query model: streams published by pinned
// producers, continuous queries posed by pinned consumers, and logical
// plans — trees of services (operators) that transform the source streams
// into the consumer's result stream.
//
// The model is deliberately agnostic to the data model, like the paper's
// SBON definition: services are characterized by their rate behaviour
// (selectivity) and identity (signature), which is all that plan
// generation, placement, and multi-query reuse need. The stream engine
// (package stream) gives the same operators executable semantics.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/hourglass/sbon/internal/topology"
)

// StreamID identifies a published source stream.
type StreamID int

// QueryID identifies a continuous query.
type QueryID int

// ServiceKind enumerates the operator types a plan can contain.
type ServiceKind uint8

// Service kinds.
const (
	// KindSource is a leaf: the stream as published by its producer.
	KindSource ServiceKind = iota
	// KindFilter drops tuples, keeping a fraction equal to its selectivity.
	KindFilter
	// KindJoin is a windowed two-way stream join.
	KindJoin
	// KindAggregate is a windowed aggregate emitting a reduced stream.
	KindAggregate
	// KindUnion merges two streams without reduction.
	KindUnion
)

// String returns the lower-case kind name.
func (k ServiceKind) String() string {
	switch k {
	case KindSource:
		return "source"
	case KindFilter:
		return "filter"
	case KindJoin:
		return "join"
	case KindAggregate:
		return "aggregate"
	case KindUnion:
		return "union"
	default:
		return fmt.Sprintf("ServiceKind(%d)", uint8(k))
	}
}

// Query is a continuous query: a windowed equi-join over a set of source
// streams, optionally pre-filtered per source and aggregated at the top,
// delivered to a pinned consumer node.
type Query struct {
	ID       QueryID
	Consumer topology.NodeID
	// Streams lists the joined source streams (len >= 1).
	Streams []StreamID
	// FilterSel, if non-nil, gives per-source filter selectivities in
	// (0,1]; sources absent from the map are unfiltered.
	FilterSel map[StreamID]float64
	// AggregateFraction, if > 0, adds a windowed aggregate above the join
	// whose output rate is this fraction of its input rate.
	AggregateFraction float64
}

// Validate reports whether the query is well formed.
func (q Query) Validate() error {
	if len(q.Streams) == 0 {
		return fmt.Errorf("query %d: no source streams", q.ID)
	}
	seen := make(map[StreamID]bool, len(q.Streams))
	for _, s := range q.Streams {
		if seen[s] {
			return fmt.Errorf("query %d: duplicate stream %d", q.ID, s)
		}
		seen[s] = true
	}
	for s, sel := range q.FilterSel {
		if !seen[s] {
			return fmt.Errorf("query %d: filter on stream %d not in query", q.ID, s)
		}
		if sel <= 0 || sel > 1 {
			return fmt.Errorf("query %d: filter selectivity %v on stream %d out of (0,1]", q.ID, sel, s)
		}
	}
	if q.AggregateFraction < 0 || q.AggregateFraction > 1 {
		return fmt.Errorf("query %d: aggregate fraction %v out of [0,1]", q.ID, q.AggregateFraction)
	}
	return nil
}

// Catalog holds the statistics plan generation uses: per-stream data
// rates and producers, and pairwise join selectivities.
//
// Rate model (see DESIGN.md §4): a join's output rate is
// sel(left,right)·(rateL + rateR), where sel is the product of the
// pairwise selectivities across the two sides. This keeps rates in linear
// KB/s units, which is what link-level network usage needs; the
// relational cross-product model has no stable rate unit for unbounded
// streams.
type Catalog struct {
	rates      map[StreamID]float64
	producers  map[StreamID]topology.NodeID
	pairSel    map[[2]StreamID]float64
	defaultSel float64
}

// NewCatalog returns an empty catalog with the given default pairwise
// join selectivity (used for stream pairs without an explicit entry).
func NewCatalog(defaultSel float64) (*Catalog, error) {
	if defaultSel <= 0 {
		return nil, fmt.Errorf("query: default selectivity %v, need > 0", defaultSel)
	}
	return &Catalog{
		rates:      make(map[StreamID]float64),
		producers:  make(map[StreamID]topology.NodeID),
		pairSel:    make(map[[2]StreamID]float64),
		defaultSel: defaultSel,
	}, nil
}

// AddStream registers a source stream with its producer node and data
// rate in KB/s.
func (c *Catalog) AddStream(s StreamID, producer topology.NodeID, rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("query: stream %d rate %v, need > 0", s, rate)
	}
	if _, ok := c.rates[s]; ok {
		return fmt.Errorf("query: stream %d already registered", s)
	}
	c.rates[s] = rate
	c.producers[s] = producer
	return nil
}

// SetPairSelectivity sets the join selectivity between two streams
// (symmetric).
func (c *Catalog) SetPairSelectivity(a, b StreamID, sel float64) error {
	if sel <= 0 {
		return fmt.Errorf("query: selectivity %v for (%d,%d), need > 0", sel, a, b)
	}
	if a > b {
		a, b = b, a
	}
	c.pairSel[[2]StreamID{a, b}] = sel
	return nil
}

// PairSelectivity returns the join selectivity between streams a and b.
func (c *Catalog) PairSelectivity(a, b StreamID) float64 {
	if a > b {
		a, b = b, a
	}
	if sel, ok := c.pairSel[[2]StreamID{a, b}]; ok {
		return sel
	}
	return c.defaultSel
}

// Rate returns the stream's data rate in KB/s (0 if unknown).
func (c *Catalog) Rate(s StreamID) float64 { return c.rates[s] }

// Producer returns the node that publishes stream s.
func (c *Catalog) Producer(s StreamID) (topology.NodeID, bool) {
	n, ok := c.producers[s]
	return n, ok
}

// Streams returns all registered streams in ascending order.
func (c *Catalog) Streams() []StreamID {
	out := make([]StreamID, 0, len(c.rates))
	for s := range c.rates {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// JoinSelectivity returns the selectivity of joining two disjoint stream
// sets: the product of pairwise selectivities across the cut.
func (c *Catalog) JoinSelectivity(left, right []StreamID) float64 {
	sel := 1.0
	for _, a := range left {
		for _, b := range right {
			sel *= c.PairSelectivity(a, b)
		}
	}
	return sel
}

// PlanNode is one node of a logical plan tree. Leaves are sources;
// interior nodes are services. OutRate is the estimated output data rate
// in KB/s, filled by ComputeRates.
type PlanNode struct {
	Kind ServiceKind
	// Stream is set for KindSource leaves.
	Stream StreamID
	// Sel is the operator's rate factor (filter selectivity, join
	// selectivity across the children's stream sets, or aggregate output
	// fraction). Unused for sources.
	Sel float64
	// Left and Right are the children. Filters and aggregates use Left
	// only.
	Left, Right *PlanNode
	// OutRate is the estimated output rate in KB/s.
	OutRate float64

	// sig caches the canonical signature. Plan trees are structurally
	// immutable after construction (ComputeRates fills rates and join
	// selectivities, neither of which enters the signature), so the
	// cache never goes stale; Clone copies it, which is what lets every
	// clone of a subtree share one interned signature string. Code that
	// re-parents a copied node must go through ShallowClone, which
	// drops the cache.
	sig string
}

// NewSource returns a leaf node for stream s.
func NewSource(s StreamID) *PlanNode {
	return &PlanNode{Kind: KindSource, Stream: s}
}

// NewFilter returns a filter over child with the given selectivity.
func NewFilter(child *PlanNode, sel float64) *PlanNode {
	return &PlanNode{Kind: KindFilter, Sel: sel, Left: child}
}

// NewJoin returns a join of the two children; selectivity is filled by
// ComputeRates from the catalog.
func NewJoin(left, right *PlanNode) *PlanNode {
	return &PlanNode{Kind: KindJoin, Left: left, Right: right}
}

// NewAggregate returns an aggregate over child emitting fraction frac of
// its input rate.
func NewAggregate(child *PlanNode, frac float64) *PlanNode {
	return &PlanNode{Kind: KindAggregate, Sel: frac, Left: child}
}

// NewUnion returns a union of the two children.
func NewUnion(left, right *PlanNode) *PlanNode {
	return &PlanNode{Kind: KindUnion, Left: left, Right: right}
}

// Leaves returns the source streams under n in left-to-right order.
func (n *PlanNode) Leaves() []StreamID {
	var out []StreamID
	var walk func(p *PlanNode)
	walk = func(p *PlanNode) {
		if p == nil {
			return
		}
		if p.Kind == KindSource {
			out = append(out, p.Stream)
			return
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(n)
	return out
}

// Services returns all interior (non-source) nodes of the tree in
// post-order.
func (n *PlanNode) Services() []*PlanNode {
	var out []*PlanNode
	var walk func(p *PlanNode)
	walk = func(p *PlanNode) {
		if p == nil || p.Kind == KindSource {
			return
		}
		walk(p.Left)
		walk(p.Right)
		out = append(out, p)
	}
	walk(n)
	return out
}

// ComputeRates fills OutRate (and join selectivities) bottom-up from the
// catalog. It returns an error for unknown streams or malformed shapes.
func (n *PlanNode) ComputeRates(c *Catalog) error {
	switch n.Kind {
	case KindSource:
		r := c.Rate(n.Stream)
		if r <= 0 {
			return fmt.Errorf("query: unknown stream %d in plan", n.Stream)
		}
		n.OutRate = r
		return nil
	case KindFilter, KindAggregate:
		if n.Left == nil || n.Right != nil {
			return fmt.Errorf("query: %s must have exactly one child", n.Kind)
		}
		if err := n.Left.ComputeRates(c); err != nil {
			return err
		}
		if n.Sel <= 0 || n.Sel > 1 {
			return fmt.Errorf("query: %s selectivity %v out of (0,1]", n.Kind, n.Sel)
		}
		n.OutRate = n.Sel * n.Left.OutRate
		return nil
	case KindJoin:
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("query: join must have two children")
		}
		if err := n.Left.ComputeRates(c); err != nil {
			return err
		}
		if err := n.Right.ComputeRates(c); err != nil {
			return err
		}
		n.Sel = c.JoinSelectivity(n.Left.Leaves(), n.Right.Leaves())
		n.OutRate = n.Sel * (n.Left.OutRate + n.Right.OutRate)
		return nil
	case KindUnion:
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("query: union must have two children")
		}
		if err := n.Left.ComputeRates(c); err != nil {
			return err
		}
		if err := n.Right.ComputeRates(c); err != nil {
			return err
		}
		n.Sel = 1
		n.OutRate = n.Left.OutRate + n.Right.OutRate
		return nil
	default:
		return fmt.Errorf("query: unknown kind %v", n.Kind)
	}
}

// Signature returns a canonical string identifying the service and its
// entire upstream sub-plan. Two plan nodes with equal signatures compute
// identical streams, which is the condition for multi-query service reuse
// (§3.4). Join and union children are ordered canonically so mirrored
// trees share a signature.
//
// The result is computed once per node and cached: repeated calls — and
// calls on clones of the node — return the same interned string with no
// allocation, which is what keeps plan enumeration and circuit skeleton
// construction off the allocator.
func (n *PlanNode) Signature() string {
	if n.sig == "" {
		n.sig = string(n.AppendSignature(nil))
	}
	return n.sig
}

// AppendSignature appends n's canonical signature to dst and returns the
// extended slice, filling (and reusing) per-node caches along the way.
// It is the allocation-conscious form of Signature for callers that
// build composite keys.
func (n *PlanNode) AppendSignature(dst []byte) []byte {
	if n.sig != "" {
		return append(dst, n.sig...)
	}
	switch n.Kind {
	case KindSource:
		dst = append(dst, 's')
		return strconv.AppendInt(dst, int64(n.Stream), 10)
	case KindFilter:
		dst = append(dst, "filter["...)
		dst = appendSel(dst, n.Sel)
		dst = append(dst, "]("...)
		dst = n.Left.AppendSignature(dst)
		return append(dst, ')')
	case KindAggregate:
		dst = append(dst, "agg["...)
		dst = appendSel(dst, n.Sel)
		dst = append(dst, "]("...)
		dst = n.Left.AppendSignature(dst)
		return append(dst, ')')
	case KindJoin, KindUnion:
		a, b := n.Left.Signature(), n.Right.Signature()
		if a > b {
			a, b = b, a
		}
		if n.Kind == KindUnion {
			dst = append(dst, "union("...)
		} else {
			dst = append(dst, "join("...)
		}
		dst = append(dst, a...)
		dst = append(dst, ',')
		dst = append(dst, b...)
		return append(dst, ')')
	default:
		return fmt.Appendf(dst, "?%d", n.Kind)
	}
}

// appendSel formats a selectivity exactly like fmt's %.4g, which the
// signature format is pinned to.
func appendSel(dst []byte, sel float64) []byte {
	return strconv.AppendFloat(dst, sel, 'g', 4, 64)
}

// SigInterner deduplicates signature strings by content: plan
// enumeration constructs the same logical subtrees over and over across
// candidate trees, and interning collapses all their signature caches
// onto one allocation per distinct signature.
type SigInterner struct {
	tab map[string]string
	buf []byte
}

// Intern fills n's (and its descendants') signature caches, reusing an
// existing allocation when an equal signature was interned before, and
// returns the signature.
func (si *SigInterner) Intern(n *PlanNode) string {
	if n.sig != "" {
		return n.sig
	}
	if n.Left != nil {
		si.Intern(n.Left)
	}
	if n.Right != nil {
		si.Intern(n.Right)
	}
	si.buf = n.AppendSignature(si.buf[:0])
	if si.tab == nil {
		si.tab = make(map[string]string)
	}
	if s, ok := si.tab[string(si.buf)]; ok {
		n.sig = s
	} else {
		s := string(si.buf)
		si.tab[s] = s
		n.sig = s
	}
	return n.sig
}

// String renders the plan tree in infix form for logs.
func (n *PlanNode) String() string {
	var b strings.Builder
	var walk func(p *PlanNode)
	walk = func(p *PlanNode) {
		switch p.Kind {
		case KindSource:
			fmt.Fprintf(&b, "S%d", p.Stream)
		case KindFilter:
			fmt.Fprintf(&b, "σ[%.2g](", p.Sel)
			walk(p.Left)
			b.WriteString(")")
		case KindAggregate:
			fmt.Fprintf(&b, "γ[%.2g](", p.Sel)
			walk(p.Left)
			b.WriteString(")")
		case KindJoin:
			b.WriteString("(")
			walk(p.Left)
			b.WriteString(" ⋈ ")
			walk(p.Right)
			b.WriteString(")")
		case KindUnion:
			b.WriteString("(")
			walk(p.Left)
			b.WriteString(" ∪ ")
			walk(p.Right)
			b.WriteString(")")
		}
	}
	walk(n)
	return b.String()
}

// Clone returns a deep copy of the plan tree. The copy shares the
// original's cached signature strings (structure is identical, so they
// stay correct — interning for free).
func (n *PlanNode) Clone() *PlanNode {
	if n == nil {
		return nil
	}
	out := *n
	out.Left = n.Left.Clone()
	out.Right = n.Right.Clone()
	return &out
}

// ShallowClone copies the node without children and with the signature
// cache dropped — the only safe way to duplicate a node that will be
// re-parented over different children (plan rewriting does this).
func (n *PlanNode) ShallowClone() *PlanNode {
	out := *n
	out.Left, out.Right = nil, nil
	out.sig = ""
	return &out
}

// IntermediateRate returns the total estimated data rate of all service
// outputs (the network-oblivious plan cost traditional optimizers
// minimize). Source leaf rates are excluded: they are identical across
// all plans for the same query.
func (n *PlanNode) IntermediateRate() float64 {
	var sum float64
	for _, s := range n.Services() {
		sum += s.OutRate
	}
	return sum
}
