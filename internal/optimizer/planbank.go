package optimizer

import (
	"fmt"
	"hash/fnv"
	"math"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// PlanBank implements the dynamic-plans alternative the paper contrasts
// integration with (§2.3, citing Graefe & Ward [13]): "pre-calculate and
// store plans and sub-plans in the database. At compile time, each plan
// is generated with a different set of network assumptions. Then, when an
// expected query is issued, the optimizer examines current network state
// and tries to find the pre-computed plan that best matches current
// conditions."
//
// Compile optimizes the query under K hypothetical network states
// (deterministically jittered latency models) and stores the distinct
// winning plans. Lookup places only those banked plans against current
// conditions — cheaper than full integration, but "limited in that the
// optimizer must guess which future node and network states are relevant
// and worth pre-calculation": if no banked plan matches reality, the
// result is suboptimal. The integrated optimizer never does worse under
// the same selection model, which is the paper's argument.
type PlanBank struct {
	Env *Env
	// Placer/Mapper/Model default like Integrated's.
	Placer placement.VirtualPlacer
	Mapper placement.Mapper
	Model  LatencyModel

	banks map[query.QueryID][]*query.PlanNode
}

// NewPlanBank returns an empty bank over the environment.
func NewPlanBank(env *Env) *PlanBank {
	return &PlanBank{Env: env, banks: make(map[query.QueryID][]*query.PlanNode)}
}

// JitteredLatency perturbs a base latency model with deterministic
// per-pair factors in [1-Amount, 1+Amount] — one hypothetical future
// network state per seed.
type JitteredLatency struct {
	Base   LatencyModel
	Seed   uint64
	Amount float64
}

// Latency implements LatencyModel.
func (j JitteredLatency) Latency(a, b topology.NodeID) float64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	var buf [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(a))
	put(8, uint64(b))
	put(16, j.Seed)
	h.Write(buf[:])
	// Uniform in [1-Amount, 1+Amount).
	u := float64(h.Sum64()>>11) / float64(1<<53)
	factor := 1 + (2*u-1)*j.Amount
	return j.Base.Latency(a, b) * factor
}

// Name implements LatencyModel.
func (j JitteredLatency) Name() string {
	return fmt.Sprintf("jitter(%s,seed=%d,±%.0f%%)", j.Base.Name(), j.Seed, j.Amount*100)
}

func (pb *PlanBank) components() (placement.VirtualPlacer, placement.Mapper, LatencyModel) {
	inner := &Integrated{Env: pb.Env, Placer: pb.Placer, Mapper: pb.Mapper, Model: pb.Model}
	_, placer, mapper, model := inner.components()
	return placer, mapper, model
}

// Compile precomputes plans for the query under `states` hypothetical
// network conditions (jitter amount `amount`, e.g. 0.5), storing the
// distinct winners. It returns the number of distinct plans banked.
func (pb *PlanBank) Compile(q query.Query, states int, amount float64) (int, error) {
	if states < 1 {
		return 0, fmt.Errorf("optimizer: PlanBank.Compile states = %d", states)
	}
	if amount < 0 {
		amount = -amount
	}
	placer, mapper, model := pb.components()
	seen := make(map[string]bool)
	var banked []*query.PlanNode
	for k := 0; k < states; k++ {
		scenario := JitteredLatency{Base: model, Seed: uint64(k) + 1, Amount: amount}
		res, err := (&Integrated{
			Env: pb.Env, Placer: placer, Mapper: mapper, Model: scenario,
		}).Optimize(q)
		if err != nil {
			return 0, err
		}
		sig := res.Circuit.Plan.Signature()
		if !seen[sig] {
			seen[sig] = true
			banked = append(banked, res.Circuit.Plan.Clone())
		}
	}
	pb.banks[q.ID] = banked
	return len(banked), nil
}

// BankedPlans returns the number of distinct plans stored for a query.
func (pb *PlanBank) BankedPlans(id query.QueryID) int { return len(pb.banks[id]) }

// Optimize answers the query using only its banked plans: each is placed
// under current conditions and the cheapest circuit wins. Returns an
// error if the query was never compiled.
func (pb *PlanBank) Optimize(q query.Query) (*Result, error) {
	banked := pb.banks[q.ID]
	if len(banked) == 0 {
		return nil, fmt.Errorf("optimizer: query %d has no banked plans; call Compile first", q.ID)
	}
	placer, mapper, model := pb.components()
	b := &Builder{Env: pb.Env}
	res := &Result{PlansConsidered: len(banked)}
	res.EstimatedUsage = math.Inf(1)
	for _, p := range banked {
		// Re-derive rates: statistics may have drifted since compile.
		cp := p.Clone()
		if err := cp.ComputeRates(pb.Env.Stats); err != nil {
			return nil, err
		}
		circuit, stats, err := buildPlaceMap(b, q, cp, placer, mapper)
		if err != nil {
			return nil, err
		}
		res.CircuitsConsidered++
		if usage := circuit.NetworkUsage(model); usage < res.EstimatedUsage {
			res.Circuit = circuit
			res.EstimatedUsage = usage
			res.MapStats = stats
		}
	}
	return res, nil
}
