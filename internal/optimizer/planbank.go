package optimizer

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// UncostedUsage is the sentinel EstimatedUsage of a Result that has not
// costed any circuit yet. It is +Inf (declared as a variable because Go
// has no untyped infinite constant); always test with IsUncosted rather
// than comparing against a literal math.Inf(1), so a cache or bank hit
// can never mistake an uncosted entry for a real estimate.
var UncostedUsage = math.Inf(1)

// IsUncosted reports whether an EstimatedUsage value is the UncostedUsage
// sentinel rather than a real circuit estimate.
func IsUncosted(usage float64) bool { return math.IsInf(usage, 1) }

// PlanBank implements the dynamic-plans alternative the paper contrasts
// integration with (§2.3, citing Graefe & Ward [13]): "pre-calculate and
// store plans and sub-plans in the database. At compile time, each plan
// is generated with a different set of network assumptions. Then, when an
// expected query is issued, the optimizer examines current network state
// and tries to find the pre-computed plan that best matches current
// conditions."
//
// Compile optimizes the query under K hypothetical network states
// (deterministically jittered latency models) and stores the distinct
// winning plans. Lookup places only those banked plans against current
// conditions — cheaper than full integration, but "limited in that the
// optimizer must guess which future node and network states are relevant
// and worth pre-calculation": if no banked plan matches reality, the
// result is suboptimal. The integrated optimizer never does worse under
// the same selection model, which is the paper's argument.
type PlanBank struct {
	Env *Env
	// Placer/Mapper/Model default like Integrated's.
	Placer placement.VirtualPlacer
	Mapper placement.Mapper
	Model  LatencyModel

	banks map[query.QueryID][]*query.PlanNode
}

// NewPlanBank returns an empty bank over the environment.
func NewPlanBank(env *Env) *PlanBank {
	return &PlanBank{Env: env, banks: make(map[query.QueryID][]*query.PlanNode)}
}

// JitteredLatency perturbs a base latency model with deterministic
// per-pair factors in [1-Amount, 1+Amount] — one hypothetical future
// network state per seed.
type JitteredLatency struct {
	Base   LatencyModel
	Seed   uint64
	Amount float64
}

// Latency implements LatencyModel.
func (j JitteredLatency) Latency(a, b topology.NodeID) float64 {
	if a > b {
		a, b = b, a
	}
	h := fnv.New64a()
	var buf [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(a))
	put(8, uint64(b))
	put(16, j.Seed)
	h.Write(buf[:])
	// Uniform in [1-Amount, 1+Amount).
	u := float64(h.Sum64()>>11) / float64(1<<53)
	factor := 1 + (2*u-1)*j.Amount
	return j.Base.Latency(a, b) * factor
}

// Name implements LatencyModel.
func (j JitteredLatency) Name() string {
	return fmt.Sprintf("jitter(%s,seed=%d,±%.0f%%)", j.Base.Name(), j.Seed, j.Amount*100)
}

func (pb *PlanBank) components() (placement.VirtualPlacer, placement.Mapper, LatencyModel) {
	inner := &Integrated{Env: pb.Env, Placer: pb.Placer, Mapper: pb.Mapper, Model: pb.Model}
	_, placer, mapper, model := inner.components()
	return placer, mapper, model
}

// Compile precomputes plans for the query under `states` hypothetical
// network conditions (jitter amount `amount`, e.g. 0.5), storing the
// distinct winners. It returns the number of distinct plans banked.
func (pb *PlanBank) Compile(q query.Query, states int, amount float64) (int, error) {
	if states < 1 {
		return 0, fmt.Errorf("optimizer: PlanBank.Compile states = %d", states)
	}
	if amount < 0 {
		amount = -amount
	}
	placer, mapper, model := pb.components()
	seen := make(map[string]bool)
	var banked []*query.PlanNode
	for k := 0; k < states; k++ {
		scenario := JitteredLatency{Base: model, Seed: uint64(k) + 1, Amount: amount}
		res, err := (&Integrated{
			Env: pb.Env, Placer: placer, Mapper: mapper, Model: scenario,
		}).Optimize(q)
		if err != nil {
			return 0, err
		}
		sig := res.Circuit.Plan.Signature()
		if !seen[sig] {
			seen[sig] = true
			banked = append(banked, res.Circuit.Plan.Clone())
		}
	}
	pb.banks[q.ID] = banked
	return len(banked), nil
}

// BankedPlans returns the number of distinct plans stored for a query.
func (pb *PlanBank) BankedPlans(id query.QueryID) int { return len(pb.banks[id]) }

// Optimize answers the query using only its banked plans: each is placed
// under current conditions and the cheapest circuit wins. Returns an
// error if the query was never compiled.
func (pb *PlanBank) Optimize(q query.Query) (*Result, error) {
	banked := pb.banks[q.ID]
	if len(banked) == 0 {
		return nil, fmt.Errorf("optimizer: query %d has no banked plans; call Compile first", q.ID)
	}
	placer, mapper, model := pb.components()
	b := &Builder{Env: pb.Env}
	res := &Result{PlansConsidered: len(banked)}
	res.EstimatedUsage = UncostedUsage
	for _, p := range banked {
		// Re-derive rates: statistics may have drifted since compile.
		cp := p.Clone()
		if err := cp.ComputeRates(pb.Env.Stats); err != nil {
			return nil, err
		}
		circuit, stats, err := buildPlaceMap(b, q, cp, placer, mapper)
		if err != nil {
			return nil, err
		}
		res.CircuitsConsidered++
		if usage := circuit.NetworkUsage(model); usage < res.EstimatedUsage {
			res.Circuit = circuit
			res.EstimatedUsage = usage
			res.MapStats = stats
		}
	}
	if IsUncosted(res.EstimatedUsage) {
		return nil, fmt.Errorf("optimizer: query %d produced no costed circuit from %d banked plans", q.ID, len(banked))
	}
	return res, nil
}

// PlanCacheKey identifies one cached optimization outcome: the query's
// consumer node, the canonical encoding of its stream set (including
// per-stream filters and the aggregate fraction, which change the plan
// space), and the Hilbert cell of the consumer's cost-space point at
// optimization time. The cell ties the entry to the network conditions
// it was computed under: within one environment epoch it is implied by
// the consumer, but it makes entries from a different environment (or a
// cache mistakenly shared across Envs) unable to collide with live
// lookups, since a different topology or load state puts the same
// consumer in a different cell.
type PlanCacheKey struct {
	Consumer topology.NodeID
	Streams  string
	Cell     uint64
}

// CanonicalStreams encodes the parts of a query that determine its plan
// space — sorted stream IDs with filter selectivities, plus the aggregate
// fraction — so queries listing the same streams in different orders share
// a cache key.
func CanonicalStreams(q query.Query) string {
	ids := append([]query.StreamID(nil), q.Streams...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, s := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
		if sel, ok := q.FilterSel[s]; ok {
			fmt.Fprintf(&b, "[%.6g]", sel)
		}
	}
	if q.AggregateFraction > 0 {
		fmt.Fprintf(&b, "|agg=%.6g", q.AggregateFraction)
	}
	return b.String()
}

// gridCellKey hashes a cost-space point quantized onto a fixed grid —
// the cell key fallback for environments built without a DHT catalog
// (no Hilbert curve or bounds exist there). Ordering along the curve is
// irrelevant for a hash key; only the cell partition matters.
func gridCellKey(p costspace.Point) uint64 {
	// 4 coordinate units (≈4 ms) per cell: comparable to the resolution
	// of the default 16-bit Hilbert grid over a wide-area latency range.
	const cellSize = 4.0
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range p {
		cell := int64(math.Floor(c / cellSize))
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(cell) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// PlanCache memoizes winning logical plans across optimizations. Unlike
// PlanBank — which speculatively precompiles plans for hypothetical
// futures — the cache records the plan that actually won a full
// integrated optimization, keyed by PlanCacheKey, and answers later
// lookups for the same (consumer, stream set, network-conditions cell)
// with that plan so only placement has to be re-run.
//
// The cache is pinned to one environment's mutation epoch: KeyFor
// flushes every entry when the snapshot's Epoch differs from the one the
// entries were populated under. A plan enumerated under superseded
// conditions (any load change, deploy, or re-embedding bumps the epoch)
// is therefore never served — which keeps batch results identical to
// what sequential Optimize would produce on the current state — and the
// cache's size stays bounded by the distinct keys of the current epoch
// instead of accumulating dead cells forever. Use one cache per Env.
//
// All methods are safe for concurrent use; OptimizeBatch workers share
// one cache.
type PlanCache struct {
	mu    sync.RWMutex
	epoch uint64
	plans map[PlanCacheKey]*query.PlanNode

	hits atomic.Int64
	miss atomic.Int64
}

// NewPlanCache returns an empty concurrent plan cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[PlanCacheKey]*query.PlanNode)}
}

// KeyFor builds the cache key for the query under the snapshot's current
// conditions, flushing the cache first if the environment was mutated
// since the entries were stored.
func (pc *PlanCache) KeyFor(s *Snapshot, q query.Query) PlanCacheKey {
	pc.syncEpoch(s.epoch)
	return PlanCacheKey{
		Consumer: q.Consumer,
		Streams:  CanonicalStreams(q),
		Cell:     s.CellKey(q.Consumer),
	}
}

// syncEpoch discards all entries when the environment's mutation epoch
// has moved past the one they were populated under.
func (pc *PlanCache) syncEpoch(epoch uint64) {
	pc.mu.RLock()
	same := pc.epoch == epoch
	pc.mu.RUnlock()
	if same {
		return
	}
	pc.mu.Lock()
	if pc.epoch != epoch {
		pc.epoch = epoch
		pc.plans = make(map[PlanCacheKey]*query.PlanNode)
	}
	pc.mu.Unlock()
}

// Get returns a private clone of the cached plan for the key, or nil on a
// miss. Lookups take only the read lock (counters are atomic) and the
// clone is taken outside it (stored plans are immutable once Put), so
// concurrent hits neither serialize on the map nor on tree copying.
func (pc *PlanCache) Get(k PlanCacheKey) *query.PlanNode {
	pc.mu.RLock()
	p, ok := pc.plans[k]
	pc.mu.RUnlock()
	if !ok {
		pc.miss.Add(1)
		return nil
	}
	pc.hits.Add(1)
	return p.Clone()
}

// Put stores a clone of the winning plan under the key. Existing entries
// are overwritten (last winner wins; entries for the same key are
// equivalent by construction).
func (pc *PlanCache) Put(k PlanCacheKey, p *query.PlanNode) {
	if p == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.plans[k] = p.Clone()
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.plans)
}

// Stats returns the cumulative hit and miss counts.
func (pc *PlanCache) Stats() (hits, misses int) {
	return int(pc.hits.Load()), int(pc.miss.Load())
}
