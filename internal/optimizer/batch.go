package optimizer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hourglass/sbon/internal/query"
)

// BatchOptions configures OptimizeBatch.
type BatchOptions struct {
	// Workers is the number of concurrent optimizer goroutines (default
	// GOMAXPROCS, capped at the number of queries).
	Workers int
	// Cache is the plan cache shared by the batch's workers. Nil means a
	// private cache is created for the batch (so repeated queries within
	// it still reuse plans) unless NoCache is set.
	Cache *PlanCache
	// NoCache disables plan caching entirely: every query runs the full
	// integrated optimization.
	NoCache bool
}

// OptimizeBatch runs the integrated optimizer over many queries
// concurrently. All workers share one frozen snapshot of the environment
// (Env.Freeze), so the whole batch is optimized against a single
// consistent view of coordinates, loads, and the catalog with no
// locking on the read path, and the live Env remains free to mutate
// afterwards without invalidating anything the batch computed.
//
// Queries whose (consumer, canonical stream set, cost-space Hilbert cell)
// key hits the plan cache skip plan enumeration: the previously winning
// logical plan is re-placed under the snapshot's conditions, which yields
// a circuit identical to the full optimization whenever the key matches
// exactly (the full path is deterministic for a fixed snapshot). Cache
// hits report PlansConsidered == 1 and FromCache == true; their Circuit
// and EstimatedUsage match the sequential Optimize result.
//
// Results are returned in query order. The first optimization error
// aborts the batch and is returned; remaining work is skipped.
//
// The live Env must not be mutated (Deploy, Cancel, SetBackgroundLoad,
// Reoptimize, ReembedCoordinates, statistics-catalog changes) while
// OptimizeBatch runs: the snapshot copies the coordinate arrays but
// shares the DHT catalog and statistics catalog with the live
// environment.
func OptimizeBatch(env *Env, queries []query.Query, opts BatchOptions) ([]Result, error) {
	if env == nil {
		return nil, fmt.Errorf("optimizer: OptimizeBatch on nil env")
	}
	results := make([]Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	cache := opts.Cache
	if cache == nil && !opts.NoCache {
		cache = NewPlanCache()
	}
	if opts.NoCache {
		cache = nil
	}

	snap := env.Freeze()
	// Build the snapshot's k-NN index up front: workers then share one
	// immutable index lock-free instead of racing to build duplicates on
	// first use.
	snap.CostIndex()

	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			opt := NewIntegrated(snap)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) || stop.Load() {
					return
				}
				res, err := optimizeOne(snap, opt, cache, queries[i])
				if err != nil {
					fail(fmt.Errorf("optimizer: batch query %d (index %d): %w", queries[i].ID, i, err))
					return
				}
				results[i] = *res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// optimizeOne answers one batch query: from the plan cache when the key
// hits, with the full integrated optimization otherwise (feeding the
// cache with the winner).
func optimizeOne(snap *Env, opt *Integrated, cache *PlanCache, q query.Query) (*Result, error) {
	if cache == nil {
		return opt.Optimize(q)
	}
	key := cache.KeyFor(snap.Snapshot, q)
	if p := cache.Get(key); p != nil {
		return placeCachedPlan(opt, q, p)
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	cache.Put(key, res.Circuit.Plan)
	return res, nil
}

// placeCachedPlan skips enumeration and runs only the placement pipeline
// for a plan that previously won the full optimization of an equivalent
// query under the same environment epoch. The plan is still re-rated
// against current statistics and re-placed against the snapshot, so the
// circuit always reflects the state the batch was frozen over. It runs
// on the calling worker's optimizer so the builder's scratch problem
// graph is reused across the whole batch.
func placeCachedPlan(opt *Integrated, q query.Query, p *query.PlanNode) (*Result, error) {
	env := opt.Env
	_, placer, mapper, model := opt.components()
	if err := p.ComputeRates(env.Stats); err != nil {
		return nil, err
	}
	circuit, stats, err := buildPlaceMap(opt.builder(), q, p, placer, mapper)
	if err != nil {
		return nil, err
	}
	usage := circuit.NetworkUsage(model)
	if IsUncosted(usage) {
		return nil, fmt.Errorf("optimizer: cached plan for query %d produced an uncosted circuit", q.ID)
	}
	return &Result{
		Circuit:            circuit,
		PlansConsidered:    1,
		CircuitsConsidered: 1,
		EstimatedUsage:     usage,
		MapStats:           stats,
		FromCache:          true,
	}, nil
}
