package optimizer

import (
	"fmt"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
)

// Result is the outcome of optimizing one query.
type Result struct {
	Circuit *Circuit
	// PlansConsidered is the number of candidate logical plans examined.
	PlansConsidered int
	// CircuitsConsidered is the number of fully placed candidate circuits
	// costed (integrated: one per plan; two-step: one).
	CircuitsConsidered int
	// EstimatedUsage is the selection-time network usage under the
	// optimizer's latency model.
	EstimatedUsage float64
	// MapStats aggregates physical-mapping effort for the chosen circuit.
	MapStats placement.MapStats
	// ReusedServices counts services satisfied by existing instances
	// (multi-query optimization only).
	ReusedServices int
	// InstancesExamined counts registry/DHT entries inspected during
	// reuse search (the §3.4 pruning work metric).
	InstancesExamined int
	// FromCache marks results answered from a PlanCache hit (batch
	// optimization): plan enumeration was skipped and only placement ran.
	FromCache bool
}

// Integrated is the paper's optimizer (§3.3): every candidate plan is
// virtually placed and physically mapped, yielding one candidate circuit
// per plan; the cheapest circuit under the latency model wins.
type Integrated struct {
	Env *Env
	// Enum generates candidate plans. Defaults to a fresh enumerator over
	// Env.Stats when nil.
	Enum *plan.Enumerator
	// Placer performs virtual placement (default Relaxation).
	Placer placement.VirtualPlacer
	// Mapper performs physical mapping (default: DHT mapper when the env
	// has a catalog, else the oracle).
	Mapper placement.Mapper
	// Model is the latency model used to select among candidates
	// (default CoordLatency — what a decentralized node can know).
	Model LatencyModel

	// b is the reusable circuit builder: its scratch problem graph is
	// recycled across every candidate plan this optimizer places, so an
	// Integrated is single-goroutine (batch workers each own one).
	b *Builder
}

// NewIntegrated returns an integrated optimizer with default components.
func NewIntegrated(env *Env) *Integrated {
	return &Integrated{Env: env}
}

func (o *Integrated) components() (*plan.Enumerator, placement.VirtualPlacer, placement.Mapper, LatencyModel) {
	enum := o.Enum
	if enum == nil {
		enum = plan.NewEnumerator(o.Env.Stats)
	}
	placer := o.Placer
	if placer == nil {
		placer = placement.Relaxation{}
	}
	mapper := o.Mapper
	if mapper == nil {
		if cat := o.Env.Catalog(); cat != nil {
			mapper = placement.DHTMapper{Catalog: cat}
		} else {
			mapper = placement.OracleMapper{Source: o.Env}
		}
	}
	model := o.Model
	if model == nil {
		model = CoordLatency{Env: o.Env}
	}
	return enum, placer, mapper, model
}

// builder returns the optimizer's reusable Builder, creating it on first
// use.
func (o *Integrated) builder() *Builder {
	if o.b == nil {
		o.b = &Builder{Env: o.Env}
	}
	return o.b
}

// Optimize performs full circuit optimization for the query and returns
// the best circuit without deploying it.
func (o *Integrated) Optimize(q query.Query) (*Result, error) {
	enum, placer, mapper, model := o.components()
	plans, err := enum.Enumerate(q)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("optimizer: no plans for query %d", q.ID)
	}
	res := &Result{PlansConsidered: len(plans)}
	b := o.builder()
	for _, p := range plans {
		circuit, stats, err := buildPlaceMap(b, q, p, placer, mapper)
		if err != nil {
			return nil, err
		}
		usage := circuit.NetworkUsage(model)
		res.CircuitsConsidered++
		if res.Circuit == nil || usage < res.EstimatedUsage {
			res.Circuit = circuit
			res.EstimatedUsage = usage
			res.MapStats = stats
		}
	}
	return res, nil
}

// buildPlaceMap runs the skeleton → virtual placement → physical mapping
// pipeline for one plan.
func buildPlaceMap(b *Builder, q query.Query, p *query.PlanNode, placer placement.VirtualPlacer, mapper placement.Mapper) (*Circuit, placement.MapStats, error) {
	circuit, err := b.Skeleton(q, p, nil)
	if err != nil {
		return nil, placement.MapStats{}, err
	}
	if err := b.PlaceVirtual(circuit, placer); err != nil {
		return nil, placement.MapStats{}, err
	}
	stats, err := b.MapPhysical(circuit, mapper)
	if err != nil {
		return nil, placement.MapStats{}, err
	}
	return circuit, stats, nil
}

// TwoStep is the classical baseline (§2.3): plan generation ignores the
// network entirely (cheapest plan by intermediate data rate), and only
// then is that single plan placed — using exactly the same placement
// machinery as the integrated optimizer, so the comparison isolates the
// integration itself.
type TwoStep struct {
	Env    *Env
	Enum   *plan.Enumerator
	Placer placement.VirtualPlacer
	Mapper placement.Mapper
	Model  LatencyModel
}

// NewTwoStep returns a two-step optimizer with default components.
func NewTwoStep(env *Env) *TwoStep {
	return &TwoStep{Env: env}
}

// Optimize picks the statistics-optimal plan, then places it.
func (o *TwoStep) Optimize(q query.Query) (*Result, error) {
	inner := &Integrated{Env: o.Env, Enum: o.Enum, Placer: o.Placer, Mapper: o.Mapper, Model: o.Model}
	enum, placer, mapper, model := inner.components()
	best, err := enum.Best(q)
	if err != nil {
		return nil, err
	}
	circuit, stats, err := buildPlaceMap(inner.builder(), q, best, placer, mapper)
	if err != nil {
		return nil, err
	}
	return &Result{
		Circuit:            circuit,
		PlansConsidered:    1,
		CircuitsConsidered: 1,
		EstimatedUsage:     circuit.NetworkUsage(model),
		MapStats:           stats,
	}, nil
}
