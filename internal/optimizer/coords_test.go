package optimizer

import (
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// coordsFixture embeds coordinates the way X17 does: a ticker-style
// gossip embedding over sparse-latency lookups, never touching the
// dense matrix.
func coordsFixture(t *testing.T) (*topology.Topology, []vivaldi.Coord) {
	t.Helper()
	topo := topology.MustGenerate(topology.DefaultConfig(), rand.New(rand.NewSource(11)))
	if err := topo.EnableSparseLatency(); err != nil {
		t.Fatalf("EnableSparseLatency: %v", err)
	}
	emb, err := vivaldi.Embed(topo.NumNodes(), func(i, j int) float64 {
		return topo.Latency(topology.NodeID(i), topology.NodeID(j))
	}, vivaldi.DefaultConfig(), 30, 4, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	return topo, emb.Coords
}

func pointsEqual(a, b costspace.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewEnvFromCoords(t *testing.T) {
	topo, coords := coordsFixture(t)
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	env, err := NewEnvFromCoords(topo, stats, DefaultEnvConfig(13), coords)
	if err != nil {
		t.Fatalf("NewEnvFromCoords: %v", err)
	}
	if got := len(env.NodeIDs()); got != topo.NumNodes() {
		t.Fatalf("env has %d nodes, topo %d", got, topo.NumNodes())
	}
	if q := env.EmbeddingQuality; q.Pairs == 0 || q.MedianRelErr <= 0 || q.MedianRelErr > 1 {
		t.Fatalf("implausible embedding quality: %+v", q)
	}
	if env.Catalog() == nil {
		t.Fatal("UseDHT config produced no catalog")
	}
	// The sparse path must not have materialized a dense matrix as a
	// side effect; deterministic rebuild sanity: same inputs, same env.
	env2, err := NewEnvFromCoords(topo, stats, DefaultEnvConfig(13), coords)
	if err != nil {
		t.Fatalf("NewEnvFromCoords (second): %v", err)
	}
	for i, id := range env.NodeIDs() {
		if !pointsEqual(env.Point(id), env2.Point(id)) {
			t.Fatalf("node %d: points differ across identical constructions", i)
		}
	}
}

func TestSetCoordinates(t *testing.T) {
	topo, coords := coordsFixture(t)
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatalf("NewCatalog: %v", err)
	}
	env, err := NewEnvFromCoords(topo, stats, DefaultEnvConfig(13), coords)
	if err != nil {
		t.Fatalf("NewEnvFromCoords: %v", err)
	}

	// Identical coordinates: a no-op sync, no epoch churn.
	before := env.Epoch()
	if n, err := env.SetCoordinates(coords); err != nil || n != 0 {
		t.Fatalf("no-op SetCoordinates = (%d, %v), want (0, nil)", n, err)
	}
	if env.Epoch() != before {
		t.Fatal("no-op SetCoordinates bumped the epoch")
	}

	// Move two coordinates: exactly those nodes refresh and dirty.
	moved := append([]vivaldi.Coord(nil), coords...)
	moved[3] = moved[3].Add(vivaldi.Coord{1, 1})
	moved[7] = moved[7].Add(vivaldi.Coord{-2, 0.5})
	sinceEpoch := env.Epoch()
	n, err := env.SetCoordinates(moved)
	if err != nil || n != 2 {
		t.Fatalf("SetCoordinates = (%d, %v), want (2, nil)", n, err)
	}
	if env.Epoch() == sinceEpoch {
		t.Fatal("SetCoordinates did not bump the epoch")
	}
	dirty := env.DirtySince(sinceEpoch)
	ids := map[topology.NodeID]bool{}
	for _, d := range dirty {
		ids[d.Node] = true
		if d.LoadOnly {
			t.Fatalf("coordinate move logged LoadOnly for node %d", d.Node)
		}
	}
	if !ids[3] || !ids[7] {
		t.Fatalf("dirty log %v missing moved nodes 3 and 7", dirty)
	}
	// Points must reflect the new coordinates (and the catalog republish
	// answers from them).
	p := env.Point(3)
	if got := env.Space().NewPoint(moved[3], []float64{env.Load(3)}); !pointsEqual(got, p) {
		t.Fatalf("node 3 point %v not rebuilt from new coord (want %v)", p, got)
	}

	// Length mismatch rejected.
	if _, err := env.SetCoordinates(moved[:5]); err == nil {
		t.Fatal("short coords accepted")
	}

	// Frozen snapshots must refuse the mutator.
	defer func() {
		if recover() == nil {
			t.Fatal("SetCoordinates on a frozen Env did not panic")
		}
	}()
	_, _ = env.Freeze().SetCoordinates(moved)
}
