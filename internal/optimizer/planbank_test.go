package optimizer

import (
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/topology"
)

func topologyID(i int) topology.NodeID { return topology.NodeID(i) }

func TestPlanBankCompileAndOptimize(t *testing.T) {
	env, q := testSetup(t, 50, false)
	truth := TrueLatency{Topo: env.Topo}
	mapper := placement.OracleMapper{Source: env}

	pb := NewPlanBank(env)
	pb.Mapper = mapper
	pb.Model = truth

	n, err := pb.Compile(q, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("banked %d plans", n)
	}
	if got := pb.BankedPlans(q.ID); got != n {
		t.Fatalf("BankedPlans = %d, want %d", got, n)
	}
	res, err := pb.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Circuit.Validate(); err != nil {
		t.Fatalf("invalid circuit: %v", err)
	}
	if res.PlansConsidered != n {
		t.Fatalf("considered %d plans, want the %d banked", res.PlansConsidered, n)
	}
}

// The paper's argument: the bank can only contain a subset of the plans
// integration considers, so under the same selection model integrated is
// never worse, and two-step (one plan, chosen blind) is never better
// than a bank that includes the rate-optimal plan among its states.
func TestPlanBankBracketedByIntegratedAndTwoStep(t *testing.T) {
	for seed := int64(60); seed < 66; seed++ {
		env, q := testSetup(t, seed, false)
		truth := TrueLatency{Topo: env.Topo}
		mapper := placement.OracleMapper{Source: env}

		pb := NewPlanBank(env)
		pb.Mapper = mapper
		pb.Model = truth
		if _, err := pb.Compile(q, 6, 0.5); err != nil {
			t.Fatal(err)
		}
		bank, err := pb.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		integ, err := (&Integrated{Env: env, Mapper: mapper, Model: truth}).Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		ub := bank.Circuit.NetworkUsage(truth)
		ui := integ.Circuit.NetworkUsage(truth)
		if ui > ub+1e-9 {
			t.Fatalf("seed %d: integrated %v worse than plan bank %v", seed, ui, ub)
		}
	}
}

func TestPlanBankUncompiledQuery(t *testing.T) {
	env, q := testSetup(t, 51, false)
	pb := NewPlanBank(env)
	if _, err := pb.Optimize(q); err == nil {
		t.Fatal("uncompiled query accepted")
	}
	if _, err := pb.Compile(q, 0, 0.5); err == nil {
		t.Fatal("states=0 accepted")
	}
}

func TestJitteredLatencyProperties(t *testing.T) {
	env, _ := testSetup(t, 52, false)
	base := TrueLatency{Topo: env.Topo}
	j := JitteredLatency{Base: base, Seed: 3, Amount: 0.4}
	if j.Name() == "" {
		t.Fatal("empty name")
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			na, nb := topologyID(a), topologyID(b)
			l1 := j.Latency(na, nb)
			l2 := j.Latency(nb, na) // symmetric
			if l1 != l2 {
				t.Fatalf("jitter asymmetric for (%d,%d)", a, b)
			}
			bl := base.Latency(na, nb)
			if l1 < bl*0.6-1e-9 || l1 > bl*1.4+1e-9 {
				t.Fatalf("jittered latency %v outside ±40%% of %v", l1, bl)
			}
			// Deterministic per seed.
			if l1 != (JitteredLatency{Base: base, Seed: 3, Amount: 0.4}).Latency(na, nb) {
				t.Fatal("jitter not deterministic")
			}
			// Different seeds differ somewhere.
		}
	}
	other := JitteredLatency{Base: base, Seed: 4, Amount: 0.4}
	same := true
	for a := 0; a < 10 && same; a++ {
		for b := a + 1; b < 10; b++ {
			if other.Latency(topologyID(a), topologyID(b)) != j.Latency(topologyID(a), topologyID(b)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}
