package optimizer

import (
	"runtime"
	"testing"
	"time"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// batchQueries builds a workload of queries with overlapping stream sets
// and varied consumers over the 4-stream test catalog.
func batchQueries(env *Env, n int) []query.Query {
	stubs := env.Topo.StubNodeIDs()
	sets := [][]query.StreamID{
		{0, 1}, {1, 2}, {2, 3}, {0, 2},
		{0, 1, 2}, {1, 2, 3}, {0, 1, 2, 3},
	}
	qs := make([]query.Query, n)
	for i := range qs {
		qs[i] = query.Query{
			ID:       query.QueryID(i + 1),
			Consumer: stubs[(i*3)%len(stubs)],
			Streams:  append([]query.StreamID(nil), sets[i%len(sets)]...),
		}
	}
	return qs
}

// circuitsEqual compares the service→node binding, plan shape, and
// estimated usage of two optimization results.
func circuitsEqual(t *testing.T, i int, got, want *Result) {
	t.Helper()
	gc, wc := got.Circuit, want.Circuit
	if gc.Plan.Signature() != wc.Plan.Signature() {
		t.Fatalf("query %d: plan %s, want %s", i, gc.Plan.Signature(), wc.Plan.Signature())
	}
	if len(gc.Services) != len(wc.Services) {
		t.Fatalf("query %d: %d services, want %d", i, len(gc.Services), len(wc.Services))
	}
	for s := range gc.Services {
		if gc.Services[s].Node != wc.Services[s].Node {
			t.Fatalf("query %d service %d: node %d, want %d",
				i, s, gc.Services[s].Node, wc.Services[s].Node)
		}
	}
	if got.EstimatedUsage != want.EstimatedUsage {
		t.Fatalf("query %d: estimated usage %v, want %v", i, got.EstimatedUsage, want.EstimatedUsage)
	}
}

func TestOptimizeBatchMatchesSequential(t *testing.T) {
	for _, useDHT := range []bool{true, false} {
		env, _ := testSetup(t, 7, useDHT)
		qs := batchQueries(env, 40) // overlapping sets, repeated keys

		seq := make([]*Result, len(qs))
		for i, q := range qs {
			res, err := NewIntegrated(env).Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			seq[i] = res
		}

		for _, noCache := range []bool{false, true} {
			got, err := OptimizeBatch(env, qs, BatchOptions{Workers: 4, NoCache: noCache})
			if err != nil {
				t.Fatalf("useDHT=%v noCache=%v: %v", useDHT, noCache, err)
			}
			if len(got) != len(qs) {
				t.Fatalf("got %d results, want %d", len(got), len(qs))
			}
			for i := range got {
				circuitsEqual(t, i, &got[i], seq[i])
			}
		}
	}
}

func TestOptimizeBatchCacheHits(t *testing.T) {
	env, q := testSetup(t, 3, true)
	qs := make([]query.Query, 16)
	for i := range qs {
		qs[i] = q
		qs[i].ID = query.QueryID(i + 1)
	}
	cache := NewPlanCache()
	got, err := OptimizeBatch(env, qs, BatchOptions{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits == 0 {
		t.Fatalf("identical repeated queries produced no cache hits (misses=%d)", misses)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries for one distinct query, want 1", cache.Len())
	}
	// Every cache-hit result must be bit-identical to the full result.
	full := -1
	for i := range got {
		if !got[i].FromCache {
			full = i
			break
		}
	}
	if full < 0 {
		t.Fatal("no full (non-cached) optimization in the batch")
	}
	sawHit := false
	for i := range got {
		circuitsEqual(t, i, &got[i], &got[full])
		if got[i].FromCache {
			sawHit = true
			if got[i].PlansConsidered != 1 {
				t.Fatalf("cache hit reports %d plans considered, want 1", got[i].PlansConsidered)
			}
		}
	}
	if !sawHit {
		t.Fatal("no result marked FromCache despite cache hits")
	}
}

// The acceptance bar for the batch path: a 1k-query workload (overlapping
// shapes, repeated keys) must run ≥2x faster than the sequential Optimize
// loop. The margin comes from the plan cache on any core count and from
// the worker pool on multi-core machines; observed speedups are ~5-10x,
// so the 2x threshold has wide headroom against timing noise.
func TestOptimizeBatch1kSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation skews wall-clock ratios")
	}
	env, _ := testSetup(t, 21, true)
	qs := batchQueries(env, 1000)

	startSeq := time.Now()
	for _, q := range qs {
		if _, err := NewIntegrated(env).Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	seq := time.Since(startSeq)

	startBatch := time.Now()
	if _, err := OptimizeBatch(env, qs, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	batch := time.Since(startBatch)

	speedup := seq.Seconds() / batch.Seconds()
	t.Logf("sequential %v, batch %v, speedup %.2fx (GOMAXPROCS=%d)",
		seq, batch, speedup, runtime.GOMAXPROCS(0))
	if speedup < 2 {
		t.Fatalf("batch speedup %.2fx < 2x (sequential %v, batch %v)", speedup, seq, batch)
	}
}

func TestOptimizeBatchErrors(t *testing.T) {
	env, q := testSetup(t, 5, false)
	bad := q
	bad.Streams = []query.StreamID{99} // not in catalog
	if _, err := OptimizeBatch(env, []query.Query{q, bad, q}, BatchOptions{Workers: 3}); err == nil {
		t.Fatal("batch with an unoptimizable query returned nil error")
	}
	res, err := OptimizeBatch(env, nil, BatchOptions{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	if _, err := OptimizeBatch(nil, []query.Query{q}, BatchOptions{}); err == nil {
		t.Fatal("nil env accepted")
	}
}

func TestFreezeIsolatesSnapshot(t *testing.T) {
	env, _ := testSetup(t, 9, true)
	node := topology.NodeID(3)
	snap := env.Freeze()
	if !snap.Frozen() || env.Frozen() {
		t.Fatalf("Frozen(): snap=%v env=%v, want true/false", snap.Frozen(), env.Frozen())
	}

	beforePt := snap.Point(node).Clone()
	beforeLoad := snap.Load(node)
	env.AddServiceLoad(node, 2000) // mutate the live env only
	if env.Load(node) == beforeLoad {
		t.Fatal("live env load unchanged after AddServiceLoad")
	}
	if snap.Load(node) != beforeLoad {
		t.Fatalf("snapshot load moved with the live env: %v != %v", snap.Load(node), beforeLoad)
	}
	if snap.Space().Distance(beforePt, snap.Point(node)) != 0 {
		t.Fatal("snapshot point moved with the live env")
	}

	for name, f := range map[string]func(){
		"SetBackgroundLoad":  func() { snap.SetBackgroundLoad(node, 0.1) },
		"AddServiceLoad":     func() { snap.AddServiceLoad(node, 10) },
		"RemoveServiceLoad":  func() { snap.RemoveServiceLoad(node, 10) },
		"ReembedCoordinates": func() { _ = snap.ReembedCoordinates() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on frozen env did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPlanCacheKeyCanonicalization(t *testing.T) {
	env, _ := testSetup(t, 11, true)
	pc := NewPlanCache()
	stubs := env.Topo.StubNodeIDs()
	a := query.Query{ID: 1, Consumer: stubs[0], Streams: []query.StreamID{2, 0, 1}}
	b := query.Query{ID: 2, Consumer: stubs[0], Streams: []query.StreamID{0, 1, 2}}
	if pc.KeyFor(env.Snapshot, a) != pc.KeyFor(env.Snapshot, b) {
		t.Fatal("stream order changed the cache key")
	}
	c := b
	c.FilterSel = map[query.StreamID]float64{1: 0.5}
	if pc.KeyFor(env.Snapshot, b) == pc.KeyFor(env.Snapshot, c) {
		t.Fatal("filter selectivity did not change the cache key")
	}
	d := b
	d.AggregateFraction = 0.25
	if pc.KeyFor(env.Snapshot, b) == pc.KeyFor(env.Snapshot, d) {
		t.Fatal("aggregate fraction did not change the cache key")
	}
	e := b
	e.Consumer = stubs[1]
	if pc.KeyFor(env.Snapshot, b) == pc.KeyFor(env.Snapshot, e) {
		t.Fatal("consumer did not change the cache key")
	}

	// Moving the consumer's point to another Hilbert cell must change
	// the key: load is a cost-space dimension, so a large load delta
	// relocates the cell.
	before := pc.KeyFor(env.Snapshot, b)
	env.SetBackgroundLoad(stubs[0], 0.95)
	if after := pc.KeyFor(env.Snapshot, b); after == before {
		t.Fatal("large consumer load change did not change the cache cell")
	}
}

// Mutating the environment between batches must flush the plan cache:
// plans enumerated under superseded conditions may no longer be the
// winners, and serving them would break the batch-equals-sequential
// guarantee.
func TestPlanCacheEpochFlush(t *testing.T) {
	env, q := testSetup(t, 17, true)
	qs := make([]query.Query, 8)
	for i := range qs {
		qs[i] = q
		qs[i].ID = query.QueryID(i + 1)
	}
	cache := NewPlanCache()
	if _, err := OptimizeBatch(env, qs, BatchOptions{Workers: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("first batch populated no cache entries")
	}

	// Overload every node that hosted the winner's unpinned services, so
	// the old plan's placement conditions are thoroughly superseded.
	seq0, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seq0.Circuit.UnpinnedServices() {
		env.SetBackgroundLoad(s.Node, 0.99)
	}

	seq, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeBatch(env, qs, BatchOptions{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].FromCache {
		t.Fatal("first query after a mutation was served from the stale cache")
	}
	for i := range got {
		circuitsEqual(t, i, &got[i], seq)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after epoch flush + repopulation, want 1", cache.Len())
	}
}

func TestPlanCacheCloneSemantics(t *testing.T) {
	env, q := testSetup(t, 13, false)
	res, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanCache()
	k := pc.KeyFor(env.Snapshot, q)
	if pc.Get(k) != nil {
		t.Fatal("empty cache returned a plan")
	}
	pc.Put(k, res.Circuit.Plan)
	got := pc.Get(k)
	if got == nil {
		t.Fatal("cache miss after Put")
	}
	if got == res.Circuit.Plan {
		t.Fatal("cache returned the caller's plan pointer, not a clone")
	}
	got.OutRate = -1 // mutating the returned clone must not poison the cache
	if again := pc.Get(k); again.OutRate == -1 {
		t.Fatal("mutation of a returned plan leaked into the cache")
	}
	hits, misses := pc.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestUncostedSentinel(t *testing.T) {
	if !IsUncosted(UncostedUsage) {
		t.Fatal("IsUncosted(UncostedUsage) = false")
	}
	if IsUncosted(0) || IsUncosted(1e300) {
		t.Fatal("IsUncosted true for a real estimate")
	}
}
