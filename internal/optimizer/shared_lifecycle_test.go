package optimizer

import (
	"math"
	"strings"
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// sharedDep deploys one owner circuit plus nConsumers circuits that
// each reuse the owner's root instance, returning the deployment, the
// shared instance, and the owner's executing service index.
func sharedDep(t *testing.T, seed int64, nConsumers int) (*Env, *Deployment, *ServiceInstance, int) {
	t.Helper()
	env, q := testSetup(t, seed, false)
	reg := NewRegistry()
	dep := NewDeployment(env, reg)
	opt := &Integrated{Env: env, Mapper: placement.OracleMapper{Source: env}}

	owner := q
	owner.ID = 1
	owner.Streams = []query.StreamID{0, 1}
	res, err := opt.Optimize(owner)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	rootSig := res.Circuit.Root().Signature
	var inst *ServiceInstance
	for _, i := range reg.Instances() {
		if i.Signature == rootSig {
			inst = i
		}
	}
	if inst == nil {
		t.Fatalf("owner deployment registered no instance for %q", rootSig)
	}

	b := &Builder{Env: env}
	stubs := env.Topo.StubNodeIDs()
	for k := 0; k < nConsumers; k++ {
		cq := owner
		cq.ID = query.QueryID(2 + k)
		cq.Consumer = stubs[(3+5*k)%len(stubs)]
		cc, err := b.Skeleton(cq, res.Circuit.Plan, func(n *query.PlanNode) *ServiceInstance {
			if n.Signature() == inst.Signature {
				return inst
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Deploy(cc); err != nil {
			t.Fatal(err)
		}
	}

	ownerSvc := -1
	for i, s := range res.Circuit.Services {
		if !s.Reused && s.Signature == inst.Signature && s.Plan != nil {
			ownerSvc = i
		}
	}
	if ownerSvc < 0 {
		t.Fatal("owner circuit has no executing service for the instance")
	}
	return env, dep, inst, ownerSvc
}

// requireNoStaleReuse is the acceptance invariant: after any migration,
// every circuit that reuses an instance must agree with the instance on
// its node — no stale placement anywhere.
func requireNoStaleReuse(t *testing.T, dep *Deployment) {
	t.Helper()
	for id, c := range dep.Circuits() {
		for i, s := range c.Services {
			if s.Reused && s.ReusedFrom != nil && s.Node != s.ReusedFrom.Node {
				t.Fatalf("q%d service %d placed on %d but instance lives on %d (stale reuse placement)",
					id, i, s.Node, s.ReusedFrom.Node)
			}
		}
	}
}

// TestSharedCommitRebindsConsumers pins the stale-placement regression:
// committing a migration of a shared instance must re-bind the
// placement of every consumer circuit, not just the owner and the
// registry entry.
func TestSharedCommitRebindsConsumers(t *testing.T) {
	env, dep, inst, ownerSvc := sharedDep(t, 11, 2)
	ownerC, _ := dep.Circuit(1)
	from := inst.Node
	var to topology.NodeID
	for _, n := range env.Topo.StubNodeIDs() {
		if n != from {
			to = n
			break
		}
	}
	ticket, err := dep.BeginMigration(Migration{
		Query: 1, Service: ownerSvc, From: from, To: to,
		InRate: ownerC.Services[ownerSvc].InRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ticket.Commit(); err != nil {
		t.Fatal(err)
	}
	if inst.Node != to {
		t.Fatalf("instance on %d after commit, want %d", inst.Node, to)
	}
	if len(inst.Coord) == 0 || env.Space().Distance(inst.Coord, env.Point(to)) != 0 {
		t.Fatalf("instance coordinate not re-bound to node %d's point", to)
	}
	// Consumers' latency accounting reads the instance's recorded
	// upstream latency; it must be recomputed against the new host, not
	// left at the value captured when the owner deployed.
	wantUp := upstreamLatency(ownerC, ownerC.Services[ownerSvc], TrueLatency{Topo: env.Topo})
	if math.Abs(inst.UpstreamLatency-wantUp) > 1e-12 {
		t.Fatalf("instance UpstreamLatency = %v after commit, want %v recomputed at node %d",
			inst.UpstreamLatency, wantUp, to)
	}
	for _, id := range []query.QueryID{2, 3} {
		c, _ := dep.Circuit(id)
		for i, s := range c.Services {
			if s.Reused && s.Node != to {
				t.Fatalf("consumer q%d service %d still bound to %d, want %d", id, i, s.Node, to)
			}
		}
	}
	requireNoStaleReuse(t, dep)
}

// TestBeginMigrationRejectsReused pins the non-owner guard: a plan move
// naming a consumer circuit's reused service must be refused even when
// the service is (incorrectly) unpinned.
func TestBeginMigrationRejectsReused(t *testing.T) {
	env, dep, inst, _ := sharedDep(t, 12, 1)
	consC, _ := dep.Circuit(2)
	reusedIdx := -1
	for i, s := range consC.Services {
		if s.Reused {
			reusedIdx = i
		}
	}
	if reusedIdx < 0 {
		t.Fatal("consumer has no reused service")
	}
	consC.Services[reusedIdx].Pinned = false // simulate a buggy builder
	_, err := dep.BeginMigration(Migration{
		Query: 2, Service: reusedIdx, From: inst.Node,
		To: env.Topo.StubNodeIDs()[0], InRate: inst.InRate,
	})
	if err == nil || !strings.Contains(err.Error(), "owner") {
		t.Fatalf("BeginMigration = %v, want non-owner rejection", err)
	}
}

// TestSweepsSkipReusedServices bars re-optimization sweeps from ever
// proposing a move of a service the circuit does not own, even when the
// reused service is unpinned and its host is overloaded bait.
func TestSweepsSkipReusedServices(t *testing.T) {
	env, dep, inst, _ := sharedDep(t, 13, 2)
	for id := query.QueryID(2); id <= 3; id++ {
		c, _ := dep.Circuit(id)
		for _, s := range c.Services {
			if s.Reused {
				s.Pinned = false
			}
		}
	}
	env.SetBackgroundLoad(inst.Node, 5.0) // make the host repellent

	ro := NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	plan, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	evac, err := ro.PlanEvacuation(map[topology.NodeID]bool{inst.Node: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, moves := range [][]Migration{plan.Moves, evac.Moves} {
		for _, m := range moves {
			c, _ := dep.Circuit(m.Query)
			if c.Services[m.Service].Reused {
				t.Fatalf("sweep proposed moving reused service q%d/%d", m.Query, m.Service)
			}
		}
	}
	// The consumers' reused leaves sit on the victim, but only the
	// owner's executing service should appear in the evacuation plan.
	for _, m := range evac.Moves {
		if m.Query != 1 {
			t.Fatalf("evacuation plans a move for consumer q%d; instance moves belong to the owner", m.Query)
		}
	}
	if evac.Unmovable != 0 {
		t.Fatalf("evacuation counted %d unmovable; reused leaves move with their owner", evac.Unmovable)
	}
}

// TestCancelOwnerTransfersOwnership walks the full shared-instance
// lifecycle out of order: the owner cancels first, ownership hops to
// each surviving consumer in turn, and only the last release tears the
// instance down and returns its load.
func TestCancelOwnerTransfersOwnership(t *testing.T) {
	env, dep, inst, _ := sharedDep(t, 14, 2)
	node := inst.Node
	loadBefore := env.Load(node)

	if inst.RefCount != 3 {
		t.Fatalf("RefCount = %d, want 3 (owner + 2 consumers)", inst.RefCount)
	}
	if err := dep.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if inst.RefCount != 2 {
		t.Fatalf("RefCount after owner cancel = %d, want 2", inst.RefCount)
	}
	if inst.Owner != 2 {
		t.Fatalf("ownership handed to q%d, want lowest surviving consumer q2", inst.Owner)
	}
	found := false
	for _, i := range dep.Registry.Instances() {
		if i == inst {
			found = true
		}
	}
	if !found {
		t.Fatal("instance unregistered while consumers remain")
	}
	if got := env.Load(node); got < loadBefore-1e-12 {
		t.Fatalf("instance load released early: %v -> %v", loadBefore, got)
	}

	if err := dep.Cancel(2); err != nil {
		t.Fatal(err)
	}
	if inst.RefCount != 1 || inst.Owner != 3 {
		t.Fatalf("after second cancel: RefCount=%d Owner=%d, want 1/q3", inst.RefCount, inst.Owner)
	}

	if err := dep.Cancel(3); err != nil {
		t.Fatal(err)
	}
	if inst.RefCount != 0 {
		t.Fatalf("RefCount after last release = %d", inst.RefCount)
	}
	for _, i := range dep.Registry.Instances() {
		if i == inst {
			t.Fatal("instance still registered after last release")
		}
	}
	if dep.Registry.Len() != 0 {
		t.Fatalf("registry holds %d instances after all cancels", dep.Registry.Len())
	}
	// Every circuit gone: every node's load must be back at background.
	requireBackgroundLoads(t, env)
}

// TestCancelConsumerFirst is the in-order half of the lifecycle:
// consumers release before the owner, and the owner's final cancel
// tears the instance down.
func TestCancelConsumerFirst(t *testing.T) {
	env, dep, inst, _ := sharedDep(t, 15, 2)
	if err := dep.Cancel(3); err != nil {
		t.Fatal(err)
	}
	if inst.RefCount != 2 || inst.Owner != 1 {
		t.Fatalf("after consumer cancel: RefCount=%d Owner=%d, want 2/q1", inst.RefCount, inst.Owner)
	}
	if err := dep.Cancel(2); err != nil {
		t.Fatal(err)
	}
	if err := dep.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if dep.Registry.Len() != 0 {
		t.Fatalf("registry holds %d instances after all cancels", dep.Registry.Len())
	}
	requireBackgroundLoads(t, env)
}

// requireBackgroundLoads asserts every node's load has returned to its
// background component (within float add/remove round-trip residue).
func requireBackgroundLoads(t *testing.T, env *Env) {
	t.Helper()
	for _, n := range env.NodeIDs() {
		if got, want := env.Load(n), env.base[n]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("node %d load %v after teardown, want background %v", n, got, want)
		}
	}
}
