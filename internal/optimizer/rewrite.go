package optimizer

import (
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
)

// RewriteStats reports one plan-rewriting sweep.
type RewriteStats struct {
	CircuitsEvaluated int
	VariantsCosted    int
	Rewrites          int
}

// RewriteStep performs the paper's limited plan re-writing (§3.3):
// for every deployed circuit it explores one-step join reorderings of
// the running plan, places each variant through the normal virtual
// placement + mapping pipeline, and swaps the circuit when a variant
// improves estimated network usage by more than the improvement
// threshold. Circuits that reuse services of other circuits are skipped:
// rewriting them would change streams other consumers depend on.
//
// The swap uses the deployment's cancel/deploy path, i.e. the paper's
// "new parallel circuit is deployed, cancelling the original less ideal
// circuit".
func (r *Reoptimizer) RewriteStep() (RewriteStats, error) {
	placer, mapper, model, thresh := r.components()
	var stats RewriteStats
	env := r.Dep.Env
	b := &Builder{Env: env}

	// Snapshot IDs: the map mutates during swaps.
	ids := make([]query.QueryID, 0, len(r.Dep.circuits))
	for id := range r.Dep.circuits {
		ids = append(ids, id)
	}
	for _, id := range ids {
		c, ok := r.Dep.Circuit(id)
		if !ok {
			continue
		}
		if hasReuse(c) {
			continue
		}
		stats.CircuitsEvaluated++
		oldUsage := c.NetworkUsage(model)

		var best *Circuit
		bestUsage := oldUsage
		for _, variant := range plan.Rotations(c.Plan) {
			if err := variant.ComputeRates(env.Stats); err != nil {
				return stats, err
			}
			cand, _, err := buildPlaceMap(b, c.Query, variant, placer, mapper)
			if err != nil {
				return stats, err
			}
			stats.VariantsCosted++
			if u := cand.NetworkUsage(model); u < bestUsage {
				best, bestUsage = cand, u
			}
		}
		if best == nil || bestUsage >= oldUsage*(1-thresh) {
			continue
		}
		if err := r.Dep.Cancel(id); err != nil {
			return stats, err
		}
		if err := r.Dep.Deploy(best); err != nil {
			return stats, err
		}
		stats.Rewrites++
	}
	return stats, nil
}

// hasReuse reports whether the circuit depends on shared instances.
func hasReuse(c *Circuit) bool {
	for _, s := range c.Services {
		if s.Reused {
			return true
		}
	}
	return false
}
