package optimizer

import (
	"sort"
	"sync"

	"github.com/hourglass/sbon/internal/costindex"
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// ServiceInstance is one deployed, shareable service: the physical
// realization of a plan subtree, discoverable by signature and cost-space
// coordinate.
type ServiceInstance struct {
	Signature string
	Node      topology.NodeID
	// Coord is the host's cost-space point at registration time (the
	// coordinate the paper stores in the Hilbert DHT). It is re-bound by
	// Registry.UpdateInstance when the instance migrates.
	Coord costspace.Point
	// OutRate is the instance's output rate in KB/s.
	OutRate float64
	// InRate is the instance's summed input rate in KB/s (drives load
	// accounting when the instance is released).
	InRate float64
	// UpstreamLatency is the measured max producer→instance latency in
	// the owning circuit, used for consumer-latency accounting of
	// circuits that reuse this instance.
	UpstreamLatency float64
	// Owner is the query whose deployment created the instance — or, if
	// that query cancelled while consumers remained, the surviving
	// consumer the deployment handed ownership to.
	Owner query.QueryID
	// RefCount counts circuits currently consuming the instance
	// (including the owner).
	RefCount int
}

// indexMinInstances is the registry size below which radius queries
// stay on the linear scan: rebuilding the spatial index after every
// Register would cost more than it prunes while the instance population
// is small.
const indexMinInstances = 64

// Registry tracks shareable service instances. It stands in for the
// paper's service entries in the Hilbert DHT: queries are answered by
// cost-space region, and the work metric counts every instance inspected
// in the region, matching the §3.4 pruning model.
//
// A Registry is safe for concurrent use: lookups take a read lock and
// mutations a write lock, so batch-optimization workers can share one
// registry while circuits deploy and cancel. Radius queries over large
// populations are answered by an epoch-versioned exact cost-space index
// (internal/costindex) rebuilt lazily after mutations — the same
// invalidation discipline as the optimizer's plan cache — with results
// and examined counts identical to the linear scan they replace.
type Registry struct {
	mu    sync.RWMutex
	bySig map[string][]*ServiceInstance
	all   []*ServiceInstance
	// epoch counts mutations (register, unregister, instance moves);
	// the spatial index is valid only while its version matches.
	epoch uint64

	// idx is the lazily built exact index over idxAll's coordinates;
	// idxAll snapshots the instance list the index ids refer to, and
	// idxSpace the cost space it was built in. All three are replaced
	// wholesale under mu and read lock-free once fetched.
	idx      *costindex.Index
	idxAll   []*ServiceInstance
	idxSpace *costspace.Space
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{bySig: make(map[string][]*ServiceInstance)}
}

// Register adds an instance.
func (r *Registry) Register(inst *ServiceInstance) {
	r.mu.Lock()
	r.bySig[inst.Signature] = append(r.bySig[inst.Signature], inst)
	r.all = append(r.all, inst)
	r.epoch++
	r.mu.Unlock()
}

// Unregister removes an instance.
func (r *Registry) Unregister(inst *ServiceInstance) {
	r.mu.Lock()
	sigs := r.bySig[inst.Signature]
	for i, s := range sigs {
		if s == inst {
			r.bySig[inst.Signature] = append(sigs[:i], sigs[i+1:]...)
			break
		}
	}
	if len(r.bySig[inst.Signature]) == 0 {
		delete(r.bySig, inst.Signature)
	}
	for i, s := range r.all {
		if s == inst {
			r.all = append(r.all[:i], r.all[i+1:]...)
			break
		}
	}
	r.epoch++
	r.mu.Unlock()
}

// UpdateInstance re-binds a migrated instance to its new node and
// coordinate under the registry lock, so concurrent radius queries
// never observe a torn write and the spatial index is invalidated.
func (r *Registry) UpdateInstance(inst *ServiceInstance, node topology.NodeID, coord costspace.Point) {
	r.mu.Lock()
	inst.Node = node
	inst.Coord = coord
	r.epoch++
	r.mu.Unlock()
}

// Len returns the number of registered instances.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.all)
}

// Instances returns a copy of the registered instances.
func (r *Registry) Instances() []*ServiceInstance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*ServiceInstance(nil), r.all...)
}

// FindWithinRadius returns instances with the given signature whose
// coordinates lie within cost-space radius of target, nearest first
// (ties by lowest node id). The examined count includes *every*
// instance in the radius regardless of signature — the optimizer work
// the radius prunes (§3.4: "the optimizer will then process circuits
// that fall within this region").
//
// Small registries are scanned linearly; past indexMinInstances the
// query runs against the cost-space index, with identical matches and
// examined counts (the index's radius search is inclusive and
// distance-exact, like the scan).
func (r *Registry) FindWithinRadius(space *costspace.Space, target costspace.Point, radius float64, sig string) (matches []*ServiceInstance, examined int) {
	r.mu.RLock()
	if len(r.all) < indexMinInstances {
		defer r.mu.RUnlock()
		return findLinear(space, r.all, target, radius, sig)
	}
	idx, insts := r.idx, r.idxAll
	fresh := idx != nil && r.idxSpace == space && idx.Version() == r.epoch
	r.mu.RUnlock()
	if !fresh {
		idx, insts = r.rebuildIndex(space)
	}

	hits := idx.WithinRadius(target, radius, nil, nil)
	examined = len(hits)
	type cand struct {
		inst *ServiceInstance
		dist float64
	}
	// Signature is immutable, but Node is written by UpdateInstance
	// under the lock — take the read lock back for the filter and
	// tie-break so the sort never races a concurrent instance move.
	r.mu.RLock()
	var cands []cand
	for _, h := range hits {
		if inst := insts[h.ID]; inst.Signature == sig {
			cands = append(cands, cand{inst, h.Dist})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].inst.Node < cands[j].inst.Node
	})
	r.mu.RUnlock()
	matches = make([]*ServiceInstance, len(cands))
	for i, c := range cands {
		matches[i] = c.inst
	}
	return matches, examined
}

// rebuildIndex (re)builds the spatial index over the current instance
// population, snapshotting the list the index ids refer to.
func (r *Registry) rebuildIndex(space *costspace.Space) (*costindex.Index, []*ServiceInstance) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.idx != nil && r.idxSpace == space && r.idx.Version() == r.epoch {
		return r.idx, r.idxAll
	}
	insts := append([]*ServiceInstance(nil), r.all...)
	pts := make([]costspace.Point, len(insts))
	for i, inst := range insts {
		pts[i] = inst.Coord
	}
	r.idx = costindex.Build(space, pts, r.epoch)
	r.idxAll = insts
	r.idxSpace = space
	return r.idx, r.idxAll
}

// findLinear is the reference radius scan the index path must match
// exactly; it stays the live path for small registries and pins the
// identity tests.
func findLinear(space *costspace.Space, all []*ServiceInstance, target costspace.Point, radius float64, sig string) (matches []*ServiceInstance, examined int) {
	for _, inst := range all {
		if space.Distance(target, inst.Coord) <= radius {
			examined++
			if inst.Signature == sig {
				matches = append(matches, inst)
			}
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		di := space.Distance(target, matches[i].Coord)
		dj := space.Distance(target, matches[j].Coord)
		if di != dj {
			return di < dj
		}
		return matches[i].Node < matches[j].Node
	})
	return matches, examined
}
