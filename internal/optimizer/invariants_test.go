package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
)

// TestDeploymentInvariantsUnderRandomOps drives the deployment through a
// random interleaving of multi-query deploys, cancels, migration sweeps,
// and plan rewrites, checking global invariants after every operation and
// full cleanliness after draining — the bookkeeping the rest of the
// system (loads, registry, shared services) depends on.
func TestDeploymentInvariantsUnderRandomOps(t *testing.T) {
	for seed := int64(70); seed < 74; seed++ {
		env, base := testSetup(t, seed, false)
		rng := rand.New(rand.NewSource(seed))
		mapper := placement.OracleMapper{Source: env}
		truth := TrueLatency{Topo: env.Topo}

		// Snapshot background loads to verify full release at the end.
		initialLoads := make([]float64, env.Topo.NumNodes())
		for i := range initialLoads {
			initialLoads[i] = env.Load(topologyID(i))
		}

		reg := NewRegistry()
		dep := NewDeployment(env, reg)
		mq := &MultiQuery{Env: env, Registry: reg, Radius: 80, Mapper: mapper}
		ro := NewReoptimizer(dep)
		ro.Mapper = mapper

		var deployed []query.QueryID
		nextID := query.QueryID(100)

		checkInvariants := func(op string) {
			t.Helper()
			for _, inst := range reg.Instances() {
				if inst.RefCount < 1 {
					t.Fatalf("seed %d after %s: instance %s refcount %d", seed, op, inst.Signature, inst.RefCount)
				}
			}
			for _, id := range deployed {
				c, ok := dep.Circuit(id)
				if !ok {
					t.Fatalf("seed %d after %s: circuit %d vanished", seed, op, id)
				}
				if err := c.Validate(); err != nil {
					t.Fatalf("seed %d after %s: circuit %d invalid: %v", seed, op, id, err)
				}
				for _, s := range c.Services {
					if s.Reused && s.ReusedFrom.RefCount < 1 {
						t.Fatalf("seed %d after %s: reused instance dangling", seed, op)
					}
				}
			}
			if u := dep.TotalUsage(truth); u < 0 || math.IsNaN(u) {
				t.Fatalf("seed %d after %s: total usage %v", seed, op, u)
			}
			for i := range initialLoads {
				if env.Load(topologyID(i)) < initialLoads[i]-1e-9 {
					t.Fatalf("seed %d after %s: node %d load fell below background", seed, op, i)
				}
			}
		}

		for step := 0; step < 40; step++ {
			switch op := rng.Intn(4); {
			case op == 0 || len(deployed) == 0: // deploy
				q := base
				q.ID = nextID
				nextID++
				q.Streams = base.Streams[:1+rng.Intn(len(base.Streams))]
				q.Consumer = env.Topo.StubNodeIDs()[rng.Intn(len(env.Topo.StubNodeIDs()))]
				res, err := mq.Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				if err := dep.Deploy(res.Circuit); err != nil {
					t.Fatal(err)
				}
				deployed = append(deployed, q.ID)
				checkInvariants("deploy")
			case op == 1: // cancel a random circuit
				i := rng.Intn(len(deployed))
				if err := dep.Cancel(deployed[i]); err != nil {
					t.Fatal(err)
				}
				deployed = append(deployed[:i], deployed[i+1:]...)
				checkInvariants("cancel")
			case op == 2: // migration sweep
				if _, err := ro.Step(); err != nil {
					t.Fatal(err)
				}
				checkInvariants("reopt")
			default: // rewrite sweep
				if _, err := ro.RewriteStep(); err != nil {
					t.Fatal(err)
				}
				// Rewrites replace circuits in place under the same IDs.
				checkInvariants("rewrite")
			}
		}

		// Drain everything: the world must return to its initial state.
		for _, id := range deployed {
			if err := dep.Cancel(id); err != nil {
				t.Fatal(err)
			}
		}
		if reg.Len() != 0 {
			t.Fatalf("seed %d: %d instances left after drain", seed, reg.Len())
		}
		if dep.NumDeployed() != 0 {
			t.Fatalf("seed %d: %d circuits left after drain", seed, dep.NumDeployed())
		}
		if u := dep.TotalUsage(truth); u != 0 {
			t.Fatalf("seed %d: usage %v after drain", seed, u)
		}
		for i := range initialLoads {
			if math.Abs(env.Load(topologyID(i))-initialLoads[i]) > 1e-6 {
				t.Fatalf("seed %d: node %d load %v, want background %v",
					seed, i, env.Load(topologyID(i)), initialLoads[i])
			}
		}
	}
}
