package optimizer

import (
	"fmt"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
)

// MultiQuery optimizes queries against the population of already-running
// circuits (§3.4): candidate plans may satisfy subtrees by reusing
// existing service instances found within cost-space radius Radius of the
// subtree's virtually placed coordinate.
type MultiQuery struct {
	Env      *Env
	Registry *Registry
	// Radius is the pruning radius r in cost-space units (≈ms). Zero
	// disables reuse entirely; +Inf searches everything (full MQO).
	Radius float64

	Enum   *plan.Enumerator
	Placer placement.VirtualPlacer
	Mapper placement.Mapper
	Model  LatencyModel
}

// NewMultiQuery returns a multi-query optimizer with default components.
func NewMultiQuery(env *Env, reg *Registry, radius float64) *MultiQuery {
	return &MultiQuery{Env: env, Registry: reg, Radius: radius}
}

// Optimize returns the cheapest circuit for q, considering both fresh
// placement and reuse of registered instances. The returned circuit is
// not yet deployed (see Deployment).
func (o *MultiQuery) Optimize(q query.Query) (*Result, error) {
	if o.Registry == nil {
		return nil, fmt.Errorf("optimizer: MultiQuery has no registry")
	}
	inner := &Integrated{Env: o.Env, Enum: o.Enum, Placer: o.Placer, Mapper: o.Mapper, Model: o.Model}
	enum, placer, mapper, model := inner.components()
	plans, err := enum.Enumerate(q)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("optimizer: no plans for query %d", q.ID)
	}
	b := inner.builder()
	res := &Result{PlansConsidered: len(plans)}
	for _, p := range plans {
		// Candidate 1: fresh placement (no reuse).
		fresh, stats, err := buildPlaceMap(b, q, p, placer, mapper)
		if err != nil {
			return nil, err
		}
		res.CircuitsConsidered++
		o.consider(res, fresh, stats, 0, 0, model)

		// Candidate 2: reuse within the radius. Requires the virtual
		// coordinates just computed for the fresh candidate.
		if o.Radius > 0 && o.Registry.Len() > 0 {
			reused, rstats, nReused, examined, err := o.buildWithReuse(b, q, p, fresh, placer, mapper)
			if err != nil {
				return nil, err
			}
			// The region scan is optimizer work whether or not a
			// matching service was found in it.
			res.InstancesExamined += examined
			if reused != nil {
				res.CircuitsConsidered++
				o.consider(res, reused, rstats, nReused, examined, model)
			}
		}
	}
	return res, nil
}

// consider keeps the candidate if it beats the incumbent on estimated
// (marginal) usage.
func (o *MultiQuery) consider(res *Result, c *Circuit, stats placement.MapStats, reusedCount, examined int, model LatencyModel) {
	usage := c.NetworkUsage(model)
	if res.Circuit == nil || usage < res.EstimatedUsage {
		res.Circuit = c
		res.EstimatedUsage = usage
		res.MapStats = stats
		res.ReusedServices = reusedCount
	}
}

// buildWithReuse constructs a reuse candidate: plan subtrees whose
// signature matches a registered instance within Radius of the subtree's
// virtual coordinate are replaced by that instance (top-down, so the
// largest shareable subtree wins). Returns nil circuit if nothing was
// reusable.
func (o *MultiQuery) buildWithReuse(b *Builder, q query.Query, p *query.PlanNode, fresh *Circuit, placer placement.VirtualPlacer, mapper placement.Mapper) (*Circuit, placement.MapStats, int, int, error) {
	// Virtual coordinates per plan node from the fresh candidate.
	virtual := make(map[*query.PlanNode]costspace.Point)
	for _, s := range fresh.Services {
		if s.Plan != nil && !s.Pinned && len(s.Virtual) > 0 {
			virtual[s.Plan] = o.Env.Space().IdealPoint(s.Virtual)
		}
	}
	space := o.Env.Space()
	examined := 0
	reusedCount := 0
	// blocked tracks descendants of reused nodes: Skeleton never calls
	// reuse() for them because it stops descending, but keep the map for
	// clarity of intent.
	reuse := func(n *query.PlanNode) *ServiceInstance {
		target, ok := virtual[n]
		if !ok {
			return nil
		}
		matches, ex := o.Registry.FindWithinRadius(space, target, o.Radius, n.Signature())
		examined += ex
		if len(matches) == 0 {
			return nil
		}
		reusedCount++
		return matches[0]
	}
	c, err := b.Skeleton(q, p, reuse)
	if err != nil {
		return nil, placement.MapStats{}, 0, 0, err
	}
	if reusedCount == 0 {
		return nil, placement.MapStats{}, 0, examined, nil
	}
	if err := b.PlaceVirtual(c, placer); err != nil {
		return nil, placement.MapStats{}, 0, 0, err
	}
	stats, err := b.MapPhysical(c, mapper)
	if err != nil {
		return nil, placement.MapStats{}, 0, 0, err
	}
	return c, stats, reusedCount, examined, nil
}
