package optimizer

import (
	"fmt"
	"math/rand"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// PlacementStrategy places a fixed logical plan onto physical nodes.
// Strategies isolate the placement question from plan choice, backing the
// X1 placement-comparison experiment.
type PlacementStrategy interface {
	PlaceCircuit(env *Env, q query.Query, p *query.PlanNode) (*Circuit, error)
	Name() string
}

// RelaxationStrategy is the paper's placement: virtual placement via
// spring relaxation in the cost space, then physical mapping.
type RelaxationStrategy struct {
	Placer placement.VirtualPlacer
	Mapper placement.Mapper
}

// Name implements PlacementStrategy.
func (RelaxationStrategy) Name() string { return "relaxation" }

// PlaceCircuit implements PlacementStrategy.
func (s RelaxationStrategy) PlaceCircuit(env *Env, q query.Query, p *query.PlanNode) (*Circuit, error) {
	placer := s.Placer
	if placer == nil {
		placer = placement.Relaxation{}
	}
	mapper := s.Mapper
	if mapper == nil {
		if cat := env.Catalog(); cat != nil {
			mapper = placement.DHTMapper{Catalog: cat}
		} else {
			mapper = placement.OracleMapper{Source: env}
		}
	}
	b := &Builder{Env: env}
	c, _, err := buildPlaceMap(b, q, p, placer, mapper)
	return c, err
}

// RandomStrategy assigns every unpinned service to a uniformly random
// node — the "no placement intelligence" floor.
type RandomStrategy struct {
	Rng *rand.Rand
}

// Name implements PlacementStrategy.
func (RandomStrategy) Name() string { return "random" }

// PlaceCircuit implements PlacementStrategy.
func (s RandomStrategy) PlaceCircuit(env *Env, q query.Query, p *query.PlanNode) (*Circuit, error) {
	rng := s.Rng
	if rng == nil {
		rng = env.Rand()
	}
	b := &Builder{Env: env}
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		return nil, err
	}
	n := env.Topo.NumNodes()
	b.AssignFixed(c, func(*PlacedService) topology.NodeID {
		return topology.NodeID(rng.Intn(n))
	})
	return c, nil
}

// ConsumerStrategy hosts every unpinned service on the consumer node —
// the classical "ship all data to the query site" database deployment.
type ConsumerStrategy struct{}

// Name implements PlacementStrategy.
func (ConsumerStrategy) Name() string { return "consumer" }

// PlaceCircuit implements PlacementStrategy.
func (ConsumerStrategy) PlaceCircuit(env *Env, q query.Query, p *query.PlanNode) (*Circuit, error) {
	b := &Builder{Env: env}
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		return nil, err
	}
	b.AssignFixed(c, func(*PlacedService) topology.NodeID { return q.Consumer })
	return c, nil
}

// ProducerStrategy hosts each unpinned service at the producer of its
// leftmost source — "process at the data" without any cost awareness.
type ProducerStrategy struct{}

// Name implements PlacementStrategy.
func (ProducerStrategy) Name() string { return "producer" }

// PlaceCircuit implements PlacementStrategy.
func (s ProducerStrategy) PlaceCircuit(env *Env, q query.Query, p *query.PlanNode) (*Circuit, error) {
	b := &Builder{Env: env}
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		return nil, err
	}
	b.AssignFixed(c, func(svc *PlacedService) topology.NodeID {
		leaves := svc.Plan.Leaves()
		if len(leaves) == 0 {
			return q.Consumer
		}
		prod, ok := env.Stats.Producer(leaves[0])
		if !ok {
			return q.Consumer
		}
		return prod
	})
	return c, nil
}

// ExhaustiveStrategy tries every assignment of unpinned services to the
// candidate node set and keeps the cheapest under the model — the optimal
// placement for the plan, exponential in the number of unpinned services.
// It is the ground truth for small circuits (experiment X1/X6) and
// demonstrates why enumeration cannot scale (§4).
type ExhaustiveStrategy struct {
	// Candidates restricts the searched nodes; nil means all topology
	// nodes (only sane for small topologies).
	Candidates []topology.NodeID
	// Model scores assignments (default TrueLatency: the strategy is an
	// oracle).
	Model LatencyModel
	// MaxAssignments caps |candidates|^unpinned to keep runs bounded
	// (default 5e6).
	MaxAssignments float64
}

// Name implements PlacementStrategy.
func (ExhaustiveStrategy) Name() string { return "exhaustive" }

// PlaceCircuit implements PlacementStrategy.
func (s ExhaustiveStrategy) PlaceCircuit(env *Env, q query.Query, p *query.PlanNode) (*Circuit, error) {
	b := &Builder{Env: env}
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		return nil, err
	}
	cands := s.Candidates
	if cands == nil {
		cands = env.NodeIDs()
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("optimizer: exhaustive strategy has no candidates")
	}
	model := s.Model
	if model == nil {
		model = TrueLatency{Topo: env.Topo}
	}
	unpinned := c.UnpinnedServices()
	limit := s.MaxAssignments
	if limit <= 0 {
		limit = 5e6
	}
	total := 1.0
	for range unpinned {
		total *= float64(len(cands))
		if total > limit {
			return nil, fmt.Errorf("optimizer: exhaustive search space %g exceeds limit %g", total, limit)
		}
	}
	if len(unpinned) == 0 {
		return c, nil
	}

	assign := make([]int, len(unpinned))
	best := make([]topology.NodeID, len(unpinned))
	bestCost := -1.0
	for {
		for i, s := range unpinned {
			s.Node = cands[assign[i]]
		}
		cost := c.NetworkUsage(model)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			for i, s := range unpinned {
				best[i] = s.Node
			}
		}
		// Odometer increment.
		i := 0
		for ; i < len(assign); i++ {
			assign[i]++
			if assign[i] < len(cands) {
				break
			}
			assign[i] = 0
		}
		if i == len(assign) {
			break
		}
	}
	for i, s := range unpinned {
		s.Node = best[i]
	}
	return c, nil
}
