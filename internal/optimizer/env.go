// Package optimizer implements the paper's contribution: integrated query
// plan generation and service placement over a cost space (§3.3), the
// classic two-step optimizer it is compared against (§2.3), multi-query
// optimization with cost-space radius pruning (§3.4), and dynamic
// re-optimization of running circuits.
//
// The Env type is the optimizer's view of the SBON: the topology (ground
// truth for measured costs), every node's Vivaldi coordinate and load
// (combined into its cost-space point), and optionally the Hilbert-keyed
// DHT catalog for decentralized physical mapping.
//
// Env separates the state one optimization *reads* (Snapshot: topology,
// coordinates, loads, cost-space points, catalog) from the state the
// deployment life-cycle *mutates* (background loads, the RNG, the
// republish path). Freeze returns an immutable copy of the read state so
// any number of concurrent optimizations — see OptimizeBatch — can share
// one snapshot without locking.
package optimizer

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"github.com/hourglass/sbon/internal/costindex"
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/dht"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	// Seed drives Vivaldi embedding and load assignment.
	Seed int64
	// VivaldiRounds and VivaldiSamples control the coordinate embedding
	// (defaults 40 and 4).
	VivaldiRounds  int
	VivaldiSamples int
	// LoadScale is the squared-load weighting scale β (default 100: a
	// fully loaded node appears 100 ms away; see DESIGN.md §4).
	LoadScale float64
	// LoadPerRate is the node load added per KB/s of input processed by a
	// hosted service (default 1/2000: a 200 KB/s service adds 0.1 load).
	LoadPerRate float64
	// MaxBackgroundLoad bounds the uniform background load assigned to
	// each node (default 0.4).
	MaxBackgroundLoad float64
	// UseDHT builds the Chord ring + Hilbert catalog over all nodes.
	UseDHT bool
	// HilbertBits is the per-dimension grid resolution (default 16,
	// capped so dims*bits <= 64).
	HilbertBits uint
}

// DefaultEnvConfig returns the configuration used by the experiments.
func DefaultEnvConfig(seed int64) EnvConfig {
	return EnvConfig{
		Seed:              seed,
		VivaldiRounds:     40,
		VivaldiSamples:    4,
		LoadScale:         100,
		LoadPerRate:       1.0 / 2000,
		MaxBackgroundLoad: 0.4,
		UseDHT:            true,
		HilbertBits:       16,
	}
}

// withDefaults fills zero-valued fields with the documented defaults.
func (c EnvConfig) withDefaults() EnvConfig {
	if c.VivaldiRounds <= 0 {
		c.VivaldiRounds = 40
	}
	if c.VivaldiSamples <= 0 {
		c.VivaldiSamples = 4
	}
	if c.LoadScale <= 0 {
		c.LoadScale = 100
	}
	if c.LoadPerRate <= 0 {
		c.LoadPerRate = 1.0 / 2000
	}
	if c.MaxBackgroundLoad < 0 || c.MaxBackgroundLoad >= 1 {
		c.MaxBackgroundLoad = 0.4
	}
	if c.HilbertBits == 0 {
		c.HilbertBits = 16
	}
	return c
}

// Snapshot is the read-only cost-space and topology state that a single
// optimization reads: the topology, the statistics catalog, every node's
// vector coordinate, raw load, and combined cost-space point, and the
// optional DHT catalog. An Env owns a live snapshot and updates it in
// place; Env.Freeze deep-copies the mutable arrays into a frozen snapshot
// that concurrent optimizations share without locking.
//
// All methods are safe for concurrent use as long as no Env mutator
// (SetBackgroundLoad, AddServiceLoad, RemoveServiceLoad,
// ReembedCoordinates, Deploy/Cancel via Deployment) runs on the *owning
// live* Env at the same time — a frozen snapshot's coordinate arrays are
// private copies, but the DHT catalog is shared with the live Env because
// copying the ring is prohibitive and lookups are pure reads.
type Snapshot struct {
	Topo  *topology.Topology
	Stats *query.Catalog

	space *costspace.Space
	vec   []vivaldi.Coord // per-node vector coordinate
	load  []float64       // per-node current raw load (background + services)
	pts   []costspace.Point

	catalog *dht.Catalog // nil unless UseDHT

	// epoch counts mutations of the owning live Env (load changes,
	// re-embeddings). A PlanCache flushes when it sees a new epoch, so
	// plans enumerated under superseded conditions are never served.
	epoch uint64

	// nodeIDs is the identity slice 0..n-1, built once at construction
	// and shared by every snapshot — NodeIDs is on the mapping hot path
	// and must not allocate. Callers must not mutate it.
	nodeIDs []topology.NodeID

	// idx caches the cost-space k-NN index over pts, versioned by epoch
	// (the PlanCache invalidation discipline): any mutation of the
	// owning live Env bumps the epoch, marking the index dirty, and the
	// next CostIndex call rebuilds — or patches, for single-point moves
	// — lazily. Frozen snapshots never mutate, so their index, built at
	// most once, is shared lock-free by concurrent optimizations.
	idx atomic.Pointer[costindex.Index]

	cfg EnvConfig
}

// Env is the optimizer's view of one SBON deployment: a live Snapshot
// plus the mutable bookkeeping (background-load components, the RNG) that
// the deployment life-cycle updates.
type Env struct {
	*Snapshot

	base []float64 // background load component
	rng  *rand.Rand

	// dirty is the delta log incremental re-optimization consumes: for
	// every node mutated since the last CompactDirty, the epoch of its
	// latest mutation and its cost-space point as of the last
	// compaction. dirtyFloor is the compaction watermark: entries at or
	// below it have been consumed and dropped.
	dirty      map[topology.NodeID]dirtyRec
	dirtyFloor uint64

	// frozen marks an Env produced by Freeze: a shared read-only view
	// whose mutators panic instead of corrupting concurrent readers.
	frozen bool

	// EmbeddingQuality records the Vivaldi embedding error measured at
	// construction time.
	EmbeddingQuality vivaldi.Quality
}

// NewEnv builds an environment over the topology: embeds Vivaldi
// coordinates, assigns background loads, constructs the cost space
// (2 latency dims + squared CPU load), and optionally the DHT catalog
// with every node's coordinate published.
func NewEnv(topo *topology.Topology, stats *query.Catalog, cfg EnvConfig) (*Env, error) {
	if topo == nil || topo.NumNodes() < 2 {
		return nil, fmt.Errorf("optimizer: need a topology with >= 2 nodes")
	}
	cfg = cfg.withDefaults()

	rng := rand.New(rand.NewSource(cfg.Seed))
	space := costspace.NewLatencyLoadSpace(cfg.LoadScale)

	m := topo.LatencyMatrix()
	emb, err := vivaldi.EmbedMatrix(m, vivaldi.DefaultConfig(), cfg.VivaldiRounds, cfg.VivaldiSamples, rng)
	if err != nil {
		return nil, fmt.Errorf("optimizer: vivaldi embedding: %w", err)
	}

	n := topo.NumNodes()
	e := &Env{
		Snapshot: &Snapshot{
			Topo:    topo,
			Stats:   stats,
			space:   space,
			vec:     emb.Coords,
			load:    make([]float64, n),
			pts:     make([]costspace.Point, n),
			nodeIDs: makeNodeIDs(n),
			cfg:     cfg,
		},
		base:  make([]float64, n),
		rng:   rng,
		dirty: make(map[topology.NodeID]dirtyRec),
	}
	e.EmbeddingQuality = emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 2000, rng)
	for i := 0; i < n; i++ {
		e.base[i] = rng.Float64() * cfg.MaxBackgroundLoad
		e.load[i] = e.base[i]
		e.pts[i] = space.NewPoint(e.vec[i], []float64{e.load[i]})
	}

	if cfg.UseDHT {
		if err := e.buildDHT(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// NewEnvFromCoords builds an environment from externally maintained
// Vivaldi coordinates (a vivaldi.Ticker's Embedding, the way a deployed
// overlay continuously refreshes coordinates) instead of batch-embedding
// the dense latency matrix. Nothing on this path touches
// Topology.LatencyMatrix: with the topology's sparse latency mode
// enabled, the O(n²) matrix is never materialized, which is what makes
// 16k+-node environments feasible. Embedding quality is evaluated
// against 2000 sampled true-latency pairs, as in NewEnv.
func NewEnvFromCoords(topo *topology.Topology, stats *query.Catalog, cfg EnvConfig, coords []vivaldi.Coord) (*Env, error) {
	if topo == nil || topo.NumNodes() < 2 {
		return nil, fmt.Errorf("optimizer: need a topology with >= 2 nodes")
	}
	if len(coords) != topo.NumNodes() {
		return nil, fmt.Errorf("optimizer: %d coords for %d nodes", len(coords), topo.NumNodes())
	}
	cfg = cfg.withDefaults()

	rng := rand.New(rand.NewSource(cfg.Seed))
	space := costspace.NewLatencyLoadSpace(cfg.LoadScale)

	n := topo.NumNodes()
	e := &Env{
		Snapshot: &Snapshot{
			Topo:  topo,
			Stats: stats,
			space: space,
			// The outer slice is copied so later SetCoordinates syncs
			// never alias the caller's snapshot; the Coord vectors are
			// fresh per Embedding() call and safe to share.
			vec:     append([]vivaldi.Coord(nil), coords...),
			load:    make([]float64, n),
			pts:     make([]costspace.Point, n),
			nodeIDs: makeNodeIDs(n),
			cfg:     cfg,
		},
		base:  make([]float64, n),
		rng:   rng,
		dirty: make(map[topology.NodeID]dirtyRec),
	}
	emb := &vivaldi.Embedding{Coords: e.vec}
	e.EmbeddingQuality = emb.Evaluate(func(i, j int) float64 {
		return topo.Latency(topology.NodeID(i), topology.NodeID(j))
	}, 2000, rng)
	for i := 0; i < n; i++ {
		e.base[i] = rng.Float64() * cfg.MaxBackgroundLoad
		e.load[i] = e.base[i]
		e.pts[i] = space.NewPoint(e.vec[i], []float64{e.load[i]})
	}

	if cfg.UseDHT {
		if err := e.buildDHT(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Env) buildDHT() error {
	bits := e.cfg.HilbertBits
	for uint(e.space.Dims())*bits > 64 {
		bits--
	}
	curve, err := hilbert.New(uint(e.space.Dims()), bits)
	if err != nil {
		return fmt.Errorf("optimizer: hilbert curve: %w", err)
	}
	// Bounds must cover the worst-case scalar component (full load), not
	// just current points, so republished coordinates stay in range.
	all := make([]costspace.Point, 0, len(e.pts)+1)
	all = append(all, e.pts...)
	ceiling := e.space.NewPoint(e.vec[0], []float64{1.5})
	all = append(all, ceiling)
	bounds, err := costspace.ComputeBounds(all, 0.05)
	if err != nil {
		return err
	}
	ring := dht.NewRing()
	for i := range e.pts {
		if _, err := ring.AddPeer(topology.NodeID(i)); err != nil {
			return err
		}
	}
	cat, err := dht.NewCatalog(ring, e.space, curve, bounds)
	if err != nil {
		return err
	}
	for i, p := range e.pts {
		if _, err := cat.Publish(topology.NodeID(i), p); err != nil {
			return err
		}
	}
	e.catalog = cat
	return nil
}

// Freeze returns a read-only copy of the environment for concurrent
// optimization: it shares the immutable topology, statistics, cost space,
// and DHT catalog, but owns private copies of the per-node coordinate and
// load arrays, so later mutations of the live Env never reach readers of
// the frozen one. Mutating methods on a frozen Env panic.
//
// The catalog is shared, not copied: its lookups are pure reads, so a
// frozen Env is race-free provided the live Env is not mutated (deploys,
// load changes, re-embeddings) while optimizations run against the
// snapshot.
func (e *Env) Freeze() *Env {
	s := &Snapshot{
		Topo:    e.Topo,
		Stats:   e.Stats,
		space:   e.space,
		vec:     append([]vivaldi.Coord(nil), e.vec...),
		load:    append([]float64(nil), e.load...),
		pts:     append([]costspace.Point(nil), e.pts...),
		catalog: e.catalog,
		epoch:   e.epoch,
		nodeIDs: e.nodeIDs,
		cfg:     e.cfg,
	}
	// The k-NN index is immutable: when the live one is epoch-current it
	// is shared with the frozen snapshot rather than rebuilt. A patched
	// index is not carried: snapshots serve whole batches, which
	// amortize one clean rebuild better than per-query patch scans.
	if ix := e.idx.Load(); ix != nil && ix.Version() == e.epoch && ix.NumPatched() == 0 {
		s.idx.Store(ix)
	}
	return &Env{
		Snapshot: s,
		// base is left nil: its only readers are mutators, which panic
		// on a frozen Env before touching it.
		rng:              rand.New(rand.NewSource(e.cfg.Seed)),
		frozen:           true,
		EmbeddingQuality: e.EmbeddingQuality,
	}
}

// Frozen reports whether the Env is a read-only snapshot from Freeze.
func (e *Env) Frozen() bool { return e.frozen }

// NoteStatsChanged records a mutation of the statistics catalog (new
// streams, changed selectivities). The catalog changes which plan wins,
// not where nodes sit, so no point refresh is needed — but the epoch must
// advance so plan caches stop serving plans enumerated under the old
// statistics.
func (e *Env) NoteStatsChanged() {
	e.mutable("NoteStatsChanged")
	e.epoch++
	// Statistics move no points: re-stamp the index instead of letting
	// the epoch bump force a rebuild.
	if ix := e.idx.Load(); ix != nil && ix.Version() == e.epoch-1 {
		e.idx.Store(ix.WithVersion(e.epoch))
	}
}

// mutable panics if the Env is a frozen snapshot: snapshots are shared by
// concurrent optimizations, so mutating one is always a bug.
func (e *Env) mutable(op string) {
	if e.frozen {
		panic("optimizer: " + op + " called on a frozen Env snapshot")
	}
}

// Space implements placement.NodeSource.
func (s *Snapshot) Space() *costspace.Space { return s.space }

// NodeIDs implements placement.NodeSource. The returned slice is built
// once at construction and shared by every snapshot; callers must not
// mutate it.
func (s *Snapshot) NodeIDs() []topology.NodeID { return s.nodeIDs }

func makeNodeIDs(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// CostIndex implements placement.IndexedSource: it returns the exact
// k-NN index over the snapshot's node cost-space points, rebuilding (or
// patching) lazily when the environment was mutated since the index was
// built. On a frozen snapshot the epoch never moves, so the index is
// built at most once and shared lock-free by concurrent optimizations
// (OptimizeBatch workers); on the live Env the epoch-version comparison
// is the dirty flag, exactly like PlanCache invalidation.
func (s *Snapshot) CostIndex() *costindex.Index {
	if ix := s.idx.Load(); ix != nil && ix.Version() == s.epoch {
		return ix
	}
	ix := costindex.Build(s.space, s.pts, s.epoch)
	s.idx.Store(ix)
	return ix
}

// patchIndex keeps an already-built index valid across a single-point
// move without a rebuild. Called by mutators after bumping the epoch;
// when the patch overlay's budget is exhausted the cached index is
// dropped and CostIndex rebuilds on next use.
func (s *Snapshot) patchIndex(n topology.NodeID) {
	ix := s.idx.Load()
	if ix == nil {
		return
	}
	if ix.Version() != s.epoch && ix.Version() != s.epoch-1 {
		// The index was already stale before this mutation; let it
		// rebuild wholesale on next use. (Version == epoch happens when
		// one mutation refreshes several points, e.g. re-embedding.)
		s.idx.Store(nil)
		return
	}
	if next, ok := ix.WithPoint(int32(n), s.pts[n], s.epoch); ok {
		s.idx.Store(next)
	} else {
		s.idx.Store(nil)
	}
}

// Point implements placement.NodeSource.
func (s *Snapshot) Point(n topology.NodeID) costspace.Point { return s.pts[n] }

// Coord returns the node's current Vivaldi coordinate. The caller must
// not mutate it.
func (s *Snapshot) Coord(n topology.NodeID) vivaldi.Coord { return s.vec[n] }

// VecCoord returns the node's vector (latency) coordinate.
func (s *Snapshot) VecCoord(n topology.NodeID) vivaldi.Coord { return s.vec[n] }

// Load returns the node's current raw load.
func (s *Snapshot) Load(n topology.NodeID) float64 { return s.load[n] }

// Catalog returns the DHT catalog (nil if the env was built without one).
func (s *Snapshot) Catalog() *dht.Catalog { return s.catalog }

// Config returns the construction configuration.
func (s *Snapshot) Config() EnvConfig { return s.cfg }

// Epoch returns the mutation epoch: how many times the owning live Env
// had its state changed (load accounting, background loads,
// re-embedding) when this snapshot's view was taken.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// CellKey returns the Hilbert-cell identifier of the node's current
// cost-space point — the discretized "network conditions" bucket used to
// key the plan cache. With a DHT catalog the key is the node's scaled
// Hilbert key (identical coordinates and loads land in identical cells);
// without one the point is quantized onto a fixed grid and hashed.
func (s *Snapshot) CellKey(n topology.NodeID) uint64 {
	if s.catalog != nil {
		return uint64(s.catalog.KeyOf(s.pts[n]))
	}
	return gridCellKey(s.pts[n])
}

// Rand returns the environment's RNG (deterministic per seed).
func (e *Env) Rand() *rand.Rand { return e.rng }

// SetBackgroundLoad replaces the node's background load component and
// refreshes its cost-space point (and DHT entry).
func (e *Env) SetBackgroundLoad(n topology.NodeID, l float64) {
	e.mutable("SetBackgroundLoad")
	e.epoch++
	if l < 0 {
		l = 0
	}
	delta := l - e.base[n]
	e.base[n] = l
	e.load[n] += delta
	e.refreshPoint(n, true)
}

// AddServiceLoad charges a hosted service processing `inputRate` KB/s to
// the node's load.
func (e *Env) AddServiceLoad(n topology.NodeID, inputRate float64) {
	e.mutable("AddServiceLoad")
	e.epoch++
	e.load[n] += inputRate * e.cfg.LoadPerRate
	e.refreshPoint(n, true)
}

// RemoveServiceLoad reverses AddServiceLoad.
func (e *Env) RemoveServiceLoad(n topology.NodeID, inputRate float64) {
	e.mutable("RemoveServiceLoad")
	e.epoch++
	e.load[n] -= inputRate * e.cfg.LoadPerRate
	if e.load[n] < e.base[n] {
		e.load[n] = e.base[n]
	}
	e.refreshPoint(n, true)
}

// refreshPoint rebuilds the node's cost-space point after a mutation.
// loadOnly declares that only the scalar (load) components changed —
// the delta-log tag incremental re-planning uses to skip circuits whose
// incidence on the node is latency-only.
func (e *Env) refreshPoint(n topology.NodeID, loadOnly bool) {
	e.markDirty(n, loadOnly)
	e.pts[n] = e.space.NewPoint(e.vec[n], []float64{e.load[n]})
	e.patchIndex(n)
	if e.catalog != nil {
		// Republish; the catalog replaces the old entry.
		if _, err := e.catalog.Publish(n, e.pts[n]); err != nil {
			// The ring always contains every node in this simulator; a
			// publish failure indicates a programming error.
			panic(fmt.Sprintf("optimizer: republish node %d: %v", n, err))
		}
	}
}

// dirtyRec is one delta-log entry: the epoch of the node's latest
// mutation, its point as of the last compaction, and whether every
// mutation since then touched only the load components.
type dirtyRec struct {
	epoch    uint64
	prev     costspace.Point
	loadOnly bool
}

// markDirty records the node in the delta log before its point is
// replaced. The pre-mutation point is captured only on the node's first
// dirtying after a compaction, so an entry's Prev is always the point
// the log's consumer last saw. No clone is needed: refreshPoint
// replaces pts[n] with a freshly built point, never mutates it in
// place.
func (e *Env) markDirty(n topology.NodeID, loadOnly bool) {
	if rec, ok := e.dirty[n]; ok {
		rec.epoch = e.epoch
		rec.loadOnly = rec.loadOnly && loadOnly
		e.dirty[n] = rec
		return
	}
	e.dirty[n] = dirtyRec{epoch: e.epoch, prev: e.pts[n], loadOnly: loadOnly}
}

// DirtyNode is one consumed delta-log entry: a node whose load or
// coordinate changed, plus its cost-space point as of the log's last
// compaction — the "before" coordinate incremental re-planning compares
// against.
type DirtyNode struct {
	Node topology.NodeID
	Prev costspace.Point
	// LoadOnly reports that every logged mutation of the node changed
	// only its load (scalar) components: latency coordinates — and with
	// them every link cost the node participates in — are exactly as the
	// log's consumer last saw them.
	LoadOnly bool
}

// DirtySince returns the nodes mutated after epoch since, sorted by
// node id. The caller's since must be at least DirtyCompactedThrough,
// or entries it needs have already been dropped — consumers detect that
// case and fall back to a full sweep.
func (e *Env) DirtySince(since uint64) []DirtyNode {
	var out []DirtyNode
	for n, rec := range e.dirty {
		if rec.epoch > since {
			out = append(out, DirtyNode{Node: n, Prev: rec.prev, LoadOnly: rec.loadOnly})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// CompactDirty drops delta-log entries with mutation epoch <= upTo and
// records upTo as the new compaction floor. The log is single-consumer:
// the compacting sweep declares it has seen all state through upTo, and
// Prev points captured afterwards describe the state as of that sweep.
func (e *Env) CompactDirty(upTo uint64) {
	for n, rec := range e.dirty {
		if rec.epoch <= upTo {
			delete(e.dirty, n)
		}
	}
	if upTo > e.dirtyFloor {
		e.dirtyFloor = upTo
	}
}

// DirtyCompactedThrough returns the delta log's compaction floor: the
// highest epoch a consumer has declared consumed.
func (e *Env) DirtyCompactedThrough() uint64 { return e.dirtyFloor }

// NumDirty returns the delta log's current size.
func (e *Env) NumDirty() int { return len(e.dirty) }

// BackgroundLoad returns the node's background load component — the
// floor service-load release clamps to. Frozen snapshots do not carry
// it and report zero.
func (e *Env) BackgroundLoad(n topology.NodeID) float64 {
	if e.base == nil {
		return 0
	}
	return e.base[n]
}

// ReembedCoordinates reruns Vivaldi against the topology's current
// latencies (after PerturbLatencies) and refreshes all points.
func (e *Env) ReembedCoordinates() error {
	e.mutable("ReembedCoordinates")
	e.epoch++
	m := e.Topo.LatencyMatrix()
	emb, err := vivaldi.EmbedMatrix(m, vivaldi.DefaultConfig(), e.cfg.VivaldiRounds, e.cfg.VivaldiSamples, e.rng)
	if err != nil {
		return err
	}
	e.vec = emb.Coords
	e.EmbeddingQuality = emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 2000, e.rng)
	// Every point moves: drop the indexes up front rather than letting
	// the per-point refresh loop churn their patch overlays to the
	// budget limit before they are discarded anyway.
	e.idx.Store(nil)
	if e.catalog != nil {
		e.catalog.InvalidateExactIndex()
	}
	for i := range e.pts {
		e.refreshPoint(topology.NodeID(i), false)
	}
	return nil
}

// SetCoordinates refreshes node coordinates in bulk from an external
// embedding maintainer (vivaldi.Ticker), the periodic coordinate sync of
// a continuously running overlay. Only nodes whose coordinate actually
// moved are refreshed and delta-logged, so a near-converged ticker sync
// costs O(moved); when most of the overlay moved the cached k-NN index
// is dropped up front instead of churning its patch budget. Returns the
// number of nodes whose coordinate changed.
func (e *Env) SetCoordinates(coords []vivaldi.Coord) (int, error) {
	e.mutable("SetCoordinates")
	if len(coords) != len(e.vec) {
		return 0, fmt.Errorf("optimizer: %d coords for %d nodes", len(coords), len(e.vec))
	}
	changed := make([]topology.NodeID, 0, 16)
	for i := range coords {
		if !coordEqual(e.vec[i], coords[i]) {
			changed = append(changed, topology.NodeID(i))
		}
	}
	if len(changed) == 0 {
		return 0, nil
	}
	e.epoch++
	if len(changed)*4 >= len(e.vec) {
		e.idx.Store(nil)
		if e.catalog != nil {
			e.catalog.InvalidateExactIndex()
		}
	}
	for _, n := range changed {
		e.vec[n] = coords[n]
		e.refreshPoint(n, false)
	}
	return len(changed), nil
}

func coordEqual(a, b vivaldi.Coord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LatencyModel estimates pairwise latency between overlay nodes. The
// optimizer selects circuits with a model; experiments measure final
// circuits with the true topology model.
type LatencyModel interface {
	Latency(a, b topology.NodeID) float64
	Name() string
}

// TrueLatency reads shortest-path latencies from the topology — the
// simulator's ground truth.
type TrueLatency struct {
	Topo *topology.Topology
}

// Latency implements LatencyModel.
func (t TrueLatency) Latency(a, b topology.NodeID) float64 { return t.Topo.Latency(a, b) }

// Name implements LatencyModel.
func (TrueLatency) Name() string { return "true" }

// CoordLatency estimates latency as the distance between Vivaldi
// coordinates — the only information a decentralized optimizer has.
type CoordLatency struct {
	Env *Env
}

// Latency implements LatencyModel.
func (c CoordLatency) Latency(a, b topology.NodeID) float64 {
	return c.Env.vec[a].Distance(c.Env.vec[b])
}

// Name implements LatencyModel.
func (CoordLatency) Name() string { return "coords" }
