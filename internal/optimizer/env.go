// Package optimizer implements the paper's contribution: integrated query
// plan generation and service placement over a cost space (§3.3), the
// classic two-step optimizer it is compared against (§2.3), multi-query
// optimization with cost-space radius pruning (§3.4), and dynamic
// re-optimization of running circuits.
//
// The Env type is the optimizer's view of the SBON: the topology (ground
// truth for measured costs), every node's Vivaldi coordinate and load
// (combined into its cost-space point), and optionally the Hilbert-keyed
// DHT catalog for decentralized physical mapping.
package optimizer

import (
	"fmt"
	"math/rand"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/dht"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// EnvConfig parameterizes environment construction.
type EnvConfig struct {
	// Seed drives Vivaldi embedding and load assignment.
	Seed int64
	// VivaldiRounds and VivaldiSamples control the coordinate embedding
	// (defaults 40 and 4).
	VivaldiRounds  int
	VivaldiSamples int
	// LoadScale is the squared-load weighting scale β (default 100: a
	// fully loaded node appears 100 ms away; see DESIGN.md §4).
	LoadScale float64
	// LoadPerRate is the node load added per KB/s of input processed by a
	// hosted service (default 1/2000: a 200 KB/s service adds 0.1 load).
	LoadPerRate float64
	// MaxBackgroundLoad bounds the uniform background load assigned to
	// each node (default 0.4).
	MaxBackgroundLoad float64
	// UseDHT builds the Chord ring + Hilbert catalog over all nodes.
	UseDHT bool
	// HilbertBits is the per-dimension grid resolution (default 16,
	// capped so dims*bits <= 64).
	HilbertBits uint
}

// DefaultEnvConfig returns the configuration used by the experiments.
func DefaultEnvConfig(seed int64) EnvConfig {
	return EnvConfig{
		Seed:              seed,
		VivaldiRounds:     40,
		VivaldiSamples:    4,
		LoadScale:         100,
		LoadPerRate:       1.0 / 2000,
		MaxBackgroundLoad: 0.4,
		UseDHT:            true,
		HilbertBits:       16,
	}
}

// Env is the optimizer's view of one SBON deployment.
type Env struct {
	Topo  *topology.Topology
	Stats *query.Catalog

	space *costspace.Space
	vec   []vivaldi.Coord // per-node vector coordinate
	load  []float64       // per-node current raw load (background + services)
	base  []float64       // background load component
	pts   []costspace.Point

	catalog *dht.Catalog // nil unless UseDHT

	cfg EnvConfig
	rng *rand.Rand

	// EmbeddingQuality records the Vivaldi embedding error measured at
	// construction time.
	EmbeddingQuality vivaldi.Quality
}

// NewEnv builds an environment over the topology: embeds Vivaldi
// coordinates, assigns background loads, constructs the cost space
// (2 latency dims + squared CPU load), and optionally the DHT catalog
// with every node's coordinate published.
func NewEnv(topo *topology.Topology, stats *query.Catalog, cfg EnvConfig) (*Env, error) {
	if topo == nil || topo.NumNodes() < 2 {
		return nil, fmt.Errorf("optimizer: need a topology with >= 2 nodes")
	}
	if cfg.VivaldiRounds <= 0 {
		cfg.VivaldiRounds = 40
	}
	if cfg.VivaldiSamples <= 0 {
		cfg.VivaldiSamples = 4
	}
	if cfg.LoadScale <= 0 {
		cfg.LoadScale = 100
	}
	if cfg.LoadPerRate <= 0 {
		cfg.LoadPerRate = 1.0 / 2000
	}
	if cfg.MaxBackgroundLoad < 0 || cfg.MaxBackgroundLoad >= 1 {
		cfg.MaxBackgroundLoad = 0.4
	}
	if cfg.HilbertBits == 0 {
		cfg.HilbertBits = 16
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	space := costspace.NewLatencyLoadSpace(cfg.LoadScale)

	m := topo.LatencyMatrix()
	emb, err := vivaldi.EmbedMatrix(m, vivaldi.DefaultConfig(), cfg.VivaldiRounds, cfg.VivaldiSamples, rng)
	if err != nil {
		return nil, fmt.Errorf("optimizer: vivaldi embedding: %w", err)
	}

	n := topo.NumNodes()
	e := &Env{
		Topo:  topo,
		Stats: stats,
		space: space,
		vec:   emb.Coords,
		load:  make([]float64, n),
		base:  make([]float64, n),
		pts:   make([]costspace.Point, n),
		cfg:   cfg,
		rng:   rng,
	}
	e.EmbeddingQuality = emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 2000, rng)
	for i := 0; i < n; i++ {
		e.base[i] = rng.Float64() * cfg.MaxBackgroundLoad
		e.load[i] = e.base[i]
		e.pts[i] = space.NewPoint(e.vec[i], []float64{e.load[i]})
	}

	if cfg.UseDHT {
		if err := e.buildDHT(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Env) buildDHT() error {
	bits := e.cfg.HilbertBits
	for uint(e.space.Dims())*bits > 64 {
		bits--
	}
	curve, err := hilbert.New(uint(e.space.Dims()), bits)
	if err != nil {
		return fmt.Errorf("optimizer: hilbert curve: %w", err)
	}
	// Bounds must cover the worst-case scalar component (full load), not
	// just current points, so republished coordinates stay in range.
	all := make([]costspace.Point, 0, len(e.pts)+1)
	all = append(all, e.pts...)
	ceiling := e.space.NewPoint(e.vec[0], []float64{1.5})
	all = append(all, ceiling)
	bounds, err := costspace.ComputeBounds(all, 0.05)
	if err != nil {
		return err
	}
	ring := dht.NewRing()
	for i := range e.pts {
		if _, err := ring.AddPeer(topology.NodeID(i)); err != nil {
			return err
		}
	}
	cat, err := dht.NewCatalog(ring, e.space, curve, bounds)
	if err != nil {
		return err
	}
	for i, p := range e.pts {
		if _, err := cat.Publish(topology.NodeID(i), p); err != nil {
			return err
		}
	}
	e.catalog = cat
	return nil
}

// Space implements placement.NodeSource.
func (e *Env) Space() *costspace.Space { return e.space }

// NodeIDs implements placement.NodeSource.
func (e *Env) NodeIDs() []topology.NodeID {
	out := make([]topology.NodeID, len(e.pts))
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// Point implements placement.NodeSource.
func (e *Env) Point(n topology.NodeID) costspace.Point { return e.pts[n] }

// VecCoord returns the node's vector (latency) coordinate.
func (e *Env) VecCoord(n topology.NodeID) vivaldi.Coord { return e.vec[n] }

// Load returns the node's current raw load.
func (e *Env) Load(n topology.NodeID) float64 { return e.load[n] }

// Catalog returns the DHT catalog (nil if the env was built without one).
func (e *Env) Catalog() *dht.Catalog { return e.catalog }

// Config returns the construction configuration.
func (e *Env) Config() EnvConfig { return e.cfg }

// Rand returns the environment's RNG (deterministic per seed).
func (e *Env) Rand() *rand.Rand { return e.rng }

// SetBackgroundLoad replaces the node's background load component and
// refreshes its cost-space point (and DHT entry).
func (e *Env) SetBackgroundLoad(n topology.NodeID, l float64) {
	if l < 0 {
		l = 0
	}
	delta := l - e.base[n]
	e.base[n] = l
	e.load[n] += delta
	e.refreshPoint(n)
}

// AddServiceLoad charges a hosted service processing `inputRate` KB/s to
// the node's load.
func (e *Env) AddServiceLoad(n topology.NodeID, inputRate float64) {
	e.load[n] += inputRate * e.cfg.LoadPerRate
	e.refreshPoint(n)
}

// RemoveServiceLoad reverses AddServiceLoad.
func (e *Env) RemoveServiceLoad(n topology.NodeID, inputRate float64) {
	e.load[n] -= inputRate * e.cfg.LoadPerRate
	if e.load[n] < e.base[n] {
		e.load[n] = e.base[n]
	}
	e.refreshPoint(n)
}

func (e *Env) refreshPoint(n topology.NodeID) {
	e.pts[n] = e.space.NewPoint(e.vec[n], []float64{e.load[n]})
	if e.catalog != nil {
		// Republish; the catalog replaces the old entry.
		if _, err := e.catalog.Publish(n, e.pts[n]); err != nil {
			// The ring always contains every node in this simulator; a
			// publish failure indicates a programming error.
			panic(fmt.Sprintf("optimizer: republish node %d: %v", n, err))
		}
	}
}

// ReembedCoordinates reruns Vivaldi against the topology's current
// latencies (after PerturbLatencies) and refreshes all points.
func (e *Env) ReembedCoordinates() error {
	m := e.Topo.LatencyMatrix()
	emb, err := vivaldi.EmbedMatrix(m, vivaldi.DefaultConfig(), e.cfg.VivaldiRounds, e.cfg.VivaldiSamples, e.rng)
	if err != nil {
		return err
	}
	e.vec = emb.Coords
	e.EmbeddingQuality = emb.Evaluate(func(i, j int) float64 { return m[i][j] }, 2000, e.rng)
	for i := range e.pts {
		e.refreshPoint(topology.NodeID(i))
	}
	return nil
}

// LatencyModel estimates pairwise latency between overlay nodes. The
// optimizer selects circuits with a model; experiments measure final
// circuits with the true topology model.
type LatencyModel interface {
	Latency(a, b topology.NodeID) float64
	Name() string
}

// TrueLatency reads shortest-path latencies from the topology — the
// simulator's ground truth.
type TrueLatency struct {
	Topo *topology.Topology
}

// Latency implements LatencyModel.
func (t TrueLatency) Latency(a, b topology.NodeID) float64 { return t.Topo.Latency(a, b) }

// Name implements LatencyModel.
func (TrueLatency) Name() string { return "true" }

// CoordLatency estimates latency as the distance between Vivaldi
// coordinates — the only information a decentralized optimizer has.
type CoordLatency struct {
	Env *Env
}

// Latency implements LatencyModel.
func (c CoordLatency) Latency(a, b topology.NodeID) float64 {
	return c.Env.vec[a].Distance(c.Env.vec[b])
}

// Name implements LatencyModel.
func (CoordLatency) Name() string { return "coords" }
