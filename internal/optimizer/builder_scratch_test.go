package optimizer

import (
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
)

// TestProblemForReusesScratch guards the ROADMAP "builder problem-graph
// churn" fix: once a Builder's scratch buffers are warm, converting a
// circuit into a placement problem must not allocate at all, regardless
// of how many candidate plans the optimizer walks.
func TestProblemForReusesScratch(t *testing.T) {
	env, q := testSetup(t, 5, false)
	enum := plan.NewEnumerator(env.Stats)
	plans, err := enum.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Env: env}
	skels := make([]*Circuit, 0, len(plans))
	for _, p := range plans {
		c, err := b.Skeleton(q, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		skels = append(skels, c)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		c := skels[i%len(skels)]
		i++
		prob, backMap := b.problemFor(c, nil)
		if len(prob.Vertices) != len(c.Services) || len(backMap) != len(c.Services) {
			t.Fatalf("problem shape wrong: %d vertices / %d back-map for %d services",
				len(prob.Vertices), len(backMap), len(c.Services))
		}
	})
	if allocs > 0 {
		t.Fatalf("problemFor = %.1f allocs/op after warm-up, want 0 (scratch regression)", allocs)
	}
}

// TestProblemForScratchMatchesFresh pins correctness of the reuse: a
// scratch-built problem must place identically to one built by a fresh
// Builder, including after the scratch was dirtied by a larger circuit.
func TestProblemForScratchMatchesFresh(t *testing.T) {
	env, q := testSetup(t, 6, false)
	enum := plan.NewEnumerator(env.Stats)
	plans, err := enum.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	shared := &Builder{Env: env}
	placer := placement.Relaxation{}
	for _, p := range plans[:minInt(6, len(plans))] {
		want, err := place(t, &Builder{Env: env}, q, p, placer)
		if err != nil {
			t.Fatal(err)
		}
		got, err := place(t, shared, q, p, placer)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Services) != len(got.Services) {
			t.Fatal("service counts diverge")
		}
		for i := range want.Services {
			w, g := want.Services[i].Virtual, got.Services[i].Virtual
			if len(w) != len(g) {
				t.Fatalf("service %d: coord dims diverge", i)
			}
			for k := range w {
				if w[k] != g[k] {
					t.Fatalf("service %d dim %d: scratch placement %v != fresh %v", i, k, g[k], w[k])
				}
			}
		}
	}
}

func place(t *testing.T, b *Builder, q query.Query, p *query.PlanNode, placer placement.VirtualPlacer) (*Circuit, error) {
	t.Helper()
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		return nil, err
	}
	if err := b.PlaceVirtual(c, placer); err != nil {
		return nil, err
	}
	return c, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
