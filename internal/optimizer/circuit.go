package optimizer

import (
	"fmt"
	"strings"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// PlacedService is one service of a deployed circuit bound to a physical
// node. The consumer endpoint is modelled as a pinned pseudo-service with
// a nil Plan.
type PlacedService struct {
	// Plan is the logical operator this service runs (nil for the
	// consumer sink).
	Plan *query.PlanNode
	// Node is the hosting overlay node.
	Node topology.NodeID
	// Pinned services have predetermined locations: producers, consumer,
	// and reused instances.
	Pinned bool
	// Reused marks services satisfied by an existing instance from
	// another circuit (multi-query optimization).
	Reused bool
	// ReusedFrom references the shared instance when Reused.
	ReusedFrom *ServiceInstance
	// Virtual is the coordinate chosen by virtual placement (empty for
	// pinned services).
	Virtual vivaldi.Coord
	// Signature canonically identifies the computed stream.
	Signature string
	// OutRate is the service output rate in KB/s.
	OutRate float64
	// InRate is the summed input rate, which drives load accounting.
	InRate float64
}

// Link is a directed circuit edge carrying Rate KB/s of stream data.
type Link struct {
	From, To int // indices into Circuit.Services
	Rate     float64
	// Shared links belong to a reused upstream sub-circuit and are not
	// charged to this circuit (their owner already pays for them).
	Shared bool
}

// Circuit is the physical instantiation of a query (the paper's term):
// services bound to nodes, connected by rated links.
type Circuit struct {
	Query    query.Query
	Plan     *query.PlanNode
	Services []*PlacedService
	Links    []Link

	rootIdx     int // index of the root service (plan root)
	consumerIdx int // index of the consumer sink
}

// Root returns the service running the plan root.
func (c *Circuit) Root() *PlacedService { return c.Services[c.rootIdx] }

// Consumer returns the consumer sink pseudo-service.
func (c *Circuit) Consumer() *PlacedService { return c.Services[c.consumerIdx] }

// UnpinnedServices returns the services this circuit itself placed (not
// producers, not the consumer, not reused instances).
func (c *Circuit) UnpinnedServices() []*PlacedService {
	var out []*PlacedService
	for _, s := range c.Services {
		if !s.Pinned && s.Plan != nil {
			out = append(out, s)
		}
	}
	return out
}

// NewServices returns all non-reused operator services (the ones whose
// load this circuit is charged for), including pinned producer-side
// filters but excluding sources and the consumer sink.
func (c *Circuit) NewServices() []*PlacedService {
	var out []*PlacedService
	for _, s := range c.Services {
		if s.Plan == nil || s.Reused || s.Plan.Kind == query.KindSource {
			continue
		}
		out = append(out, s)
	}
	return out
}

// NetworkUsage returns Σ rate·latency over the circuit's own (non-shared)
// links under the given latency model — the paper's network utilization
// metric, "the amount of data in transit in the network".
func (c *Circuit) NetworkUsage(m LatencyModel) float64 {
	var sum float64
	for _, l := range c.Links {
		if l.Shared {
			continue
		}
		sum += l.Rate * m.Latency(c.Services[l.From].Node, c.Services[l.To].Node)
	}
	return sum
}

// TotalLinkRate returns the summed rate of non-shared links (bandwidth
// injected into the network by this circuit).
func (c *Circuit) TotalLinkRate() float64 {
	var sum float64
	for _, l := range c.Links {
		if !l.Shared {
			sum += l.Rate
		}
	}
	return sum
}

// ConsumerLatency returns the maximum producer→consumer path latency
// under the model. Paths through reused instances start from the
// instance's recorded upstream latency.
func (c *Circuit) ConsumerLatency(m LatencyModel) float64 {
	// Build child lists from links (From feeds To).
	children := make([][]int, len(c.Services))
	for _, l := range c.Links {
		children[l.To] = append(children[l.To], l.From)
	}
	var depth func(i int) float64
	depth = func(i int) float64 {
		s := c.Services[i]
		if s.Reused && s.ReusedFrom != nil {
			return s.ReusedFrom.UpstreamLatency
		}
		var max float64
		for _, ch := range children[i] {
			d := depth(ch) + m.Latency(c.Services[ch].Node, c.Services[i].Node)
			if d > max {
				max = d
			}
		}
		return max
	}
	return depth(c.consumerIdx)
}

// LoadPenalty returns the summed scalar (load) cost-space components of
// the nodes hosting this circuit's own unpinned services — how much the
// circuit is leaning on busy nodes.
func (c *Circuit) LoadPenalty(e *Env) float64 {
	var sum float64
	for _, s := range c.UnpinnedServices() {
		for _, comp := range e.space.ScalarComponents(e.Point(s.Node)) {
			sum += comp
		}
	}
	return sum
}

// String renders the circuit's service-to-node binding for logs.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit q%d:", c.Query.ID)
	for _, s := range c.Services {
		switch {
		case s.Plan == nil:
			fmt.Fprintf(&b, " consumer@%d", s.Node)
		case s.Plan.Kind == query.KindSource:
			fmt.Fprintf(&b, " S%d@%d", s.Plan.Stream, s.Node)
		case s.Reused:
			fmt.Fprintf(&b, " %s@%d(reused)", s.Plan.Kind, s.Node)
		default:
			fmt.Fprintf(&b, " %s@%d", s.Plan.Kind, s.Node)
		}
	}
	return b.String()
}

// Validate checks internal consistency: link endpoints in range, exactly
// one consumer, a root feeding it, and rates propagated.
func (c *Circuit) Validate() error {
	if len(c.Services) == 0 {
		return fmt.Errorf("optimizer: circuit has no services")
	}
	if c.consumerIdx < 0 || c.consumerIdx >= len(c.Services) || c.Services[c.consumerIdx].Plan != nil {
		return fmt.Errorf("optimizer: circuit consumer index invalid")
	}
	feeds := false
	for _, l := range c.Links {
		if l.From < 0 || l.From >= len(c.Services) || l.To < 0 || l.To >= len(c.Services) {
			return fmt.Errorf("optimizer: link endpoints (%d,%d) out of range", l.From, l.To)
		}
		if l.Rate <= 0 {
			return fmt.Errorf("optimizer: link (%d,%d) rate %v", l.From, l.To, l.Rate)
		}
		if l.To == c.consumerIdx {
			feeds = true
		}
	}
	if !feeds {
		return fmt.Errorf("optimizer: nothing feeds the consumer")
	}
	return nil
}
