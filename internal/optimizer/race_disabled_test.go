//go:build !race

package optimizer

const raceEnabled = false
