package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/workload"
)

// incrFixture deploys a mixed workload — plain joins, aggregates, and
// multi-query reuse of a shared join — so incremental sweeps exercise
// every service kind: pinned endpoints, owned instances, reused
// placements, and ordinary operators.
func incrFixture(t *testing.T, seed int64, useDHT bool) (*Env, *Deployment, *Reoptimizer) {
	t.Helper()
	env, base := testSetup(t, seed, useDHT)
	reg := NewRegistry()
	dep := NewDeployment(env, reg)
	mq := NewMultiQuery(env, reg, 1e6)
	mq.Mapper = placement.OracleMapper{Source: env}
	stubs := env.Topo.StubNodeIDs()
	specs := []struct {
		streams []query.StreamID
		agg     float64
	}{
		{[]query.StreamID{0, 1}, 0},    // owner join
		{[]query.StreamID{0, 1}, 0.15}, // reuses the join, own aggregate
		{[]query.StreamID{0, 1}, 0.3},
		{[]query.StreamID{1, 2, 3}, 0},
		{[]query.StreamID{0, 2}, 0},
		{[]query.StreamID{2, 3}, 0},
	}
	for i, sp := range specs {
		q := base
		q.ID = query.QueryID(i + 1)
		q.Streams = sp.streams
		q.AggregateFraction = sp.agg
		q.Consumer = stubs[(3+5*i)%len(stubs)]
		res, err := mq.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			t.Fatal(err)
		}
	}
	ro := NewReoptimizer(dep)
	ro.Mapper = placement.OracleMapper{Source: env}
	return env, dep, ro
}

// applyPlan walks every move through the two-phase protocol.
func applyPlan(t *testing.T, dep *Deployment, plan MigrationPlan) {
	t.Helper()
	for _, m := range plan.Moves {
		tk, err := dep.BeginMigration(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanMakesNoLiveMutations is the satellite guard for the shadow
// refactor: a planning sweep — full, incremental, or evacuation — must
// leave the live environment byte-identical: no catalog republishes, no
// load mutations, no epoch bumps, no delta-log entries, no re-bindings.
func TestPlanMakesNoLiveMutations(t *testing.T) {
	env, dep, ro := incrFixture(t, 7, true)
	// Perturb so the sweeps have real work (and the evacuation below a
	// real victim); the perturbation itself is the last allowed mutation.
	stubs := env.Topo.StubNodeIDs()
	env.SetBackgroundLoad(stubs[1], 5.0)

	cat := env.Catalog()
	if cat == nil {
		t.Fatal("fixture has no DHT catalog")
	}
	muts := cat.Mutations()
	pubs := cat.NumPublished()
	epoch := env.Epoch()
	dirty := env.NumDirty()
	before := captureState(env, dep)

	plan, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var victim topology.NodeID
	found := false
	for _, c := range dep.Circuits() {
		for _, s := range c.Services {
			if !s.Pinned && !s.Reused && s.Plan != nil {
				victim, found = s.Node, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no movable service to evacuate")
	}
	evac, err := ro.PlanEvacuation(map[topology.NodeID]bool{victim: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 && len(evac.Moves) == 0 {
		t.Fatal("fixture planned nothing; the guards below would be vacuous")
	}

	if got := cat.Mutations(); got != muts {
		t.Fatalf("planning republished into the DHT catalog: %d mutations, want %d", got, muts)
	}
	if got := cat.NumPublished(); got != pubs {
		t.Fatalf("planning changed catalog population: %d, want %d", got, pubs)
	}
	if got := env.Epoch(); got != epoch {
		t.Fatalf("planning bumped the env epoch: %d, want %d", got, epoch)
	}
	if got := env.NumDirty(); got != dirty {
		t.Fatalf("planning grew the delta log: %d entries, want %d", got, dirty)
	}

	// PlanIncremental compacts the delta log by contract (it is the
	// log's single consumer) — everything else must still be untouched.
	if _, _, err := ro.PlanIncremental(); err != nil {
		t.Fatal(err)
	}
	if got := cat.Mutations(); got != muts {
		t.Fatalf("incremental planning republished into the DHT catalog: %d mutations, want %d", got, muts)
	}
	if got := env.Epoch(); got != epoch {
		t.Fatalf("incremental planning bumped the env epoch: %d, want %d", got, epoch)
	}
	requireStateEqual(t, before, captureState(env, dep), "after Plan+PlanEvacuation+PlanIncremental")
}

// TestPlanIncrementalEquivalence is the tentpole's core contract, pinned
// over a seeded drift sequence: two identical deployments, one planned
// with full sweeps and one incrementally, must produce bit-identical
// move lists (gains included) every round and end in identical states;
// a clean round must then evaluate nothing at all.
func TestPlanIncrementalEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 23, 51} {
		envA, depA, roA := incrFixture(t, seed, false)
		envB, depB, roB := incrFixture(t, seed, false)
		// The incremental side must never bail to a full sweep on delta
		// size: equivalence should hold through the delta path itself.
		roA.FullSweepFraction = 1.0
		// Matching thresholds, wide enough that the sweep's asymmetric
		// self-charge (load counted on the incumbent, not yet the
		// candidate) cannot make near-equal hosts ping-pong forever —
		// the settle loop below needs a fixed point to reach.
		roA.ImprovementThreshold = 0.3
		roB.ImprovementThreshold = 0.3

		if _, _, err := roA.PlanIncremental(); err != nil { // prime: full by contract
			t.Fatal(err)
		}

		churnA := rand.New(rand.NewSource(seed * 101))
		churnB := rand.New(rand.NewSource(seed * 101))
		churn := workload.Churn{LoadFraction: 0.15, LoadMax: 0.8}
		for round := 0; round < 6; round++ {
			workload.ApplyChurn(envA.Topo, envA, churn, churnA)
			workload.ApplyChurn(envB.Topo, envB, churn, churnB)

			inc, st, err := roA.PlanIncremental()
			if err != nil {
				t.Fatal(err)
			}
			if st.FullSweep {
				t.Fatalf("seed %d round %d: incremental side fell back to a full sweep (%s)", seed, round, st.Reason)
			}
			full, err := roB.Plan()
			if err != nil {
				t.Fatal(err)
			}
			if len(inc.Moves) != len(full.Moves) {
				t.Fatalf("seed %d round %d: incremental planned %d moves, full %d", seed, round, len(inc.Moves), len(full.Moves))
			}
			for i := range full.Moves {
				if inc.Moves[i] != full.Moves[i] {
					t.Fatalf("seed %d round %d: move %d diverges:\n inc  %+v\n full %+v", seed, round, i, inc.Moves[i], full.Moves[i])
				}
			}
			applyPlan(t, depA, inc)
			applyPlan(t, depB, full)
		}
		requireStateEqual(t, captureState(envB, depB), captureState(envA, depA), "after drift rounds")

		// Settle, then assert the quiescent fixed point: with no deltas
		// and no pending moves an incremental sweep touches nothing.
		for i := 0; ; i++ {
			plan, _, err := roA.PlanIncremental()
			if err != nil {
				t.Fatal(err)
			}
			applyPlan(t, depA, plan)
			if len(plan.Moves) == 0 {
				break
			}
			if i > 20 {
				t.Fatalf("seed %d: deployment did not settle", seed)
			}
		}
		plan, st, err := roA.PlanIncremental()
		if err != nil {
			t.Fatal(err)
		}
		if st.FullSweep || st.DirtyNodes != 0 || st.AffectedCircuits != 0 || plan.ServicesEvaluated != 0 || len(plan.Moves) != 0 {
			t.Fatalf("seed %d: clean round not quiescent: %+v, %d services evaluated, %d moves",
				seed, st, plan.ServicesEvaluated, len(plan.Moves))
		}
	}
}

// TestPlanIncrementalFallbackReasons pins every degeneration path to a
// full sweep: first call, oversized delta, exclude-set change, custom
// mapper, and a second consumer compacting the shared delta log past
// this planner's watermark.
func TestPlanIncrementalFallbackReasons(t *testing.T) {
	env, _, ro := incrFixture(t, 7, false)

	_, st, err := ro.PlanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullSweep || st.Reason != "first sweep" {
		t.Fatalf("first call: %+v, want full sweep (first sweep)", st)
	}

	rng := rand.New(rand.NewSource(99))
	workload.ApplyChurn(env.Topo, env, workload.Churn{LoadFraction: 0.5, LoadMax: 0.8}, rng)
	_, st, err = ro.PlanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullSweep || st.Reason != "delta too large" {
		t.Fatalf("oversized delta: %+v, want full sweep (delta too large)", st)
	}

	ro.Exclude = map[topology.NodeID]bool{env.Topo.StubNodeIDs()[0]: true}
	_, st, err = ro.PlanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullSweep || st.Reason != "exclude set changed" {
		t.Fatalf("exclude change: %+v, want full sweep (exclude set changed)", st)
	}
	// Same exclude again: no fallback.
	_, st, err = ro.PlanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if st.FullSweep {
		t.Fatalf("stable exclude: unexpected full sweep (%s)", st.Reason)
	}
	ro.Exclude = nil

	ro.Mapper = placement.VectorOnlyMapper{Source: env}
	_, st, err = ro.PlanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullSweep || st.Reason != "custom mapper" {
		t.Fatalf("custom mapper: %+v, want full sweep (custom mapper)", st)
	}
	ro.Mapper = placement.OracleMapper{Source: env}

	// A second consumer on the same deployment compacts the log past the
	// first consumer's watermark; the first must notice and re-prime.
	_, _, err = ro.PlanIncremental() // re-establish ro's watermark
	if err != nil {
		t.Fatal(err)
	}
	ro2 := NewReoptimizer(ro.Dep)
	ro2.Mapper = placement.OracleMapper{Source: env}
	workload.ApplyChurn(env.Topo, env, workload.Churn{LoadFraction: 0.05, LoadMax: 0.8}, rng)
	if _, _, err := ro2.PlanIncremental(); err != nil { // compacts through the churn epoch
		t.Fatal(err)
	}
	_, st, err = ro.PlanIncremental()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullSweep || st.Reason != "delta log compacted past watermark" {
		t.Fatalf("stolen log: %+v, want full sweep (delta log compacted past watermark)", st)
	}
}

// TestSweepCostsSharedConsumersAgainstMovedOwner is the regression test
// for mid-sweep shared-service mis-costing: when a sweep accepts a move
// of an instance's owning service, consumer circuits evaluated later in
// the same sweep must be costed against the instance's new host, not
// its stale one. The sequential replay below recomputes every move's
// gains on a fresh shadow with owner-move propagation applied; if the
// sweep had costed consumers against stale hosts, their recorded gains
// could not match.
func TestSweepCostsSharedConsumersAgainstMovedOwner(t *testing.T) {
	env, dep, ro := incrFixture(t, 3, false)
	ro.ImprovementThreshold = 0.01

	// Find the shared join: a reused placement in some consumer circuit,
	// and the executing service of the same signature in its owner.
	var ownerID query.QueryID
	ownerSvc := -1
	var instNode topology.NodeID
	var sig string
	for _, c := range dep.Circuits() {
		for _, s := range c.Services {
			if s.Reused {
				sig = s.Signature
			}
		}
	}
	if sig == "" {
		t.Fatal("fixture deployed no reused service")
	}
	for id, c := range dep.Circuits() {
		for i, s := range c.Services {
			if !s.Reused && s.Plan != nil && s.Signature == sig {
				ownerID, ownerSvc, instNode = id, i, s.Node
			}
		}
	}
	if ownerSvc < 0 {
		t.Fatalf("no owner found for shared signature %q", sig)
	}
	env.SetBackgroundLoad(instNode, 8)

	plan, err := ro.Plan()
	if err != nil {
		t.Fatal(err)
	}
	ownerAt := -1
	consumerAfter := false
	for i, m := range plan.Moves {
		if m.Query == ownerID && m.Service == ownerSvc {
			ownerAt = i
		} else if ownerAt >= 0 && m.Query != ownerID {
			consumerAfter = true
		}
	}
	if ownerAt < 0 {
		t.Fatal("overloading the instance host did not move the owning service; tune the fixture seed")
	}
	if !consumerAfter {
		t.Fatal("no consumer-circuit move follows the owner's; the propagation path is not exercised")
	}

	// Sequential replay: reproduce the sweep's in-shadow evaluation
	// contexts move by move and check the recorded gains to float
	// precision.
	sh := NewShadow(env)
	b := &Builder{Env: env}
	model := CoordLatency{Env: env}
	for i, m := range plan.Moves {
		c, ok := dep.Circuit(m.Query)
		if !ok {
			t.Fatalf("move %d targets unknown circuit %d", i, m.Query)
		}
		if err := b.placeVirtualAs(c, placement.Relaxation{}, sh.NodeOf); err != nil {
			t.Fatal(err)
		}
		s := c.Services[m.Service]
		if got := sh.NodeOf(s); got != m.From {
			t.Fatalf("move %d: replay finds service on node %d, move says From %d", i, got, m.From)
		}
		oldCost := shadowServiceCost(sh, c, m.Service, model)
		oldUsage := shadowIncidentUsage(sh, c, m.Service, model)
		sh.Rebind(s, m.To)
		newCost := shadowServiceCost(sh, c, m.Service, model)
		sh.ShiftLoad(m.From, m.To, s.InRate)
		ro.propagateRebind(sh, c, s, m.To)
		newUsage := shadowIncidentUsage(sh, c, m.Service, model)
		if g := oldCost - newCost; math.Abs(g-m.PredictedGain) > 1e-9 {
			t.Fatalf("move %d (%+v): replayed predicted gain %v, recorded %v", i, m, g, m.PredictedGain)
		}
		if g := oldUsage - newUsage; math.Abs(g-m.UsageGain) > 1e-9 {
			t.Fatalf("move %d (%+v): replayed usage gain %v, recorded %v", i, m, g, m.UsageGain)
		}
	}

	applyPlan(t, dep, plan)
	requireNoStaleReuse(t, dep)
}
