package optimizer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// randomRegistry fills a registry with n instances at random cost-space
// coordinates, cycling through nSigs signatures.
func randomRegistry(space *costspace.Space, n, nSigs int, rng *rand.Rand) *Registry {
	reg := NewRegistry()
	for i := 0; i < n; i++ {
		reg.Register(&ServiceInstance{
			Signature: fmt.Sprintf("sig-%d", i%nSigs),
			Node:      topology.NodeID(i),
			Coord:     space.NewPoint(vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200}, []float64{rng.Float64()}),
			Owner:     query.QueryID(i),
			RefCount:  1,
		})
	}
	return reg
}

// TestRegistryIndexedMatchesLinear pins the §3.4 semantics across the
// index cutover: matches (set and order) and examined counts from the
// costindex-backed path must be identical to the linear reference scan.
func TestRegistryIndexedMatchesLinear(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	rng := rand.New(rand.NewSource(7))
	reg := randomRegistry(space, 1500, 40, rng) // well past indexMinInstances
	if len(reg.all) < indexMinInstances {
		t.Fatal("fixture too small to exercise the indexed path")
	}
	for trial := 0; trial < 50; trial++ {
		target := space.NewPoint(vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200}, []float64{rng.Float64()})
		radius := rng.Float64() * 120
		sig := fmt.Sprintf("sig-%d", rng.Intn(40))

		gotM, gotEx := reg.FindWithinRadius(space, target, radius, sig)
		wantM, wantEx := findLinear(space, reg.all, target, radius, sig)
		if gotEx != wantEx {
			t.Fatalf("trial %d: examined %d, linear %d", trial, gotEx, wantEx)
		}
		if len(gotM) != len(wantM) {
			t.Fatalf("trial %d: %d matches, linear %d", trial, len(gotM), len(wantM))
		}
		for i := range gotM {
			if gotM[i] != wantM[i] {
				t.Fatalf("trial %d: match %d is node %d, linear has node %d",
					trial, i, gotM[i].Node, wantM[i].Node)
			}
		}
	}
}

// TestRegistryIndexInvalidation pins the epoch discipline: mutations
// between queries (register, unregister, instance moves) must be
// visible to the next radius query.
func TestRegistryIndexInvalidation(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	rng := rand.New(rand.NewSource(8))
	reg := randomRegistry(space, 200, 10, rng)
	target := space.NewPoint(vivaldi.Coord{50, 50}, []float64{0})

	_, _ = reg.FindWithinRadius(space, target, 50, "sig-0") // build the index
	extra := &ServiceInstance{
		Signature: "sig-new",
		Node:      9999,
		Coord:     space.NewPoint(vivaldi.Coord{50, 50}, []float64{0}),
		RefCount:  1,
	}
	reg.Register(extra)
	if m, _ := reg.FindWithinRadius(space, target, 1, "sig-new"); len(m) != 1 || m[0] != extra {
		t.Fatalf("index did not observe Register: matches = %v", m)
	}
	reg.UpdateInstance(extra, 9999, space.NewPoint(vivaldi.Coord{190, 190}, []float64{0}))
	if m, _ := reg.FindWithinRadius(space, target, 1, "sig-new"); len(m) != 0 {
		t.Fatal("index did not observe UpdateInstance move")
	}
	reg.Unregister(extra)
	if m, _ := reg.FindWithinRadius(space, space.NewPoint(vivaldi.Coord{190, 190}, []float64{0}), 1, "sig-new"); len(m) != 0 {
		t.Fatal("index did not observe Unregister")
	}
}

// TestRegistryConcurrentUse exercises the registry under -race: readers
// running radius queries while writers register, unregister, and move
// instances — the OptimizeBatch-workers-share-a-registry scenario.
func TestRegistryConcurrentUse(t *testing.T) {
	space := costspace.NewLatencyLoadSpace(100)
	rng := rand.New(rand.NewSource(9))
	reg := randomRegistry(space, 300, 20, rng)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				target := space.NewPoint(vivaldi.Coord{r.Float64() * 200, r.Float64() * 200}, []float64{r.Float64()})
				reg.FindWithinRadius(space, target, r.Float64()*100, fmt.Sprintf("sig-%d", r.Intn(20)))
				reg.Len()
			}
		}(int64(w))
	}
	writer := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		inst := &ServiceInstance{
			Signature: fmt.Sprintf("sig-%d", writer.Intn(20)),
			Node:      topology.NodeID(1000 + i),
			Coord:     space.NewPoint(vivaldi.Coord{writer.Float64() * 200, writer.Float64() * 200}, []float64{writer.Float64()}),
			RefCount:  1,
		}
		reg.Register(inst)
		if insts := reg.Instances(); len(insts) > 0 {
			mv := insts[writer.Intn(len(insts))]
			reg.UpdateInstance(mv, mv.Node, space.NewPoint(vivaldi.Coord{writer.Float64() * 200, writer.Float64() * 200}, []float64{writer.Float64()}))
		}
		if i%3 == 0 {
			reg.Unregister(inst)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkRegistryFindWithinRadius10k compares the costindex-backed
// radius query against the linear reference at 10k registered
// instances — the satellite's headline win.
func BenchmarkRegistryFindWithinRadius10k(b *testing.B) {
	space := costspace.NewLatencyLoadSpace(100)
	rng := rand.New(rand.NewSource(10))
	reg := randomRegistry(space, 10000, 200, rng)
	targets := make([]costspace.Point, 64)
	for i := range targets {
		targets[i] = space.NewPoint(vivaldi.Coord{rng.Float64() * 200, rng.Float64() * 200}, []float64{rng.Float64()})
	}

	b.Run("indexed", func(b *testing.B) {
		reg.FindWithinRadius(space, targets[0], 10, "sig-0") // warm the index
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.FindWithinRadius(space, targets[i%len(targets)], 10, "sig-0")
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			findLinear(space, reg.all, targets[i%len(targets)], 10, "sig-0")
		}
	})
}
