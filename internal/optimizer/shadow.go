package optimizer

import (
	"github.com/hourglass/sbon/internal/costindex"
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/topology"
)

// ShadowEnv is a copy-on-write planning view over a live Env: sweeps
// simulate load shifts and service re-bindings against the shadow, so
// the live loads, cost-space points, k-NN index, and DHT catalog are
// never touched while a plan is computed. Reads fall through to the
// live snapshot for untouched state; writes land in private overlay
// maps that die with the shadow — there is nothing to roll back.
//
// The shadow implements placement.NodeSource and placement.IndexedSource,
// so mappers cost candidates against the simulated state. Its index
// starts as the live env's (shared, immutable) and is patched
// persistently per simulated load shift; when the patch overlay's
// budget is exhausted the shadow materializes its full point set and
// rebuilds privately.
//
// A ShadowEnv is single-goroutine scratch for one sweep. The live Env
// must not be mutated while a shadow over it is in use.
type ShadowEnv struct {
	env   *Env
	loads map[topology.NodeID]float64
	pts   map[topology.NodeID]costspace.Point
	binds map[*PlacedService]topology.NodeID
	idx   *costindex.Index  // nil after a patch-budget overflow
	full  []costspace.Point // materialized points for private rebuilds
}

// NewShadow returns a clean shadow over the live environment.
func NewShadow(env *Env) *ShadowEnv {
	return &ShadowEnv{
		env:   env,
		loads: make(map[topology.NodeID]float64),
		pts:   make(map[topology.NodeID]costspace.Point),
		binds: make(map[*PlacedService]topology.NodeID),
		idx:   env.CostIndex(),
	}
}

// Space implements placement.NodeSource.
func (sh *ShadowEnv) Space() *costspace.Space { return sh.env.Space() }

// NodeIDs implements placement.NodeSource.
func (sh *ShadowEnv) NodeIDs() []topology.NodeID { return sh.env.NodeIDs() }

// Point implements placement.NodeSource: the simulated point when the
// node's load was shifted, the live point otherwise.
func (sh *ShadowEnv) Point(n topology.NodeID) costspace.Point {
	if p, ok := sh.pts[n]; ok {
		return p
	}
	return sh.env.Point(n)
}

// Load returns the node's simulated raw load.
func (sh *ShadowEnv) Load(n topology.NodeID) float64 {
	if l, ok := sh.loads[n]; ok {
		return l
	}
	return sh.env.Load(n)
}

// NodeOf resolves a service's host under the shadow: its simulated
// binding when the sweep moved (or re-bound) it, its live node
// otherwise.
func (sh *ShadowEnv) NodeOf(s *PlacedService) topology.NodeID {
	if n, ok := sh.binds[s]; ok {
		return n
	}
	return s.Node
}

// Rebind records a simulated binding for the service.
func (sh *ShadowEnv) Rebind(s *PlacedService, n topology.NodeID) { sh.binds[s] = n }

// ShiftLoad moves a service's load charge between shadow nodes,
// mirroring the live Remove/AddServiceLoad pair an applied move would
// perform (including the background-load release clamp), and refreshes
// both simulated points.
func (sh *ShadowEnv) ShiftLoad(from, to topology.NodeID, inRate float64) {
	perRate := sh.env.Config().LoadPerRate
	sh.setLoad(from, sh.Load(from)-inRate*perRate)
	sh.setLoad(to, sh.Load(to)+inRate*perRate)
}

// setLoad writes a simulated load, clamped at the node's background
// component exactly as Env.RemoveServiceLoad clamps, and rebuilds the
// node's simulated point.
func (sh *ShadowEnv) setLoad(n topology.NodeID, l float64) {
	if min := sh.env.BackgroundLoad(n); l < min {
		l = min
	}
	sh.loads[n] = l
	pt := sh.env.Space().NewPoint(sh.env.VecCoord(n), []float64{l})
	sh.pts[n] = pt
	if sh.full != nil {
		sh.full[n] = pt
	}
	if sh.idx != nil {
		if next, ok := sh.idx.WithPoint(int32(n), pt, sh.idx.Version()); ok {
			sh.idx = next
		} else {
			sh.idx = nil // budget exhausted; rebuild privately on demand
		}
	}
}

// CostIndex implements placement.IndexedSource over the simulated
// points. The index is exact: patched overlays and private rebuilds
// return identical nearest-neighbor answers by the costindex contract.
func (sh *ShadowEnv) CostIndex() *costindex.Index {
	if sh.idx == nil {
		if sh.full == nil {
			sh.full = append([]costspace.Point(nil), sh.env.pts...)
			for n, p := range sh.pts {
				sh.full[n] = p
			}
		}
		sh.idx = costindex.Build(sh.env.Space(), sh.full, 0)
	}
	return sh.idx
}

// Touched returns how many nodes' simulated state diverges from the
// live environment.
func (sh *ShadowEnv) Touched() int { return len(sh.pts) }

// shadowIncidentUsage is incidentUsage with every endpoint resolved
// through the shadow's simulated bindings.
func shadowIncidentUsage(sh *ShadowEnv, c *Circuit, i int, m LatencyModel) float64 {
	var sum float64
	for _, l := range c.Links {
		if l.Shared {
			continue
		}
		if l.From == i || l.To == i {
			sum += l.Rate * m.Latency(sh.NodeOf(c.Services[l.From]), sh.NodeOf(c.Services[l.To]))
		}
	}
	return sum
}

// shadowServiceCost is serviceCost evaluated against the shadow:
// incident link usage under simulated bindings plus the simulated
// host's weighted scalar components scaled by the service's input rate.
func shadowServiceCost(sh *ShadowEnv, c *Circuit, i int, m LatencyModel) float64 {
	cost := shadowIncidentUsage(sh, c, i, m)
	s := c.Services[i]
	var scalar float64
	for _, comp := range sh.Space().ScalarComponents(sh.Point(sh.NodeOf(s))) {
		scalar += comp
	}
	return cost + s.InRate*scalar
}
