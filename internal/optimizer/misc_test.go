package optimizer

import (
	"strings"
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
)

func TestCircuitStringMentionsAllServices(t *testing.T) {
	env, q := testSetup(t, 80, false)
	res, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Circuit.String()
	for _, want := range []string{"S0@", "S1@", "join@", "consumer@"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestCircuitTotalLinkRateAndLoadPenalty(t *testing.T) {
	env, q := testSetup(t, 81, false)
	res, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Circuit.TotalLinkRate(); got <= 0 {
		t.Fatalf("TotalLinkRate = %v", got)
	}
	if got := res.Circuit.LoadPenalty(env); got < 0 {
		t.Fatalf("LoadPenalty = %v", got)
	}
}

func TestCircuitNewServicesExcludesSourcesAndConsumer(t *testing.T) {
	env, q := testSetup(t, 82, false)
	res, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Circuit.NewServices() {
		if s.Plan == nil || s.Plan.Kind == query.KindSource {
			t.Fatal("NewServices leaked a source or the consumer")
		}
	}
}

func TestFullReoptimizeSwapPath(t *testing.T) {
	env, q := testSetup(t, 83, false)
	truth := TrueLatency{Topo: env.Topo}
	mapper := placement.OracleMapper{Source: env}
	opt := &Integrated{Env: env, Model: truth, Mapper: mapper}

	// Deploy a deliberately bad circuit: every unpinned service at the
	// consumer of the farthest producer.
	enum := opt.components
	_ = enum
	res, err := (&TwoStep{Env: env, Model: truth, Mapper: mapper}).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	bad := res.Circuit
	// Sabotage the placement so FullReoptimize has something to win.
	far := env.Topo.StubNodeIDs()[0]
	for _, s := range bad.UnpinnedServices() {
		s.Node = far
	}
	dep := NewDeployment(env, nil)
	if err := dep.Deploy(bad); err != nil {
		t.Fatal(err)
	}
	ro := NewReoptimizer(dep)
	ro.Model = truth
	ro.Mapper = mapper
	swapped, err := ro.FullReoptimize(q.ID, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("sabotaged circuit not swapped")
	}
	c, ok := dep.Circuit(q.ID)
	if !ok {
		t.Fatal("query lost after swap")
	}
	if c == bad {
		t.Fatal("old circuit still deployed")
	}
	if c.NetworkUsage(truth) > bad.NetworkUsage(truth) {
		t.Fatal("swap did not improve usage")
	}
}

func TestMultiQueryNilRegistry(t *testing.T) {
	env, q := testSetup(t, 84, false)
	mq := &MultiQuery{Env: env}
	if _, err := mq.Optimize(q); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestMultiQueryInvalidQuery(t *testing.T) {
	env, _ := testSetup(t, 85, false)
	mq := NewMultiQuery(env, NewRegistry(), 10)
	if _, err := mq.Optimize(query.Query{ID: 1}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestTwoStepInvalidQuery(t *testing.T) {
	env, _ := testSetup(t, 86, false)
	if _, err := NewTwoStep(env).Optimize(query.Query{ID: 1}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestIntegratedInvalidQuery(t *testing.T) {
	env, _ := testSetup(t, 87, false)
	if _, err := NewIntegrated(env).Optimize(query.Query{ID: 1}); err == nil {
		t.Fatal("invalid query accepted")
	}
	if _, err := NewIntegrated(env).Optimize(query.Query{ID: 1, Streams: []query.StreamID{99}}); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestConsumerLatencyReusedPath(t *testing.T) {
	env, q := testSetup(t, 88, false)
	reg := NewRegistry()
	dep := NewDeployment(env, reg)
	mq := NewMultiQuery(env, reg, 1e18)
	r1, err := mq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Deploy(r1.Circuit); err != nil {
		t.Fatal(err)
	}
	q2 := q
	q2.ID = 2
	q2.Consumer = env.Topo.StubNodeIDs()[1]
	r2, err := mq.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedServices == 0 {
		t.Skip("no reuse; path not exercisable on this seed")
	}
	truth := TrueLatency{Topo: env.Topo}
	lat := r2.Circuit.ConsumerLatency(truth)
	if lat <= 0 {
		t.Fatalf("latency through reused instance = %v", lat)
	}
	// Latency must include the reused instance's upstream component.
	for _, s := range r2.Circuit.Services {
		if s.Reused && s.ReusedFrom.UpstreamLatency > lat {
			t.Fatalf("consumer latency %v below reused upstream %v", lat, s.ReusedFrom.UpstreamLatency)
		}
	}
}

func TestEnvReembedCoordinates(t *testing.T) {
	env, _ := testSetup(t, 89, false)
	before := env.VecCoord(3).Clone()
	env.Topo.PerturbLatencies(env.Rand(), 0.5)
	if err := env.ReembedCoordinates(); err != nil {
		t.Fatal(err)
	}
	after := env.VecCoord(3)
	if before.Distance(after) == 0 {
		t.Log("warning: coordinate unchanged after re-embedding (possible)")
	}
	if env.EmbeddingQuality.Pairs == 0 {
		t.Fatal("embedding quality not refreshed")
	}
}

func TestUpstreamLatencyOfMissingService(t *testing.T) {
	env, q := testSetup(t, 90, false)
	res, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ghost := &PlacedService{}
	if got := upstreamLatency(res.Circuit, ghost, TrueLatency{Topo: env.Topo}); got != 0 {
		t.Fatalf("upstreamLatency of foreign service = %v, want 0", got)
	}
}
