package optimizer

import (
	"fmt"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// Builder turns logical plans into circuits: it constructs the service
// skeleton, runs virtual placement over the cost space's vector subspace,
// and maps unpinned services to physical nodes.
//
// Placement conventions (documented in DESIGN.md):
//   - Source leaves are pinned at their producers ("one cannot move
//     mountains").
//   - A filter directly above a source is pushed down and pinned on the
//     producer node (standard pushdown; the paper's unpinned services are
//     the joins/aggregates).
//   - Everything else is unpinned and placed in the cost space.
type Builder struct {
	Env *Env

	// scratch recycles the placement problem graph across candidate
	// plans (the ROADMAP "builder problem-graph churn" item): vertex and
	// link slices, the service↔vertex index maps, and the pinned
	// coordinate buffers are reused by every problemFor call on this
	// Builder. A Builder is consequently single-goroutine; concurrent
	// optimizations each own one (one per batch worker).
	scratch struct {
		prob        placement.Problem
		svcToVertex []int
		vertexToSvc []int
		coords      []vivaldi.Coord
	}
}

// reuseFn lets the multi-query optimizer substitute an existing service
// instance for a plan subtree. A nil function never reuses.
type reuseFn func(n *query.PlanNode) *ServiceInstance

// Skeleton builds the circuit's services and links from a rated plan.
// Reused subtrees become single pinned services with shared upstream
// cost. The returned circuit has no virtual coordinates or physical
// nodes for unpinned services yet.
func (b *Builder) Skeleton(q query.Query, root *query.PlanNode, reuse reuseFn) (*Circuit, error) {
	if root == nil {
		return nil, fmt.Errorf("optimizer: nil plan")
	}
	c := &Circuit{Query: q, Plan: root}

	var build func(n *query.PlanNode, atProducer bool) (int, error)
	build = func(n *query.PlanNode, atProducer bool) (int, error) {
		// Multi-query reuse: an existing instance serves this whole
		// subtree.
		if reuse != nil && n.Kind != query.KindSource {
			if inst := reuse(n); inst != nil {
				idx := len(c.Services)
				c.Services = append(c.Services, &PlacedService{
					Plan:       n,
					Node:       inst.Node,
					Pinned:     true,
					Reused:     true,
					ReusedFrom: inst,
					Signature:  n.Signature(),
					OutRate:    n.OutRate,
				})
				return idx, nil
			}
		}
		switch n.Kind {
		case query.KindSource:
			prod, ok := b.Env.Stats.Producer(n.Stream)
			if !ok {
				return 0, fmt.Errorf("optimizer: stream %d has no producer", n.Stream)
			}
			idx := len(c.Services)
			c.Services = append(c.Services, &PlacedService{
				Plan:      n,
				Node:      prod,
				Pinned:    true,
				Signature: n.Signature(),
				OutRate:   n.OutRate,
			})
			return idx, nil
		case query.KindFilter:
			childIdx, err := build(n.Left, false)
			if err != nil {
				return 0, err
			}
			child := c.Services[childIdx]
			pinned := child.Plan != nil && child.Plan.Kind == query.KindSource && !child.Reused
			idx := len(c.Services)
			svc := &PlacedService{
				Plan:      n,
				Pinned:    pinned,
				Signature: n.Signature(),
				OutRate:   n.OutRate,
				InRate:    n.Left.OutRate,
			}
			if pinned {
				svc.Node = child.Node // pushdown to producer
			}
			c.Services = append(c.Services, svc)
			c.Links = append(c.Links, Link{From: childIdx, To: idx, Rate: n.Left.OutRate})
			return idx, nil
		case query.KindAggregate:
			childIdx, err := build(n.Left, false)
			if err != nil {
				return 0, err
			}
			idx := len(c.Services)
			c.Services = append(c.Services, &PlacedService{
				Plan:      n,
				Signature: n.Signature(),
				OutRate:   n.OutRate,
				InRate:    n.Left.OutRate,
			})
			c.Links = append(c.Links, Link{From: childIdx, To: idx, Rate: n.Left.OutRate})
			return idx, nil
		case query.KindJoin, query.KindUnion:
			li, err := build(n.Left, false)
			if err != nil {
				return 0, err
			}
			ri, err := build(n.Right, false)
			if err != nil {
				return 0, err
			}
			idx := len(c.Services)
			c.Services = append(c.Services, &PlacedService{
				Plan:      n,
				Signature: n.Signature(),
				OutRate:   n.OutRate,
				InRate:    n.Left.OutRate + n.Right.OutRate,
			})
			c.Links = append(c.Links,
				Link{From: li, To: idx, Rate: n.Left.OutRate},
				Link{From: ri, To: idx, Rate: n.Right.OutRate},
			)
			return idx, nil
		default:
			return 0, fmt.Errorf("optimizer: unsupported plan node kind %v", n.Kind)
		}
	}

	rootIdx, err := build(root, false)
	if err != nil {
		return nil, err
	}
	c.rootIdx = rootIdx
	c.consumerIdx = len(c.Services)
	c.Services = append(c.Services, &PlacedService{
		Plan:   nil,
		Node:   q.Consumer,
		Pinned: true,
	})
	c.Links = append(c.Links, Link{From: rootIdx, To: c.consumerIdx, Rate: root.OutRate})
	return c, nil
}

// problemFor converts the circuit into a placement problem over the
// vector subspace. The returned index slice maps problem vertices back to
// circuit services. Both the problem and the index slice are scratch
// state owned by the Builder: they are valid until the next problemFor
// call. Unpinned vertices always start with a nil coordinate so the
// placer's seeding is independent of whatever the scratch held before.
//
// nodeOf resolves a pinned service's host; nil means live bindings. A
// shadow sweep passes its simulated resolver so re-bound shared
// instances anchor later placements at their simulated positions.
func (b *Builder) problemFor(c *Circuit, nodeOf func(*PlacedService) topology.NodeID) (*placement.Problem, []int) {
	s := &b.scratch
	p := &s.prob
	p.Vertices = p.Vertices[:0]
	p.Links = p.Links[:0]
	s.svcToVertex = s.svcToVertex[:0]
	s.vertexToSvc = s.vertexToSvc[:0]
	for i, svc := range c.Services {
		vi := len(p.Vertices)
		v := placement.Vertex{Pinned: svc.Pinned}
		if svc.Pinned {
			node := svc.Node
			if nodeOf != nil {
				node = nodeOf(svc)
			}
			src := b.Env.VecCoord(node)
			for len(s.coords) <= vi {
				s.coords = append(s.coords, nil)
			}
			buf := s.coords[vi]
			if cap(buf) < len(src) {
				buf = make(vivaldi.Coord, len(src))
			}
			buf = buf[:len(src)]
			copy(buf, src)
			s.coords[vi] = buf
			v.Coord = buf
		}
		s.svcToVertex = append(s.svcToVertex, vi)
		s.vertexToSvc = append(s.vertexToSvc, i)
		p.Vertices = append(p.Vertices, v)
	}
	for _, l := range c.Links {
		if l.Shared {
			continue
		}
		p.Links = append(p.Links, placement.Link{
			A:    s.svcToVertex[l.From],
			B:    s.svcToVertex[l.To],
			Rate: l.Rate,
		})
	}
	return p, s.vertexToSvc
}

// PlaceVirtual runs the virtual placer over the circuit and records the
// resulting coordinates on its unpinned services.
func (b *Builder) PlaceVirtual(c *Circuit, placer placement.VirtualPlacer) error {
	return b.placeVirtualAs(c, placer, nil)
}

// placeVirtualAs is PlaceVirtual with pinned hosts resolved through
// nodeOf (nil = live bindings) — the shadow-sweep entry point.
func (b *Builder) placeVirtualAs(c *Circuit, placer placement.VirtualPlacer, nodeOf func(*PlacedService) topology.NodeID) error {
	prob, vertexToSvc := b.problemFor(c, nodeOf)
	if err := placer.PlaceVirtual(prob); err != nil {
		return err
	}
	for vi, si := range vertexToSvc {
		if !c.Services[si].Pinned {
			c.Services[si].Virtual = prob.Vertices[vi].Coord.Clone()
		}
	}
	return nil
}

// MapPhysical binds every unpinned service to a node using the mapper,
// starting DHT lookups from the query's consumer (the node performing
// the optimization). It returns aggregate mapping statistics.
func (b *Builder) MapPhysical(c *Circuit, mapper placement.Mapper) (placement.MapStats, error) {
	var agg placement.MapStats
	for _, s := range c.Services {
		if s.Pinned || s.Plan == nil {
			continue
		}
		if len(s.Virtual) == 0 {
			return agg, fmt.Errorf("optimizer: service %s has no virtual coordinate", s.Signature)
		}
		node, st, err := mapper.MapCoord(c.Query.Consumer, s.Virtual, nil)
		if err != nil {
			return agg, err
		}
		s.Node = node
		agg.LookupHops += st.LookupHops
		agg.PeersWalked += st.PeersWalked
		agg.Candidates += st.Candidates
		agg.Error += st.Error
	}
	return agg, nil
}

// AssignFixed binds every unpinned service to the node returned by
// choose, bypassing virtual placement (used by baseline strategies).
func (b *Builder) AssignFixed(c *Circuit, choose func(s *PlacedService) topology.NodeID) {
	for _, s := range c.Services {
		if s.Pinned || s.Plan == nil {
			continue
		}
		s.Node = choose(s)
	}
}
