package optimizer

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/vivaldi"
)

// hideIndex exposes a Snapshot as a plain NodeSource (no CostIndex
// method), forcing the mappers' linear-scan fallback — the reference
// path for identity checks.
type hideIndex struct{ s *Snapshot }

func (h hideIndex) Space() *costspace.Space                 { return h.s.Space() }
func (h hideIndex) NodeIDs() []topology.NodeID              { return h.s.NodeIDs() }
func (h hideIndex) Point(n topology.NodeID) costspace.Point { return h.s.Point(n) }

// TestSnapshotIndexMatchesLinearScanAcrossMutations drives load churn
// against a live environment and checks after every mutation that
// index-backed mapping equals the linear scan — i.e. the epoch
// versioning (rebuilds and single-point patches) never serves stale
// coordinates.
func TestSnapshotIndexMatchesLinearScanAcrossMutations(t *testing.T) {
	env, _ := testSetup(t, 17, false)
	rng := rand.New(rand.NewSource(23))
	n := env.Topo.NumNodes()

	checkIdentity := func(when string) {
		t.Helper()
		linear := placement.OracleMapper{Source: hideIndex{env.Snapshot}}
		indexed := placement.OracleMapper{Source: env.Snapshot}
		for q := 0; q < 5; q++ {
			vec := vivaldi.Coord{rng.NormFloat64() * 60, rng.NormFloat64() * 60}
			wn, ws, werr := linear.MapCoord(0, vec, nil)
			gn, gs, gerr := indexed.MapCoord(0, vec, nil)
			if werr != nil || gerr != nil {
				t.Fatalf("%s: map errors %v / %v", when, werr, gerr)
			}
			if gn != wn || gs != ws {
				t.Fatalf("%s: indexed map = node %d stats %+v, linear = node %d stats %+v",
					when, gn, gs, wn, ws)
			}
		}
	}

	checkIdentity("initial")
	if v := env.CostIndex().Version(); v != env.Epoch() {
		t.Fatalf("index version %d, epoch %d", v, env.Epoch())
	}

	for step := 0; step < 40; step++ {
		node := topology.NodeID(rng.Intn(n))
		switch step % 3 {
		case 0:
			env.SetBackgroundLoad(node, rng.Float64()*0.9)
		case 1:
			env.AddServiceLoad(node, rng.Float64()*400)
		case 2:
			env.NoteStatsChanged() // moves no points; index must re-stamp
		}
		checkIdentity("after mutation")
		if v := env.CostIndex().Version(); v != env.Epoch() {
			t.Fatalf("step %d: index version %d, epoch %d", step, v, env.Epoch())
		}
	}

	// Re-embedding moves every point: the index must still agree after
	// the wholesale invalidation it causes.
	env.Topo.PerturbLatencies(rng, 0.3)
	if err := env.ReembedCoordinates(); err != nil {
		t.Fatal(err)
	}
	checkIdentity("after re-embedding")
}

// TestFrozenSnapshotIndexSharedConcurrently builds a frozen snapshot and
// has many goroutines race the lazy index build while mapping (run with
// -race in CI): all results must equal the live environment's
// sequential mapping, and the frozen env must keep serving the epoch it
// was frozen at even while the live env mutates.
func TestFrozenSnapshotIndexSharedConcurrently(t *testing.T) {
	env, _ := testSetup(t, 19, false)
	snap := env.Freeze()

	targets := make([]vivaldi.Coord, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range targets {
		targets[i] = vivaldi.Coord{rng.NormFloat64() * 60, rng.NormFloat64() * 60}
	}
	want := make([]topology.NodeID, len(targets))
	for i, vec := range targets {
		n, _, err := (placement.OracleMapper{Source: env.Snapshot}).MapCoord(0, vec, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}

	// Mutate the live env: the frozen snapshot must not notice.
	env.SetBackgroundLoad(0, 0.99)

	const goroutines = 16
	got := make([][]topology.NodeID, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			m := placement.OracleMapper{Source: snap.Snapshot}
			out := make([]topology.NodeID, len(targets))
			for i, vec := range targets {
				n, _, err := m.MapCoord(0, vec, nil)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = n
			}
			got[g] = out
		}(g)
	}
	wg.Wait()
	for g := range got {
		for i := range targets {
			if got[g][i] != want[i] {
				t.Fatalf("goroutine %d target %d: node %d, want %d", g, i, got[g][i], want[i])
			}
		}
	}
}

// TestSnapshotIndexPatching checks the single-point churn path: an
// epoch bump from one load change patches the already-built index
// instead of rebuilding, and the patch overlay collapses when the point
// moves back.
func TestSnapshotIndexPatching(t *testing.T) {
	env, _ := testSetup(t, 29, false)
	ix0 := env.CostIndex()
	if ix0.NumPatched() != 0 {
		t.Fatalf("fresh index has %d patches", ix0.NumPatched())
	}
	env.SetBackgroundLoad(3, 0.7)
	ix1 := env.CostIndex()
	if ix1.Version() != env.Epoch() {
		t.Fatalf("patched index version %d, epoch %d", ix1.Version(), env.Epoch())
	}
	if ix1.NumPatched() != 1 {
		t.Fatalf("after one move: %d patches, want 1", ix1.NumPatched())
	}
	// NodeIDs must stay the construction-time slice (no per-call alloc).
	a, b := env.NodeIDs(), env.NodeIDs()
	if &a[0] != &b[0] {
		t.Fatal("NodeIDs returned distinct backing arrays")
	}
	if fa := env.Freeze().NodeIDs(); &fa[0] != &a[0] {
		t.Fatal("frozen snapshot does not share the NodeIDs slice")
	}
}
