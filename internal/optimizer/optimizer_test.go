package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/plan"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// smallTopo returns a ~20-node transit-stub topology for fast tests.
func smallTopo(t *testing.T, seed int64) *topology.Topology {
	t.Helper()
	cfg := topology.Config{
		TransitDomains:      2,
		TransitNodes:        2,
		StubsPerTransit:     1,
		StubNodes:           4,
		IntraStubLatency:    [2]float64{1, 5},
		StubUplinkLatency:   [2]float64{2, 10},
		IntraTransitLatency: [2]float64{8, 20},
		InterTransitLatency: [2]float64{30, 80},
		ExtraStubEdgeProb:   0.2,
	}
	return topology.MustGenerate(cfg, rand.New(rand.NewSource(seed)))
}

// testSetup builds a small env with a 4-stream catalog: producers placed
// on stub nodes of distinct domains.
func testSetup(t *testing.T, seed int64, useDHT bool) (*Env, query.Query) {
	t.Helper()
	topo := smallTopo(t, seed)
	stats, err := query.NewCatalog(0.8)
	if err != nil {
		t.Fatal(err)
	}
	stubs := topo.StubNodeIDs()
	rng := rand.New(rand.NewSource(seed + 1000))
	for i := 0; i < 4; i++ {
		prod := stubs[(i*len(stubs)/4+rng.Intn(2))%len(stubs)]
		if err := stats.AddStream(query.StreamID(i), prod, 50+rng.Float64()*200); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultEnvConfig(seed)
	cfg.UseDHT = useDHT
	cfg.VivaldiRounds = 25
	env, err := NewEnv(topo, stats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{
		ID:       1,
		Consumer: stubs[len(stubs)-1],
		Streams:  []query.StreamID{0, 1, 2, 3},
	}
	return env, q
}

func TestNewEnvBasics(t *testing.T) {
	env, _ := testSetup(t, 1, true)
	n := env.Topo.NumNodes()
	if len(env.NodeIDs()) != n {
		t.Fatalf("NodeIDs() has %d entries, want %d", len(env.NodeIDs()), n)
	}
	for _, id := range env.NodeIDs() {
		p := env.Point(id)
		if len(p) != env.Space().Dims() {
			t.Fatalf("point for node %d has %d dims", id, len(p))
		}
		if env.Load(id) < 0 || env.Load(id) >= 1 {
			t.Fatalf("node %d load %v out of range", id, env.Load(id))
		}
	}
	if env.Catalog() == nil {
		t.Fatal("UseDHT env has nil catalog")
	}
	if env.Catalog().NumPublished() != n {
		t.Fatalf("catalog has %d entries, want %d", env.Catalog().NumPublished(), n)
	}
	if env.EmbeddingQuality.Pairs == 0 {
		t.Fatal("embedding quality not measured")
	}
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(nil, nil, DefaultEnvConfig(1)); err == nil {
		t.Fatal("nil topology accepted")
	}
}

// Env implements placement.NodeSource.
var _ placement.NodeSource = (*Env)(nil)

func TestLoadAccounting(t *testing.T) {
	env, _ := testSetup(t, 2, true)
	node := topology.NodeID(5)
	before := env.Load(node)
	beforePt := env.Point(node).Clone()

	env.AddServiceLoad(node, 2000) // 2000 KB/s * 1/2000 = +1.0 load
	if got := env.Load(node); math.Abs(got-(before+1.0)) > 1e-9 {
		t.Fatalf("load after add = %v, want %v", got, before+1.0)
	}
	after := env.Point(node)
	if env.Space().Distance(beforePt, after) == 0 {
		t.Fatal("point unchanged after load change")
	}
	// Catalog must see the update.
	e, ok := env.Catalog().PublishedEntry(node)
	if !ok || env.Space().Distance(e.Point, after) != 0 {
		t.Fatal("catalog entry not refreshed")
	}

	env.RemoveServiceLoad(node, 2000)
	if got := env.Load(node); math.Abs(got-before) > 1e-9 {
		t.Fatalf("load after remove = %v, want %v", got, before)
	}
	// Removing more than present floors at background.
	env.RemoveServiceLoad(node, 99999)
	if got := env.Load(node); got < 0 || math.Abs(got-before) > 1e-9 {
		t.Fatalf("load floored to %v, want background %v", got, before)
	}
}

func TestSetBackgroundLoad(t *testing.T) {
	env, _ := testSetup(t, 3, false)
	env.SetBackgroundLoad(2, 0.9)
	if got := env.Load(2); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("load = %v, want 0.9", got)
	}
	env.SetBackgroundLoad(2, -5)
	if got := env.Load(2); got != 0 {
		t.Fatalf("negative background load gave %v, want 0", got)
	}
}

func TestSkeletonShape(t *testing.T) {
	env, q := testSetup(t, 4, false)
	enum := plan.NewEnumerator(env.Stats)
	p, err := enum.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Env: env}
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 sources + 3 joins + consumer = 8 services; 6 child links + 1
	// consumer link = 7.
	if len(c.Services) != 8 {
		t.Fatalf("services = %d, want 8", len(c.Services))
	}
	if len(c.Links) != 7 {
		t.Fatalf("links = %d, want 7", len(c.Links))
	}
	if got := len(c.UnpinnedServices()); got != 3 {
		t.Fatalf("unpinned = %d, want 3", got)
	}
	// Sources pinned at their producers.
	for _, s := range c.Services {
		if s.Plan != nil && s.Plan.Kind == query.KindSource {
			prod, _ := env.Stats.Producer(s.Plan.Stream)
			if !s.Pinned || s.Node != prod {
				t.Fatalf("source %d not pinned at producer", s.Plan.Stream)
			}
		}
	}
	if c.Consumer().Node != q.Consumer {
		t.Fatal("consumer sink not at consumer node")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("skeleton should validate (unpinned default to node 0): %v", err)
	}
}

func TestSkeletonFilterPushdown(t *testing.T) {
	env, q := testSetup(t, 5, false)
	q.FilterSel = map[query.StreamID]float64{0: 0.5}
	enum := plan.NewEnumerator(env.Stats)
	p, err := enum.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{Env: env}
	c, err := b.Skeleton(q, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range c.Services {
		if s.Plan != nil && s.Plan.Kind == query.KindFilter {
			found = true
			prod, _ := env.Stats.Producer(0)
			if !s.Pinned || s.Node != prod {
				t.Fatal("filter above source not pushed down to producer")
			}
		}
	}
	if !found {
		t.Fatal("filter service missing")
	}
}

func TestIntegratedOptimizeProducesValidCircuit(t *testing.T) {
	for _, useDHT := range []bool{false, true} {
		env, q := testSetup(t, 6, useDHT)
		opt := NewIntegrated(env)
		res, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("useDHT=%v: %v", useDHT, err)
		}
		if res.Circuit == nil {
			t.Fatal("nil circuit")
		}
		if err := res.Circuit.Validate(); err != nil {
			t.Fatalf("invalid circuit: %v", err)
		}
		if res.PlansConsidered != plan.CountTrees(4) {
			t.Fatalf("considered %d plans, want %d", res.PlansConsidered, plan.CountTrees(4))
		}
		if res.CircuitsConsidered != res.PlansConsidered {
			t.Fatalf("circuits %d != plans %d", res.CircuitsConsidered, res.PlansConsidered)
		}
		if res.EstimatedUsage <= 0 {
			t.Fatalf("estimated usage %v", res.EstimatedUsage)
		}
		usage := res.Circuit.NetworkUsage(TrueLatency{Topo: env.Topo})
		if usage <= 0 {
			t.Fatalf("measured usage %v", usage)
		}
		lat := res.Circuit.ConsumerLatency(TrueLatency{Topo: env.Topo})
		if lat <= 0 {
			t.Fatalf("consumer latency %v", lat)
		}
	}
}

// With oracle selection (true latency model + oracle mapper), integrated
// optimization can never lose to two-step: it evaluates a superset of
// candidate circuits through the same deterministic pipeline.
func TestIntegratedNeverWorseThanTwoStep(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		env, q := testSetup(t, 100+seed, false)
		truth := TrueLatency{Topo: env.Topo}
		mapper := placement.OracleMapper{Source: env}

		integrated := &Integrated{Env: env, Model: truth, Mapper: mapper}
		twostep := &TwoStep{Env: env, Model: truth, Mapper: mapper}

		ri, err := integrated.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := twostep.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		ui := ri.Circuit.NetworkUsage(truth)
		ut := rt.Circuit.NetworkUsage(truth)
		if ui > ut+1e-9 {
			t.Fatalf("seed %d: integrated %v worse than two-step %v", seed, ui, ut)
		}
	}
}

// Figure 1 scenario: producer pairs in two distant clusters, consumer
// midway. The bushy plan should beat the left-deep chain after placement.
func TestFigure1ScenarioIntegratedPicksBetterShape(t *testing.T) {
	topo := smallTopo(t, 7)
	stats, err := query.NewCatalog(1.0) // equal selectivities: plans tie on rate
	if err != nil {
		t.Fatal(err)
	}
	// Two stub domains far apart: domain 0 gets P1,P2; the last domain
	// gets P3,P4.
	d0 := topo.StubDomainMembers(0)
	dN := topo.StubDomainMembers(topo.NumStubDomains() - 1)
	producers := []topology.NodeID{d0[0], d0[1], dN[0], dN[1]}
	for i, p := range producers {
		if err := stats.AddStream(query.StreamID(i), p, 100); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultEnvConfig(7)
	cfg.UseDHT = false
	env, err := NewEnv(topo, stats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{ID: 1, Consumer: topo.TransitNodeIDs()[0], Streams: []query.StreamID{0, 1, 2, 3}}

	truth := TrueLatency{Topo: env.Topo}
	mapper := placement.OracleMapper{Source: env}
	integrated := &Integrated{Env: env, Model: truth, Mapper: mapper}
	res, err := integrated.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen plan must exploit the geometry with at least one
	// cluster-local join (which plan wins overall depends on where the
	// consumer sits).
	sigs := map[string]bool{}
	for _, s := range res.Circuit.Services {
		if s.Plan != nil {
			sigs[s.Plan.Signature()] = true
		}
	}
	if !sigs["join(s0,s1)"] && !sigs["join(s2,s3)"] {
		t.Fatalf("integrated picked no cluster-local join: %v", res.Circuit.Plan)
	}
	// And it must beat the adversarial cross-cluster bushy plan
	// ((S0⋈S2)⋈(S1⋈S3)) placed through the same pipeline.
	cross := query.NewJoin(
		query.NewJoin(query.NewSource(0), query.NewSource(2)),
		query.NewJoin(query.NewSource(1), query.NewSource(3)),
	)
	if err := cross.ComputeRates(stats); err != nil {
		t.Fatal(err)
	}
	crossCircuit, err := (RelaxationStrategy{Mapper: mapper}).PlaceCircuit(env, q, cross)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NetworkUsage(truth) > crossCircuit.NetworkUsage(truth)+1e-9 {
		t.Fatalf("integrated usage %v worse than cross-cluster plan %v",
			res.Circuit.NetworkUsage(truth), crossCircuit.NetworkUsage(truth))
	}
}

func TestPlacementStrategiesProduceValidCircuits(t *testing.T) {
	env, q := testSetup(t, 8, false)
	enum := plan.NewEnumerator(env.Stats)
	p, err := enum.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	truth := TrueLatency{Topo: env.Topo}
	strategies := []PlacementStrategy{
		RelaxationStrategy{},
		RandomStrategy{Rng: rand.New(rand.NewSource(1))},
		ConsumerStrategy{},
		ProducerStrategy{},
	}
	usages := map[string]float64{}
	for _, s := range strategies {
		c, err := s.PlaceCircuit(env, q, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: invalid circuit: %v", s.Name(), err)
		}
		usages[s.Name()] = c.NetworkUsage(truth)
	}
	for name, u := range usages {
		if u <= 0 {
			t.Fatalf("%s usage = %v", name, u)
		}
	}
}

func TestExhaustiveStrategyOptimal(t *testing.T) {
	env, q := testSetup(t, 9, false)
	// 2-way join: 1 unpinned service; exhaustive over all 20 nodes.
	q.Streams = q.Streams[:2]
	enum := plan.NewEnumerator(env.Stats)
	p, err := enum.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	truth := TrueLatency{Topo: env.Topo}
	ex, err := (ExhaustiveStrategy{Model: truth}).PlaceCircuit(env, q, p)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := (RelaxationStrategy{Mapper: placement.OracleMapper{Source: env}}).PlaceCircuit(env, q, p)
	if err != nil {
		t.Fatal(err)
	}
	if ex.NetworkUsage(truth) > rl.NetworkUsage(truth)+1e-9 {
		t.Fatalf("exhaustive %v worse than relaxation %v", ex.NetworkUsage(truth), rl.NetworkUsage(truth))
	}
}

func TestExhaustiveStrategyLimit(t *testing.T) {
	env, q := testSetup(t, 10, false)
	enum := plan.NewEnumerator(env.Stats)
	p, err := enum.Best(q) // 3 unpinned services
	if err != nil {
		t.Fatal(err)
	}
	s := ExhaustiveStrategy{MaxAssignments: 10}
	if _, err := s.PlaceCircuit(env, q, p); err == nil {
		t.Fatal("exhaustive accepted oversized search space")
	}
}

func TestDeploymentLoadAndRegistry(t *testing.T) {
	env, q := testSetup(t, 11, false)
	opt := NewIntegrated(env)
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	dep := NewDeployment(env, nil)
	if err := dep.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	if dep.NumDeployed() != 1 {
		t.Fatalf("NumDeployed = %d", dep.NumDeployed())
	}
	// 3 joins registered as shareable instances.
	if dep.Registry.Len() != 3 {
		t.Fatalf("registry has %d instances, want 3", dep.Registry.Len())
	}
	if err := dep.Deploy(res.Circuit); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
	usage := dep.TotalUsage(TrueLatency{Topo: env.Topo})
	if usage <= 0 {
		t.Fatalf("TotalUsage = %v", usage)
	}
	// Hosting nodes are loaded.
	loaded := false
	for _, s := range res.Circuit.UnpinnedServices() {
		if env.Load(s.Node) > 0 {
			loaded = true
		}
	}
	if !loaded {
		t.Fatal("no load charged for deployed services")
	}
	if err := dep.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	if dep.Registry.Len() != 0 {
		t.Fatalf("registry has %d instances after cancel", dep.Registry.Len())
	}
	if err := dep.Cancel(q.ID); err == nil {
		t.Fatal("double cancel accepted")
	}
}

func TestMultiQueryRadiusZeroMatchesIntegrated(t *testing.T) {
	env, q := testSetup(t, 12, false)
	reg := NewRegistry()
	mq := NewMultiQuery(env, reg, 0)
	ri, err := NewIntegrated(env).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if rm.ReusedServices != 0 || rm.InstancesExamined != 0 {
		t.Fatalf("radius 0 produced reuse: %+v", rm)
	}
	if math.Abs(ri.EstimatedUsage-rm.EstimatedUsage) > 1e-9 {
		t.Fatalf("radius-0 MQO usage %v != integrated %v", rm.EstimatedUsage, ri.EstimatedUsage)
	}
}

func TestMultiQueryReusesIdenticalQuery(t *testing.T) {
	env, q := testSetup(t, 13, false)
	reg := NewRegistry()
	dep := NewDeployment(env, reg)
	mq := NewMultiQuery(env, reg, math.Inf(1))

	r1, err := mq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Deploy(r1.Circuit); err != nil {
		t.Fatal(err)
	}
	before := reg.Len()

	// Same query shape from a different consumer: the whole plan tree is
	// shareable.
	q2 := q
	q2.ID = 2
	q2.Consumer = env.Topo.StubNodeIDs()[0]
	r2, err := mq.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedServices == 0 {
		t.Fatal("identical query reused nothing with infinite radius")
	}
	truth := TrueLatency{Topo: env.Topo}
	fresh, err := NewIntegrated(env).Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Circuit.NetworkUsage(truth) > fresh.Circuit.NetworkUsage(truth)+1e-9 {
		t.Fatalf("reuse circuit usage %v worse than fresh %v",
			r2.Circuit.NetworkUsage(truth), fresh.Circuit.NetworkUsage(truth))
	}
	if err := dep.Deploy(r2.Circuit); err != nil {
		t.Fatal(err)
	}
	// Reusing the root service adds no new instances.
	if reg.Len() != before {
		t.Fatalf("registry grew from %d to %d despite full reuse", before, reg.Len())
	}
	// The shared instance must have refcount 2; cancel both and the
	// registry must drain.
	if err := dep.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	if reg.Len() == 0 {
		t.Fatal("instances dropped while still referenced by q2")
	}
	if err := dep.Cancel(q2.ID); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry has %d instances after all cancels", reg.Len())
	}
}

func TestMultiQueryExaminedGrowsWithRadius(t *testing.T) {
	env, q := testSetup(t, 14, false)
	reg := NewRegistry()
	dep := NewDeployment(env, reg)
	seedOpt := NewIntegrated(env)
	// Deploy a few circuits to populate the registry.
	for i := 0; i < 3; i++ {
		qq := q
		qq.ID = query.QueryID(10 + i)
		qq.Streams = q.Streams[:2+i%3]
		qq.Consumer = env.Topo.StubNodeIDs()[i*3]
		res, err := seedOpt.Optimize(qq)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.Deploy(res.Circuit); err != nil {
			t.Fatal(err)
		}
	}
	examined := make([]int, 0, 3)
	for _, r := range []float64{5, 50, 1e9} {
		mq := NewMultiQuery(env, reg, r)
		qq := q
		qq.ID = 99
		res, err := mq.Optimize(qq)
		if err != nil {
			t.Fatal(err)
		}
		examined = append(examined, res.InstancesExamined)
	}
	if examined[0] > examined[1] || examined[1] > examined[2] {
		t.Fatalf("examined not monotone in radius: %v", examined)
	}
}

func TestReoptimizerMigratesAwayFromLoadedNode(t *testing.T) {
	env, q := testSetup(t, 15, false)
	opt := &Integrated{Env: env, Mapper: placement.OracleMapper{Source: env}}
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	dep := NewDeployment(env, nil)
	if err := dep.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	reopt := NewReoptimizer(dep)
	reopt.Mapper = placement.OracleMapper{Source: env}

	// Without changes, a sweep should be stable (hysteresis).
	st, err := reopt.Step()
	if err != nil {
		t.Fatal(err)
	}
	firstMigrations := st.Migrations

	// Massively load one hosting node: the mapper must route around it.
	victim := res.Circuit.UnpinnedServices()[0].Node
	env.SetBackgroundLoad(victim, 5.0)
	st2, err := reopt.Step()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ServicesEvaluated == 0 {
		t.Fatal("no services evaluated")
	}
	// The heavily loaded node should lose at least one service across the
	// two sweeps (allowing the first sweep to have already moved things).
	stillThere := 0
	for _, s := range res.Circuit.UnpinnedServices() {
		if s.Node == victim {
			stillThere++
		}
	}
	if stillThere > 0 && st2.Migrations == 0 && firstMigrations == 0 {
		t.Fatal("overloaded node kept its services and nothing migrated")
	}
}

func TestFullReoptimizeSwapsWhenBetter(t *testing.T) {
	env, q := testSetup(t, 16, false)
	truth := TrueLatency{Topo: env.Topo}
	mapper := placement.OracleMapper{Source: env}
	opt := &Integrated{Env: env, Model: truth, Mapper: mapper}
	res, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	dep := NewDeployment(env, nil)
	if err := dep.Deploy(res.Circuit); err != nil {
		t.Fatal(err)
	}
	reopt := NewReoptimizer(dep)
	reopt.Model = truth
	// Nothing changed: no swap expected.
	swapped, err := reopt.FullReoptimize(q.ID, opt)
	if err != nil {
		t.Fatal(err)
	}
	if swapped {
		t.Fatal("swap without environment change")
	}
	// Unknown query: no-op.
	swapped, err = reopt.FullReoptimize(999, opt)
	if err != nil || swapped {
		t.Fatalf("unknown query: %v %v", swapped, err)
	}
}

func TestCircuitValidateErrors(t *testing.T) {
	c := &Circuit{}
	if err := c.Validate(); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

func TestRegistryFindWithinRadius(t *testing.T) {
	env, _ := testSetup(t, 17, false)
	reg := NewRegistry()
	space := env.Space()
	mk := func(sig string, node topology.NodeID) *ServiceInstance {
		inst := &ServiceInstance{Signature: sig, Node: node, Coord: env.Point(node).Clone(), RefCount: 1}
		reg.Register(inst)
		return inst
	}
	a := mk("join(s0,s1)", 0)
	mk("join(s0,s1)", 10)
	mk("join(s2,s3)", 1)

	target := env.Point(0)
	matches, examined := reg.FindWithinRadius(space, target, 1e9, "join(s0,s1)")
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(matches))
	}
	if matches[0] != a {
		t.Fatal("nearest instance not first")
	}
	if examined != 3 {
		t.Fatalf("examined = %d, want 3", examined)
	}
	_, examined = reg.FindWithinRadius(space, target, 0.0001, "join(s0,s1)")
	if examined > 1 {
		t.Fatalf("tiny radius examined %d", examined)
	}
	reg.Unregister(a)
	if reg.Len() != 2 {
		t.Fatalf("Len = %d after unregister", reg.Len())
	}
}

func TestTrueAndCoordLatencyModels(t *testing.T) {
	env, _ := testSetup(t, 18, false)
	truth := TrueLatency{Topo: env.Topo}
	coord := CoordLatency{Env: env}
	if truth.Name() == "" || coord.Name() == "" {
		t.Fatal("empty model names")
	}
	if truth.Latency(0, 0) != 0 {
		t.Fatal("self latency nonzero")
	}
	if coord.Latency(0, 1) < 0 {
		t.Fatal("negative coordinate latency")
	}
	// Coordinate estimates should correlate with truth: mean relative
	// error bounded (loose sanity bound).
	var errSum float64
	var n int
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 100; i++ {
		a := topology.NodeID(rng.Intn(env.Topo.NumNodes()))
		b := topology.NodeID(rng.Intn(env.Topo.NumNodes()))
		if a == b {
			continue
		}
		tl := truth.Latency(a, b)
		cl := coord.Latency(a, b)
		errSum += math.Abs(tl-cl) / tl
		n++
	}
	if mean := errSum / float64(n); mean > 0.8 {
		t.Fatalf("coordinate latency mean relative error %v too large", mean)
	}
}

func BenchmarkIntegratedOptimize4Way(b *testing.B) {
	topo := smallTopo(&testing.T{}, 1)
	stats, _ := query.NewCatalog(0.8)
	stubs := topo.StubNodeIDs()
	for i := 0; i < 4; i++ {
		_ = stats.AddStream(query.StreamID(i), stubs[i*3], 100)
	}
	cfg := DefaultEnvConfig(1)
	cfg.UseDHT = false
	env, err := NewEnv(topo, stats, cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := query.Query{ID: 1, Consumer: stubs[len(stubs)-1], Streams: []query.StreamID{0, 1, 2, 3}}
	opt := NewIntegrated(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}
