package optimizer

import (
	"testing"

	"github.com/hourglass/sbon/internal/query"
)

// TestOptimizeBatchShardedMatchesGlobal is the shard-vs-global
// equivalence guarantee: every query — region-local or fallback — must
// produce the bit-identical placement and estimated usage it gets from
// the single-pool OptimizeBatch, because every shard's snapshot is a
// full freeze of the same environment. Runs with and without a DHT
// catalog, with and without caches.
func TestOptimizeBatchShardedMatchesGlobal(t *testing.T) {
	for _, useDHT := range []bool{true, false} {
		for _, noCache := range []bool{false, true} {
			env, _ := testSetup(t, 7, useDHT)
			qs := batchQueries(env, 60)

			want, err := OptimizeBatch(env, qs, BatchOptions{NoCache: true})
			if err != nil {
				t.Fatalf("OptimizeBatch: %v", err)
			}
			got, stats, err := OptimizeBatchSharded(env, qs, ShardedBatchOptions{
				Shards: 4, NoCache: noCache,
			})
			if err != nil {
				t.Fatalf("OptimizeBatchSharded: %v", err)
			}
			if stats.Shards != 4 {
				t.Fatalf("stats.Shards = %d, want 4", stats.Shards)
			}
			routed := stats.Fallback
			for _, n := range stats.Routed {
				routed += n
			}
			if routed != len(qs) {
				t.Fatalf("routing accounted for %d of %d queries (stats %+v)", routed, len(qs), stats)
			}
			for i := range qs {
				circuitsEqual(t, i, &got[i], &want[i])
			}
		}
	}
}

// TestOptimizeBatchShardedDeterministic re-runs the same sharded batch
// (fresh caches each time) and demands identical results and routing —
// the shard-merge determinism property, exercised under -race in CI
// since the pools run concurrently.
func TestOptimizeBatchShardedDeterministic(t *testing.T) {
	env, _ := testSetup(t, 11, true)
	qs := batchQueries(env, 80)

	r1, s1, err := OptimizeBatchSharded(env, qs, ShardedBatchOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := OptimizeBatchSharded(env, qs, ShardedBatchOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Fallback != s2.Fallback {
		t.Fatalf("fallback count differs: %d vs %d", s1.Fallback, s2.Fallback)
	}
	for r := range s1.Routed {
		if s1.Routed[r] != s2.Routed[r] {
			t.Fatalf("shard %d routed %d vs %d", r, s1.Routed[r], s2.Routed[r])
		}
	}
	for i := range qs {
		circuitsEqual(t, i, &r2[i], &r1[i])
	}
}

// TestShardedPlanCachePersists checks that a carried ShardedPlanCache
// turns the second identical batch into cache hits, per shard.
func TestShardedPlanCachePersists(t *testing.T) {
	env, _ := testSetup(t, 7, true)
	qs := batchQueries(env, 40)
	caches := NewShardedPlanCache(4)

	first, _, err := OptimizeBatchSharded(env, qs, ShardedBatchOptions{Shards: 4, Caches: caches})
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := OptimizeBatchSharded(env, qs, ShardedBatchOptions{Shards: 4, Caches: caches})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range qs {
		circuitsEqual(t, i, &second[i], &first[i])
		if second[i].FromCache {
			hits++
		}
	}
	if hits != len(qs) {
		t.Fatalf("second batch hit cache on %d/%d queries", hits, len(qs))
	}
}

// TestShardRoundingAndRouting pins the power-of-two rounding and the
// fallback path for queries whose footprint spans regions.
func TestShardRoundingAndRouting(t *testing.T) {
	if got := RoundShards(0); got != 8 {
		t.Fatalf("RoundShards(0) = %d, want 8", got)
	}
	if got := RoundShards(13); got != 8 {
		t.Fatalf("RoundShards(13) = %d, want 8", got)
	}
	if got := RoundShards(16); got != 16 {
		t.Fatalf("RoundShards(16) = %d, want 16", got)
	}

	env, _ := testSetup(t, 7, false)
	// A query over every stream almost certainly spans regions with many
	// shards; assert routing still answers it correctly via fallback.
	qs := []query.Query{{ID: 1, Consumer: env.Topo.StubNodeIDs()[0], Streams: env.Stats.Streams()}}
	want, err := OptimizeBatch(env, qs, BatchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := OptimizeBatchSharded(env, qs, ShardedBatchOptions{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	circuitsEqual(t, 0, &got[0], &want[0])
}
