package optimizer

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/hilbert"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// ShardedBatchOptions configures OptimizeBatchSharded.
type ShardedBatchOptions struct {
	// Shards is the number of cost-space regions (rounded down to a
	// power of two; default 8). Each region gets its own frozen
	// snapshot, plan cache, cost index, and worker pool.
	Shards int
	// WorkersPerShard is the worker-pool size per active shard (default:
	// GOMAXPROCS divided across the pools that have work, min 1).
	WorkersPerShard int
	// Caches carries per-shard plan caches across batches (see
	// NewShardedPlanCache). Nil means private caches for this batch; a
	// value with the wrong shard count is replaced by a private set.
	Caches *ShardedPlanCache
	// NoCache disables plan caching entirely.
	NoCache bool
}

// ShardStats reports how a sharded batch was routed.
type ShardStats struct {
	// Shards is the effective region count (after power-of-two rounding).
	Shards int
	// Routed[r] counts queries whose whole footprint (consumer plus
	// every source-stream producer) fell inside region r.
	Routed []int
	// Fallback counts cross-region queries handled by the global pool.
	Fallback int
}

// ShardedPlanCache is a set of per-region plan caches plus one for the
// cross-region fallback pool, reusable across batches the way a single
// PlanCache is for OptimizeBatch. Each cache is epoch-flushed
// independently against the snapshot it serves.
type ShardedPlanCache struct {
	shards []*PlanCache
	global *PlanCache
}

// NewShardedPlanCache builds caches for k regions (k as passed to
// ShardedBatchOptions.Shards, after its power-of-two rounding).
func NewShardedPlanCache(k int) *ShardedPlanCache {
	c := &ShardedPlanCache{shards: make([]*PlanCache, k), global: NewPlanCache()}
	for i := range c.shards {
		c.shards[i] = NewPlanCache()
	}
	return c
}

// Shards returns the region count the cache set was built for.
func (c *ShardedPlanCache) Shards() int { return len(c.shards) }

// RoundShards rounds k down to a power of two (default 8 for k <= 0) so
// region extraction is a bit shift off the Hilbert key — the effective
// shard count OptimizeBatchSharded uses for any requested k.
func RoundShards(k int) int {
	if k <= 0 {
		k = 8
	}
	for k&(k-1) != 0 {
		k &= k - 1
	}
	return k
}

// NodeRegions returns the Hilbert-prefix region of every node for a
// k-way split (k rounded down to a power of two, as RoundShards). This
// is the same assignment OptimizeBatchSharded routes queries by;
// exporting it lets the overlay key its data-plane shards to the
// optimizer's regions, so the traffic a region-local placement
// generates stays shard-local in the simulation too.
func NodeRegions(env *Env, k int) ([]int32, error) {
	return nodeRegions(env, RoundShards(k))
}

// nodeRegions assigns every node its home region: the top log2(k) bits
// of the Hilbert key of its cost-space point. Nearby points share long
// key prefixes, so regions are contiguous blobs in cost space — the
// locality that makes a region-local query's whole footprint land in
// one shard. The curve and bounds are derived from the environment the
// same way the DHT catalog's are (buildDHT), but locally, so routing
// works identically with or without a catalog and depends only on the
// snapshot's points — deterministic for a fixed environment.
func nodeRegions(env *Env, k int) ([]int32, error) {
	hbits := env.cfg.HilbertBits
	for uint(env.space.Dims())*hbits > 64 {
		hbits--
	}
	curve, err := hilbert.New(uint(env.space.Dims()), hbits)
	if err != nil {
		return nil, fmt.Errorf("optimizer: shard curve: %w", err)
	}
	all := make([]costspace.Point, 0, len(env.pts)+1)
	all = append(all, env.pts...)
	all = append(all, env.space.NewPoint(env.vec[0], []float64{1.5}))
	bounds, err := costspace.ComputeBounds(all, 0.05)
	if err != nil {
		return nil, err
	}
	shift := curve.KeyBits() - uint(bits.TrailingZeros(uint(k)))
	regions := make([]int32, len(env.pts))
	var cells []uint32
	for i, p := range env.pts {
		cells = bounds.QuantizeInto(cells, p, curve.Bits())
		regions[i] = int32(curve.MustEncodeInPlace(cells) >> shift)
	}
	return regions, nil
}

// OptimizeBatchSharded is OptimizeBatch decomposed over cost-space
// regions. The space is split into K Hilbert-prefix regions; each query
// whose footprint — consumer and every source-stream producer — falls in
// one region is routed to that region's shard, which owns a private
// frozen snapshot, plan cache, k-NN cost index, and worker pool.
// Cross-region queries fall back to a global pool with the same
// structure. Shards share nothing mutable, so the pools scale without
// cache-lock or allocator contention on multi-core hosts.
//
// Every shard's snapshot is a full Freeze of the same environment, so a
// query optimizes to the bit-identical Result it would get from
// OptimizeBatch — regionality affects only which pool and cache serve
// it, never the answer (TestOptimizeBatchShardedMatchesGlobal). Results
// are returned in query order; the first error aborts all pools.
//
// The live Env must not be mutated while the batch runs, exactly as for
// OptimizeBatch.
func OptimizeBatchSharded(env *Env, queries []query.Query, opts ShardedBatchOptions) ([]Result, *ShardStats, error) {
	if env == nil {
		return nil, nil, fmt.Errorf("optimizer: OptimizeBatchSharded on nil env")
	}
	k := RoundShards(opts.Shards)
	stats := &ShardStats{Shards: k, Routed: make([]int, k)}
	results := make([]Result, len(queries))
	if len(queries) == 0 {
		return results, stats, nil
	}

	regions, err := nodeRegions(env, k)
	if err != nil {
		return nil, nil, err
	}
	regionOf := func(n topology.NodeID) (int32, bool) {
		if int(n) < 0 || int(n) >= len(regions) {
			return 0, false
		}
		return regions[n], true
	}

	// Partition the batch: home-shard index lists plus the fallback list.
	home := make([][]int, k)
	var fallback []int
	for i := range queries {
		q := &queries[i]
		r, ok := regionOf(q.Consumer)
		for _, sid := range q.Streams {
			if !ok {
				break
			}
			p, known := env.Stats.Producer(sid)
			if !known {
				ok = false
				break
			}
			pr, prOK := regionOf(p)
			if !prOK || pr != r {
				ok = false
			}
		}
		if ok {
			home[r] = append(home[r], i)
			stats.Routed[r]++
		} else {
			fallback = append(fallback, i)
			stats.Fallback++
		}
	}

	caches := opts.Caches
	if opts.NoCache {
		caches = nil
	} else if caches == nil || caches.Shards() != k {
		caches = NewShardedPlanCache(k)
	}

	pools := 0
	for _, idxs := range home {
		if len(idxs) > 0 {
			pools++
		}
	}
	if len(fallback) > 0 {
		pools++
	}
	workers := opts.WorkersPerShard
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / pools
		if workers < 1 {
			workers = 1
		}
	}

	var (
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}

	// Each pool freezes its own snapshot (private coordinate and load
	// arrays) and builds its own cost index, in parallel with the other
	// pools' freezes.
	runPool := func(idxs []int, cache *PlanCache) {
		defer wg.Done()
		snap := env.Freeze()
		snap.CostIndex()
		w := workers
		if w > len(idxs) {
			w = len(idxs)
		}
		var next atomic.Int64
		var pwg sync.WaitGroup
		pwg.Add(w)
		for j := 0; j < w; j++ {
			go func() {
				defer pwg.Done()
				opt := NewIntegrated(snap)
				for {
					n := int(next.Add(1)) - 1
					if n >= len(idxs) || stop.Load() {
						return
					}
					i := idxs[n]
					res, err := optimizeOne(snap, opt, cache, queries[i])
					if err != nil {
						fail(fmt.Errorf("optimizer: sharded batch query %d (index %d): %w", queries[i].ID, i, err))
						return
					}
					results[i] = *res
				}
			}()
		}
		pwg.Wait()
	}

	for r := 0; r < k; r++ {
		if len(home[r]) == 0 {
			continue
		}
		wg.Add(1)
		var cache *PlanCache
		if caches != nil {
			cache = caches.shards[r]
		}
		go runPool(home[r], cache)
	}
	if len(fallback) > 0 {
		wg.Add(1)
		var cache *PlanCache
		if caches != nil {
			cache = caches.global
		}
		go runPool(fallback, cache)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return results, stats, nil
}
