package optimizer

import (
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// Reoptimizer implements the paper's local re-optimization (§3.3): "each
// node that hosts part of a circuit is capable of re-optimization ... a
// node can re-run placement and mapping for any service that it hosts.
// The result may be to migrate the service to a cooperating node."
//
// Each Step re-runs, per deployed unpinned service, a local virtual
// placement against the current coordinates of its circuit neighbors and
// remaps; the service migrates only when the estimated incident usage
// improves by more than ImprovementThreshold (hysteresis against
// oscillation under noisy coordinates).
type Reoptimizer struct {
	Dep *Deployment
	// Placer recomputes local virtual coordinates (default Relaxation).
	Placer placement.VirtualPlacer
	// Mapper remaps coordinates to nodes (default: env's DHT, else
	// oracle).
	Mapper placement.Mapper
	// Model estimates link latencies (default CoordLatency).
	Model LatencyModel
	// ImprovementThreshold is the minimum relative usage gain to migrate
	// (default 0.05).
	ImprovementThreshold float64
}

// NewReoptimizer returns a re-optimizer over the deployment with default
// components.
func NewReoptimizer(dep *Deployment) *Reoptimizer {
	return &Reoptimizer{Dep: dep}
}

func (r *Reoptimizer) components() (placement.VirtualPlacer, placement.Mapper, LatencyModel, float64) {
	placer := r.Placer
	if placer == nil {
		placer = placement.Relaxation{}
	}
	mapper := r.Mapper
	if mapper == nil {
		if cat := r.Dep.Env.Catalog(); cat != nil {
			mapper = placement.DHTMapper{Catalog: cat}
		} else {
			mapper = placement.OracleMapper{Source: r.Dep.Env}
		}
	}
	model := r.Model
	if model == nil {
		model = CoordLatency{Env: r.Dep.Env}
	}
	thresh := r.ImprovementThreshold
	if thresh <= 0 {
		thresh = 0.05
	}
	return placer, mapper, model, thresh
}

// StepStats reports one re-optimization sweep.
type StepStats struct {
	ServicesEvaluated int
	Migrations        int
}

// Step performs one re-optimization sweep over every deployed circuit
// and returns migration statistics.
func (r *Reoptimizer) Step() (StepStats, error) {
	placer, mapper, model, thresh := r.components()
	var stats StepStats
	env := r.Dep.Env
	b := &Builder{Env: env}
	for _, c := range r.Dep.circuits {
		// Recompute virtual coordinates for the whole circuit against
		// current pinned/neighbor positions (a node with all affected
		// services can do full local re-placement).
		if err := b.PlaceVirtual(c, placer); err != nil {
			return stats, err
		}
		for i, s := range c.Services {
			if s.Pinned || s.Plan == nil {
				continue
			}
			stats.ServicesEvaluated++
			oldNode := s.Node
			oldCost := serviceCost(env, c, i, model)
			newNode, _, err := mapper.MapCoord(c.Query.Consumer, s.Virtual, nil)
			if err != nil {
				return stats, err
			}
			if newNode == oldNode {
				continue
			}
			s.Node = newNode
			newCost := serviceCost(env, c, i, model)
			if newCost < oldCost*(1-thresh) {
				// Commit the migration: move the load.
				env.RemoveServiceLoad(oldNode, s.InRate)
				env.AddServiceLoad(newNode, s.InRate)
				r.updateInstance(c, s, oldNode)
				stats.Migrations++
			} else {
				s.Node = oldNode
			}
		}
	}
	return stats, nil
}

// updateInstance moves the registry entry of a migrated service.
func (r *Reoptimizer) updateInstance(c *Circuit, s *PlacedService, oldNode topology.NodeID) {
	for _, inst := range r.Dep.instances[c.Query.ID] {
		if inst.Signature == s.Signature && inst.Node == oldNode {
			inst.Node = s.Node
			inst.Coord = r.Dep.Env.Point(s.Node).Clone()
			return
		}
	}
}

// incidentUsage is the usage of the links touching service index i.
func incidentUsage(c *Circuit, i int, m LatencyModel) float64 {
	var sum float64
	for _, l := range c.Links {
		if l.Shared {
			continue
		}
		if l.From == i || l.To == i {
			sum += l.Rate * m.Latency(c.Services[l.From].Node, c.Services[l.To].Node)
		}
	}
	return sum
}

// serviceCost is the migration criterion: incident link usage plus a
// load term — the host's weighted scalar components (ms-equivalent, per
// the cost space's weighting functions) scaled by the service's input
// rate, making the two terms dimensionally commensurate (KB·ms/s). This
// is how an overloaded host repels its services even when it is ideal in
// latency terms.
func serviceCost(e *Env, c *Circuit, i int, m LatencyModel) float64 {
	cost := incidentUsage(c, i, m)
	s := c.Services[i]
	var scalar float64
	for _, comp := range e.Space().ScalarComponents(e.Point(s.Node)) {
		scalar += comp
	}
	return cost + s.InRate*scalar
}

// FullReoptimize implements the paper's stronger re-optimization: re-run
// the complete circuit optimization for a deployed query "while the
// original circuit is still running", and if the fresh circuit is at
// least ImprovementThreshold cheaper under the model, atomically swap it
// in (deploy parallel circuit, cancel the original). Returns whether a
// swap happened.
func (r *Reoptimizer) FullReoptimize(id query.QueryID, opt *Integrated) (bool, error) {
	c, ok := r.Dep.Circuit(id)
	if !ok {
		return false, nil
	}
	_, _, _, thresh := r.components()
	model := r.Model
	if model == nil {
		model = CoordLatency{Env: r.Dep.Env}
	}
	res, err := opt.Optimize(c.Query)
	if err != nil {
		return false, err
	}
	oldUsage := c.NetworkUsage(model)
	if res.Circuit.NetworkUsage(model) >= oldUsage*(1-thresh) {
		return false, nil
	}
	if err := r.Dep.Cancel(id); err != nil {
		return false, err
	}
	if err := r.Dep.Deploy(res.Circuit); err != nil {
		return false, err
	}
	return true, nil
}
