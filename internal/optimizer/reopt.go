package optimizer

import (
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// Reoptimizer implements the paper's local re-optimization (§3.3): "each
// node that hosts part of a circuit is capable of re-optimization ... a
// node can re-run placement and mapping for any service that it hosts.
// The result may be to migrate the service to a cooperating node."
//
// Each Step re-runs, per deployed unpinned service, a local virtual
// placement against the current coordinates of its circuit neighbors and
// remaps; the service migrates only when the estimated incident usage
// improves by more than ImprovementThreshold (hysteresis against
// oscillation under noisy coordinates).
type Reoptimizer struct {
	Dep *Deployment
	// Placer recomputes local virtual coordinates (default Relaxation).
	Placer placement.VirtualPlacer
	// Mapper remaps coordinates to nodes (default: env's DHT, else
	// oracle).
	Mapper placement.Mapper
	// Model estimates link latencies (default CoordLatency).
	Model LatencyModel
	// ImprovementThreshold is the minimum relative usage gain to migrate
	// (default 0.05).
	ImprovementThreshold float64
	// Exclude lists nodes migrations must not target — departing or
	// failed hosts during churn, for example. Services already on an
	// excluded node are still evaluated (and, with EvacuateExcluded on
	// the adaptation layer, forced off).
	Exclude map[topology.NodeID]bool
}

// NewReoptimizer returns a re-optimizer over the deployment with default
// components.
func NewReoptimizer(dep *Deployment) *Reoptimizer {
	return &Reoptimizer{Dep: dep}
}

func (r *Reoptimizer) components() (placement.VirtualPlacer, placement.Mapper, LatencyModel, float64) {
	placer := r.Placer
	if placer == nil {
		placer = placement.Relaxation{}
	}
	mapper := r.Mapper
	if mapper == nil {
		if cat := r.Dep.Env.Catalog(); cat != nil {
			mapper = placement.DHTMapper{Catalog: cat}
		} else {
			mapper = placement.OracleMapper{Source: r.Dep.Env}
		}
	}
	model := r.Model
	if model == nil {
		model = CoordLatency{Env: r.Dep.Env}
	}
	thresh := r.ImprovementThreshold
	if thresh <= 0 {
		thresh = 0.05
	}
	return placer, mapper, model, thresh
}

// StepStats reports one re-optimization sweep.
type StepStats struct {
	ServicesEvaluated int
	Migrations        int
}

// Migration is one planned service move: the typed unit a control plane
// hands to the data plane. PredictedGain is the modelled serviceCost
// improvement (old − new, in KB·ms/s-equivalent units) under the
// sweep's sequential evaluation order.
type Migration struct {
	Query   query.QueryID
	Service int // index into the circuit's Services
	// Signature identifies the service's computed stream (stable across
	// the move).
	Signature string
	From, To  topology.NodeID
	InRate    float64
	// PredictedGain is the full serviceCost improvement (incident usage
	// + load term); UsageGain isolates the incident network-usage part,
	// the paper's primary metric. Both are in KB·ms/s under the sweep's
	// latency model and may disagree in sign: a move can relieve an
	// overloaded host at the price of longer links.
	PredictedGain float64
	UsageGain     float64
}

// MigrationPlan is the output of one re-optimization sweep before
// anything moves: an ordered list of service migrations plus the sweep's
// evaluation statistics. Moves are listed in the order the sweep
// accepted them; each move's gain was evaluated with all earlier moves
// assumed applied, so applying a plan in order reproduces the sweep's
// sequential semantics exactly.
type MigrationPlan struct {
	Moves             []Migration
	ServicesEvaluated int
	// Unmovable counts pinned services found on victim nodes during an
	// evacuation plan — endpoints that cannot be relocated.
	Unmovable int
}

// Plan performs one re-optimization sweep over every deployed circuit —
// virtual re-placement, re-mapping, and hysteresis-thresholded move
// selection — and returns the selected moves without touching the
// deployment. Internally the sweep simulates each accepted move (loads
// shifted, service re-bound) so later candidates see its effect, then
// rolls every mutation back before returning: loads, node bindings, and
// instances are exactly as before the call. Unpinned services' Virtual
// coordinates are the one exception — they are derived placement
// scratch and hold the sweep's re-relaxed values afterwards (every
// sweep recomputes them from scratch).
//
// Circuits are swept in ascending query order, so a fixed environment
// yields a deterministic plan.
func (r *Reoptimizer) Plan() (MigrationPlan, error) {
	plan, err := r.sweep(false)
	return plan, err
}

// Step performs one re-optimization sweep and immediately applies every
// selected move to the deployment — the classic plan-then-freeze
// behaviour, kept for control-plane-only callers. Live systems instead
// use Plan and hand the moves to the adaptation layer, which walks each
// one through the two-phase Begin/Commit protocol while the data plane
// migrates.
func (r *Reoptimizer) Step() (StepStats, error) {
	plan, err := r.sweep(true)
	return StepStats{ServicesEvaluated: plan.ServicesEvaluated, Migrations: len(plan.Moves)}, err
}

// sweep is the shared sweep body: evaluate every unpinned deployed
// service, accept moves that clear the hysteresis threshold, and either
// keep the accepted moves applied (apply=true) or roll them back.
func (r *Reoptimizer) sweep(apply bool) (MigrationPlan, error) {
	placer, mapper, model, thresh := r.components()
	var plan MigrationPlan
	env := r.Dep.Env
	b := &Builder{Env: env}
	defer func() {
		if !apply {
			r.rollback(plan.Moves)
		}
	}()
	for _, c := range r.Dep.circuitsInOrder() {
		// Recompute virtual coordinates for the whole circuit against
		// current pinned/neighbor positions (a node with all affected
		// services can do full local re-placement).
		if err := b.PlaceVirtual(c, placer); err != nil {
			return plan, err
		}
		for i, s := range c.Services {
			// Reused services are never move candidates from a consumer
			// circuit: the instance belongs to (and migrates with) its
			// owner. The explicit check is belt-and-suspenders — the
			// builder pins reused services — so a circuit edited or
			// built elsewhere cannot sneak a non-owned move into a plan.
			if s.Pinned || s.Reused || s.Plan == nil {
				continue
			}
			plan.ServicesEvaluated++
			oldNode := s.Node
			newNode, _, err := mapper.MapCoord(c.Query.Consumer, s.Virtual, r.Exclude)
			if err != nil {
				return plan, err
			}
			if newNode == oldNode {
				continue
			}
			// Cost the incumbent only for actual move candidates: in a
			// converged sweep nearly every service maps back to its
			// current host and skips these link walks entirely.
			oldCost := serviceCost(env, c, i, model)
			oldUsage := incidentUsage(c, i, model)
			s.Node = newNode
			newCost := serviceCost(env, c, i, model)
			if newCost < oldCost*(1-thresh) {
				// Accept: shift the load so later candidates see the
				// move (rolled back afterwards unless applying).
				env.RemoveServiceLoad(oldNode, s.InRate)
				env.AddServiceLoad(newNode, s.InRate)
				if apply {
					r.Dep.updateInstance(c, s, oldNode)
				}
				plan.Moves = append(plan.Moves, Migration{
					Query:         c.Query.ID,
					Service:       i,
					Signature:     s.Signature,
					From:          oldNode,
					To:            newNode,
					InRate:        s.InRate,
					PredictedGain: oldCost - newCost,
					UsageGain:     oldUsage - incidentUsage(c, i, model),
				})
			} else {
				s.Node = oldNode
			}
		}
	}
	return plan, nil
}

// PlanEvacuation plans the forced relocation of every unpinned service
// hosted on a victim node — the graceful-decommission path node churn
// takes before a host leaves the overlay. Unlike Plan, moves are not
// gated on the improvement threshold (the hosts are going away);
// victims and the Reoptimizer's Exclude set are both barred as targets.
// Pinned services (producers, consumers) on victim nodes cannot move
// and are counted in the plan's Unmovable field.
//
// Like Plan, the sweep simulates accepted moves and rolls everything
// back before returning.
func (r *Reoptimizer) PlanEvacuation(victims map[topology.NodeID]bool) (MigrationPlan, error) {
	placer, mapper, model, _ := r.components()
	exclude := victims
	if len(r.Exclude) > 0 {
		exclude = make(map[topology.NodeID]bool, len(victims)+len(r.Exclude))
		for n := range victims {
			exclude[n] = true
		}
		for n := range r.Exclude {
			exclude[n] = true
		}
	}
	env := r.Dep.Env
	b := &Builder{Env: env}
	var plan MigrationPlan
	defer func() { r.rollback(plan.Moves) }()
	for _, c := range r.Dep.circuitsInOrder() {
		hit := false
		for _, s := range c.Services {
			if victims[s.Node] {
				if s.Reused {
					// Moves with its owning circuit; the owner's own
					// evacuation entry relocates it (and Commit re-binds
					// this consumer), so it is neither a victim of this
					// circuit nor unmovable.
					continue
				}
				if s.Pinned || s.Plan == nil {
					plan.Unmovable++
					continue
				}
				hit = true
			}
		}
		if !hit {
			continue
		}
		if err := b.PlaceVirtual(c, placer); err != nil {
			return plan, err
		}
		for i, s := range c.Services {
			if s.Pinned || s.Reused || s.Plan == nil || !victims[s.Node] {
				continue
			}
			plan.ServicesEvaluated++
			oldNode := s.Node
			oldCost := serviceCost(env, c, i, model)
			oldUsage := incidentUsage(c, i, model)
			newNode, _, err := mapper.MapCoord(c.Query.Consumer, s.Virtual, exclude)
			if err != nil {
				return plan, err
			}
			s.Node = newNode
			newCost := serviceCost(env, c, i, model)
			env.RemoveServiceLoad(oldNode, s.InRate)
			env.AddServiceLoad(newNode, s.InRate)
			plan.Moves = append(plan.Moves, Migration{
				Query:         c.Query.ID,
				Service:       i,
				Signature:     s.Signature,
				From:          oldNode,
				To:            newNode,
				InRate:        s.InRate,
				PredictedGain: oldCost - newCost, // may be negative: forced move
				UsageGain:     oldUsage - incidentUsage(c, i, model),
			})
		}
	}
	return plan, nil
}

// rollback undoes the sweep's simulated moves in reverse order,
// restoring loads and service bindings.
func (r *Reoptimizer) rollback(moves []Migration) {
	env := r.Dep.Env
	for i := len(moves) - 1; i >= 0; i-- {
		m := moves[i]
		c, ok := r.Dep.circuits[m.Query]
		if !ok {
			continue
		}
		s := c.Services[m.Service]
		s.Node = m.From
		env.RemoveServiceLoad(m.To, m.InRate)
		env.AddServiceLoad(m.From, m.InRate)
	}
}

// incidentUsage is the usage of the links touching service index i.
func incidentUsage(c *Circuit, i int, m LatencyModel) float64 {
	var sum float64
	for _, l := range c.Links {
		if l.Shared {
			continue
		}
		if l.From == i || l.To == i {
			sum += l.Rate * m.Latency(c.Services[l.From].Node, c.Services[l.To].Node)
		}
	}
	return sum
}

// serviceCost is the migration criterion: incident link usage plus a
// load term — the host's weighted scalar components (ms-equivalent, per
// the cost space's weighting functions) scaled by the service's input
// rate, making the two terms dimensionally commensurate (KB·ms/s). This
// is how an overloaded host repels its services even when it is ideal in
// latency terms.
func serviceCost(e *Env, c *Circuit, i int, m LatencyModel) float64 {
	cost := incidentUsage(c, i, m)
	s := c.Services[i]
	var scalar float64
	for _, comp := range e.Space().ScalarComponents(e.Point(s.Node)) {
		scalar += comp
	}
	return cost + s.InRate*scalar
}

// FullReoptimize implements the paper's stronger re-optimization: re-run
// the complete circuit optimization for a deployed query "while the
// original circuit is still running", and if the fresh circuit is at
// least ImprovementThreshold cheaper under the model, atomically swap it
// in (deploy parallel circuit, cancel the original). Returns whether a
// swap happened.
func (r *Reoptimizer) FullReoptimize(id query.QueryID, opt *Integrated) (bool, error) {
	c, ok := r.Dep.Circuit(id)
	if !ok {
		return false, nil
	}
	_, _, _, thresh := r.components()
	model := r.Model
	if model == nil {
		model = CoordLatency{Env: r.Dep.Env}
	}
	res, err := opt.Optimize(c.Query)
	if err != nil {
		return false, err
	}
	oldUsage := c.NetworkUsage(model)
	if res.Circuit.NetworkUsage(model) >= oldUsage*(1-thresh) {
		return false, nil
	}
	if err := r.Dep.Cancel(id); err != nil {
		return false, err
	}
	if err := r.Dep.Deploy(res.Circuit); err != nil {
		return false, err
	}
	return true, nil
}
