package optimizer

import (
	"github.com/hourglass/sbon/internal/costspace"
	"github.com/hourglass/sbon/internal/placement"
	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
	"github.com/hourglass/sbon/internal/trace"
)

// Reoptimizer implements the paper's local re-optimization (§3.3): "each
// node that hosts part of a circuit is capable of re-optimization ... a
// node can re-run placement and mapping for any service that it hosts.
// The result may be to migrate the service to a cooperating node."
//
// Planning is pure: every sweep runs against a copy-on-write ShadowEnv
// over the live environment, so simulated load shifts, re-bindings, and
// mapper lookups never mutate live loads, the k-NN index, or the DHT
// catalog — there is no rollback because there is nothing to roll back.
// A service migrates only when the estimated incident usage improves by
// more than ImprovementThreshold (hysteresis against oscillation under
// noisy coordinates).
//
// Plan re-plans everything; PlanIncremental consumes the environment's
// delta log and re-plans only the circuits the delta can affect — the
// incremental view maintenance that makes continuous adaptation cheap.
type Reoptimizer struct {
	Dep *Deployment
	// Placer recomputes local virtual coordinates (default Relaxation).
	Placer placement.VirtualPlacer
	// Mapper remaps coordinates to nodes. Default: an exact oracle over
	// the sweep's shadow. Source-backed mappers (OracleMapper,
	// VectorOnlyMapper) are retargeted at the shadow so candidate
	// lookups see simulated loads; other mappers (e.g. DHTMapper) are
	// used as configured — their lookups are pure reads, but they see
	// the pre-sweep catalog view.
	Mapper placement.Mapper
	// Model estimates link latencies (default CoordLatency).
	Model LatencyModel
	// ImprovementThreshold is the minimum relative usage gain to migrate
	// (default 0.05).
	ImprovementThreshold float64
	// Exclude lists nodes migrations must not target — departing or
	// failed hosts during churn, for example. Services already on an
	// excluded node are still evaluated (and, with EvacuateExcluded on
	// the adaptation layer, forced off).
	Exclude map[topology.NodeID]bool
	// FullSweepFraction is the dirty-node fraction above which
	// PlanIncremental gives up on delta tracking and runs a full sweep
	// (default 0.25).
	FullSweepFraction float64
	// Tracer, when non-nil, records a span per Plan/PlanIncremental
	// with one decision event per move candidate: accepted moves carry
	// their predicted gain, rejected candidates their old/new costs —
	// the audit trail for "why did this service move (or not)?".
	Tracer *trace.Tracer

	// Incremental bookkeeping: the epoch watermark of the last
	// incremental sweep, the circuits whose planned moves were not yet
	// observed as applied, and the Exclude set the watermark was taken
	// under.
	primed      bool
	lastEpoch   uint64
	pending     []query.QueryID
	lastExclude map[topology.NodeID]bool
	// winnerDist caches, per evaluated service, the cost-space distance
	// from its ideal target to the mapping winner's point at the last
	// sweep that evaluated it (the mapping error). This is the exact
	// ball radius for delta tests: a node whose point stays farther
	// from the target than the last winner can neither win the mapping
	// nor enter the accept decision, so only deltas intruding inside
	// this radius (or touching the winner itself, caught by its logged
	// pre-delta point) can change the service's outcome.
	winnerDist map[*PlacedService]float64
}

// NewReoptimizer returns a re-optimizer over the deployment with default
// components.
func NewReoptimizer(dep *Deployment) *Reoptimizer {
	return &Reoptimizer{Dep: dep}
}

func (r *Reoptimizer) components() (placement.VirtualPlacer, placement.Mapper, LatencyModel, float64) {
	placer := r.Placer
	if placer == nil {
		placer = placement.Relaxation{}
	}
	mapper := r.Mapper
	if mapper == nil {
		if cat := r.Dep.Env.Catalog(); cat != nil {
			mapper = placement.DHTMapper{Catalog: cat}
		} else {
			mapper = placement.OracleMapper{Source: r.Dep.Env}
		}
	}
	model := r.Model
	if model == nil {
		model = CoordLatency{Env: r.Dep.Env}
	}
	thresh := r.ImprovementThreshold
	if thresh <= 0 {
		thresh = 0.05
	}
	return placer, mapper, model, thresh
}

// sweepMapper resolves the mapper a shadow sweep costs candidates with.
// Source-backed mappers are retargeted at the shadow; a custom mapper
// (DHTMapper, experiment instrumentation) is used as given.
func (r *Reoptimizer) sweepMapper(sh *ShadowEnv) placement.Mapper {
	switch m := r.Mapper.(type) {
	case nil:
		return placement.OracleMapper{Source: sh}
	case placement.OracleMapper:
		return placement.OracleMapper{Source: sh}
	case placement.VectorOnlyMapper:
		return placement.VectorOnlyMapper{Source: sh}
	default:
		return m
	}
}

// StepStats reports one re-optimization sweep.
type StepStats struct {
	ServicesEvaluated int
	Migrations        int
}

// Migration is one planned service move: the typed unit a control plane
// hands to the data plane. PredictedGain is the modelled serviceCost
// improvement (old − new, in KB·ms/s-equivalent units) under the
// sweep's sequential evaluation order.
type Migration struct {
	Query   query.QueryID
	Service int // index into the circuit's Services
	// Signature identifies the service's computed stream (stable across
	// the move).
	Signature string
	From, To  topology.NodeID
	InRate    float64
	// PredictedGain is the full serviceCost improvement (incident usage
	// + load term); UsageGain isolates the incident network-usage part,
	// the paper's primary metric. Both are in KB·ms/s under the sweep's
	// latency model and may disagree in sign: a move can relieve an
	// overloaded host at the price of longer links.
	PredictedGain float64
	UsageGain     float64
	// Adopted marks the move of an adopted-owner shared instance: the
	// circuit owns the instance but holds only a Reused placement of it
	// (the executing operator is a trimmed zombie on the data plane).
	// The data plane must relocate the zombie's service, not one of the
	// circuit's own.
	Adopted bool
}

// MigrationPlan is the output of one re-optimization sweep before
// anything moves: an ordered list of service migrations plus the sweep's
// evaluation statistics. Moves are listed in the order the sweep
// accepted them; each move's gain was evaluated with all earlier moves
// assumed applied, so applying a plan in order reproduces the sweep's
// sequential semantics exactly.
type MigrationPlan struct {
	Moves             []Migration
	ServicesEvaluated int
	// Unmovable counts pinned services found on victim nodes during an
	// evacuation plan — endpoints that cannot be relocated.
	Unmovable int
}

// IncrementalStats describes how much of a sweep PlanIncremental
// actually ran.
type IncrementalStats struct {
	// DirtyNodes is the delta-log size consumed (0 on a full sweep
	// forced by bookkeeping rather than delta size).
	DirtyNodes int
	// AffectedCircuits counts the circuits marked for evaluation,
	// including in-sweep worklist expansions.
	AffectedCircuits int
	TotalCircuits    int
	// FullSweep reports that the sweep degenerated to a full re-plan;
	// Reason says why.
	FullSweep bool
	Reason    string
}

// Plan performs one re-optimization sweep over every deployed circuit —
// virtual re-placement, re-mapping, and hysteresis-thresholded move
// selection — and returns the selected moves without touching the
// deployment. The sweep simulates each accepted move on a private
// ShadowEnv (loads shifted, services re-bound, shared-instance
// consumers re-bound with their owner) so later candidates see its
// effect; live loads, bindings, the k-NN index, and the DHT catalog are
// never mutated. Unpinned services' Virtual coordinates are the one
// exception — they are derived placement scratch and hold the sweep's
// re-relaxed values afterwards (every sweep recomputes them from
// scratch).
//
// Circuits are swept in ascending query order, so a fixed environment
// yields a deterministic plan.
func (r *Reoptimizer) Plan() (MigrationPlan, error) {
	sh := NewShadow(r.Dep.Env)
	circuits := r.Dep.circuitsInOrder()
	sp := r.Tracer.Begin("optimizer", "plan", trace.Int("circuits", len(circuits)))
	plan, err := r.sweepShadow(sh, circuits, nil, sp)
	sp.End(trace.Int("evaluated", plan.ServicesEvaluated), trace.Int("moves", len(plan.Moves)))
	return plan, err
}

// PlanIncremental is Plan restricted to the circuits the environment's
// delta log can affect. It consumes the log (single-consumer: the log
// is compacted to the current epoch on success) and maintains an epoch
// watermark; the first call, a watermark invalidation (another consumer
// compacted past it), a change of the Exclude set, a non-source-backed
// custom Mapper, or a delta touching more than FullSweepFraction of all
// nodes each degenerate to a full sweep.
//
// The affected set is exact, not heuristic: a circuit is re-planned if
// (a) any of its services sits on a dirty node (for a load-only delta,
// any of its movable services — pinned and reused incidence only enters
// link latencies, which a load change cannot move), (b) a dirty node's old
// or new point intrudes into the cost-space ball around one of its
// movable services' ideal targets (radius: the last evaluation's
// mapping error — the region where the mapping winner or the accept
// decision can change), or (c) an in-sweep accepted move perturbs it
// (load shift on the move's endpoints, or a shared-instance rebind).
// Circuits with moves planned but not yet observed as applied are
// carried into the next sweep's set. Everything else provably
// re-evaluates to "no move", so the returned plan is bit-identical to
// what a full Plan would produce on the same state.
func (r *Reoptimizer) PlanIncremental() (MigrationPlan, IncrementalStats, error) {
	env := r.Dep.Env
	circuits := r.Dep.circuitsInOrder()
	st := IncrementalStats{TotalCircuits: len(circuits)}
	epochNow := env.Epoch()

	full, reason := false, ""
	switch {
	case !r.primed:
		full, reason = true, "first sweep"
	case env.DirtyCompactedThrough() > r.lastEpoch:
		full, reason = true, "delta log compacted past watermark"
	case !r.supportedMapper():
		full, reason = true, "custom mapper"
	case !sameExclude(r.Exclude, r.lastExclude):
		full, reason = true, "exclude set changed"
	}
	var delta []DirtyNode
	if !full {
		delta = env.DirtySince(r.lastEpoch)
		st.DirtyNodes = len(delta)
		frac := r.FullSweepFraction
		if frac <= 0 {
			frac = 0.25
		}
		if float64(len(delta)) > frac*float64(len(env.NodeIDs())) {
			full, reason = true, "delta too large"
		}
	}

	sh := NewShadow(env)
	sp := r.Tracer.Begin("optimizer", "plan_incremental",
		trace.Int("circuits", len(circuits)), trace.Int("dirty_nodes", st.DirtyNodes))
	var plan MigrationPlan
	var err error
	if full {
		st.FullSweep, st.Reason = true, reason
		st.AffectedCircuits = len(circuits)
		sp.Emit("full_sweep", trace.Str("reason", reason))
		plan, err = r.sweepShadow(sh, circuits, nil, sp)
	} else {
		aff := r.affectedByDelta(delta, circuits)
		for _, id := range r.pending {
			aff[id] = true
		}
		plan, err = r.sweepShadow(sh, circuits, aff, sp)
		for _, c := range circuits {
			if aff[c.Query.ID] {
				st.AffectedCircuits++
			}
		}
	}
	if err != nil {
		sp.End(trace.Str("error", err.Error()))
		return plan, st, err
	}
	sp.End(trace.Int("affected", st.AffectedCircuits),
		trace.Int("evaluated", plan.ServicesEvaluated), trace.Int("moves", len(plan.Moves)))

	r.primed = true
	r.lastEpoch = epochNow
	env.CompactDirty(epochNow)
	r.lastExclude = cloneExclude(r.Exclude)
	r.pending = r.pending[:0]
	for _, m := range plan.Moves {
		if len(r.pending) == 0 || r.pending[len(r.pending)-1] != m.Query {
			r.pending = append(r.pending, m.Query)
		}
	}
	return plan, st, nil
}

// supportedMapper reports whether the configured mapper admits the
// exact affected-set computation: the default (nil → shadow oracle) and
// explicit oracle mappers do; approximate mappers (DHT walks, vector-
// only ranking) do not, so incremental sweeps would not be equivalence-
// preserving under them.
func (r *Reoptimizer) supportedMapper() bool {
	switch r.Mapper.(type) {
	case nil, placement.OracleMapper:
		return true
	default:
		return false
	}
}

func sameExclude(a, b map[topology.NodeID]bool) bool {
	na, nb := 0, 0
	for n, v := range a {
		if v {
			na++
			if !b[n] {
				return false
			}
		}
	}
	for _, v := range b {
		if v {
			nb++
		}
	}
	return na == nb
}

func cloneExclude(m map[topology.NodeID]bool) map[topology.NodeID]bool {
	if len(m) == 0 {
		return nil
	}
	out := make(map[topology.NodeID]bool, len(m))
	for n, v := range m {
		if v {
			out[n] = true
		}
	}
	return out
}

// affectedByDelta computes the exact pre-sweep affected set for the
// delta: rule (a) incidence via the deployment's node index, rule (b)
// the winner-ball test around each movable service's stored ideal
// target, with the last evaluation's mapping error as the radius. A
// delta node whose old and new points both stay outside that ball
// cannot beat the last winner; the winner's own mutation is caught
// because its logged pre-delta point sits exactly on the ball boundary
// (hence <=, which also covers id tie-breaks), and the host's is rule
// (a). Stored Virtual coordinates and winner distances are current for
// unaffected circuits: virtual placement is deterministic and depends
// only on the circuit's structure and its pinned hosts' vector
// coordinates, and any change to those marks the circuit through rules
// (a)/(c) or forces a full sweep (re-embedding dirties every node).
func (r *Reoptimizer) affectedByDelta(delta []DirtyNode, circuits []*Circuit) map[query.QueryID]bool {
	aff := make(map[query.QueryID]bool)
	for _, d := range delta {
		for _, id := range r.Dep.IncidentCircuits(d.Node) {
			if aff[id] {
				continue
			}
			// A load-only delta leaves the node's latency coordinates —
			// and so every link cost — untouched; circuits present on the
			// node only through pinned or reused services keep all their
			// candidate costs, and only a movable service's own host
			// scalar can shift its accept decision. (The ball test below
			// still sees the node as a possible new mapping winner.)
			if d.LoadOnly && !r.movableOn(id, d.Node) {
				continue
			}
			aff[id] = true
		}
	}
	env := r.Dep.Env
	space := env.Space()
	var buf costspace.Point
	for _, c := range circuits {
		if aff[c.Query.ID] {
			continue
		}
		for _, s := range c.Services {
			if s.Pinned || s.Reused || s.Plan == nil {
				continue
			}
			wd, ok := r.winnerDist[s]
			if !ok || len(s.Virtual) == 0 {
				// Never evaluated by a recording sweep (or never
				// virtually placed): no ball to test, re-plan
				// conservatively.
				aff[c.Query.ID] = true
				break
			}
			buf = space.AppendIdealPoint(buf[:0], s.Virtual)
			hit := false
			for _, d := range delta {
				if space.Distance(buf, d.Prev) <= wd || space.Distance(buf, env.Point(d.Node)) <= wd {
					hit = true
					break
				}
			}
			if hit {
				aff[c.Query.ID] = true
				break
			}
		}
	}
	return aff
}

// movableOn reports whether the circuit hosts a movable (unpinned,
// non-reused, deployed) service on the node.
func (r *Reoptimizer) movableOn(id query.QueryID, n topology.NodeID) bool {
	c, ok := r.Dep.Circuit(id)
	if !ok {
		return true // unknown circuit: stay conservative
	}
	for _, s := range c.Services {
		if s.Pinned || s.Reused || s.Plan == nil {
			continue
		}
		if s.Node == n {
			return true
		}
	}
	return false
}

// expandAffected grows the affected set after an accepted in-sweep move:
// the move's endpoints changed load (ball test against their pre/post
// shadow points), and re-bound consumer circuits must re-cost. Only
// circuits after the cursor matter — earlier ones were already
// evaluated, exactly as a full sequential sweep would have seen them.
// Unlike the pre-sweep delta test, incidence here is restricted to
// movable services: a load shift touches only the scalar dimension, so
// a circuit whose presence on the endpoints is all pinned or reused
// services keeps every link latency and every candidate cost unchanged
// (its movable hosts' scalars live elsewhere; intrusions into their
// winner balls are what the point tests below catch).
func (r *Reoptimizer) expandAffected(sh *ShadowEnv, circuits []*Circuit, cursor int, aff map[query.QueryID]bool,
	from, to topology.NodeID, preFrom, preTo costspace.Point, consumers []query.QueryID) {
	for _, id := range consumers {
		aff[id] = true
	}
	space := sh.Space()
	var buf costspace.Point
	for j := cursor + 1; j < len(circuits); j++ {
		c := circuits[j]
		if aff[c.Query.ID] {
			continue
		}
		marked := false
		for _, s := range c.Services {
			if s.Pinned || s.Reused || s.Plan == nil {
				continue
			}
			if n := sh.NodeOf(s); n == from || n == to {
				marked = true
				break
			}
		}
		if !marked {
			for _, s := range c.Services {
				if s.Pinned || s.Reused || s.Plan == nil {
					continue
				}
				wd, ok := r.winnerDist[s]
				if !ok || len(s.Virtual) == 0 {
					marked = true
					break
				}
				buf = space.AppendIdealPoint(buf[:0], s.Virtual)
				if space.Distance(buf, preFrom) <= wd || space.Distance(buf, sh.Point(from)) <= wd ||
					space.Distance(buf, preTo) <= wd || space.Distance(buf, sh.Point(to)) <= wd {
					marked = true
					break
				}
			}
		}
		if marked {
			aff[c.Query.ID] = true
		}
	}
}

// sweepShadow is the shared sweep body: evaluate every unpinned
// deployed service of the listed circuits against the shadow, accepting
// moves that clear the hysteresis threshold. aff == nil sweeps every
// circuit; otherwise only circuits marked in aff are evaluated and the
// set is expanded as accepted moves perturb the shadow. sp is the
// enclosing plan span; each move candidate that changes host emits one
// accept/reject decision event into it.
func (r *Reoptimizer) sweepShadow(sh *ShadowEnv, circuits []*Circuit, aff map[query.QueryID]bool, sp trace.Span) (MigrationPlan, error) {
	placer, _, model, thresh := r.components()
	mapper := r.sweepMapper(sh)
	b := &Builder{Env: r.Dep.Env}
	if aff == nil {
		// Full sweep: rebuild the winner-distance cache from scratch so
		// entries for cancelled circuits' services don't accumulate.
		r.winnerDist = make(map[*PlacedService]float64)
	} else if r.winnerDist == nil {
		r.winnerDist = make(map[*PlacedService]float64)
	}
	var plan MigrationPlan
	for ci, c := range circuits {
		if aff != nil && !aff[c.Query.ID] {
			continue
		}
		// Recompute virtual coordinates for the whole circuit against
		// current pinned/neighbor positions (a node with all affected
		// services can do full local re-placement).
		if err := b.placeVirtualAs(c, placer, sh.NodeOf); err != nil {
			return plan, err
		}
		for i, s := range c.Services {
			// Reused services are never move candidates from a consumer
			// circuit: the instance belongs to (and migrates with) its
			// owner. The explicit check is belt-and-suspenders — the
			// builder pins reused services — so a circuit edited or
			// built elsewhere cannot sneak a non-owned move into a plan.
			if s.Pinned || s.Reused || s.Plan == nil {
				continue
			}
			plan.ServicesEvaluated++
			oldNode := sh.NodeOf(s)
			newNode, ms, err := mapper.MapCoord(c.Query.Consumer, s.Virtual, r.Exclude)
			if err != nil {
				return plan, err
			}
			// Record the mapping error — the distance from the ideal
			// target to the winner's point — as this service's delta-test
			// ball radius for the next incremental sweep.
			r.winnerDist[s] = ms.Error
			if newNode == oldNode {
				continue
			}
			// Cost the incumbent only for actual move candidates: in a
			// converged sweep nearly every service maps back to its
			// current host and skips these link walks entirely.
			oldCost := shadowServiceCost(sh, c, i, model)
			oldUsage := shadowIncidentUsage(sh, c, i, model)
			sh.Rebind(s, newNode)
			newCost := shadowServiceCost(sh, c, i, model)
			if newCost < oldCost*(1-thresh) {
				// Accept: shift the load and propagate shared-instance
				// re-bindings so later candidates see the move.
				preFrom, preTo := sh.Point(oldNode), sh.Point(newNode)
				sh.ShiftLoad(oldNode, newNode, s.InRate)
				consumers := r.propagateRebind(sh, c, s, newNode)
				plan.Moves = append(plan.Moves, Migration{
					Query:         c.Query.ID,
					Service:       i,
					Signature:     s.Signature,
					From:          oldNode,
					To:            newNode,
					InRate:        s.InRate,
					PredictedGain: oldCost - newCost,
					UsageGain:     oldUsage - shadowIncidentUsage(sh, c, i, model),
				})
				if sp.Active() {
					sp.Emit("accept", trace.Int("q", int(c.Query.ID)), trace.Int("svc", i),
						trace.Int("from", int(oldNode)), trace.Int("to", int(newNode)),
						trace.Num("old_cost", oldCost), trace.Num("new_cost", newCost),
						trace.Num("gain", oldCost-newCost))
				}
				if aff != nil {
					r.expandAffected(sh, circuits, ci, aff, oldNode, newNode, preFrom, preTo, consumers)
				}
			} else {
				sh.Rebind(s, oldNode)
				if sp.Active() {
					sp.Emit("reject", trace.Int("q", int(c.Query.ID)), trace.Int("svc", i),
						trace.Int("from", int(oldNode)), trace.Int("candidate", int(newNode)),
						trace.Num("old_cost", oldCost), trace.Num("new_cost", newCost))
				}
			}
		}
	}
	return plan, nil
}

// propagateRebind re-binds, in the shadow, every consumer circuit's
// reused placement of the shared instance the accepted move carries —
// the in-sweep equivalent of the re-binding Deployment.updateInstance
// performs at Commit. Without it, later candidates in the same sweep
// cost consumer circuits against the instance's stale host. Returns the
// consumer circuits for worklist expansion.
func (r *Reoptimizer) propagateRebind(sh *ShadowEnv, c *Circuit, s *PlacedService, to topology.NodeID) []query.QueryID {
	inst := r.Dep.ownedInstance(c, s)
	if inst == nil {
		return nil
	}
	var ids []query.QueryID
	for _, ref := range r.Dep.consumersOf(inst) {
		sh.Rebind(ref.svc, to)
		ids = append(ids, ref.id)
	}
	return ids
}

// Step performs one re-optimization sweep and immediately applies every
// selected move to the deployment through the two-phase protocol — the
// classic plan-then-freeze behaviour, kept for control-plane-only
// callers. Live systems instead use Plan and hand the moves to the
// adaptation layer, which walks each one through Begin/Commit while the
// data plane migrates.
func (r *Reoptimizer) Step() (StepStats, error) {
	plan, err := r.Plan()
	stats := StepStats{ServicesEvaluated: plan.ServicesEvaluated}
	if err != nil {
		return stats, err
	}
	for _, m := range plan.Moves {
		ticket, err := r.Dep.BeginMigration(m)
		if err != nil {
			return stats, err
		}
		if err := ticket.Commit(); err != nil {
			return stats, err
		}
		stats.Migrations++
	}
	return stats, nil
}

// PlanEvacuation plans the forced relocation of every unpinned service
// hosted on a victim node — the graceful-decommission path node churn
// takes before a host leaves the overlay. Unlike Plan, moves are not
// gated on the improvement threshold (the hosts are going away);
// victims and the Reoptimizer's Exclude set are both barred as targets.
// Pinned services (producers, consumers) on victim nodes cannot move
// and are counted in the plan's Unmovable field.
//
// Like Plan, the sweep is pure: accepted moves are simulated on a
// ShadowEnv (with shared-instance consumers re-bound in-sweep) and the
// live environment is untouched.
func (r *Reoptimizer) PlanEvacuation(victims map[topology.NodeID]bool) (MigrationPlan, error) {
	placer, _, model, _ := r.components()
	exclude := victims
	if len(r.Exclude) > 0 {
		exclude = make(map[topology.NodeID]bool, len(victims)+len(r.Exclude))
		for n := range victims {
			exclude[n] = true
		}
		for n := range r.Exclude {
			exclude[n] = true
		}
	}
	sh := NewShadow(r.Dep.Env)
	mapper := r.sweepMapper(sh)
	b := &Builder{Env: r.Dep.Env}
	sp := r.Tracer.Begin("optimizer", "plan_evacuation", trace.Int("victims", len(victims)))
	var plan MigrationPlan
	for _, c := range r.Dep.circuitsInOrder() {
		hit := false
		for _, s := range c.Services {
			if victims[sh.NodeOf(s)] {
				if s.Reused {
					if s.ReusedFrom != nil && s.ReusedFrom.Owner == c.Query.ID {
						// Adopted-owner zombie: the original owner is gone
						// and no other circuit will ever move this instance
						// — plan its relocation here or the node stays
						// un-evacuable.
						hit = true
					}
					// Otherwise it moves with its owning circuit; the
					// owner's own evacuation entry relocates it (and the
					// sweep re-binds this consumer in the shadow), so it is
					// neither a victim of this circuit nor unmovable.
					continue
				}
				if s.Pinned || s.Plan == nil {
					plan.Unmovable++
					continue
				}
				hit = true
			}
		}
		if !hit {
			continue
		}
		if err := b.placeVirtualAs(c, placer, sh.NodeOf); err != nil {
			sp.End(trace.Str("error", err.Error()))
			return plan, err
		}
		for i, s := range c.Services {
			adopted := s.Reused && s.ReusedFrom != nil && s.ReusedFrom.Owner == c.Query.ID
			if adopted {
				// Builders pin reused placements, but an adopted one is
				// movable by its owner of record — the pin only bars
				// non-owner moves.
				if !victims[sh.NodeOf(s)] {
					continue
				}
			} else if s.Pinned || s.Reused || s.Plan == nil || !victims[sh.NodeOf(s)] {
				continue
			}
			plan.ServicesEvaluated++
			oldNode := sh.NodeOf(s)
			inRate := s.InRate
			vec := s.Virtual
			if adopted {
				// The zombie's subtree is not part of this circuit, so
				// virtual placement computed nothing for it; the best
				// stand-in for its ideal target is its current host's
				// vector coordinate — "the nearest live node to where it
				// was".
				inRate = s.ReusedFrom.InRate
				vec = r.Dep.Env.VecCoord(oldNode)
			}
			oldCost := shadowServiceCost(sh, c, i, model)
			oldUsage := shadowIncidentUsage(sh, c, i, model)
			newNode, _, err := mapper.MapCoord(c.Query.Consumer, vec, exclude)
			if err != nil {
				sp.End(trace.Str("error", err.Error()))
				return plan, err
			}
			sh.Rebind(s, newNode)
			newCost := shadowServiceCost(sh, c, i, model)
			sh.ShiftLoad(oldNode, newNode, inRate)
			r.propagateRebind(sh, c, s, newNode)
			plan.Moves = append(plan.Moves, Migration{
				Query:         c.Query.ID,
				Service:       i,
				Signature:     s.Signature,
				From:          oldNode,
				To:            newNode,
				InRate:        inRate,
				PredictedGain: oldCost - newCost, // may be negative: forced move
				UsageGain:     oldUsage - shadowIncidentUsage(sh, c, i, model),
				Adopted:       adopted,
			})
			if sp.Active() {
				sp.Emit("evac_move", trace.Int("q", int(c.Query.ID)), trace.Int("svc", i),
					trace.Int("from", int(oldNode)), trace.Int("to", int(newNode)),
					trace.Num("gain", oldCost-newCost))
			}
		}
	}
	sp.End(trace.Int("evaluated", plan.ServicesEvaluated),
		trace.Int("moves", len(plan.Moves)), trace.Int("unmovable", plan.Unmovable))
	return plan, nil
}

// incidentUsage is the usage of the links touching service index i.
func incidentUsage(c *Circuit, i int, m LatencyModel) float64 {
	var sum float64
	for _, l := range c.Links {
		if l.Shared {
			continue
		}
		if l.From == i || l.To == i {
			sum += l.Rate * m.Latency(c.Services[l.From].Node, c.Services[l.To].Node)
		}
	}
	return sum
}

// serviceCost is the migration criterion: incident link usage plus a
// load term — the host's weighted scalar components (ms-equivalent, per
// the cost space's weighting functions) scaled by the service's input
// rate, making the two terms dimensionally commensurate (KB·ms/s). This
// is how an overloaded host repels its services even when it is ideal in
// latency terms.
func serviceCost(e *Env, c *Circuit, i int, m LatencyModel) float64 {
	cost := incidentUsage(c, i, m)
	s := c.Services[i]
	var scalar float64
	for _, comp := range e.Space().ScalarComponents(e.Point(s.Node)) {
		scalar += comp
	}
	return cost + s.InRate*scalar
}

// FullReoptimize implements the paper's stronger re-optimization: re-run
// the complete circuit optimization for a deployed query "while the
// original circuit is still running", and if the fresh circuit is at
// least ImprovementThreshold cheaper under the model, atomically swap it
// in (deploy parallel circuit, cancel the original). Returns whether a
// swap happened.
func (r *Reoptimizer) FullReoptimize(id query.QueryID, opt *Integrated) (bool, error) {
	c, ok := r.Dep.Circuit(id)
	if !ok {
		return false, nil
	}
	_, _, _, thresh := r.components()
	model := r.Model
	if model == nil {
		model = CoordLatency{Env: r.Dep.Env}
	}
	res, err := opt.Optimize(c.Query)
	if err != nil {
		return false, err
	}
	oldUsage := c.NetworkUsage(model)
	if res.Circuit.NetworkUsage(model) >= oldUsage*(1-thresh) {
		return false, nil
	}
	if err := r.Dep.Cancel(id); err != nil {
		return false, err
	}
	if err := r.Dep.Deploy(res.Circuit); err != nil {
		return false, err
	}
	return true, nil
}
