//go:build race

package optimizer

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation overhead makes wall-clock speedup
// assertions meaningless.
const raceEnabled = true
