package optimizer

import (
	"fmt"

	"github.com/hourglass/sbon/internal/query"
)

// Deployment tracks the circuits currently running in the SBON: it
// applies service load to hosting nodes, registers shareable instances,
// and accounts system-wide network usage (each physical link charged
// once, to the circuit that created it).
type Deployment struct {
	Env      *Env
	Registry *Registry

	circuits  map[query.QueryID]*Circuit
	instances map[query.QueryID][]*ServiceInstance // instances owned per query
}

// NewDeployment returns an empty deployment over the environment.
func NewDeployment(env *Env, reg *Registry) *Deployment {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Deployment{
		Env:       env,
		Registry:  reg,
		circuits:  make(map[query.QueryID]*Circuit),
		instances: make(map[query.QueryID][]*ServiceInstance),
	}
}

// Deploy installs the circuit: charges load for its new services,
// registers them as shareable instances, and bumps refcounts on reused
// instances.
func (d *Deployment) Deploy(c *Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, ok := d.circuits[c.Query.ID]; ok {
		return fmt.Errorf("optimizer: query %d already deployed", c.Query.ID)
	}
	truth := TrueLatency{Topo: d.Env.Topo}
	for _, s := range c.Services {
		if s.Plan == nil || s.Plan.Kind == query.KindSource {
			continue
		}
		if s.Reused {
			s.ReusedFrom.RefCount++
			continue
		}
		d.Env.AddServiceLoad(s.Node, s.InRate)
		inst := &ServiceInstance{
			Signature:       s.Signature,
			Node:            s.Node,
			Coord:           d.Env.Point(s.Node).Clone(),
			OutRate:         s.OutRate,
			InRate:          s.InRate,
			UpstreamLatency: upstreamLatency(c, s, truth),
			Owner:           c.Query.ID,
			RefCount:        1,
		}
		d.Registry.Register(inst)
		d.instances[c.Query.ID] = append(d.instances[c.Query.ID], inst)
	}
	d.circuits[c.Query.ID] = c
	return nil
}

// upstreamLatency computes the max producer→service path latency for a
// service inside its circuit.
func upstreamLatency(c *Circuit, target *PlacedService, m LatencyModel) float64 {
	idx := -1
	for i, s := range c.Services {
		if s == target {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	children := make([][]int, len(c.Services))
	for _, l := range c.Links {
		children[l.To] = append(children[l.To], l.From)
	}
	var depth func(i int) float64
	depth = func(i int) float64 {
		s := c.Services[i]
		if s.Reused && s.ReusedFrom != nil {
			return s.ReusedFrom.UpstreamLatency
		}
		var max float64
		for _, ch := range children[i] {
			d := depth(ch) + m.Latency(c.Services[ch].Node, c.Services[i].Node)
			if d > max {
				max = d
			}
		}
		return max
	}
	return depth(idx)
}

// Cancel removes a deployed circuit, releasing its references. An
// instance is unregistered (and its load released) only when its last
// consuming circuit cancels — shared services keep running for their
// remaining consumers, matching the paper's shared-circuit semantics.
func (d *Deployment) Cancel(id query.QueryID) error {
	c, ok := d.circuits[id]
	if !ok {
		return fmt.Errorf("optimizer: query %d not deployed", id)
	}
	for _, s := range c.Services {
		if s.Reused && s.ReusedFrom != nil {
			d.release(s.ReusedFrom)
		}
	}
	for _, inst := range d.instances[id] {
		d.release(inst)
	}
	delete(d.circuits, id)
	delete(d.instances, id)
	return nil
}

// release drops one reference to the instance, tearing it down when the
// last reference goes.
func (d *Deployment) release(inst *ServiceInstance) {
	inst.RefCount--
	if inst.RefCount <= 0 {
		d.Registry.Unregister(inst)
		d.Env.RemoveServiceLoad(inst.Node, inst.InRate)
	}
}

// Circuits returns the deployed circuits keyed by query.
func (d *Deployment) Circuits() map[query.QueryID]*Circuit { return d.circuits }

// Circuit returns the deployed circuit for a query.
func (d *Deployment) Circuit(id query.QueryID) (*Circuit, bool) {
	c, ok := d.circuits[id]
	return c, ok
}

// NumDeployed returns the number of running circuits.
func (d *Deployment) NumDeployed() int { return len(d.circuits) }

// TotalUsage sums network usage across all deployed circuits under the
// model. Shared links are charged only to their owning circuit, so each
// physical stream is counted exactly once.
func (d *Deployment) TotalUsage(m LatencyModel) float64 {
	var sum float64
	for _, c := range d.circuits {
		sum += c.NetworkUsage(m)
	}
	return sum
}

// TotalLoadPenalty sums the load penalty of all deployed circuits.
func (d *Deployment) TotalLoadPenalty() float64 {
	var sum float64
	for _, c := range d.circuits {
		sum += c.LoadPenalty(d.Env)
	}
	return sum
}
