package optimizer

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/hourglass/sbon/internal/query"
	"github.com/hourglass/sbon/internal/topology"
)

// ErrTicketExpired is returned by MigrationTicket.CommitAt when the
// ticket's deadline passed before the commit: the ticket is aborted
// (the target's provisional charge returned) and the service stays on
// its source.
var ErrTicketExpired = errors.New("optimizer: migration ticket deadline expired")

// Deployment tracks the circuits currently running in the SBON: it
// applies service load to hosting nodes, registers shareable instances,
// and accounts system-wide network usage (each physical link charged
// once, to the circuit that created it).
type Deployment struct {
	Env      *Env
	Registry *Registry

	circuits  map[query.QueryID]*Circuit
	instances map[query.QueryID][]*ServiceInstance // instances owned per query

	// gen counts membership/binding mutations (Deploy, Cancel, committed
	// migrations); the lazily rebuilt lookup indexes below invalidate on
	// it, PlanCache-style.
	gen    uint64
	idxGen uint64
	// incident maps a node to the deployed circuits with any service
	// bound to it — how an incremental sweep turns a dirty node into
	// affected circuits. consumers maps a shared instance to the reused
	// placements (and their circuits) referencing it — how a sweep
	// propagates an owner move to its consumers.
	incident  map[topology.NodeID][]query.QueryID
	consumers map[*ServiceInstance][]consumerRef
}

// consumerRef is one circuit's reused placement of a shared instance.
type consumerRef struct {
	svc *PlacedService
	id  query.QueryID
}

// NewDeployment returns an empty deployment over the environment.
func NewDeployment(env *Env, reg *Registry) *Deployment {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Deployment{
		Env:       env,
		Registry:  reg,
		circuits:  make(map[query.QueryID]*Circuit),
		instances: make(map[query.QueryID][]*ServiceInstance),
	}
}

// Deploy installs the circuit: charges load for its new services,
// registers them as shareable instances, and bumps refcounts on reused
// instances.
func (d *Deployment) Deploy(c *Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, ok := d.circuits[c.Query.ID]; ok {
		return fmt.Errorf("optimizer: query %d already deployed", c.Query.ID)
	}
	truth := TrueLatency{Topo: d.Env.Topo}
	for _, s := range c.Services {
		if s.Plan == nil || s.Plan.Kind == query.KindSource {
			continue
		}
		if s.Reused {
			s.ReusedFrom.RefCount++
			continue
		}
		d.Env.AddServiceLoad(s.Node, s.InRate)
		inst := &ServiceInstance{
			Signature:       s.Signature,
			Node:            s.Node,
			Coord:           d.Env.Point(s.Node).Clone(),
			OutRate:         s.OutRate,
			InRate:          s.InRate,
			UpstreamLatency: upstreamLatency(c, s, truth),
			Owner:           c.Query.ID,
			RefCount:        1,
		}
		d.Registry.Register(inst)
		d.instances[c.Query.ID] = append(d.instances[c.Query.ID], inst)
	}
	d.circuits[c.Query.ID] = c
	d.gen++
	return nil
}

// rebuildIndexes refreshes the incident and consumer lookup maps when
// the deployment changed since they were last built. One O(services)
// rebuild is far cheaper than the sweep evaluations the indexes save,
// so no finer-grained maintenance is attempted.
func (d *Deployment) rebuildIndexes() {
	if d.incident != nil && d.idxGen == d.gen {
		return
	}
	d.incident = make(map[topology.NodeID][]query.QueryID, len(d.circuits))
	d.consumers = make(map[*ServiceInstance][]consumerRef)
	for _, c := range d.circuitsInOrder() {
		id := c.Query.ID
		for _, s := range c.Services {
			if s.Reused && s.ReusedFrom != nil {
				d.consumers[s.ReusedFrom] = append(d.consumers[s.ReusedFrom], consumerRef{svc: s, id: id})
			}
			ids := d.incident[s.Node]
			if len(ids) == 0 || ids[len(ids)-1] != id {
				d.incident[s.Node] = append(ids, id)
			}
		}
	}
	d.idxGen = d.gen
}

// IncidentCircuits returns the IDs, in ascending order, of deployed
// circuits with at least one service bound to the node. The slice is
// owned by the deployment's index; callers must not mutate it.
func (d *Deployment) IncidentCircuits(n topology.NodeID) []query.QueryID {
	d.rebuildIndexes()
	return d.incident[n]
}

// consumersOf returns the reused placements referencing the instance.
// The slice is owned by the deployment's index.
func (d *Deployment) consumersOf(inst *ServiceInstance) []consumerRef {
	d.rebuildIndexes()
	return d.consumers[inst]
}

// ownedInstance returns the shared instance the circuit's own (non-
// reused) service executes, or nil if the service was never registered
// (sources, consumer endpoints).
func (d *Deployment) ownedInstance(c *Circuit, s *PlacedService) *ServiceInstance {
	for _, inst := range d.instances[c.Query.ID] {
		if inst.Signature == s.Signature && inst.Node == s.Node {
			return inst
		}
	}
	return nil
}

// upstreamLatency computes the max producer→service path latency for a
// service inside its circuit.
func upstreamLatency(c *Circuit, target *PlacedService, m LatencyModel) float64 {
	idx := -1
	for i, s := range c.Services {
		if s == target {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0
	}
	children := make([][]int, len(c.Services))
	for _, l := range c.Links {
		children[l.To] = append(children[l.To], l.From)
	}
	var depth func(i int) float64
	depth = func(i int) float64 {
		s := c.Services[i]
		if s.Reused && s.ReusedFrom != nil {
			return s.ReusedFrom.UpstreamLatency
		}
		var max float64
		for _, ch := range children[i] {
			d := depth(ch) + m.Latency(c.Services[ch].Node, c.Services[i].Node)
			if d > max {
				max = d
			}
		}
		return max
	}
	return depth(idx)
}

// Cancel removes a deployed circuit, releasing its references. An
// instance is unregistered (and its load released) only when its last
// consuming circuit cancels — shared services keep running for their
// remaining consumers, matching the paper's shared-circuit semantics.
// When the owning circuit cancels while consumers remain, ownership of
// the instance is handed to the lowest-id surviving consumer: the
// instance stays registered, its load stays charged, and the last
// release still tears it down exactly once.
func (d *Deployment) Cancel(id query.QueryID) error {
	c, ok := d.circuits[id]
	if !ok {
		return fmt.Errorf("optimizer: query %d not deployed", id)
	}
	for _, s := range c.Services {
		// An adopted instance's consumer reference lives in the owned
		// list below; releasing it here too would double-count.
		if s.Reused && s.ReusedFrom != nil && s.ReusedFrom.Owner != id {
			d.release(s.ReusedFrom)
		}
	}
	delete(d.circuits, id)
	for _, inst := range d.instances[id] {
		inst.RefCount--
		if inst.RefCount <= 0 {
			d.Registry.Unregister(inst)
			d.Env.RemoveServiceLoad(inst.Node, inst.InRate)
			continue
		}
		d.transferOwnership(inst)
	}
	delete(d.instances, id)
	d.gen++
	return nil
}

// transferOwnership hands a still-referenced instance whose owner
// cancelled to the lowest-id surviving circuit that consumes it. The
// new owner's circuit keeps the service marked Reused (it does not
// contain the instance's upstream subtree), so the ownership reference
// now lives in the instances list instead of the reuse release path.
func (d *Deployment) transferOwnership(inst *ServiceInstance) {
	for _, c := range d.circuitsInOrder() {
		for _, s := range c.Services {
			if s.Reused && s.ReusedFrom == inst {
				inst.Owner = c.Query.ID
				d.instances[c.Query.ID] = append(d.instances[c.Query.ID], inst)
				return
			}
		}
	}
	// References held by no deployed circuit (out-of-order teardown):
	// nothing can release them later, so tear the instance down now.
	d.Registry.Unregister(inst)
	d.Env.RemoveServiceLoad(inst.Node, inst.InRate)
}

// release drops one reference to the instance, tearing it down when the
// last reference goes.
func (d *Deployment) release(inst *ServiceInstance) {
	inst.RefCount--
	if inst.RefCount <= 0 {
		d.Registry.Unregister(inst)
		d.Env.RemoveServiceLoad(inst.Node, inst.InRate)
	}
}

// Circuits returns the deployed circuits keyed by query.
func (d *Deployment) Circuits() map[query.QueryID]*Circuit { return d.circuits }

// circuitsInOrder returns the deployed circuits sorted by query ID — the
// deterministic sweep order re-optimization relies on.
func (d *Deployment) circuitsInOrder() []*Circuit {
	out := make([]*Circuit, 0, len(d.circuits))
	for _, c := range d.circuits {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Query.ID < out[j].Query.ID })
	return out
}

// updateInstance moves the registry entry of a migrated service to its
// new node — and re-binds the placement of every circuit reusing the
// instance, so consumers' usage and latency accounting follows the
// move instead of silently pointing at the old host.
func (d *Deployment) updateInstance(c *Circuit, s *PlacedService, oldNode topology.NodeID) {
	d.gen++
	for _, inst := range d.instances[c.Query.ID] {
		if inst.Signature == s.Signature && inst.Node == oldNode {
			d.Registry.UpdateInstance(inst, s.Node, d.Env.Point(s.Node).Clone())
			for id, cc := range d.circuits {
				if id == c.Query.ID {
					continue
				}
				for _, cs := range cc.Services {
					if cs.Reused && cs.ReusedFrom == inst {
						cs.Node = s.Node
					}
				}
			}
			break
		}
	}
	// The move changes path latencies inside the owning circuit, for the
	// moved service's own instance and for every instance downstream of
	// it — refresh them all so consumer-latency accounting of reusing
	// circuits follows the move.
	d.refreshUpstreamLatencies(c)
}

// refreshUpstreamLatencies recomputes the recorded producer→instance
// latency of every instance the circuit owns against its current
// placement.
func (d *Deployment) refreshUpstreamLatencies(c *Circuit) {
	insts := d.instances[c.Query.ID]
	if len(insts) == 0 {
		return
	}
	truth := TrueLatency{Topo: d.Env.Topo}
	for _, s := range c.Services {
		if s.Plan == nil || s.Reused || s.Plan.Kind == query.KindSource {
			continue
		}
		for _, inst := range insts {
			if inst.Signature == s.Signature && inst.Node == s.Node {
				inst.UpstreamLatency = upstreamLatency(c, s, truth)
				break
			}
		}
	}
}

// MigrationTicket is an in-flight two-phase migration: between Begin and
// Commit/Abort the service's load is charged on BOTH hosts, so the cost
// space repels further placements from nodes already absorbing a
// handoff — the in-network view of in-flight state transfer (Benoit et
// al.).
type MigrationTicket struct {
	dep  *Deployment
	move Migration
	// charged is the input rate Begin actually charged to the target —
	// read back by Commit/Abort so the release always mirrors the
	// charge even if the plan's InRate field was stale or edited.
	charged float64
	open    bool
	// inst is set for adopted-owner moves: the shared instance this
	// ticket relocates (the owning circuit holds only a Reused
	// placement of it — a trimmed zombie on the data plane).
	inst *ServiceInstance

	// Deadline, when set, bounds the ticket's life: CommitAt past it
	// aborts instead of committing. A crashed host mid-handoff (or a
	// wedged data plane) then can't leak the double-charged in-flight
	// load forever — the adaptation layer stamps deadlines on every
	// ticket it opens.
	Deadline time.Time
}

// Move returns the migration this ticket tracks.
func (t *MigrationTicket) Move() Migration { return t.move }

// BeginMigration opens a two-phase migration of the move's service: the
// target node is charged the service's load immediately while the source
// keeps its charge until Commit. The circuit still routes through the
// source host; only cost-space accounting changes.
func (d *Deployment) BeginMigration(m Migration) (*MigrationTicket, error) {
	c, ok := d.circuits[m.Query]
	if !ok {
		return nil, fmt.Errorf("optimizer: query %d not deployed", m.Query)
	}
	if m.Service < 0 || m.Service >= len(c.Services) {
		return nil, fmt.Errorf("optimizer: query %d has no service %d", m.Query, m.Service)
	}
	s := c.Services[m.Service]
	if s.Reused {
		inst := s.ReusedFrom
		if inst != nil && inst.Owner == m.Query {
			// Adopted-owner move: the original owner cancelled and this
			// circuit inherited the instance, but its placement here is
			// Reused (the executing operator is a trimmed zombie on the
			// data plane). The adopter is the instance's owner of record,
			// so it — and only it — may relocate the instance.
			if inst.Node != m.From {
				return nil, fmt.Errorf("optimizer: query %d's adopted instance %q is on node %d, not %d",
					m.Query, inst.Signature, inst.Node, m.From)
			}
			d.Env.AddServiceLoad(m.To, inst.InRate)
			return &MigrationTicket{dep: d, move: m, charged: inst.InRate, open: true, inst: inst}, nil
		}
		// A non-owner circuit must never move a shared instance: the
		// move would double-charge the instance's load on the target
		// while the operator keeps executing inside its owner. Shared
		// instances migrate through the owning circuit's own (non-
		// reused) service, which re-binds every consumer at Commit.
		owner := query.QueryID(-1)
		if inst != nil {
			owner = inst.Owner
		}
		return nil, fmt.Errorf("optimizer: query %d service %d reuses an instance owned by query %d; only the owner may migrate it",
			m.Query, m.Service, owner)
	}
	if s.Pinned || s.Plan == nil {
		return nil, fmt.Errorf("optimizer: query %d service %d is pinned", m.Query, m.Service)
	}
	if s.Node != m.From {
		return nil, fmt.Errorf("optimizer: query %d service %d is on node %d, not %d",
			m.Query, m.Service, s.Node, m.From)
	}
	d.Env.AddServiceLoad(m.To, s.InRate)
	return &MigrationTicket{dep: d, move: m, charged: s.InRate, open: true}, nil
}

// Commit finishes the migration: the source's charge is released, the
// service re-binds to the target, and the instance registry follows. The
// load accounting lands exactly where a fresh deployment onto the target
// would have put it — the fixed point the invariant tests pin.
func (t *MigrationTicket) Commit() error {
	if !t.open {
		return fmt.Errorf("optimizer: migration ticket already closed")
	}
	t.open = false
	d, m := t.dep, t.move
	c, ok := d.circuits[m.Query]
	if !ok {
		return fmt.Errorf("optimizer: query %d vanished mid-migration", m.Query)
	}
	d.Env.RemoveServiceLoad(m.From, t.charged)
	if t.inst != nil {
		// Adopted-owner move: re-bind the instance and every consuming
		// placement (including the adopter's own Reused entry).
		d.Registry.UpdateInstance(t.inst, m.To, d.Env.Point(m.To).Clone())
		for _, cc := range d.circuits {
			for _, cs := range cc.Services {
				if cs.Reused && cs.ReusedFrom == t.inst {
					cs.Node = m.To
				}
			}
		}
		d.gen++
		return nil
	}
	s := c.Services[m.Service]
	s.Node = m.To
	d.updateInstance(c, s, m.From)
	return nil
}

// Expired reports whether the ticket has a deadline in the past at
// `now`.
func (t *MigrationTicket) Expired(now time.Time) bool {
	return !t.Deadline.IsZero() && now.After(t.Deadline)
}

// CommitAt is Commit with deadline enforcement: a ticket whose
// deadline passed is aborted instead — the target's provisional
// charge returns and ErrTicketExpired is reported, leaving the load
// accounting exactly where it was before Begin.
func (t *MigrationTicket) CommitAt(now time.Time) error {
	if t.open && t.Expired(now) {
		if err := t.Abort(); err != nil {
			return err
		}
		return ErrTicketExpired
	}
	return t.Commit()
}

// Abort cancels the migration, releasing the target's provisional
// charge; the service never moves.
func (t *MigrationTicket) Abort() error {
	if !t.open {
		return fmt.Errorf("optimizer: migration ticket already closed")
	}
	t.open = false
	t.dep.Env.RemoveServiceLoad(t.move.To, t.charged)
	return nil
}

// Circuit returns the deployed circuit for a query.
func (d *Deployment) Circuit(id query.QueryID) (*Circuit, bool) {
	c, ok := d.circuits[id]
	return c, ok
}

// NumDeployed returns the number of running circuits.
func (d *Deployment) NumDeployed() int { return len(d.circuits) }

// TotalUsage sums network usage across all deployed circuits under the
// model. Shared links are charged only to their owning circuit, so each
// physical stream is counted exactly once.
func (d *Deployment) TotalUsage(m LatencyModel) float64 {
	var sum float64
	for _, c := range d.circuits {
		sum += c.NetworkUsage(m)
	}
	return sum
}

// TotalLoadPenalty sums the load penalty of all deployed circuits.
func (d *Deployment) TotalLoadPenalty() float64 {
	var sum float64
	for _, c := range d.circuits {
		sum += c.LoadPenalty(d.Env)
	}
	return sum
}
